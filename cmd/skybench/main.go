// Command skybench regenerates the paper's evaluation: Figures 5(a),
// 5(b), 6, 7(a), 7(b), the Section IV theorem table, and the ablation
// table from DESIGN.md.
//
// Usage:
//
//	skybench [-figure all|5a|5b|6|7a|7b|thm|ablation] [-full] [-seed N]
//
// By default a quick scale runs in minutes; -full uses the paper's
// 100,000-service configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/asciiplot"
	"repro/internal/driver"
	"repro/internal/experiments"
	"repro/internal/qws"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
)

func main() {
	figure := flag.String("figure", "all", "which experiment to run: all, 5a, 5b, 6, 7a, 7b, thm, ablation, sensitivity, partitions, flight, critpath")
	full := flag.Bool("full", false, "run at the paper's full scale (100,000 services)")
	seed := flag.Int64("seed", 2012, "dataset seed")
	plot := flag.Bool("plot", false, "render ASCII charts in addition to tables")
	jsonDir := flag.String("json", "", "also save each experiment's rows as JSON under this directory")
	flag.Parse()

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}
	sc.Seed = *seed

	ctx := context.Background()
	start := time.Now()
	saveJSON := func(name string, rows interface{}) error {
		if *jsonDir == "" {
			return nil
		}
		path, err := experiments.SaveJSON(*jsonDir, name, rows)
		if err != nil {
			return err
		}
		fmt.Printf("  [rows saved to %s]\n", path)
		return nil
	}
	run := func(name string, f func() error) {
		if *figure != "all" && *figure != name {
			return
		}
		t0 := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "skybench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("  [%s completed in %s]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	fmt.Printf("MapReduce Skyline reproduction — scale: small N=%d, large N=%d, dims %v, seed %d\n\n",
		sc.SmallN, sc.LargeN, sc.Dims, sc.Seed)

	fig5 := func(label string, n int) func() error {
		return func() error {
			rows, err := experiments.Figure5(ctx, sc, n)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Figure 5(%s): processing time vs dimension (N=%d)", label, n)
			experiments.WriteFigure5(os.Stdout, rows, title)
			if err := saveJSON("figure5"+label, rows); err != nil {
				return err
			}
			if *plot {
				return plotFigure5(rows, title)
			}
			return nil
		}
	}
	run("5a", fig5("a", sc.SmallN))
	run("5b", fig5("b", sc.LargeN))
	run("6", func() error {
		rows, err := experiments.Figure6(ctx, sc)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Figure 6: MR-Angle Map/Reduce breakdown vs servers (N=%d, d=%d, simulated cluster)",
			sc.LargeN, sc.Dims[len(sc.Dims)-1])
		experiments.WriteFigure6(os.Stdout, rows, title)
		if err := saveJSON("figure6", rows); err != nil {
			return err
		}
		if *plot {
			return plotFigure6(rows, title)
		}
		return nil
	})
	fig7 := func(label string, n int) func() error {
		return func() error {
			rows, err := experiments.Figure7(ctx, sc, n)
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Figure 7(%s): local skyline optimality vs dimension (N=%d)", label, n)
			experiments.WriteFigure7(os.Stdout, rows, title)
			if err := saveJSON("figure7"+label, rows); err != nil {
				return err
			}
			if *plot {
				return plotFigure7(rows, title)
			}
			return nil
		}
	}
	run("7a", fig7("a", sc.SmallN))
	run("7b", fig7("b", sc.LargeN))
	run("thm", func() error {
		rows := experiments.TheoremTable(500000, sc.Seed)
		experiments.WriteTheoremTable(os.Stdout, rows,
			"Theorems 1 & 2: dominance ability, analytic vs Monte-Carlo (L=1, y=x/4)")
		return saveJSON("theorems", rows)
	})
	run("sensitivity", func() error {
		n, d := 4000, 4
		if *full {
			n, d = 20000, 6
		}
		rows, err := experiments.Sensitivity(ctx, sc, n, d)
		if err != nil {
			return err
		}
		experiments.WriteSensitivity(os.Stdout, rows,
			fmt.Sprintf("Distribution sensitivity (N=%d, d=%d): methods across benchmark data shapes", n, d))
		return saveJSON("sensitivity", rows)
	})
	run("partitions", func() error {
		n, d := 4000, 6
		if *full {
			n, d = 20000, 8
		}
		rows, err := experiments.PartitionCount(ctx, sc, n, d)
		if err != nil {
			return err
		}
		experiments.WritePartitionCount(os.Stdout, rows,
			fmt.Sprintf("Partition-count study (N=%d, d=%d, nodes=%d): the paper's 2x rule in context", n, d, sc.Nodes))
		return saveJSON("partitions", rows)
	})
	run("flight", func() error {
		// One recorded run per method: the flight recorder's live
		// per-partition chart is the runtime view of Figures 7/8.
		n, d := 4000, 4
		if *full {
			n, d = 20000, 6
		}
		data := qws.Dataset(sc.Seed, n, d)
		fmt.Printf("Flight recorder (N=%d, d=%d): per-partition load and local optimality\n\n", n, d)
		for _, scheme := range experiments.Methods {
			rec := telemetry.NewRecorder(fmt.Sprintf("skyline:%s", scheme))
			if _, _, err := driver.Compute(telemetry.WithRecorder(ctx, rec), data, driver.Options{
				Scheme:  scheme,
				Nodes:   sc.Nodes,
				Workers: sc.Workers,
			}); err != nil {
				return fmt.Errorf("flight %v: %w", scheme, err)
			}
			if err := asciiplot.FlightChart(os.Stdout, rec.Report()); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	})
	run("critpath", func() error {
		// One traced run per method: the critical-path waterfall answers
		// "where did the makespan go" — phase and worker blame plus the
		// what-if rebalancing predictions, the runtime companion of the
		// flight figure.
		n, d := 4000, 4
		if *full {
			n, d = 20000, 6
		}
		data := qws.Dataset(sc.Seed, n, d)
		fmt.Printf("Critical path (N=%d, d=%d): makespan attribution and what-if predictions\n\n", n, d)
		for _, scheme := range experiments.Methods {
			rec := telemetry.NewRecorder(fmt.Sprintf("skyline:%s", scheme))
			tr := telemetry.NewTracer()
			cctx := telemetry.WithRecorder(telemetry.WithTracer(ctx, tr), rec)
			if _, _, err := driver.Compute(cctx, data, driver.Options{
				Scheme:  scheme,
				Nodes:   sc.Nodes,
				Workers: sc.Workers,
			}); err != nil {
				return fmt.Errorf("critpath %v: %w", scheme, err)
			}
			a, err := critpath.Analyze(tr.Spans(), rec.Report(), critpath.Options{})
			if err != nil {
				return fmt.Errorf("critpath %v: %w", scheme, err)
			}
			if err := asciiplot.CritPathChart(os.Stdout, a); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	})
	run("ablation", func() error {
		n, d := 4000, 6
		if *full {
			n, d = 20000, 8
		}
		rows, err := experiments.Ablations(ctx, sc, n, d)
		if err != nil {
			return err
		}
		experiments.WriteAblations(os.Stdout, rows,
			fmt.Sprintf("Ablations (N=%d, d=%d): combiner, pruning, kernels, random baseline", n, d))
		return saveJSON("ablations", rows)
	})

	fmt.Printf("total wall clock: %s\n", time.Since(start).Round(time.Millisecond))
}

func methodNames() []string {
	names := make([]string, len(experiments.Methods))
	for i, m := range experiments.Methods {
		names[i] = m.String()
	}
	return names
}

func plotFigure5(rows []experiments.Figure5Row, title string) error {
	xs := make([]string, len(rows))
	series := make([][]float64, len(experiments.Methods))
	for si := range series {
		series[si] = make([]float64, len(rows))
	}
	for i, r := range rows {
		xs[i] = "d=" + strconv.Itoa(r.Dim)
		for si, m := range experiments.Methods {
			series[si][i] = r.Times[m].Seconds() * 1000
		}
	}
	return asciiplot.Lines(os.Stdout, title+" [ms]", xs, series, methodNames(),
		func(v float64) string { return fmt.Sprintf("%.3gms", v) })
}

func plotFigure6(rows []experiments.Figure6Row, title string) error {
	labels := make([]string, len(rows))
	segs := make([][]float64, len(rows))
	for i, r := range rows {
		labels[i] = strconv.Itoa(r.Servers) + " servers"
		segs[i] = []float64{r.MapTime.Seconds(), r.ReduceTime.Seconds()}
	}
	return asciiplot.StackedBars(os.Stdout, title, labels, segs,
		[]string{"map", "reduce"},
		func(total float64) string { return fmt.Sprintf("%.1fs", total) })
}

func plotFigure7(rows []experiments.Figure7Row, title string) error {
	xs := make([]string, len(rows))
	series := make([][]float64, len(experiments.Methods))
	for si := range series {
		series[si] = make([]float64, len(rows))
	}
	for i, r := range rows {
		xs[i] = "d=" + strconv.Itoa(r.Dim)
		for si, m := range experiments.Methods {
			series[si][i] = r.Optimality[m]
		}
	}
	return asciiplot.Lines(os.Stdout, title, xs, series, methodNames(),
		func(v float64) string { return fmt.Sprintf("%.2f", v) })
}
