// Command skyworker runs one distributed skyline worker: it connects to a
// skymaster, pulls map/reduce tasks of the registered skyline jobs, and
// executes them until the master shuts down.
//
// Usage:
//
//	skyworker -master 127.0.0.1:7077 [-id worker-1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/rpcmr"
	_ "repro/internal/skyjob" // registers the skyline jobs
)

func main() {
	master := flag.String("master", "127.0.0.1:7077", "master address")
	id := flag.String("id", "", "worker id (default: generated)")
	flag.Parse()

	w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{MasterAddr: *master, ID: *id})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "skyworker: connected to %s\n", *master)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "skyworker: done (%d tasks completed)\n", w.Completed())
}
