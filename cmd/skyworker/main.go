// Command skyworker runs one distributed skyline worker: it connects to a
// skymaster, pulls map/reduce tasks of the registered skyline jobs, and
// executes them until the master shuts down.
//
// On SIGINT/SIGTERM the worker stops pulling tasks, emits a final
// shutdown event, and flushes its event log to stderr before exiting.
//
// Usage:
//
//	skyworker -master 127.0.0.1:7077 [-id worker-1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/rpcmr"
	_ "repro/internal/skyjob" // registers the skyline jobs
	"repro/internal/telemetry"
)

func main() {
	master := flag.String("master", "127.0.0.1:7077", "master address")
	id := flag.String("id", "", "worker id (default: generated)")
	flag.Parse()

	events := telemetry.NewEventLog(256)
	w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{MasterAddr: *master, ID: *id})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "skyworker: connected to %s\n", *master)
	events.Info("worker started", telemetry.A("master", *master), telemetry.A("id", *id))
	err = w.Run(ctx)
	if ctx.Err() != nil {
		// Interrupted: leave the operational record behind on the way out.
		events.Info("shutdown", telemetry.A("signalled", true),
			telemetry.A("tasks_completed", w.Completed()))
		fmt.Fprintln(os.Stderr, "skyworker: interrupted — dumping event log")
		_ = telemetry.DumpOps(os.Stderr, events, slog.LevelInfo, nil)
	} else if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	} else {
		events.Info("shutdown", telemetry.A("signalled", false),
			telemetry.A("tasks_completed", w.Completed()))
	}
	fmt.Fprintf(os.Stderr, "skyworker: done (%d tasks completed)\n", w.Completed())
}
