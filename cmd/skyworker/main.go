// Command skyworker runs one distributed skyline worker: it connects to a
// skymaster, pulls map/reduce tasks of the registered skyline jobs, and
// executes them until the master shuts down.
//
// With -metrics-addr the worker serves the same debug surface as the
// master — /metrics (Prometheus text), /debug/pprof/, /debug/events and
// /debug/timeseries (sampled metric history) — and reports the address
// to the master at registration, so the master's /debug/cluster view
// federates this worker's metrics automatically.
//
// On SIGINT/SIGTERM the worker stops pulling tasks, takes one final
// time-series sample, shuts the debug server down gracefully, and
// flushes its event log to stderr before exiting.
//
// Usage:
//
//	skyworker -master 127.0.0.1:7077 [-id worker-1]
//	          [-metrics-addr 127.0.0.1:0] [-stall 0s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/rpcmr"
	_ "repro/internal/skyjob" // registers the skyline jobs
	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

func main() {
	master := flag.String("master", "127.0.0.1:7077", "master address")
	id := flag.String("id", "", "worker id (default: generated)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics and /debug/* on this address and report it to the master (empty = off)")
	stall := flag.Duration("stall", 0,
		"sleep this long before every task — straggler fault injection (0 = off)")
	sampleInterval := flag.Duration("sample-interval", time.Second, "metric time-series sampling cadence")
	sampleRetention := flag.Int("sample-retention", 300, "metric time-series samples retained per series")
	flag.Parse()

	events := telemetry.NewEventLog(256)

	// Debug server first: its resolved address travels with the
	// registration, so the master can scrape this worker from the start.
	var (
		metrics *telemetry.Registry
		sampler *timeseries.Sampler
		srv     *http.Server
	)
	debugAddr := ""
	if *metricsAddr != "" {
		metrics = telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(metrics)
		events.BindMetrics(metrics)
		sampler = timeseries.NewSampler(metrics, timeseries.Config{
			Interval: *sampleInterval, Retention: *sampleRetention,
		})
		sampler.Start()

		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "skyworker: metrics listen: %v\n", err)
			os.Exit(1)
		}
		debugAddr = ln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		telemetry.MountPprof(mux)
		telemetry.MountEvents(mux, events)
		timeseries.Mount(mux, sampler)
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "skyworker: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "skyworker: metrics on http://%s/metrics, history on /debug/timeseries\n", debugAddr)
	}

	w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{
		MasterAddr: *master,
		ID:         *id,
		TaskStall:  *stall,
		DebugAddr:  debugAddr,
		Metrics:    metrics,
		Events:     events,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	}
	defer w.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "skyworker: connected to %s\n", *master)
	events.Info("worker started", telemetry.A("master", *master), telemetry.A("id", *id),
		telemetry.A("debug_addr", debugAddr))
	err = w.Run(ctx)

	// Drain path: one final time-series sample (Stop flushes), then a
	// bounded graceful shutdown of the debug server so in-flight scrapes
	// finish before the listener goes away.
	sampler.Stop()
	if srv != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = srv.Shutdown(sctx)
		cancel()
	}

	if ctx.Err() != nil {
		// Interrupted: leave the operational record behind on the way out.
		events.Info("shutdown", telemetry.A("signalled", true),
			telemetry.A("tasks_completed", w.Completed()))
		fmt.Fprintln(os.Stderr, "skyworker: interrupted — dumping event log")
		_ = telemetry.DumpOps(os.Stderr, events, slog.LevelInfo, metrics)
	} else if err != nil {
		fmt.Fprintf(os.Stderr, "skyworker: %v\n", err)
		os.Exit(1)
	} else {
		events.Info("shutdown", telemetry.A("signalled", false),
			telemetry.A("tasks_completed", w.Completed()))
	}
	fmt.Fprintf(os.Stderr, "skyworker: done (%d tasks completed)\n", w.Completed())
}
