// Command skyserve runs the UDDI-like skyline registry as an HTTP
// service: providers publish services with QoS vectors, clients query the
// live skyline. The skyline is maintained incrementally (paper §II) — a
// publish touches only the service's partition.
//
// Usage:
//
//	skyserve [-addr :8080] [-method angle] [-seed-n 1000] [-seed-d 4]
//	         [-seed-file data.csv] [-header] [-snapshot registry.jsonl]
//	         [-slo-p99 250ms] [-slo-avail 0.999] [-slow-threshold 100ms]
//	         [-publish-queue 1024] [-publish-batch 256]
//
// Publishes ride a batching pipeline (group commit: one index epoch per
// coalesced batch; an acknowledged publish is always visible) whose
// queue depth and maximum batch size -publish-queue/-publish-batch
// resize. On shutdown the pipeline is drained before the snapshot is
// written, so every accepted publish lands in the saved catalogue.
//
// API:
//
//	POST /services      {"name": "svc-1", "qos": [120.5, 3.2, 0.7, 14]}
//	GET  /skyline       current skyline; ?explain=1 adds the per-partition plan
//	GET  /stats
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/pprof/  Go runtime profiles
//	GET  /debug/flightrecorder  boot computation's flight record (JSON)
//	GET  /debug/events  structured event stream (JSON lines; ?level= ?since=)
//	GET  /debug/health  service health summary (JSON)
//	GET  /debug/queries recent per-query cost records + cumulative totals
//	GET  /debug/slowlog top-K slowest queries (threshold via -slow-threshold)
//	GET  /debug/slo     SLO burn state (objectives via -slo-p99 / -slo-avail)
//
// The SLO tracker evaluates its objectives every few seconds against the
// registry's own metrics and emits "slo budget burning" events while the
// multi-window burn rate exceeds 1; set a flag to zero to disable the
// corresponding objective.
//
// With -snapshot, the catalogue is loaded from the file at boot (when it
// exists) and written back on SIGINT/SIGTERM, so a restarted registry
// resumes where it left off. On shutdown the service emits a final
// shutdown event and flushes the event log plus a last metrics snapshot
// to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	skymr "repro"
	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/registry"
	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

// serveHealth is skyserve's /debug/health document: a long-running
// registry has no task queue, so health is uptime plus catalogue shape
// and the event-level counters.
type serveHealth struct {
	Status        string           `json:"status"`
	UptimeSeconds float64          `json:"uptime_seconds"`
	Services      int              `json:"services"`
	Dim           int              `json:"dim"`
	SkylineSize   int              `json:"skyline_size"`
	EventCounts   map[string]int64 `json:"event_counts"`
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	method := flag.String("method", "angle", "partitioning method: angle, grid, dim, random")
	seedN := flag.Int("seed-n", 1000, "number of synthetic seed services (ignored with -seed-file/-snapshot)")
	seedD := flag.Int("seed-d", 4, "QoS attributes of synthetic seeds")
	seedFile := flag.String("seed-file", "", "CSV file of seed services instead of synthetic data")
	header := flag.Bool("header", false, "seed CSV has a header row")
	snapshot := flag.String("snapshot", "", "catalogue file: loaded at boot, saved on shutdown")
	sloP99 := flag.Duration("slo-p99", 250*time.Millisecond, "p99 latency objective for skyline reads (0 disables)")
	sloAvail := flag.Float64("slo-avail", 0.999, "availability objective: target non-5xx request fraction (0 disables)")
	slowThreshold := flag.Duration("slow-threshold", 100*time.Millisecond, "queries at least this slow are flagged into /debug/slowlog")
	publishQueue := flag.Int("publish-queue", 0, "publish pipeline queue depth (0 = default)")
	publishBatch := flag.Int("publish-batch", 0, "publish pipeline max group-commit batch (0 = default)")
	flag.Parse()

	if err := run(*addr, *method, *seedN, *seedD, *seedFile, *header, *snapshot, *sloP99, *sloAvail, *slowThreshold, *publishQueue, *publishBatch); err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, method string, seedN, seedD int, seedFile string, header bool, snapshot string,
	sloP99 time.Duration, sloAvail float64, slowThreshold time.Duration, publishQueue, publishBatch int) error {
	scheme, err := parseScheme(method)
	if err != nil {
		return err
	}
	// The boot computation runs under a flight recorder and the event
	// log, so the partition shape of the seeded catalogue is inspectable
	// at /debug/flightrecorder and its job narration at /debug/events.
	recorder := telemetry.NewRecorder(fmt.Sprintf("skyserve-boot:%s", scheme))
	events := telemetry.NewEventLog(1024)
	start := time.Now()
	bootCtx := telemetry.WithEventLog(telemetry.WithRecorder(context.Background(), recorder), events)
	reg, err := bootRegistry(bootCtx, scheme, seedN, seedD, seedFile, header, snapshot)
	if err != nil {
		return err
	}
	events.BindMetrics(reg.Metrics())
	if publishQueue > 0 || publishBatch > 0 {
		if err := reg.ConfigurePublish(publishQueue, publishBatch); err != nil {
			return err
		}
	}
	reg.ConfigureQueryLog(256, 16, slowThreshold)
	sloCtx, stopSLO := context.WithCancel(context.Background())
	defer stopSLO()
	if sloP99 > 0 || sloAvail > 0 {
		tracker := reg.ConfigureSLO(registry.SLOOptions{
			P99Threshold: sloP99,
			Availability: sloAvail,
			Events:       events,
		})
		go tracker.Run(sloCtx, 5*time.Second)
	}
	events.Info("registry ready", telemetry.A("services", reg.Len()),
		telemetry.A("dim", reg.Dim()), telemetry.A("scheme", fmt.Sprint(scheme)))
	fmt.Fprintf(os.Stderr, "skyserve: %d services (%d attributes), %s partitioning, listening on %s\n",
		reg.Len(), reg.Dim(), scheme, addr)

	// Metric history: the sampler feeds /debug/timeseries so operators
	// can read QPS and latency trends off the registry itself.
	sampler := timeseries.NewSampler(reg.Metrics(), timeseries.Config{})
	sampler.Start()

	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	timeseries.Mount(mux, sampler)
	telemetry.MountPprof(mux)
	telemetry.MountFlightRecorder(mux, func() *telemetry.Recorder { return recorder })
	telemetry.MountEvents(mux, events)
	telemetry.MountHealth(mux, func() any {
		return serveHealth{
			Status:        "ok",
			UptimeSeconds: time.Since(start).Seconds(),
			Services:      reg.Len(),
			Dim:           reg.Dim(),
			SkylineSize:   len(reg.Skyline()),
			EventCounts:   events.LevelCounts(),
		}
	})
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "skyserve: %v, shutting down\n", s)
		events.Info("shutdown", telemetry.A("signal", s.String()),
			telemetry.A("services", reg.Len()))
		// Stop takes the final flush sample before the dump, so the last
		// state of the draining process is in the retained history too.
		sampler.Stop()
		_ = telemetry.DumpOps(os.Stderr, events, slog.LevelInfo, reg.Metrics())
	}
	// Drain the publish pipeline before snapshotting: every queued publish
	// is folded and acknowledged, so the saved catalogue includes them.
	reg.Close()
	if snapshot != "" {
		f, err := os.Create(snapshot)
		if err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		if err := reg.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("saving snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "skyserve: catalogue saved to %s (%d services)\n", snapshot, reg.Len())
	}
	return srv.Shutdown(context.Background())
}

// bootRegistry picks the data source by precedence: snapshot file (if it
// exists), then seed CSV, then synthetic data.
func bootRegistry(ctx context.Context, scheme partition.Scheme, seedN, seedD int, seedFile string, header bool, snapshot string) (*registry.Registry, error) {
	opts := driver.Options{Scheme: scheme}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			reg, err := registry.Load(ctx, f, opts)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
			}
			fmt.Fprintf(os.Stderr, "skyserve: restored catalogue from %s\n", snapshot)
			return reg, nil
		}
	}
	var data skymr.Set
	if seedFile != "" {
		f, err := os.Open(seedFile)
		if err != nil {
			return nil, err
		}
		data, _, err = skymr.ReadCSV(f, header)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		data = skymr.GenerateQWS(2012, seedN, seedD)
	}
	seeds := make([]registry.Service, len(data))
	for i, p := range data {
		seeds[i] = registry.Service{Name: fmt.Sprintf("seed-%06d", i), QoS: p}
	}
	return registry.New(ctx, seeds, opts)
}

func parseScheme(s string) (partition.Scheme, error) {
	switch s {
	case "angle":
		return partition.Angular, nil
	case "grid":
		return partition.Grid, nil
	case "dim":
		return partition.Dimensional, nil
	case "random":
		return partition.Random, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
