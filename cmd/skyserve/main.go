// Command skyserve runs the UDDI-like skyline registry as an HTTP
// service: providers publish services with QoS vectors, clients query the
// live skyline. The skyline is maintained incrementally (paper §II) — a
// publish touches only the service's partition.
//
// Usage:
//
//	skyserve [-addr :8080] [-method angle] [-seed-n 1000] [-seed-d 4]
//	         [-seed-file data.csv] [-header] [-snapshot registry.jsonl]
//
// API:
//
//	POST /services      {"name": "svc-1", "qos": [120.5, 3.2, 0.7, 14]}
//	GET  /skyline
//	GET  /stats
//	GET  /metrics       Prometheus text exposition
//	GET  /debug/pprof/  Go runtime profiles
//	GET  /debug/flightrecorder  boot computation's flight record (JSON)
//
// With -snapshot, the catalogue is loaded from the file at boot (when it
// exists) and written back on SIGINT/SIGTERM, so a restarted registry
// resumes where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	skymr "repro"
	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	method := flag.String("method", "angle", "partitioning method: angle, grid, dim, random")
	seedN := flag.Int("seed-n", 1000, "number of synthetic seed services (ignored with -seed-file/-snapshot)")
	seedD := flag.Int("seed-d", 4, "QoS attributes of synthetic seeds")
	seedFile := flag.String("seed-file", "", "CSV file of seed services instead of synthetic data")
	header := flag.Bool("header", false, "seed CSV has a header row")
	snapshot := flag.String("snapshot", "", "catalogue file: loaded at boot, saved on shutdown")
	flag.Parse()

	if err := run(*addr, *method, *seedN, *seedD, *seedFile, *header, *snapshot); err != nil {
		fmt.Fprintf(os.Stderr, "skyserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, method string, seedN, seedD int, seedFile string, header bool, snapshot string) error {
	scheme, err := parseScheme(method)
	if err != nil {
		return err
	}
	// The boot computation runs under a flight recorder, so the partition
	// shape of the seeded catalogue is inspectable at /debug/flightrecorder.
	recorder := telemetry.NewRecorder(fmt.Sprintf("skyserve-boot:%s", scheme))
	reg, err := bootRegistry(telemetry.WithRecorder(context.Background(), recorder),
		scheme, seedN, seedD, seedFile, header, snapshot)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "skyserve: %d services (%d attributes), %s partitioning, listening on %s\n",
		reg.Len(), reg.Dim(), scheme, addr)

	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	telemetry.MountPprof(mux)
	telemetry.MountFlightRecorder(mux, func() *telemetry.Recorder { return recorder })
	srv := &http.Server{Addr: addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "skyserve: %v, shutting down\n", s)
	}
	if snapshot != "" {
		f, err := os.Create(snapshot)
		if err != nil {
			return fmt.Errorf("saving snapshot: %w", err)
		}
		if err := reg.Save(f); err != nil {
			f.Close()
			return fmt.Errorf("saving snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "skyserve: catalogue saved to %s (%d services)\n", snapshot, reg.Len())
	}
	return srv.Shutdown(context.Background())
}

// bootRegistry picks the data source by precedence: snapshot file (if it
// exists), then seed CSV, then synthetic data.
func bootRegistry(ctx context.Context, scheme partition.Scheme, seedN, seedD int, seedFile string, header bool, snapshot string) (*registry.Registry, error) {
	opts := driver.Options{Scheme: scheme}
	if snapshot != "" {
		if f, err := os.Open(snapshot); err == nil {
			defer f.Close()
			reg, err := registry.Load(ctx, f, opts)
			if err != nil {
				return nil, fmt.Errorf("loading snapshot %s: %w", snapshot, err)
			}
			fmt.Fprintf(os.Stderr, "skyserve: restored catalogue from %s\n", snapshot)
			return reg, nil
		}
	}
	var data skymr.Set
	if seedFile != "" {
		f, err := os.Open(seedFile)
		if err != nil {
			return nil, err
		}
		data, _, err = skymr.ReadCSV(f, header)
		f.Close()
		if err != nil {
			return nil, err
		}
	} else {
		data = skymr.GenerateQWS(2012, seedN, seedD)
	}
	seeds := make([]registry.Service, len(data))
	for i, p := range data {
		seeds[i] = registry.Service{Name: fmt.Sprintf("seed-%06d", i), QoS: p}
	}
	return registry.New(ctx, seeds, opts)
}

func parseScheme(s string) (partition.Scheme, error) {
	switch s {
	case "angle":
		return partition.Angular, nil
	case "grid":
		return partition.Grid, nil
	case "dim":
		return partition.Dimensional, nil
	case "random":
		return partition.Random, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
