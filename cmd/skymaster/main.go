// Command skymaster runs the distributed skyline master: it listens for
// skyworker connections, then executes the two-job MapReduce skyline
// pipeline over the cluster and prints the skyline.
//
// Usage:
//
//	skymaster [-addr 127.0.0.1:7077] [-method angle|grid|dim|random]
//	          [-partitions 8] [-reducers 4] [-min-workers 1] [-split 1000]
//	          [-liveness 10s] [-linger 0s] [-reducer-budget BYTES]
//	          [-metrics-addr 127.0.0.1:9090] [-trace run.json]
//	          [-flight-out flight.json] [-capture-dir DIR] [-header] input.csv
//
// With -metrics-addr, the master serves /metrics (Prometheus text),
// /debug/pprof/, /debug/flightrecorder (the job's flight record as
// JSON), /debug/events (the structured event stream as JSON lines),
// /debug/health (worker states, queue depth, phase progress),
// /debug/timeseries (sampled metric history) and /debug/cluster (the
// federated view: every worker's /metrics scraped, re-labeled with its
// worker id, and merged with the master's own registry) on a second
// listener — the surface `skytop` renders. An anomaly watchdog watches
// the sampled history for throughput stalls, heartbeat gaps, reducer
// budget pressure and GC-pause spikes; each anomaly lands in the event
// log and bumps telemetry_anomalies_total{rule}, and with -capture-dir
// the first anomaly per cooldown also writes a CPU+heap profile pair
// there. With -trace, the two-job run — including the workers' task
// spans, shipped back over RPC and stitched under one trace — is
// recorded as Chrome trace_event JSON, loadable in chrome://tracing or
// Perfetto. With -flight-out, the flight record is also written to a
// file. With -linger, the master keeps the debug endpoints up for that
// long after the job finishes (or until SIGINT/SIGTERM) so dashboards
// and CI can inspect the completed run.
//
// On SIGINT/SIGTERM the master drains workers, takes one final
// time-series sample, shuts the debug server down gracefully, and
// flushes the event log plus a last metrics snapshot to stderr before
// exiting.
//
// Start workers with: skyworker -master <addr>.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	skymr "repro"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rpcmr"
	"repro/internal/skyjob"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
	"repro/internal/telemetry/timeseries"
)

// options bundles the command-line configuration.
type options struct {
	addr            string
	method          string
	path            string
	partitions      int
	reducers        int
	minWorkers      int
	split           int
	header          bool
	timeout         time.Duration
	liveness        time.Duration
	linger          time.Duration
	metricsAddr     string
	traceFile       string
	flightFile      string
	historyFile     string
	budget          int64
	sampleInterval  time.Duration
	sampleRetention int
	scrapeInterval  time.Duration
	stallWindow     time.Duration
	captureDir      string
	captureCooldown time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:7077", "listen address")
	flag.StringVar(&o.method, "method", "angle", "partitioning method: angle, grid, dim, random")
	flag.IntVar(&o.partitions, "partitions", 8, "number of data-space partitions")
	flag.IntVar(&o.reducers, "reducers", 4, "number of reduce tasks for the partitioning job")
	flag.IntVar(&o.minWorkers, "min-workers", 1, "wait for at least this many workers before starting")
	flag.IntVar(&o.split, "split", 0, "records per map task (0 = default 1000)")
	flag.BoolVar(&o.header, "header", false, "input has a header row")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Minute, "overall job timeout")
	flag.DurationVar(&o.liveness, "liveness", 10*time.Second,
		"heartbeat window: a worker silent this long is suspect, 3x this long is dead")
	flag.DurationVar(&o.linger, "linger", 0,
		"keep serving debug endpoints this long after the job (0 = exit immediately)")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/* on this address (empty = off)")
	flag.StringVar(&o.traceFile, "trace", "", "write a Chrome trace_event JSON of the run to this file (empty = off)")
	flag.StringVar(&o.flightFile, "flight-out", "", "write the flight-recorder JSON report to this file (empty = off)")
	flag.StringVar(&o.historyFile, "runhistory", "",
		"append this run's flight+critpath summary to a bounded JSONL history file and compare against the baseline (empty = in-memory only)")
	flag.Int64Var(&o.budget, "reducer-budget", 0,
		"per-worker reducer memory budget in bytes; overflow spills to frames and resolves in extra passes (0 = unbudgeted)")
	flag.DurationVar(&o.sampleInterval, "sample-interval", time.Second, "metric time-series sampling cadence")
	flag.IntVar(&o.sampleRetention, "sample-retention", 300, "metric time-series samples retained per series")
	flag.DurationVar(&o.scrapeInterval, "scrape-interval", 2*time.Second, "worker /metrics federation scrape cadence")
	flag.DurationVar(&o.stallWindow, "stall-window", 5*time.Second,
		"a worker holding work with zero completions for this long is a throughput stall")
	flag.StringVar(&o.captureDir, "capture-dir", "",
		"write a CPU+heap profile pair here on each anomaly (empty = no capture)")
	flag.DurationVar(&o.captureCooldown, "capture-cooldown", 5*time.Minute,
		"minimum spacing between anomaly profile captures")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skymaster [flags] input.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	o.path = flag.Arg(0)
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "skymaster: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	scheme, err := parseScheme(o.method)
	if err != nil {
		return err
	}
	f, err := os.Open(o.path)
	if err != nil {
		return err
	}
	data, cols, err := skymr.ReadCSV(f, o.header)
	f.Close()
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("no data rows in %s", o.path)
	}

	// The flight recorder, event log, tracer and run history are always
	// on: all are small bounded structures, and /debug/flightrecorder,
	// /debug/events, /debug/critpath and /debug/runhistory read from
	// them. (-trace additionally writes the Chrome trace file.)
	recorder := telemetry.NewRecorder(fmt.Sprintf("skyline:%s", scheme))
	events := telemetry.NewEventLog(2048)
	tracer := telemetry.NewTracer()
	history, err := telemetry.OpenRunHistory(o.historyFile, 200)
	if err != nil {
		return err
	}

	var metrics *telemetry.Registry
	if o.metricsAddr != "" {
		metrics = telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(metrics)
		events.BindMetrics(metrics)
	}

	master, err := rpcmr.NewMaster(rpcmr.MasterConfig{
		Addr:           o.addr,
		SplitSize:      o.split,
		LivenessWindow: o.liveness,
		Metrics:        metrics,
		Events:         events,
	})
	if err != nil {
		return err
	}
	defer master.Close()

	// The observability plane: sampler (metric history), federator
	// (cluster-wide scrape) and watchdog (anomaly rules over the
	// history). All nil-safe, so the drain path below stops them
	// unconditionally.
	var (
		sampler   *timeseries.Sampler
		federator *telemetry.Federator
		watchdog  *timeseries.Watchdog
		srv       *http.Server
	)
	if o.metricsAddr != "" {
		sampler = timeseries.NewSampler(metrics, timeseries.Config{
			Interval: o.sampleInterval, Retention: o.sampleRetention,
		})
		sampler.Start()
		federator = telemetry.NewFederator(telemetry.FederatorConfig{
			Self:     metrics,
			Targets:  master.DebugTargets,
			Interval: o.scrapeInterval,
			Events:   events,
		})
		federator.Start()
		rules := []timeseries.Rule{
			timeseries.PairedStallRule("throughput-stall",
				"rpcmr_worker_tasks_done", "rpcmr_worker_inflight", "worker", o.stallWindow, 1),
			// Worker state >= 1 is suspect or dead: the heartbeat gap the
			// health machine already flagged, surfaced as an anomaly too.
			timeseries.GaugeAboveRule("heartbeat-gap", "rpcmr_worker_state", 1, "worker"),
			// GC pause rate above 5% of wall time is a collector in trouble.
			timeseries.RateAboveRule("gc-pause-spike", "process_gc_pause_seconds_total", 0.05, o.stallWindow),
		}
		if o.budget > 0 {
			rules = append(rules, timeseries.GaugeAboveRule("reducer-budget",
				"skyline_reducer_peak_bytes", 0.8*float64(o.budget), ""))
		}
		watchdog = timeseries.NewWatchdog(sampler, timeseries.WatchdogConfig{
			Events:          events,
			Metrics:         metrics,
			CaptureDir:      o.captureDir,
			CaptureCooldown: o.captureCooldown,
		}, rules...)
		watchdog.Start()

		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		telemetry.MountPprof(mux)
		telemetry.MountFlightRecorder(mux, func() *telemetry.Recorder { return recorder })
		telemetry.MountEvents(mux, events)
		telemetry.MountHealth(mux, func() any { return master.Health() })
		telemetry.MountCluster(mux, federator)
		timeseries.Mount(mux, sampler)
		critpath.Mount(mux, func() *critpath.Analysis {
			a, err := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{})
			if err != nil {
				return nil
			}
			return a
		})
		telemetry.MountRunHistory(mux, func() *telemetry.RunHistory { return history })
		srv = &http.Server{Handler: mux}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "skymaster: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "skymaster: metrics on http://%s/metrics, cluster on /debug/cluster, history on /debug/timeseries\n",
			ln.Addr().String())
	}

	// Signal handling: first SIGINT/SIGTERM drains the cluster and aborts
	// the run; the deferred dump below flushes the operational record.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	signalled := func() bool { return sigCtx.Err() != nil }
	defer func() {
		master.Drain()
		// One poll interval of grace so idle workers pick up the
		// TaskShutdown notice before the listener goes away.
		time.Sleep(200 * time.Millisecond)
		events.Info("shutdown", telemetry.A("signalled", signalled()))
		// Drain the observability plane in dependency order: watchdog and
		// federator first (both read the sampler/registry), then the
		// sampler (Stop takes the final flush sample), then a bounded
		// graceful server shutdown so in-flight scrapes finish.
		watchdog.Stop()
		federator.Stop()
		sampler.Stop()
		if srv != nil {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			_ = srv.Shutdown(sctx)
			cancel()
		}
		if signalled() {
			// Flush the event log and a last metrics snapshot so an
			// interrupted run still leaves its operational record behind.
			fmt.Fprintln(os.Stderr, "skymaster: interrupted — dumping event log and metrics")
			_ = telemetry.DumpOps(os.Stderr, events, slog.LevelInfo, metrics)
		}
	}()

	fmt.Fprintf(os.Stderr, "skymaster: listening on %s, waiting for %d worker(s)...\n",
		master.Addr(), o.minWorkers)
	for master.WorkerCount() < o.minWorkers {
		if signalled() {
			return fmt.Errorf("interrupted while waiting for workers")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "skymaster: %d worker(s) connected, starting job\n", master.WorkerCount())

	ctx, cancel := context.WithTimeout(sigCtx, o.timeout)
	defer cancel()

	ctx = telemetry.WithTracer(ctx, tracer)
	ctx = telemetry.WithRecorder(ctx, recorder)
	ctx = telemetry.WithEventLog(ctx, events)

	// Progress reporter: one line per second while a job phase runs.
	progressDone := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-progressDone:
				return
			case <-ticker.C:
				st := master.Status()
				if st.JobRunning {
					phase := "map"
					if st.Phase == rpcmr.TaskReduce {
						phase = "reduce"
					}
					fmt.Fprintf(os.Stderr, "skymaster: %s %s phase %d/%d tasks (%d queued, %d live workers)\n",
						st.JobName, phase, st.TasksDone, st.TasksTotal, st.Pending, st.LiveWorkers)
				}
			}
		}
	}()

	start := time.Now()
	spec, err := skyjob.SpecFor(data, scheme, o.partitions)
	if err != nil {
		close(progressDone)
		return err
	}
	if o.budget > 0 {
		spec.ReducerBudgetBytes = o.budget
		spec.Codec = points.FrameAuto
	}
	res, err := skyjob.ComputeSpec(ctx, master, data, spec, o.reducers)
	close(progressDone)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"skymaster: skyline %d of %d points in %s (partition job map %.2fs/reduce %.2fs, merge job map %.2fs/reduce %.2fs)\n",
		len(res.Skyline), len(data), time.Since(start).Round(time.Millisecond),
		res.MapTime.PartitionJob, res.ReduceTime.PartitionJob,
		res.MapTime.MergeJob, res.ReduceTime.MergeJob)
	// Critical-path profile: where the makespan went, and what balance
	// or de-straggling would have bought. The summary joins the bounded
	// run history, which flags regressions against prior same-shape runs.
	if analysis, aerr := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{}); aerr == nil {
		var top critpath.PhaseBlame
		for _, p := range analysis.Phases {
			if p.Seconds > top.Seconds {
				top = p
			}
		}
		fmt.Fprintf(os.Stderr, "skymaster: critical path %.2fs, bottleneck %s (%.0f%%)",
			analysis.MakespanSeconds, top.Phase, top.Share*100)
		for _, sc := range analysis.WhatIf {
			if sc.Name == "perfect-balance" || sc.Name == "no-straggler" {
				fmt.Fprintf(os.Stderr, ", %s %.2fs (%.2fx)", sc.Name, sc.PredictedSeconds, sc.SpeedupX)
			}
		}
		fmt.Fprintln(os.Stderr)
		label := fmt.Sprintf("method=%s n=%d p=%d workers=%d", o.method, len(data), o.partitions, master.WorkerCount())
		if err := history.Append(critpath.Summarize(analysis, recorder.Report(), label)); err != nil {
			fmt.Fprintf(os.Stderr, "skymaster: run history: %v\n", err)
		}
		for _, reg := range history.CompareLatest() {
			fmt.Fprintf(os.Stderr, "skymaster: REGRESSION %s: %.3f vs baseline %.3f (%.2fx)\n",
				reg.Metric, reg.Current, reg.Baseline, reg.Ratio)
		}
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "skymaster: trace written to %s (%d spans) — open in chrome://tracing\n",
			o.traceFile, len(tracer.Spans()))
	}
	if o.flightFile != "" {
		rep, err := json.MarshalIndent(recorder.Report(), "", "  ")
		if err != nil {
			return fmt.Errorf("writing flight record: %w", err)
		}
		if err := os.WriteFile(o.flightFile, append(rep, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing flight record: %w", err)
		}
		fmt.Fprintf(os.Stderr, "skymaster: flight record written to %s\n", o.flightFile)
	}
	if err := skymr.WriteCSV(os.Stdout, res.Skyline, cols); err != nil {
		return err
	}
	if o.linger > 0 && !signalled() {
		// Keep /metrics and /debug/* up for dashboards (skytop) and CI
		// probes; workers stay idle-polling until drained on exit.
		events.Info("lingering", telemetry.A("seconds", o.linger.Seconds()))
		fmt.Fprintf(os.Stderr, "skymaster: job done, serving debug endpoints for %s (SIGTERM to exit now)\n", o.linger)
		select {
		case <-sigCtx.Done():
		case <-time.After(o.linger):
		}
	}
	return nil
}

func parseScheme(s string) (partition.Scheme, error) {
	switch s {
	case "angle":
		return partition.Angular, nil
	case "grid":
		return partition.Grid, nil
	case "dim":
		return partition.Dimensional, nil
	case "random":
		return partition.Random, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
