// Command skymaster runs the distributed skyline master: it listens for
// skyworker connections, then executes the two-job MapReduce skyline
// pipeline over the cluster and prints the skyline.
//
// Usage:
//
//	skymaster [-addr 127.0.0.1:7077] [-method angle|grid|dim|random]
//	          [-partitions 8] [-reducers 4] [-min-workers 1]
//	          [-liveness 10s] [-linger 0s] [-reducer-budget BYTES]
//	          [-metrics-addr 127.0.0.1:9090] [-trace run.json]
//	          [-flight-out flight.json] [-header] input.csv
//
// With -metrics-addr, the master serves /metrics (Prometheus text),
// /debug/pprof/, /debug/flightrecorder (the job's flight record as
// JSON), /debug/events (the structured event stream as JSON lines) and
// /debug/health (worker states, queue depth, phase progress) on a second
// listener — the surface `skytop` renders. With -trace, the two-job run
// — including the workers' task spans, shipped back over RPC and
// stitched under one trace — is recorded as Chrome trace_event JSON,
// loadable in chrome://tracing or Perfetto. With -flight-out, the flight
// record is also written to a file. With -linger, the master keeps the
// debug endpoints up for that long after the job finishes (or until
// SIGINT/SIGTERM) so dashboards and CI can inspect the completed run.
//
// On SIGINT/SIGTERM the master drains workers, emits a final shutdown
// event, and flushes the event log plus a last metrics snapshot to
// stderr before exiting.
//
// Start workers with: skyworker -master <addr>.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	skymr "repro"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rpcmr"
	"repro/internal/skyjob"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address")
	method := flag.String("method", "angle", "partitioning method: angle, grid, dim, random")
	partitions := flag.Int("partitions", 8, "number of data-space partitions")
	reducers := flag.Int("reducers", 4, "number of reduce tasks for the partitioning job")
	minWorkers := flag.Int("min-workers", 1, "wait for at least this many workers before starting")
	header := flag.Bool("header", false, "input has a header row")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall job timeout")
	liveness := flag.Duration("liveness", 10*time.Second,
		"heartbeat window: a worker silent this long is suspect, 3x this long is dead")
	linger := flag.Duration("linger", 0,
		"keep serving debug endpoints this long after the job (0 = exit immediately)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics and /debug/* on this address (empty = off)")
	traceFile := flag.String("trace", "", "write a Chrome trace_event JSON of the run to this file (empty = off)")
	flightFile := flag.String("flight-out", "", "write the flight-recorder JSON report to this file (empty = off)")
	historyFile := flag.String("runhistory", "",
		"append this run's flight+critpath summary to a bounded JSONL history file and compare against the baseline (empty = in-memory only)")
	budget := flag.Int64("reducer-budget", 0,
		"per-worker reducer memory budget in bytes; overflow spills to frames and resolves in extra passes (0 = unbudgeted)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skymaster [flags] input.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*addr, *method, flag.Arg(0), *partitions, *reducers, *minWorkers, *header,
		*timeout, *liveness, *linger, *metricsAddr, *traceFile, *flightFile, *historyFile, *budget); err != nil {
		fmt.Fprintf(os.Stderr, "skymaster: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, method, path string, partitions, reducers, minWorkers int, header bool,
	timeout, liveness, linger time.Duration, metricsAddr, traceFile, flightFile, historyFile string, budget int64) error {
	scheme, err := parseScheme(method)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	data, cols, err := skymr.ReadCSV(f, header)
	f.Close()
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("no data rows in %s", path)
	}

	// The flight recorder, event log, tracer and run history are always
	// on: all are small bounded structures, and /debug/flightrecorder,
	// /debug/events, /debug/critpath and /debug/runhistory read from
	// them. (-trace additionally writes the Chrome trace file.)
	recorder := telemetry.NewRecorder(fmt.Sprintf("skyline:%s", scheme))
	events := telemetry.NewEventLog(2048)
	tracer := telemetry.NewTracer()
	history, err := telemetry.OpenRunHistory(historyFile, 200)
	if err != nil {
		return err
	}

	var metrics *telemetry.Registry
	if metricsAddr != "" {
		metrics = telemetry.NewRegistry()
		telemetry.RegisterProcessMetrics(metrics)
		events.BindMetrics(metrics)
	}

	master, err := rpcmr.NewMaster(rpcmr.MasterConfig{
		Addr:           addr,
		LivenessWindow: liveness,
		Metrics:        metrics,
		Events:         events,
	})
	if err != nil {
		return err
	}
	defer master.Close()

	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		telemetry.MountPprof(mux)
		telemetry.MountFlightRecorder(mux, func() *telemetry.Recorder { return recorder })
		telemetry.MountEvents(mux, events)
		telemetry.MountHealth(mux, func() any { return master.Health() })
		critpath.Mount(mux, func() *critpath.Analysis {
			a, err := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{})
			if err != nil {
				return nil
			}
			return a
		})
		telemetry.MountRunHistory(mux, func() *telemetry.RunHistory { return history })
		go func() {
			if err := http.ListenAndServe(metricsAddr, mux); err != nil {
				fmt.Fprintf(os.Stderr, "skymaster: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "skymaster: metrics on http://%s/metrics, health on /debug/health, events on /debug/events\n", metricsAddr)
	}

	// Signal handling: first SIGINT/SIGTERM drains the cluster and aborts
	// the run; the deferred dump below flushes the operational record.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	signalled := func() bool { return sigCtx.Err() != nil }
	defer func() {
		master.Drain()
		// One poll interval of grace so idle workers pick up the
		// TaskShutdown notice before the listener goes away.
		time.Sleep(200 * time.Millisecond)
		events.Info("shutdown", telemetry.A("signalled", signalled()))
		if signalled() {
			// Flush the event log and a last metrics snapshot so an
			// interrupted run still leaves its operational record behind.
			fmt.Fprintln(os.Stderr, "skymaster: interrupted — dumping event log and metrics")
			_ = telemetry.DumpOps(os.Stderr, events, slog.LevelInfo, metrics)
		}
	}()

	fmt.Fprintf(os.Stderr, "skymaster: listening on %s, waiting for %d worker(s)...\n",
		master.Addr(), minWorkers)
	for master.WorkerCount() < minWorkers {
		if signalled() {
			return fmt.Errorf("interrupted while waiting for workers")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "skymaster: %d worker(s) connected, starting job\n", master.WorkerCount())

	ctx, cancel := context.WithTimeout(sigCtx, timeout)
	defer cancel()

	ctx = telemetry.WithTracer(ctx, tracer)
	ctx = telemetry.WithRecorder(ctx, recorder)
	ctx = telemetry.WithEventLog(ctx, events)

	// Progress reporter: one line per second while a job phase runs.
	progressDone := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-progressDone:
				return
			case <-ticker.C:
				st := master.Status()
				if st.JobRunning {
					phase := "map"
					if st.Phase == rpcmr.TaskReduce {
						phase = "reduce"
					}
					fmt.Fprintf(os.Stderr, "skymaster: %s %s phase %d/%d tasks (%d queued, %d live workers)\n",
						st.JobName, phase, st.TasksDone, st.TasksTotal, st.Pending, st.LiveWorkers)
				}
			}
		}
	}()

	start := time.Now()
	spec, err := skyjob.SpecFor(data, scheme, partitions)
	if err != nil {
		close(progressDone)
		return err
	}
	if budget > 0 {
		spec.ReducerBudgetBytes = budget
		spec.Codec = points.FrameAuto
	}
	res, err := skyjob.ComputeSpec(ctx, master, data, spec, reducers)
	close(progressDone)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"skymaster: skyline %d of %d points in %s (partition job map %.2fs/reduce %.2fs, merge job map %.2fs/reduce %.2fs)\n",
		len(res.Skyline), len(data), time.Since(start).Round(time.Millisecond),
		res.MapTime.PartitionJob, res.ReduceTime.PartitionJob,
		res.MapTime.MergeJob, res.ReduceTime.MergeJob)
	// Critical-path profile: where the makespan went, and what balance
	// or de-straggling would have bought. The summary joins the bounded
	// run history, which flags regressions against prior same-shape runs.
	if analysis, aerr := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{}); aerr == nil {
		var top critpath.PhaseBlame
		for _, p := range analysis.Phases {
			if p.Seconds > top.Seconds {
				top = p
			}
		}
		fmt.Fprintf(os.Stderr, "skymaster: critical path %.2fs, bottleneck %s (%.0f%%)",
			analysis.MakespanSeconds, top.Phase, top.Share*100)
		for _, sc := range analysis.WhatIf {
			if sc.Name == "perfect-balance" || sc.Name == "no-straggler" {
				fmt.Fprintf(os.Stderr, ", %s %.2fs (%.2fx)", sc.Name, sc.PredictedSeconds, sc.SpeedupX)
			}
		}
		fmt.Fprintln(os.Stderr)
		label := fmt.Sprintf("method=%s n=%d p=%d workers=%d", method, len(data), partitions, master.WorkerCount())
		if err := history.Append(critpath.Summarize(analysis, recorder.Report(), label)); err != nil {
			fmt.Fprintf(os.Stderr, "skymaster: run history: %v\n", err)
		}
		for _, reg := range history.CompareLatest() {
			fmt.Fprintf(os.Stderr, "skymaster: REGRESSION %s: %.3f vs baseline %.3f (%.2fx)\n",
				reg.Metric, reg.Current, reg.Baseline, reg.Ratio)
		}
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "skymaster: trace written to %s (%d spans) — open in chrome://tracing\n",
			traceFile, len(tracer.Spans()))
	}
	if flightFile != "" {
		rep, err := json.MarshalIndent(recorder.Report(), "", "  ")
		if err != nil {
			return fmt.Errorf("writing flight record: %w", err)
		}
		if err := os.WriteFile(flightFile, append(rep, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing flight record: %w", err)
		}
		fmt.Fprintf(os.Stderr, "skymaster: flight record written to %s\n", flightFile)
	}
	if err := skymr.WriteCSV(os.Stdout, res.Skyline, cols); err != nil {
		return err
	}
	if linger > 0 && !signalled() {
		// Keep /metrics and /debug/* up for dashboards (skytop) and CI
		// probes; workers stay idle-polling until drained on exit.
		events.Info("lingering", telemetry.A("seconds", linger.Seconds()))
		fmt.Fprintf(os.Stderr, "skymaster: job done, serving debug endpoints for %s (SIGTERM to exit now)\n", linger)
		select {
		case <-sigCtx.Done():
		case <-time.After(linger):
		}
	}
	return nil
}

func parseScheme(s string) (partition.Scheme, error) {
	switch s {
	case "angle":
		return partition.Angular, nil
	case "grid":
		return partition.Grid, nil
	case "dim":
		return partition.Dimensional, nil
	case "random":
		return partition.Random, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}
