// Command skyline computes the skyline of a CSV dataset with a chosen
// MapReduce method, printing the skyline rows (and optionally statistics).
//
// Usage:
//
//	skyline [-method angle|grid|dim|random|seq] [-nodes N] [-header]
//	        [-stats] [-explain] [-flight] [-critpath] [-reducer-budget BYTES]
//	        [-out file.csv] input.csv
//
// The input must be numeric CSV, one service per row, attributes oriented
// so lower is better. With -method seq the skyline is computed with plain
// sequential BNL.
//
// With -explain (MapReduce methods, k=1) the merge is re-run with the
// instrumented per-partition BNL and the plan — candidates, dominance
// tests and global survivors per partition, plus stage timings — is
// printed to stderr, the offline twin of the registry's
// /skyline?explain=1.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	skymr "repro"
	"repro/internal/asciiplot"
	"repro/internal/driver"
	"repro/internal/points"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
)

func main() {
	method := flag.String("method", "angle", "partitioning method: angle, grid, dim, random, or seq")
	nodes := flag.Int("nodes", 4, "modelled cluster nodes (partitions = 2*nodes)")
	header := flag.Bool("header", false, "input has a header row")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	out := flag.String("out", "", "write skyline CSV to this file instead of stdout")
	k := flag.Int("k", 1, "compute the k-skyband instead of the skyline (k=1)")
	rep := flag.Int("rep", 0, "reduce the result to this many representative points (0 = all)")
	flight := flag.Bool("flight", false, "print the flight-recorder partition chart to stderr (MapReduce methods only)")
	critPath := flag.Bool("critpath", false, "print the critical-path waterfall and what-if predictions to stderr (MapReduce methods, k=1)")
	explain := flag.Bool("explain", false, "print the per-partition merge plan to stderr (MapReduce methods, k=1)")
	budget := flag.Int64("reducer-budget", 0, "reducer memory budget in bytes; overflow spills and resolves in extra passes (0 = unbudgeted, MapReduce methods, k=1)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: skyline [flags] input.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *method, *nodes, *header, *stats, *out, *k, *rep, *flight, *critPath, *explain, *budget); err != nil {
		fmt.Fprintf(os.Stderr, "skyline: %v\n", err)
		os.Exit(1)
	}
}

func run(path, method string, nodes int, header, stats bool, out string, k, rep int, flight, critPath, explain bool, budget int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, cols, err := skymr.ReadCSV(f, header)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("no data rows in %s", path)
	}

	if k < 1 {
		return fmt.Errorf("-k must be >= 1, got %d", k)
	}
	var sky skymr.Set
	start := time.Now()
	switch {
	case method == "seq" && k == 1:
		sky = skymr.Skyline(data)
		if stats {
			fmt.Fprintf(os.Stderr, "sequential BNL: %d of %d points in %s\n",
				len(sky), len(data), time.Since(start).Round(time.Microsecond))
		}
	case method == "seq":
		var err error
		sky, err = skymr.Skyband(data, k)
		if err != nil {
			return err
		}
		if stats {
			fmt.Fprintf(os.Stderr, "sequential %d-skyband: %d of %d points in %s\n",
				k, len(sky), len(data), time.Since(start).Round(time.Microsecond))
		}
	case k > 1:
		m, err := parseMethod(method)
		if err != nil {
			return err
		}
		sky, err = skymr.ComputeSkyband(context.Background(), data, k, skymr.Options{Method: m, Nodes: nodes})
		if err != nil {
			return err
		}
		if stats {
			fmt.Fprintf(os.Stderr, "%s %d-skyband: %d of %d points in %s\n",
				m, k, len(sky), len(data), time.Since(start).Round(time.Microsecond))
		}
	default:
		m, err := parseMethod(method)
		if err != nil {
			return err
		}
		ctx := context.Background()
		var recorder *telemetry.Recorder
		if flight || critPath {
			recorder = telemetry.NewRecorder(fmt.Sprintf("skyline:%s", m))
			ctx = telemetry.WithRecorder(ctx, recorder)
		}
		var tracer *telemetry.Tracer
		if critPath {
			tracer = telemetry.NewTracer()
			ctx = telemetry.WithTracer(ctx, tracer)
		}
		res, err := skymr.Compute(ctx, data, skymr.Options{Method: m, Nodes: nodes,
			ReducerBudgetBytes: budget})
		if err != nil {
			return err
		}
		sky = res.Skyline
		if flight {
			if err := asciiplot.FlightChart(os.Stderr, recorder.Report()); err != nil {
				return err
			}
		}
		if critPath {
			analysis, err := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{})
			if err != nil {
				return err
			}
			if err := asciiplot.CritPathChart(os.Stderr, analysis); err != nil {
				return err
			}
		}
		if explain {
			printExplain(os.Stderr, res)
		}
		if stats {
			fmt.Fprintf(os.Stderr,
				"%s: %d of %d points | partitions=%d pruned=%d localSky=%d | map=%s shuffle=%s reduce=%s total=%s | optimality=%.3f\n",
				res.Method, len(sky), len(data), res.Partitions, res.PrunedPartitions,
				res.LocalSkylineTotal(),
				res.Timing.Map.Round(time.Microsecond), res.Timing.Shuffle.Round(time.Microsecond),
				res.Timing.Reduce.Round(time.Microsecond), res.Timing.Total.Round(time.Microsecond),
				res.Optimality())
		}
	}

	if rep > 0 && rep < len(sky) {
		sky = skymr.RepresentativeSkyline(sky, rep)
		if stats {
			fmt.Fprintf(os.Stderr, "reduced to %d representatives\n", len(sky))
		}
	}

	w := os.Stdout
	if out != "" {
		g, err := os.Create(out)
		if err != nil {
			return err
		}
		defer g.Close()
		w = g
	}
	return skymr.WriteCSV(w, sky, cols)
}

// printExplain re-merges the computation's local skylines with the
// instrumented BNL and prints the per-partition plan. The merge result is
// discarded — it equals res.Skyline; only the attribution is wanted.
func printExplain(w io.Writer, res *skymr.Result) {
	local := make(map[int]points.Set, len(res.LocalSkylines))
	for id, s := range res.LocalSkylines {
		local[id] = s
	}
	_, ex := driver.ExplainMerge(fmt.Sprint(res.Method), local)
	fmt.Fprintf(w, "explain: scheme=%s partitions=%d candidates=%d dominance_tests=%d result=%d\n",
		ex.Scheme, ex.PartitionsProbed, ex.Candidates, ex.DominanceTests, ex.ResultSize)
	fmt.Fprintf(w, "  %9s %10s %10s %9s\n", "partition", "candidates", "dom_tests", "survivors")
	for _, pe := range ex.Partitions {
		fmt.Fprintf(w, "  %9d %10d %10d %9d\n", pe.Partition, pe.Candidates, pe.DominanceTests, pe.Survivors)
	}
}

func parseMethod(s string) (skymr.Method, error) {
	switch s {
	case "angle":
		return skymr.Angle, nil
	case "grid":
		return skymr.Grid, nil
	case "dim":
		return skymr.Dim, nil
	case "random":
		return skymr.Random, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want angle, grid, dim, random, or seq)", s)
	}
}
