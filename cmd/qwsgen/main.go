// Command qwsgen generates the synthetic QWS-like web-service QoS dataset
// used throughout the reproduction (see DESIGN.md for the substitution of
// the original QWS dataset).
//
// Usage:
//
//	qwsgen [-n 10000] [-d 10] [-seed 2012] [-o qws.csv]
//
// Output is CSV with a header of attribute names; values are oriented for
// minimization (0 is ideal in every column). For n > 10,000 the base
// dataset is extended by the paper's narrow-jitter resampling.
package main

import (
	"flag"
	"fmt"
	"os"

	skymr "repro"
	"repro/internal/qws"
)

func main() {
	n := flag.Int("n", 10000, "number of services")
	d := flag.Int("d", 10, "number of QoS attributes (2..10)")
	seed := flag.Int64("seed", 2012, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	describe := flag.Bool("describe", false, "print per-attribute statistics and correlations instead of CSV")
	flag.Parse()

	if *d < 2 || *d > 10 {
		fmt.Fprintln(os.Stderr, "qwsgen: -d must be in 2..10")
		os.Exit(2)
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "qwsgen: -n must be positive")
		os.Exit(2)
	}

	data := skymr.GenerateQWS(*seed, *n, *d)
	if *describe {
		stats, err := qws.Describe(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qwsgen: %v\n", err)
			os.Exit(1)
		}
		corr, err := qws.CorrelationMatrix(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qwsgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("synthetic QWS dataset: %d services x %d attributes (seed %d, oriented: 0 = best)\n\n", *n, *d, *seed)
		qws.WriteDescription(os.Stdout, stats, corr)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qwsgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := skymr.WriteCSV(w, data, skymr.QWSAttributeNames(*d)); err != nil {
		fmt.Fprintf(os.Stderr, "qwsgen: %v\n", err)
		os.Exit(1)
	}
}
