// Command skyload drives a skyline registry (skyserve) with a mixed
// publish/query workload and reports latency percentiles — the capacity
// check an operator runs before putting the registry in front of clients.
//
// Usage:
//
//	skyload [-url http://host:8080] [-publishes 1000] [-queries 1000]
//	        [-concurrency 8] [-d 4] [-seed 1] [-prom metrics.prom]
//	        [-slo-p99 50ms] [-slo-avail 0.999]
//
// With no -url, skyload boots an in-process registry (1,000 synthetic
// seed services) and load-tests that, so the tool works out of the box.
// With -prom, the client-side latency histograms are also written as a
// Prometheus text exposition, ready for node_exporter's textfile
// collector or offline diffing between runs.
//
// With -slo-p99 and/or -slo-avail, skyload turns into an SLO check: it
// compares the achieved skyline-read p99 and the achieved availability
// (non-failed fraction of all requests) against the targets, prints
// achieved-versus-target lines, and exits nonzero when an objective is
// missed — the CI-able form of "does the registry meet its SLO under
// this load".
//
// With -duration, skyload switches to closed-loop throughput mode:
// -workers goroutines issue skyline reads back-to-back for the duration
// (optionally against a concurrent publish stream, -publish-interval)
// and the report is achieved QPS plus p50/p99. -min-qps turns that into
// a gate that exits nonzero below the target — the serving core's
// capacity check:
//
//	skyload -workers 16 -duration 3s -min-qps 100000 -slo-p99 5ms
//
// In closed-loop in-process mode (no -url) the workers drive the
// registry handler directly, function call per request, so the gate
// measures the serving core rather than the kernel's TCP stack.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	skymr "repro"
	"repro/internal/driver"
	"repro/internal/latency"
	"repro/internal/partition"
	"repro/internal/registry"
	"repro/internal/telemetry"
)

func main() {
	url := flag.String("url", "", "registry base URL (empty: boot an in-process registry)")
	publishes := flag.Int("publishes", 1000, "number of POST /services requests")
	queries := flag.Int("queries", 1000, "number of GET /skyline requests")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	dim := flag.Int("d", 4, "QoS attributes of generated services (in-process mode and publish bodies)")
	seed := flag.Int64("seed", 1, "workload seed")
	prom := flag.String("prom", "", "write client-side latency histograms to this file as Prometheus text (empty = off)")
	sloP99 := flag.Duration("slo-p99", 0, "fail unless the achieved skyline-read p99 is at most this (0 = no check)")
	sloAvail := flag.Float64("slo-avail", 0, "fail unless the achieved non-failure fraction is at least this (0 = no check)")
	workers := flag.Int("workers", 16, "closed-loop mode: concurrent query workers")
	duration := flag.Duration("duration", 0, "closed-loop mode: run workers back-to-back for this long (0 = fixed-op mode)")
	minQPS := flag.Float64("min-qps", 0, "closed-loop mode: fail below this achieved queries/s (0 = report only)")
	pubEvery := flag.Duration("publish-interval", 0, "closed-loop mode: publish a fresh service this often in the background (0 = reads only)")
	flag.Parse()

	var err error
	if *duration > 0 {
		err = runClosedLoop(*url, *workers, *duration, *minQPS, *dim, *seed, *sloP99, *pubEvery)
	} else {
		err = run(*url, *publishes, *queries, *concurrency, *dim, *seed, *prom, *sloP99, *sloAvail)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "skyload: %v\n", err)
		os.Exit(1)
	}
}

// discardWriter is the closed-loop in-process ResponseWriter: it
// swallows the body, so a "request" is one handler call with no kernel
// round-trip — exactly the serving-core cost.
type discardWriter struct {
	h      http.Header
	status int
}

func (w *discardWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 2)
	}
	return w.h
}
func (w *discardWriter) WriteHeader(code int)        { w.status = code }
func (w *discardWriter) Write(b []byte) (int, error) { return len(b), nil }

// runClosedLoop is the throughput mode: workers hammer GET /skyline for
// the duration and the achieved QPS / p50 / p99 are gated.
func runClosedLoop(baseURL string, workers int, duration time.Duration, minQPS float64,
	dim int, seed int64, sloP99, pubEvery time.Duration) error {
	if workers < 1 {
		return fmt.Errorf("workers %d, need >= 1", workers)
	}

	var handler http.Handler
	var reg *registry.Registry
	if baseURL == "" {
		data := skymr.GenerateQWS(seed, 1000, dim)
		seeds := make([]registry.Service, len(data))
		for i, p := range data {
			seeds[i] = registry.Service{Name: fmt.Sprintf("seed-%06d", i), QoS: p}
		}
		var err error
		reg, err = registry.New(context.Background(), seeds, driver.Options{Scheme: partition.Angular})
		if err != nil {
			return err
		}
		defer reg.Close()
		handler = reg.Handler()
		fmt.Fprintf(os.Stderr, "skyload: closed loop against in-process registry (%d seed services, handler-direct)\n", reg.Len())
	}

	// Optional background publish stream: fresh services entering during
	// the measurement, so the gate covers reads under write load (cache
	// invalidations included).
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	var published int64
	if pubEvery > 0 {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			newcomers := skymr.GenerateQWS(seed+2, 1<<16, dim)
			client := &http.Client{Timeout: 30 * time.Second}
			tick := time.NewTicker(pubEvery)
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				s := registry.Service{
					Name: fmt.Sprintf("cl-%d-%06d", seed, i),
					QoS:  newcomers[i%len(newcomers)],
				}
				if reg != nil {
					if _, err := reg.Publish(s); err != nil {
						return
					}
				} else {
					body, _ := json.Marshal(s)
					if err := doPublish(client, baseURL, body); err != nil {
						return
					}
				}
				atomic.AddInt64(&published, 1)
			}
		}()
	}

	shards := make([]latency.Tracker, workers)
	counts := make([]int64, workers)
	var failures int64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if handler != nil {
				req := httptest.NewRequest(http.MethodGet, "/skyline", nil)
				var dw discardWriter
				for time.Now().Before(deadline) {
					t0 := time.Now()
					dw.status = 0
					handler.ServeHTTP(&dw, req)
					shards[w].Observe(time.Since(t0))
					counts[w]++
					if dw.status >= 400 {
						atomic.AddInt64(&failures, 1)
					}
				}
				return
			}
			client := &http.Client{Timeout: 30 * time.Second}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				err := doQuery(client, baseURL)
				shards[w].Observe(time.Since(t0))
				counts[w]++
				if err != nil {
					atomic.AddInt64(&failures, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	pubWG.Wait()

	var lat latency.Tracker
	var total int64
	for w := 0; w < workers; w++ {
		lat.Merge(&shards[w])
		total += counts[w]
	}
	qps := float64(total) / elapsed.Seconds()
	sum := lat.Summary()

	fmt.Printf("closed loop: %d workers x %s: %d queries (%.0f queries/s), %d background publishes\n\n",
		workers, duration, total, qps, atomic.LoadInt64(&published))
	sum.Write(os.Stdout, "skyline")
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	failed := false
	if minQPS > 0 {
		ok := qps >= minQPS
		fmt.Printf("\ngate: throughput    achieved=%-12.0f target>=%-10.0f %s\n", qps, minQPS, passFail(ok))
		failed = failed || !ok
	}
	if sloP99 > 0 {
		ok := sum.P99 <= sloP99
		if minQPS <= 0 {
			fmt.Println()
		}
		fmt.Printf("gate: skyline p99   achieved=%-12s target<=%-10s %s\n",
			sum.P99.Round(time.Microsecond), sloP99, passFail(ok))
		failed = failed || !ok
	}
	if failed {
		return fmt.Errorf("throughput gate failed")
	}
	return nil
}

func run(baseURL string, publishes, queries, concurrency, dim int, seed int64, promFile string,
	sloP99 time.Duration, sloAvail float64) error {
	if concurrency < 1 {
		return fmt.Errorf("concurrency %d, need >= 1", concurrency)
	}
	if baseURL == "" {
		data := skymr.GenerateQWS(seed, 1000, dim)
		seeds := make([]registry.Service, len(data))
		for i, p := range data {
			seeds[i] = registry.Service{Name: fmt.Sprintf("seed-%06d", i), QoS: p}
		}
		reg, err := registry.New(context.Background(), seeds, driver.Options{Scheme: partition.Angular})
		if err != nil {
			return err
		}
		srv := httptest.NewServer(reg.Handler())
		defer srv.Close()
		baseURL = srv.URL
		fmt.Fprintf(os.Stderr, "skyload: in-process registry with %d seed services at %s\n", reg.Len(), baseURL)
	}

	// Build the operation mix up front: publishes then queries, shuffled.
	type op struct {
		publish bool
		body    []byte
	}
	rng := rand.New(rand.NewSource(seed + 1))
	newcomers := skymr.GenerateQWS(seed+2, publishes, dim)
	ops := make([]op, 0, publishes+queries)
	for i := 0; i < publishes; i++ {
		body, err := json.Marshal(registry.Service{
			Name: fmt.Sprintf("load-%d-%06d", seed, i),
			QoS:  newcomers[i],
		})
		if err != nil {
			return err
		}
		ops = append(ops, op{publish: true, body: body})
	}
	for i := 0; i < queries; i++ {
		ops = append(ops, op{})
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })

	// Each worker records into its own trackers — no cross-worker lock
	// traffic on the hot path — and the shards are merged for the report.
	var failures int64
	client := &http.Client{Timeout: 30 * time.Second}
	work := make(chan op)
	var wg sync.WaitGroup
	pubShards := make([]latency.Tracker, concurrency)
	queryShards := make([]latency.Tracker, concurrency)
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for o := range work {
				start := time.Now()
				var err error
				if o.publish {
					err = doPublish(client, baseURL, o.body)
					pubShards[w].Observe(time.Since(start))
				} else {
					err = doQuery(client, baseURL)
					queryShards[w].Observe(time.Since(start))
				}
				if err != nil {
					atomic.AddInt64(&failures, 1)
				}
			}
		}(w)
	}
	start := time.Now()
	for _, o := range ops {
		work <- o
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	var pubLat, queryLat latency.Tracker
	for w := 0; w < concurrency; w++ {
		pubLat.Merge(&pubShards[w])
		queryLat.Merge(&queryShards[w])
	}

	fmt.Printf("workload: %d publishes + %d queries, %d workers, %s total (%.0f ops/s)\n\n",
		publishes, queries, concurrency, elapsed.Round(time.Millisecond),
		float64(publishes+queries)/elapsed.Seconds())
	pubLat.Summary().Write(os.Stdout, "publish")
	queryLat.Summary().Write(os.Stdout, "skyline")
	if promFile != "" {
		if err := exportProm(promFile, &pubLat, &queryLat); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "skyload: latency histograms written to %s\n", promFile)
	}
	// SLO checks: achieved versus target, one line each, all evaluated
	// before failing so the report is complete either way.
	sloFailed := false
	if sloP99 > 0 {
		achieved := queryLat.Summary().P99
		ok := achieved <= sloP99
		fmt.Printf("\nslo: skyline p99   achieved=%-10s target<=%-10s %s\n",
			achieved.Round(time.Microsecond), sloP99, passFail(ok))
		if !ok {
			sloFailed = true
		}
	}
	if sloAvail > 0 {
		total := publishes + queries
		achieved := 1.0
		if total > 0 {
			achieved = float64(int64(total)-failures) / float64(total)
		}
		ok := achieved >= sloAvail
		if sloP99 <= 0 {
			fmt.Println()
		}
		fmt.Printf("slo: availability  achieved=%-10.6f target>=%-10g %s\n",
			achieved, sloAvail, passFail(ok))
		if !ok {
			sloFailed = true
		}
	}
	if failures > 0 && sloAvail <= 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	if sloFailed {
		return fmt.Errorf("slo violated")
	}
	return nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// exportProm feeds the merged trackers into a telemetry registry
// bucket-by-bucket and writes the Prometheus text exposition.
func exportProm(path string, pubLat, queryLat *latency.Tracker) error {
	bounds := make([]time.Duration, 0, 16)
	for _, s := range telemetry.DurationBuckets() {
		bounds = append(bounds, time.Duration(s*float64(time.Second)))
	}
	reg := telemetry.NewRegistry()
	feed := func(opLabel string, tr *latency.Tracker) {
		h := reg.Histogram("skyload_request_seconds", telemetry.DurationBuckets(),
			telemetry.L("op", opLabel))
		for i, n := range tr.Histogram(bounds) {
			if n == 0 {
				continue
			}
			// Represent each bucket by its upper bound (overflow by 2× the
			// last bound) — exact per-bucket counts, approximate sum.
			v := bounds[len(bounds)-1].Seconds() * 2
			if i < len(bounds) {
				v = bounds[i].Seconds()
			}
			h.ObserveN(v, n)
		}
	}
	feed("publish", pubLat)
	feed("skyline", queryLat)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func doPublish(client *http.Client, base string, body []byte) error {
	resp, err := client.Post(base+"/services", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("publish status %d", resp.StatusCode)
	}
	return nil
}

func doQuery(client *http.Client, base string) error {
	resp, err := client.Get(base + "/skyline")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("query status %d", resp.StatusCode)
	}
	return nil
}
