package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/qws"
	"repro/internal/telemetry"
	"repro/internal/telemetry/timeseries"
)

// The obs suite prices the cluster observability plane: the same
// MR-Angle computation with a metrics registry alone versus with the
// full plane running against that registry — a background sampler
// ticking every 10ms (far hotter than the production 1s default) and a
// watchdog evaluating the stall/GC rules every 20ms. The gate bounds
// the sampled run at obsMaxOverhead of the plain one: sampling reads
// atomics and writes ring slots off the compute path, so the plane
// must be close to free. Two micro rows price the primitives
// themselves — one sampler tick and one watchdog evaluation over the
// registry the pipeline just populated — informational, for sizing
// cadence budgets.
const obsNote = "gate: sampled_ns / plain_ns <= max_overhead for the end-to-end pipeline with a " +
	"10ms sampler + 20ms watchdog (production cadence is 1s/5s); the sample_tick and " +
	"watchdog_eval rows are per-invocation micro costs, reported, not gated"

const obsMaxOverhead = 1.05

type obsRow struct {
	Name   string `json:"name"`
	Runs   int    `json:"runs"`
	WallNS int64  `json:"wall_ns"`
}

type obsReport struct {
	Timestamp string `json:"timestamp"`
	N         int    `json:"n"`
	D         int    `json:"d"`
	Nodes     int    `json:"nodes"`
	Runs      int    `json:"runs"`
	Quick     bool   `json:"quick"`

	Plain    obsRow  `json:"plain"`
	Sampled  obsRow  `json:"sampled"`
	Overhead float64 `json:"sampling_overhead"`
	Max      float64 `json:"max_overhead"`

	Series       int     `json:"series"`
	SampleTickNS float64 `json:"sample_tick_ns"`
	WatchdogNS   float64 `json:"watchdog_eval_ns"`

	Gated bool   `json:"gated"`
	Pass  bool   `json:"pass"`
	Notes string `json:"notes"`
}

// obsRules is the production rule set skymaster installs, minus the
// cluster-fed ones that need federated series to exist.
func obsRules(window time.Duration) []timeseries.Rule {
	return []timeseries.Rule{
		timeseries.PairedStallRule("throughput-stall", "rpcmr_worker_tasks_done",
			"rpcmr_worker_inflight", "worker", window, 1),
		timeseries.GaugeAboveRule("heartbeat-gap", "rpcmr_worker_state", 1, "worker"),
		timeseries.RateAboveRule("gc-pause-spike", "process_gc_pause_seconds_total", 0.05, window),
	}
}

func obsSuite(n, d, nodes, runs int, quick bool, out string) {
	if quick {
		n, runs = 20000, 2
	}
	fmt.Fprintf(os.Stderr, "benchgate: obs suite n=%d d=%d nodes=%d runs=%d\n", n, d, nodes, runs)
	data := qws.Dataset(2012, n, d)
	ctx := context.Background()

	compute := func(reg *telemetry.Registry) {
		opts := driver.Options{Scheme: partition.Angular, Nodes: nodes, Metrics: reg}
		if _, _, err := driver.Compute(ctx, data, opts); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: pipeline failed:", err)
			os.Exit(2)
		}
	}

	rep := obsReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		N:         n,
		D:         d,
		Nodes:     nodes,
		Runs:      runs,
		Quick:     quick,
		Max:       obsMaxOverhead,
		Gated:     !quick,
		Notes:     obsNote,
	}

	// Both arms carry identical registries — process metrics included —
	// so the ratio prices exactly the reader side (sampler + watchdog),
	// not registration differences. Runs are interleaved plain/sampled
	// so clock drift and container contention fall on both arms alike.
	plainReg := telemetry.NewRegistry()
	telemetry.RegisterProcessMetrics(plainReg)
	sampledReg := telemetry.NewRegistry()
	telemetry.RegisterProcessMetrics(sampledReg)
	sampler := timeseries.NewSampler(sampledReg, timeseries.Config{
		Interval: 10 * time.Millisecond, Retention: 1024,
	})
	sampler.Start()
	wd := timeseries.NewWatchdog(sampler, timeseries.WatchdogConfig{
		Interval: 20 * time.Millisecond,
		Metrics:  sampledReg,
	}, obsRules(time.Second)...)
	wd.Start()
	compute(plainReg)   // warm-up, untimed
	compute(sampledReg) // warm-up, untimed
	var plainWall, sampledWall int64 = 1<<63 - 1, 1<<63 - 1
	for r := 0; r < runs; r++ {
		start := time.Now()
		compute(plainReg)
		if el := time.Since(start).Nanoseconds(); el < plainWall {
			plainWall = el
		}
		start = time.Now()
		compute(sampledReg)
		if el := time.Since(start).Nanoseconds(); el < sampledWall {
			sampledWall = el
		}
	}
	wd.Stop()
	sampler.Stop()
	rep.Plain = obsRow{Name: "pipeline_plain", Runs: runs, WallNS: plainWall}
	rep.Sampled = obsRow{Name: "pipeline_sampled", Runs: runs, WallNS: sampledWall}
	rep.Overhead = float64(rep.Sampled.WallNS) / float64(rep.Plain.WallNS)

	// Micro rows over the registry the sampled pipeline populated.
	sampledReg.VisitSamples(func(string, float64) { rep.Series++ })
	tickRuns := 1000
	rep.SampleTickNS = float64(best(3, func() {
		for i := 0; i < tickRuns; i++ {
			sampler.Sample()
		}
	})) / float64(tickRuns)
	evalRuns := 1000
	rep.WatchdogNS = float64(best(3, func() {
		for i := 0; i < evalRuns; i++ {
			wd.Evaluate()
		}
	})) / float64(evalRuns)

	rep.Pass = quick || rep.Overhead <= obsMaxOverhead

	for _, r := range []obsRow{rep.Plain, rep.Sampled} {
		fmt.Fprintf(os.Stderr, "  %-18s wall=%s\n", r.Name, time.Duration(r.WallNS))
	}
	fmt.Fprintf(os.Stderr, "  sampling overhead = %.3fx (max %.2fx)\n", rep.Overhead, rep.Max)
	fmt.Fprintf(os.Stderr, "  series=%d sample_tick=%s watchdog_eval=%s\n",
		rep.Series, time.Duration(int64(rep.SampleTickNS)), time.Duration(int64(rep.WatchdogNS)))

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — sampling overhead %.3fx exceeds %.2fx\n",
			rep.Overhead, obsMaxOverhead)
		os.Exit(1)
	}
}
