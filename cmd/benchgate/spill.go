package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
)

// The spill suite measures the out-of-core engine on its two acceptance
// axes. Codec rows seal identical blocks as v1 and as bit-packed v2
// frames per benchmark distribution, at measurement precision (see
// codecPrecision), and gate the v2/v1 byte ratio at 0.7 on correlated
// and clustered inputs. The big-run row drives the full streaming
// pipeline (driver.ComputeStream) over a dataset that exists only as a
// chunk recipe, under a hard reducer byte budget, and then *certifies*
// the result exactly: a second streaming pass checks every generated
// point is dominated by (or coordinate-equal to) a skyline member and
// every member is undominated and present — an O(n·|SKY|) exactness
// certificate that never materializes the input. Merge communication is
// reported against the Zhang & Zhang output-sensitive lower bound
// (Computing Skylines on Distributed Data: Ω(k) points must move), i.e.
// skyline_size × d × 8 bytes.
const spillNote = "codec rows measured on a 2^-14 fixed-point grid (QWS-style ~4-decimal " +
	"measurement precision); " +
	"gate: v2/v1 <= 0.7 on correlated+clustered, auto <= v1 on all (incl. full-entropy " +
	"big-run stream); big run: exact streaming certificate, reducer peak asserted <= " +
	"budget; merge bytes reported against the Zhang & Zhang output-sensitive bound " +
	"(skyline size x d x 8)"

type codecRow struct {
	Kind string `json:"kind"`
	N    int    `json:"n"`
	// Precision is the measurement grid the coordinates are snapped to
	// before sealing (0 = raw full-entropy float64s).
	Precision float64 `json:"precision"`
	V1Bytes   int64   `json:"v1_bytes"`
	V2Bytes   int64   `json:"v2_bytes"`
	// AutoBytes is the wire codec's pick (v2 where smaller, else v1) —
	// never above V1Bytes.
	AutoBytes int64   `json:"auto_bytes"`
	V2Ratio   float64 `json:"v2_ratio"`
	AutoRatio float64 `json:"auto_ratio"`
	Gated     bool    `json:"gated"`
}

type throughputRow struct {
	N              int     `json:"n"`
	BudgetBytes    int64   `json:"budget_bytes"`
	UnbudgetedNS   int64   `json:"unbudgeted_ns"`
	BudgetedNS     int64   `json:"budgeted_ns"`
	ThroughputFrac float64 `json:"throughput_fraction"`
}

type bigRunRow struct {
	N                int     `json:"n"`
	D                int     `json:"d"`
	Kind             string  `json:"kind"`
	ChunkSize        int     `json:"chunk_size"`
	BudgetBytes      int64   `json:"budget_bytes"`
	WallSeconds      float64 `json:"wall_seconds"`
	SkylineSize      int     `json:"skyline_size"`
	ReducerPeakBytes int64   `json:"reducer_peak_bytes"`
	PeakUnderBudget  bool    `json:"peak_under_budget"`
	MergeRounds      int     `json:"merge_rounds"`
	MergeRoundBytes  []int64 `json:"merge_round_bytes"`
	MergePasses      int     `json:"merge_passes"`
	// OracleExact is the streaming certificate: every input point
	// dominated by or equal to a skyline member, every member undominated
	// and present in the input.
	OracleExact bool `json:"oracle_exact"`
	// ZhangZhangBoundBytes is the output-sensitive merge communication
	// lower bound (skyline_size × d × 8); BoundRatio is round-1 merge
	// bytes over it (1.0 = communication-optimal merge input).
	ZhangZhangBoundBytes int64   `json:"zhang_zhang_bound_bytes"`
	BoundRatio           float64 `json:"bound_ratio"`
}

type spillReport struct {
	Timestamp  string        `json:"timestamp"`
	Quick      bool          `json:"quick"`
	Codec      []codecRow    `json:"codec"`
	Throughput throughputRow `json:"throughput"`
	BigRun     bigRunRow     `json:"big_run"`
	MaxRatio   float64       `json:"max_gated_ratio"`
	Gated      bool          `json:"gated"`
	Pass       bool          `json:"pass"`
	Notes      string        `json:"notes"`
}

// codecPrecisionBits fixes the measurement grid the codec rows are
// sealed on: coordinates snap to multiples of 2^-14 (~6.1e-5, four
// decimal digits of resolution in the unit cube — the precision real QoS
// feeds carry; the QWS dataset publishes 2-4 decimals per attribute).
// The grid is dyadic on purpose: round(v·2^14)/2^14 is exact in binary,
// so quantized mantissas keep >= 38 trailing zero bits, the structure
// fixed-point telemetry has when it lands in float64 and exactly what
// the XOR codec's trailing-zero encoding exploits. A decimal grid
// (multiples of 1e-4) would NOT do this — 1e-4 is not a binary fraction,
// so decimal-rounded floats still carry full-entropy low mantissa bits.
// The synthetic generators emit 52 random mantissa bits, which no
// lossless codec can shrink and no measured dataset exhibits. The
// big-run and throughput sections stream those raw full-precision
// values — there the auto codec's job is only to never exceed v1
// (gated on every row below).
const codecPrecisionBits = 14

// quantize snaps every coordinate to the dyadic measurement grid.
func quantize(set points.Set) {
	const scale = 1 << codecPrecisionBits
	for _, p := range set {
		for j := range p {
			p[j] = math.Round(p[j]*scale) / scale
		}
	}
}

// codecBytes seals blk in frameChunk-row frames under the given codec and
// returns total stream bytes.
func codecBytes(blk *points.Block, codec points.FrameCodec) int64 {
	const frameChunk = 4096
	var total int64
	for lo := 0; lo < blk.Len(); lo += frameChunk {
		hi := lo + frameChunk
		if hi > blk.Len() {
			hi = blk.Len()
		}
		total += int64(len(points.AppendFrameCodec(nil, 0, blk.Slice(lo, hi), codec)))
	}
	return total
}

// measureCodec builds one distribution's codec row at measurement
// precision.
func measureCodec(kind dataset.Kind, n, d int, gated bool) codecRow {
	set := dataset.Generate(kind, 2012, n, d)
	quantize(set)
	blk := points.NewBlock(d, n)
	for _, p := range set {
		blk.AppendRow(p)
	}
	row := codecRow{
		Kind:      kind.String(),
		N:         n,
		Precision: 1.0 / (1 << codecPrecisionBits),
		V1Bytes:   codecBytes(blk, points.FrameV1),
		V2Bytes:   codecBytes(blk, points.FrameV2),
		AutoBytes: codecBytes(blk, points.FrameAuto),
		Gated:     gated,
	}
	row.V2Ratio = float64(row.V2Bytes) / float64(row.V1Bytes)
	row.AutoRatio = float64(row.AutoBytes) / float64(row.V1Bytes)
	return row
}

// dominatesRow reports whether a dominates b (minimization: <= everywhere,
// < somewhere).
func dominatesRow(a, b []float64) bool {
	strict := false
	for j := range a {
		if a[j] > b[j] {
			return false
		}
		if a[j] < b[j] {
			strict = true
		}
	}
	return strict
}

func equalRow(a, b []float64) bool {
	for j := range a {
		if a[j] != b[j] {
			return false
		}
	}
	return true
}

// certifySkyline streams the source once and checks sky is exactly its
// skyline: every generated point dominated by or equal to a member, every
// member matched at least once (present in the input) and undominated
// within sky. The check is set-exact: sky is deduplicated by coordinates
// first, because BNL-family kernels deliberately retain duplicate copies
// of incomparable equal points and the certificate tracks presence per
// distinct value. Members are scanned in ascending coordinate-sum order
// so dominated input points exit after ~1 test.
func certifySkyline(src *dataset.Source, sky points.Set) (bool, error) {
	var members [][]float64
	seen := make(map[string]bool, len(sky))
	for _, p := range sky {
		key := fmt.Sprintf("%x", []float64(p))
		if seen[key] {
			continue
		}
		seen[key] = true
		members = append(members, p)
	}
	sort.Slice(members, func(i, j int) bool {
		si, sj := 0.0, 0.0
		for _, v := range members[i] {
			si += v
		}
		for _, v := range members[j] {
			sj += v
		}
		return si < sj
	})
	for i, a := range members {
		for j, b := range members {
			if i != j && dominatesRow(a, b) {
				return false, nil // sky is internally inconsistent
			}
		}
	}
	matched := make([]bool, len(members))
	exact := true
	err := src.Stream(func(blk *points.Block) error {
		for r := 0; r < blk.Len(); r++ {
			row := blk.Row(r)
			covered := false
			for m, s := range members {
				if dominatesRow(s, row) {
					covered = true
					break
				}
				if equalRow(s, row) {
					covered = true
					matched[m] = true
					break
				}
			}
			if !covered {
				exact = false
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, m := range matched {
		if !m {
			return false, nil // a member never appeared in the input
		}
	}
	return exact, nil
}

func spillSuite(n, d, nodes, runs int, budget int64, quick bool, out string) {
	if quick && runs > 2 {
		runs = 2
	}
	fmt.Fprintf(os.Stderr, "benchgate: spill suite n=%d d=%d budget=%d quick=%v\n", n, d, budget, quick)
	rep := spillReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Quick:     quick,
		MaxRatio:  0.7,
		Gated:     true,
		Notes:     spillNote,
	}

	// ---- codec rows --------------------------------------------------
	codecN := 100000
	if quick {
		codecN = 20000
	}
	for _, kind := range []dataset.Kind{dataset.KindCorrelated, dataset.KindClustered,
		dataset.KindIndependent, dataset.KindAnticorrelated} {
		gated := kind == dataset.KindCorrelated || kind == dataset.KindClustered
		row := measureCodec(kind, codecN, d, gated)
		rep.Codec = append(rep.Codec, row)
		fmt.Fprintf(os.Stderr, "  codec %-14s v1=%-9d v2=%-9d ratio=%.3f auto=%.3f\n",
			row.Kind, row.V1Bytes, row.V2Bytes, row.V2Ratio, row.AutoRatio)
	}

	// ---- budgeted vs unbudgeted throughput ---------------------------
	tn := 200000
	if quick {
		tn = 40000
	}
	tdata := dataset.Anticorrelated(7, tn, d)
	ctx := context.Background()
	tmp, err := os.MkdirTemp("", "benchgate-spill-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	defer os.RemoveAll(tmp)
	tBudget := int64(64 << 20)
	unb := best(runs, func() {
		if _, _, err := driver.Compute(ctx, tdata, driver.Options{
			Scheme: partition.Angular, Nodes: nodes}); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: unbudgeted pipeline:", err)
			os.Exit(2)
		}
	})
	bud := best(runs, func() {
		if _, _, err := driver.Compute(ctx, tdata, driver.Options{
			Scheme: partition.Angular, Nodes: nodes,
			SpillDir: tmp, Codec: points.FrameAuto, ReducerBudgetBytes: tBudget}); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: budgeted pipeline:", err)
			os.Exit(2)
		}
	})
	rep.Throughput = throughputRow{
		N: tn, BudgetBytes: tBudget,
		UnbudgetedNS:   unb,
		BudgetedNS:     bud,
		ThroughputFrac: float64(unb) / float64(bud),
	}
	fmt.Fprintf(os.Stderr, "  throughput unbudgeted=%s budgeted=%s fraction=%.2f\n",
		time.Duration(unb), time.Duration(bud), rep.Throughput.ThroughputFrac)

	// ---- big run: out-of-core pipeline + exactness certificate -------
	const chunkSize = 1 << 17
	// Independent keeps the big run adversarial for the certificate: its
	// skyline is the largest of the four families at this d ((ln n)^{d-1}
	// / (d-1)! in expectation) and never collapses to duplicate ideal
	// points the way correlated does under clamping.
	kind := dataset.KindIndependent
	src, err := dataset.NewSource(kind, 2012, n, d, chunkSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	start := time.Now()
	sky, stats, err := driver.ComputeStream(ctx, src, driver.Options{
		Scheme: partition.Angular, Nodes: nodes,
		SpillDir: tmp, Codec: points.FrameAuto, ReducerBudgetBytes: budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: big run:", err)
		os.Exit(2)
	}
	wall := time.Since(start).Seconds()
	exact, err := certifySkyline(src, sky)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: certificate:", err)
		os.Exit(2)
	}
	bound := int64(len(sky)) * int64(d) * 8
	big := bigRunRow{
		N: n, D: d, Kind: kind.String(), ChunkSize: chunkSize,
		BudgetBytes:          budget,
		WallSeconds:          wall,
		SkylineSize:          len(sky),
		ReducerPeakBytes:     stats.ReducerPeakBytes,
		PeakUnderBudget:      stats.ReducerPeakBytes <= budget,
		MergeRounds:          stats.MergeRounds,
		MergeRoundBytes:      stats.MergeRoundBytes,
		MergePasses:          stats.MergePasses,
		OracleExact:          exact,
		ZhangZhangBoundBytes: bound,
	}
	if bound > 0 && len(stats.MergeRoundBytes) > 0 {
		big.BoundRatio = float64(stats.MergeRoundBytes[0]) / float64(bound)
	}
	rep.BigRun = big
	fmt.Fprintf(os.Stderr, "  big run n=%d: skyline=%d peak=%d (budget %d, under=%v) rounds=%d exact=%v wall=%.1fs\n",
		n, big.SkylineSize, big.ReducerPeakBytes, budget, big.PeakUnderBudget,
		big.MergeRounds, big.OracleExact, wall)

	// ---- gate --------------------------------------------------------
	rep.Pass = true
	for _, row := range rep.Codec {
		if row.Gated && row.V2Ratio > rep.MaxRatio {
			rep.Pass = false
			fmt.Fprintf(os.Stderr, "benchgate: codec ratio %.3f on %s exceeds %.2f\n",
				row.V2Ratio, row.Kind, rep.MaxRatio)
		}
		if row.AutoBytes > row.V1Bytes {
			rep.Pass = false
			fmt.Fprintf(os.Stderr, "benchgate: auto codec grew bytes on %s\n", row.Kind)
		}
	}
	if !big.OracleExact || !big.PeakUnderBudget {
		rep.Pass = false
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — codec ratio, exactness certificate or budget violated")
		os.Exit(1)
	}
}
