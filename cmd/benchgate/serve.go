package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/registry"
)

// The serve suite measures the serving core. Three gated/reported groups:
//
//   - HTTP read path (mux, instrumentation, snapshot, JSON): attribution
//     on versus off, gated at serveMaxOverhead; the explain row is the
//     deliberately expensive re-merge, reported only.
//   - Concurrent snapshot reads: the MVCC read (one atomic pointer load)
//     versus the pre-MVCC design (RLock + defensive clone of the global
//     skyline) at 16 goroutines, gated at minSnapshotSpeedup.
//   - Publish and cache rows (informational): batched group-commit
//     publishes versus one-epoch-per-point synchronous folds, and the
//     query cache's hit path versus a forced-miss path (a fresh ?max=
//     signature per request).
const serveNote = "gates: stats_ns / nostats_ns <= max_overhead on the cached read path, and " +
	"rwmutex_read / snapshot_read >= min_snapshot_speedup at 16 goroutines; the explain, " +
	"publish and cache rows are reported, not gated"

const (
	serveMaxOverhead   = 1.05
	minSnapshotSpeedup = 5.0
	readGoroutines     = 16
)

type serveRow struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	WallNS    int64   `json:"wall_ns"`
	NSPerReq  float64 `json:"ns_per_request"`
	ReqPerSec float64 `json:"requests_per_sec"`
}

// concRow is one concurrent-workload measurement: total ops across all
// goroutines, wall time for the whole fan-out, derived per-op cost.
type concRow struct {
	Name       string  `json:"name"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	WallNS     int64   `json:"wall_ns"`
	NSPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

type serveReport struct {
	Timestamp string `json:"timestamp"`
	Services  int    `json:"services"`
	D         int    `json:"d"`
	Runs      int    `json:"runs"`
	Quick     bool   `json:"quick"`

	Stats       serveRow `json:"stats"`
	NoStats     serveRow `json:"nostats"`
	Explain     serveRow `json:"explain"`
	Overhead    float64  `json:"stats_overhead"`
	MaxOverhead float64  `json:"max_overhead"`

	SnapshotRead    concRow `json:"snapshot_read"`
	RWMutexRead     concRow `json:"rwmutex_read"`
	SnapshotSpeedup float64 `json:"snapshot_speedup"`
	MinSpeedup      float64 `json:"min_snapshot_speedup"`

	PublishBatch   serveRow `json:"publish_batch"`
	PublishSync    serveRow `json:"publish_sync"`
	PublishSpeedup float64  `json:"publish_speedup"`

	CacheHit  serveRow `json:"cache_hit"`
	CacheMiss serveRow `json:"cache_miss"`

	Gated bool   `json:"gated"`
	Pass  bool   `json:"pass"`
	Notes string `json:"notes"`
}

func newBenchRegistry(n, d int) *registry.Registry {
	data := qws.Dataset(2012, n, d)
	services := make([]registry.Service, len(data))
	for i, p := range data {
		services[i] = registry.Service{Name: fmt.Sprintf("svc-%05d", i), QoS: p}
	}
	r, err := registry.New(context.Background(), services, driver.Options{Scheme: partition.Angular})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: registry boot failed:", err)
		os.Exit(2)
	}
	return r
}

// measureServe drives requests sequential GETs of path through the
// handler and returns the best-of-runs row.
func measureServe(name string, h http.Handler, path string, requests, runs int) serveRow {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	wall := best(runs, func() {
		for i := 0; i < requests; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "benchgate: %s returned %d\n", path, w.Code)
				os.Exit(2)
			}
		}
	})
	return finishServeRow(name, requests, wall)
}

// measureServePaths is measureServe with a distinct path per request —
// the forced-miss workload, where every request carries a signature the
// cache has never seen. Paths are pre-built outside the timed region.
func measureServePaths(name string, h http.Handler, paths func(run, i int) string, requests, runs int) serveRow {
	reqs := make([]*http.Request, requests)
	run := 0
	wall := best(runs, func() {
		for i := 0; i < requests; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, reqs[i])
			if w.Code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "benchgate: %s returned %d\n", reqs[i].URL, w.Code)
				os.Exit(2)
			}
		}
	}, func() {
		// Per-run prep (untimed): fresh signatures so replayed runs
		// cannot accidentally hit entries the previous run filled.
		for i := 0; i < requests; i++ {
			reqs[i] = httptest.NewRequest(http.MethodGet, paths(run, i), nil)
		}
		run++
	})
	return finishServeRow(name, requests, wall)
}

func finishServeRow(name string, requests int, wall int64) serveRow {
	perReq := float64(wall) / float64(requests)
	return serveRow{
		Name:      name,
		Requests:  requests,
		WallNS:    wall,
		NSPerReq:  perReq,
		ReqPerSec: 1e9 / perReq,
	}
}

// measureConc fans op out over goroutines and times the whole fan-out,
// best of runs. op returns an int that is accumulated per worker so the
// compiler cannot elide the read.
func measureConc(name string, goroutines, ops, runs int, op func() int) concRow {
	per := ops / goroutines
	if per < 1 {
		per = 1
	}
	total := per * goroutines
	sinks := make([]int, goroutines)
	wall := best(runs, func() {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := 0
				for i := 0; i < per; i++ {
					s += op()
				}
				sinks[g] = s
			}(g)
		}
		wg.Wait()
	})
	perOp := float64(wall) / float64(total)
	return concRow{
		Name:       name,
		Goroutines: goroutines,
		Ops:        total,
		WallNS:     wall,
		NSPerOp:    perOp,
		OpsPerSec:  1e9 / perOp,
	}
}

// rwmutexSkyline is the pre-MVCC serving design, kept as the baseline the
// snapshot gate is measured against: the queryable skyline lives behind a
// sync.RWMutex, and because writers mutate it in place, every reader must
// take the read lock AND defensively clone before releasing it. The MVCC
// view needs neither — the epoch is immutable, so a read is one atomic
// pointer load with zero copying.
type rwmutexSkyline struct {
	mu  sync.RWMutex
	set points.Set
}

func (l *rwmutexSkyline) read() points.Set {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.set.Clone()
}

// measurePublish times publishing pub into a fresh index (rebuilt per
// run, untimed) from goroutines concurrent workers, in the core's two
// publish modes. Sync: every Add folds and installs its own epoch, and
// the caller is woken once that epoch is live — strongest per-publish
// ack, one epoch per point. Batched: producers enqueue with AddAsync and
// a single Barrier at the end is the visibility point, so the coalescing
// worker group-commits whole queue drains — one epoch (and one shard
// rebuild) per batch. Both arms end with every point durable and
// visible; the row isolates what decoupling the ack buys.
func measurePublish(name string, base, pub points.Set, goroutines, runs int, batched bool) serveRow {
	var wall int64 = 1<<63 - 1
	for r := 0; r < runs; r++ {
		ix, err := driver.BuildIndex(context.Background(), base, driver.Options{Scheme: partition.Angular})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: index build failed:", err)
			os.Exit(2)
		}
		if batched {
			if err := ix.StartPipeline(0, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchgate:", err)
				os.Exit(2)
			}
		}
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < len(pub); i += goroutines {
					if batched {
						ix.AddAsync(pub[i])
						continue
					}
					if _, _, err := ix.Add(pub[i]); err != nil {
						fmt.Fprintln(os.Stderr, "benchgate: publish failed:", err)
						os.Exit(2)
					}
				}
			}(g)
		}
		wg.Wait()
		if batched {
			ix.Barrier()
		}
		if el := time.Since(start).Nanoseconds(); el < wall {
			wall = el
		}
		ix.Close()
	}
	return finishServeRow(name, len(pub), wall)
}

// missPath builds a /skyline?max= URL whose ceiling admits every QWS
// point but whose signature is unique per (run, request) — a guaranteed
// cache miss that still renders the full skyline.
func missPath(d, run, i int) string {
	vals := make([]string, d)
	for j := 0; j < d-1; j++ {
		vals[j] = "1e9"
	}
	// 'f' format: a 'g'-formatted exponent ("1e+09") would URL-decode its
	// '+' to a space and fail to parse.
	vals[d-1] = strconv.FormatFloat(1e9+float64(run*1_000_000+i), 'f', 0, 64)
	return "/skyline?max=" + strings.Join(vals, ",")
}

func serveSuite(n, d, runs int, quick bool, out string) {
	requests := 2000
	readOps, lockOps := 1<<20, 1<<16
	publishes := 4000
	if quick {
		n, requests, runs = 2000, 500, 2
		readOps, lockOps = 1<<17, 1<<13
		publishes = 1000
	}
	fmt.Fprintf(os.Stderr, "benchgate: serve suite services=%d d=%d requests=%d runs=%d\n", n, d, requests, runs)

	rep := serveReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Services:    n,
		D:           d,
		Runs:        runs,
		Quick:       quick,
		MaxOverhead: serveMaxOverhead,
		MinSpeedup:  minSnapshotSpeedup,
		Gated:       !quick,
		Notes:       serveNote,
	}

	// Fresh registries per arm so neither inherits the other's warmed
	// metrics series, cache contents or query-log entries.
	rOn := newBenchRegistry(n, d)
	defer rOn.Close()
	rOn.EnableQueryStats(true)
	rep.Stats = measureServe("skyline_stats", rOn.Handler(), "/skyline", requests, runs)

	rOff := newBenchRegistry(n, d)
	defer rOff.Close()
	rOff.EnableQueryStats(false)
	rep.NoStats = measureServe("skyline_nostats", rOff.Handler(), "/skyline", requests, runs)

	explainReqs := requests / 10
	if explainReqs < 50 {
		explainReqs = 50
	}
	rep.Explain = measureServe("skyline_explain", rOn.Handler(), "/skyline?explain=1", explainReqs, runs)

	rep.Overhead = rep.Stats.NSPerReq / rep.NoStats.NSPerReq

	// Concurrent snapshot reads: the tentpole gate. Both arms serve the
	// same consistent-skyline-read contract; the baseline pays RLock plus
	// the defensive clone the mutable design forces on every reader.
	data := qws.Dataset(2012, n, d)
	ix, err := driver.BuildIndex(context.Background(), data, driver.Options{Scheme: partition.Angular})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: index build failed:", err)
		os.Exit(2)
	}
	rep.SnapshotRead = measureConc("snapshot_read", readGoroutines, readOps, runs, func() int {
		return len(ix.View().Global())
	})
	locked := &rwmutexSkyline{set: ix.View().Global().Clone()}
	rep.RWMutexRead = measureConc("rwmutex_read", readGoroutines, lockOps, runs, func() int {
		return len(locked.read())
	})
	rep.SnapshotSpeedup = rep.RWMutexRead.NSPerOp / rep.SnapshotRead.NSPerOp

	// Publish rows: the same concurrent publish stream with and without
	// group commit. The stream is improving — each point is a QWS sample
	// scaled progressively below the incumbent population — so a large
	// fraction ENTERS the skyline. That is the workload group commit
	// exists for: every entering publish forces a shard rebuild (R-tree
	// included past the crossover) and a new epoch, which the batch arm
	// pays once per batch instead of once per point. A dominated-heavy
	// stream would show no win: rejected publishes touch nothing worth
	// amortizing.
	pub := qws.Dataset(77, publishes, d)
	for i, p := range pub {
		f := 0.9 - 0.5*float64(i)/float64(len(pub))
		for j := range p {
			p[j] *= f
		}
	}
	rep.PublishBatch = measurePublish("publish_batch", data, pub, readGoroutines, runs, true)
	rep.PublishSync = measurePublish("publish_sync", data, pub, readGoroutines, runs, false)
	rep.PublishSpeedup = rep.PublishSync.NSPerReq / rep.PublishBatch.NSPerReq

	// Cache rows: the hit path (repeat signature) against the forced-miss
	// path (fresh signature per request: snapshot filter + match + encode
	// + fill).
	rHit := newBenchRegistry(n, d)
	defer rHit.Close()
	rHit.EnableQueryStats(true)
	measureServe("warm", rHit.Handler(), "/skyline", 1, 1)
	rep.CacheHit = measureServe("cache_hit", rHit.Handler(), "/skyline", requests, runs)
	// The miss path pays the full fill (snapshot filter + service match +
	// encode), which scales with the registry size — sample it like the
	// explain row rather than hammering it.
	missReqs := requests / 10
	if missReqs < 50 {
		missReqs = 50
	}
	rep.CacheMiss = measureServePaths("cache_miss", rHit.Handler(), func(run, i int) string {
		return missPath(d, run, i)
	}, missReqs, runs)

	rep.Pass = quick ||
		(rep.Overhead <= serveMaxOverhead && rep.SnapshotSpeedup >= minSnapshotSpeedup)

	for _, r := range []serveRow{rep.Stats, rep.NoStats, rep.Explain,
		rep.PublishBatch, rep.PublishSync, rep.CacheHit, rep.CacheMiss} {
		fmt.Fprintf(os.Stderr, "  %-16s requests=%-5d %s/req (%.0f req/s)\n",
			r.Name, r.Requests, time.Duration(int64(r.NSPerReq)), r.ReqPerSec)
	}
	for _, r := range []concRow{rep.SnapshotRead, rep.RWMutexRead} {
		fmt.Fprintf(os.Stderr, "  %-16s ops=%-8d g=%-3d %s/op (%.0f ops/s)\n",
			r.Name, r.Ops, r.Goroutines, time.Duration(int64(r.NSPerOp)), r.OpsPerSec)
	}
	fmt.Fprintf(os.Stderr, "  stats overhead = %.3fx (max %.2fx)\n", rep.Overhead, rep.MaxOverhead)
	fmt.Fprintf(os.Stderr, "  snapshot speedup = %.1fx (min %.1fx); publish coalescing = %.1fx\n",
		rep.SnapshotSpeedup, rep.MinSpeedup, rep.PublishSpeedup)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — overhead %.3fx (max %.2fx), snapshot speedup %.1fx (min %.1fx)\n",
			rep.Overhead, serveMaxOverhead, rep.SnapshotSpeedup, rep.MinSpeedup)
		os.Exit(1)
	}
}
