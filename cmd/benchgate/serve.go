package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/qws"
	"repro/internal/registry"
)

// The serve suite measures the registry's skyline read path end to end
// (mux, instrumentation, index snapshot, JSON encoding) with per-query
// attribution on versus off. The gate is the observability acceptance
// bound: attribution may cost at most serveMaxOverhead of the request.
// The explain row is informational — it is the deliberately expensive
// "why was this slow" re-merge, not a fast path.
const serveNote = "gate: stats_ns / nostats_ns <= max_overhead on the cached read path; " +
	"the explain row re-merges local skylines with per-partition attribution and is " +
	"reported, not gated"

const serveMaxOverhead = 1.05

type serveRow struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	WallNS    int64   `json:"wall_ns"`
	NSPerReq  float64 `json:"ns_per_request"`
	ReqPerSec float64 `json:"requests_per_sec"`
}

type serveReport struct {
	Timestamp   string   `json:"timestamp"`
	Services    int      `json:"services"`
	D           int      `json:"d"`
	Runs        int      `json:"runs"`
	Quick       bool     `json:"quick"`
	Stats       serveRow `json:"stats"`
	NoStats     serveRow `json:"nostats"`
	Explain     serveRow `json:"explain"`
	Overhead    float64  `json:"stats_overhead"`
	MaxOverhead float64  `json:"max_overhead"`
	Gated       bool     `json:"gated"`
	Pass        bool     `json:"pass"`
	Notes       string   `json:"notes"`
}

func newBenchRegistry(n, d int) *registry.Registry {
	data := qws.Dataset(2012, n, d)
	services := make([]registry.Service, len(data))
	for i, p := range data {
		services[i] = registry.Service{Name: fmt.Sprintf("svc-%05d", i), QoS: p}
	}
	r, err := registry.New(context.Background(), services, driver.Options{Scheme: partition.Angular})
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: registry boot failed:", err)
		os.Exit(2)
	}
	return r
}

// measureServe drives requests sequential GETs of path through the
// handler and returns the best-of-runs row.
func measureServe(name string, h http.Handler, path string, requests, runs int) serveRow {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	wall := best(runs, func() {
		for i := 0; i < requests; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				fmt.Fprintf(os.Stderr, "benchgate: %s returned %d\n", path, w.Code)
				os.Exit(2)
			}
		}
	})
	perReq := float64(wall) / float64(requests)
	return serveRow{
		Name:      name,
		Requests:  requests,
		WallNS:    wall,
		NSPerReq:  perReq,
		ReqPerSec: 1e9 / perReq,
	}
}

func serveSuite(n, d, runs int, quick bool, out string) {
	requests := 2000
	if quick {
		n, requests, runs = 2000, 500, 2
	}
	fmt.Fprintf(os.Stderr, "benchgate: serve suite services=%d d=%d requests=%d runs=%d\n", n, d, requests, runs)

	rep := serveReport{
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Services:    n,
		D:           d,
		Runs:        runs,
		Quick:       quick,
		MaxOverhead: serveMaxOverhead,
		Gated:       !quick,
		Notes:       serveNote,
	}

	// Fresh registries per arm so neither inherits the other's warmed
	// metrics series or query-log contents.
	rOn := newBenchRegistry(n, d)
	rOn.EnableQueryStats(true)
	rep.Stats = measureServe("skyline_stats", rOn.Handler(), "/skyline", requests, runs)

	rOff := newBenchRegistry(n, d)
	rOff.EnableQueryStats(false)
	rep.NoStats = measureServe("skyline_nostats", rOff.Handler(), "/skyline", requests, runs)

	explainReqs := requests / 10
	if explainReqs < 50 {
		explainReqs = 50
	}
	rep.Explain = measureServe("skyline_explain", rOn.Handler(), "/skyline?explain=1", explainReqs, runs)

	rep.Overhead = rep.Stats.NSPerReq / rep.NoStats.NSPerReq
	rep.Pass = quick || rep.Overhead <= serveMaxOverhead

	for _, r := range []serveRow{rep.Stats, rep.NoStats, rep.Explain} {
		fmt.Fprintf(os.Stderr, "  %-16s requests=%-5d %s/req (%.0f req/s)\n",
			r.Name, r.Requests, time.Duration(int64(r.NSPerReq)), r.ReqPerSec)
	}
	fmt.Fprintf(os.Stderr, "  stats overhead = %.3fx (max %.2fx)\n", rep.Overhead, rep.MaxOverhead)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — per-query attribution costs %.3fx (max %.2fx)\n",
			rep.Overhead, serveMaxOverhead)
		os.Exit(1)
	}
}
