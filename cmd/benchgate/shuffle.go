package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
)

// The shuffle suite isolates the data-movement path the block-framed
// shuffle replaced: partition assignment, emit, shuffle and reducer-side
// assembly, with an identity reduce so no kernel time dilutes the
// measurement. The classic row runs the Pair plumbing (string keys, one
// []byte value per point); the framed row runs the same workload through
// RunFrames. Both see identical inputs and an identical partitioner.
const shuffleNote = "identity reduce: rows time pure shuffle work, not skyline kernels; " +
	"shuffle_bytes are payload semantics — key+value bytes on the classic path, " +
	"frame payload bytes (header + packed coords, no gob envelope) on the framed path"

type shuffleRow struct {
	Path           string  `json:"path"`
	WallNS         int64   `json:"wall_ns"`
	RecordsPerSec  float64 `json:"records_per_sec"`
	ShuffleRecords int64   `json:"shuffle_records"`
	ShuffleBytes   int64   `json:"shuffle_bytes"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
}

type shuffleReport struct {
	Timestamp  string     `json:"timestamp"`
	N          int        `json:"n"`
	D          int        `json:"d"`
	Reducers   int        `json:"reducers"`
	Runs       int        `json:"runs"`
	Quick      bool       `json:"quick"`
	Classic    shuffleRow `json:"classic"`
	Framed     shuffleRow `json:"framed"`
	Throughput float64    `json:"throughput_ratio"`
	BytesRatio float64    `json:"bytes_ratio"`
	MinSpeedup float64    `json:"min_speedup"`
	Gated      bool       `json:"gated"`
	Pass       bool       `json:"pass"`
	Notes      string     `json:"notes"`
}

// measureShuffle times fn best-of-runs, then takes one extra instrumented
// pass for the allocation count (GC fenced so only Mallocs from the run
// itself are attributed).
func measureShuffle(path string, n, runs int, fn func() (records, bytes int64)) shuffleRow {
	var recs, bytes int64
	wall := best(runs, func() { recs, bytes = fn() })

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)

	return shuffleRow{
		Path:           path,
		WallNS:         wall,
		RecordsPerSec:  float64(n) / (float64(wall) / float64(time.Second)),
		ShuffleRecords: recs,
		ShuffleBytes:   bytes,
		AllocsPerPoint: float64(after.Mallocs-before.Mallocs) / float64(n),
	}
}

func shuffleSuite(n, d, nodes, runs int, min float64, quick bool, out string) {
	fmt.Fprintf(os.Stderr, "benchgate: shuffle suite n=%d d=%d reducers=%d runs=%d\n", n, d, nodes, runs)
	data := qws.Dataset(2012, n, d)
	part, err := partition.New(partition.Angular, data, nodes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	ctx := context.Background()
	cfg := mapreduce.Config{Name: "shuffle-bench", Workers: nodes, Reducers: nodes}

	classic := func() (int64, int64) {
		mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			p, err := points.Decode(rec)
			if err != nil {
				return err
			}
			id, err := part.Assign(p)
			if err != nil {
				return err
			}
			emit(strconv.Itoa(id), rec)
			return nil
		})
		identity := mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		})
		res, err := mapreduce.Run(ctx, cfg, input, mapper, identity)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: classic shuffle failed:", err)
			os.Exit(2)
		}
		snap := res.Counters.Snapshot()
		return snap[mapreduce.CounterShuffle], snap[mapreduce.CounterShuffleBytes]
	}

	scratch := sync.Pool{New: func() any {
		p := make(points.Point, 0, d)
		return &p
	}}
	framed := func() (int64, int64) {
		mapper := mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
			buf := scratch.Get().(*points.Point)
			p, err := points.DecodeInto(*buf, rec)
			if err != nil {
				return err
			}
			id, assignErr := part.Assign(p)
			if assignErr == nil {
				emit(id, p)
			}
			*buf = p[:0]
			scratch.Put(buf)
			return assignErr
		})
		identity := mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
			for i := 0; i < blk.Len(); i++ {
				emit(partition, blk.Row(i))
			}
			return nil
		})
		res, err := mapreduce.RunFrames(ctx, cfg, input, mapper, nil, identity)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: framed shuffle failed:", err)
			os.Exit(2)
		}
		snap := res.Counters.Snapshot()
		return snap[mapreduce.CounterShuffle], snap[mapreduce.CounterShuffleBytes]
	}

	rep := shuffleReport{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		N:          n,
		D:          d,
		Reducers:   nodes,
		Runs:       runs,
		Quick:      quick,
		MinSpeedup: min,
		Gated:      !quick,
		Notes:      shuffleNote,
	}
	rep.Classic = measureShuffle("classic_pairs", n, runs, classic)
	rep.Framed = measureShuffle("block_frames", n, runs, framed)
	rep.Throughput = rep.Framed.RecordsPerSec / rep.Classic.RecordsPerSec
	rep.BytesRatio = float64(rep.Framed.ShuffleBytes) / float64(rep.Classic.ShuffleBytes)

	rep.Pass = true
	if !quick {
		if rep.Throughput < min {
			rep.Pass = false
		}
		if rep.Framed.AllocsPerPoint >= rep.Classic.AllocsPerPoint {
			rep.Pass = false
		}
	}
	for _, r := range []shuffleRow{rep.Classic, rep.Framed} {
		fmt.Fprintf(os.Stderr, "  %-14s wall=%-12s records/s=%-12.0f shuffle_bytes=%-10d allocs/pt=%.2f\n",
			r.Path, time.Duration(r.WallNS), r.RecordsPerSec, r.ShuffleBytes, r.AllocsPerPoint)
	}
	fmt.Fprintf(os.Stderr, "  throughput ratio %.2fx, shuffle-byte ratio %.2fx\n",
		rep.Throughput, rep.BytesRatio)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — framed shuffle below %.2fx throughput or did not cut allocs/point\n", min)
		os.Exit(1)
	}
}
