package main

// The critpath suite validates the profiler's what-if model against
// ground truth: run the two-job skyline pipeline on a 3-worker
// in-process cluster with one worker straggling on every task, take
// the analyzer's "no-straggler" prediction from that run's trace, then
// actually re-run straggler-free and compare. The gate requires the
// prediction to land within -maxerr (default 25%) of the measured
// clean median — the acceptance bound for the whole profiler: if the
// model can't predict the one intervention we can test, its rebalance
// advice isn't worth acting on.
//
// Task cost is sleep-simulated: every worker stalls taskService before
// each task and the straggler stalls stragglerStall, with the dataset
// kept small enough that real compute is negligible. The what-if model
// assumes workers progress in parallel — true of the distributed
// clusters it profiles, false of three CPU-bound goroutines on the
// single-core CI container this suite runs on. Simulated service time
// keeps the ground-truth comparison honest there (sleeps overlap;
// spins would serialize), and makes the gate scale-robust, so it holds
// in -quick mode too.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/partition"
	"repro/internal/qws"
	"repro/internal/rpcmr"
	"repro/internal/skyjob"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
)

type critpathRunRow struct {
	Name            string             `json:"name"`
	WallSeconds     float64            `json:"wall_seconds"`
	MakespanSeconds float64            `json:"makespan_seconds"`
	BottleneckPhase string             `json:"bottleneck_phase"`
	StragglerWorker string             `json:"straggler_worker,omitempty"`
	Stragglers      int                `json:"stragglers"`
	WhatIf          []critpath.Scenario `json:"whatif,omitempty"`
}

type critpathReport struct {
	Timestamp        string         `json:"timestamp"`
	N                int            `json:"n"`
	D                int            `json:"d"`
	Partitions       int            `json:"partitions"`
	Reducers         int            `json:"reducers"`
	Workers          int            `json:"workers"`
	Runs             int            `json:"runs"`
	Quick            bool           `json:"quick"`
	TaskServiceMS    int64          `json:"task_service_ms"`
	StragglerStallMS int64          `json:"straggler_stall_ms"`
	Stalled          critpathRunRow `json:"stalled"`
	CleanRuns        []float64      `json:"clean_runs_seconds"`
	CleanMedian      float64        `json:"clean_median_seconds"`
	PredictedSeconds float64        `json:"predicted_seconds"`
	PredictionError  float64        `json:"prediction_error"`
	MaxError         float64        `json:"max_error"`
	Gated            bool           `json:"gated"`
	Pass             bool           `json:"pass"`
	Notes            string         `json:"notes"`
}

const critpathNote = "predicted_seconds is the stalled run's no-straggler scenario; " +
	"prediction_error compares it to the median makespan of actual straggler-free re-runs " +
	"on the same data and cluster shape"

func critpathSuite(n, d, runs int, maxErr float64, quick bool, out string) {
	const (
		workers        = 3
		partitions     = 6
		reducers       = 6
		taskService    = 40 * time.Millisecond
		stragglerStall = 400 * time.Millisecond
	)
	// The suite owns its dataset size: task time is sleep-simulated, so
	// -n only adds compute noise to the ground-truth comparison.
	n = 12000
	if quick {
		n, runs = 6000, 2
	}
	if runs < 1 {
		runs = 1
	}
	fmt.Fprintf(os.Stderr, "benchgate: critpath suite n=%d d=%d workers=%d service=%s straggler=%s runs=%d\n",
		n, d, workers, taskService, stragglerStall, runs)
	data := qws.Dataset(2012, n, d)
	spec, err := skyjob.SpecFor(data, partition.Angular, partitions)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	// oneRun spins up a fresh in-process cluster — a master plus three
	// workers with taskService of simulated per-task time, the last
	// stalling w2Stall instead — runs the two-job pipeline, and analyzes
	// the stitched trace. The straggler-free ground truth is
	// oneRun(taskService): the straggler pulled back to the pack, which
	// is exactly what the no-straggler scenario models.
	oneRun := func(w2Stall time.Duration) (float64, *critpath.Analysis) {
		master, err := rpcmr.NewMaster(rpcmr.MasterConfig{
			SplitSize:      (n + partitions - 1) / partitions,
			LivenessWindow: 2 * time.Second,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		var wg sync.WaitGroup
		var ws []*rpcmr.Worker
		for i := 0; i < workers; i++ {
			cfg := rpcmr.WorkerConfig{
				MasterAddr:   master.Addr(),
				ID:           fmt.Sprintf("w%d", i),
				PollInterval: time.Millisecond,
				TaskStall:    taskService,
			}
			if i == workers-1 {
				cfg.TaskStall = w2Stall
			}
			w, err := rpcmr.NewWorker(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchgate:", err)
				os.Exit(2)
			}
			ws = append(ws, w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run(context.Background())
			}()
		}
		tracer := telemetry.NewTracer()
		recorder := telemetry.NewRecorder("benchgate:critpath")
		ctx := telemetry.WithTracer(context.Background(), tracer)
		ctx = telemetry.WithRecorder(ctx, recorder)
		start := time.Now()
		if _, err := skyjob.ComputeSpec(ctx, master, data, spec, reducers); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: pipeline failed:", err)
			os.Exit(2)
		}
		wall := time.Since(start).Seconds()
		master.Drain()
		master.Close()
		for _, w := range ws {
			w.Close()
		}
		wg.Wait()
		a, err := critpath.Analyze(tracer.Spans(), recorder.Report(), critpath.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: critpath analysis:", err)
			os.Exit(2)
		}
		return wall, a
	}

	toRow := func(name string, wall float64, a *critpath.Analysis) critpathRunRow {
		row := critpathRunRow{Name: name, WallSeconds: wall,
			MakespanSeconds: a.MakespanSeconds, WhatIf: a.WhatIf}
		var top critpath.PhaseBlame
		for _, p := range a.Phases {
			if p.Seconds > top.Seconds {
				top = p
			}
		}
		row.BottleneckPhase = top.Phase
		for _, w := range a.Workers {
			if w.Straggler {
				row.Stragglers++
				if row.StragglerWorker == "" {
					row.StragglerWorker = w.Worker
				}
			}
		}
		return row
	}

	stalledWall, stalledA := oneRun(stragglerStall)
	stalled := toRow("stalled", stalledWall, stalledA)
	var predicted float64
	for _, sc := range stalledA.WhatIf {
		if sc.Name == "no-straggler" {
			predicted = sc.PredictedSeconds
		}
	}

	var clean []float64
	for i := 0; i < runs; i++ {
		_, a := oneRun(taskService)
		clean = append(clean, a.MakespanSeconds)
	}
	sort.Float64s(clean)
	median := clean[len(clean)/2]
	if len(clean)%2 == 0 {
		median = (clean[len(clean)/2-1] + clean[len(clean)/2]) / 2
	}

	rep := critpathReport{
		Timestamp:        time.Now().UTC().Format(time.RFC3339),
		N:                n,
		D:                d,
		Partitions:       partitions,
		Reducers:         reducers,
		Workers:          workers,
		Runs:             runs,
		Quick:            quick,
		TaskServiceMS:    taskService.Milliseconds(),
		StragglerStallMS: stragglerStall.Milliseconds(),
		Stalled:          stalled,
		CleanRuns:        clean,
		CleanMedian:      median,
		PredictedSeconds: predicted,
		MaxError:         maxErr,
		Gated:            true,
		Notes:            critpathNote,
	}
	if median > 0 {
		rep.PredictionError = math.Abs(predicted-median) / median
	}
	rep.Pass = predicted > 0 && median > 0 && rep.PredictionError <= maxErr

	fmt.Fprintf(os.Stderr, "  stalled run:  makespan %.3fs, bottleneck %s, %d straggler worker(s)\n",
		stalled.MakespanSeconds, stalled.BottleneckPhase, stalled.Stragglers)
	for _, sc := range stalled.WhatIf {
		fmt.Fprintf(os.Stderr, "  what-if %-15s %8.3fs  %5.2fx\n", sc.Name, sc.PredictedSeconds, sc.SpeedupX)
	}
	fmt.Fprintf(os.Stderr, "  clean median: %.3fs over %d run(s) %v\n", median, len(clean), clean)
	fmt.Fprintf(os.Stderr, "  no-straggler prediction %.3fs vs measured %.3fs — error %.1f%% (max %.0f%%)\n",
		predicted, median, rep.PredictionError*100, maxErr*100)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — no-straggler prediction off by %.1f%% (max %.0f%%)\n",
			rep.PredictionError*100, maxErr*100)
		os.Exit(1)
	}
}
