// Command benchgate measures the flat-kernel speedup over the classic
// points.Set kernels and gates on it. At the paper's large configuration
// (n=100k, d=6) it times the kernel workloads — one local skyline over the
// full dataset, and the merge of per-chunk partial skylines — classic
// versus flat, and additionally times the full MR-Angle pipeline
// (driver.Compute) both ways. Measurements go to BENCH_kernels.json; the
// gate requires every kernel row to reach -min speedup. The pipeline row
// is recorded but not gated: end-to-end wall time includes the shared
// partitioning, codec and shuffle work that is identical on both paths,
// so its ratio is bounded by Amdahl's law at whatever fraction the
// kernels are of the total (on a single-core container that bound sits
// near 1.4× even if the kernels were free — the JSON keeps the honest
// number next to the kernel ratios). CI runs -quick (smaller n, fewer
// repetitions, no gate) to catch gross regressions without burning
// minutes.
//
// Usage:
//
//	benchgate [-suite kernels|shuffle|serve|spill|critpath] [-n 100000] [-d 6] [-nodes 4] [-runs 3] [-min 1.5] [-quick] [-out BENCH_kernels.json]
//
// The shuffle suite (-suite shuffle) compares the classic Pair shuffle
// against the block-framed path at the same configuration — records/s,
// shuffle payload bytes, and allocations per point — and writes
// BENCH_shuffle.json, gating on a 1.5x framed throughput advantage plus
// reduced allocs/point.
//
// The spill suite (-suite spill) measures the out-of-core engine: frame
// codec v2 vs v1 bytes per distribution (gated at 0.7 on correlated and
// clustered), budgeted vs unbudgeted pipeline throughput, and a big-run
// row that streams -n points through driver.ComputeStream under the
// -budget reducer byte budget and certifies the skyline exactly with a
// second streaming pass. Writes BENCH_spill.json.
//
// The critpath suite (-suite critpath) validates the critical-path
// profiler's what-if model against ground truth: it runs the two-job
// skyline pipeline on a 3-worker in-process cluster with one worker
// stalling before every task, takes the trace analyzer's "no-straggler"
// prediction, re-runs straggler-free, and gates on the prediction
// matching the measured clean median within -maxerr (default 25%).
// Writes BENCH_critpath.json; this gate holds in -quick mode too.
//
// The serve suite (-suite serve) measures the registry's HTTP skyline
// read path with per-query attribution on versus off, plus the EXPLAIN
// re-merge, writing BENCH_serve.json and gating attribution overhead at
// 5% of the cached read (the observability acceptance bound).
//
// The obs suite (-suite obs) prices the cluster observability plane:
// the MR-Angle pipeline with a bare metrics registry versus with a
// background time-series sampler and anomaly watchdog running against
// it at aggressive cadence, gated at 5% end-to-end overhead. Writes
// BENCH_obs.json with per-tick micro costs alongside.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/skyline"
)

type kernelRow struct {
	Name      string  `json:"name"`
	N         int     `json:"n"`
	D         int     `json:"d"`
	ClassicNS int64   `json:"classic_ns"`
	FlatNS    int64   `json:"flat_ns"`
	Speedup   float64 `json:"speedup"`
}

type report struct {
	Timestamp  string      `json:"timestamp"`
	N          int         `json:"n"`
	D          int         `json:"d"`
	Nodes      int         `json:"nodes"`
	Runs       int         `json:"runs"`
	Quick      bool        `json:"quick"`
	Pipeline   kernelRow   `json:"pipeline"`
	Kernels    []kernelRow `json:"kernels"`
	MinSpeedup float64     `json:"min_speedup"`
	Gated      bool        `json:"gated"`
	Pass       bool        `json:"pass"`
	Notes      string      `json:"notes"`
}

// pipelineNote explains why the end-to-end row is reported but not gated.
const pipelineNote = "gate applies to the kernel rows; the pipeline row is informational — " +
	"partitioning, codec and shuffle costs are shared by both paths, so the end-to-end " +
	"ratio is Amdahl-bounded by the kernels' share of total wall time"

// best returns the fastest of runs invocations of f — minimum, not mean,
// because scheduling noise only ever adds time. An optional prep function
// runs before each invocation, outside the timed region.
func best(runs int, f func(), prep ...func()) int64 {
	var min int64 = 1<<63 - 1
	for i := 0; i < runs; i++ {
		for _, p := range prep {
			p()
		}
		start := time.Now()
		f()
		if el := time.Since(start).Nanoseconds(); el < min {
			min = el
		}
	}
	return min
}

func row(name string, n, d, runs int, classic, flat func()) kernelRow {
	// Interleaving would be fairer under thermal drift, but best-of-runs
	// with a warmup pass each is stable enough at these durations.
	c := best(runs, classic)
	f := best(runs, flat)
	return kernelRow{Name: name, N: n, D: d, ClassicNS: c, FlatNS: f,
		Speedup: float64(c) / float64(f)}
}

func main() {
	n := flag.Int("n", 100000, "dataset cardinality for the pipeline row")
	d := flag.Int("d", 6, "dataset dimensionality")
	nodes := flag.Int("nodes", 4, "partitions / reduce tasks")
	runs := flag.Int("runs", 3, "repetitions per configuration (best is kept)")
	min := flag.Float64("min", 1.5, "minimum acceptable kernel-row speedup (flat over classic)")
	quick := flag.Bool("quick", false, "CI mode: n=20000, 2 runs, report only (no gate)")
	suite := flag.String("suite", "kernels", "which suite to run: kernels, shuffle, serve, spill, critpath or obs")
	budget := flag.Int64("budget", 1<<30, "reducer byte budget for the spill suite")
	maxErr := flag.Float64("maxerr", 0.25, "maximum relative error of the critpath suite's no-straggler prediction")
	out := flag.String("out", "", "report path (default BENCH_kernels.json / BENCH_shuffle.json per suite)")
	flag.Parse()

	if *out == "" {
		switch *suite {
		case "shuffle":
			*out = "BENCH_shuffle.json"
		case "serve":
			*out = "BENCH_serve.json"
		case "spill":
			*out = "BENCH_spill.json"
		case "critpath":
			*out = "BENCH_critpath.json"
		case "obs":
			*out = "BENCH_obs.json"
		default:
			*out = "BENCH_kernels.json"
		}
	}
	if *suite == "obs" {
		// The obs suite owns its own quick scaling, like spill/critpath.
		obsSuite(*n, *d, *nodes, *runs, *quick, *out)
		return
	}
	if *suite == "serve" {
		serveSuite(*n, *d, *runs, *quick, *out)
		return
	}
	if *suite == "critpath" {
		// The critpath suite owns its own quick scaling and stays gated
		// in -quick mode: the injected stall dominates the makespan, so
		// the prediction check is robust at any dataset size.
		critpathSuite(*n, *d, *runs, *maxErr, *quick, *out)
		return
	}
	if *suite == "spill" {
		// The spill suite owns its own quick scaling (-n is the big-run
		// cardinality, never rewritten to the kernels-suite default).
		spillSuite(*n, *d, *nodes, *runs, *budget, *quick, *out)
		return
	}
	if *quick {
		*n, *runs = 20000, 2
	}
	switch *suite {
	case "shuffle":
		shuffleSuite(*n, *d, *nodes, *runs, *min, *quick, *out)
		return
	case "kernels":
	default:
		fmt.Fprintf(os.Stderr, "benchgate: unknown suite %q (want kernels, shuffle, serve, spill, critpath or obs)\n", *suite)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: n=%d d=%d nodes=%d runs=%d\n", *n, *d, *nodes, *runs)
	data := qws.Dataset(2012, *n, *d)
	ctx := context.Background()

	compute := func(classic bool) func() {
		opts := driver.Options{Scheme: partition.Angular, Nodes: *nodes, ClassicKernel: classic}
		return func() {
			if _, _, err := driver.Compute(ctx, data, opts); err != nil {
				fmt.Fprintln(os.Stderr, "benchgate: pipeline failed:", err)
				os.Exit(2)
			}
		}
	}
	rep := report{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		N:          *n,
		D:          *d,
		Nodes:      *nodes,
		Runs:       *runs,
		Quick:      *quick,
		MinSpeedup: *min,
		Gated:      !*quick,
		Notes:      pipelineNote,
	}
	rep.Pipeline = row("pipeline_mr_angle", *n, *d, *runs, compute(true), compute(false))

	// Kernel rows at the full configuration: the partitioning job's reducer
	// workload (one local skyline over the dataset) and the merging job's
	// workload (fold of per-chunk partial skylines).
	kn := *n
	kdata := data[:kn]
	rep.Kernels = append(rep.Kernels, row("local_skyline", kn, *d, *runs,
		func() { skyline.BNL(kdata) },
		func() { skyline.FlatBNL(kdata) }))

	chunks := 16
	var partials []points.Set
	for i := 0; i < chunks; i++ {
		lo, hi := i*kn/chunks, (i+1)*kn/chunks
		partials = append(partials, skyline.FlatBNL(kdata[lo:hi]))
	}
	rep.Kernels = append(rep.Kernels, row("merge_tree", kn, *d, *runs,
		func() {
			var union points.Set
			for _, p := range partials {
				union = append(union, p...)
			}
			skyline.BNL(union)
		},
		func() { skyline.MergeSkylines(ctx, partials, 0) }))

	rep.Pass = true
	if !*quick {
		for _, r := range rep.Kernels {
			if r.Speedup < *min {
				rep.Pass = false
			}
		}
	}
	for _, r := range append([]kernelRow{rep.Pipeline}, rep.Kernels...) {
		fmt.Fprintf(os.Stderr, "  %-18s n=%-7d d=%d classic=%s flat=%s speedup=%.2fx\n",
			r.Name, r.N, r.D, time.Duration(r.ClassicNS), time.Duration(r.FlatNS), r.Speedup)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchgate: wrote %s\n", *out)
	if !rep.Pass {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — a kernel row fell below the minimum %.2fx speedup\n", *min)
		os.Exit(1)
	}
}
