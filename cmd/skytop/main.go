// Command skytop is a terminal dashboard for a live skyline cluster: it
// polls the target's /metrics, /debug/health, /debug/flightrecorder,
// /debug/critpath, /debug/events, /debug/slowlog and /debug/slo
// endpoints and renders phase progress, per-worker state and
// throughput, straggler/retry flags, partition-load sparklines, the
// critical-path bottleneck panel, the slow-query tail and SLO burn
// state.
//
//	skytop -addr 127.0.0.1:9090              # refreshing live view
//	skytop -addr 127.0.0.1:9090 -once        # one snapshot (scripts, CI)
//
// Point -addr at the skymaster -metrics-addr (worker table, flight
// record) or at a skyserve instance (query log, SLO panel). Every debug
// surface is optional: endpoints that are absent or failing render as
// "n/a" panels instead of killing the refresh — only an unreachable
// /metrics counts as a poll error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"

	"repro/internal/asciiplot"
	"repro/internal/rpcmr"
	"repro/internal/telemetry"
	"repro/internal/telemetry/critpath"
	"repro/internal/telemetry/timeseries"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "master debug address (its -metrics-addr)")
	interval := flag.Duration("interval", time.Second, "refresh interval in live mode")
	once := flag.Bool("once", false, "render one snapshot and exit (for scripts and CI)")
	events := flag.Int("events", 8, "recent events to show")
	flag.Parse()

	c := &client{base: "http://" + *addr, http: &http.Client{Timeout: 5 * time.Second}}
	var prev *sample
	for {
		s := c.poll()
		var b strings.Builder
		render(&b, *addr, s, prev, *events)
		if *once {
			io.WriteString(os.Stdout, b.String())
			if s.err != nil {
				fmt.Fprintf(os.Stderr, "skytop: %v\n", s.err)
				os.Exit(1)
			}
			return
		}
		// ANSI home+clear, then the frame: one write per refresh keeps
		// flicker down without any terminal library.
		io.WriteString(os.Stdout, "\x1b[H\x1b[2J"+b.String())
		prev = s
		time.Sleep(*interval)
	}
}

// queryDoc mirrors the /debug/queries and /debug/slowlog JSON shape.
type queryDoc struct {
	Totals           telemetry.QueryTotals  `json:"totals"`
	ThresholdSeconds float64                `json:"threshold_seconds"`
	Queries          []telemetry.QueryStats `json:"queries"`
}

// sloDoc mirrors the /debug/slo JSON shape.
type sloDoc struct {
	Objectives []telemetry.SLOStatus `json:"objectives"`
	Burning    bool                  `json:"burning"`
}

// sample is one poll of the target's debug surface.
type sample struct {
	at      time.Time
	health  *rpcmr.Health
	metrics map[string]float64
	flight  *telemetry.Report
	crit    *critpath.Analysis
	cluster *telemetry.ClusterSnapshot
	series  *timeseries.Doc
	events  []telemetry.LogEvent
	slowlog *queryDoc
	slo     *sloDoc
	err     error // metrics fetch error; partial samples still render
}

type client struct {
	base string
	http *http.Client
}

func (c *client) poll() *sample {
	s := &sample{at: time.Now()}
	// Every debug surface degrades to an "n/a" panel when absent or
	// failing — a skyserve target has no worker health, a skymaster has
	// no query log, an older binary may have neither. Only /metrics, the
	// one surface every target serves, makes the poll an error.
	if text, err := c.getText("/metrics"); err == nil {
		if m, err := telemetry.ParsePrometheus(text); err == nil {
			s.metrics = m
		}
	} else {
		s.err = err
	}
	if err := c.getJSON(telemetry.HealthPath, &s.health); err != nil {
		s.health = nil
	}
	if err := c.getJSON(telemetry.FlightRecorderPath, &s.flight); err != nil {
		s.flight = nil
	}
	if err := c.getJSON(critpath.Path, &s.crit); err != nil {
		s.crit = nil
	}
	if err := c.getJSON(telemetry.ClusterPath, &s.cluster); err != nil {
		s.cluster = nil
	}
	if err := c.getJSON(timeseries.Path+"?series=rpcmr_tasks_done_total&window=64s", &s.series); err != nil {
		s.series = nil
	}
	if err := c.getJSON(telemetry.SlowLogPath, &s.slowlog); err != nil {
		s.slowlog = nil
	}
	if err := c.getJSON(telemetry.SLOPath, &s.slo); err != nil {
		s.slo = nil
	}
	if text, err := c.getText(telemetry.EventsPath); err == nil {
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			var ev telemetry.LogEvent
			if json.Unmarshal([]byte(line), &ev) == nil {
				s.events = append(s.events, ev)
			}
		}
	}
	return s
}

func (c *client) getText(path string) (string, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	return string(body), err
}

func (c *client) getJSON(path string, v any) error {
	text, err := c.getText(path)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(text), v)
}

// render writes one dashboard frame.
func render(w io.Writer, addr string, s, prev *sample, maxEvents int) {
	fmt.Fprintf(w, "skytop — %s — %s\n", addr, s.at.Format("15:04:05"))
	if s.err != nil {
		fmt.Fprintf(w, "  [poll error: %v]\n", s.err)
	}
	if h := s.health; h != nil {
		renderJob(w, h)
		renderWorkers(w, s, prev)
	} else {
		fmt.Fprintf(w, "\nhealth: n/a\n")
	}
	renderThroughput(w, s, prev)
	renderCluster(w, s, prev)
	if s.flight != nil {
		renderFlight(w, s.flight)
	}
	renderCritPath(w, s.crit)
	renderSLO(w, s.slo)
	renderSlowlog(w, s.slowlog, 5)
	renderEvents(w, s.events, maxEvents)
}

// renderSLO shows each objective's achieved level, budget consumption
// and multi-window burn state; "n/a" when the target serves no tracker.
func renderSLO(w io.Writer, doc *sloDoc) {
	if doc == nil {
		fmt.Fprintf(w, "\nslo: n/a\n")
		return
	}
	state := "ok"
	if doc.Burning {
		state = "BURNING"
	}
	fmt.Fprintf(w, "\nslo: %s\n", state)
	for _, o := range doc.Objectives {
		detail := fmt.Sprintf("target %.4g", o.Target)
		if o.Kind == "latency" {
			detail = fmt.Sprintf("p%.0f <= %s", o.Quantile*100,
				time.Duration(o.ThresholdSeconds*float64(time.Second)).Round(time.Millisecond))
		}
		flag := ""
		if o.Violated {
			flag = "  VIOLATED"
		}
		burns := make([]string, len(o.Windows))
		for i, win := range o.Windows {
			burns[i] = fmt.Sprintf("%s=%.1fx",
				time.Duration(win.WindowSeconds*float64(time.Second)).Round(time.Second), win.BurnRate)
		}
		fmt.Fprintf(w, "  %-14s %-18s achieved %.4f  budget used %5.1f%%  burn %s%s\n",
			clip(o.Name, 14), detail, o.Achieved, o.BudgetUsed*100, strings.Join(burns, " "), flag)
	}
}

// renderSlowlog shows the slowest tracked queries; "n/a" when the target
// serves no query log.
func renderSlowlog(w io.Writer, doc *queryDoc, max int) {
	if doc == nil {
		fmt.Fprintf(w, "\nslow queries: n/a\n")
		return
	}
	fmt.Fprintf(w, "\nslow queries: %d of %d tracked over %s threshold\n",
		doc.Totals.SlowQueries, doc.Totals.Queries,
		time.Duration(doc.ThresholdSeconds*float64(time.Second)).Round(time.Millisecond))
	qs := doc.Queries
	if len(qs) > max {
		qs = qs[:max]
	}
	if len(qs) == 0 {
		return
	}
	fmt.Fprintf(w, "  %6s %-9s %-7s %10s %6s %9s %9s %6s\n",
		"ID", "OP", "PATH", "DURATION", "PARTS", "CANDS", "TESTS", "RESULT")
	for _, q := range qs {
		fmt.Fprintf(w, "  %6d %-9s %-7s %10s %6d %9d %9d %6d\n",
			q.ID, clip(q.Op, 9), clip(q.Path, 7),
			time.Duration(q.DurationSeconds*float64(time.Second)).Round(time.Microsecond),
			q.PartitionsProbed, q.CandidatesScanned, q.DominanceTests, q.ResultSize)
	}
}

// renderJob shows the running job and a phase progress bar.
func renderJob(w io.Writer, h *rpcmr.Health) {
	if !h.JobRunning {
		fmt.Fprintf(w, "\njob: idle   workers: %d healthy / %d suspect / %d dead   retries: %d   failures: %d\n",
			h.Healthy, h.Suspect, h.Dead, h.TaskRetries, h.WorkerFailures)
		if h.LastJobError != "" {
			fmt.Fprintf(w, "last job error: %s\n", h.LastJobError)
		}
		return
	}
	fmt.Fprintf(w, "\njob: %s   phase: %s   workers: %d healthy / %d suspect / %d dead\n",
		h.Job, h.Phase, h.Healthy, h.Suspect, h.Dead)
	fmt.Fprintf(w, "%s %d/%d tasks  (queue %d, in-flight %d)   retries: %d   failures: %d\n",
		progressBar(h.TasksDone, h.TasksTotal, 32), h.TasksDone, h.TasksTotal,
		h.QueueDepth, h.InFlight, h.TaskRetries, h.WorkerFailures)
}

// progressBar renders done/total as a fixed-width bar.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat("-", width) + "]"
	}
	fill := done * width / total
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("█", fill) + strings.Repeat("·", width-fill) + "]"
}

// renderWorkers shows the per-worker table: state, last-seen age, task
// throughput (from consecutive samples), straggler and retry flags.
func renderWorkers(w io.Writer, s, prev *sample) {
	h := s.health
	if len(h.Workers) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-14s %-8s %9s %10s %8s %6s %6s  %s\n",
		"WORKER", "STATE", "LAST SEEN", "DONE", "TASKS/S", "STRAG", "RETRY", "LAST ERROR")
	for _, wk := range h.Workers {
		rate := "-"
		if prev != nil && prev.health != nil {
			for _, pw := range prev.health.Workers {
				if pw.ID == wk.ID {
					dt := s.at.Sub(prev.at).Seconds()
					if dt > 0 {
						// Clamp counter resets (a restarted worker re-registers
						// with TasksDone back at 0) to zero instead of rendering
						// negative throughput.
						rate = fmt.Sprintf("%.1f", clampRate(float64(wk.TasksDone-pw.TasksDone)/dt))
					}
				}
			}
		}
		fmt.Fprintf(w, "%-14s %-8s %8.1fs %10d %8s %6.0f %6.0f  %s\n",
			clip(wk.ID, 14), wk.State, wk.LastSeenAgeSeconds, wk.TasksDone, rate,
			labeled(s.metrics, "rpcmr_stragglers_total", "worker", wk.ID),
			labeled(s.metrics, "rpcmr_task_retries_total", "worker", wk.ID),
			clip(wk.LastError, 40))
	}
}

// clampRate floors a counter-delta rate at zero: a counter reset (the
// source process restarted between polls) must render as 0, never as
// negative throughput.
func clampRate(r float64) float64 {
	if r < 0 {
		return 0
	}
	return r
}

// renderThroughput draws the cluster task-throughput sparkline from the
// target's real sampled history (/debug/timeseries): per-interval rates
// of rpcmr_tasks_done_total, counter resets clamped to zero. Targets
// without the endpoint degrade to the old two-sample estimate from
// consecutive /metrics polls.
func renderThroughput(w io.Writer, s, prev *sample) {
	if s.series != nil {
		pts := s.series.Series["rpcmr_tasks_done_total"]
		if len(pts) >= 2 {
			rates := make([]float64, 0, len(pts)-1)
			var last float64
			for i := 1; i < len(pts); i++ {
				dt := float64(pts[i].UnixNano-pts[i-1].UnixNano) / 1e9
				if dt <= 0 {
					continue
				}
				last = clampRate((pts[i].Value - pts[i-1].Value) / dt)
				rates = append(rates, last)
			}
			if len(rates) > 0 {
				fmt.Fprintf(w, "\nthroughput (%d samples @ %.1fs)  %s  %.1f tasks/s\n",
					len(pts), s.series.IntervalSeconds, asciiplot.Spark(rates), last)
				return
			}
		}
	}
	// Degraded path: two-sample estimate across polls.
	if prev == nil || s.metrics == nil || prev.metrics == nil {
		return
	}
	cur, ok1 := s.metrics["rpcmr_tasks_done_total"]
	old, ok2 := prev.metrics["rpcmr_tasks_done_total"]
	dt := s.at.Sub(prev.at).Seconds()
	if ok1 && ok2 && dt > 0 {
		fmt.Fprintf(w, "\nthroughput (2-sample estimate)  %.1f tasks/s\n", clampRate((cur-old)/dt))
	}
}

// clusterValue reads one worker's sample of an unlabeled-at-source
// series from a cluster snapshot member (the federation injected the
// worker label, rendering canonically).
func clusterValue(ws telemetry.WorkerSnapshot, name, labelKey string) (float64, bool) {
	id := telemetry.RenderSeriesID(name, []telemetry.Label{{Key: labelKey, Value: ws.ID}})
	v, ok := ws.Samples[id]
	return v, ok
}

// clusterSum sums every sample of a series family in one member's
// snapshot — covers source series that carry extra labels (kind,
// result) beyond the injected worker label.
func clusterSum(ws telemetry.WorkerSnapshot, name string) float64 {
	var total float64
	for id, v := range ws.Samples {
		if id == name || strings.HasPrefix(id, name+"{") {
			total += v
		}
	}
	return total
}

// renderCluster shows the federated per-worker panel from
// /debug/cluster: CPU, RSS, GC and task throughput per member, rates
// computed against the previous poll and clamped at counter resets.
// Stale members (unreachable or declared dead) keep their last-good
// numbers, flagged STALE.
func renderCluster(w io.Writer, s, prev *sample) {
	if s.cluster == nil || len(s.cluster.Workers) == 0 {
		return
	}
	fmt.Fprintf(w, "\ncluster (%d members)\n", len(s.cluster.Workers))
	fmt.Fprintf(w, "  %-14s %6s %8s %6s %8s %8s  %s\n",
		"MEMBER", "CPU%", "RSS", "GC", "TASKS", "TASKS/S", "STATUS")
	for _, ws := range s.cluster.Workers {
		var pws *telemetry.WorkerSnapshot
		if prev != nil && prev.cluster != nil {
			for i := range prev.cluster.Workers {
				if prev.cluster.Workers[i].ID == ws.ID {
					pws = &prev.cluster.Workers[i]
					break
				}
			}
		}
		dt := 0.0
		if pws != nil && prev != nil {
			dt = s.at.Sub(prev.at).Seconds()
		}
		cpu := "-"
		if cur, ok := clusterValue(ws, "process_cpu_seconds_total", "worker"); ok && pws != nil && dt > 0 {
			if old, ok := clusterValue(*pws, "process_cpu_seconds_total", "worker"); ok {
				cpu = fmt.Sprintf("%.0f", clampRate((cur-old)/dt)*100)
			}
		}
		rss := "-"
		if v, ok := clusterValue(ws, "process_rss_bytes", "worker"); ok {
			rss = fmt.Sprintf("%.0fM", v/(1<<20))
		}
		gc := "-"
		if v, ok := clusterValue(ws, "process_gc_runs_total", "worker"); ok {
			gc = fmt.Sprintf("%.0f", v)
		}
		tasks := clusterSum(ws, "rpcmr_worker_tasks_total")
		if ws.ID == "master" {
			tasks = clusterSum(ws, "rpcmr_tasks_done_total")
		}
		rate := "-"
		if pws != nil && dt > 0 {
			old := clusterSum(*pws, "rpcmr_worker_tasks_total")
			if ws.ID == "master" {
				old = clusterSum(*pws, "rpcmr_tasks_done_total")
			}
			rate = fmt.Sprintf("%.1f", clampRate((tasks-old)/dt))
		}
		status := "ok"
		if ws.Stale {
			status = "STALE"
		}
		if ws.Err != "" {
			status += " (" + clip(ws.Err, 30) + ")"
		}
		fmt.Fprintf(w, "  %-14s %6s %8s %6s %8.0f %8s  %s\n",
			clip(ws.ID, 14), cpu, rss, gc, tasks, rate, status)
	}
}

// labelRe pulls one k="v" pair out of a Prometheus series key.
var labelRe = regexp.MustCompile(`(\w+)="((?:[^"\\]|\\.)*)"`)

// labeled sums a metric's series whose label set includes key=value —
// summing covers series that split the same worker across extra labels
// (e.g. rpcmr_task_retries_total{cause,worker}).
func labeled(metrics map[string]float64, name, key, value string) float64 {
	var total float64
	for series, v := range metrics {
		if !strings.HasPrefix(series, name+"{") {
			continue
		}
		for _, m := range labelRe.FindAllStringSubmatch(series, -1) {
			if m[1] == key && m[2] == value {
				total += v
				break
			}
		}
	}
	return total
}

// renderFlight shows the partition-load sparkline and the skew /
// optimality rollups from the flight record.
func renderFlight(w io.Writer, r *telemetry.Report) {
	if len(r.Partitions) == 0 {
		return
	}
	parts := append([]telemetry.PartitionRecord(nil), r.Partitions...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].Partition < parts[j].Partition })
	loads := make([]float64, len(parts))
	anyLoad := false
	for i, p := range parts {
		loads[i] = float64(p.InputRecords)
		if p.InputRecords == 0 {
			loads[i] = float64(p.LocalSkyline)
		}
		if loads[i] > 0 {
			anyLoad = true
		}
	}
	if !anyLoad {
		return
	}
	fmt.Fprintf(w, "\npartition load (%d partitions)  %s\n", len(parts), asciiplot.Spark(loads))
	fmt.Fprintf(w, "skew: imbalance %.2f, gini %.2f   optimality (Eq.5): %.3f   stragglers: %d\n",
		r.Skew.Imbalance, r.Skew.Gini, r.Optimality, r.Stragglers)
}

// renderCritPath shows the bottleneck panel from the critical-path
// analyzer: phase blame, the worst worker, and the headline what-if
// predictions. "n/a" when the target serves no /debug/critpath (an
// older binary, a skyserve target) or has no completed job to analyze.
func renderCritPath(w io.Writer, a *critpath.Analysis) {
	if a == nil || a.MakespanSeconds <= 0 {
		fmt.Fprintf(w, "\nbottleneck: n/a\n")
		return
	}
	var top critpath.PhaseBlame
	fmt.Fprintf(w, "\nbottleneck: makespan %.2fs  ", a.MakespanSeconds)
	for _, p := range a.Phases {
		if p.Seconds > top.Seconds {
			top = p
		}
		fmt.Fprintf(w, " %s %.2fs (%.0f%%)", p.Phase, p.Seconds, p.Share*100)
	}
	fmt.Fprintln(w)
	if len(a.Workers) > 0 {
		wk := a.Workers[0]
		mark := ""
		if wk.Straggler {
			mark = "  STRAGGLER"
		}
		fmt.Fprintf(w, "  worst worker: %s %.2fs (%.0f%%)%s\n", wk.Worker, wk.Seconds, wk.Share*100, mark)
	}
	for _, sc := range a.WhatIf {
		if sc.Name == "perfect-balance" || sc.Name == "no-straggler" {
			fmt.Fprintf(w, "  what-if %-15s %.2fs (%.2fx)\n", sc.Name, sc.PredictedSeconds, sc.SpeedupX)
		}
	}
}

// renderEvents shows the tail of the event stream.
func renderEvents(w io.Writer, events []telemetry.LogEvent, max int) {
	if len(events) == 0 || max <= 0 {
		return
	}
	if len(events) > max {
		events = events[len(events)-max:]
	}
	fmt.Fprintf(w, "\nrecent events\n")
	for _, ev := range events {
		attrs := formatAttrs(ev.Attrs)
		fmt.Fprintf(w, "  %s %-5s %-20s %s\n",
			ev.Time.Format("15:04:05.000"), ev.Level, clip(ev.Msg, 20), clip(attrs, 70))
	}
}

// formatAttrs renders event attributes deterministically (sorted keys).
func formatAttrs(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, attrs[k])
	}
	return strings.Join(parts, " ")
}

// clip bounds s to n runes.
func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}
