package skymr

import (
	"repro/internal/skyline"
	"repro/internal/stream"
)

// WindowedSkyline maintains the skyline of the most recent W observations
// of a QoS feed — the continuous-monitoring counterpart of Compute,
// addressing the paper's concern that "the QoS of selected services may
// get degraded rapidly": selections are always drawn from fresh
// measurements. Not safe for concurrent use.
type WindowedSkyline struct {
	w *stream.Windowed
}

// NewWindowedSkyline creates a sliding window of the given capacity.
func NewWindowedSkyline(capacity int) (*WindowedSkyline, error) {
	w, err := stream.NewWindowed(capacity)
	if err != nil {
		return nil, err
	}
	return &WindowedSkyline{w: w}, nil
}

// Observe appends a measurement (evicting the one W steps older) and
// reports whether it is on the updated window skyline.
func (ws *WindowedSkyline) Observe(p Point) (onSkyline bool, err error) {
	return ws.w.Add(p)
}

// Skyline returns a copy of the current window skyline.
func (ws *WindowedSkyline) Skyline() Set { return ws.w.Skyline() }

// Len returns the number of live observations.
func (ws *WindowedSkyline) Len() int { return ws.w.Len() }

// TopKDominating returns the k services dominating the most others — the
// "most broadly superior" shortlist, the aggregate dual of the skyline.
func TopKDominating(data Set, k int) Set { return skyline.TopKDominating(data, k) }
