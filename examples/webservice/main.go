// Webservice selection: the paper's motivating scenario (§I). Hundreds of
// providers answer the same request — e.g. 200 stock-quote services — and
// a client wants the QoS-optimal shortlist: the skyline over response
// time, cost and availability. The example then shows why skyline beats a
// fixed weighted score: every skyline service is the unique winner for
// SOME preference weighting, while no non-skyline service ever wins.
//
//	go run ./examples/webservice
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	skymr "repro"
)

// provider is one stock-quote service offering.
type provider struct {
	name  string
	point skymr.Point // (response time ms, cost $ per 1k calls, 100-availability %)
}

func main() {
	providers := makeMarket(200, 7)
	data := make(skymr.Set, len(providers))
	for i, p := range providers {
		data[i] = p.point
	}

	res, err := skymr.Compute(context.Background(), data, skymr.Options{
		Method: skymr.Angle,
		Nodes:  4,
	})
	if err != nil {
		log.Fatal(err)
	}

	onSkyline := map[string]bool{}
	for _, s := range res.Skyline {
		for _, p := range providers {
			if p.point.Equal(s) {
				onSkyline[p.name] = true
			}
		}
	}
	fmt.Printf("market: %d providers, skyline shortlist: %d\n\n", len(providers), len(onSkyline))

	fmt.Println("QoS-optimal providers (not dominated by anyone):")
	names := make([]string, 0, len(onSkyline))
	for n := range onSkyline {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, p := range providers {
			if p.name == n {
				fmt.Printf("  %-12s rt=%6.1fms cost=$%5.2f avail=%5.2f%%\n",
					p.name, p.point[0], p.point[1], 100-p.point[2])
				break
			}
		}
	}

	// Every preference weighting picks its winner from the skyline.
	fmt.Println("\nwinners under different client preferences:")
	prefs := []struct {
		name string
		w    [3]float64
	}{
		{"latency-obsessed", [3]float64{0.8, 0.1, 0.1}},
		{"budget-conscious", [3]float64{0.1, 0.8, 0.1}},
		{"uptime-critical", [3]float64{0.1, 0.1, 0.8}},
		{"balanced", [3]float64{0.34, 0.33, 0.33}},
	}
	min, max := data.Bounds()
	for _, pref := range prefs {
		best, bestScore := "", 0.0
		for _, p := range providers {
			score := 0.0
			for j := 0; j < 3; j++ {
				span := max[j] - min[j]
				if span == 0 {
					continue
				}
				score += pref.w[j] * (p.point[j] - min[j]) / span
			}
			if best == "" || score < bestScore {
				best, bestScore = p.name, score
			}
		}
		marker := "NOT on skyline (bug!)"
		if onSkyline[best] {
			marker = "on skyline"
		}
		fmt.Printf("  %-18s -> %-12s (%s)\n", pref.name, best, marker)
	}
}

// makeMarket synthesizes competing providers with realistic trade-offs:
// premium (fast, expensive), budget (slow, cheap), and everything between,
// plus a few strictly-dominated laggards.
func makeMarket(n int, seed int64) []provider {
	rng := rand.New(rand.NewSource(seed))
	out := make([]provider, n)
	for i := range out {
		// Position on the cost/performance trade-off curve.
		t := rng.Float64()
		rt := 40 + 400*t + rng.Float64()*80       // fast when t small
		cost := 0.5 + 9*(1-t) + rng.Float64()*1.5 // expensive when t small
		unavail := 0.05 + rng.Float64()*4         // independent axis
		out[i] = provider{
			name:  fmt.Sprintf("svc-%03d", i),
			point: skymr.Point{rt, cost, unavail},
		}
	}
	return out
}
