// Monitoring: tracking the skyline of live QoS measurements. The paper's
// introduction warns that "the QoS of selected service may get degraded
// rapidly" when traffic saturates; a windowed skyline keeps selections
// honest by only ranking fresh observations. This example simulates three
// providers whose performance shifts over time and shows the skyline
// following the regime changes.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"math/rand"

	skymr "repro"
)

func main() {
	const window = 60 // keep the last 60 measurements (20 per provider)
	ws, err := skymr.NewWindowedSkyline(window)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	// Three providers measured round-robin on (response time ms, error %).
	// Provider C starts terribly and becomes excellent after tick 100 —
	// e.g. an overloaded node was replaced.
	measure := func(provider int, tick int) skymr.Point {
		switch provider {
		case 0: // steady mid-tier
			return skymr.Point{200 + rng.Float64()*40, 1.0 + rng.Float64()*0.4}
		case 1: // fast but flaky
			return skymr.Point{80 + rng.Float64()*30, 3.0 + rng.Float64()*1.0}
		default: // degraded, then fixed
			if tick < 100 {
				return skymr.Point{500 + rng.Float64()*100, 5.0 + rng.Float64()*2}
			}
			return skymr.Point{60 + rng.Float64()*20, 0.5 + rng.Float64()*0.3}
		}
	}
	names := []string{"steady-mid", "fast-flaky", "was-degraded"}

	onSky := make([]int, 3) // per-provider: measurements on the skyline in the current epoch
	report := func(epoch string) {
		fmt.Printf("%-28s", epoch)
		for i, n := range names {
			fmt.Printf("  %s:%3d", n, onSky[i])
		}
		fmt.Println()
		for i := range onSky {
			onSky[i] = 0
		}
	}

	fmt.Printf("window=%d measurements; counting per-provider skyline hits per epoch\n\n", window)
	for tick := 0; tick < 200; tick++ {
		provider := tick % 3
		on, err := ws.Observe(measure(provider, tick))
		if err != nil {
			log.Fatal(err)
		}
		if on {
			onSky[provider]++
		}
		switch tick {
		case 99:
			report("epoch 1 (C degraded):")
		case 159:
			report("epoch 2 (C fixed, mixed):")
		case 199:
			report("epoch 3 (window all-new):")
		}
	}
	fmt.Printf("\nfinal window skyline: %d of %d fresh measurements\n", len(ws.Skyline()), ws.Len())
	fmt.Println("note how 'was-degraded' contributes nothing in epoch 1 and dominates epoch 3 —")
	fmt.Println("a static all-time skyline would still be recommending its stale bad numbers' rivals.")
}
