// Scalability: the Figure 6 experiment in miniature. A real MR-Angle run
// measures the algorithmic workload (partition sizes, local skylines,
// global skyline), and the cluster simulator schedules that workload onto
// 4..32 virtual servers, printing the Map/Reduce wall-clock split — the
// paper's stacked-bar figure as a table.
//
//	go run ./examples/scalability
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	skymr "repro"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/partition"
)

func main() {
	const n, d = 20000, 10
	fmt.Printf("workload: %d services x %d attributes, MR-Angle, partitions = 2 x servers\n\n", n, d)
	data := skymr.GenerateQWS(2012, n, d)

	cm := cluster.DefaultCostModel()
	// The default model is calibrated for the paper's 100,000-service
	// workload; at this example's miniature 20,000 the fixed Hadoop-era
	// job overhead would swamp the compute, so scale it down to keep the
	// curve legible. Run `skybench -figure 6 -full` for the calibrated
	// full-scale figure.
	cm.JobOverhead = 4 * time.Second
	fmt.Printf("%-9s%12s%12s%12s%10s\n", "servers", "map", "reduce", "total", "speedup")
	var base time.Duration
	for _, servers := range []int{4, 8, 12, 16, 20, 24, 28, 32} {
		w, err := experiments.WorkloadFor(context.Background(), data, partition.Angular, servers, 4)
		if err != nil {
			log.Fatal(err)
		}
		b, err := cluster.Simulate(w, servers, cm)
		if err != nil {
			log.Fatal(err)
		}
		if servers == 4 {
			base = b.Total()
		}
		fmt.Printf("%-9d%12s%12s%12s%9.2fx\n",
			servers,
			b.MapTime.Round(time.Millisecond),
			b.ReduceTime.Round(time.Millisecond),
			b.Total().Round(time.Millisecond),
			float64(base)/float64(b.Total()))
	}
	fmt.Println("\nnote: sub-linear speedup that saturates — the Map side parallelizes,")
	fmt.Println("the merge Reduce and per-job overhead do not (paper Fig. 6).")
}
