// Shortlist: turning a large Pareto set into something a human can act
// on. High-dimensional QoS data has huge skylines (hundreds of services,
// none comparable); this example combines two extensions of the paper's
// pipeline — the k-skyband for tolerance and the representative skyline
// for diversity — to produce a 5-service shortlist from 10,000 offerings.
//
//	go run ./examples/shortlist
package main

import (
	"context"
	"fmt"
	"log"

	skymr "repro"
)

func main() {
	data := skymr.GenerateQWS(2024, 10000, 6)
	fmt.Printf("registry: %d services x %d attributes (%v)\n\n",
		len(data), data.Dim(), skymr.QWSAttributeNames(6))

	// Step 1: the exact skyline — already too many to eyeball.
	res, err := skymr.Compute(context.Background(), data, skymr.Options{Method: skymr.Angle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact skyline: %d services — too many to review by hand\n", len(res.Skyline))

	// Step 2: the 3-skyband — services at most 2 dominators away from
	// optimal, for clients that trade strict optimality for choice.
	band, err := skymr.ComputeSkyband(context.Background(), data, 3, skymr.Options{Method: skymr.Angle})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-skyband: %d services (every skyline service plus near-optimal ones)\n\n", len(band))

	// Step 3: five representatives spread across the trade-off spectrum.
	reps := skymr.RepresentativeSkyline(res.Skyline, 5)
	fmt.Println("5-service shortlist (max-min diverse skyline members):")
	for i, p := range reps {
		fmt.Printf("  #%d  rt=%7.1fms  avail-gap=%5.1f%%  tput-gap=%5.1f  succ-gap=%5.1f%%  rel-gap=%5.1f%%  compl-gap=%5.1f%%\n",
			i+1, p[0], p[1], p[2], p[3], p[4], p[5])
	}
	fmt.Println("\n(values are oriented costs: 0 is the best possible in each attribute)")
}
