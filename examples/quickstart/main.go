// Quickstart: compute the skyline of a QoS dataset with the paper's
// MR-Angle method and compare it against the other partitioning schemes.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	skymr "repro"
)

func main() {
	// 2,000 synthetic web services over 4 QoS attributes (response time,
	// availability, throughput, successability — all oriented so lower is
	// better).
	data := skymr.GenerateQWS(42, 2000, 4)
	fmt.Printf("dataset: %d services x %d attributes (%v)\n\n",
		len(data), data.Dim(), skymr.QWSAttributeNames(4))

	// The one-call sequential reference.
	seq := skymr.Skyline(data)
	fmt.Printf("sequential BNL skyline: %d services\n\n", len(seq))

	// The MapReduce pipeline with each partitioning method.
	for _, m := range skymr.Methods() {
		res, err := skymr.Compute(context.Background(), data, skymr.Options{
			Method: m,
			Nodes:  4, // partitions = 2 x nodes, the paper's rule
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s skyline=%d partitions=%d localSkyline=%d optimality=%.3f total=%s\n",
			res.Method, len(res.Skyline), res.Partitions,
			res.LocalSkylineTotal(), res.Optimality(),
			res.Timing.Total.Round(time.Microsecond))
	}

	fmt.Println("\nbest trade-off services (first 5 of the skyline):")
	for i, p := range seq {
		if i == 5 {
			break
		}
		fmt.Printf("  service %d: %v\n", i+1, p)
	}
}
