// Distributed: a complete master + workers skyline computation over real
// TCP RPC, all in one process for easy running. The same code paths power
// the cmd/skymaster and cmd/skyworker binaries across machines.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	skymr "repro"
	"repro/internal/partition"
	"repro/internal/rpcmr"
	"repro/internal/skyjob"
)

func main() {
	// Start a master on a random local port.
	master, err := rpcmr.NewMaster(rpcmr.MasterConfig{Addr: "127.0.0.1:0", SplitSize: 500})
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	fmt.Printf("master listening on %s\n", master.Addr())

	// Launch four workers, each a TCP client pulling tasks.
	for i := 0; i < 4; i++ {
		w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{
			MasterAddr:   master.Addr(),
			ID:           fmt.Sprintf("worker-%d", i),
			PollInterval: 10 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		go func(id int) {
			// Run ends with a connection error when the master closes at
			// process exit; that is the expected shutdown path here.
			_ = w.Run(context.Background())
		}(i)
	}
	for master.WorkerCount() < 4 {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("%d workers connected\n\n", master.WorkerCount())

	// Run the two-job skyline pipeline for each method and cross-check
	// against the sequential reference.
	data := skymr.GenerateQWS(7, 5000, 5)
	seq := skymr.Skyline(data)
	agree := true
	for _, scheme := range []partition.Scheme{partition.Dimensional, partition.Grid, partition.Angular} {
		start := time.Now()
		res, err := skyjob.Compute(context.Background(), master, data, scheme, 8, 4)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Skyline) != len(seq) {
			agree = false
		}
		fmt.Printf("%-9s skyline=%4d of %d  localSkylines=%d partitions  wall=%s\n",
			scheme, len(res.Skyline), len(data), len(res.LocalSkylines),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("\nsequential reference: %d skyline services — all methods agree: %v\n",
		len(seq), agree)
}
