// Registry: the UDDI-like service registry as an HTTP API, exercised
// end-to-end in one process — boot the server on a random port, publish
// services over HTTP, query the live skyline, and show that a publish is
// reflected immediately (the paper's §II dynamic scenario).
//
//	go run ./examples/registry
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	skymr "repro"
	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/registry"
)

func main() {
	// Seed the registry with 500 synthetic services over 3 QoS attributes.
	data := skymr.GenerateQWS(33, 500, 3)
	seeds := make([]registry.Service, len(data))
	for i, p := range data {
		seeds[i] = registry.Service{Name: fmt.Sprintf("seed-%03d", i), QoS: p}
	}
	reg, err := registry.New(context.Background(), seeds, driver.Options{Scheme: partition.Angular})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: reg.Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("registry serving %d services at %s\n\n", reg.Len(), base)

	// Query the skyline.
	var sky []registry.Service
	getJSON(base+"/skyline", &sky)
	fmt.Printf("GET /skyline -> %d QoS-optimal services (first 3):\n", len(sky))
	for i, s := range sky {
		if i == 3 {
			break
		}
		fmt.Printf("  %-10s qos=%v\n", s.Name, round(s.QoS))
	}

	// Publish a dominating service.
	body, _ := json.Marshal(registry.Service{Name: "disruptor", QoS: []float64{0.5, 0.1, 0.1}})
	resp, err := http.Post(base+"/services", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	var pub struct {
		InSkyline bool `json:"in_skyline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nPOST /services \"disruptor\" (near-ideal QoS) -> in_skyline=%v\n", pub.InSkyline)

	// The skyline reflects the publish immediately.
	getJSON(base+"/skyline", &sky)
	fmt.Printf("GET /skyline -> %d services (the disruptor dominated the rest)\n", len(sky))

	var stats struct {
		Services    int `json:"services"`
		SkylineSize int `json:"skyline_size"`
		IndexPoints int `json:"index_points"`
	}
	getJSON(base+"/stats", &stats)
	fmt.Printf("GET /stats   -> %d services, skyline %d, index retains %d points (%.1f%% of catalogue)\n",
		stats.Services, stats.SkylineSize, stats.IndexPoints,
		100*float64(stats.IndexPoints)/float64(stats.Services))
}

func getJSON(url string, v interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}

func round(qos []float64) []float64 {
	out := make([]float64, len(qos))
	for i, v := range qos {
		out[i] = float64(int(v*10)) / 10
	}
	return out
}
