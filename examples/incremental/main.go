// Incremental: the paper's dynamic-registry scenario (§II). When a new
// service is published to the registry (UDDI), the traditional approach
// recomputes the whole skyline; the MapReduce index only updates the
// service's own partition and re-merges the small local skylines. This
// example registers a stream of services and compares the work done.
//
//	go run ./examples/incremental
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	skymr "repro"
)

func main() {
	initial := skymr.GenerateQWS(11, 10000, 4)
	fmt.Printf("registry: %d services x %d attributes\n", len(initial), initial.Dim())

	start := time.Now()
	ix, err := skymr.BuildIndex(context.Background(), initial, skymr.Options{
		Method: skymr.Angle,
		Nodes:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial skyline: %d services (built in %s)\n",
		len(ix.Global()), time.Since(start).Round(time.Millisecond))
	fmt.Printf("index working set: %d points (%.1f%% of the registry)\n\n",
		ix.Size(), 100*float64(ix.Size())/float64(len(initial)))

	// Publish 1,000 new services; time the incremental path.
	newcomers := skymr.GenerateQWS(12, 1000, 4)
	accepted := 0
	incStart := time.Now()
	for _, p := range newcomers {
		_, inGlobal, err := ix.Add(p)
		if err != nil {
			log.Fatal(err)
		}
		if inGlobal {
			accepted++
		}
	}
	incDur := time.Since(incStart)
	fmt.Printf("published 1000 new services incrementally in %s (%s per add)\n",
		incDur.Round(time.Millisecond), (incDur / 1000).Round(time.Microsecond))
	fmt.Printf("  %d of them entered the global skyline\n", accepted)

	// The batch alternative: full recompute over the grown registry.
	all := append(initial.Clone(), newcomers...)
	batchStart := time.Now()
	batch := skymr.Skyline(all)
	batchDur := time.Since(batchStart)
	fmt.Printf("\none full batch recompute over %d services: %s\n", len(all), batchDur.Round(time.Millisecond))
	fmt.Printf("batch skyline: %d services, incremental skyline: %d services (must match)\n",
		len(batch), len(ix.Global()))
	if len(batch) != len(ix.Global()) {
		log.Fatal("MISMATCH: incremental and batch skylines diverged")
	}
	perAdd := incDur / 1000
	fmt.Printf("\nper-add incremental cost %s vs %s full recompute — %.0fx cheaper when services arrive one at a time\n",
		perAdd.Round(time.Microsecond), batchDur.Round(time.Millisecond),
		float64(batchDur)/float64(perAdd))
}
