// Package skymr is a from-scratch Go reproduction of "MapReduce Skyline
// Query Processing with A New Angular Partitioning Approach" (Chen, Hwang,
// Wu — IEEE IPDPSW 2012): scalable parallel skyline query processing over
// a hand-rolled MapReduce engine, with the paper's three data-space
// partitioning schemes — MR-Dim, MR-Grid, and the novel MR-Angle.
//
// The skyline of a multi-attribute QoS dataset is the set of services not
// dominated by any other service, where service p dominates q when p is at
// least as good in every attribute and strictly better in one (lower is
// better throughout this library). The MapReduce pipeline partitions the
// data space, computes per-partition local skylines in parallel with BNL,
// and merges them into the global skyline — MR-Angle's hyperspherical
// sectors make local skylines small and globally relevant, which is what
// cuts the merge (Reduce) cost.
//
// # Quick start
//
//	data := skymr.GenerateQWS(42, 10000, 4) // or load your own Set
//	res, err := skymr.Compute(context.Background(), data, skymr.Options{
//		Method: skymr.Angle,
//		Nodes:  4,
//	})
//	if err != nil { ... }
//	fmt.Println(len(res.Skyline), res.Optimality(), res.Timing.Total)
//
// For distributed execution over TCP see cmd/skymaster and cmd/skyworker;
// for the paper's full evaluation harness see cmd/skybench.
package skymr

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/skyline"
)

// Point is one service's QoS attribute vector; lower values are better in
// every dimension.
type Point = points.Point

// Set is an ordered collection of points.
type Set = points.Set

// Method selects the data-space partitioning scheme.
type Method int

const (
	// Dim is MR-Dim: equal ranges along one dimension.
	Dim Method = iota
	// Grid is MR-Grid: a Cartesian grid with dominated-cell pruning.
	Grid
	// Angle is MR-Angle: the paper's novel hyperspherical sectors.
	Angle
	// Random is a hash-partitioned baseline (not in the paper).
	Random
)

// String returns the paper's name for the method.
func (m Method) String() string { return m.scheme().String() }

func (m Method) scheme() partition.Scheme {
	switch m {
	case Dim:
		return partition.Dimensional
	case Grid:
		return partition.Grid
	case Angle:
		return partition.Angular
	case Random:
		return partition.Random
	default:
		return partition.Scheme(-1)
	}
}

// Methods lists the paper's three methods in presentation order.
func Methods() []Method { return []Method{Dim, Grid, Angle} }

// Kernel selects the sequential skyline algorithm used inside the
// pipeline (local and global phases).
type Kernel int

const (
	// BNL is block-nested-loops, the paper's kernel.
	BNL Kernel = iota
	// SFS is sort-filter-skyline.
	SFS
	// DC is divide-and-conquer.
	DC
)

func (k Kernel) algorithm() skyline.Algorithm {
	switch k {
	case SFS:
		return skyline.SFSAlgorithm
	case DC:
		return skyline.DCAlgorithm
	default:
		return skyline.BNLAlgorithm
	}
}

// Options configures a Compute call. The zero value runs MR-Dim on 4
// nodes with the BNL kernel; set Method for the other schemes.
type Options struct {
	// Method is the partitioning scheme (default Dim).
	Method Method
	// Nodes models the cluster size; the partition count defaults to
	// 2 × Nodes, the paper's empirical rule. Default 4.
	Nodes int
	// Partitions overrides the partition count when > 0.
	Partitions int
	// Workers is the number of concurrent engine workers; defaults to
	// Nodes.
	Workers int
	// Kernel selects the sequential skyline algorithm (default BNL).
	Kernel Kernel
	// ClassicKernel forces the classic per-point kernels instead of the
	// default flat-memory block kernels (contiguous coordinates,
	// dimension-specialized dominance tests, parallel merge tree). Both
	// paths produce identical skylines; see DESIGN.md "Flat-memory
	// kernel layer".
	ClassicKernel bool
	// DisableCombiner ships raw partitions to reducers instead of
	// combining local skylines map-side (ablation).
	DisableCombiner bool
	// DisableGridPruning turns off MR-Grid's dominated-cell pruning
	// (ablation; no effect on other methods).
	DisableGridPruning bool
	// SpillDir, when set, spills intermediate MapReduce data to sequence
	// files under this existing directory instead of the heap.
	SpillDir string
	// HierarchicalMerge replaces the single global merge with rounds of
	// MergeFanIn-way partial merges — the paper's §II iterative
	// (Twister-style) extension for very large candidate sets.
	HierarchicalMerge bool
	// MergeFanIn is the per-round fan-in of the hierarchical merge
	// (default 8).
	MergeFanIn int
	// ReducerBudgetBytes caps every reducer's resident candidate window
	// at this many payload bytes; overflow streams through spill frames
	// and resolves in extra passes (see DESIGN.md "Out-of-core engine").
	// 0 means unbudgeted. Budgeted runs seal frames with the
	// size-adaptive auto codec.
	ReducerBudgetBytes int64
}

// codec picks the frame codec for a run: budgeted runs spill, so they
// get the size-adaptive auto codec; unbudgeted runs keep the default.
func (o Options) codec() points.FrameCodec {
	if o.ReducerBudgetBytes > 0 {
		return points.FrameAuto
	}
	return 0
}

// Timing is the per-phase wall-clock breakdown of a computation.
type Timing struct {
	Map     time.Duration // map + combine across both jobs
	Shuffle time.Duration
	Reduce  time.Duration
	Total   time.Duration
}

// Result carries the skyline and the execution evidence.
type Result struct {
	// Skyline is the global skyline of the input.
	Skyline Set
	// Method echoes the partitioning scheme used.
	Method Method
	// Partitions is the planned partition count.
	Partitions int
	// PrunedPartitions counts grid cells skipped by dominance pruning.
	PrunedPartitions int
	// LocalSkylines maps partition id → local skyline.
	LocalSkylines map[int]Set
	// PartitionCounts is the number of input points per partition.
	PartitionCounts []int
	// Timing is the phase breakdown summed over the two MapReduce jobs.
	Timing Timing
	// Counters exposes the engine's framework counters (see package
	// mapreduce for names).
	Counters map[string]int64
}

// Optimality computes the paper's Eq. (5) local skyline optimality of
// this run: the average fraction of local skyline services that are also
// globally optimal.
func (r *Result) Optimality() float64 {
	local := make(map[int]points.Set, len(r.LocalSkylines))
	for id, s := range r.LocalSkylines {
		local[id] = s
	}
	return metrics.LocalSkylineOptimality(local, r.Skyline)
}

// LocalSkylineTotal returns the number of points across all local
// skylines — the volume entering the merge job.
func (r *Result) LocalSkylineTotal() int {
	n := 0
	for _, s := range r.LocalSkylines {
		n += len(s)
	}
	return n
}

// Compute runs the selected MapReduce skyline method over data. The input
// must be non-empty, finite and uniform-dimensional; it is not mutated.
func Compute(ctx context.Context, data Set, opts Options) (*Result, error) {
	if opts.Method.scheme() < 0 {
		return nil, fmt.Errorf("skymr: unknown method %d", int(opts.Method))
	}
	sky, stats, err := driver.Compute(ctx, data, driver.Options{
		Scheme:             opts.Method.scheme(),
		Nodes:              opts.Nodes,
		Partitions:         opts.Partitions,
		Workers:            opts.Workers,
		Kernel:             opts.Kernel.algorithm(),
		ClassicKernel:      opts.ClassicKernel,
		DisableCombiner:    opts.DisableCombiner,
		DisableGridPruning: opts.DisableGridPruning,
		SpillDir:           opts.SpillDir,
		HierarchicalMerge:  opts.HierarchicalMerge,
		MergeFanIn:         opts.MergeFanIn,
		ReducerBudgetBytes: opts.ReducerBudgetBytes,
		Codec:              opts.codec(),
	})
	if err != nil {
		return nil, err
	}
	local := make(map[int]Set, len(stats.LocalSkylines))
	for id, s := range stats.LocalSkylines {
		local[id] = s
	}
	return &Result{
		Skyline:          sky,
		Method:           opts.Method,
		Partitions:       stats.Partitions,
		PrunedPartitions: stats.PrunedPartitions,
		LocalSkylines:    local,
		PartitionCounts:  stats.PartitionCounts,
		Timing: Timing{
			Map:     stats.Timing.Map,
			Shuffle: stats.Timing.Shuffle,
			Reduce:  stats.Timing.Reduce,
			Total:   stats.Timing.Total,
		},
		Counters: stats.Counters,
	}, nil
}

// ComputeSkyband runs the MapReduce k-skyband — services dominated by
// fewer than k others — the QoS-tolerant generalization of the skyline
// (k = 1 is exactly Compute's skyline). Same two-job structure and
// options as Compute.
func ComputeSkyband(ctx context.Context, data Set, k int, opts Options) (Set, error) {
	if opts.Method.scheme() < 0 {
		return nil, fmt.Errorf("skymr: unknown method %d", int(opts.Method))
	}
	band, _, err := driver.ComputeSkyband(ctx, data, k, driver.Options{
		Scheme:     opts.Method.scheme(),
		Nodes:      opts.Nodes,
		Partitions: opts.Partitions,
		Workers:    opts.Workers,
		SpillDir:   opts.SpillDir,
	})
	return band, err
}

// Skyband computes the k-skyband sequentially — the single-machine
// reference.
func Skyband(data Set, k int) (Set, error) { return skyline.Skyband(data, k) }

// Skyline computes the skyline sequentially with BNL — the single-machine
// reference for small inputs and verification.
func Skyline(data Set) Set { return skyline.BNL(data) }

// SkylineParallel computes the skyline on shared memory with a pool of
// goroutines (chunk → local BNL → merge). workers ≤ 0 selects GOMAXPROCS.
func SkylineParallel(data Set, workers int) Set {
	return skyline.Parallel(data, workers)
}

// SkylineBounded computes the skyline with the memory-bounded multi-pass
// BNL of Börzsönyi et al.: the candidate window holds at most window
// points, overflow is re-processed in later passes. Exact for any window
// ≥ 1.
func SkylineBounded(data Set, window int) (Set, error) {
	return skyline.BNLExternal(data, window)
}

// RepresentativeSkyline picks k spread-out members of a skyline (greedy
// max-min dispersion over normalized attributes) — a shortlist a human
// can actually review when the full Pareto set is large.
func RepresentativeSkyline(sky Set, k int) Set {
	return skyline.Representative(sky, k)
}

// Dominates reports whether p dominates q (lower-is-better in every
// dimension, strictly in at least one).
func Dominates(p, q Point) bool { return points.Dominates(p, q) }

// GenerateQWS synthesizes a QWS-like web-service QoS dataset of n services
// over the first d of the 10 modelled attributes (see DESIGN.md for the
// substitution rationale), oriented for minimization. For n > 10,000 the
// base is extended by the paper's narrow-jitter resampling.
func GenerateQWS(seed int64, n, d int) Set { return qws.Dataset(seed, n, d) }

// QWSAttributeNames returns the names of the first d QWS attributes, in
// the column order GenerateQWS uses.
func QWSAttributeNames(d int) []string { return qws.Names(d) }

// LoadQWS parses a file in the published QWS dataset format (nine QoS
// columns plus optional name/WSDL columns), orienting every attribute for
// minimization. It returns the point set and the service names.
func LoadQWS(r io.Reader) (Set, []string, error) { return qws.Load(r) }

// Orient converts raw data to the minimization convention: dimensions
// flagged higher-is-better are flipped as (observed max − value). Use when
// loading arbitrary QoS data with mixed benefit/cost attributes.
func Orient(data Set, higherBetter []bool) (Set, error) {
	return points.Orient(data, higherBetter)
}

// Normalize rescales every dimension to [0, 1] by observed min/max.
// Dominance (and therefore the skyline) is preserved.
func Normalize(data Set) (Set, error) { return points.Normalize(data) }

// ReadCSV loads a point set from CSV (optionally skipping a header row).
func ReadCSV(r io.Reader, hasHeader bool) (Set, []string, error) {
	return points.ReadCSV(r, hasHeader)
}

// WriteCSV writes a point set as CSV with an optional header.
func WriteCSV(w io.Writer, s Set, header []string) error {
	return points.WriteCSV(w, s, header)
}
