// Package stream maintains a skyline over the most recent W observations
// of a service feed — the continuous-query counterpart of the batch
// pipeline. The paper's introduction motivates exactly this: "the QoS of
// selected service may get degraded rapidly" as conditions change, so a
// selection system must track the skyline of *fresh* measurements rather
// than of an all-time catalogue.
//
// The window is count-based: each Add evicts the observation made W steps
// earlier. Skyline maintenance is incremental: an arriving point joins the
// skyline if undominated (evicting window skyline members it dominates);
// an expiring non-skyline point costs nothing; an expiring skyline point
// triggers one BNL pass over the retained window, because previously
// dominated observations may resurface.
package stream

import (
	"fmt"

	"repro/internal/points"
	"repro/internal/skyline"
)

// Windowed is a sliding-window skyline. Not safe for concurrent use; wrap
// with a mutex if shared.
type Windowed struct {
	capacity int
	buf      []points.Point // ring buffer, arrival order
	head     int            // index of the oldest element
	n        int            // live element count
	sky      points.Set     // current window skyline (references buf's points)
	// stats
	recomputes int
}

// NewWindowed creates a window of the given capacity (≥ 1).
func NewWindowed(capacity int) (*Windowed, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("stream: window capacity %d, need >= 1", capacity)
	}
	return &Windowed{
		capacity: capacity,
		buf:      make([]points.Point, capacity),
	}, nil
}

// Len returns the number of live observations in the window.
func (w *Windowed) Len() int { return w.n }

// Recomputes returns how many full skyline recomputations eviction has
// forced — the cost diagnostic for the incremental maintenance.
func (w *Windowed) Recomputes() int { return w.recomputes }

// Skyline returns a copy of the current window skyline.
func (w *Windowed) Skyline() points.Set {
	out := make(points.Set, len(w.sky))
	for i, p := range w.sky {
		out[i] = p.Clone()
	}
	return out
}

// Add appends an observation, evicting the oldest when the window is
// full. It returns whether the new observation is on the updated skyline.
func (w *Windowed) Add(p points.Point) (onSkyline bool, err error) {
	if err := p.Validate(); err != nil {
		return false, fmt.Errorf("stream: %w", err)
	}
	p = p.Clone()

	// Evict the oldest observation first so the new point never competes
	// with a measurement that is about to disappear.
	if w.n == w.capacity {
		oldest := w.buf[w.head]
		w.buf[w.head] = nil
		w.head = (w.head + 1) % w.capacity
		w.n--
		if w.removeFromSkyline(oldest) {
			// A frontier point left the window: resurface whoever it was
			// suppressing.
			w.recomputeSkyline()
		}
	}

	// Insert the new observation into the ring.
	idx := (w.head + w.n) % w.capacity
	w.buf[idx] = p
	w.n++

	// Incremental skyline update.
	dominated := false
	kept := w.sky[:0]
	for _, q := range w.sky {
		if dominated {
			kept = append(kept, q)
			continue
		}
		if points.DominatesOrEqual(q, p) && !q.Equal(p) {
			dominated = true
			kept = append(kept, q)
			continue
		}
		if !points.Dominates(p, q) {
			kept = append(kept, q)
		}
	}
	w.sky = kept
	if !dominated {
		w.sky = append(w.sky, p)
	}
	return !dominated, nil
}

// removeFromSkyline drops one coordinate-equal instance of p from the
// skyline, reporting whether it was present.
func (w *Windowed) removeFromSkyline(p points.Point) bool {
	for i, q := range w.sky {
		if q.Equal(p) {
			w.sky = append(w.sky[:i], w.sky[i+1:]...)
			return true
		}
	}
	return false
}

// recomputeSkyline rebuilds the skyline from the live window with BNL.
func (w *Windowed) recomputeSkyline() {
	w.recomputes++
	window := make(points.Set, 0, w.n)
	for i := 0; i < w.n; i++ {
		window = append(window, w.buf[(w.head+i)%w.capacity])
	}
	w.sky = skyline.BNL(window)
}

// Contents returns the live window in arrival order (copies).
func (w *Windowed) Contents() points.Set {
	out := make(points.Set, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.buf[(w.head+i)%w.capacity].Clone())
	}
	return out
}
