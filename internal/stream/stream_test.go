package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

func TestWindowedMatchesOracleStep(t *testing.T) {
	// After every Add, the windowed skyline must equal the batch skyline
	// of the window contents.
	rng := rand.New(rand.NewSource(71))
	w, err := NewWindowed(50)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 600; step++ {
		p := points.Point{float64(rng.Intn(20)), float64(rng.Intn(20))}
		if _, err := w.Add(p); err != nil {
			t.Fatal(err)
		}
		want := skyline.Naive(w.Contents())
		got := w.Skyline()
		if !sameMultiset(got, want) {
			t.Fatalf("step %d: window skyline %d points, oracle %d", step, len(got), len(want))
		}
	}
	if w.Len() != 50 {
		t.Errorf("window holds %d, want 50", w.Len())
	}
	if w.Recomputes() == 0 {
		t.Error("no eviction recomputes over 600 steps of a 50-window — suspicious")
	}
}

func sameMultiset(a, b points.Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestResurfacing(t *testing.T) {
	// A dominated point must reappear on the skyline once its dominator
	// slides out of the window.
	w, err := NewWindowed(2)
	if err != nil {
		t.Fatal(err)
	}
	if on, _ := w.Add(points.Point{1, 1}); !on {
		t.Error("first point must be on skyline")
	}
	if on, _ := w.Add(points.Point{5, 5}); on {
		t.Error("dominated point reported on skyline")
	}
	// Window is [ (1,1), (5,5) ]; adding anything evicts (1,1).
	if on, _ := w.Add(points.Point{9, 9}); on {
		t.Error("(9,9) dominated by the surviving (5,5)")
	}
	sky := w.Skyline()
	if len(sky) != 1 || !sky[0].Equal(points.Point{5, 5}) {
		t.Errorf("skyline after resurfacing = %v, want [(5,5)]", sky)
	}
}

func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowed(0); err == nil {
		t.Error("zero capacity accepted")
	}
	w, err := NewWindowed(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Add(points.Point{math.NaN()}); err == nil {
		t.Error("NaN observation accepted")
	}
}

func TestWindowedDuplicates(t *testing.T) {
	w, err := NewWindowed(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if on, err := w.Add(points.Point{1, 1}); err != nil || !on {
			t.Fatalf("duplicate add %d: on=%v err=%v", i, on, err)
		}
	}
	if got := w.Skyline(); len(got) != 3 {
		t.Errorf("skyline holds %d duplicate copies, want 3", len(got))
	}
}

func TestWindowedCapacityOne(t *testing.T) {
	w, err := NewWindowed(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		on, err := w.Add(points.Point{float64(10 - i), 1})
		if err != nil {
			t.Fatal(err)
		}
		if !on {
			t.Errorf("step %d: sole window point not on skyline", i)
		}
	}
	if w.Len() != 1 {
		t.Errorf("Len = %d", w.Len())
	}
}

func TestAddDoesNotAliasCaller(t *testing.T) {
	w, err := NewWindowed(4)
	if err != nil {
		t.Fatal(err)
	}
	p := points.Point{1, 2}
	if _, err := w.Add(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	if got := w.Skyline(); !got[0].Equal(points.Point{1, 2}) {
		t.Error("window aliases caller's point")
	}
}

func BenchmarkWindowedAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	w, err := NewWindowed(1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := w.Add(points.Point{rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
			b.Fatal(err)
		}
	}
}
