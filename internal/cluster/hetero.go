package cluster

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Server describes one machine of a heterogeneous cluster. Speed is a
// relative factor: a task of nominal duration T runs in T/Speed on this
// server. The homogeneous Simulate is the Speed=1 special case.
type Server struct {
	// Name labels the server in reports.
	Name string
	// Speed is the relative execution speed (> 0); 1.0 is the reference.
	Speed float64
}

// SimulateHeterogeneous schedules the workload onto an explicit server
// list with per-server speeds, modelling the mixed-generation clusters
// real deployments accrete. Scheduling is the LPT analogue for uniform
// machines: tasks in decreasing nominal duration, each placed on the
// server with the earliest projected finish time.
//
// The reduce side (shuffle + global merge) runs on the fastest server.
func SimulateHeterogeneous(w Workload, servers []Server, cm CostModel) (Breakdown, error) {
	if err := w.Validate(); err != nil {
		return Breakdown{}, err
	}
	if len(servers) == 0 {
		return Breakdown{}, fmt.Errorf("cluster: need >= 1 server")
	}
	fastest := servers[0].Speed
	for _, s := range servers {
		if s.Speed <= 0 {
			return Breakdown{}, fmt.Errorf("cluster: server %q has speed %g, need > 0", s.Name, s.Speed)
		}
		if s.Speed > fastest {
			fastest = s.Speed
		}
	}

	// Record-level map work splits proportionally to speed (perfectly
	// divisible), so it finishes simultaneously everywhere.
	totalSpeed := 0.0
	for _, s := range servers {
		totalSpeed += s.Speed
	}
	recordWork := time.Duration(int64(w.Records) * int64(w.Dim) * int64(cm.PerRecordDim))
	evenMap := time.Duration(float64(recordWork) / totalSpeed)

	// Local skyline tasks via LPT-for-uniform-machines.
	tasks := make([]time.Duration, len(w.PartitionSizes))
	for i := range tasks {
		cmp := bnlComparisons(w.PartitionSizes[i], w.LocalSkylineSizes[i])
		tasks[i] = time.Duration(cmp * int64(w.Dim) * int64(cm.PerComparisonDim))
	}
	makespan := lptUniform(tasks, servers)

	mapTime := cm.JobOverhead + evenMap + makespan

	lsTotal := w.LocalSkylineTotal()
	bytes := float64(lsTotal * w.Dim * cm.RecordBytesPerDim)
	shuffle := time.Duration(bytes/cm.BytesPerSecond*float64(time.Second)) +
		time.Duration(len(w.PartitionSizes))*cm.TransferLatency
	mergeCmp := bnlComparisons(lsTotal, w.GlobalSkylineSize)
	mergeConst := cm.MergePerComparisonDim
	if mergeConst == 0 {
		mergeConst = cm.PerComparisonDim
	}
	merge := time.Duration(float64(mergeCmp*int64(w.Dim)*int64(mergeConst)) / fastest)

	return Breakdown{
		MapTime:    mapTime,
		ReduceTime: cm.JobOverhead + shuffle + merge,
		Servers:    len(servers),
	}, nil
}

// lptUniform is LPT for uniform (speed-scaled) machines: tasks sorted
// descending, each assigned to the server with the earliest projected
// finish, returning the makespan.
func lptUniform(tasks []time.Duration, servers []Server) time.Duration {
	if len(tasks) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })

	h := make(finishHeap, len(servers))
	for i, s := range servers {
		h[i] = serverLoad{speed: s.Speed}
	}
	heap.Init(&h)
	for _, t := range sorted {
		// Pop the server that would finish this task earliest.
		best := 0
		bestFinish := h[0].load + time.Duration(float64(t)/h[0].speed)
		for i := 1; i < len(h); i++ {
			f := h[i].load + time.Duration(float64(t)/h[i].speed)
			if f < bestFinish {
				best, bestFinish = i, f
			}
		}
		h[best].load = bestFinish
		heap.Fix(&h, best)
	}
	max := time.Duration(0)
	for _, s := range h {
		if s.load > max {
			max = s.load
		}
	}
	return max
}

type serverLoad struct {
	load  time.Duration
	speed float64
}

type finishHeap []serverLoad

func (h finishHeap) Len() int            { return len(h) }
func (h finishHeap) Less(i, j int) bool  { return h[i].load < h[j].load }
func (h finishHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x interface{}) { *h = append(*h, x.(serverLoad)) }
func (h *finishHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Uniform returns n identical speed-1 servers, for composing with
// SimulateHeterogeneous.
func Uniform(n int) []Server {
	out := make([]Server, n)
	for i := range out {
		out[i] = Server{Name: fmt.Sprintf("server-%02d", i), Speed: 1}
	}
	return out
}
