package cluster

import (
	"math/rand"
	"testing"
	"time"
)

func demoWorkload(partitions int) Workload {
	sizes := make([]int, partitions)
	skies := make([]int, partitions)
	rng := rand.New(rand.NewSource(int64(partitions)))
	for i := range sizes {
		sizes[i] = 100000/partitions + rng.Intn(1000)
		skies[i] = sizes[i] / 8
	}
	return Workload{
		Records:           100000,
		Dim:               10,
		PartitionSizes:    sizes,
		LocalSkylineSizes: skies,
		GlobalSkylineSize: 800,
	}
}

func TestLPT(t *testing.T) {
	d := func(s int) time.Duration { return time.Duration(s) * time.Second }
	tests := []struct {
		name    string
		tasks   []time.Duration
		servers int
		want    time.Duration
	}{
		{"empty", nil, 4, 0},
		{"single task", []time.Duration{d(7)}, 4, d(7)},
		{"perfect split", []time.Duration{d(2), d(2), d(2), d(2)}, 2, d(4)},
		{"one dominant task floors makespan", []time.Duration{d(10), d(1), d(1), d(1)}, 4, d(10)},
		{"more servers than tasks", []time.Duration{d(5), d(3)}, 10, d(5)},
		{"one server sums", []time.Duration{d(1), d(2), d(3)}, 1, d(6)},
		{"classic LPT", []time.Duration{d(7), d(6), d(5), d(4), d(3)}, 3, d(9)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LPT(tt.tasks, tt.servers); got != tt.want {
				t.Errorf("LPT = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLPTNeverBelowBounds(t *testing.T) {
	// Makespan ≥ max task and ≥ total/servers, and LPT ≤ total (sanity).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		servers := 1 + rng.Intn(10)
		tasks := make([]time.Duration, n)
		var total, max time.Duration
		for i := range tasks {
			tasks[i] = time.Duration(rng.Intn(1000)+1) * time.Millisecond
			total += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		got := LPT(tasks, servers)
		if got < max {
			t.Fatalf("makespan %v below max task %v", got, max)
		}
		if got < total/time.Duration(servers) {
			t.Fatalf("makespan %v below total/servers %v", got, total/time.Duration(servers))
		}
		if got > total {
			t.Fatalf("makespan %v above serial total %v", got, total)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := demoWorkload(8)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.Records = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero records accepted")
	}
	bad = w
	bad.LocalSkylineSizes = bad.LocalSkylineSizes[:3]
	if err := bad.Validate(); err == nil {
		t.Error("mismatched lengths accepted")
	}
	bad = demoWorkload(4)
	bad.LocalSkylineSizes[0] = bad.PartitionSizes[0] + 1
	if err := bad.Validate(); err == nil {
		t.Error("skyline bigger than partition accepted")
	}
}

func TestSimulateScalesDownThenSaturates(t *testing.T) {
	// Adding servers must cut total time substantially overall; once
	// saturated, small wobble (< 2%) from over-partitioning overhead is
	// acceptable — the paper's curve also flattens past 24 servers.
	cm := DefaultCostModel()
	var first, prev time.Duration
	for i, servers := range []int{4, 8, 16, 32} {
		b, err := Simulate(demoWorkload(2*servers), servers, cm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = b.Total()
		} else if float64(b.Total()) > float64(prev)*1.02 {
			t.Errorf("total time grew >2%% from %v to %v at %d servers", prev, b.Total(), servers)
		}
		prev = b.Total()
	}
	if float64(prev) > float64(first)*0.75 {
		t.Errorf("scaling 4→32 servers only reduced %v to %v (< 25%% gain)", first, prev)
	}
}

func TestSimulateSaturates(t *testing.T) {
	// Speedup must be sub-linear: the 4→8 relative gain exceeds the 24→32
	// gain (fixed overhead + serial reduce dominate at scale) — the
	// paper's observation that improvement saturates past ~24 servers.
	cm := DefaultCostModel()
	total := func(servers int) time.Duration {
		b, err := Simulate(demoWorkload(2*servers), servers, cm)
		if err != nil {
			t.Fatal(err)
		}
		return b.Total()
	}
	gainEarly := float64(total(4)-total(8)) / float64(total(4))
	gainLate := float64(total(24)-total(32)) / float64(total(24))
	if gainLate >= gainEarly {
		t.Errorf("no saturation: early gain %.3f, late gain %.3f", gainEarly, gainLate)
	}
}

func TestSimulateMapDropContributesMost(t *testing.T) {
	// Paper: "the drop in Map time contributes the most to the
	// scalability" — reduce time is nearly flat.
	cm := DefaultCostModel()
	b4, err := Simulate(demoWorkload(8), 4, cm)
	if err != nil {
		t.Fatal(err)
	}
	b32, err := Simulate(demoWorkload(64), 32, cm)
	if err != nil {
		t.Fatal(err)
	}
	mapDrop := b4.MapTime - b32.MapTime
	reduceDrop := b4.ReduceTime - b32.ReduceTime
	if mapDrop <= reduceDrop {
		t.Errorf("map drop %v not dominant over reduce drop %v", mapDrop, reduceDrop)
	}
}

func TestSimulateErrors(t *testing.T) {
	cm := DefaultCostModel()
	if _, err := Simulate(demoWorkload(8), 0, cm); err == nil {
		t.Error("zero servers accepted")
	}
	if _, err := Simulate(Workload{}, 4, cm); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSweep(t *testing.T) {
	cm := DefaultCostModel()
	counts := []int{4, 8, 12}
	got, err := Sweep(counts, cm, func(s int) (Workload, error) {
		return demoWorkload(2 * s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d breakdowns", len(got))
	}
	for i, b := range got {
		if b.Servers != counts[i] {
			t.Errorf("breakdown %d servers = %d, want %d", i, b.Servers, counts[i])
		}
	}
}

func TestLocalSkylineTotal(t *testing.T) {
	w := Workload{
		Records: 10, Dim: 2,
		PartitionSizes:    []int{5, 5},
		LocalSkylineSizes: []int{2, 3},
	}
	if got := w.LocalSkylineTotal(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
}

func BenchmarkSimulate(b *testing.B) {
	cm := DefaultCostModel()
	w := demoWorkload(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(w, 32, cm); err != nil {
			b.Fatal(err)
		}
	}
}
