package cluster

import (
	"math/rand"
	"testing"
	"time"
)

func TestSimulateHeterogeneousMatchesHomogeneous(t *testing.T) {
	cm := DefaultCostModel()
	w := demoWorkload(16)
	homo, err := Simulate(w, 8, cm)
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := SimulateHeterogeneous(w, Uniform(8), cm)
	if err != nil {
		t.Fatal(err)
	}
	// Identical speed-1 servers must reproduce the homogeneous model to
	// within rounding.
	if diff := homo.Total() - hetero.Total(); diff > time.Millisecond || diff < -time.Millisecond {
		t.Errorf("uniform hetero %v differs from homogeneous %v", hetero.Total(), homo.Total())
	}
}

func TestSlowServerHurts(t *testing.T) {
	cm := DefaultCostModel()
	w := demoWorkload(16)
	base, err := SimulateHeterogeneous(w, Uniform(8), cm)
	if err != nil {
		t.Fatal(err)
	}
	mixed := Uniform(8)
	mixed[0].Speed = 0.25 // one straggler at quarter speed
	slow, err := SimulateHeterogeneous(w, mixed, cm)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Total() <= base.Total() {
		t.Errorf("straggler did not hurt: %v vs %v", slow.Total(), base.Total())
	}
}

func TestFastServersHelp(t *testing.T) {
	cm := DefaultCostModel()
	w := demoWorkload(16)
	base, err := SimulateHeterogeneous(w, Uniform(8), cm)
	if err != nil {
		t.Fatal(err)
	}
	fast := Uniform(8)
	for i := range fast {
		fast[i].Speed = 2
	}
	quick, err := SimulateHeterogeneous(w, fast, cm)
	if err != nil {
		t.Fatal(err)
	}
	if quick.MapTime >= base.MapTime {
		t.Errorf("doubling speeds did not cut map time: %v vs %v", quick.MapTime, base.MapTime)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	cm := DefaultCostModel()
	w := demoWorkload(8)
	if _, err := SimulateHeterogeneous(w, nil, cm); err == nil {
		t.Error("no servers accepted")
	}
	bad := Uniform(2)
	bad[1].Speed = 0
	if _, err := SimulateHeterogeneous(w, bad, cm); err == nil {
		t.Error("zero-speed server accepted")
	}
	if _, err := SimulateHeterogeneous(Workload{}, Uniform(2), cm); err == nil {
		t.Error("bad workload accepted")
	}
}

func TestLPTUniformBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		tasks := make([]time.Duration, n)
		var total time.Duration
		for i := range tasks {
			tasks[i] = time.Duration(rng.Intn(900)+100) * time.Millisecond
			total += tasks[i]
		}
		servers := Uniform(1 + rng.Intn(6))
		speedSum := 0.0
		for i := range servers {
			servers[i].Speed = 0.5 + rng.Float64()*2
			speedSum += servers[i].Speed
		}
		got := lptUniform(tasks, servers)
		// Lower bound: total work over aggregate speed (allow rounding).
		lb := time.Duration(float64(total)/speedSum) - time.Microsecond
		if got < lb {
			t.Fatalf("makespan %v below aggregate-speed bound %v", got, lb)
		}
		// Upper bound: everything on the fastest machine.
		fastest := servers[0].Speed
		for _, s := range servers {
			if s.Speed > fastest {
				fastest = s.Speed
			}
		}
		ub := time.Duration(float64(total) / servers[slowestIndex(servers)].Speed)
		if got > ub {
			t.Fatalf("makespan %v above single-slowest bound %v", got, ub)
		}
	}
}

func slowestIndex(servers []Server) int {
	idx := 0
	for i, s := range servers {
		if s.Speed < servers[idx].Speed {
			idx = i
		}
	}
	_ = idx
	return idx
}

func TestUniform(t *testing.T) {
	s := Uniform(3)
	if len(s) != 3 || s[0].Speed != 1 || s[2].Name == "" {
		t.Errorf("Uniform = %v", s)
	}
}
