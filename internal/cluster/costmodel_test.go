package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

// The simulator prices local skyline computation at bnlComparisons(n, s)
// ≈ n·s/2 + n dominance comparisons. Validate that estimate against the
// instrumented BNL on realistic inputs: within a small constant factor
// across distributions and sizes.
func TestBnlComparisonEstimateMatchesInstrumentedBNL(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(3000)
		d := 2 + rng.Intn(6)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			s[i] = p
		}
		var c skyline.Counter
		sky := skyline.Counting(&c)(s)
		actual := c.Comparisons()
		est := bnlComparisons(n, len(sky))
		ratio := float64(actual) / float64(est)
		if ratio < 0.05 || ratio > 4 {
			t.Errorf("trial %d n=%d d=%d sky=%d: actual %d vs estimate %d (ratio %.2f)",
				trial, n, d, len(sky), actual, est, ratio)
		}
	}
}

func TestCountingMatchesBNL(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := make(points.Set, 500)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	var c skyline.Counter
	got := skyline.Counting(&c)(s)
	want := skyline.BNL(s)
	if len(got) != len(want) {
		t.Fatalf("counting BNL %d points, plain BNL %d", len(got), len(want))
	}
	if c.Comparisons() == 0 {
		t.Error("no comparisons counted")
	}
}
