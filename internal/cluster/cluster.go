// Package cluster is a discrete-event simulator of a Hadoop-style cluster
// executing the two-job MapReduce skyline pipeline. It substitutes for the
// paper's physical 4–32 server cluster (Figure 6): real algorithmic
// quantities — partition sizes, local skyline sizes, global skyline size,
// all measured from an actual run of the driver — are scheduled onto N
// virtual servers under a calibrated cost model, yielding the Map/Reduce
// wall-clock breakdown.
//
// The model reproduces the mechanisms behind the paper's curve:
//
//   - the map phase parallelizes across servers but is floored by
//     per-partition load imbalance (LPT scheduling of unequal tasks),
//   - the merge reduce is a single task and does not parallelize,
//   - each MapReduce job carries a fixed framework overhead (job setup,
//     scheduling, HDFS round trips) that no amount of servers removes,
//
// which together give sub-linear speedup that saturates as servers grow.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// CostModel holds the calibrated constants of the simulated cluster.
// Defaults (DefaultCostModel) are tuned so that the paper's headline
// configuration (100,000 services, 10 attributes, MR-Angle) lands in the
// same range as Figure 6 (≈230 s on 4 servers falling to ≈130 s on 32).
type CostModel struct {
	// JobOverhead is the fixed per-job framework cost (job submission,
	// task scheduling, HDFS setup). Hadoop 0.20-era jobs paid tens of
	// seconds regardless of input size.
	JobOverhead time.Duration
	// PerRecordDim is the map-side cost to parse, transform and emit one
	// record, per attribute dimension (covers the hyperspherical transform
	// of MR-Angle's map).
	PerRecordDim time.Duration
	// PerComparisonDim is the cost of one dominance comparison per
	// dimension inside the map-side BNL kernels (combiner plus reducer
	// pass over raw, heterogeneous partition contents).
	PerComparisonDim time.Duration
	// MergePerComparisonDim is the per-comparison cost of the reduce-side
	// global merge. It is substantially cheaper than the map-side
	// constant: the merge scans a compact, pre-filtered candidate set
	// (local skylines only) with cache-resident sequential window passes,
	// whereas the map side pays two BNL layers over raw partition data.
	// Both constants are calibrated jointly against Figure 6.
	MergePerComparisonDim time.Duration
	// BytesPerSecond is the effective shuffle bandwidth into a reducer.
	BytesPerSecond float64
	// TransferLatency is the fixed cost per map→reduce transfer stream.
	TransferLatency time.Duration
	// RecordBytesPerDim is the serialized size of one record per
	// dimension (8-byte float plus framing).
	RecordBytesPerDim int
}

// DefaultCostModel returns constants calibrated against Figure 6.
func DefaultCostModel() CostModel {
	return CostModel{
		JobOverhead:           18 * time.Second,
		PerRecordDim:          12 * time.Microsecond,
		PerComparisonDim:      400 * time.Nanosecond,
		MergePerComparisonDim: 25 * time.Nanosecond,
		BytesPerSecond:        24e6,
		TransferLatency:       25 * time.Millisecond,
		RecordBytesPerDim:     10,
	}
}

// Workload captures the algorithmic quantities of one dataset+method
// combination, measured from a real run (driver.Stats) or synthesized.
type Workload struct {
	// Records is the dataset cardinality N.
	Records int
	// Dim is the attribute dimensionality d.
	Dim int
	// PartitionSizes is the number of points in each partition.
	PartitionSizes []int
	// LocalSkylineSizes is the local skyline cardinality per partition
	// (parallel to PartitionSizes).
	LocalSkylineSizes []int
	// GlobalSkylineSize is the cardinality of the final skyline.
	GlobalSkylineSize int
}

// Validate checks structural consistency.
func (w Workload) Validate() error {
	if w.Records <= 0 || w.Dim <= 0 {
		return fmt.Errorf("cluster: workload needs positive records and dim")
	}
	if len(w.PartitionSizes) != len(w.LocalSkylineSizes) {
		return fmt.Errorf("cluster: %d partition sizes vs %d local skyline sizes",
			len(w.PartitionSizes), len(w.LocalSkylineSizes))
	}
	for i := range w.PartitionSizes {
		if w.LocalSkylineSizes[i] > w.PartitionSizes[i] {
			return fmt.Errorf("cluster: partition %d skyline %d exceeds size %d",
				i, w.LocalSkylineSizes[i], w.PartitionSizes[i])
		}
	}
	return nil
}

// LocalSkylineTotal is the number of records entering the merge job.
func (w Workload) LocalSkylineTotal() int {
	n := 0
	for _, s := range w.LocalSkylineSizes {
		n += s
	}
	return n
}

// Breakdown is the simulated wall-clock split of one run, mirroring the
// stacked bars of Figure 6.
type Breakdown struct {
	MapTime    time.Duration // partitioning job: map, transform, local skylines
	ReduceTime time.Duration // merging job: shuffle into one reducer + global BNL
	Servers    int
}

// Total returns MapTime + ReduceTime.
func (b Breakdown) Total() time.Duration { return b.MapTime + b.ReduceTime }

// bnlComparisons estimates dominance comparisons for a BNL pass over n
// points whose skyline has size s: each point scans a window that grows
// toward s, so roughly n·s/2 comparisons plus the n window insert checks.
func bnlComparisons(n, s int) int64 {
	return int64(n)*int64(s)/2 + int64(n)
}

// Simulate schedules the workload onto `servers` virtual servers and
// returns the simulated Map/Reduce breakdown.
func Simulate(w Workload, servers int, cm CostModel) (Breakdown, error) {
	if err := w.Validate(); err != nil {
		return Breakdown{}, err
	}
	if servers < 1 {
		return Breakdown{}, fmt.Errorf("cluster: need >= 1 server, got %d", servers)
	}

	// --- Partitioning job (the figure's "Map time") -------------------
	// Record-level map work spreads evenly: reading, transforming and
	// emitting every input record.
	recordWork := time.Duration(int64(w.Records) * int64(w.Dim) * int64(cm.PerRecordDim))
	evenMap := recordWork / time.Duration(servers)

	// Local skyline computation: one BNL task per partition, LPT-packed
	// onto servers. This is where load imbalance bites.
	tasks := make([]time.Duration, len(w.PartitionSizes))
	for i := range tasks {
		cmp := bnlComparisons(w.PartitionSizes[i], w.LocalSkylineSizes[i])
		tasks[i] = time.Duration(cmp * int64(w.Dim) * int64(cm.PerComparisonDim))
	}
	makespan := LPT(tasks, servers)

	mapTime := cm.JobOverhead + evenMap + makespan

	// --- Merging job (the figure's "Reduce time") ----------------------
	// All local skyline records stream into a single reducer.
	lsTotal := w.LocalSkylineTotal()
	bytes := float64(lsTotal * w.Dim * cm.RecordBytesPerDim)
	shuffle := time.Duration(bytes/cm.BytesPerSecond*float64(time.Second)) +
		time.Duration(len(w.PartitionSizes))*cm.TransferLatency
	mergeCmp := bnlComparisons(lsTotal, w.GlobalSkylineSize)
	mergeConst := cm.MergePerComparisonDim
	if mergeConst == 0 {
		mergeConst = cm.PerComparisonDim
	}
	merge := time.Duration(mergeCmp * int64(w.Dim) * int64(mergeConst))

	reduceTime := cm.JobOverhead + shuffle + merge

	return Breakdown{MapTime: mapTime, ReduceTime: reduceTime, Servers: servers}, nil
}

// LPT packs task durations onto `servers` machines using the classic
// Longest-Processing-Time-first greedy (sort descending, always assign to
// the least-loaded server) and returns the makespan.
func LPT(tasks []time.Duration, servers int) time.Duration {
	if len(tasks) == 0 || servers < 1 {
		return 0
	}
	sorted := make([]time.Duration, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if servers > len(sorted) {
		return sorted[0]
	}
	h := make(loadHeap, servers)
	heap.Init(&h)
	for _, t := range sorted {
		h[0] += t
		heap.Fix(&h, 0)
	}
	max := time.Duration(0)
	for _, l := range h {
		if l > max {
			max = l
		}
	}
	return max
}

// loadHeap is a min-heap of server loads.
type loadHeap []time.Duration

func (h loadHeap) Len() int            { return len(h) }
func (h loadHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Sweep simulates the workload-producing function over a range of server
// counts. The workloadFor callback regenerates the workload per server
// count, because the paper couples partition count to cluster size
// (partitions = 2 × servers).
func Sweep(serverCounts []int, cm CostModel, workloadFor func(servers int) (Workload, error)) ([]Breakdown, error) {
	out := make([]Breakdown, 0, len(serverCounts))
	for _, s := range serverCounts {
		w, err := workloadFor(s)
		if err != nil {
			return nil, err
		}
		b, err := Simulate(w, s, cm)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
