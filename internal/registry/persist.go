package registry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/driver"
)

// Save writes the full service catalogue as JSON lines (one Service per
// line, sorted by name). The catalogue is the registry's source of truth;
// the skyline index is rebuilt on load.
func (r *Registry) Save(w io.Writer) error {
	r.mu.RLock()
	services := make([]Service, 0, len(r.services))
	for _, s := range r.services {
		services = append(services, s)
	}
	r.mu.RUnlock()
	sort.Slice(services, func(i, j int) bool { return services[i].Name < services[j].Name })
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range services {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("registry: save: %w", err)
		}
	}
	return bw.Flush()
}

// Load restores a registry from a catalogue written by Save, rebuilding
// the incremental skyline index with the given options.
func Load(ctx context.Context, rd io.Reader, opts driver.Options) (*Registry, error) {
	dec := json.NewDecoder(rd)
	var services []Service
	for {
		var s Service
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("registry: load: %w", err)
		}
		services = append(services, s)
	}
	if len(services) == 0 {
		return nil, fmt.Errorf("registry: load: empty catalogue")
	}
	return New(ctx, services, opts)
}
