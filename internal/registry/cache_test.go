package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
)

func getBody(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// TestCacheHitMiss: the first skyline read fills the cache (merge path),
// repeats serve byte-identical bodies from it (cached path), and the
// counters record exactly that.
func TestCacheHitMiss(t *testing.T) {
	r := newRegistry(t)
	defer r.Close()
	h := r.Handler()

	hits0, misses0 := r.cacheHits.Value(), r.cacheMisses.Value()
	cached0, merge0 := r.pathCached.Value(), r.pathMerge.Value()

	_, first := getBody(t, h, "/skyline")
	for i := 0; i < 3; i++ {
		_, again := getBody(t, h, "/skyline")
		if again != first {
			t.Fatal("cached body differs from computed body")
		}
	}
	if got := r.cacheMisses.Value() - misses0; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := r.cacheHits.Value() - hits0; got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
	if got := r.pathMerge.Value() - merge0; got != 1 {
		t.Errorf("merge path count = %d, want 1", got)
	}
	if got := r.pathCached.Value() - cached0; got != 3 {
		t.Errorf("cached path count = %d, want 3", got)
	}

	// The cached body is real JSON and matches the programmatic API.
	var services []Service
	if err := json.Unmarshal([]byte(first), &services); err != nil {
		t.Fatal(err)
	}
	want := r.Skyline()
	if len(services) != len(want) {
		t.Errorf("body has %d services, API returns %d", len(services), len(want))
	}
}

// TestCacheInvalidationMinimality: a publish that enters the skyline
// evicts the cached result; a dominated publish — which cannot change
// any answer — must NOT evict it. This is the dominance-aware rule.
func TestCacheInvalidationMinimality(t *testing.T) {
	r := newRegistry(t)
	defer r.Close()
	h := r.Handler()

	_, before := getBody(t, h, "/skyline")

	// Dominated publish: far outside the seed anti-chain. No eviction —
	// the next read is a hit and the body is unchanged.
	if in, err := r.Publish(Service{Name: "dominated", QoS: []float64{1e6, 1e6}}); err != nil || in {
		t.Fatalf("dominated publish: in=%v err=%v", in, err)
	}
	hits0 := r.cacheHits.Value()
	_, after := getBody(t, h, "/skyline")
	if after != before {
		t.Error("dominated publish changed the served skyline")
	}
	if r.cacheHits.Value() != hits0+1 {
		t.Error("dominated publish evicted the cache (rule must be minimal)")
	}

	// Skyline-entering publish: must evict, and the fresh body includes it.
	if in, err := r.Publish(Service{Name: "hero", QoS: []float64{-1, -1}}); err != nil || !in {
		t.Fatalf("hero publish: in=%v err=%v", in, err)
	}
	misses0 := r.cacheMisses.Value()
	_, fresh := getBody(t, h, "/skyline")
	if r.cacheMisses.Value() != misses0+1 {
		t.Error("entering publish did not evict the cached skyline")
	}
	if !strings.Contains(fresh, `"hero"`) {
		t.Error("fresh body does not include the newly entered service")
	}
}

// TestConstrainedSkyline: ?max= serves the skyline under a QoS ceiling,
// caches it under its own signature with its own invalidation scope, and
// unsound or malformed bounds are rejected.
func TestConstrainedSkyline(t *testing.T) {
	r, err := New(context.Background(), []Service{
		{Name: "a", QoS: []float64{1, 9}},
		{Name: "b", QoS: []float64{5, 5}},
		{Name: "c", QoS: []float64{9, 1}},
		{Name: "d", QoS: []float64{6, 6}}, // dominated by b
	}, driver.Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h := r.Handler()

	// Ceiling that excludes a and c: only b competes (d is dominated).
	code, body := getBody(t, h, "/skyline?max=6,6")
	if code != http.StatusOK {
		t.Fatalf("constrained read: status %d: %s", code, body)
	}
	var got []Service
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("constrained skyline = %+v, want [b]", got)
	}

	// Same answer from the programmatic API (now a cache hit).
	hits0 := r.cacheHits.Value()
	services, err := r.ConstrainedSkylineContext(context.Background(), []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	_ = services
	if code, body2 := getBody(t, h, "/skyline?max=6,6"); code != http.StatusOK || body2 != body {
		t.Error("constrained cache hit served a different body")
	}
	if r.cacheHits.Value() <= hits0 {
		t.Error("repeated constrained read was not a cache hit")
	}

	// A publish entering OUTSIDE the ceiling must not evict this entry...
	if in, err := r.Publish(Service{Name: "edge", QoS: []float64{0.5, 20}}); err != nil || !in {
		t.Fatalf("edge publish: in=%v err=%v", in, err)
	}
	hits1 := r.cacheHits.Value()
	getBody(t, h, "/skyline?max=6,6")
	if r.cacheHits.Value() != hits1+1 {
		t.Error("out-of-ceiling publish evicted the constrained entry")
	}
	// ...while one entering INSIDE it must.
	if in, err := r.Publish(Service{Name: "inside", QoS: []float64{2, 2}}); err != nil || !in {
		t.Fatalf("inside publish: in=%v err=%v", in, err)
	}
	_, fresh := getBody(t, h, "/skyline?max=6,6")
	var freshServices []Service
	if err := json.Unmarshal([]byte(fresh), &freshServices); err != nil {
		t.Fatal(err)
	}
	names := fmt.Sprint(freshServices)
	if !strings.Contains(names, "inside") {
		t.Errorf("constrained result after in-ceiling publish = %v, want inside", names)
	}
	for _, s := range freshServices {
		if s.Name == "b" {
			t.Error("b survived although inside (2,2) dominates it")
		}
	}

	// Rejections: min bounds (unsound), wrong arity, garbage, explain+max.
	for _, path := range []string{
		"/skyline?min=1,1",
		"/skyline?max=1,2,3",
		"/skyline?max=abc,1",
		"/skyline?explain=1&max=1,2",
	} {
		if code, _ := getBody(t, h, path); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
	}
	if _, err := r.ConstrainedSkylineContext(context.Background(), []float64{1}); err == nil {
		t.Error("wrong-arity constraint accepted")
	}
}

// TestConstrainedMatchesBatchOracle: the ceiling-filtered incremental
// read equals a from-scratch constrained skyline over all services,
// across a stream of publishes.
func TestConstrainedMatchesBatchOracle(t *testing.T) {
	seeds := seedServices(30)
	r, err := New(context.Background(), seeds, driver.Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	all := append([]Service(nil), seeds...)
	max := []float64{40, 40}
	oracle := func() map[string]int {
		// Constrained skyline oracle: filter to the ceiling, then BNL.
		var box []Service
		for _, s := range all {
			if withinMax(points.Point(s.QoS), points.Point(max)) {
				box = append(box, s)
			}
		}
		out := map[string]int{}
		for _, s := range box {
			dominated := false
			for _, q := range box {
				if points.DominatesOrEqual(points.Point(q.QoS), points.Point(s.QoS)) &&
					!points.Point(q.QoS).Equal(points.Point(s.QoS)) {
					dominated = true
					break
				}
			}
			if !dominated {
				out[s.Name]++
			}
		}
		return out
	}

	check := func(step int) {
		got, err := r.ConstrainedSkylineContext(context.Background(), max)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle()
		if len(got) != len(want) {
			t.Fatalf("step %d: constrained skyline %d services, oracle %d", step, len(got), len(want))
		}
		for _, s := range got {
			if want[s.Name] == 0 {
				t.Fatalf("step %d: %s not in oracle", step, s.Name)
			}
		}
	}

	check(-1)
	for i := 0; i < 40; i++ {
		s := Service{Name: fmt.Sprintf("new-%03d", i), QoS: []float64{float64((i*7)%60 + 1), float64((i*13)%60 + 1)}}
		if _, err := r.Publish(s); err != nil {
			t.Fatal(err)
		}
		all = append(all, s)
		check(i)
	}
}
