package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestMetricsEndpoint: /metrics serves a parseable exposition carrying
// request counters, sampled registry gauges, and process metrics.
func TestMetricsEndpoint(t *testing.T) {
	r := newRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Generate one request per instrumented endpoint first.
	if _, err := http.Get(srv.URL + "/skyline"); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(srv.URL + "/stats"); err != nil {
		t.Fatal(err)
	}

	samples := scrape(t, srv.URL)
	if samples[`registry_requests_total{endpoint="skyline",status="2xx"}`] < 1 {
		t.Error("no skyline request counted")
	}
	if samples[`registry_request_seconds_count{endpoint="stats"}`] < 1 {
		t.Error("no stats latency observed")
	}
	// Error paths carry their real status class and still observe latency.
	if _, err := http.Get(srv.URL + "/services"); err != nil { // wrong method → 405
		t.Fatal(err)
	}
	samples = scrape(t, srv.URL)
	if samples[`registry_requests_total{endpoint="services",status="4xx"}`] != 1 {
		t.Error("405 not counted under its status class")
	}
	if samples[`registry_request_seconds_count{endpoint="services"}`] < 1 {
		t.Error("error-path latency not observed")
	}
	if got := samples["registry_services"]; got != 40 {
		t.Errorf("registry_services = %v, want 40 (seed size)", got)
	}
	// The index retains only local-skyline points, so its size sits
	// between the skyline and the full service count.
	if samples["registry_skyline_size"] <= 0 ||
		samples["registry_index_points"] < samples["registry_skyline_size"] ||
		samples["registry_index_points"] > 40 {
		t.Errorf("sampled gauges wrong: skyline=%v index=%v",
			samples["registry_skyline_size"], samples["registry_index_points"])
	}
	if samples["process_goroutines"] <= 0 {
		t.Error("no process metrics in exposition")
	}
}

// TestConcurrentScrape: concurrent publishes, stat reads and scrapes
// must be race-free (run under -race), every scrape must parse, and the
// request counters must be monotonic across scrapes.
func TestConcurrentScrape(t *testing.T) {
	r := newRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	const writers, rounds = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := Service{
					Name: fmt.Sprintf("load-%d-%d", w, i),
					QoS:  []float64{float64(w + 1), float64(i + 1)},
				}
				body, _ := json.Marshal(s)
				resp, err := http.Post(srv.URL+"/services", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Get(srv.URL + "/stats")
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	var prev map[string]float64
	for i := 0; i < rounds; i++ {
		samples := scrape(t, srv.URL)
		for name, v := range prev {
			if counterLike(name) && samples[name] < v {
				t.Fatalf("counter %s went backwards: %v -> %v", name, v, samples[name])
			}
		}
		prev = samples
	}
	wg.Wait()

	final := scrape(t, srv.URL)
	if got := final[`registry_requests_total{endpoint="services",status="2xx"}`]; got != writers*rounds {
		t.Errorf("services requests counted = %v, want %d", got, writers*rounds)
	}
	if got := final["registry_services"]; got != 40+writers*rounds {
		t.Errorf("registry_services = %v, want %d", got, 40+writers*rounds)
	}
}

// counterLike reports whether a series name is cumulative by Prometheus
// convention (counters and histogram components, all monotonic).
func counterLike(name string) bool {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suffix := range []string{"_total", "_count", "_sum", "_bucket"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, body)
	}
	return samples
}
