// Package registry is the UDDI-like service registry from the paper's
// motivation (§I–II): providers publish services with QoS attributes,
// clients query the current skyline in real time. Internally it wraps the
// incremental skyline index (driver.Index), so publishing a service
// touches only its partition's local skyline — the paper's dynamic
// scenario — and exposes the whole thing over HTTP with JSON bodies.
package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// Service is one published web service.
type Service struct {
	// Name identifies the service (unique within the registry).
	Name string `json:"name"`
	// QoS is the attribute vector, oriented so lower is better.
	QoS []float64 `json:"qos"`
}

// Registry holds published services and maintains their skyline
// incrementally. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	dim      int
	ix       *driver.Index
	services map[string]Service
	tele     *telemetry.Registry
}

// New builds a registry seeded with initial services (at least one is
// required to fit the partitioner; the paper's UDDI bootstrap).
func New(ctx context.Context, initial []Service, opts driver.Options) (*Registry, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("registry: need at least one seed service")
	}
	data := make(points.Set, len(initial))
	services := make(map[string]Service, len(initial))
	dim := len(initial[0].QoS)
	for i, s := range initial {
		if s.Name == "" {
			return nil, fmt.Errorf("registry: seed service %d has no name", i)
		}
		if len(s.QoS) != dim {
			return nil, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), dim)
		}
		if _, dup := services[s.Name]; dup {
			return nil, fmt.Errorf("registry: duplicate service name %q", s.Name)
		}
		data[i] = points.Point(s.QoS)
		services[s.Name] = s
	}
	ix, err := driver.BuildIndex(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	r := &Registry{dim: dim, ix: ix, services: services, tele: telemetry.NewRegistry()}
	telemetry.RegisterProcessMetrics(r.tele)
	// The registry's shape is sampled at scrape time rather than tracked
	// on every publish, so gauges never drift from the index.
	r.tele.OnScrape(func(t *telemetry.Registry) {
		r.mu.RLock()
		defer r.mu.RUnlock()
		t.Gauge("registry_services").Set(float64(len(r.services)))
		t.Gauge("registry_skyline_size").Set(float64(len(r.ix.Global())))
		t.Gauge("registry_index_points").Set(float64(r.ix.Size()))
	})
	return r, nil
}

// Metrics returns the registry's telemetry surface, for embedding into a
// larger exposition or asserting on in tests.
func (r *Registry) Metrics() *telemetry.Registry { return r.tele }

// Dim returns the registry's attribute dimensionality.
func (r *Registry) Dim() int { return r.dim }

// Len returns the number of published services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// Publish registers a new service and updates the skyline incrementally.
// It reports whether the service entered the skyline.
func (r *Registry) Publish(s Service) (inSkyline bool, err error) {
	if s.Name == "" {
		return false, fmt.Errorf("registry: service needs a name")
	}
	if len(s.QoS) != r.dim {
		return false, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), r.dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[s.Name]; dup {
		return false, fmt.Errorf("registry: service %q already published", s.Name)
	}
	_, in, err := r.ix.Add(points.Point(s.QoS))
	if err != nil {
		return false, err
	}
	r.services[s.Name] = s
	return in, nil
}

// Skyline returns the names and QoS of the current skyline services,
// sorted by name. Coordinate-equal services all appear.
func (r *Registry) Skyline() []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sky := r.ix.Global()
	keys := make(map[string]struct{}, len(sky))
	for _, p := range sky {
		keys[points.Key(p)] = struct{}{}
	}
	var out []Service
	for _, s := range r.services {
		if _, ok := keys[points.Key(points.Point(s.QoS))]; ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Services    int `json:"services"`
	SkylineSize int `json:"skyline_size"`
	IndexPoints int `json:"index_points"`
	Dim         int `json:"dim"`
}

// Handler returns the HTTP API:
//
//	POST /services          {"name": ..., "qos": [...]} → {"in_skyline": bool}
//	GET  /skyline           → [{"name": ..., "qos": [...]}, ...]
//	GET  /stats             → {"services": n, "skyline_size": k, ...}
//	GET  /metrics           → Prometheus text exposition
//	GET  /dashboard         → HTML status page for operators
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.tele.Handler())
	mux.HandleFunc("/dashboard", r.instrument("dashboard", r.serveDashboard))
	mux.HandleFunc("/services", r.instrument("services", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var s Service
		if err := json.NewDecoder(req.Body).Decode(&s); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		in, err := r.Publish(s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]bool{"in_skyline": in})
	}))
	mux.HandleFunc("/skyline", r.instrument("skyline", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, r.Skyline())
	}))
	mux.HandleFunc("/stats", r.instrument("stats", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r.mu.RLock()
		resp := statsResponse{
			Services:    len(r.services),
			SkylineSize: len(r.ix.Global()),
			IndexPoints: r.ix.Size(),
			Dim:         r.dim,
		}
		r.mu.RUnlock()
		writeJSON(w, resp)
	}))
	return mux
}

// instrument wraps an endpoint with a request counter and a latency
// histogram, both labelled by endpoint.
func (r *Registry) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := r.tele.Counter("registry_requests_total", telemetry.L("endpoint", endpoint))
	seconds := r.tele.Histogram("registry_request_seconds", telemetry.DurationBuckets(),
		telemetry.L("endpoint", endpoint))
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		requests.Inc()
		h(w, req)
		seconds.Observe(time.Since(start).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will surface it.
		_ = err
	}
}

// Scheme re-exports the partitioning schemes for cmd/skyserve flags.
type Scheme = partition.Scheme
