// Package registry is the UDDI-like service registry from the paper's
// motivation (§I–II): providers publish services with QoS attributes,
// clients query the current skyline in real time. Internally it wraps the
// incremental skyline index (driver.Index), so publishing a service
// touches only its partition's local skyline — the paper's dynamic
// scenario — and exposes the whole thing over HTTP with JSON bodies.
//
// Every tracked request (publishes and skyline reads) carries a
// telemetry.QueryStats record through the index, so the registry can
// answer "which query was slow and why" from /debug/queries and
// /debug/slowlog, serve per-query EXPLAIN plans from /skyline?explain=1,
// and evaluate latency/availability SLOs at /debug/slo.
package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// Service is one published web service.
type Service struct {
	// Name identifies the service (unique within the registry).
	Name string `json:"name"`
	// QoS is the attribute vector, oriented so lower is better.
	QoS []float64 `json:"qos"`
}

// Registry holds published services and maintains their skyline
// incrementally. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	dim      int
	ix       *driver.Index
	services map[string]Service
	tele     *telemetry.Registry
	queries  *telemetry.QueryLog
	slo      *telemetry.SLOTracker
	// statsOff disables per-query attribution (the ring, the slow log and
	// the context plumbing) while leaving the endpoint counters and
	// latency histograms untouched — the control arm of the serve
	// benchmark's overhead split.
	statsOff atomic.Bool
	// reqTotal / req5xx feed the availability SLO source: requests whose
	// status class is 5xx count against the error budget.
	reqTotal atomic.Int64
	req5xx   atomic.Int64
}

// Defaults for the query log; ConfigureQueryLog overrides them.
const (
	defaultQueryLogCapacity = 256
	defaultSlowLogK         = 16
	defaultSlowThreshold    = 100 * time.Millisecond
)

// New builds a registry seeded with initial services (at least one is
// required to fit the partitioner; the paper's UDDI bootstrap). When
// opts.Metrics is nil the registry's own telemetry registry is used, so
// boot-time kernel counters (skyline_dominance_tests_total and friends)
// land on the same scrape surface the per-query bridge feeds later.
func New(ctx context.Context, initial []Service, opts driver.Options) (*Registry, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("registry: need at least one seed service")
	}
	data := make(points.Set, len(initial))
	services := make(map[string]Service, len(initial))
	dim := len(initial[0].QoS)
	for i, s := range initial {
		if s.Name == "" {
			return nil, fmt.Errorf("registry: seed service %d has no name", i)
		}
		if len(s.QoS) != dim {
			return nil, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), dim)
		}
		if _, dup := services[s.Name]; dup {
			return nil, fmt.Errorf("registry: duplicate service name %q", s.Name)
		}
		data[i] = points.Point(s.QoS)
		services[s.Name] = s
	}
	tele := telemetry.NewRegistry()
	if opts.Metrics == nil {
		opts.Metrics = tele
	}
	ix, err := driver.BuildIndex(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	r := &Registry{
		dim:      dim,
		ix:       ix,
		services: services,
		tele:     tele,
		queries:  telemetry.NewQueryLog(defaultQueryLogCapacity, defaultSlowLogK, defaultSlowThreshold),
	}
	telemetry.RegisterProcessMetrics(r.tele)
	// The registry's shape is sampled at scrape time rather than tracked
	// on every publish, so gauges never drift from the index.
	r.tele.OnScrape(func(t *telemetry.Registry) {
		r.mu.RLock()
		defer r.mu.RUnlock()
		t.Gauge("registry_services").Set(float64(len(r.services)))
		t.Gauge("registry_skyline_size").Set(float64(len(r.ix.Global())))
		t.Gauge("registry_index_points").Set(float64(r.ix.Size()))
	})
	return r, nil
}

// Metrics returns the registry's telemetry surface, for embedding into a
// larger exposition or asserting on in tests.
func (r *Registry) Metrics() *telemetry.Registry { return r.tele }

// QueryLog returns the per-query record log behind /debug/queries.
func (r *Registry) QueryLog() *telemetry.QueryLog { return r.queries }

// ConfigureQueryLog replaces the query log's ring capacity, slow-log K
// and slow threshold. Records already filed are dropped; call before
// serving traffic.
func (r *Registry) ConfigureQueryLog(capacity, slowK int, threshold time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = telemetry.NewQueryLog(capacity, slowK, threshold)
}

// EnableQueryStats toggles per-query attribution. Disabled, requests
// still hit the endpoint counters and latency histograms but no
// QueryStats record is created or filed — the measured-overhead control.
func (r *Registry) EnableQueryStats(on bool) { r.statsOff.Store(!on) }

// SLOOptions configures the registry's service-level objectives.
type SLOOptions struct {
	// P99Threshold is the skyline read latency the 99th percentile must
	// stay under. Zero disables the latency objective.
	P99Threshold time.Duration
	// Availability is the target fraction of requests answered without a
	// 5xx, e.g. 0.999. Zero disables the availability objective.
	Availability float64
	// Events, when non-nil, receives budget-burn warnings.
	Events *telemetry.EventLog
	// Windows overrides the burn-rate windows (default 1m/5m/30m).
	Windows []time.Duration
}

// ConfigureSLO installs an SLO tracker evaluating the configured
// objectives against the registry's own metrics: the skyline endpoint's
// latency histogram and the 5xx share of all instrumented requests. It
// returns the tracker so the caller can drive its evaluation loop
// (tracker.Run) and is also mounted at /debug/slo by Handler.
func (r *Registry) ConfigureSLO(opts SLOOptions) *telemetry.SLOTracker {
	tr := telemetry.NewSLOTracker(telemetry.SLOConfig{
		Windows: opts.Windows,
		Events:  opts.Events,
	})
	if opts.P99Threshold > 0 {
		h := r.tele.Histogram("registry_request_seconds", telemetry.DurationBuckets(),
			telemetry.L("endpoint", "skyline"))
		tr.AddLatency("skyline-p99", 0.99, opts.P99Threshold, telemetry.LatencySLOSource(h, opts.P99Threshold))
	}
	if opts.Availability > 0 {
		tr.AddAvailability("availability", opts.Availability, telemetry.CounterSLOSource(
			func() int64 { return r.reqTotal.Load() - r.req5xx.Load() },
			r.req5xx.Load,
		))
	}
	r.mu.Lock()
	r.slo = tr
	r.mu.Unlock()
	return tr
}

// SLO returns the configured SLO tracker, or nil when ConfigureSLO has
// not been called (in which case /debug/slo serves 404).
func (r *Registry) SLO() *telemetry.SLOTracker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slo
}

// Dim returns the registry's attribute dimensionality.
func (r *Registry) Dim() int { return r.dim }

// Len returns the number of published services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// Publish registers a new service and updates the skyline incrementally.
// It reports whether the service entered the skyline.
func (r *Registry) Publish(s Service) (inSkyline bool, err error) {
	return r.PublishContext(context.Background(), s)
}

// PublishContext is Publish with per-query attribution: a query record in
// ctx (telemetry.WithQueryStats) picks up the update path's candidate
// and dominance-test costs from the index.
func (r *Registry) PublishContext(ctx context.Context, s Service) (inSkyline bool, err error) {
	if s.Name == "" {
		return false, fmt.Errorf("registry: service needs a name")
	}
	if len(s.QoS) != r.dim {
		return false, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), r.dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.services[s.Name]; dup {
		return false, fmt.Errorf("registry: service %q already published", s.Name)
	}
	_, in, err := r.ix.AddContext(ctx, points.Point(s.QoS))
	if err != nil {
		return false, err
	}
	r.services[s.Name] = s
	if in {
		telemetry.QueryStatsFrom(ctx).SetResult(1)
	}
	return in, nil
}

// Skyline returns the names and QoS of the current skyline services,
// sorted by name. Coordinate-equal services all appear.
func (r *Registry) Skyline() []Service {
	return r.SkylineContext(context.Background())
}

// SkylineContext is Skyline with per-query attribution: the cached read
// path and result size are noted on a query record in ctx.
func (r *Registry) SkylineContext(ctx context.Context) []Service {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sky := r.ix.GlobalContext(ctx)
	out := r.matchServices(sky)
	telemetry.QueryStatsFrom(ctx).SetResult(len(out))
	return out
}

// ExplainContext answers a skyline query the expensive, honest way: it
// bypasses the cached global skyline and re-merges the local skylines
// with the instrumented merge, returning the services plus the
// per-partition plan (candidates, dominance tests, survivors, stage
// timings). The service list is identical to SkylineContext's.
func (r *Registry) ExplainContext(ctx context.Context) ([]Service, *driver.Explain) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	sky, ex := r.ix.Explain(ctx)
	out := r.matchServices(sky)
	telemetry.QueryStatsFrom(ctx).SetResult(len(out))
	return out, ex
}

// matchServices maps skyline points back to the published services that
// carry those coordinates. Callers hold r.mu.
func (r *Registry) matchServices(sky points.Set) []Service {
	keys := make(map[string]struct{}, len(sky))
	for _, p := range sky {
		keys[points.Key(p)] = struct{}{}
	}
	var out []Service
	for _, s := range r.services {
		if _, ok := keys[points.Key(points.Point(s.QoS))]; ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Services    int `json:"services"`
	SkylineSize int `json:"skyline_size"`
	IndexPoints int `json:"index_points"`
	Dim         int `json:"dim"`
}

// ExplainResponse is the /skyline?explain=1 JSON shape.
type ExplainResponse struct {
	Services []Service       `json:"services"`
	Plan     *driver.Explain `json:"plan"`
}

// Handler returns the HTTP API:
//
//	POST /services          {"name": ..., "qos": [...]} → {"in_skyline": bool}
//	GET  /skyline           → [{"name": ..., "qos": [...]}, ...]
//	GET  /skyline?explain=1 → {"services": [...], "plan": {...}}
//	GET  /stats             → {"services": n, "skyline_size": k, ...}
//	GET  /metrics           → Prometheus text exposition
//	GET  /dashboard         → HTML status page for operators
//	GET  /debug/queries     → recent per-query cost records + totals
//	GET  /debug/slowlog     → top-K slowest queries
//	GET  /debug/slo         → SLO burn state (404 until ConfigureSLO)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.tele.Handler())
	telemetry.MountQueryLog(mux, func() *telemetry.QueryLog {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.queries
	})
	telemetry.MountSLO(mux, r.SLO)
	mux.HandleFunc("/dashboard", r.instrument("dashboard", false, r.serveDashboard))
	mux.HandleFunc("/services", r.instrument("services", true, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var s Service
		if err := json.NewDecoder(req.Body).Decode(&s); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		in, err := r.PublishContext(req.Context(), s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]bool{"in_skyline": in})
	}))
	mux.HandleFunc("/skyline", r.instrument("skyline", true, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if explain, _ := strconv.ParseBool(req.URL.Query().Get("explain")); explain {
			services, plan := r.ExplainContext(req.Context())
			writeJSON(w, ExplainResponse{Services: services, Plan: plan})
			return
		}
		writeJSON(w, r.SkylineContext(req.Context()))
	}))
	mux.HandleFunc("/stats", r.instrument("stats", false, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		r.mu.RLock()
		resp := statsResponse{
			Services:    len(r.services),
			SkylineSize: len(r.ix.Global()),
			IndexPoints: r.ix.Size(),
			Dim:         r.dim,
		}
		r.mu.RUnlock()
		writeJSON(w, resp)
	}))
	return mux
}

// statusWriter captures the response status code so instrument can label
// the request counter by status class and attribute it to the query
// record. An unwritten header counts as 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code for the requests counter: "2xx",
// "3xx", "4xx", "5xx".
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps an endpoint with a request counter labelled by
// endpoint and status class, and a latency histogram labelled by
// endpoint. Both are recorded after the handler runs, so error responses
// are counted under their real status and their latency is observed too.
// When track is set (the query-shaped endpoints: skyline reads and
// publishes), the request additionally carries a telemetry.QueryStats
// record through its context; the index annotates it with path and cost,
// and it is filed into the query log with its dominance tests bridged
// into skyline_dominance_tests_total — the reconciliation surface the
// EXPLAIN tests pin.
func (r *Registry) instrument(endpoint string, track bool, h http.HandlerFunc) http.HandlerFunc {
	seconds := r.tele.Histogram("registry_request_seconds", telemetry.DurationBuckets(),
		telemetry.L("endpoint", endpoint))
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var qs *telemetry.QueryStats
		if track && !r.statsOff.Load() {
			qs = telemetry.BeginQuery(endpoint)
			req = req.WithContext(telemetry.WithQueryStats(req.Context(), qs))
		}
		h(sw, req)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		r.tele.Counter("registry_requests_total",
			telemetry.L("endpoint", endpoint), telemetry.L("status", statusClass(sw.status))).Inc()
		seconds.Observe(time.Since(start).Seconds())
		r.reqTotal.Add(1)
		if sw.status >= 500 {
			r.req5xx.Add(1)
		}
		if qs != nil {
			qs.SetStatus(sw.status)
			r.mu.RLock()
			log := r.queries
			r.mu.RUnlock()
			log.Record(qs)
			r.tele.Counter("skyline_dominance_tests_total").Add(qs.DominanceTests)
		}
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will surface it.
		_ = err
	}
}

// Scheme re-exports the partitioning schemes for cmd/skyserve flags.
type Scheme = partition.Scheme
