// Package registry is the UDDI-like service registry from the paper's
// motivation (§I–II): providers publish services with QoS attributes,
// clients query the current skyline in real time. Internally it wraps the
// incremental skyline index (driver.Index), so publishing a service
// touches only its partition's local skyline — the paper's dynamic
// scenario — and exposes the whole thing over HTTP with JSON bodies.
//
// Every tracked request (publishes and skyline reads) carries a
// telemetry.QueryStats record through the index, so the registry can
// answer "which query was slow and why" from /debug/queries and
// /debug/slowlog, serve per-query EXPLAIN plans from /skyline?explain=1,
// and evaluate latency/availability SLOs at /debug/slo.
package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// Service is one published web service.
type Service struct {
	// Name identifies the service (unique within the registry).
	Name string `json:"name"`
	// QoS is the attribute vector, oriented so lower is better.
	QoS []float64 `json:"qos"`
}

// Registry holds published services and maintains their skyline
// incrementally. Safe for concurrent use.
//
// Serving core: skyline reads resolve an immutable index epoch (one
// atomic load) and, for repeated queries, a rendered-response cache with
// dominance-aware invalidation — neither takes the write lock, so read
// QPS no longer degrades under publish load. Publishes ride the index's
// batched group-commit pipeline: one installed epoch per coalesced
// batch, with every acknowledged publish visible (and its stale cache
// entries evicted) before the acknowledgement.
type Registry struct {
	mu       sync.RWMutex
	dim      int
	ix       *driver.Index
	services map[string]Service
	cache    *queryCache
	tele     *telemetry.Registry
	queries  *telemetry.QueryLog
	slo      *telemetry.SLOTracker
	// Pre-resolved hot-path counters: resolving a labelled counter takes
	// a registry lookup, too expensive per request at serving rates.
	pathCached, pathMerge, pathUpdate *telemetry.Counter
	cacheHits, cacheMisses            *telemetry.Counter
	// statsOff disables per-query attribution (the ring, the slow log and
	// the context plumbing) while leaving the endpoint counters and
	// latency histograms untouched — the control arm of the serve
	// benchmark's overhead split.
	statsOff atomic.Bool
	// reqTotal / req5xx feed the availability SLO source: requests whose
	// status class is 5xx count against the error budget.
	reqTotal atomic.Int64
	req5xx   atomic.Int64
}

// Defaults for the query log; ConfigureQueryLog overrides them.
const (
	defaultQueryLogCapacity = 256
	defaultSlowLogK         = 16
	defaultSlowThreshold    = 100 * time.Millisecond
)

// New builds a registry seeded with initial services (at least one is
// required to fit the partitioner; the paper's UDDI bootstrap). When
// opts.Metrics is nil the registry's own telemetry registry is used, so
// boot-time kernel counters (skyline_dominance_tests_total and friends)
// land on the same scrape surface the per-query bridge feeds later.
func New(ctx context.Context, initial []Service, opts driver.Options) (*Registry, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("registry: need at least one seed service")
	}
	data := make(points.Set, len(initial))
	services := make(map[string]Service, len(initial))
	dim := len(initial[0].QoS)
	for i, s := range initial {
		if s.Name == "" {
			return nil, fmt.Errorf("registry: seed service %d has no name", i)
		}
		if len(s.QoS) != dim {
			return nil, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), dim)
		}
		if _, dup := services[s.Name]; dup {
			return nil, fmt.Errorf("registry: duplicate service name %q", s.Name)
		}
		data[i] = points.Point(s.QoS)
		services[s.Name] = s
	}
	tele := telemetry.NewRegistry()
	if opts.Metrics == nil {
		opts.Metrics = tele
	}
	ix, err := driver.BuildIndex(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	r := &Registry{
		dim:         dim,
		ix:          ix,
		services:    services,
		tele:        tele,
		queries:     telemetry.NewQueryLog(defaultQueryLogCapacity, defaultSlowLogK, defaultSlowThreshold),
		pathCached:  tele.Counter("registry_query_path_total", telemetry.L("path", "cached")),
		pathMerge:   tele.Counter("registry_query_path_total", telemetry.L("path", "merge")),
		pathUpdate:  tele.Counter("registry_query_path_total", telemetry.L("path", "update")),
		cacheHits:   tele.Counter("registry_cache_hits_total"),
		cacheMisses: tele.Counter("registry_cache_misses_total"),
	}
	r.cache = newQueryCache(defaultCacheCapacity, tele.Counter("registry_cache_evictions_total"))
	// The commit hook runs in epoch order before any publish of the batch
	// is acknowledged: once a Publish returns, every cached answer it
	// could have changed is gone.
	ix.SetOnCommit(r.cache.invalidate)
	if err := ix.StartPipeline(0, 0); err != nil {
		return nil, err
	}
	telemetry.RegisterProcessMetrics(r.tele)
	// The registry's shape is sampled at scrape time rather than tracked
	// on every publish, so gauges never drift from the index. The index
	// side reads an epoch snapshot — no locks.
	r.tele.OnScrape(func(t *telemetry.Registry) {
		v := r.ix.View()
		r.mu.RLock()
		n := len(r.services)
		r.mu.RUnlock()
		t.Gauge("registry_services").Set(float64(n))
		t.Gauge("registry_skyline_size").Set(float64(len(v.Global())))
		t.Gauge("registry_index_points").Set(float64(v.Size()))
	})
	return r, nil
}

// Close drains and stops the publish pipeline. Publishes accepted before
// Close are folded and acknowledged; later ones fall back to the
// synchronous path, so a closed registry still works, just unbatched.
func (r *Registry) Close() {
	r.ix.Close()
}

// ConfigurePublish resizes the publish pipeline's queue depth and
// maximum batch size (non-positive values keep the defaults). Call
// before serving traffic.
func (r *Registry) ConfigurePublish(queue, maxBatch int) error {
	r.ix.Close()
	return r.ix.StartPipeline(queue, maxBatch)
}

// Metrics returns the registry's telemetry surface, for embedding into a
// larger exposition or asserting on in tests.
func (r *Registry) Metrics() *telemetry.Registry { return r.tele }

// QueryLog returns the per-query record log behind /debug/queries.
func (r *Registry) QueryLog() *telemetry.QueryLog { return r.queries }

// ConfigureQueryLog replaces the query log's ring capacity, slow-log K
// and slow threshold. Records already filed are dropped; call before
// serving traffic.
func (r *Registry) ConfigureQueryLog(capacity, slowK int, threshold time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = telemetry.NewQueryLog(capacity, slowK, threshold)
}

// EnableQueryStats toggles per-query attribution. Disabled, requests
// still hit the endpoint counters and latency histograms but no
// QueryStats record is created or filed — the measured-overhead control.
func (r *Registry) EnableQueryStats(on bool) { r.statsOff.Store(!on) }

// SLOOptions configures the registry's service-level objectives.
type SLOOptions struct {
	// P99Threshold is the skyline read latency the 99th percentile must
	// stay under. Zero disables the latency objective.
	P99Threshold time.Duration
	// Availability is the target fraction of requests answered without a
	// 5xx, e.g. 0.999. Zero disables the availability objective.
	Availability float64
	// Events, when non-nil, receives budget-burn warnings.
	Events *telemetry.EventLog
	// Windows overrides the burn-rate windows (default 1m/5m/30m).
	Windows []time.Duration
}

// ConfigureSLO installs an SLO tracker evaluating the configured
// objectives against the registry's own metrics: the skyline endpoint's
// latency histogram and the 5xx share of all instrumented requests. It
// returns the tracker so the caller can drive its evaluation loop
// (tracker.Run) and is also mounted at /debug/slo by Handler.
func (r *Registry) ConfigureSLO(opts SLOOptions) *telemetry.SLOTracker {
	tr := telemetry.NewSLOTracker(telemetry.SLOConfig{
		Windows: opts.Windows,
		Events:  opts.Events,
	})
	if opts.P99Threshold > 0 {
		h := r.tele.Histogram("registry_request_seconds", telemetry.DurationBuckets(),
			telemetry.L("endpoint", "skyline"))
		tr.AddLatency("skyline-p99", 0.99, opts.P99Threshold, telemetry.LatencySLOSource(h, opts.P99Threshold))
	}
	if opts.Availability > 0 {
		tr.AddAvailability("availability", opts.Availability, telemetry.CounterSLOSource(
			func() int64 { return r.reqTotal.Load() - r.req5xx.Load() },
			r.req5xx.Load,
		))
	}
	r.mu.Lock()
	r.slo = tr
	r.mu.Unlock()
	return tr
}

// SLO returns the configured SLO tracker, or nil when ConfigureSLO has
// not been called (in which case /debug/slo serves 404).
func (r *Registry) SLO() *telemetry.SLOTracker {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.slo
}

// Dim returns the registry's attribute dimensionality.
func (r *Registry) Dim() int { return r.dim }

// Len returns the number of published services.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// Publish registers a new service and updates the skyline incrementally.
// It reports whether the service entered the skyline.
func (r *Registry) Publish(s Service) (inSkyline bool, err error) {
	return r.PublishContext(context.Background(), s)
}

// PublishContext is Publish with per-query attribution: a query record in
// ctx (telemetry.WithQueryStats) picks up the update path's candidate
// and dominance-test costs from the index.
//
// The catalogue entry is reserved under the lock, but the index fold —
// which may wait on a group commit — runs without it, so publishes never
// block skyline reads. The name goes into the catalogue before the fold
// commits: harmless, because reads surface a service only when its
// coordinates are in the (epoch-snapshotted) skyline.
func (r *Registry) PublishContext(ctx context.Context, s Service) (inSkyline bool, err error) {
	if s.Name == "" {
		return false, fmt.Errorf("registry: service needs a name")
	}
	if len(s.QoS) != r.dim {
		return false, fmt.Errorf("registry: service %q has %d attributes, want %d", s.Name, len(s.QoS), r.dim)
	}
	r.mu.Lock()
	if _, dup := r.services[s.Name]; dup {
		r.mu.Unlock()
		return false, fmt.Errorf("registry: service %q already published", s.Name)
	}
	r.services[s.Name] = s
	r.mu.Unlock()

	_, in, err := r.ix.AddContext(ctx, points.Point(s.QoS))
	if err != nil {
		r.mu.Lock()
		delete(r.services, s.Name)
		r.mu.Unlock()
		return false, err
	}
	r.pathUpdate.Inc()
	if in {
		telemetry.QueryStatsFrom(ctx).SetResult(1)
	}
	return in, nil
}

// Skyline returns the names and QoS of the current skyline services,
// sorted by name. Coordinate-equal services all appear.
func (r *Registry) Skyline() []Service {
	return r.SkylineContext(context.Background())
}

// SkylineContext is Skyline with per-query attribution: the serving path
// taken (cached for a cache hit, merge for a fill) and result size are
// noted on a query record in ctx.
func (r *Registry) SkylineContext(ctx context.Context) []Service {
	services, _, _ := r.skylineCached(ctx, "", nil)
	return services
}

// ConstrainedSkylineContext answers a skyline query under a QoS demand
// ceiling: only services with QoS[j] <= max[j] for every attribute
// compete. Over the index's retained working set that is exactly the
// constrained skyline — any dominator of an in-ceiling point has
// componentwise-smaller coordinates, so it is in the ceiling too, which
// is why filtering the maintained global is sound. (Lower bounds are NOT
// sound on the incremental index and are rejected at the API layer: a
// point pruned by a dominator below the floor may be precisely the
// answer inside the window.)
func (r *Registry) ConstrainedSkylineContext(ctx context.Context, max []float64) ([]Service, error) {
	if len(max) != r.dim {
		return nil, fmt.Errorf("registry: constraint has %d attributes, want %d", len(max), r.dim)
	}
	sig := "max:" + fmt.Sprint(max)
	services, _, _ := r.skylineCached(ctx, sig, points.Point(max))
	return services, nil
}

// skylineCached is the common skyline read: serve the rendered response
// from the query cache when present (lock-free hit), else compute it
// from the current epoch snapshot, render it once, and install it at
// that epoch. hit reports which path ran; body is the exact JSON the
// HTTP handler writes.
func (r *Registry) skylineCached(ctx context.Context, sig string, max points.Point) (services []Service, body []byte, hit bool) {
	qs := telemetry.QueryStatsFrom(ctx)
	if e := r.cache.get(sig); e != nil {
		r.pathCached.Inc()
		r.cacheHits.Inc()
		qs.SetPath("cached")
		qs.AddCost(0, int64(len(e.services)), 0)
		qs.SetResult(len(e.services))
		return e.services, e.body, true
	}
	r.pathMerge.Inc()
	r.cacheMisses.Inc()

	start := time.Now()
	v := r.ix.View()
	sky := v.Global()
	var tests int64
	if max != nil {
		filtered := make(points.Set, 0, len(sky))
		for _, p := range sky {
			tests++
			if withinMax(p, max) {
				filtered = append(filtered, p)
			}
		}
		sky = filtered
	}
	snapshot := time.Since(start)

	start = time.Now()
	r.mu.RLock()
	services = r.matchServices(sky)
	r.mu.RUnlock()
	body, err := json.Marshal(services)
	if err == nil {
		body = append(body, '\n')
		r.cache.put(sig, &cacheEntry{epoch: v.Epoch(), max: max, services: services, body: body})
	}
	qs.SetPath("merge")
	qs.AddCost(0, int64(len(v.Global())), tests)
	qs.AddStage("snapshot", snapshot)
	qs.AddStage("match", time.Since(start))
	qs.SetResult(len(services))
	return services, body, false
}

// ExplainContext answers a skyline query the expensive, honest way: it
// bypasses the cached global skyline and re-merges the local skylines
// with the instrumented merge, returning the services plus the
// per-partition plan (candidates, dominance tests, survivors, stage
// timings). The service list is identical to SkylineContext's.
func (r *Registry) ExplainContext(ctx context.Context) ([]Service, *driver.Explain) {
	r.pathMerge.Inc()
	sky, ex := r.ix.Explain(ctx)
	r.mu.RLock()
	out := r.matchServices(sky)
	r.mu.RUnlock()
	telemetry.QueryStatsFrom(ctx).SetResult(len(out))
	return out, ex
}

// matchServices maps skyline points back to the published services that
// carry those coordinates. Callers hold r.mu.
func (r *Registry) matchServices(sky points.Set) []Service {
	keys := make(map[string]struct{}, len(sky))
	for _, p := range sky {
		keys[points.Key(p)] = struct{}{}
	}
	var out []Service
	for _, s := range r.services {
		if _, ok := keys[points.Key(points.Point(s.QoS))]; ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Services    int `json:"services"`
	SkylineSize int `json:"skyline_size"`
	IndexPoints int `json:"index_points"`
	Dim         int `json:"dim"`
}

// ExplainResponse is the /skyline?explain=1 JSON shape.
type ExplainResponse struct {
	Services []Service       `json:"services"`
	Plan     *driver.Explain `json:"plan"`
}

// Handler returns the HTTP API:
//
//	POST /services          {"name": ..., "qos": [...]} → {"in_skyline": bool}
//	GET  /skyline           → [{"name": ..., "qos": [...]}, ...]
//	GET  /skyline?explain=1 → {"services": [...], "plan": {...}}
//	GET  /stats             → {"services": n, "skyline_size": k, ...}
//	GET  /metrics           → Prometheus text exposition
//	GET  /dashboard         → HTML status page for operators
//	GET  /debug/queries     → recent per-query cost records + totals
//	GET  /debug/slowlog     → top-K slowest queries
//	GET  /debug/slo         → SLO burn state (404 until ConfigureSLO)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.tele.Handler())
	telemetry.MountQueryLog(mux, func() *telemetry.QueryLog {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.queries
	})
	telemetry.MountSLO(mux, r.SLO)
	mux.HandleFunc("/dashboard", r.instrument("dashboard", false, r.serveDashboard))
	mux.HandleFunc("/services", r.instrument("services", true, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var s Service
		if err := json.NewDecoder(req.Body).Decode(&s); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		in, err := r.PublishContext(req.Context(), s)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, map[string]bool{"in_skyline": in})
	}))
	mux.HandleFunc("/skyline", r.instrument("skyline", true, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		if q.Get("min") != "" {
			// Lower bounds are unsound on the incremental index: a point
			// pruned by a dominator below the floor may be exactly the
			// constrained answer, but it is no longer retained.
			http.Error(w, "min bounds are not supported: the incremental index retains only "+
				"ceiling-recoverable points; use max=v1,...,vd", http.StatusBadRequest)
			return
		}
		maxParam := q.Get("max")
		if explain, _ := strconv.ParseBool(q.Get("explain")); explain {
			if maxParam != "" {
				http.Error(w, "explain does not support constrained queries", http.StatusBadRequest)
				return
			}
			services, plan := r.ExplainContext(req.Context())
			writeJSON(w, ExplainResponse{Services: services, Plan: plan})
			return
		}
		var maxP points.Point
		sig := ""
		if maxParam != "" {
			p, err := parseBounds(maxParam, r.dim)
			if err != nil {
				http.Error(w, "bad max bounds: "+err.Error(), http.StatusBadRequest)
				return
			}
			maxP = p
			sig = "max:" + maxParam
		}
		// Serve the rendered body directly — on a hit this is the whole
		// request: no locks, no matching, no re-marshalling.
		_, body, _ := r.skylineCached(req.Context(), sig, maxP)
		if body == nil {
			http.Error(w, "encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}))
	mux.HandleFunc("/stats", r.instrument("stats", false, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		v := r.ix.View()
		r.mu.RLock()
		n := len(r.services)
		r.mu.RUnlock()
		writeJSON(w, statsResponse{
			Services:    n,
			SkylineSize: len(v.Global()),
			IndexPoints: v.Size(),
			Dim:         r.dim,
		})
	}))
	return mux
}

// statusWriter captures the response status code so instrument can label
// the request counter by status class and attribute it to the query
// record. An unwritten header counts as 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// statusClass buckets a status code for the requests counter: "2xx",
// "3xx", "4xx", "5xx".
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// instrument wraps an endpoint with a request counter labelled by
// endpoint and status class, and a latency histogram labelled by
// endpoint. Both are recorded after the handler runs, so error responses
// are counted under their real status and their latency is observed too.
// When track is set (the query-shaped endpoints: skyline reads and
// publishes), the request additionally carries a telemetry.QueryStats
// record through its context; the index annotates it with path and cost,
// and it is filed into the query log with its dominance tests bridged
// into skyline_dominance_tests_total — the reconciliation surface the
// EXPLAIN tests pin.
func (r *Registry) instrument(endpoint string, track bool, h http.HandlerFunc) http.HandlerFunc {
	seconds := r.tele.Histogram("registry_request_seconds", telemetry.DurationBuckets(),
		telemetry.L("endpoint", endpoint))
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var qs *telemetry.QueryStats
		if track && !r.statsOff.Load() {
			qs = telemetry.BeginQuery(endpoint)
			req = req.WithContext(telemetry.WithQueryStats(req.Context(), qs))
		}
		h(sw, req)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		r.tele.Counter("registry_requests_total",
			telemetry.L("endpoint", endpoint), telemetry.L("status", statusClass(sw.status))).Inc()
		seconds.Observe(time.Since(start).Seconds())
		r.reqTotal.Add(1)
		if sw.status >= 500 {
			r.req5xx.Add(1)
		}
		if qs != nil {
			qs.SetStatus(sw.status)
			r.mu.RLock()
			log := r.queries
			r.mu.RUnlock()
			log.Record(qs)
			r.tele.Counter("skyline_dominance_tests_total").Add(qs.DominanceTests)
		}
	}
}

// parseBounds parses a comma-separated attribute vector of length dim.
func parseBounds(s string, dim int) (points.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("%d bounds, want %d", len(parts), dim)
	}
	p := make(points.Point, dim)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bound %d: %w", i, err)
		}
		p[i] = v
	}
	return p, nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will surface it.
		_ = err
	}
}

// Scheme re-exports the partitioning schemes for cmd/skyserve flags.
type Scheme = partition.Scheme
