package registry

import (
	"html/template"
	"net/http"
	"sort"
)

// dashboardTmpl renders the operator status page: catalogue counters and
// the current skyline, one row per Pareto-optimal service.
var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Skyline Registry</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
 h1 { font-size: 1.4rem; }
 .stats { display: flex; gap: 2rem; margin: 1rem 0; }
 .stat b { display: block; font-size: 1.6rem; }
 table { border-collapse: collapse; margin-top: 1rem; }
 th, td { border: 1px solid #ccc; padding: 0.3rem 0.7rem; text-align: right; }
 th:first-child, td:first-child { text-align: left; }
 caption { text-align: left; font-weight: 600; padding-bottom: 0.4rem; }
</style>
</head>
<body>
<h1>Skyline Registry</h1>
<div class="stats">
 <div class="stat"><b>{{.Services}}</b>services</div>
 <div class="stat"><b>{{.SkylineSize}}</b>on skyline</div>
 <div class="stat"><b>{{.IndexPoints}}</b>index points</div>
 <div class="stat"><b>{{.Dim}}</b>QoS attributes</div>
</div>
<table>
<caption>Current skyline (QoS-optimal services; lower is better, 0 is ideal)</caption>
<tr><th>service</th>{{range $i := .AttrIdx}}<th>q{{$i}}</th>{{end}}</tr>
{{range .Skyline}}<tr><td>{{.Name}}</td>{{range .QoS}}<td>{{printf "%.3f" .}}</td>{{end}}</tr>
{{end}}
</table>
</body>
</html>
`))

// dashboardData feeds the template.
type dashboardData struct {
	Services    int
	SkylineSize int
	IndexPoints int
	Dim         int
	AttrIdx     []int
	Skyline     []Service
}

// serveDashboard renders the HTML status page.
func (r *Registry) serveDashboard(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	sky := r.Skyline()
	sort.Slice(sky, func(i, j int) bool { return sky[i].Name < sky[j].Name })
	const maxRows = 200
	if len(sky) > maxRows {
		sky = sky[:maxRows]
	}
	r.mu.RLock()
	data := dashboardData{
		Services:    len(r.services),
		IndexPoints: r.ix.Size(),
		Dim:         r.dim,
	}
	r.mu.RUnlock()
	data.SkylineSize = len(r.Skyline())
	data.Skyline = sky
	data.AttrIdx = make([]int, data.Dim)
	for i := range data.AttrIdx {
		data.AttrIdx[i] = i + 1
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		// Headers are gone; nothing more to do than drop the connection.
		_ = err
	}
}
