package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

func seedServices(n int) []Service {
	out := make([]Service, n)
	for i := range out {
		// A diagonal anti-chain plus interior dominated points.
		var qos []float64
		if i%2 == 0 {
			qos = []float64{float64(i), float64(n - i)}
		} else {
			qos = []float64{float64(i + n), float64(2*n - i)}
		}
		out[i] = Service{Name: fmt.Sprintf("svc-%03d", i), QoS: qos}
	}
	return out
}

func newRegistry(t *testing.T) *Registry {
	t.Helper()
	r, err := New(context.Background(), seedServices(40), driver.Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(context.Background(), nil, driver.Options{}); err == nil {
		t.Error("empty seed accepted")
	}
	if _, err := New(context.Background(), []Service{{Name: "", QoS: []float64{1, 2}}}, driver.Options{}); err == nil {
		t.Error("nameless seed accepted")
	}
	if _, err := New(context.Background(), []Service{
		{Name: "a", QoS: []float64{1, 2}},
		{Name: "b", QoS: []float64{1}},
	}, driver.Options{}); err == nil {
		t.Error("ragged seed accepted")
	}
	if _, err := New(context.Background(), []Service{
		{Name: "a", QoS: []float64{1, 2}},
		{Name: "a", QoS: []float64{2, 3}},
	}, driver.Options{}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestSkylineMatchesOracle(t *testing.T) {
	r := newRegistry(t)
	seeds := seedServices(40)
	var set points.Set
	for _, s := range seeds {
		set = append(set, points.Point(s.QoS))
	}
	want := skyline.Naive(set)
	got := r.Skyline()
	if len(got) != len(want) {
		t.Fatalf("skyline %d services, oracle %d", len(got), len(want))
	}
	for _, s := range got {
		if !want.Contains(points.Point(s.QoS)) {
			t.Errorf("%s not in oracle skyline", s.Name)
		}
	}
}

func TestPublish(t *testing.T) {
	r := newRegistry(t)
	in, err := r.Publish(Service{Name: "hero", QoS: []float64{-1, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Error("dominating service not in skyline")
	}
	sky := r.Skyline()
	if len(sky) != 1 || sky[0].Name != "hero" {
		t.Errorf("skyline after hero = %v", sky)
	}
	in, err = r.Publish(Service{Name: "zero", QoS: []float64{1e9, 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	if in {
		t.Error("dominated service reported in skyline")
	}
	if r.Len() != 42 {
		t.Errorf("Len = %d, want 42", r.Len())
	}
}

func TestPublishValidation(t *testing.T) {
	r := newRegistry(t)
	if _, err := r.Publish(Service{Name: "", QoS: []float64{1, 2}}); err == nil {
		t.Error("nameless publish accepted")
	}
	if _, err := r.Publish(Service{Name: "x", QoS: []float64{1}}); err == nil {
		t.Error("wrong-dim publish accepted")
	}
	if _, err := r.Publish(Service{Name: "svc-000", QoS: []float64{1, 2}}); err == nil {
		t.Error("duplicate publish accepted")
	}
}

func TestHTTPAPI(t *testing.T) {
	r := newRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Stats.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Services    int `json:"services"`
		SkylineSize int `json:"skyline_size"`
		Dim         int `json:"dim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Services != 40 || stats.Dim != 2 || stats.SkylineSize == 0 {
		t.Errorf("stats = %+v", stats)
	}

	// Publish.
	body, _ := json.Marshal(Service{Name: "api-hero", QoS: []float64{-5, -5}})
	resp, err = http.Post(srv.URL+"/services", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pub struct {
		InSkyline bool `json:"in_skyline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !pub.InSkyline {
		t.Error("api-hero should be in skyline")
	}

	// Skyline.
	resp, err = http.Get(srv.URL + "/skyline")
	if err != nil {
		t.Fatal(err)
	}
	var sky []Service
	if err := json.NewDecoder(resp.Body).Decode(&sky); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sky) != 1 || sky[0].Name != "api-hero" {
		t.Errorf("skyline = %v", sky)
	}
}

func TestHTTPErrors(t *testing.T) {
	r := newRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	// Wrong methods.
	resp, err := http.Get(srv.URL + "/services")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /services = %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/skyline", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /skyline = %d", resp.StatusCode)
	}

	// Malformed body.
	resp, err = http.Post(srv.URL+"/services", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed publish = %d", resp.StatusCode)
	}

	// Duplicate name.
	body, _ := json.Marshal(Service{Name: "svc-000", QoS: []float64{1, 2}})
	resp, err = http.Post(srv.URL+"/services", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate publish = %d", resp.StatusCode)
	}
}

func TestConcurrentPublishes(t *testing.T) {
	r := newRegistry(t)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := r.Publish(Service{
				Name: fmt.Sprintf("conc-%02d", i),
				QoS:  []float64{float64(i%7) + 0.5, float64((13 - i) % 11)},
			})
			if err != nil {
				t.Errorf("publish %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if r.Len() != 90 {
		t.Errorf("Len = %d, want 90", r.Len())
	}
	// Invariant: skyline equals the batch skyline over all services.
	var all points.Set
	r.mu.RLock()
	for _, s := range r.services {
		all = append(all, points.Point(s.QoS))
	}
	r.mu.RUnlock()
	want := skyline.Naive(all)
	got := r.Skyline()
	// Skyline() deduplicates by service; compare coordinate sets instead.
	wantKeys := map[string]bool{}
	for _, p := range want {
		wantKeys[points.Key(p)] = true
	}
	for _, s := range got {
		if !wantKeys[points.Key(points.Point(s.QoS))] {
			t.Errorf("%s (%v) not in oracle skyline", s.Name, s.QoS)
		}
	}
}

func TestDashboard(t *testing.T) {
	r := newRegistry(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	html := string(body)
	for _, want := range []string{"Skyline Registry", "on skyline", "svc-0"} {
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	// Wrong method rejected.
	resp2, err := http.Post(srv.URL+"/dashboard", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /dashboard = %d", resp2.StatusCode)
	}
}

func TestDashboardEscapesNames(t *testing.T) {
	r := newRegistry(t)
	if _, err := r.Publish(Service{Name: "<script>alert(1)</script>", QoS: []float64{-9, -9}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "<script>alert(1)") {
		t.Error("service name not HTML-escaped")
	}
}
