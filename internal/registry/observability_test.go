package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
	"repro/internal/telemetry"

	"context"
)

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s does not parse: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// queryLogDoc mirrors the /debug/queries and /debug/slowlog JSON shape.
type queryLogDoc struct {
	Totals           telemetry.QueryTotals  `json:"totals"`
	ThresholdSeconds float64                `json:"threshold_seconds"`
	Queries          []telemetry.QueryStats `json:"queries"`
}

// TestExplainReconciliation is the pinned cross-check of the EXPLAIN
// plan against every other counting surface in the system:
//
//   - per-partition candidates equal the boot flight record's local
//     skyline sizes (nothing was published since boot),
//   - per-partition dominance tests sum exactly to the plan total,
//   - the plan total equals the delta of skyline_dominance_tests_total
//     on /metrics across the explained request,
//   - the per-query record filed in /debug/queries carries the same
//     totals, and
//   - the explained service list equals the cached /skyline answer.
func TestExplainReconciliation(t *testing.T) {
	rec := telemetry.NewRecorder("boot")
	ctx := telemetry.WithRecorder(context.Background(), rec)
	r, err := New(ctx, seedServices(40), driver.Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	boot := rec.Report()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var plain []Service
	if code := getJSON(t, srv.URL+"/skyline", &plain); code != http.StatusOK {
		t.Fatalf("/skyline = %d", code)
	}
	before := r.Metrics().Counter("skyline_dominance_tests_total").Value()

	var ex ExplainResponse
	if code := getJSON(t, srv.URL+"/skyline?explain=1", &ex); code != http.StatusOK {
		t.Fatalf("/skyline?explain=1 = %d", code)
	}
	delta := r.Metrics().Counter("skyline_dominance_tests_total").Value() - before

	if ex.Plan == nil {
		t.Fatal("no plan in explain response")
	}
	// Pin 1: plan candidates == flight-recorder local skyline sizes.
	bootLocal := make(map[int]int, len(boot.Partitions))
	var bootTotal int64
	for _, pr := range boot.Partitions {
		bootLocal[pr.Partition] = pr.LocalSkyline
		bootTotal += int64(pr.LocalSkyline)
	}
	for _, pe := range ex.Plan.Partitions {
		if pe.Candidates != bootLocal[pe.Partition] {
			t.Errorf("partition %d: plan candidates %d, flight record %d",
				pe.Partition, pe.Candidates, bootLocal[pe.Partition])
		}
	}
	if ex.Plan.Candidates != bootTotal {
		t.Errorf("plan candidates %d, flight record total %d", ex.Plan.Candidates, bootTotal)
	}

	// Pin 2: per-partition tests sum to the plan total.
	var sum int64
	for _, pe := range ex.Plan.Partitions {
		sum += pe.DominanceTests
	}
	if sum != ex.Plan.DominanceTests || sum == 0 {
		t.Errorf("partition tests sum %d, plan total %d", sum, ex.Plan.DominanceTests)
	}

	// Pin 3: the metrics counter moved by exactly the plan total.
	if delta != ex.Plan.DominanceTests {
		t.Errorf("skyline_dominance_tests_total delta %d, plan total %d", delta, ex.Plan.DominanceTests)
	}

	// Pin 4: the filed query record carries the same totals.
	var qdoc queryLogDoc
	if code := getJSON(t, srv.URL+telemetry.QueriesPath, &qdoc); code != http.StatusOK {
		t.Fatalf("%s = %d", telemetry.QueriesPath, code)
	}
	var merged *telemetry.QueryStats
	for i := range qdoc.Queries {
		if qdoc.Queries[i].Path == "merge" {
			merged = &qdoc.Queries[i]
			break
		}
	}
	if merged == nil {
		t.Fatalf("no merge-path record in %s: %+v", telemetry.QueriesPath, qdoc.Queries)
	}
	if merged.DominanceTests != ex.Plan.DominanceTests ||
		merged.CandidatesScanned != ex.Plan.Candidates ||
		merged.PartitionsProbed != ex.Plan.PartitionsProbed ||
		merged.ResultSize != len(ex.Services) ||
		merged.Status != http.StatusOK {
		t.Errorf("query record diverges from plan: %+v vs %+v", merged, ex.Plan)
	}
	if len(merged.Stages) == 0 {
		t.Error("query record has no stage timings")
	}

	// Pin 5: explain answers the same query as the cached path.
	if len(ex.Services) != len(plain) {
		t.Fatalf("explain services %d, cached %d", len(ex.Services), len(plain))
	}
	for i := range plain {
		if ex.Services[i].Name != plain[i].Name {
			t.Errorf("service %d: explain %q, cached %q", i, ex.Services[i].Name, plain[i].Name)
		}
	}
	if ex.Plan.ResultSize != len(plain) {
		t.Errorf("plan result size %d, skyline %d", ex.Plan.ResultSize, len(plain))
	}
}

// TestDebugEndpoints: /debug/queries and /debug/slowlog serve the
// registry's query log, and /debug/slo is 404 until ConfigureSLO and
// live after.
func TestDebugEndpoints(t *testing.T) {
	r := newRegistry(t)
	// A tiny threshold so every query lands in the slow log.
	r.ConfigureQueryLog(32, 8, time.Nanosecond)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	if _, err := http.Get(srv.URL + "/skyline"); err != nil {
		t.Fatal(err)
	}
	var doc queryLogDoc
	if code := getJSON(t, srv.URL+telemetry.SlowLogPath, &doc); code != http.StatusOK {
		t.Fatalf("%s = %d", telemetry.SlowLogPath, code)
	}
	if len(doc.Queries) != 1 || !doc.Queries[0].Slow || doc.Queries[0].Op != "skyline" {
		t.Errorf("slowlog = %+v", doc.Queries)
	}
	if doc.Totals.Queries != 1 || doc.Totals.SlowQueries != 1 {
		t.Errorf("totals = %+v", doc.Totals)
	}

	var slo struct{}
	if code := getJSON(t, srv.URL+telemetry.SLOPath, &slo); code != http.StatusNotFound {
		t.Errorf("unconfigured %s = %d, want 404", telemetry.SLOPath, code)
	}
	r.ConfigureSLO(SLOOptions{P99Threshold: 50 * time.Millisecond, Availability: 0.999})
	var sloDoc struct {
		Objectives []telemetry.SLOStatus `json:"objectives"`
	}
	if code := getJSON(t, srv.URL+telemetry.SLOPath, &sloDoc); code != http.StatusOK {
		t.Fatalf("configured %s = %d", telemetry.SLOPath, code)
	}
	if len(sloDoc.Objectives) != 2 {
		t.Fatalf("objectives = %+v", sloDoc.Objectives)
	}
	byName := map[string]telemetry.SLOStatus{}
	for _, o := range sloDoc.Objectives {
		byName[o.Name] = o
	}
	if o, ok := byName["availability"]; !ok || o.Requests < 1 || o.Bad != 0 || o.Violated {
		t.Errorf("availability objective wrong: %+v", o)
	}
	if o, ok := byName["skyline-p99"]; !ok || o.Requests < 1 {
		t.Errorf("latency objective wrong: %+v", o)
	}
}

// TestSoakPublishQuery is the -race soak: concurrent publishes and
// skyline/explain reads, after which (a) the skyline equals the offline
// oracle over all published services, and (b) the per-query dominance
// tests summed across every record reconcile exactly with the global
// skyline_dominance_tests_total counter movement.
func TestSoakPublishQuery(t *testing.T) {
	r := newRegistry(t)
	// Big enough that nothing is evicted... is not needed: totals are
	// cumulative across evictions, so a small ring still reconciles.
	r.ConfigureQueryLog(64, 8, defaultSlowThreshold)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	baseline := r.Metrics().Counter("skyline_dominance_tests_total").Value()

	const writers, readers, rounds = 4, 3, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s := Service{
					Name: fmt.Sprintf("soak-%d-%d", w, i),
					QoS:  []float64{float64((w*7+i)%13) + 0.25, float64((i*5+w)%17) + 0.25},
				}
				body, _ := json.Marshal(s)
				resp, err := http.Post(srv.URL+"/services", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Mix the three read paths: explain (merge), constrained
				// (ceiling cache) and plain (cached / fill) — all racing
				// the concurrent publish batches.
				url := srv.URL + "/skyline"
				switch (g + i) % 3 {
				case 0:
					url += "?explain=1"
				case 1:
					url += "?max=30,30"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	// Oracle: the skyline over every published service.
	var all points.Set
	r.mu.RLock()
	for _, s := range r.services {
		all = append(all, points.Point(s.QoS))
	}
	r.mu.RUnlock()
	want := skyline.Naive(all)
	wantKeys := map[string]bool{}
	for _, p := range want {
		wantKeys[points.Key(p)] = true
	}
	got := r.Skyline()
	gotKeys := map[string]bool{}
	for _, s := range got {
		if !wantKeys[points.Key(points.Point(s.QoS))] {
			t.Errorf("%s (%v) not in oracle skyline", s.Name, s.QoS)
		}
		gotKeys[points.Key(points.Point(s.QoS))] = true
	}
	for k := range wantKeys {
		if !gotKeys[k] {
			t.Errorf("oracle skyline point %s missing from registry skyline", k)
		}
	}

	// Reconciliation: cumulative per-query totals == counter movement.
	tot := r.QueryLog().Totals()
	if tot.Queries != int64(writers*rounds+readers*rounds) {
		t.Errorf("tracked queries = %d, want %d", tot.Queries, writers*rounds+readers*rounds)
	}
	delta := r.Metrics().Counter("skyline_dominance_tests_total").Value() - baseline
	if tot.DominanceTests != delta {
		t.Errorf("per-query dominance tests %d, counter delta %d", tot.DominanceTests, delta)
	}
	if tot.DominanceTests == 0 || tot.CandidatesScanned == 0 {
		t.Errorf("soak recorded no work: %+v", tot)
	}
}

// TestEnableQueryStats: with attribution off, no records are filed but
// request counters still move.
func TestEnableQueryStats(t *testing.T) {
	r := newRegistry(t)
	r.EnableQueryStats(false)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	if _, err := http.Get(srv.URL + "/skyline"); err != nil {
		t.Fatal(err)
	}
	if tot := r.QueryLog().Totals(); tot.Queries != 0 {
		t.Errorf("stats-off still filed %d records", tot.Queries)
	}
	if v := r.Metrics().Counter("registry_requests_total",
		telemetry.L("endpoint", "skyline"), telemetry.L("status", "2xx")).Value(); v != 1 {
		t.Errorf("requests counter = %d with stats off, want 1", v)
	}
	r.EnableQueryStats(true)
	if _, err := http.Get(srv.URL + "/skyline"); err != nil {
		t.Fatal(err)
	}
	if tot := r.QueryLog().Totals(); tot.Queries != 1 {
		t.Errorf("stats-on filed %d records, want 1", tot.Queries)
	}
}
