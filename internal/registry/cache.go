package registry

import (
	"sync"

	"repro/internal/driver"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// queryCache memoizes fully rendered skyline responses keyed by their
// constraint signature (the normalized ?max= parameter; "" for the
// unconstrained read). Hits are lock-free (sync.Map load); fills and
// invalidations serialize on a small mutex.
//
// Invalidation is dominance-aware and exact: the driver's commit
// callback reports which batch points ENTERED the global skyline, and an
// entry is evicted iff some entered point satisfies the entry's max
// constraint. That rule is minimal — a dominated (rejected) publish
// changes no query result, so it evicts nothing — and complete: a cached
// constrained result changes only when a point enters its box (any
// former member leaving the box's skyline was evicted by a dominator,
// which has componentwise-smaller coordinates and therefore is itself in
// the box and entered).
//
// The fill/invalidate race (a fill computed at epoch E landing after a
// later commit already invalidated) is closed by the floor epoch: every
// evicting commit raises floor to its epoch, and a put whose snapshot
// epoch is below floor is discarded — the filler simply serves its
// correct-at-E result without caching it.
type queryCache struct {
	entries sync.Map // signature → *cacheEntry

	mu       sync.Mutex // guards floor, size and fills
	floor    uint64
	size     int
	capacity int

	evictions *telemetry.Counter
}

// cacheEntry is one rendered response: the matched services and the
// exact JSON body the handler would write, plus the epoch it was
// computed at and the constraint that scopes its invalidation.
type cacheEntry struct {
	epoch    uint64
	max      points.Point // nil = unconstrained
	services []Service
	body     []byte
}

const defaultCacheCapacity = 512

func newQueryCache(capacity int, evictions *telemetry.Counter) *queryCache {
	if capacity <= 0 {
		capacity = defaultCacheCapacity
	}
	return &queryCache{capacity: capacity, evictions: evictions}
}

// get returns the cached entry for a signature, lock-free.
func (c *queryCache) get(sig string) *cacheEntry {
	if v, ok := c.entries.Load(sig); ok {
		return v.(*cacheEntry)
	}
	return nil
}

// put installs a freshly computed entry unless a commit newer than the
// entry's snapshot epoch has already invalidated (floor check), evicting
// an arbitrary entry first when the cache is full.
func (c *queryCache) put(sig string, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.epoch < c.floor {
		return // stale fill: a later commit already changed the answer
	}
	if _, exists := c.entries.Load(sig); !exists {
		if c.size >= c.capacity {
			c.entries.Range(func(k, _ interface{}) bool {
				c.entries.Delete(k)
				c.size--
				return false
			})
		}
		c.size++
	}
	c.entries.Store(sig, e)
}

// invalidate applies one commit: entries whose constraint admits an
// entered point are evicted, and the floor rises so in-flight fills from
// older epochs cannot resurrect them. Commits whose batch changed
// nothing visible (every publish dominated) evict nothing and leave the
// floor alone — cached results stay warm across them by design.
func (c *queryCache) invalidate(commit driver.Commit) {
	if len(commit.Entered) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if commit.Epoch > c.floor {
		c.floor = commit.Epoch
	}
	c.entries.Range(func(k, v interface{}) bool {
		e := v.(*cacheEntry)
		if entersBox(commit.Entered, e.max) {
			c.entries.Delete(k)
			c.size--
			if c.evictions != nil {
				c.evictions.Inc()
			}
		}
		return true
	})
}

// entersBox reports whether any entered point satisfies the max
// constraint (nil = unconstrained, satisfied by anything).
func entersBox(entered points.Set, max points.Point) bool {
	if max == nil {
		return len(entered) > 0
	}
	for _, p := range entered {
		if withinMax(p, max) {
			return true
		}
	}
	return false
}

// withinMax reports p[j] <= max[j] for all attributes — the "QoS demand
// ceiling" constraint shape the registry serves. (Only max bounds are
// sound on the incremental index: its working set retains every point
// that could ever re-enter a ceiling-constrained skyline, whereas points
// pruned by a dominator inside a *lower*-bounded region may be exactly
// the answer there; see the /skyline handler's rejection of min bounds.)
func withinMax(p points.Point, max points.Point) bool {
	for j, v := range p {
		if v > max[j] {
			return false
		}
	}
	return true
}
