package registry

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/partition"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := newRegistry(t)
	if _, err := r.Publish(Service{Name: "extra", QoS: []float64{-2, -2}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(context.Background(), &buf, driver.Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != r.Len() {
		t.Errorf("restored %d services, want %d", restored.Len(), r.Len())
	}
	want := r.Skyline()
	got := restored.Skyline()
	if len(got) != len(want) {
		t.Fatalf("restored skyline %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("skyline[%d] = %s, want %s", i, got[i].Name, want[i].Name)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(context.Background(), strings.NewReader(""), driver.Options{}); err == nil {
		t.Error("empty catalogue accepted")
	}
	if _, err := Load(context.Background(), strings.NewReader("{broken"), driver.Options{}); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Duplicate names in the file must be rejected by New.
	dup := `{"name":"a","qos":[1,2]}` + "\n" + `{"name":"a","qos":[3,4]}` + "\n"
	if _, err := Load(context.Background(), strings.NewReader(dup), driver.Options{}); err == nil {
		t.Error("duplicate catalogue accepted")
	}
}

func TestSaveDeterministic(t *testing.T) {
	r := newRegistry(t)
	var a, b bytes.Buffer
	if err := r.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Save output not deterministic")
	}
}
