package registry

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/driver"
	"repro/internal/partition"
)

// BenchmarkServeSkyline measures the full handler path for a cached
// skyline read, split by whether per-query attribution is on — the
// acceptance check is that the stats arm stays within 5% of nostats.
func BenchmarkServeSkyline(b *testing.B) {
	for _, arm := range []struct {
		name  string
		stats bool
	}{{"stats", true}, {"nostats", false}} {
		b.Run(arm.name, func(b *testing.B) {
			r, err := New(context.Background(), seedBench(400), driver.Options{Scheme: partition.Angular})
			if err != nil {
				b.Fatal(err)
			}
			r.EnableQueryStats(arm.stats)
			h := r.Handler()
			req := httptest.NewRequest("GET", "/skyline", nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
			}
		})
	}
}

// BenchmarkServeExplain measures the instrumented re-merge path — the
// expected cost of asking "why", for comparison against the cached read.
func BenchmarkServeExplain(b *testing.B) {
	r, err := New(context.Background(), seedBench(400), driver.Options{Scheme: partition.Angular})
	if err != nil {
		b.Fatal(err)
	}
	h := r.Handler()
	req := httptest.NewRequest("GET", "/skyline?explain=1", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
	}
}

func seedBench(n int) []Service {
	return seedServices(n)
}
