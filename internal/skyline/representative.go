package skyline

import (
	"math"

	"repro/internal/points"
)

// Representative selects k representative members of a skyline — the
// recommendation use-case the paper's introduction motivates (and its
// authors pursue in "Similarity-based Representative Skyline"): a user
// cannot inspect hundreds of Pareto-optimal services, so return a small
// subset spreading across the whole trade-off spectrum.
//
// Selection is greedy max-min (farthest-point) in the normalized attribute
// space: start from the point with the smallest normalized sum (the most
// "balanced bargain"), then repeatedly add the skyline point farthest from
// the already-chosen set. The greedy rule 2-approximates the max-min
// dispersion optimum and is deterministic.
//
// If k ≥ len(sky) the whole skyline is returned (copied).
func Representative(sky points.Set, k int) points.Set {
	if k <= 0 || len(sky) == 0 {
		return nil
	}
	if k >= len(sky) {
		return sky.Clone()
	}
	d := sky.Dim()
	min, max := sky.Bounds()
	span := make([]float64, d)
	for j := 0; j < d; j++ {
		span[j] = max[j] - min[j]
		if span[j] == 0 {
			span[j] = 1 // constant dimension: contributes nothing
		}
	}
	norm := func(p points.Point) []float64 {
		out := make([]float64, d)
		for j := 0; j < d; j++ {
			out[j] = (p[j] - min[j]) / span[j]
		}
		return out
	}
	normed := make([][]float64, len(sky))
	for i, p := range sky {
		normed[i] = norm(p)
	}

	// Seed: smallest normalized sum.
	seed := 0
	best := math.Inf(1)
	for i, v := range normed {
		s := 0.0
		for _, x := range v {
			s += x
		}
		if s < best {
			best = s
			seed = i
		}
	}

	chosen := []int{seed}
	// minDist[i] is the distance from point i to the chosen set.
	minDist := make([]float64, len(sky))
	for i := range minDist {
		minDist[i] = dist(normed[i], normed[seed])
	}
	for len(chosen) < k {
		far, farDist := -1, -1.0
		for i, dd := range minDist {
			if dd > farDist {
				far, farDist = i, dd
			}
		}
		if far < 0 || farDist == 0 {
			break // remaining points coincide with chosen ones
		}
		chosen = append(chosen, far)
		for i := range minDist {
			if dd := dist(normed[i], normed[far]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}
	out := make(points.Set, 0, len(chosen))
	for _, i := range chosen {
		out = append(out, sky[i].Clone())
	}
	return out
}

func dist(a, b []float64) float64 {
	s := 0.0
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return math.Sqrt(s)
}
