package skyline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
)

func antiChain(n int) points.Set {
	s := make(points.Set, n)
	for i := range s {
		s[i] = points.Point{float64(i), float64(n - i)}
	}
	return s
}

func TestRepresentativeBasics(t *testing.T) {
	sky := antiChain(50)
	got := Representative(sky, 5)
	if len(got) != 5 {
		t.Fatalf("got %d representatives, want 5", len(got))
	}
	for _, p := range got {
		if !sky.Contains(p) {
			t.Errorf("representative %v not a skyline member", p)
		}
	}
	// No duplicates among representatives.
	if len(got.Dedup()) != len(got) {
		t.Error("duplicate representatives")
	}
}

func TestRepresentativeEdges(t *testing.T) {
	sky := antiChain(10)
	if got := Representative(sky, 0); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
	if got := Representative(nil, 3); got != nil {
		t.Errorf("empty skyline gave %v", got)
	}
	got := Representative(sky, 100)
	if len(got) != 10 {
		t.Errorf("k>n gave %d points", len(got))
	}
	got[0][0] = -99
	if sky[0][0] == -99 {
		t.Error("k>n result aliases input")
	}
	if got := Representative(sky, 1); len(got) != 1 {
		t.Errorf("k=1 gave %d", len(got))
	}
}

func TestRepresentativeSpreads(t *testing.T) {
	// Representatives must cover the spectrum: with k=3 on a 0..99
	// anti-chain, the chosen x-coordinates should span most of the range.
	sky := antiChain(100)
	got := Representative(sky, 3)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range got {
		lo = math.Min(lo, p[0])
		hi = math.Max(hi, p[0])
	}
	if hi-lo < 70 {
		t.Errorf("representatives span only [%g, %g] of 0..99", lo, hi)
	}
}

func TestRepresentativeMaxMinQuality(t *testing.T) {
	// Greedy max-min is a 2-approximation; sanity-check that the chosen
	// set's min pairwise distance is at least half of the best found by
	// random search.
	rng := rand.New(rand.NewSource(41))
	s := make(points.Set, 60)
	for i := range s {
		x := rng.Float64()
		s[i] = points.Point{x, 1 - x + 0.001*rng.Float64()}
	}
	sky := BNL(s)
	if len(sky) < 10 {
		t.Skip("skyline too small for the quality check")
	}
	const k = 4
	got := Representative(sky, k)
	gotScore := minPairDist(got)
	bestRandom := 0.0
	for trial := 0; trial < 2000; trial++ {
		idx := rng.Perm(len(sky))[:k]
		var cand points.Set
		for _, i := range idx {
			cand = append(cand, sky[i])
		}
		if s := minPairDist(cand); s > bestRandom {
			bestRandom = s
		}
	}
	if gotScore < bestRandom/2 {
		t.Errorf("greedy min-dist %g below half of random-search best %g", gotScore, bestRandom)
	}
}

func minPairDist(s points.Set) float64 {
	best := math.Inf(1)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			d := 0.0
			for x := range s[i] {
				dd := s[i][x] - s[j][x]
				d += dd * dd
			}
			best = math.Min(best, math.Sqrt(d))
		}
	}
	return best
}

func TestRepresentativeAllDuplicates(t *testing.T) {
	sky := points.Set{{1, 1}, {1, 1}, {1, 1}}
	got := Representative(sky, 2)
	if len(got) != 1 {
		t.Errorf("coincident points gave %d representatives, want 1", len(got))
	}
}

func TestRepresentativeConstantDimension(t *testing.T) {
	// One dimension constant across the skyline must not produce NaNs.
	sky := points.Set{{0, 5, 1}, {1, 5, 0.5}, {2, 5, 0.2}}
	got := Representative(sky, 2)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
	for _, p := range got {
		if p.Validate() != nil {
			t.Errorf("invalid representative %v", p)
		}
	}
}
