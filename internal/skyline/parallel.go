package skyline

import (
	"runtime"
	"sync"

	"repro/internal/points"
)

// Parallel computes the skyline on shared memory with `workers`
// goroutines: the input is chunked, each chunk's skyline is computed
// concurrently with BNL, and the partial skylines are merged with a final
// BNL pass — the divide-and-merge structure of the MapReduce pipeline
// without the framework, useful as a single-machine fast path and as a
// baseline when measuring the engine's overhead. workers ≤ 0 selects
// GOMAXPROCS.
func Parallel(s points.Set, workers int) points.Set {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(s) < 2*workers || len(s) < 64 {
		return BNL(s)
	}
	chunk := (len(s) + workers - 1) / workers
	partials := make([]points.Set, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(s) {
			break
		}
		hi := lo + chunk
		if hi > len(s) {
			hi = len(s)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = BNL(s[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	var merged points.Set
	for _, p := range partials {
		merged = append(merged, p...)
	}
	return BNL(merged)
}
