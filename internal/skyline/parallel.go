package skyline

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/points"
)

// parallelCutoff is the input size below which Parallel runs the flat
// sequential kernel instead of fanning out. Measured with
// BenchmarkMergeTree/BenchmarkLocalSkyline on the benchmark machine (see
// BENCH_kernels.json): below ~256 points the goroutine spawn plus the
// merge-tree cross-filters cost more than the saved kernel time; the old
// 64-point cutoff left 64–256 in a regime where fan-out still lost.
const parallelCutoff = 256

// normWorkers resolves a caller-supplied worker count: non-positive means
// GOMAXPROCS, and every request is capped at GOMAXPROCS — the kernels are
// pure CPU, so goroutines beyond the core count only add scheduling
// overhead (and on one core they would force the tournament merge, which
// does strictly more comparisons than the sequential fold).
func normWorkers(workers int) int {
	g := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers > g {
		return g
	}
	return workers
}

// Parallel computes the skyline on shared memory with `workers`
// goroutines: the input is copied into one flat block, each chunk's
// skyline is computed concurrently with the block BNL kernel, and the
// partial skylines are folded by the parallel merge tree — the
// divide-and-merge structure of the MapReduce pipeline without the
// framework, useful as a single-machine fast path and as a baseline when
// measuring the engine's overhead. workers ≤ 0 selects GOMAXPROCS.
func Parallel(s points.Set, workers int) points.Set {
	return ParallelCtx(context.Background(), s, workers)
}

// ParallelCtx is Parallel with a context: a telemetry tracer in ctx
// receives one span per merge-tree level.
func ParallelCtx(ctx context.Context, s points.Set, workers int) points.Set {
	workers = normWorkers(workers)
	if workers == 1 || len(s) < 2*workers || len(s) < parallelCutoff {
		return FlatBNL(s)
	}
	src, ok := points.BlockOf(s)
	if !ok {
		// Mixed dimensionalities: only the classic kernels handle them.
		return BNL(s)
	}
	return ParallelBlock(ctx, src, workers).ToSet()
}

// ParallelBlock is the flat-path core shared by ParallelCtx and the
// merging-job reducers: chunk the block across workers goroutines, run
// the block BNL on each chunk, then fold the partial skylines with the
// parallel merge tree. The input block is read, never mutated.
func ParallelBlock(ctx context.Context, src *points.Block, workers int) *points.Block {
	workers = normWorkers(workers)
	n := src.Len()
	if workers == 1 || n < 2*workers || n < parallelCutoff {
		return BlockBNL(src)
	}
	chunk := (n + workers - 1) / workers
	partials := make([]*points.Block, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		partials = append(partials, src.Slice(lo, hi))
	}
	var wg sync.WaitGroup
	for i, part := range partials {
		wg.Add(1)
		go func(i int, part *points.Block) {
			defer wg.Done()
			partials[i] = BlockBNL(part)
		}(i, part)
	}
	wg.Wait()
	return mergeTree(ctx, partials, workers)
}
