package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/points"
)

func TestParallelMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(5)
		n := 1 + rng.Intn(800)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = float64(rng.Intn(10))
			}
			s[i] = p
		}
		want := Naive(s)
		for _, workers := range []int{0, 1, 2, 7, 32} {
			got := Parallel(s, workers)
			if !sameMultiset(got, want) {
				t.Fatalf("trial %d workers=%d: %d points, oracle %d", trial, workers, len(got), len(want))
			}
		}
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	if got := Parallel(nil, 4); len(got) != 0 {
		t.Errorf("nil gave %v", got)
	}
	got := Parallel(points.Set{{1, 2}}, 8)
	if len(got) != 1 {
		t.Errorf("singleton gave %v", got)
	}
}

func TestParallelDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := make(points.Set, 500)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64()}
	}
	orig := s.Clone()
	Parallel(s, 4)
	for i := range s {
		if !s[i].Equal(orig[i]) {
			t.Fatalf("input mutated at %d", i)
		}
	}
}

func BenchmarkParallelVsSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(63))
	s := make(points.Set, 20000)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BNL(s)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Parallel(s, 0)
		}
	})
}
