package skyline

// The parallel merge tree. The paper funnels every local skyline through a
// single reducer (one sequential BNL over the union); Ciaccia &
// Martinenghi and Goodrich et al. both observe that the merge round itself
// parallelizes. This file implements a tournament tree over partial
// skylines with two pairwise-merge strategies:
//
//   - seeded BNL (MergeBlocks): the window starts as the larger side and
//     the smaller side streams through it — half the comparisons of a
//     naive cross-filter, and evictions shrink the window as the merge
//     proceeds. Used when a pair is small or no spare workers exist.
//
//   - parallel cross-filter (mergeBlocksParallel): each side's rows are
//     filtered against the whole other side, split across goroutines.
//     More total comparisons than seeded BNL but embarrassingly parallel,
//     which is what the upper tree levels need: the root level has one
//     pair and would otherwise run on one core.
//
// mergeTree divides the worker budget by the level's pair count, so the
// leaf levels parallelize across pairs and the root parallelizes inside
// its single pair. Each level records a "merge-level" telemetry span so
// Fig. 6-style breakdowns see where merge time goes.

import (
	"context"
	"sort"
	"sync"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// parallelMergeCutoff is the |A|·|B| comparison volume below which a
// pairwise merge stays sequential even when spare workers exist — under
// it, goroutine startup outweighs the filter work.
const parallelMergeCutoff = 1 << 14

// MergeBlocks merges two partial skylines into one with a seeded BNL:
// the window starts as the larger side, the smaller side streams through
// it. Both inputs must already be skylines of their own chunks and share
// one dimension; coordinate-equal duplicates across the two sides are all
// retained, matching BNL's classical duplicate behaviour. Neither input
// is mutated.
func MergeBlocks(a, b *points.Block) *points.Block {
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	if a.Len() < b.Len() {
		a, b = b, a
	}
	win := a.Clone()
	tests := int64(0)
	bn := b.Len()
	for i := 0; i < bn; i++ {
		tests += scanWindow(win, b.Row(i))
	}
	dominanceTests.Add(tests)
	return win
}

// foldBlocks merges partial skylines sequentially with one shared BNL
// window, streaming the union in ascending monotone-sum order. The presort
// sends the strongest dominators through first, so rows destined to die do
// so within a few tests and window evictions all but vanish — on
// union-of-skylines input this roughly halves the fold's wall time versus
// streaming in partial order. Unlike a pure SFS filter the eviction logic
// stays, so floating-point ties in the sum key can never admit a dominated
// row.
func foldBlocks(parts []*points.Block) *points.Block {
	total := 0
	for _, part := range parts {
		total += part.Len()
	}
	u := points.NewBlock(parts[0].Dim(), total)
	for _, part := range parts {
		u.AppendBlock(part)
	}
	n := u.Len()
	keys := make([]float64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range u.Row(i) {
			s += v
		}
		keys[i] = s
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	win := points.NewBlock(u.Dim(), 16)
	tests := int64(0)
	for _, i := range order {
		tests += scanWindow(win, u.Row(i))
	}
	dominanceTests.Add(tests)
	return win
}

// filterRows appends to out the rows of src in [lo, hi) not strictly
// dominated by any row of against, and returns the dominance-test count.
// src and against are skylines of disjoint chunks, so within-side
// dominance cannot occur and the two directions are independent.
func filterRows(src *points.Block, lo, hi int, against *points.Block, rel relFunc, out *points.Block) int64 {
	tests := int64(0)
	an := against.Len()
	for i := lo; i < hi; i++ {
		p := src.Row(i)
		dominated := false
		for j := 0; j < an; j++ {
			tests++
			if rel(against.Row(j), p) == LeftDominates {
				dominated = true
				break
			}
		}
		if !dominated {
			out.AppendRow(p)
		}
	}
	return tests
}

// mergeBlocksParallel is the worker-rich pairwise merge: both sides'
// survivors are computed as independent cross-filters, each side split
// across goroutines. workers is the budget for this one pair.
func mergeBlocksParallel(a, b *points.Block, workers int) *points.Block {
	if workers <= 1 || a.Len()*b.Len() < parallelMergeCutoff {
		return MergeBlocks(a, b)
	}
	if a.Len() == 0 {
		return b
	}
	if b.Len() == 0 {
		return a
	}
	rel := RelationKernel(a.Dim())
	// One shard per worker, allotted to the two sides by their share of
	// the total rows (each side needs at least one shard).
	total := a.Len() + b.Len()
	aShards := workers * a.Len() / total
	if aShards < 1 {
		aShards = 1
	}
	if aShards >= workers {
		aShards = workers - 1
	}
	bShards := workers - aShards
	type shard struct {
		src, against *points.Block
		lo, hi       int
		out          *points.Block
	}
	shards := make([]shard, 0, workers)
	plan := func(src, against *points.Block, n int) {
		size := (src.Len() + n - 1) / n
		for lo := 0; lo < src.Len(); lo += size {
			hi := lo + size
			if hi > src.Len() {
				hi = src.Len()
			}
			shards = append(shards, shard{src: src, against: against, lo: lo, hi: hi,
				out: points.NewBlock(src.Dim(), hi-lo)})
		}
	}
	plan(a, b, aShards)
	plan(b, a, bShards)
	var wg sync.WaitGroup
	tests := make([]int64, len(shards))
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := &shards[i]
			tests[i] = filterRows(s.src, s.lo, s.hi, s.against, rel, s.out)
		}(i)
	}
	wg.Wait()
	out := points.NewBlock(a.Dim(), a.Len()+b.Len())
	var sum int64
	for i := range shards {
		out.AppendBlock(shards[i].out)
		sum += tests[i]
	}
	dominanceTests.Add(sum)
	return out
}

// mergeTree folds partial skyline blocks pairwise — level 0 merges
// neighbours, level 1 merges the results, and so on until one block
// remains. Every level splits the worker budget over its pairs: many
// small merges run side by side at the leaves, and the root's single
// merge fans its cross-filter across the whole budget instead of
// serializing on one core.
//
// With a budget of one worker the tournament is strictly worse than a
// left fold: each point then streams through log₂(k) windows instead of
// one, with no parallelism to pay for the repeat visits. So workers == 1
// degenerates to a sequential seeded-BNL fold (one span, one level) —
// exactly a flat BNL over the union, which is the fastest single-core
// merge we have.
func mergeTree(ctx context.Context, parts []*points.Block, workers int) *points.Block {
	if len(parts) == 0 {
		return points.NewBlock(0, 0)
	}
	if workers < 1 {
		workers = 1
	}
	if workers == 1 && len(parts) > 1 {
		_, span := telemetry.StartSpan(ctx, "merge-level",
			telemetry.A("level", 0),
			telemetry.A("blocks", len(parts)))
		acc := foldBlocks(parts)
		span.End()
		return acc
	}
	for level := 0; len(parts) > 1; level++ {
		_, span := telemetry.StartSpan(ctx, "merge-level",
			telemetry.A("level", level),
			telemetry.A("blocks", len(parts)))
		pairs := len(parts) / 2
		perPair := workers / pairs
		if perPair < 1 {
			perPair = 1
		}
		next := make([]*points.Block, (len(parts)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(parts); i += 2 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i/2] = mergeBlocksParallel(parts[i], parts[i+1], perPair)
			}(i)
		}
		wg.Wait()
		if len(parts)%2 == 1 {
			next[len(next)-1] = parts[len(parts)-1]
		}
		parts = next
		span.End()
	}
	return parts[0]
}

// MergeSkylines merges partial skylines (each the exact skyline of its own
// chunk, all of one dimension) into the global skyline with the parallel
// merge tree. workers ≤ 0 selects GOMAXPROCS; a tracer in ctx receives one
// span per merge level. Partials that are not genuine skylines of disjoint
// chunks yield undefined results — use Parallel for arbitrary input.
func MergeSkylines(ctx context.Context, partials []points.Set, workers int) points.Set {
	blocks := make([]*points.Block, 0, len(partials))
	for _, s := range partials {
		if len(s) == 0 {
			continue
		}
		b, ok := points.BlockOf(s)
		if !ok {
			// Mixed dimensionality: fall back to the classic sequential
			// merge, which tolerates it.
			var union points.Set
			for _, p := range partials {
				union = append(union, p...)
			}
			return BNL(union)
		}
		blocks = append(blocks, b)
	}
	if len(blocks) == 0 {
		return points.Set{}
	}
	return mergeTree(ctx, blocks, normWorkers(workers)).ToSet()
}
