package skyline

import (
	"fmt"

	"repro/internal/points"
)

// Skyband computes the k-skyband: the points dominated by fewer than k
// other points. The 1-skyband is exactly the skyline. The operator is the
// natural QoS-tolerant extension the paper's conclusion gestures at for
// further research — a client willing to accept "almost optimal" services
// asks for the k-skyband instead of the skyline, trading optimality for
// choice.
//
// Coordinate-equal duplicates do not dominate each other, mirroring the
// dominance convention used everywhere in this repository. k must be
// ≥ 1.
func Skyband(s points.Set, k int) (points.Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("skyline: skyband k = %d, need >= 1", k)
	}
	out := make(points.Set, 0, 16)
	for i, p := range s {
		dominators := 0
		for j, q := range s {
			if i == j {
				continue
			}
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			out = append(out, p)
		}
	}
	return out, nil
}

// DominanceCounts returns, for every point of s, how many other points
// dominate it — the raw quantity behind the k-skyband and the paper's
// point-count dominance-ability metric.
func DominanceCounts(s points.Set) []int {
	counts := make([]int, len(s))
	for i, p := range s {
		for j, q := range s {
			if i == j {
				continue
			}
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				counts[i]++
			}
		}
	}
	return counts
}

// TopKDominating returns the k points that dominate the most other points
// — the "most influential services" query, the aggregate dual of the
// skyline (the paper's §IV dominance-ability metric turned into an
// operator). Ties break toward earlier input position for determinism.
func TopKDominating(s points.Set, k int) points.Set {
	if k <= 0 || len(s) == 0 {
		return nil
	}
	if k > len(s) {
		k = len(s)
	}
	type scored struct {
		idx, dominated int
	}
	scores := make([]scored, len(s))
	for i, p := range s {
		n := 0
		for j, q := range s {
			if i == j {
				continue
			}
			if points.DominatesOrEqual(p, q) && !p.Equal(q) {
				n++
			}
		}
		scores[i] = scored{idx: i, dominated: n}
	}
	// Partial selection: k is small; simple selection sort of the top k.
	for a := 0; a < k; a++ {
		best := a
		for b := a + 1; b < len(scores); b++ {
			if scores[b].dominated > scores[best].dominated ||
				(scores[b].dominated == scores[best].dominated && scores[b].idx < scores[best].idx) {
				best = b
			}
		}
		scores[a], scores[best] = scores[best], scores[a]
	}
	out := make(points.Set, k)
	for i := 0; i < k; i++ {
		out[i] = s[scores[i].idx]
	}
	return out
}
