package skyline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/points"
)

// canonical renders a block as sorted row strings so two skylines can be
// compared as multisets regardless of row order.
func canonical(b *points.Block) []string {
	out := make([]string, b.Len())
	for i := 0; i < b.Len(); i++ {
		out[i] = fmt.Sprintf("%x", b.Row(i))
	}
	sort.Strings(out)
	return out
}

func randBlock(rng *rand.Rand, n, d int, anti bool) *points.Block {
	blk := points.NewBlock(d, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		if anti {
			// Anti-correlated-ish: large skyline, stresses the window.
			s := rng.Float64()
			for j := 0; j < d; j++ {
				row[j] = s + rng.NormFloat64()*0.05
				if j > 0 {
					row[j] = 1 - row[j-1] + rng.NormFloat64()*0.05
				}
			}
		} else {
			for j := 0; j < d; j++ {
				row[j] = rng.Float64()
			}
		}
		blk.AppendRow(row)
	}
	return blk
}

func TestBudgetedFoldOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, tc := range []struct {
		name   string
		n, d   int
		anti   bool
		budget int64
		codec  points.FrameCodec
	}{
		{"ample", 2000, 4, false, 1 << 20, points.FrameDefault},
		{"tight", 2000, 4, false, 4 * 8 * 8, points.FrameAuto}, // 8-row window
		{"one-row-window", 500, 3, false, 1, points.FrameV2},   // clamps to 1 row
		{"anti-tight", 1500, 5, true, 5 * 8 * 16, points.FrameAuto},
		{"anti-ample", 1500, 5, true, 1 << 20, points.FrameV1},
		{"d2-tiny", 800, 2, false, 2 * 8 * 4, points.FrameAuto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blk := randBlock(rng, tc.n, tc.d, tc.anti)
			want := canonical(BlockBNL(blk))

			fold := NewBudgetedFold(tc.d, tc.budget, t.TempDir(), tc.codec)
			// Feed in uneven chunks to exercise the streaming path.
			for lo := 0; lo < blk.Len(); {
				hi := lo + 1 + rng.Intn(97)
				if hi > blk.Len() {
					hi = blk.Len()
				}
				if err := fold.Absorb(blk.Slice(lo, hi)); err != nil {
					t.Fatalf("Absorb: %v", err)
				}
				lo = hi
			}
			got, err := fold.Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			gotC := canonical(got)
			if len(gotC) != len(want) {
				t.Fatalf("skyline size %d, want %d (passes=%d)", len(gotC), len(want), fold.Stats().Passes)
			}
			for i := range want {
				if gotC[i] != want[i] {
					t.Fatalf("skyline mismatch at %d (passes=%d)", i, fold.Stats().Passes)
				}
			}
			st := fold.Stats()
			if st.PeakBytes <= 0 {
				t.Fatal("peak bytes not recorded")
			}
			wantSkyline := len(want)
			winRows := int(tc.budget / int64(tc.d*8))
			if winRows < 1 {
				winRows = 1
			}
			if wantSkyline > winRows && st.Passes < 2 {
				t.Fatalf("skyline %d exceeds %d-row window but only %d pass(es)", wantSkyline, winRows, st.Passes)
			}
			if st.Passes > 1 && st.OverflowPoints == 0 {
				t.Fatal("multi-pass run reported no overflow points")
			}
		})
	}
}

func TestBudgetedFoldDuplicates(t *testing.T) {
	// Duplicate skyline rows must be retained, matching the in-memory
	// kernels, even across overflow passes.
	blk := points.NewBlock(3, 0)
	for i := 0; i < 6; i++ {
		blk.AppendRow([]float64{0.1, 0.2, 0.3})
	}
	for i := 0; i < 50; i++ {
		blk.AppendRow([]float64{0.5 + float64(i)*0.001, 0.5, 0.5})
	}
	want := canonical(BlockBNL(blk))

	fold := NewBudgetedFold(3, 3*8*2, t.TempDir(), points.FrameAuto) // 2-row window
	if err := fold.Absorb(blk); err != nil {
		t.Fatal(err)
	}
	got, err := fold.Finish()
	if err != nil {
		t.Fatal(err)
	}
	gotC := canonical(got)
	if len(gotC) != len(want) {
		t.Fatalf("got %d rows, want %d (duplicates dropped?)", len(gotC), len(want))
	}
	for i := range want {
		if gotC[i] != want[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestBudgetedFoldEmptyAndMisuse(t *testing.T) {
	fold := NewBudgetedFold(4, 1<<16, t.TempDir(), points.FrameDefault)
	got, err := fold.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty fold produced %d rows", got.Len())
	}
	if _, err := fold.Finish(); err == nil {
		t.Fatal("second Finish did not error")
	}
	if err := fold.AbsorbRow([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("Absorb after Finish did not error")
	}
}
