package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/points"
)

func TestNearestNeighborMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(5)
		n := 1 + rng.Intn(400)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = float64(rng.Intn(9))
			}
			s[i] = p
		}
		want := Naive(s)
		got := NearestNeighbor(s)
		if !sameMultiset(got, want) {
			t.Fatalf("trial %d d=%d n=%d: NN got %d, oracle %d", trial, d, n, len(got), len(want))
		}
	}
}

func TestNearestNeighborPaperExample(t *testing.T) {
	all, want := paperExample()
	got := NearestNeighbor(all)
	if !sameMultiset(got, want) {
		t.Errorf("NN on Figure 1: got %v", got)
	}
}

func TestNearestNeighborEdges(t *testing.T) {
	if got := NearestNeighbor(nil); len(got) != 0 {
		t.Errorf("nil input gave %v", got)
	}
	got := NearestNeighbor(points.Set{{3, 3}})
	if len(got) != 1 {
		t.Errorf("singleton gave %v", got)
	}
	// All duplicates.
	got = NearestNeighbor(points.Set{{1, 1}, {1, 1}, {1, 1}})
	if len(got) != 3 {
		t.Errorf("duplicates gave %d, want 3", len(got))
	}
}

func TestNNPivotIsUndominated(t *testing.T) {
	// §IV's claim: the nearest neighbor to the ideal corner is skyline.
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 200; trial++ {
		n := 20 + rng.Intn(100)
		s := make(points.Set, n)
		for i := range s {
			s[i] = points.Point{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		}
		min, max := s.Bounds()
		span := []float64{max[0] - min[0], max[1] - min[1], max[2] - min[2]}
		for j := range span {
			if span[j] == 0 {
				span[j] = 1
			}
		}
		pivot, best := 0, 1e18
		for i, p := range s {
			dist := 0.0
			for j := range p {
				v := (p[j] - min[j]) / span[j]
				dist += v * v
			}
			if dist < best {
				best, pivot = dist, i
			}
		}
		for i, q := range s {
			if i != pivot && points.Dominates(q, s[pivot]) {
				t.Fatalf("nearest neighbor %v dominated by %v", s[pivot], q)
			}
		}
	}
}

func TestSkyband(t *testing.T) {
	// Chain: (0,0) < (1,1) < (2,2) < (3,3).
	s := points.Set{{3, 3}, {1, 1}, {0, 0}, {2, 2}}
	for k := 1; k <= 4; k++ {
		got, err := Skyband(s, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Errorf("k=%d: %d points, want %d (chain prefix)", k, len(got), k)
		}
	}
	if _, err := Skyband(s, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestSkyband1EqualsSkyline(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	s := make(points.Set, 300)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	band, err := Skyband(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(band, Naive(s)) {
		t.Error("1-skyband differs from skyline")
	}
}

func TestSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	s := make(points.Set, 200)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64()}
	}
	prev := 0
	for k := 1; k <= 5; k++ {
		band, err := Skyband(s, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(band) < prev {
			t.Errorf("skyband shrank from %d to %d at k=%d", prev, len(band), k)
		}
		prev = len(band)
	}
	// k = n covers everything.
	band, err := Skyband(s, len(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(band) != len(s) {
		t.Errorf("k=n skyband has %d of %d points", len(band), len(s))
	}
}

func TestDominanceCounts(t *testing.T) {
	s := points.Set{{0, 0}, {1, 1}, {2, 2}, {0, 3}}
	got := DominanceCounts(s)
	want := []int{0, 1, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Duplicates do not dominate each other.
	s = points.Set{{1, 1}, {1, 1}}
	got = DominanceCounts(s)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("duplicate counts = %v", got)
	}
}

func TestTopKDominating(t *testing.T) {
	// (0,0) dominates 3, (1,1) dominates 2, (2,2) dominates 1, (3,3) none.
	s := points.Set{{3, 3}, {1, 1}, {0, 0}, {2, 2}}
	got := TopKDominating(s, 2)
	if len(got) != 2 || !got[0].Equal(points.Point{0, 0}) || !got[1].Equal(points.Point{1, 1}) {
		t.Errorf("TopKDominating = %v", got)
	}
	if got := TopKDominating(s, 0); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
	if got := TopKDominating(nil, 3); got != nil {
		t.Errorf("empty gave %v", got)
	}
	if got := TopKDominating(s, 99); len(got) != 4 {
		t.Errorf("k>n gave %d points", len(got))
	}
}

func TestTopKDominatingDeterministicTies(t *testing.T) {
	// Two incomparable points each dominating one other: ties resolve by
	// input order.
	s := points.Set{{1, 5}, {5, 1}, {2, 6}, {6, 2}}
	got := TopKDominating(s, 2)
	if !got[0].Equal(points.Point{1, 5}) || !got[1].Equal(points.Point{5, 1}) {
		t.Errorf("tie-break order = %v", got)
	}
}
