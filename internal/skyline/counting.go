package skyline

import (
	"sync/atomic"

	"repro/internal/points"
)

// Counter tallies dominance comparisons, for validating analytic cost
// models (the cluster simulator estimates BNL cost as n·s/2 comparisons).
// Safe for concurrent use.
type Counter struct {
	n int64
}

// Comparisons returns the tally.
func (c *Counter) Comparisons() int64 { return atomic.LoadInt64(&c.n) }

// Counting wraps a window-based BNL that counts every dominance
// comparison into c and returns the skyline. Semantics match BNL exactly.
func Counting(c *Counter) Func {
	return func(s points.Set) points.Set {
		window := make(points.Set, 0, 16)
		local := int64(0)
		for _, p := range s {
			dominated := false
			w := window[:0]
			for _, q := range window {
				if dominated {
					w = append(w, q)
					continue
				}
				local++
				if points.DominatesOrEqual(q, p) && !q.Equal(p) {
					dominated = true
					w = append(w, q)
					continue
				}
				if !points.Dominates(p, q) {
					w = append(w, q)
				}
			}
			window = w
			if !dominated {
				window = append(window, p)
			}
		}
		atomic.AddInt64(&c.n, local)
		return window
	}
}
