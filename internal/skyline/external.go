package skyline

import (
	"fmt"

	"repro/internal/points"
)

// BNLExternal is the original block-nested-loops algorithm of Börzsönyi
// et al. for memory-constrained settings: the window holds at most
// windowSize candidate points; points that neither die nor fit are
// written to an overflow list (the disk temp file of the original) and
// processed in a later pass. A single global event clock stamps every
// window insertion and overflow write; a window point may be emitted as
// skyline once its stamp proves it has been compared against every point
// still alive:
//
//   - mid-pass (reading overflow from a previous pass): a window point
//     stamped before the current record was written has met every record
//     that follows it in the file;
//   - end of pass: a window point stamped before the pass's first
//     overflow write has met everything.
//
// With windowSize ≥ |skyline| it performs one pass and matches BNL; with
// a tiny window it still terminates with the exact skyline at the cost of
// extra passes — mirroring the disk-spill behaviour of the paper-era
// implementation. windowSize must be ≥ 1.
func BNLExternal(s points.Set, windowSize int) (points.Set, error) {
	if windowSize < 1 {
		return nil, fmt.Errorf("skyline: window size %d, need >= 1", windowSize)
	}

	type stamped struct {
		p  points.Point
		in int // event-clock stamp: window entry or overflow write
	}

	tick := 0
	var result points.Set
	window := make([]stamped, 0, windowSize)

	// Pass 0 reads the raw input (unstamped); later passes read the
	// previous pass's overflow, whose stamps are write times.
	input := make([]stamped, len(s))
	for i, p := range s {
		input[i] = stamped{p: p, in: -1}
	}

	for pass := 0; len(input) > 0; pass++ {
		var overflow []stamped
		for _, cur := range input {
			dominated := false
			w := window[:0]
			for _, q := range window {
				if dominated {
					w = append(w, q)
					continue
				}
				if points.DominatesOrEqual(q.p, cur.p) && !q.p.Equal(cur.p) {
					dominated = true
					w = append(w, q)
					continue
				}
				if !points.Dominates(cur.p, q.p) {
					w = append(w, q)
				}
			}
			window = w
			if dominated {
				continue
			}
			if len(window) >= windowSize && pass > 0 {
				// Reading from overflow: emit window points proven done —
				// stamped before this record was written, hence already
				// compared with every record that follows it.
				w := window[:0]
				for _, q := range window {
					if q.in < cur.in {
						result = append(result, q.p)
					} else {
						w = append(w, q)
					}
				}
				window = w
			}
			if len(window) < windowSize {
				window = append(window, stamped{p: cur.p, in: tick})
				tick++
				continue
			}
			overflow = append(overflow, stamped{p: cur.p, in: tick})
			tick++
		}
		// End of pass: window points stamped before the first overflow
		// write have been compared against everything still alive.
		if len(overflow) == 0 {
			break
		}
		first := overflow[0].in
		survivors := window[:0]
		for _, q := range window {
			if q.in < first {
				result = append(result, q.p)
			} else {
				survivors = append(survivors, q)
			}
		}
		window = survivors
		input = overflow
	}
	for _, q := range window {
		result = append(result, q.p)
	}
	return result, nil
}
