// Package skyline implements sequential skyline (maxima-of-a-vector-set)
// algorithms over point sets under the minimization convention.
//
// The paper's MapReduce methods use the Block-Nested-Loops algorithm (BNL,
// Börzsönyi et al., ICDE 2001) as the local and global skyline kernel; this
// package additionally provides Sort-Filter-Skyline (SFS) and a
// divide-and-conquer algorithm, used both as ablation kernels and as
// cross-checking oracles in tests.
package skyline

import (
	"sort"

	"repro/internal/points"
)

// Algorithm identifies a sequential skyline kernel.
type Algorithm int

const (
	// BNLAlgorithm is the block-nested-loops kernel (the paper's choice).
	BNLAlgorithm Algorithm = iota
	// SFSAlgorithm is sort-filter-skyline: presort by a monotone score,
	// then a single filtering pass against the growing skyline window.
	SFSAlgorithm
	// DCAlgorithm is a divide-and-conquer kernel.
	DCAlgorithm
	// NaiveAlgorithm is the O(n²) all-pairs oracle, exported for testing
	// and for tiny inputs.
	NaiveAlgorithm
)

// String returns the conventional name of the algorithm.
func (a Algorithm) String() string {
	switch a {
	case BNLAlgorithm:
		return "BNL"
	case SFSAlgorithm:
		return "SFS"
	case DCAlgorithm:
		return "D&C"
	case NaiveAlgorithm:
		return "Naive"
	default:
		return "Unknown"
	}
}

// Func is the signature shared by all sequential skyline kernels: it
// returns the subset of s not dominated by any other point of s. The
// classic kernels return references to (not copies of) the input points;
// the flat-memory kernels (FlatBNL, FlatSFS) return fresh coordinate-equal
// points, and their result order is unspecified. Duplicate
// coordinate-equal points are all retained if undominated, matching BNL's
// classical behaviour.
type Func func(s points.Set) points.Set

// ByAlgorithm returns the kernel implementing a. It panics on an unknown
// algorithm value, which indicates programmer error.
func ByAlgorithm(a Algorithm) Func {
	switch a {
	case BNLAlgorithm:
		return BNL
	case SFSAlgorithm:
		return SFS
	case DCAlgorithm:
		return DivideConquer
	case NaiveAlgorithm:
		return Naive
	default:
		panic("skyline: unknown algorithm " + a.String())
	}
}

// BNL computes the skyline with the block-nested-loops algorithm: maintain
// a window of current skyline candidates; each incoming point is dropped if
// dominated by a window point, otherwise it evicts every window point it
// dominates and joins the window. With the whole input in memory a single
// pass suffices (no temp-file iterations are needed, unlike disk-based
// BNL).
func BNL(s points.Set) points.Set {
	window := make(points.Set, 0, 16)
	for _, p := range s {
		dominated := false
		w := window[:0]
		for _, q := range window {
			if dominated {
				w = append(w, q)
				continue
			}
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				// q dominates p: p dies; keep the remaining window as-is.
				dominated = true
				w = append(w, q)
				continue
			}
			if !points.Dominates(p, q) {
				w = append(w, q)
			}
		}
		window = w
		if !dominated {
			window = append(window, p)
		}
	}
	return window
}

// SFS computes the skyline by first sorting on the monotone sum score and
// then filtering: once sorted, no later point can dominate an earlier one,
// so each point is only compared against the already-accepted skyline.
// The sum key is computed once per point into a slice — calling Sum()
// inside the comparator would redo the O(d) reduction O(n log n) times.
func SFS(s points.Set) points.Set {
	keys := make([]float64, len(s))
	order := make([]int, len(s))
	for i, p := range s {
		keys[i] = p.Sum()
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return keys[order[i]] < keys[order[j]]
	})
	sky := make(points.Set, 0, 16)
	for _, i := range order {
		p := s[i]
		dominated := false
		for _, q := range sky {
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, p)
		}
	}
	return sky
}

// DivideConquer computes the skyline by splitting the input in two halves
// at the median of the first dimension, recursing, and merging: points of
// the high half survive only if not dominated by a surviving point of the
// low half.
func DivideConquer(s points.Set) points.Set {
	if len(s) <= 32 {
		return BNL(s)
	}
	sorted := make(points.Set, len(s))
	copy(sorted, s)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i][0] < sorted[j][0]
	})
	return dcRec(sorted)
}

func dcRec(s points.Set) points.Set {
	if len(s) <= 32 {
		return BNL(s)
	}
	mid := len(s) / 2
	low := dcRec(s[:mid])
	high := dcRec(s[mid:])
	// Every low-half point precedes every high-half point on dim 0, so no
	// high point dominates a low point unless coordinate-equal ties exist;
	// a full dominance check against the low skyline is still required for
	// the high points.
	merged := make(points.Set, 0, len(low)+len(high))
	merged = append(merged, low...)
	for _, p := range high {
		dominated := false
		for _, q := range low {
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			merged = append(merged, p)
		}
	}
	// Ties on dim 0 across the split can let a "high" point dominate a
	// "low" point; a final BNL pass restores exactness at negligible cost
	// because merged is already near-skyline.
	return BNL(merged)
}

// Naive computes the skyline by comparing all pairs; O(n²) but trivially
// correct, used as the oracle in tests and for tiny inputs.
func Naive(s points.Set) points.Set {
	out := make(points.Set, 0, 16)
	for i, p := range s {
		dominated := false
		for j, q := range s {
			if i == j {
				continue
			}
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// IsSkylineOf reports whether sky is exactly the skyline of s: every sky
// member is undominated in s, and every undominated point of s appears in
// sky (as a coordinate-equal member). It is an O(n·m) checker for tests.
func IsSkylineOf(sky, s points.Set) bool {
	want := Naive(s)
	if len(want) != len(sky) {
		return false
	}
	for _, p := range sky {
		if !want.Contains(p) {
			return false
		}
	}
	return true
}

// Dominated returns the points of s dominated by at least one member of
// by. Points coordinate-equal to a member of by are not considered
// dominated.
func Dominated(s, by points.Set) points.Set {
	out := make(points.Set, 0)
	for _, p := range s {
		for _, q := range by {
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				out = append(out, p)
				break
			}
		}
	}
	return out
}
