package skyline

import (
	"fmt"
	"io"
	"os"

	"repro/internal/points"
	"repro/internal/sequencefile"
)

// BudgetedFold is a streaming skyline accumulator whose working memory is
// bounded by an explicit byte budget. It is external BNL re-expressed
// over the flat block kernels: candidates are scanned against a bounded
// window with the same inlined twin-flag dominance step as scanWindow,
// and candidates that survive a full window overflow to a temporary
// frame-encoded sequence file instead of growing it. Finish resolves the
// overflow in further passes until none remains.
//
// Correctness follows the classic BNL timestamp argument: a window row
// inserted before the pass's first overflow write has been compared
// against every other point of the pass (earlier points put it in the
// window or died against it, later points were scanned over it), so if
// it survives the pass it is in the true skyline and is confirmed.
// Rows inserted after the first overflow write have missed the overflow
// points already on disk, so they are carried — re-fed as the next
// pass's input prefix ahead of the overflow stream. Every pass inserts
// its first candidate into an empty window, before any overflow, so each
// pass confirms or kills at least one point and the loop terminates.
//
// Duplicate rows are retained, exactly as the in-memory kernels retain
// them, so BudgetedFold(…) == FlatBNL(…) as multisets on any input.
//
// The budget bounds the fold's working state (window, overflow write
// buffer, decode scratch). The confirmed result necessarily lives in
// memory too and is counted in PeakBytes, so a skyline larger than the
// budget reports a peak above it rather than lying.
type BudgetedFold struct {
	dim      int
	winCap   int // window rows the budget allows
	obufCap  int // overflow write-buffer rows
	spillDir string

	confirmed *points.Block
	win       *points.Block
	ticks     []int64 // insertion tick of each window row, swap-deleted in lockstep
	tick      int64
	firstOverflow int64 // tick of this pass's first overflow write; -1 while none

	of      *os.File
	ow      *sequencefile.Writer
	obuf    *points.Block
	codec   points.FrameCodec
	scratch []byte

	stats FoldStats
	tests int64
	done  bool
}

// FoldStats describes one BudgetedFold run.
type FoldStats struct {
	Passes         int   // resolution passes (1 = everything fit the window)
	OverflowPoints int64 // points written to overflow files across all passes
	OverflowBytes  int64 // frame-encoded bytes written to overflow files
	PeakBytes      int64 // high-water mark of window+buffers+result memory
}

// NewBudgetedFold creates a fold over dim-dimensional rows holding at
// most budgetBytes of working state. Overflow files go to spillDir (the
// OS temp dir when empty). A budget too small for even one window row
// still works — the window is clamped to one row and resolution degrades
// toward quadratic passes, which the tiny-budget tests exercise on
// purpose. Overflow frames are encoded with codec (FrameDefault → v1).
func NewBudgetedFold(dim int, budgetBytes int64, spillDir string, codec points.FrameCodec) *BudgetedFold {
	if dim <= 0 {
		panic(fmt.Sprintf("skyline: BudgetedFold dimension %d", dim))
	}
	rowBytes := int64(dim * 8)
	winCap := int(budgetBytes / rowBytes)
	if winCap < 1 {
		winCap = 1
	}
	obufCap := winCap
	if obufCap > 256 {
		obufCap = 256
	}
	return &BudgetedFold{
		dim:           dim,
		winCap:        winCap,
		obufCap:       obufCap,
		spillDir:      spillDir,
		confirmed:     points.NewBlock(dim, 0),
		win:           points.NewBlock(dim, min(winCap, 1024)),
		firstOverflow: -1,
		codec:         codec,
		stats:         FoldStats{Passes: 1},
	}
}

// Absorb feeds every row of blk into the fold. blk is not retained.
func (f *BudgetedFold) Absorb(blk *points.Block) error {
	if f.done {
		return fmt.Errorf("skyline: Absorb after Finish")
	}
	if blk.Len() == 0 {
		return nil
	}
	if blk.Dim() != f.dim {
		return fmt.Errorf("skyline: absorbing %d-dim block into %d-dim fold", blk.Dim(), f.dim)
	}
	n := blk.Len()
	for i := 0; i < n; i++ {
		if err := f.absorbRow(blk.Row(i)); err != nil {
			return err
		}
	}
	f.notePeak(int64(n) * int64(f.dim) * 8) // caller's block is live during the scan
	return nil
}

// AbsorbRow feeds a single row.
func (f *BudgetedFold) AbsorbRow(p []float64) error {
	if f.done {
		return fmt.Errorf("skyline: Absorb after Finish")
	}
	if len(p) != f.dim {
		return fmt.Errorf("skyline: absorbing %d-dim row into %d-dim fold", len(p), f.dim)
	}
	return f.absorbRow(p)
}

// absorbRow is one BNL step against the bounded window: kill p if a
// window row dominates it, evict window rows p dominates, then insert p
// if there is room and overflow it otherwise.
func (f *BudgetedFold) absorbRow(p []float64) error {
	f.tick++
	d := f.dim
	wn := f.win.Len()
	for j := 0; j < wn; {
		f.tests++
		q := f.win.Row(j)[:d]
		pp := p[:d]
		var qWorse, pWorse bool
		for k := range q {
			if q[k] > pp[k] {
				qWorse = true
				if pWorse {
					break
				}
			} else if q[k] < pp[k] {
				pWorse = true
				if qWorse {
					break
				}
			}
		}
		if pWorse && !qWorse { // q dominates p: p dies
			return nil
		}
		if qWorse && !pWorse { // p dominates q: evict, keep ticks in lockstep
			f.win.SwapDelete(j)
			f.ticks[j] = f.ticks[len(f.ticks)-1]
			f.ticks = f.ticks[:len(f.ticks)-1]
			wn--
			continue
		}
		j++
	}
	if f.win.Len() < f.winCap {
		f.win.AppendRow(p)
		f.ticks = append(f.ticks, f.tick)
		return nil
	}
	return f.overflowRow(p)
}

// overflowRow batches p into the overflow write buffer, flushing full
// buffers to the pass's overflow file as one frame record.
func (f *BudgetedFold) overflowRow(p []float64) error {
	if f.firstOverflow < 0 {
		f.firstOverflow = f.tick
	}
	if f.obuf == nil {
		f.obuf = points.NewBlock(f.dim, f.obufCap)
	}
	f.obuf.AppendRow(p)
	f.stats.OverflowPoints++
	if f.obuf.Len() >= f.obufCap {
		return f.flushOverflow()
	}
	return nil
}

func (f *BudgetedFold) flushOverflow() error {
	if f.obuf == nil || f.obuf.Len() == 0 {
		return nil
	}
	if f.ow == nil {
		of, err := os.CreateTemp(f.spillDir, "budgetfold-*.fseq")
		if err != nil {
			return fmt.Errorf("skyline: creating overflow file: %w", err)
		}
		f.of = of
		f.ow = sequencefile.NewWriter(of)
	}
	f.scratch = points.AppendFrameCodec(f.scratch[:0], 0, f.obuf, f.codec)
	if err := f.ow.Append(nil, f.scratch); err != nil {
		return fmt.Errorf("skyline: writing overflow: %w", err)
	}
	f.stats.OverflowBytes += int64(len(f.scratch))
	f.obuf.Reset()
	return nil
}

// notePeak records the current working-set high-water mark, plus extra
// transient bytes the caller knows are live (decode scratch, input).
func (f *BudgetedFold) notePeak(extra int64) {
	rowBytes := int64(f.dim * 8)
	live := int64(f.win.Len()+f.confirmed.Len()) * rowBytes
	if f.obuf != nil {
		live += int64(f.obuf.Len()) * rowBytes
	}
	live += int64(len(f.scratch)) + extra
	if live > f.stats.PeakBytes {
		f.stats.PeakBytes = live
	}
}

// Finish resolves any overflow and returns the exact skyline of every
// absorbed row. The fold cannot be used afterwards.
func (f *BudgetedFold) Finish() (*points.Block, error) {
	if f.done {
		return nil, fmt.Errorf("skyline: Finish called twice")
	}
	f.done = true
	defer func() {
		dominanceTests.Add(f.tests)
		if f.of != nil { // error-path cleanup; the loop normally consumed it
			name := f.of.Name()
			f.of.Close()
			os.Remove(name)
			f.of, f.ow = nil, nil
		}
	}()
	for f.firstOverflow >= 0 || (f.obuf != nil && f.obuf.Len() > 0) {
		if err := f.flushOverflow(); err != nil {
			return nil, err
		}
		if err := f.ow.Flush(); err != nil {
			return nil, fmt.Errorf("skyline: flushing overflow: %w", err)
		}
		overflow := f.of
		f.of, f.ow = nil, nil

		// Split the window by the timestamp rule: rows inserted before
		// this pass's first overflow write are confirmed skyline points;
		// the rest are carried into the next pass ahead of the overflow
		// stream.
		carried := points.NewBlock(f.dim, 0)
		for j := 0; j < f.win.Len(); j++ {
			if f.ticks[j] < f.firstOverflow {
				f.confirmed.AppendRow(f.win.Row(j))
			} else {
				carried.AppendRow(f.win.Row(j))
			}
		}
		f.win.Reset()
		f.ticks = f.ticks[:0]
		f.firstOverflow = -1
		f.stats.Passes++
		f.notePeak(int64(carried.Len()) * int64(f.dim) * 8)

		if err := f.replay(overflow, carried); err != nil {
			return nil, err
		}
	}
	f.confirmed.AppendBlock(f.win)
	f.notePeak(0)
	f.win = nil
	f.ticks = nil
	return f.confirmed, nil
}

// replay re-absorbs the carried window rows and then the overflow file's
// frames as the next pass's input, deleting the file when drained.
func (f *BudgetedFold) replay(overflow *os.File, carried *points.Block) error {
	name := overflow.Name()
	defer os.Remove(name)
	defer overflow.Close()
	for j := 0; j < carried.Len(); j++ {
		if err := f.absorbRow(carried.Row(j)); err != nil {
			return err
		}
	}
	if _, err := overflow.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("skyline: rewinding overflow: %w", err)
	}
	sr := sequencefile.NewReader(overflow)
	blk := points.NewBlock(f.dim, f.obufCap)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("skyline: reading overflow: %w", err)
		}
		blk.Reset()
		if _, _, err := points.DecodeFrame(blk, rec.Value); err != nil {
			return fmt.Errorf("skyline: decoding overflow frame: %w", err)
		}
		n := blk.Len()
		for i := 0; i < n; i++ {
			if err := f.absorbRow(blk.Row(i)); err != nil {
				return err
			}
		}
		f.notePeak(int64(len(rec.Value)) + int64(n)*int64(f.dim)*8)
	}
}

// Stats reports the fold's pass count, overflow volume and peak memory.
// Valid after Finish.
func (f *BudgetedFold) Stats() FoldStats { return f.stats }
