package skyline

import (
	"math"

	"repro/internal/points"
)

// NearestNeighbor computes the skyline by the divide-and-prune procedure
// the paper sketches in its Section IV complexity analysis (after
// Kossmann et al.'s NN algorithm): the point nearest to the origin (in
// the normalized space) is necessarily a skyline point; everything in its
// dominance region is pruned; the remaining region is split into the
// partitions not dominated by the pivot and processed recursively.
//
// This implementation works on in-memory sets (no spatial index), so its
// asymptotic cost is comparable to BNL's; it exists to validate §IV's
// reasoning — "the first nearest neighbor is part of the skyline" and
// "the dominated region is pruned" — and as another independent oracle.
func NearestNeighbor(s points.Set) points.Set {
	if len(s) == 0 {
		return nil
	}
	min, max := s.Bounds()
	d := s.Dim()
	span := make([]float64, d)
	for j := 0; j < d; j++ {
		span[j] = max[j] - min[j]
		if span[j] == 0 {
			span[j] = 1
		}
	}
	var result points.Set
	nnRecurse(s, min, span, &result)
	return result
}

func nnRecurse(s points.Set, min points.Point, span []float64, out *points.Set) {
	if len(s) == 0 {
		return
	}
	if len(s) <= 16 {
		*out = append(*out, BNL(s)...)
		return
	}
	// Pivot: the point nearest the ideal corner in normalized L2 — it is
	// dominated by nobody (any dominator would be strictly nearer), so it
	// is skyline.
	pivot := 0
	best := math.Inf(1)
	for i, p := range s {
		dist := 0.0
		for j := range p {
			v := (p[j] - min[j]) / span[j]
			dist += v * v
		}
		if dist < best {
			best = dist
			pivot = i
		}
	}
	pv := s[pivot]
	*out = append(*out, pv)
	// Emit coordinate-equal duplicates alongside the pivot, prune the
	// pivot's dominance region (the gray region of the paper's Fig. 4),
	// and recurse on the incomparable remainder. Every future pivot is
	// undominated in the original set: a dominator would either still be
	// present (contradicting pivot minimality) or have been pruned by an
	// earlier pivot that then transitively dominates this one too.
	var rest points.Set
	for i, p := range s {
		if i == pivot {
			continue
		}
		if p.Equal(pv) {
			*out = append(*out, p)
			continue
		}
		if points.Dominates(pv, p) {
			continue
		}
		rest = append(rest, p)
	}
	nnRecurse(rest, min, span, out)
}
