package skyline

// This file holds the flat-memory skyline kernels: the same BNL/SFS
// algorithms as skyline.go, re-expressed over points.Block so the hottest
// loop in the repository — the pairwise dominance test — runs over one
// contiguous []float64 with a dimension-specialized comparison selected
// once per block rather than a generic length-checked loop per pair. The
// classic points.Set kernels remain as the escape hatch
// (driver.Options.ClassicKernel) and as the reference implementation; both
// paths produce identical skylines on finite, uniform-dimensional input.

import (
	"sort"
	"sync/atomic"

	"repro/internal/points"
)

// Relation is the outcome of one pairwise dominance test between two
// coordinate rows under minimization.
type Relation int8

const (
	// Incomparable: neither row dominates and the rows differ.
	Incomparable Relation = iota
	// LeftDominates: the first row strictly dominates the second.
	LeftDominates
	// RightDominates: the second row strictly dominates the first.
	RightDominates
	// Equal: the rows are coordinate-wise identical.
	Equal
)

// relFunc computes the Relation of two equal-length rows. Kernels assume
// finite coordinates (the library validates at pipeline entry); NaN makes
// both comparisons false and reads as Equal.
type relFunc func(a, b []float64) Relation

// verdict folds the two "worse somewhere" flags into a Relation.
func verdict(aWorse, bWorse bool) Relation {
	switch {
	case aWorse && bWorse:
		return Incomparable
	case bWorse:
		return LeftDominates
	case aWorse:
		return RightDominates
	default:
		return Equal
	}
}

// relGeneric is the any-dimension fallback. Two single-branch scans, each
// stopping at its first proof, beat one combined loop on random data: each
// scan's branch is almost always not-taken until the exit, so both predict
// well, and each expects to stop within a couple of elements. The re-slice
// of b hoists its per-iteration bounds check into one comparison up front.
func relGeneric(a, b []float64) Relation {
	b = b[:len(a)]
	var aw, bw bool
	for i, av := range a {
		if av > b[i] {
			aw = true
			break
		}
	}
	for i, av := range a {
		if av < b[i] {
			bw = true
			break
		}
	}
	return verdict(aw, bw)
}

// The d=2..8 kernels are monomorphized: the slice re-slicing hoists every
// bounds check to one comparison and the fixed trip count lets the
// compiler keep the flags in registers. d=2 and d=3 run the full scan
// (cheaper than predicting the exit branch); from d=4 up the kernels bail
// on the first proof of incomparability, the common case inside BNL
// windows, where the early rows usually differ in both directions.

func rel2(a, b []float64) Relation {
	a, b = a[:2], b[:2]
	var aw, bw bool
	if a[0] > b[0] {
		aw = true
	} else if a[0] < b[0] {
		bw = true
	}
	if a[1] > b[1] {
		aw = true
	} else if a[1] < b[1] {
		bw = true
	}
	return verdict(aw, bw)
}

func rel3(a, b []float64) Relation {
	a, b = a[:3], b[:3]
	var aw, bw bool
	for i := 0; i < 3; i++ {
		if a[i] > b[i] {
			aw = true
		} else if a[i] < b[i] {
			bw = true
		}
	}
	return verdict(aw, bw)
}

func rel4(a, b []float64) Relation {
	a, b = a[:4], b[:4]
	var aw, bw bool
	for i := 0; i < 4; i++ {
		if a[i] > b[i] {
			if bw {
				return Incomparable
			}
			aw = true
		} else if a[i] < b[i] {
			if aw {
				return Incomparable
			}
			bw = true
		}
	}
	return verdict(aw, bw)
}

func rel5(a, b []float64) Relation {
	a, b = a[:5], b[:5]
	var aw, bw bool
	for i := 0; i < 5; i++ {
		if a[i] > b[i] {
			if bw {
				return Incomparable
			}
			aw = true
		} else if a[i] < b[i] {
			if aw {
				return Incomparable
			}
			bw = true
		}
	}
	return verdict(aw, bw)
}

func rel6(a, b []float64) Relation {
	a, b = a[:6], b[:6]
	var aw, bw bool
	for i := 0; i < 6; i++ {
		if a[i] > b[i] {
			if bw {
				return Incomparable
			}
			aw = true
		} else if a[i] < b[i] {
			if aw {
				return Incomparable
			}
			bw = true
		}
	}
	return verdict(aw, bw)
}

func rel7(a, b []float64) Relation {
	a, b = a[:7], b[:7]
	var aw, bw bool
	for i := 0; i < 7; i++ {
		if a[i] > b[i] {
			if bw {
				return Incomparable
			}
			aw = true
		} else if a[i] < b[i] {
			if aw {
				return Incomparable
			}
			bw = true
		}
	}
	return verdict(aw, bw)
}

func rel8(a, b []float64) Relation {
	a, b = a[:8], b[:8]
	var aw, bw bool
	for i := 0; i < 8; i++ {
		if a[i] > b[i] {
			if bw {
				return Incomparable
			}
			aw = true
		} else if a[i] < b[i] {
			if aw {
				return Incomparable
			}
			bw = true
		}
	}
	return verdict(aw, bw)
}

var relByDim = [...]relFunc{2: rel2, 3: rel3, 4: rel4, 5: rel5, 6: rel6, 7: rel7, 8: rel8}

// RelationKernel returns the dominance-relation kernel for rows of
// dimension d: a monomorphized comparison for d = 2..8, the generic
// early-exit loop otherwise. The selection happens once per block, not
// once per pair — that is the whole trick.
func RelationKernel(d int) func(a, b []float64) Relation {
	if d >= 2 && d < len(relByDim) {
		return relByDim[d]
	}
	return relGeneric
}

// dominanceTests counts every pairwise dominance test executed by the
// flat kernels and the merge tree, process-wide. Kernels accumulate
// locally and publish once per call, so the atomic stays off the inner
// loop; package driver bridges deltas into the telemetry registry as
// skyline_dominance_tests_total.
var dominanceTests atomic.Int64

// DominanceTests returns the process-wide flat-kernel dominance-test
// count. Monotone; useful for Fig. 6-style attributions and for asserting
// in tests that the flat path actually ran.
func DominanceTests() int64 { return dominanceTests.Load() }

// BlockFunc is the flat-path kernel signature: it returns a new block
// holding the skyline of the input block. The input is not mutated; row
// order of the result is unspecified (eviction is swap-delete).
type BlockFunc func(*points.Block) *points.Block

// BlockBNL is block-nested-loops over a flat block: the window is itself
// a block reused as scratch, and evictions swap-delete instead of
// rebuilding the window slice. The dominance relation is hand-inlined
// into the scan (see scanWindow) — at combiner-sized inputs the window is
// small and a per-pair call, even through the specialized relFuncs, costs
// as much as the comparison itself.
func BlockBNL(b *points.Block) *points.Block {
	win := points.NewBlock(b.Dim(), 16)
	tests := int64(0)
	n := b.Len()
	for i := 0; i < n; i++ {
		tests += scanWindow(win, b.Row(i))
	}
	dominanceTests.Add(tests)
	return win
}

// scanWindow runs one BNL step: test p against every window row with the
// twin-flag single-pass relation, evict dominated rows, and append p if it
// survives. Returns the number of dominance tests performed. The relation
// is inlined rather than dispatched through a relFunc so the compiler
// keeps the flags in registers and pays no call per pair. When a window
// row dominates p, p cannot have evicted anyone earlier (window rows are
// mutually non-dominated), so the scan stops without repair.
func scanWindow(win *points.Block, p []float64) int64 {
	d := len(p)
	wn := win.Len() // hoisted: Len divides, and the row count only changes on evictions we track
	tests := int64(0)
	for j := 0; j < wn; {
		tests++
		q := win.Row(j)[:d]
		pp := p[:len(q)]
		var qWorse, pWorse bool
		for k := range q {
			if q[k] > pp[k] {
				qWorse = true
				if pWorse {
					break
				}
			} else if q[k] < pp[k] {
				pWorse = true
				if qWorse {
					break
				}
			}
		}
		if pWorse && !qWorse { // q dominates p: p dies
			return tests
		}
		if qWorse && !pWorse { // p dominates q: evict, re-test the swapped-in row
			win.SwapDelete(j)
			wn--
			continue
		}
		j++ // equal or incomparable: q stays (duplicates are retained)
	}
	win.AppendRow(p)
	return tests
}

// BlockSFS is sort-filter-skyline over a flat block: the monotone sum key
// is computed once per point into a slice (not inside the sort
// comparator), the permutation is sorted, and the single filtering pass
// needs no evictions because a point can only be dominated by one with a
// strictly smaller key.
func BlockSFS(b *points.Block) *points.Block {
	d := b.Dim()
	rel := RelationKernel(d)
	n := b.Len()
	keys := make([]float64, n)
	order := make([]int, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for _, v := range b.Row(i) {
			s += v
		}
		keys[i] = s
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	win := points.NewBlock(d, 16)
	tests := int64(0)
	for _, i := range order {
		p := b.Row(i)
		dominated := false
		for j := 0; j < win.Len(); j++ {
			tests++
			if rel(win.Row(j), p) == LeftDominates {
				dominated = true
				break
			}
		}
		if !dominated {
			win.AppendRow(p)
		}
	}
	dominanceTests.Add(tests)
	return win
}

// BlockByAlgorithm returns the flat kernel implementing a. Algorithms
// without a flat variant (D&C, Naive) run the classic kernel through a
// Set round-trip, keeping the BlockFunc signature total.
func BlockByAlgorithm(a Algorithm) BlockFunc {
	switch a {
	case BNLAlgorithm:
		return BlockBNL
	case SFSAlgorithm:
		return BlockSFS
	default:
		classic := ByAlgorithm(a)
		return func(b *points.Block) *points.Block {
			out, ok := points.BlockOf(classic(b.ToSet()))
			if !ok {
				panic("skyline: classic kernel produced mixed-dimension set")
			}
			return out
		}
	}
}

// flatten runs a block kernel over a point set, falling back to the
// classic kernel when the set cannot be represented as a block (mixed
// dimensionalities, which only the classic kernels tolerate).
func flatten(s points.Set, block BlockFunc, classic Func) points.Set {
	b, ok := points.BlockOf(s)
	if !ok {
		return classic(s)
	}
	return block(b).ToSet()
}

// FlatBNL computes the skyline with the flat block BNL. Unlike BNL it
// copies the input into contiguous storage first and returns fresh points;
// result order is unspecified.
func FlatBNL(s points.Set) points.Set { return flatten(s, BlockBNL, BNL) }

// FlatSFS computes the skyline with the flat block SFS.
func FlatSFS(s points.Set) points.Set { return flatten(s, BlockSFS, SFS) }

// ByAlgorithmFlat returns the flat-memory kernel for a where one exists
// (BNL, SFS), the classic kernel otherwise. This is the default selection
// of the MapReduce drivers; ByAlgorithm remains the ClassicKernel escape
// hatch.
func ByAlgorithmFlat(a Algorithm) Func {
	switch a {
	case BNLAlgorithm:
		return FlatBNL
	case SFSAlgorithm:
		return FlatSFS
	default:
		return ByAlgorithm(a)
	}
}
