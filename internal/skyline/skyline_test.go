package skyline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/points"
)

// paperExample reproduces Figure 1 of the paper: eight services in
// (response time, cost) space where s1..s7 form the skyline and s8 is
// dominated.
func paperExample() (all, wantSky points.Set) {
	s1 := points.Point{1, 9}
	s2 := points.Point{2, 7}
	s3 := points.Point{3, 5}
	s4 := points.Point{4, 4}
	s5 := points.Point{5.5, 3.5}
	s6 := points.Point{7, 3}
	s7 := points.Point{9, 1}
	s8 := points.Point{7.5, 6}
	all = points.Set{s1, s2, s3, s4, s5, s6, s7, s8}
	wantSky = points.Set{s1, s2, s3, s4, s5, s6, s7}
	return all, wantSky
}

func allKernels() []Algorithm {
	return []Algorithm{BNLAlgorithm, SFSAlgorithm, DCAlgorithm, NaiveAlgorithm}
}

func TestPaperFigure1(t *testing.T) {
	all, want := paperExample()
	for _, alg := range allKernels() {
		got := ByAlgorithm(alg)(all)
		if len(got) != len(want) {
			t.Errorf("%v: got %d skyline points, want %d: %v", alg, len(got), len(want), got)
			continue
		}
		for _, p := range want {
			if !got.Contains(p) {
				t.Errorf("%v: missing skyline point %v", alg, p)
			}
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, alg := range allKernels() {
		if got := ByAlgorithm(alg)(nil); len(got) != 0 {
			t.Errorf("%v on nil = %v", alg, got)
		}
		p := points.Point{1, 2}
		got := ByAlgorithm(alg)(points.Set{p})
		if len(got) != 1 || !got[0].Equal(p) {
			t.Errorf("%v on singleton = %v", alg, got)
		}
	}
}

func TestAllDominatedByOne(t *testing.T) {
	s := points.Set{{5, 5}, {0, 0}, {9, 1}, {1, 9}, {3, 3}}
	for _, alg := range allKernels() {
		got := ByAlgorithm(alg)(s)
		if len(got) != 1 || !got[0].Equal(points.Point{0, 0}) {
			t.Errorf("%v = %v, want only (0,0)", alg, got)
		}
	}
}

func TestDuplicatesRetained(t *testing.T) {
	// Two coordinate-equal undominated points: both must survive (neither
	// strictly dominates the other).
	s := points.Set{{1, 1}, {1, 1}, {2, 2}}
	for _, alg := range allKernels() {
		got := ByAlgorithm(alg)(s)
		if len(got) != 2 {
			t.Errorf("%v kept %d copies of duplicate skyline point, want 2: %v", alg, len(got), got)
		}
	}
}

func TestAntiChainAllSurvive(t *testing.T) {
	// A diagonal anti-chain: nobody dominates anybody.
	var s points.Set
	for i := 0; i < 50; i++ {
		s = append(s, points.Point{float64(i), float64(50 - i)})
	}
	for _, alg := range allKernels() {
		if got := ByAlgorithm(alg)(s); len(got) != 50 {
			t.Errorf("%v = %d points, want 50", alg, len(got))
		}
	}
}

func TestChainOnlyMinimumSurvives(t *testing.T) {
	var s points.Set
	for i := 20; i >= 0; i-- {
		s = append(s, points.Point{float64(i), float64(i), float64(i)})
	}
	for _, alg := range allKernels() {
		got := ByAlgorithm(alg)(s)
		if len(got) != 1 || got[0][0] != 0 {
			t.Errorf("%v = %v, want only the origin-most point", alg, got)
		}
	}
}

func TestKernelsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(6)
		n := 1 + rng.Intn(400)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				// Coarse grid so duplicates and ties actually occur.
				p[j] = float64(rng.Intn(8))
			}
			s[i] = p
		}
		want := Naive(s)
		for _, alg := range []Algorithm{BNLAlgorithm, SFSAlgorithm, DCAlgorithm} {
			got := ByAlgorithm(alg)(s)
			if !sameMultiset(got, want) {
				t.Fatalf("trial %d d=%d n=%d: %v disagrees with oracle\n got: %v\nwant: %v",
					trial, d, n, alg, got, want)
			}
		}
	}
}

// sameMultiset compares two point sets as multisets of coordinates.
func sameMultiset(a, b points.Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// Property: the skyline of a set's skyline is itself (idempotence), and no
// skyline member dominates another.
func TestSkylineIdempotentProperty(t *testing.T) {
	f := func(raw [][3]float64) bool {
		if len(raw) > 200 {
			raw = raw[:200]
		}
		s := make(points.Set, len(raw))
		for i, a := range raw {
			s[i] = points.Point{a[0], a[1], a[2]}
		}
		for i := range s {
			if s[i].Validate() != nil {
				return true // skip NaN/Inf draws
			}
		}
		sky := BNL(s)
		again := BNL(sky)
		if !sameMultiset(sky, again) {
			return false
		}
		for i, p := range sky {
			for j, q := range sky {
				if i != j && points.Dominates(p, q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every input point is either in the skyline or dominated by a
// skyline point (completeness of the dominance frontier).
func TestSkylineCoversInputProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(4)
		n := 50 + rng.Intn(200)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = rng.Float64() * 100
			}
			s[i] = p
		}
		sky := BNL(s)
		for _, p := range s {
			if sky.Contains(p) {
				continue
			}
			covered := false
			for _, q := range sky {
				if points.Dominates(q, p) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("point %v neither in skyline nor dominated", p)
			}
		}
	}
}

func TestSkylineOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := make(points.Set, 300)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	want := BNL(s)
	shuffled := s.Clone()
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	got := BNL(shuffled)
	if !sameMultiset(got, want) {
		t.Error("BNL result depends on input order")
	}
}

func TestIsSkylineOf(t *testing.T) {
	all, want := paperExample()
	if !IsSkylineOf(want, all) {
		t.Error("IsSkylineOf rejected the true skyline")
	}
	if IsSkylineOf(want[:3], all) {
		t.Error("IsSkylineOf accepted a partial skyline")
	}
	if IsSkylineOf(all, all) {
		t.Error("IsSkylineOf accepted a superset containing dominated points")
	}
}

func TestDominated(t *testing.T) {
	s := points.Set{{1, 1}, {2, 2}, {0, 5}}
	by := points.Set{{1, 1}}
	got := Dominated(s, by)
	if len(got) != 1 || !got[0].Equal(points.Point{2, 2}) {
		t.Errorf("Dominated = %v", got)
	}
}

func TestAlgorithmString(t *testing.T) {
	if BNLAlgorithm.String() != "BNL" || SFSAlgorithm.String() != "SFS" ||
		DCAlgorithm.String() != "D&C" || NaiveAlgorithm.String() != "Naive" {
		t.Error("unexpected algorithm names")
	}
	if Algorithm(99).String() != "Unknown" {
		t.Error("unknown algorithm name")
	}
}

func TestByAlgorithmPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ByAlgorithm(99) did not panic")
		}
	}()
	ByAlgorithm(Algorithm(99))
}

func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := make(points.Set, 5000)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for _, alg := range []Algorithm{BNLAlgorithm, SFSAlgorithm, DCAlgorithm} {
		b.Run(alg.String(), func(b *testing.B) {
			f := ByAlgorithm(alg)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f(s)
			}
		})
	}
}
