package skyline

import (
	"math/rand"
	"testing"

	"repro/internal/points"
)

func TestBNLExternalMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(5)
		n := 1 + rng.Intn(300)
		s := make(points.Set, n)
		for i := range s {
			p := make(points.Point, d)
			for j := range p {
				p[j] = float64(rng.Intn(10)) // coarse grid: ties + duplicates
			}
			s[i] = p
		}
		want := Naive(s)
		for _, w := range []int{1, 2, 3, 7, 64, 10000} {
			got, err := BNLExternal(s, w)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMultiset(got, want) {
				t.Fatalf("trial %d window %d: got %d points, want %d\n got: %v\nwant: %v",
					trial, w, len(got), len(want), got, want)
			}
		}
	}
}

func TestBNLExternalAntiChainTinyWindow(t *testing.T) {
	// Worst case: nothing dominates anything, window of 1 → one emission
	// per pass, still exact.
	var s points.Set
	for i := 0; i < 40; i++ {
		s = append(s, points.Point{float64(i), float64(40 - i)})
	}
	got, err := BNLExternal(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Errorf("got %d of 40 anti-chain points", len(got))
	}
}

func TestBNLExternalChain(t *testing.T) {
	// Everything dominated by the last point; any window works in one
	// logical pass.
	var s points.Set
	for i := 20; i >= 0; i-- {
		s = append(s, points.Point{float64(i), float64(i)})
	}
	got, err := BNLExternal(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != 0 {
		t.Errorf("got %v", got)
	}
}

func TestBNLExternalEdgeCases(t *testing.T) {
	if _, err := BNLExternal(points.Set{{1, 2}}, 0); err == nil {
		t.Error("zero window accepted")
	}
	got, err := BNLExternal(nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	got, err = BNLExternal(points.Set{{1, 1}, {1, 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("duplicates with window 1: got %d, want 2", len(got))
	}
}

func TestBNLExternalLargeWindowEqualsBNL(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := make(points.Set, 500)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	got, err := BNLExternal(s, len(s))
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, BNL(s)) {
		t.Error("large-window external BNL diverges from in-memory BNL")
	}
}

func BenchmarkBNLExternal(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	s := make(points.Set, 3000)
	for i := range s {
		s[i] = points.Point{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	for _, w := range []int{8, 64, 1024} {
		b.Run(map[int]string{8: "window8", 64: "window64", 1024: "window1024"}[w], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BNLExternal(s, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
