package skyline

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// randSet draws n points of dimension d from a small integer grid so
// coordinate-equal duplicates and per-dimension ties are common — the
// regimes where dominance-kernel bugs hide.
func randSet(rng *rand.Rand, n, d int) points.Set {
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(8))
		}
		s[i] = p
	}
	return s
}

// TestRelationKernelMatchesDominates cross-checks every specialized
// dimension (2..8) and the generic fallback (1, 9, 10) against the
// points.Dominates / Equal reference semantics.
func TestRelationKernelMatchesDominates(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, d := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		rel := RelationKernel(d)
		for trial := 0; trial < 500; trial++ {
			a := make(points.Point, d)
			b := make(points.Point, d)
			for j := 0; j < d; j++ {
				a[j] = float64(rng.Intn(4))
				b[j] = float64(rng.Intn(4))
			}
			var want Relation
			switch {
			case a.Equal(b):
				want = Equal
			case points.Dominates(a, b):
				want = LeftDominates
			case points.Dominates(b, a):
				want = RightDominates
			default:
				want = Incomparable
			}
			if got := rel(a, b); got != want {
				t.Fatalf("d=%d rel(%v, %v) = %d, want %d", d, a, b, got, want)
			}
		}
	}
}

// TestFlatKernelsMatchOracle asserts that every flat kernel — block BNL,
// block SFS, the Func wrappers, the parallel path and the merge tree —
// returns exactly the Naive oracle's skyline as a multiset, across the
// specialized dimensions and the generic fallback, with duplicates in
// play.
func TestFlatKernelsMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(10)
		n := rng.Intn(500)
		s := randSet(rng, n, d)
		want := Naive(s)
		check := func(name string, got points.Set) {
			t.Helper()
			if !sameMultiset(got, want) {
				t.Fatalf("trial %d (n=%d d=%d) %s: %d points, oracle %d", trial, n, d, name, len(got), len(want))
			}
		}
		check("FlatBNL", FlatBNL(s))
		check("FlatSFS", FlatSFS(s))
		for _, a := range []Algorithm{BNLAlgorithm, SFSAlgorithm, DCAlgorithm, NaiveAlgorithm} {
			check("ByAlgorithmFlat/"+a.String(), ByAlgorithmFlat(a)(s))
			if b, ok := points.BlockOf(s); ok {
				check("BlockByAlgorithm/"+a.String(), BlockByAlgorithm(a)(b).ToSet())
			}
		}
		for _, workers := range []int{0, 1, 3, 8} {
			check("Parallel", Parallel(s, workers))
		}
	}
}

// TestMergeBlocksMatchesOracle merges two chunk skylines and compares
// with the skyline of the union, including cross-chunk duplicates.
func TestMergeBlocksMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(8)
		sa := randSet(rng, rng.Intn(300), d)
		sb := randSet(rng, rng.Intn(300), d)
		a, _ := points.BlockOf(FlatBNL(sa))
		b, _ := points.BlockOf(FlatBNL(sb))
		got := MergeBlocks(a, b).ToSet()
		want := Naive(append(sa.Clone(), sb.Clone()...))
		if !sameMultiset(got, want) {
			t.Fatalf("trial %d d=%d: merge gave %d points, oracle %d", trial, d, len(got), len(want))
		}
	}
}

// TestMergeSkylinesMatchesOracle folds many partials through the full
// tree (odd counts exercise the bye path).
func TestMergeSkylinesMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, parts := range []int{1, 2, 3, 5, 8, 13} {
		d := 1 + rng.Intn(6)
		var partials []points.Set
		var union points.Set
		for i := 0; i < parts; i++ {
			chunk := randSet(rng, rng.Intn(150), d)
			union = append(union, chunk...)
			partials = append(partials, FlatBNL(chunk))
		}
		for _, workers := range []int{0, 1, 4} {
			got := MergeSkylines(context.Background(), partials, workers)
			want := Naive(union)
			if !sameMultiset(got, want) {
				t.Fatalf("parts=%d workers=%d d=%d: %d points, oracle %d", parts, workers, d, len(got), len(want))
			}
		}
	}
}

// TestFlatRetainsDuplicates pins the classical BNL duplicate contract on
// the flat path: coordinate-equal skyline members all survive.
func TestFlatRetainsDuplicates(t *testing.T) {
	s := points.Set{{1, 2}, {1, 2}, {2, 1}, {2, 2}, {1, 2}}
	for name, f := range map[string]Func{"FlatBNL": FlatBNL, "FlatSFS": FlatSFS, "Parallel": func(s points.Set) points.Set { return Parallel(s, 4) }} {
		got := f(s)
		if len(got) != 4 {
			t.Errorf("%s kept %d points, want 4 (three duplicates + (2,1)): %v", name, len(got), got)
		}
	}
}

// TestFlatMixedDimensionFallback: sets the classic kernels tolerate but
// blocks cannot represent must still compute correctly via fallback.
func TestFlatMixedDimensionFallback(t *testing.T) {
	s := points.Set{{1, 2}, {3}, {0, 5}}
	want := Naive(s)
	if got := FlatBNL(s); !sameMultiset(got, want) {
		t.Fatalf("FlatBNL on mixed dims: %v, want %v", got, want)
	}
	if got := Parallel(s, 2); !sameMultiset(got, want) {
		t.Fatalf("Parallel on mixed dims: %v, want %v", got, want)
	}
}

// TestDominanceTestsCounter: the flat kernels must account their pairwise
// tests in the package counter.
func TestDominanceTestsCounter(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	s := randSet(rng, 300, 4)
	before := DominanceTests()
	FlatBNL(s)
	if DominanceTests() == before {
		t.Fatal("BlockBNL recorded no dominance tests")
	}
	before = DominanceTests()
	MergeSkylines(context.Background(), []points.Set{FlatBNL(s[:150]), FlatBNL(s[150:])}, 2)
	if DominanceTests() == before {
		t.Fatal("merge tree recorded no dominance tests")
	}
}

// TestMergeLevelSpans: a tracer in the context must receive one
// merge-level span per tree level.
func TestMergeLevelSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	var partials []points.Set
	for i := 0; i < 8; i++ {
		partials = append(partials, FlatBNL(randSet(rng, 100, 3)))
	}
	// The tournament (and its per-level spans) only runs with real
	// parallelism — normWorkers caps at GOMAXPROCS, and on one core the
	// tree degenerates to a single-span fold. Pin GOMAXPROCS so the
	// asserted tree shape is machine-independent.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	MergeSkylines(ctx, partials, 4)
	levels := 0
	for _, sp := range tr.Spans() {
		if sp.Name == "merge-level" {
			levels++
		}
	}
	if levels != 3 { // 8 → 4 → 2 → 1
		t.Fatalf("recorded %d merge-level spans, want 3", levels)
	}
}

// FuzzFlatBNL drives the block BNL with fuzz-chosen geometry and checks
// the Naive oracle. Coordinates are quantized so duplicates appear.
func FuzzFlatBNL(f *testing.F) {
	f.Add(int64(1), 10, 2)
	f.Add(int64(2), 100, 7)
	f.Add(int64(3), 50, 9)
	f.Fuzz(func(t *testing.T, seed int64, n, d int) {
		if n < 0 || n > 300 || d < 1 || d > 12 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		s := randSet(rng, n, d)
		want := Naive(s)
		if got := FlatBNL(s); !sameMultiset(got, want) {
			t.Fatalf("FlatBNL diverged from oracle on n=%d d=%d", n, d)
		}
		if got := FlatSFS(s); !sameMultiset(got, want) {
			t.Fatalf("FlatSFS diverged from oracle on n=%d d=%d", n, d)
		}
		if got := Parallel(s, 3); !sameMultiset(got, want) {
			t.Fatalf("Parallel diverged from oracle on n=%d d=%d", n, d)
		}
	})
}
