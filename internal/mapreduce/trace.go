package mapreduce

import (
	"encoding/json"
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Event is one engine lifecycle event, for job observability (the
// JobTracker page of the Hadoop era). Events are best-effort telemetry:
// they never affect job results.
type Event struct {
	// Time is when the event fired.
	Time time.Time `json:"time"`
	// Job is the Config.Name of the job.
	Job string `json:"job"`
	// Kind is one of "job-start", "phase-start", "phase-end",
	// "task-start", "task-end", "task-retry", "spill", "job-end".
	Kind string `json:"kind"`
	// Phase is "map", "shuffle" or "reduce" for phase/task events.
	Phase string `json:"phase,omitempty"`
	// Task is the task index for task events, -1 otherwise.
	Task int `json:"task"`
	// Err carries the failure message of a task-retry event.
	Err string `json:"err,omitempty"`
	// Worker is the 1-based worker slot that executed a task (0 when
	// unknown or not applicable), so event streams can be folded into
	// per-worker timelines.
	Worker int `json:"worker,omitempty"`
	// Duration is the wall time of the finished task or phase, set on
	// "task-end" and "phase-end" events.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Records counts what flowed through: input records for a map
	// task-end, output pairs for a reduce task-end, and the phase's
	// framework-counter volume for phase-end events (map out, shuffle
	// records, reduce out).
	Records int64 `json:"records,omitempty"`
	// Bytes is the on-disk volume of a "spill" event, 0 otherwise.
	Bytes int64 `json:"bytes,omitempty"`
}

// EventSink receives engine events. Implementations must be safe for
// concurrent use; Emit must not block for long (it runs on task
// goroutines).
type EventSink interface {
	Emit(Event)
}

// MemorySink collects events in memory, primarily for tests and
// small-scale debugging.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements EventSink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the collected events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// JSONSink streams events as JSON lines to a writer.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit implements EventSink. Encoding errors are dropped: tracing must
// never fail a job.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	_ = s.enc.Encode(e)
	s.mu.Unlock()
}

// LogSink bridges engine events into a telemetry.EventLog, so in-process
// jobs share the /debug/events stream with the cluster layer. Per-record
// paths never emit events, so the bridge's cost is bounded by task and
// phase counts.
type LogSink struct {
	Log *telemetry.EventLog
}

// NewLogSink adapts log; a nil log yields a sink that drops everything
// (the EventLog is nil-safe).
func NewLogSink(log *telemetry.EventLog) *LogSink { return &LogSink{Log: log} }

// Wants implements the engine's kind filter: per-task chatter is never
// bridged (the flight recorder and tracer own that detail), and the
// rest is declined when the log's level would drop it anyway.
func (s *LogSink) Wants(kind string) bool {
	switch kind {
	case "task-start", "task-end":
		return false
	case "task-retry":
		return s.Log.Enabled(slog.LevelWarn)
	}
	return s.Log.Enabled(slog.LevelInfo)
}

// Emit implements EventSink: retries are warnings, everything else is
// informational, and task start/end land at debug so a default info view
// shows job and phase boundaries without per-task noise.
func (s *LogSink) Emit(e Event) {
	level := slog.LevelInfo
	switch e.Kind {
	case "task-retry":
		level = slog.LevelWarn
	case "task-start", "task-end":
		// Per-task chatter belongs to the flight recorder and tracer;
		// bridging it would put allocations on every task of every job.
		// The event log keeps to phase boundaries, retries and spills.
		return
	}
	if !s.Log.Enabled(level) {
		return
	}
	attrs := make([]telemetry.Attr, 0, 8)
	attrs = append(attrs, telemetry.A("job", e.Job))
	if e.Phase != "" {
		attrs = append(attrs, telemetry.A("phase", e.Phase))
	}
	if e.Task >= 0 {
		attrs = append(attrs, telemetry.A("task", e.Task))
	}
	if e.Worker > 0 {
		attrs = append(attrs, telemetry.A("worker", e.Worker))
	}
	if e.Duration > 0 {
		attrs = append(attrs, telemetry.A("seconds", e.Duration.Seconds()))
	}
	if e.Records > 0 {
		attrs = append(attrs, telemetry.A("records", e.Records))
	}
	if e.Bytes > 0 {
		attrs = append(attrs, telemetry.A("bytes", e.Bytes))
	}
	if e.Err != "" {
		attrs = append(attrs, telemetry.A("err", e.Err))
	}
	s.Log.Log(level, e.Kind, attrs...)
}

// emit sends a bare lifecycle event if a sink is configured.
func (c Config) emit(kind, phase string, task int, errMsg string) {
	c.emitEvent(Event{Kind: kind, Phase: phase, Task: task, Err: errMsg})
}

// kindFilter is the optional EventSink refinement the engine probes on
// hot paths: a sink that declines a kind up front saves the timestamp,
// the event copy and the interface dispatch on every task of every job.
type kindFilter interface {
	Wants(kind string) bool
}

// emitEvent stamps and sends a pre-filled event if a sink is
// configured — the path for events carrying worker/duration/records.
func (c Config) emitEvent(e Event) {
	if c.Trace == nil {
		return
	}
	if f, ok := c.Trace.(kindFilter); ok && !f.Wants(e.Kind) {
		return
	}
	e.Time = time.Now()
	e.Job = c.Name
	c.Trace.Emit(e)
}
