package mapreduce

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one engine lifecycle event, for job observability (the
// JobTracker page of the Hadoop era). Events are best-effort telemetry:
// they never affect job results.
type Event struct {
	// Time is when the event fired.
	Time time.Time `json:"time"`
	// Job is the Config.Name of the job.
	Job string `json:"job"`
	// Kind is one of "job-start", "phase-start", "phase-end",
	// "task-start", "task-end", "task-retry", "job-end".
	Kind string `json:"kind"`
	// Phase is "map", "shuffle" or "reduce" for phase/task events.
	Phase string `json:"phase,omitempty"`
	// Task is the task index for task events, -1 otherwise.
	Task int `json:"task"`
	// Err carries the failure message of a task-retry event.
	Err string `json:"err,omitempty"`
	// Worker is the 1-based worker slot that executed a task (0 when
	// unknown or not applicable), so event streams can be folded into
	// per-worker timelines.
	Worker int `json:"worker,omitempty"`
	// Duration is the wall time of the finished task or phase, set on
	// "task-end" and "phase-end" events.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// Records counts what flowed through: input records for a map
	// task-end, output pairs for a reduce task-end, and the phase's
	// framework-counter volume for phase-end events (map out, shuffle
	// records, reduce out).
	Records int64 `json:"records,omitempty"`
}

// EventSink receives engine events. Implementations must be safe for
// concurrent use; Emit must not block for long (it runs on task
// goroutines).
type EventSink interface {
	Emit(Event)
}

// MemorySink collects events in memory, primarily for tests and
// small-scale debugging.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements EventSink.
func (s *MemorySink) Emit(e Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

// Events returns a copy of the collected events.
func (s *MemorySink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// JSONSink streams events as JSON lines to a writer.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink wraps w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit implements EventSink. Encoding errors are dropped: tracing must
// never fail a job.
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	_ = s.enc.Encode(e)
	s.mu.Unlock()
}

// emit sends a bare lifecycle event if a sink is configured.
func (c Config) emit(kind, phase string, task int, errMsg string) {
	c.emitEvent(Event{Kind: kind, Phase: phase, Task: task, Err: errMsg})
}

// emitEvent stamps and sends a pre-filled event if a sink is
// configured — the path for events carrying worker/duration/records.
func (c Config) emitEvent(e Event) {
	if c.Trace == nil {
		return
	}
	e.Time = time.Now()
	e.Job = c.Name
	c.Trace.Emit(e)
}
