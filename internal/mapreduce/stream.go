package mapreduce

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// Streaming reduce: the out-of-core half of the frame engine. The
// assemble-everything path (ReduceFrames) materializes each partition's
// full block before reducing it, which bounds a job by one reducer's
// memory. The streaming path replaces the assembled block with a
// FrameFold per partition: frames are decoded one at a time — straight
// off the spill file via frameSpillReader — and absorbed incrementally,
// so a reduce task's working set is the folds' bounded state plus one
// frame of scratch, regardless of partition size.

// FrameFold is incremental per-partition reduce state: Absorb is called
// once per arriving frame block (the block is scratch — copy what must
// survive), then Finish emits the fold's result. Implementations need
// not be safe for concurrent use; the engine creates one fold per
// partition and drives it from a single goroutine.
type FrameFold interface {
	Absorb(blk *points.Block) error
	Finish(emit EmitPoint) error
}

// FrameFolder creates the fold for one partition — called lazily the
// first time a reduce task sees a frame for that partition. Must be safe
// for concurrent use (reduce tasks run in parallel).
type FrameFolder func(partition int) FrameFold

// FoldPeaker is optionally implemented by folds that track their
// working-set high-water mark; the engine sums the peaks into
// FrameStats.PeakBytes / FrameResult.ReducerPeakBytes.
type FoldPeaker interface {
	PeakBytes() int64
	Passes() int
}

// FrameSource yields one shuffle frame at a time; io.EOF ends the
// stream. It abstracts spilled runs (frameSpillReader) and in-memory
// sealed streams so the streaming reduce path treats both identically.
type FrameSource interface {
	Next() ([]byte, error)
}

// StreamFrameSource adapts one sealed in-memory frame stream to a
// FrameSource — for callers outside the engine (rpcmr workers) feeding
// ReduceFramesStream from transport buffers.
func StreamFrameSource(stream []byte) FrameSource {
	return &memFrameSource{rest: stream}
}

// memFrameSource slices one sealed in-memory stream back into frames.
type memFrameSource struct {
	rest []byte
}

func (m *memFrameSource) Next() ([]byte, error) {
	if len(m.rest) == 0 {
		return nil, io.EOF
	}
	n, err := points.FrameLen(m.rest)
	if err != nil {
		return nil, err
	}
	frame := m.rest[:n]
	m.rest = m.rest[n:]
	return frame, nil
}

// ReduceFramesStream drains every source in order, folding each frame
// into its partition's fold, then finishes the folds in ascending
// partition order and seals the emissions into one output frame stream.
// Shared by the in-process engine's streaming reduce tasks and the rpcmr
// workers. Sources are closed by the caller.
func ReduceFramesStream(srcs []FrameSource, folder FrameFolder, codec points.FrameCodec) ([]byte, FrameStats, error) {
	var st FrameStats
	folds := make(map[int]FrameFold)
	scratch := points.NewBlock(0, 0)
	var maxFrame int64
	for _, src := range srcs {
		for {
			frame, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, st, err
			}
			p, count, err := points.FrameCount(frame)
			if err != nil {
				return nil, st, fmt.Errorf("mapreduce: bad frame: %w", err)
			}
			if count == 0 {
				continue
			}
			scratch.Clear()
			if _, _, err := points.DecodeFrame(scratch, frame); err != nil {
				return nil, st, fmt.Errorf("mapreduce: bad frame: %w", err)
			}
			fold := folds[p]
			if fold == nil {
				fold = folder(p)
				folds[p] = fold
				st.Groups++
			}
			st.ReduceIn += int64(count)
			if err := fold.Absorb(scratch); err != nil {
				return nil, st, err
			}
			if fb := int64(len(frame)); fb > maxFrame {
				maxFrame = fb
			}
		}
	}
	fb := frameBuilderPool.Get().(*frameBuilder)
	defer func() {
		fb.reset()
		frameBuilderPool.Put(fb)
	}()
	for _, p := range sortedInts(folds) {
		if err := folds[p].Finish(fb.add); err != nil {
			return nil, st, err
		}
	}
	if fb.err != nil {
		return nil, st, fb.err
	}
	out, recs, _ := fb.seal(1, nil, codec)
	st.ReduceOut = recs
	st.Passes = 1
	st.PeakBytes = maxFrame
	for _, fold := range folds {
		if pk, ok := fold.(FoldPeaker); ok {
			st.PeakBytes += pk.PeakBytes()
			if n := pk.Passes(); n > st.Passes {
				st.Passes = n
			}
		}
	}
	return out[0], st, nil
}

func sortedInts[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ { // insertion sort; partition counts are small
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// runFrameReduceTaskStream is the streaming counterpart of
// runFrameReduceTask: reducer r's frames are read from memory or spill
// one frame at a time and folded, never assembled.
func runFrameReduceTaskStream(cfg Config, r int, outputs []frameTaskOutput, folder FrameFolder) ([]byte, FrameStats, error) {
	var srcs []FrameSource
	var open []*frameSpillReader
	defer func() {
		for _, sr := range open {
			sr.Close()
		}
	}()
	for _, out := range outputs {
		if out.files != nil {
			if r < len(out.files) && out.files[r] != "" {
				sr, err := openFrameSpill(out.files[r])
				if err != nil {
					return nil, FrameStats{}, fmt.Errorf("mapreduce: %s: opening frame spill: %w", cfg.Name, err)
				}
				open = append(open, sr)
				srcs = append(srcs, sr)
			}
			continue
		}
		if r < len(out.streams) && len(out.streams[r]) > 0 {
			srcs = append(srcs, &memFrameSource{rest: out.streams[r]})
		}
	}
	return ReduceFramesStream(srcs, folder, cfg.Codec)
}

// ---------------------------------------------------------------------------
// Chunked input: out-of-core map side

// ChunkSource provides the input of an out-of-core job as random-access
// chunks: one map task per chunk, each read directly into a block, so
// the full input never exists in memory as [][]byte records. ReadChunk
// must be safe for concurrent use and re-readable (task retry).
type ChunkSource interface {
	Chunks() int
	ReadChunk(i int, blk *points.Block) error
}

// BlockMapper routes one input block's rows to partitions. Must be safe
// for concurrent use.
type BlockMapper interface {
	MapBlock(blk *points.Block, emit EmitPoint) error
}

// BlockMapperFunc adapts a function to the BlockMapper interface.
type BlockMapperFunc func(blk *points.Block, emit EmitPoint) error

// MapBlock implements BlockMapper.
func (f BlockMapperFunc) MapBlock(blk *points.Block, emit EmitPoint) error { return f(blk, emit) }

// RunFramesChunked executes an out-of-core frame job: the input arrives
// chunk-at-a-time from src (one map task per chunk), intermediate frames
// spill to cfg.SpillDir when set, and the reduce side streams through
// per-partition folds exactly as RunFramesFold. Nothing in the pipeline
// ever holds the whole input: peak memory is
// workers × (chunk + sealed frames) on the map side and the folds'
// budgets plus decode scratch on the reduce side.
func RunFramesChunked(ctx context.Context, cfg Config, src ChunkSource, mapper BlockMapper, combiner FrameCombiner, folder FrameFolder) (*FrameResult, error) {
	if mapper == nil || folder == nil {
		return nil, fmt.Errorf("mapreduce: %s: mapper and folder must be non-nil", cfg.Name)
	}
	chunks := src.Chunks()
	cfg = cfg.withDefaults(chunks)
	counters := NewCounters()
	start := time.Now()
	cfg.emit("job-start", "", -1, "")
	ctx, jobSpan := telemetry.StartSpan(ctx, "mr-job:"+cfg.Name,
		telemetry.A("job", cfg.Name), telemetry.A("workers", cfg.Workers),
		telemetry.A("reducers", cfg.Reducers), telemetry.A("chunks", chunks),
		telemetry.A("shuffle", "frames-chunked"))
	fail := func(err error) (*FrameResult, error) {
		cfg.emit("job-end", "", -1, err.Error())
		jobSpan.SetAttr("error", err.Error())
		jobSpan.End()
		return nil, err
	}

	// --- Map (+ combine): one task per chunk --------------------------
	cfg.emit("phase-start", "map", -1, "")
	mapCtx, mapSpan := telemetry.StartSpan(ctx, "map", telemetry.A("tasks", chunks))
	mapStart := time.Now()
	outputs := make([]frameTaskOutput, chunks)
	var combineNanos int64
	err := runTasks(mapCtx, cfg.Workers, chunks, func(worker, task int) error {
		var lastErr error
		cfg.emit("task-start", "map", task, "")
		_, span := telemetry.StartSpan(mapCtx, "map-task", telemetry.A("task", task))
		span.SetTrack(worker + 1)
		taskStart := time.Now()
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				counters.Add(CounterMapRetries, 1)
				cfg.emit("task-retry", "map", task, lastErr.Error())
			}
			out, n, err := runChunkMapTask(cfg, task, src, mapper, combiner, counters)
			if err == nil {
				outputs[task] = out
				span.SetAttr("records", n)
				span.End()
				cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task,
					Worker: worker + 1, Duration: time.Since(taskStart), Records: int64(n)})
				return nil
			}
			lastErr = err
		}
		span.SetAttr("error", lastErr.Error())
		span.End()
		cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task, Err: lastErr.Error(),
			Worker: worker + 1, Duration: time.Since(taskStart)})
		return fmt.Errorf("mapreduce: %s: map task %d failed after %d attempt(s): %w",
			cfg.Name, task, cfg.MaxAttempts, lastErr)
	})
	mapSpan.End()
	defer removeFrameSpills(outputs)
	if err != nil {
		return fail(err)
	}
	// Combine time is tallied inside runChunkMapTask via outputs.
	for _, out := range outputs {
		combineNanos += out.combineNanos
	}
	mapDur := time.Since(mapStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "map", Task: -1,
		Duration: mapDur, Records: counters.Get(CounterMapOut)})

	// --- Shuffle (bookkeeping only; frames are pre-partitioned) -------
	cfg.emit("phase-start", "shuffle", -1, "")
	_, shuffleSpan := telemetry.StartSpan(ctx, "shuffle")
	shuffleStart := time.Now()
	var shufRecs, shufBytes int64
	partStats := make(map[int]PartStat)
	for _, out := range outputs {
		shufRecs += out.recs
		shufBytes += out.bytes
		for id, ps := range out.parts {
			acc := partStats[id]
			acc.Records += ps.Records
			acc.Bytes += ps.Bytes
			partStats[id] = acc
		}
	}
	counters.Add(CounterShuffle, shufRecs)
	counters.Add(CounterShuffleBytes, shufBytes)
	shuffleSpan.End()
	shuffleDur := time.Since(shuffleStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "shuffle", Task: -1,
		Duration: shuffleDur, Records: shufRecs})

	// --- Reduce (streaming folds) --------------------------------------
	cfg.emit("phase-start", "reduce", -1, "")
	redCtx, reduceSpan := telemetry.StartSpan(ctx, "reduce", telemetry.A("tasks", cfg.Reducers))
	reduceStart := time.Now()
	blocks, redStats, err := runFrameReducePhase(redCtx, cfg, outputs, nil, folder, counters)
	reduceSpan.End()
	if err != nil {
		return fail(err)
	}
	reduceDur := time.Since(reduceStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "reduce", Task: -1,
		Duration: reduceDur, Records: counters.Get(CounterReduceOut)})
	cfg.emit("job-end", "", -1, "")
	jobSpan.End()

	res := &FrameResult{
		Blocks:           blocks,
		Counters:         counters,
		Partitions:       partStats,
		ReducerPeakBytes: redStats.PeakBytes,
		MergePasses:      redStats.Passes,
		Timing: Timing{
			Map:     mapDur,
			Combine: time.Duration(combineNanos),
			Shuffle: shuffleDur,
			Reduce:  reduceDur,
			Total:   time.Since(start),
		},
	}
	bridgeCounters(cfg, counters, res.Timing)
	return res, nil
}

// runChunkMapTask reads one chunk and maps, combines, seals and
// (optionally) spills it — BuildFrames with a block input.
func runChunkMapTask(cfg Config, task int, src ChunkSource, mapper BlockMapper, combiner FrameCombiner, counters *Counters) (frameTaskOutput, int, error) {
	blk := points.NewBlock(0, 0)
	if err := src.ReadChunk(task, blk); err != nil {
		return frameTaskOutput{}, 0, fmt.Errorf("mapreduce: %s: reading chunk %d: %w", cfg.Name, task, err)
	}
	n := blk.Len()
	counters.Add(CounterMapIn, int64(n))
	fb := frameBuilderPool.Get().(*frameBuilder)
	defer func() {
		fb.reset()
		frameBuilderPool.Put(fb)
	}()
	var st FrameStats
	if err := mapper.MapBlock(blk, fb.add); err != nil {
		return frameTaskOutput{}, 0, err
	}
	if fb.err != nil {
		return frameTaskOutput{}, 0, fb.err
	}
	st.Partitions = make(map[int]PartStat, len(fb.touched))
	for _, p := range fb.touched {
		c := int64(fb.blocks[p].Len())
		st.MapOut += c
		st.Partitions[p] = PartStat{Records: c}
	}
	counters.Add(CounterMapOut, st.MapOut)
	if combiner != nil {
		cs := time.Now()
		for _, p := range fb.touched {
			b := fb.blocks[p]
			if b.Len() == 0 {
				continue
			}
			st.CombineIn += int64(b.Len())
			out, err := combiner(p, b)
			if err != nil {
				return frameTaskOutput{}, 0, fmt.Errorf("frame combiner: %w", err)
			}
			fb.blocks[p] = out
			st.CombineOut += int64(out.Len())
		}
		st.CombineNanos = time.Since(cs).Nanoseconds()
		counters.Add(CounterCombineIn, st.CombineIn)
		counters.Add(CounterCombineOut, st.CombineOut)
	}
	streams, recs, bytes := fb.seal(cfg.Reducers, st.Partitions, cfg.Codec)
	out := frameTaskOutput{recs: recs, bytes: bytes, parts: st.Partitions,
		combineNanos: st.CombineNanos}
	if cfg.SpillDir == "" {
		out.streams = streams
		return out, n, nil
	}
	files, err := spillFrameStreams(cfg, task, streams, counters)
	if err != nil {
		return frameTaskOutput{}, 0, err
	}
	out.files = files
	return out, n, nil
}
