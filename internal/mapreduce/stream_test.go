package mapreduce

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

// budgetFold adapts skyline.BudgetedFold to the FrameFold interface the
// way the driver does, reporting its peak through FoldPeaker.
type budgetFold struct {
	partition int
	fold      *skyline.BudgetedFold
	stats     skyline.FoldStats
}

func newBudgetFold(partition, dim int, budget int64, dir string) *budgetFold {
	return &budgetFold{partition: partition,
		fold: skyline.NewBudgetedFold(dim, budget, dir, points.FrameAuto)}
}

func (b *budgetFold) Absorb(blk *points.Block) error { return b.fold.Absorb(blk) }

func (b *budgetFold) Finish(emit EmitPoint) error {
	out, err := b.fold.Finish()
	if err != nil {
		return err
	}
	b.stats = b.fold.Stats()
	for i := 0; i < out.Len(); i++ {
		emit(b.partition, out.Row(i))
	}
	return nil
}

func (b *budgetFold) PeakBytes() int64 { return b.fold.Stats().PeakBytes }
func (b *budgetFold) Passes() int      { return b.fold.Stats().Passes }

// canonicalBlocks renders a result's blocks as sorted strings per
// partition for multiset comparison.
func canonicalBlocks(t *testing.T, blocks map[int]*points.Block) map[int][]string {
	t.Helper()
	out := make(map[int][]string, len(blocks))
	for p, blk := range blocks {
		rows := make([]string, blk.Len())
		for i := 0; i < blk.Len(); i++ {
			rows[i] = fmt.Sprintf("%x", blk.Row(i))
		}
		sort.Strings(rows)
		out[p] = rows
	}
	return out
}

func streamTestInput(rng *rand.Rand, n, d int) [][]byte {
	input := make([][]byte, n)
	for i := range input {
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = rng.Float64()
		}
		input[i] = points.Encode(points.Point(coords))
	}
	return input
}

// streamSkyMapper routes each decoded point to partition hash(first
// coordinate) mod parts.
func streamSkyMapper(d, parts int) FrameMapper {
	return FrameMapperFunc(func(rec []byte, emit EmitPoint) error {
		p, err := points.Decode(rec)
		if err != nil {
			return err
		}
		part := int(p[0]*1e6) % parts
		if part < 0 {
			part = 0
		}
		emit(part, p)
		return nil
	})
}

// skylineReducer computes each partition's skyline via the in-memory
// flat kernel — the oracle the budgeted path must match.
func skylineReducer() FrameReducer {
	return FrameReducerFunc(func(partition int, blk *points.Block, emit EmitPoint) error {
		out := skyline.BlockBNL(blk)
		for i := 0; i < out.Len(); i++ {
			emit(partition, out.Row(i))
		}
		return nil
	})
}

// TestRunFramesFoldOracle: the streaming budgeted reduce must produce
// exactly the in-memory reduce's skyline, partition by partition, under
// generous and tiny budgets (the latter forcing multi-pass folds),
// in-memory and spilled shuffles.
func TestRunFramesFoldOracle(t *testing.T) {
	const n, d, parts = 4000, 4, 6
	rng := rand.New(rand.NewSource(21))
	input := streamTestInput(rng, n, d)
	mapper := streamSkyMapper(d, parts)

	oracle, err := RunFrames(context.Background(),
		Config{Name: "oracle", Workers: 4, Reducers: 3},
		input, mapper, nil, skylineReducer())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := canonicalBlocks(t, oracle.Blocks)

	for _, tc := range []struct {
		name   string
		budget int64
		spill  bool
		codec  points.FrameCodec
	}{
		{"ample-mem", 1 << 20, false, points.FrameDefault},
		{"ample-spill-v2", 1 << 20, true, points.FrameAuto},
		{"tiny-mem", int64(d) * 8 * 8, false, points.FrameDefault}, // 8-row windows
		{"tiny-spill-v2", int64(d) * 8 * 8, true, points.FrameAuto},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Name: "fold-" + tc.name, Workers: 4, Reducers: 3,
				Codec: tc.codec, ReducerBudgetBytes: tc.budget}
			if tc.spill {
				cfg.SpillDir = dir
			}
			folder := func(partition int) FrameFold {
				return newBudgetFold(partition, d, tc.budget, dir)
			}
			res, err := RunFramesFold(context.Background(), cfg, input, mapper, nil, folder)
			if err != nil {
				t.Fatalf("RunFramesFold: %v", err)
			}
			got := canonicalBlocks(t, res.Blocks)
			if len(got) != len(want) {
				t.Fatalf("%d partitions, want %d", len(got), len(want))
			}
			for p, rows := range want {
				if len(got[p]) != len(rows) {
					t.Fatalf("partition %d: %d rows, want %d", p, len(got[p]), len(rows))
				}
				for i := range rows {
					if got[p][i] != rows[i] {
						t.Fatalf("partition %d row %d differs", p, i)
					}
				}
			}
			if res.ReducerPeakBytes <= 0 {
				t.Fatal("ReducerPeakBytes not recorded")
			}
			if tc.budget < 1<<12 && res.MergePasses < 2 {
				t.Fatalf("tiny budget resolved in %d pass(es); expected multi-pass", res.MergePasses)
			}
		})
	}
}

// chunkSrc serves deterministic chunks: chunk i holds rows seeded by i,
// so retries and the oracle see identical data.
type chunkSrc struct {
	chunks, per, d int
}

func (c chunkSrc) Chunks() int { return c.chunks }

func (c chunkSrc) ReadChunk(i int, blk *points.Block) error {
	rng := rand.New(rand.NewSource(int64(i) * 7919))
	row := make([]float64, c.d)
	for p := 0; p < c.per; p++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		blk.AppendRow(row)
	}
	return nil
}

// TestRunFramesChunkedOracle: the chunked out-of-core engine must match
// RunFrames over the equivalent materialized input.
func TestRunFramesChunkedOracle(t *testing.T) {
	const chunks, per, d, parts = 16, 250, 5, 4
	src := chunkSrc{chunks: chunks, per: per, d: d}

	// Materialize the same rows for the oracle.
	var input [][]byte
	for i := 0; i < chunks; i++ {
		blk := points.NewBlock(d, per)
		if err := src.ReadChunk(i, blk); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < blk.Len(); r++ {
			input = append(input, points.Encode(points.Point(blk.Row(r))))
		}
	}
	mapper := streamSkyMapper(d, parts)
	oracle, err := RunFrames(context.Background(),
		Config{Name: "chunk-oracle", Workers: 4, Reducers: 2},
		input, mapper, nil, skylineReducer())
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	want := canonicalBlocks(t, oracle.Blocks)

	blockMapper := BlockMapperFunc(func(blk *points.Block, emit EmitPoint) error {
		for i := 0; i < blk.Len(); i++ {
			row := blk.Row(i)
			part := int(row[0]*1e6) % parts
			if part < 0 {
				part = 0
			}
			emit(part, row)
		}
		return nil
	})
	combiner := func(partition int, blk *points.Block) (*points.Block, error) {
		return skyline.BlockBNL(blk), nil
	}

	for _, budget := range []int64{1 << 20, int64(d) * 8 * 4} {
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Name: "chunked", Workers: 4, Reducers: 2,
				SpillDir: dir, Codec: points.FrameAuto, ReducerBudgetBytes: budget}
			folder := func(partition int) FrameFold {
				return newBudgetFold(partition, d, budget, dir)
			}
			res, err := RunFramesChunked(context.Background(), cfg, src, blockMapper, combiner, folder)
			if err != nil {
				t.Fatalf("RunFramesChunked: %v", err)
			}
			// The combiner shrinks map output to local skylines; the global
			// per-partition skyline is the skyline of local skylines, so the
			// oracle (no combiner) must still match exactly.
			got := canonicalBlocks(t, res.Blocks)
			for p, rows := range want {
				if len(got[p]) != len(rows) {
					t.Fatalf("partition %d: %d rows, want %d", p, len(got[p]), len(rows))
				}
				for i := range rows {
					if got[p][i] != rows[i] {
						t.Fatalf("partition %d row %d differs", p, i)
					}
				}
			}
			if res.Counters.Get(CounterMapIn) != int64(chunks*per) {
				t.Fatalf("map-in %d, want %d", res.Counters.Get(CounterMapIn), chunks*per)
			}
			if res.ReducerPeakBytes <= 0 {
				t.Fatal("ReducerPeakBytes not recorded")
			}
		})
	}
}

// TestFrameCodecOnShuffle: a v2/auto-codec job must move fewer or equal
// shuffle bytes than the identical v1 job and produce identical output.
func TestFrameCodecOnShuffle(t *testing.T) {
	const n, d, parts = 2000, 6, 4
	rng := rand.New(rand.NewSource(77))
	// Clustered input: shared exponents/mantissa prefixes, v2's case.
	input := make([][]byte, n)
	for i := range input {
		coords := make([]float64, d)
		base := float64(i%7) / 7
		for j := range coords {
			coords[j] = base + rng.NormFloat64()*1e-4
		}
		input[i] = points.Encode(points.Point(coords))
	}
	mapper := streamSkyMapper(d, parts)

	run := func(codec points.FrameCodec) *FrameResult {
		res, err := RunFrames(context.Background(),
			Config{Name: "codec", Workers: 2, Reducers: 2, Codec: codec},
			input, mapper, nil, skylineReducer())
		if err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
		return res
	}
	v1 := run(points.FrameV1)
	v2 := run(points.FrameAuto)

	wantRows := canonicalBlocks(t, v1.Blocks)
	gotRows := canonicalBlocks(t, v2.Blocks)
	for p, rows := range wantRows {
		for i := range rows {
			if gotRows[p][i] != rows[i] {
				t.Fatalf("codec changed partition %d row %d", p, i)
			}
		}
	}
	b1 := v1.Counters.Get(CounterShuffleBytes)
	b2 := v2.Counters.Get(CounterShuffleBytes)
	if b2 >= b1 {
		t.Fatalf("auto codec shuffled %d bytes, v1 %d — no compression on clustered input", b2, b1)
	}
}
