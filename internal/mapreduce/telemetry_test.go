package mapreduce

import (
	"context"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestEngineSpans: with a tracer in the context, a job must record a
// root span with map/shuffle/reduce children and per-task spans
// tracked by worker slot.
func TestEngineSpans(t *testing.T) {
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	cfg := Config{Name: "spanned", Workers: 2, Reducers: 2, SplitSize: 1}
	input := [][]byte{[]byte("a b"), []byte("c d"), []byte("e")}
	if _, err := Run(ctx, cfg, input, traceMapper(), traceReducer()); err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byName := map[string][]telemetry.SpanData{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	jobs := byName["mr-job:spanned"]
	if len(jobs) != 1 {
		t.Fatalf("job spans = %d, want 1", len(jobs))
	}
	root := jobs[0]
	if root.Parent != 0 {
		t.Error("job span has a parent")
	}
	for _, phase := range []string{"map", "shuffle", "reduce"} {
		ps := byName[phase]
		if len(ps) != 1 {
			t.Fatalf("%s spans = %d, want 1", phase, len(ps))
		}
		if ps[0].Parent != root.ID {
			t.Errorf("%s span not a child of the job span", phase)
		}
	}
	if len(byName["map-task"]) != 3 {
		t.Errorf("map-task spans = %d, want 3", len(byName["map-task"]))
	}
	for _, ts := range byName["map-task"] {
		if ts.Parent != byName["map"][0].ID {
			t.Error("map-task span not a child of the map phase span")
		}
		if ts.Track < 1 || ts.Track > 2 {
			t.Errorf("map-task track = %d, want a 1-based worker slot", ts.Track)
		}
	}
	if len(byName["reduce-task"]) != 2 {
		t.Errorf("reduce-task spans = %d, want 2", len(byName["reduce-task"]))
	}
}

// TestEngineMetricsBridge: with a registry configured, framework
// counters and phase timings must land in mr_* series.
func TestEngineMetricsBridge(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{Name: "metered", Workers: 2, SplitSize: 1, Metrics: reg}
	input := [][]byte{[]byte("x y"), []byte("z")}
	res, err := Run(context.Background(), cfg, input, traceMapper(), traceReducer())
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(sb.String())
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if got := samples[`mr_map_records_in_total{job="metered"}`]; got != 2 {
		t.Errorf("bridged map-in = %v, want 2", got)
	}
	if got := samples[`mr_jobs_total{job="metered"}`]; got != 1 {
		t.Errorf("mr_jobs_total = %v, want 1", got)
	}
	if got := samples[`mr_phase_seconds_count{job="metered",phase="map"}`]; got != 1 {
		t.Errorf("phase histogram count = %v, want 1", got)
	}
	// Bridged values must equal the job's own counters.
	if got := samples[`mr_shuffle_records_total{job="metered"}`]; int64(got) != res.Counters.Get(CounterShuffle) {
		t.Errorf("bridged shuffle = %v, counters say %d", got, res.Counters.Get(CounterShuffle))
	}
	if res.Counters.Get(CounterShuffleBytes) <= 0 {
		t.Error("no shuffle bytes counted")
	}
}

// TestTelemetryOffNoAllocObservable: nil Metrics and no tracer must not
// record anything anywhere (the default-off contract for library code).
func TestTelemetryOffIsInert(t *testing.T) {
	cfg := Config{Name: "dark", Workers: 1}
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("a")}, traceMapper(), traceReducer()); err != nil {
		t.Fatal(err)
	}
}
