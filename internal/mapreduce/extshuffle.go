package mapreduce

import (
	"container/heap"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/sequencefile"
)

// External (sort-merge) shuffle: when spilling is enabled, each map task
// writes its per-reducer output as a run sorted by key, and the reduce
// phase consumes a streaming k-way merge over those runs — one key group
// in memory at a time, the way disk-era MapReduce actually shuffled. The
// in-memory path keeps the hash-group shuffle.

// groupSource yields one reduce key group at a time.
type groupSource interface {
	// next returns the next group; ok=false at the end.
	next() (group, bool, error)
	// reset rewinds the source for a task retry.
	reset() error
	// close releases resources and deletes backing files (idempotent).
	close() error
}

// sliceGroups adapts the in-memory shuffle result.
type sliceGroups struct {
	groups []group
	pos    int
}

func (s *sliceGroups) next() (group, bool, error) {
	if s.pos >= len(s.groups) {
		return group{}, false, nil
	}
	g := s.groups[s.pos]
	s.pos++
	return g, true, nil
}

func (s *sliceGroups) reset() error { s.pos = 0; return nil }
func (s *sliceGroups) close() error { return nil }

// mergeStream is a k-way merge over sorted spill runs for one reducer.
type mergeStream struct {
	files    []string
	counters *Counters
	readers  []*sequencefile.Reader
	closers  []io.Closer
	h        recordHeap
	opened   bool
}

// newMergeStream prepares a merge over the given spill files (each sorted
// by key; empty paths are skipped). Files are deleted on close.
func newMergeStream(files []string, counters *Counters) *mergeStream {
	return &mergeStream{files: files, counters: counters}
}

func (m *mergeStream) open() error {
	m.opened = true
	for i, name := range m.files {
		if name == "" {
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			return fmt.Errorf("mapreduce: opening spill run: %w", err)
		}
		r := sequencefile.NewReader(f)
		m.readers = append(m.readers, r)
		m.closers = append(m.closers, f)
		rec, err := r.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return fmt.Errorf("mapreduce: reading spill run: %w", err)
		}
		heap.Push(&m.h, headRecord{key: string(rec.Key), value: rec.Value, src: len(m.readers) - 1, seq: i})
	}
	return nil
}

func (m *mergeStream) next() (group, bool, error) {
	if !m.opened {
		if err := m.open(); err != nil {
			return group{}, false, err
		}
	}
	if m.h.Len() == 0 {
		return group{}, false, nil
	}
	key := m.h[0].key
	g := group{key: key}
	for m.h.Len() > 0 && m.h[0].key == key {
		head := heap.Pop(&m.h).(headRecord)
		g.values = append(g.values, head.value)
		if m.counters != nil {
			m.counters.Add(CounterShuffle, 1)
			m.counters.Add(CounterShuffleBytes, int64(len(key)+len(head.value)))
		}
		rec, err := m.readers[head.src].Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return group{}, false, fmt.Errorf("mapreduce: reading spill run: %w", err)
		}
		if string(rec.Key) < key {
			return group{}, false, fmt.Errorf("mapreduce: spill run not sorted (%q after %q)", rec.Key, key)
		}
		heap.Push(&m.h, headRecord{key: string(rec.Key), value: rec.Value, src: head.src, seq: head.seq})
	}
	return g, true, nil
}

// reset rewinds for a retry: handles are closed but the backing files
// survive so the merge can be replayed.
func (m *mergeStream) reset() error {
	var first error
	for _, c := range m.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.closers = nil
	m.readers = nil
	m.h = nil
	m.opened = false
	return first
}

func (m *mergeStream) close() error {
	first := m.reset()
	for _, name := range m.files {
		if name == "" {
			continue
		}
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	m.files = nil
	return first
}

// headRecord is one pending record in the merge heap. seq (the source
// file's task order) breaks key ties so values keep deterministic
// task-major order.
type headRecord struct {
	key   string
	value []byte
	src   int
	seq   int
}

type recordHeap []headRecord

func (h recordHeap) Len() int { return len(h) }
func (h recordHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].seq < h[j].seq
}
func (h recordHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *recordHeap) Push(x interface{}) { *h = append(*h, x.(headRecord)) }
func (h *recordHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// sortPairsByKey orders one partition's pairs by key (stable, preserving
// emission order within a key) so the spill file is a sorted run.
func sortPairsByKey(pairs []Pair) {
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
}

// buildGroupSources produces one group source per reducer: merge streams
// over sorted spill runs when the job spilled, in-memory groups otherwise.
func buildGroupSources(cfg Config, tasks []taskOutput, counters *Counters) ([]groupSource, error) {
	spilled := cfg.SpillDir != ""
	if !spilled {
		groups, err := shuffle(cfg, tasks, counters)
		if err != nil {
			return nil, err
		}
		out := make([]groupSource, len(groups))
		for r := range groups {
			out[r] = &sliceGroups{groups: groups[r]}
		}
		return out, nil
	}
	out := make([]groupSource, cfg.Reducers)
	for r := 0; r < cfg.Reducers; r++ {
		files := make([]string, 0, len(tasks))
		for _, t := range tasks {
			if r < len(t.files) && t.files[r] != "" {
				files = append(files, t.files[r])
			}
		}
		out[r] = newMergeStream(files, counters)
	}
	return out, nil
}
