package mapreduce

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/points"
)

// writeTestFrameSpill seals a few frames into one spill file and returns
// the path plus the frames as written.
func writeTestFrameSpill(t *testing.T, compress bool) (string, [][]byte) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{Name: "spilltest", SpillDir: dir, CompressSpill: compress}
	var stream []byte
	var frames [][]byte
	for i := 0; i < 4; i++ {
		blk := points.NewBlock(3, 8)
		for p := 0; p < 5+i; p++ {
			blk.AppendRow([]float64{float64(i), float64(p), float64(i * p)})
		}
		frame := points.AppendFrame(nil, i, blk)
		frames = append(frames, frame)
		stream = append(stream, frame...)
	}
	files, err := spillFrameStreams(cfg, 0, [][]byte{stream}, NewCounters())
	if err != nil {
		t.Fatalf("spillFrameStreams: %v", err)
	}
	return files[0], frames
}

func TestFrameSpillReaderStreams(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name, want := writeTestFrameSpill(t, compress)
		r, err := openFrameSpill(name)
		if err != nil {
			t.Fatalf("openFrameSpill: %v", err)
		}
		var got [][]byte
		for {
			frame, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			got = append(got, frame)
		}
		r.Close()
		if len(got) != len(want) {
			t.Fatalf("compress=%v: %d frames, want %d", compress, len(got), len(want))
		}
		for i := range want {
			if string(got[i]) != string(want[i]) {
				t.Fatalf("compress=%v: frame %d not byte-identical", compress, i)
			}
		}
	}
}

func TestFrameSpillTruncatedTyped(t *testing.T) {
	name, _ := writeTestFrameSpill(t, false)
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}

	// Chop the file mid-record: the reader must surface ErrSpillTruncated,
	// not io.EOF (a silent short read).
	cut := filepath.Join(t.TempDir(), "cut.fseq")
	if err := os.WriteFile(cut, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := openFrameSpill(cut)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sawTruncated := false
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, ErrSpillTruncated) {
				t.Fatalf("want ErrSpillTruncated, got %v", err)
			}
			sawTruncated = true
			break
		}
	}
	if !sawTruncated {
		t.Fatal("truncated spill read to EOF without a typed error")
	}

	// Flip a payload byte: checksum failure is the same typed error.
	data[len(data)-10] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.fseq")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrameSpill(bad); !errors.Is(err, ErrSpillTruncated) {
		t.Fatalf("corrupt spill: want ErrSpillTruncated, got %v", err)
	}
}
