package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

func TestExternalShuffleMatchesInMemory(t *testing.T) {
	input := make([][]byte, 300)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("k%02d v%d", i%17, i))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		parts := strings.Fields(string(rec))
		emit(parts[0], []byte(parts[1]))
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		// Concatenate values in order: detects both grouping and value
		// ordering differences between the two shuffle paths.
		var sb strings.Builder
		for _, v := range values {
			sb.Write(v)
			sb.WriteByte(',')
		}
		emit(key, []byte(sb.String()))
		return nil
	})
	runWith := func(spill string) []Pair {
		res, err := Run(context.Background(),
			Config{Workers: 3, Reducers: 3, SplitSize: 20, SpillDir: spill},
			input, mapper, reducer)
		if err != nil {
			t.Fatal(err)
		}
		return res.Pairs
	}
	mem := runWith("")
	ext := runWith(t.TempDir())
	if len(mem) != len(ext) {
		t.Fatalf("pair counts differ: %d vs %d", len(mem), len(ext))
	}
	for i := range mem {
		if mem[i].Key != ext[i].Key || string(mem[i].Value) != string(ext[i].Value) {
			t.Fatalf("pair %d differs:\n mem: %s=%s\n ext: %s=%s",
				i, mem[i].Key, mem[i].Value, ext[i].Key, ext[i].Value)
		}
	}
}

func TestExternalShuffleReduceRetry(t *testing.T) {
	// A reduce task that fails on its first attempt must be replayable
	// from the spill runs (mergeStream.reset path).
	dir := t.TempDir()
	var failures int32
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		emit("k", rec)
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		if atomic.AddInt32(&failures, 1) == 1 {
			return errors.New("transient reduce failure")
		}
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	res, err := Run(context.Background(),
		Config{Workers: 1, Reducers: 1, SplitSize: 5, SpillDir: dir, MaxAttempts: 3},
		[][]byte{[]byte("a"), []byte("b"), []byte("c"), []byte("d"), []byte("e"), []byte("f")},
		mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || string(res.Pairs[0].Value) != "6" {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	if res.Counters.Get(CounterRedRetries) == 0 {
		t.Error("no reduce retry recorded")
	}
	left, err := filepath.Glob(filepath.Join(dir, "*.seq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("leftover spill runs after retry: %v", left)
	}
}

func TestExternalShuffleCountsRecords(t *testing.T) {
	dir := t.TempDir()
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		emit(string(rec), nil)
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, nil)
		return nil
	})
	res, err := Run(context.Background(), Config{SpillDir: dir, SplitSize: 1},
		[][]byte{[]byte("a"), []byte("b"), []byte("a")}, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterShuffle); got != 3 {
		t.Errorf("streamed shuffle counted %d records, want 3", got)
	}
}

func TestMergeStreamManyRuns(t *testing.T) {
	// Many map tasks × few reducers: groups span many sorted runs.
	dir := t.TempDir()
	input := make([][]byte, 200)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("key%d", i%5))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		emit(string(rec), []byte("x"))
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	res, err := Run(context.Background(),
		Config{Workers: 4, Reducers: 2, SplitSize: 3, SpillDir: dir},
		input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, p := range res.Pairs {
		counts[p.Key] = string(p.Value)
	}
	for i := 0; i < 5; i++ {
		if counts[fmt.Sprintf("key%d", i)] != "40" {
			t.Errorf("key%d count = %s, want 40", i, counts[fmt.Sprintf("key%d", i)])
		}
	}
}

func TestCompressedSpillSameResult(t *testing.T) {
	input := make([][]byte, 120)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("k%d payload-%d", i%9, i))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		parts := strings.Fields(string(rec))
		emit(parts[0], []byte(parts[1]))
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	plain, err := Run(context.Background(),
		Config{Workers: 2, Reducers: 2, SplitSize: 10, SpillDir: t.TempDir()},
		input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	compressed, err := Run(context.Background(),
		Config{Workers: 2, Reducers: 2, SplitSize: 10, SpillDir: t.TempDir(), CompressSpill: true},
		input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Pairs) != len(compressed.Pairs) {
		t.Fatalf("pair counts differ: %d vs %d", len(plain.Pairs), len(compressed.Pairs))
	}
	for i := range plain.Pairs {
		if plain.Pairs[i].Key != compressed.Pairs[i].Key ||
			string(plain.Pairs[i].Value) != string(compressed.Pairs[i].Value) {
			t.Fatalf("pair %d differs", i)
		}
	}
	if compressed.Counters.Get(CounterSpillBytes) >= plain.Counters.Get(CounterSpillBytes) {
		t.Errorf("compression did not shrink spill: %d vs %d bytes",
			compressed.Counters.Get(CounterSpillBytes), plain.Counters.Get(CounterSpillBytes))
	}
}
