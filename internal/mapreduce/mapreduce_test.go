package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// wordCount splits records into words and counts them — the canonical
// smoke test for any MapReduce engine.
func wordCountJob(t *testing.T, cfg Config, docs []string) map[string]int {
	t.Helper()
	input := make([][]byte, len(docs))
	for i, d := range docs {
		input[i] = []byte(d)
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		for _, w := range strings.Fields(string(rec)) {
			emit(w, []byte("1"))
		}
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(v))
			if err != nil {
				return err
			}
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	})
	res, err := Run(context.Background(), cfg, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]int{}
	for _, p := range res.Pairs {
		n, err := strconv.Atoi(string(p.Value))
		if err != nil {
			t.Fatal(err)
		}
		out[p.Key] = n
	}
	return out
}

var wcDocs = []string{
	"the quick brown fox",
	"the lazy dog",
	"the quick dog jumps",
	"fox and dog and fox",
}

var wcWant = map[string]int{
	"the": 3, "quick": 2, "brown": 1, "fox": 3, "lazy": 1,
	"dog": 3, "jumps": 1, "and": 2,
}

func TestWordCount(t *testing.T) {
	got := wordCountJob(t, Config{Name: "wc", Workers: 4, Reducers: 3, SplitSize: 1}, wcDocs)
	if len(got) != len(wcWant) {
		t.Fatalf("got %v, want %v", got, wcWant)
	}
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestWordCountWithCombiner(t *testing.T) {
	sum := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	})
	cfg := Config{Name: "wc-comb", Workers: 2, Reducers: 2, SplitSize: 2, Combiner: sum}
	got := wordCountJob(t, cfg, wcDocs)
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	input := make([][]byte, 100)
	for i := range input {
		input[i] = []byte("same-key")
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		emit(string(rec), []byte("1"))
		return nil
	})
	count := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	sum := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		total := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	})

	noComb, err := Run(context.Background(), Config{Workers: 2, SplitSize: 10}, input, mapper, count)
	if err != nil {
		t.Fatal(err)
	}
	withComb, err := Run(context.Background(), Config{Workers: 2, SplitSize: 10, Combiner: sum}, input, mapper, sum)
	if err != nil {
		t.Fatal(err)
	}
	if n, w := noComb.Counters.Get(CounterShuffle), withComb.Counters.Get(CounterShuffle); w >= n {
		t.Errorf("combiner did not cut shuffle volume: %d -> %d", n, w)
	}
	// Both must still compute the same total.
	if string(withComb.Pairs[0].Value) != "100" {
		t.Errorf("combined total = %s, want 100", withComb.Pairs[0].Value)
	}
}

func TestDeterministicOutputAcrossRuns(t *testing.T) {
	var ref []Pair
	for trial := 0; trial < 5; trial++ {
		input := make([][]byte, 200)
		for i := range input {
			input[i] = []byte(fmt.Sprintf("doc %d word%d shared", i, i%7))
		}
		mapper := MapperFunc(func(rec []byte, emit Emit) error {
			for _, w := range strings.Fields(string(rec)) {
				emit(w, []byte(w))
			}
			return nil
		})
		reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		})
		res, err := Run(context.Background(), Config{Workers: 8, Reducers: 4, SplitSize: 3}, input, mapper, reducer)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = res.Pairs
			continue
		}
		if len(res.Pairs) != len(ref) {
			t.Fatalf("trial %d: %d pairs, want %d", trial, len(res.Pairs), len(ref))
		}
		for i := range ref {
			if res.Pairs[i].Key != ref[i].Key || string(res.Pairs[i].Value) != string(ref[i].Value) {
				t.Fatalf("trial %d: pair %d = %v, want %v", trial, i, res.Pairs[i], ref[i])
			}
		}
	}
}

func TestFrameworkCounters(t *testing.T) {
	cfg := Config{Workers: 2, Reducers: 2, SplitSize: 1}
	input := [][]byte{[]byte("a b"), []byte("a")}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		for _, w := range strings.Fields(string(rec)) {
			emit(w, nil)
		}
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, nil)
		return nil
	})
	res, err := Run(context.Background(), cfg, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if got := c.Get(CounterMapIn); got != 2 {
		t.Errorf("map in = %d, want 2", got)
	}
	if got := c.Get(CounterMapOut); got != 3 {
		t.Errorf("map out = %d, want 3", got)
	}
	if got := c.Get(CounterShuffle); got != 3 {
		t.Errorf("shuffle = %d, want 3", got)
	}
	if got := c.Get(CounterGroups); got != 2 {
		t.Errorf("groups = %d, want 2", got)
	}
	if got := c.Get(CounterReduceOut); got != 2 {
		t.Errorf("reduce out = %d, want 2", got)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	mapper := MapperFunc(func(rec []byte, emit Emit) error { return boom })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
	_, err := Run(context.Background(), Config{Name: "failing"}, [][]byte{[]byte("x")}, mapper, reducer)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
	if err == nil || !strings.Contains(err.Error(), "failing") {
		t.Errorf("error %v does not name the job", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	boom := errors.New("reduce-boom")
	mapper := MapperFunc(func(rec []byte, emit Emit) error { emit("k", rec); return nil })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return boom })
	_, err := Run(context.Background(), Config{}, [][]byte{[]byte("x")}, mapper, reducer)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestCombinerErrorPropagates(t *testing.T) {
	boom := errors.New("combine-boom")
	mapper := MapperFunc(func(rec []byte, emit Emit) error { emit("k", rec); return nil })
	ok := ReducerFunc(func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil })
	bad := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return boom })
	_, err := Run(context.Background(), Config{Combiner: bad}, [][]byte{[]byte("x")}, mapper, ok)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestFlakyMapTaskRetried(t *testing.T) {
	var failures int32
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		// First attempt of each record fails; retry succeeds.
		if atomic.AddInt32(&failures, 1)%2 == 1 {
			return errors.New("transient")
		}
		emit("k", rec)
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	res, err := Run(context.Background(),
		Config{Workers: 1, SplitSize: 1, MaxAttempts: 3},
		[][]byte{[]byte("a")}, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters.Get(CounterMapRetries); got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
	if len(res.Pairs) != 1 || string(res.Pairs[0].Value) != "1" {
		t.Errorf("pairs = %v", res.Pairs)
	}
}

func TestPersistentFailureExhaustsAttempts(t *testing.T) {
	mapper := MapperFunc(func(rec []byte, emit Emit) error { return errors.New("always") })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
	_, err := Run(context.Background(), Config{MaxAttempts: 3}, [][]byte{[]byte("x")}, mapper, reducer)
	if err == nil || !strings.Contains(err.Error(), "3 attempt(s)") {
		t.Errorf("err = %v, want exhausted-attempts failure", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	block := make(chan struct{})
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		once.Do(func() { close(started) })
		<-block
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
	input := make([][]byte, 100)
	for i := range input {
		input[i] = []byte("x")
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, Config{Workers: 1, SplitSize: 1}, input, mapper, reducer)
		done <- err
	}()
	<-started
	cancel()
	close(block)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestNilMapperRejected(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil, nil, ReducerFunc(func(string, [][]byte, Emit) error { return nil })); err == nil {
		t.Error("nil mapper accepted")
	}
	if _, err := Run(context.Background(), Config{}, nil, MapperFunc(func([]byte, Emit) error { return nil }), nil); err == nil {
		t.Error("nil reducer accepted")
	}
}

func TestEmptyInput(t *testing.T) {
	mapper := MapperFunc(func(rec []byte, emit Emit) error { emit("k", rec); return nil })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil })
	res, err := Run(context.Background(), Config{}, nil, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("pairs = %v, want none", res.Pairs)
	}
}

func TestSpillMode(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Name: "spilled", Workers: 3, Reducers: 2, SplitSize: 1, SpillDir: dir}
	got := wordCountJob(t, cfg, wcDocs)
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
	// Spill files must be cleaned up after the shuffle.
	left, err := filepath.Glob(filepath.Join(dir, "*.seq"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("leftover spill files: %v", left)
	}
}

func TestSpillBytesCounter(t *testing.T) {
	dir := t.TempDir()
	input := [][]byte{[]byte("hello world hello")}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		for _, w := range strings.Fields(string(rec)) {
			emit(w, []byte("1"))
		}
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil })
	res, err := Run(context.Background(), Config{SpillDir: dir}, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(CounterSpillBytes) <= 0 {
		t.Error("spill bytes counter not incremented")
	}
}

func TestSpillDirMissing(t *testing.T) {
	cfg := Config{SpillDir: filepath.Join(os.TempDir(), "definitely-missing-dir-xyz")}
	mapper := MapperFunc(func(rec []byte, emit Emit) error { emit("k", rec); return nil })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { return nil })
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("x")}, mapper, reducer); err == nil {
		t.Error("missing spill dir accepted")
	}
}

func TestTimingPopulated(t *testing.T) {
	got := wordCountJob(t, Config{Workers: 2}, wcDocs)
	if len(got) == 0 {
		t.Fatal("no output")
	}
	input := make([][]byte, len(wcDocs))
	for i, d := range wcDocs {
		input[i] = []byte(d)
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error { emit("k", rec); return nil })
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil })
	res, err := Run(context.Background(), Config{}, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	if tm.Total <= 0 {
		t.Error("total timing not recorded")
	}
	if tm.Total < tm.Map || tm.Total < tm.Reduce {
		t.Errorf("phase timings exceed total: %+v", tm)
	}
}

func TestTimingAdd(t *testing.T) {
	a := Timing{Map: 1, Combine: 2, Shuffle: 3, Reduce: 4, Total: 10}
	b := Timing{Map: 10, Combine: 20, Shuffle: 30, Reduce: 40, Total: 100}
	a.Add(b)
	if a.Map != 11 || a.Combine != 22 || a.Shuffle != 33 || a.Reduce != 44 || a.Total != 110 {
		t.Errorf("Add = %+v", a)
	}
}

func TestCountersSnapshot(t *testing.T) {
	c := NewCounters()
	c.Add("x", 2)
	c.Add("x", 3)
	c.Add("y", 1)
	snap := c.Snapshot()
	if snap["x"] != 5 || snap["y"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	snap["x"] = 99
	if c.Get("x") != 5 {
		t.Error("snapshot aliases live counters")
	}
}

func TestPartitionOfStableAndInRange(t *testing.T) {
	for _, key := range []string{"", "a", "partition-7", "日本語"} {
		p1 := partitionOf(key, 7)
		p2 := partitionOf(key, 7)
		if p1 != p2 {
			t.Errorf("partitionOf(%q) unstable", key)
		}
		if p1 < 0 || p1 >= 7 {
			t.Errorf("partitionOf(%q) = %d out of range", key, p1)
		}
	}
	if partitionOf("anything", 1) != 0 {
		t.Error("single reducer must get everything")
	}
}

func TestManyWorkersFewTasks(t *testing.T) {
	got := wordCountJob(t, Config{Workers: 64, SplitSize: 100}, wcDocs)
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func BenchmarkWordCount(b *testing.B) {
	input := make([][]byte, 1000)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("word%d common word%d common common", i%50, i%13))
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		for _, w := range strings.Fields(string(rec)) {
			emit(w, []byte("1"))
		}
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, []byte(strconv.Itoa(len(values))))
		return nil
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(context.Background(), Config{Workers: 4}, input, mapper, reducer); err != nil {
			b.Fatal(err)
		}
	}
}
