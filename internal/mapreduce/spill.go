package mapreduce

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/sequencefile"
)

// spillTask writes one map task's partitioned output to sequence files,
// one file per non-empty reducer partition, and returns the file paths
// (empty string for partitions with no output).
func spillTask(cfg Config, task int, parts [][]Pair, counters *Counters) ([]string, error) {
	files := make([]string, len(parts))
	for r, pairs := range parts {
		if len(pairs) == 0 {
			continue
		}
		name := spillFileName(cfg, task, r)
		f, err := os.Create(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: creating spill: %w", cfg.Name, err)
		}
		var w *sequencefile.Writer
		if cfg.CompressSpill {
			w = sequencefile.NewCompressedWriter(f)
		} else {
			w = sequencefile.NewWriter(f)
		}
		for _, p := range pairs {
			if err := w.Append([]byte(p.Key), p.Value); err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: writing spill: %w", cfg.Name, err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("mapreduce: %s: flushing spill: %w", cfg.Name, err)
		}
		info, err := f.Stat()
		if err == nil {
			counters.Add(CounterSpillBytes, info.Size())
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("mapreduce: %s: closing spill: %w", cfg.Name, err)
		}
		files[r] = name
	}
	return files, nil
}

// readSpill loads one spill file back into pairs.
func readSpill(name string) ([]Pair, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	recs, err := sequencefile.ReadAll(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, len(recs))
	for i, rec := range recs {
		pairs[i] = Pair{Key: string(rec.Key), Value: rec.Value}
	}
	return pairs, nil
}
