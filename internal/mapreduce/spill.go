package mapreduce

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/points"
	"repro/internal/sequencefile"
)

// spillTask writes one map task's partitioned output to sequence files,
// one file per non-empty reducer partition, and returns the file paths
// (empty string for partitions with no output).
func spillTask(cfg Config, task int, parts [][]Pair, counters *Counters) ([]string, error) {
	files := make([]string, len(parts))
	var spilled int64
	for r, pairs := range parts {
		if len(pairs) == 0 {
			continue
		}
		name := spillFileName(cfg, task, r)
		f, err := os.Create(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: creating spill: %w", cfg.Name, err)
		}
		var w *sequencefile.Writer
		if cfg.CompressSpill {
			w = sequencefile.NewCompressedWriter(f)
		} else {
			w = sequencefile.NewWriter(f)
		}
		for _, p := range pairs {
			if err := w.Append([]byte(p.Key), p.Value); err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: writing spill: %w", cfg.Name, err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("mapreduce: %s: flushing spill: %w", cfg.Name, err)
		}
		info, err := f.Stat()
		if err == nil {
			counters.Add(CounterSpillBytes, info.Size())
			spilled += info.Size()
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("mapreduce: %s: closing spill: %w", cfg.Name, err)
		}
		files[r] = name
	}
	if spilled > 0 {
		cfg.emitEvent(Event{Kind: "spill", Phase: "map", Task: task, Bytes: spilled})
	}
	return files, nil
}

// frameSpillFileName names frame-path spill runs distinctly from the
// classic .seq runs so the two paths can never collide in one SpillDir.
func frameSpillFileName(cfg Config, task, reducer int) string {
	return filepath.Join(cfg.SpillDir, fmt.Sprintf("%s-m%05d-r%03d.fseq", cfg.Name, task, reducer))
}

// spillFrameStreams writes one map task's sealed frame streams to disk,
// one sequence file per non-empty reducer, one length-prefixed record
// per frame (empty key, frame bytes as the value) — whole frames, not
// per-point entries, so read-back is byte-identical to what was sealed.
func spillFrameStreams(cfg Config, task int, streams [][]byte, counters *Counters) ([]string, error) {
	files := make([]string, len(streams))
	var spilled int64
	for r, stream := range streams {
		if len(stream) == 0 {
			continue
		}
		name := frameSpillFileName(cfg, task, r)
		f, err := os.Create(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: creating frame spill: %w", cfg.Name, err)
		}
		var w *sequencefile.Writer
		if cfg.CompressSpill {
			w = sequencefile.NewCompressedWriter(f)
		} else {
			w = sequencefile.NewWriter(f)
		}
		for len(stream) > 0 {
			n, err := points.FrameLen(stream)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: splitting frame stream: %w", cfg.Name, err)
			}
			if err := w.Append(nil, stream[:n]); err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: writing frame spill: %w", cfg.Name, err)
			}
			stream = stream[n:]
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("mapreduce: %s: flushing frame spill: %w", cfg.Name, err)
		}
		if info, err := f.Stat(); err == nil {
			counters.Add(CounterSpillBytes, info.Size())
			spilled += info.Size()
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("mapreduce: %s: closing frame spill: %w", cfg.Name, err)
		}
		files[r] = name
	}
	if spilled > 0 {
		cfg.emitEvent(Event{Kind: "spill", Phase: "map", Task: task, Bytes: spilled})
	}
	return files, nil
}

// readFrameSpill loads one frame spill file back as the frames it was
// written from, in order.
func readFrameSpill(name string) ([][]byte, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	recs, err := sequencefile.ReadAll(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	frames := make([][]byte, len(recs))
	for i, rec := range recs {
		frames[i] = rec.Value
	}
	return frames, nil
}

// readSpill loads one spill file back into pairs.
func readSpill(name string) ([]Pair, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	recs, err := sequencefile.ReadAll(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	pairs := make([]Pair, len(recs))
	for i, rec := range recs {
		pairs[i] = Pair{Key: string(rec.Key), Value: rec.Value}
	}
	return pairs, nil
}
