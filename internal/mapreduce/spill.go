package mapreduce

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/points"
	"repro/internal/sequencefile"
)

// spillTask writes one map task's partitioned output to sequence files,
// one file per non-empty reducer partition, and returns the file paths
// (empty string for partitions with no output).
func spillTask(cfg Config, task int, parts [][]Pair, counters *Counters) ([]string, error) {
	files := make([]string, len(parts))
	var spilled int64
	for r, pairs := range parts {
		if len(pairs) == 0 {
			continue
		}
		name := spillFileName(cfg, task, r)
		f, err := os.Create(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: creating spill: %w", cfg.Name, err)
		}
		var w *sequencefile.Writer
		if cfg.CompressSpill {
			w = sequencefile.NewCompressedWriter(f)
		} else {
			w = sequencefile.NewWriter(f)
		}
		for _, p := range pairs {
			if err := w.Append([]byte(p.Key), p.Value); err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: writing spill: %w", cfg.Name, err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("mapreduce: %s: flushing spill: %w", cfg.Name, err)
		}
		info, err := f.Stat()
		if err == nil {
			counters.Add(CounterSpillBytes, info.Size())
			spilled += info.Size()
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("mapreduce: %s: closing spill: %w", cfg.Name, err)
		}
		files[r] = name
	}
	if spilled > 0 {
		cfg.emitEvent(Event{Kind: "spill", Phase: "map", Task: task, Bytes: spilled})
	}
	return files, nil
}

// frameSpillFileName names frame-path spill runs distinctly from the
// classic .seq runs so the two paths can never collide in one SpillDir.
func frameSpillFileName(cfg Config, task, reducer int) string {
	return filepath.Join(cfg.SpillDir, fmt.Sprintf("%s-m%05d-r%03d.fseq", cfg.Name, task, reducer))
}

// spillFrameStreams writes one map task's sealed frame streams to disk,
// one sequence file per non-empty reducer, one length-prefixed record
// per frame (empty key, frame bytes as the value) — whole frames, not
// per-point entries, so read-back is byte-identical to what was sealed.
func spillFrameStreams(cfg Config, task int, streams [][]byte, counters *Counters) ([]string, error) {
	files := make([]string, len(streams))
	var spilled int64
	for r, stream := range streams {
		if len(stream) == 0 {
			continue
		}
		name := frameSpillFileName(cfg, task, r)
		f, err := os.Create(name)
		if err != nil {
			return nil, fmt.Errorf("mapreduce: %s: creating frame spill: %w", cfg.Name, err)
		}
		var w *sequencefile.Writer
		if cfg.CompressSpill {
			w = sequencefile.NewCompressedWriter(f)
		} else {
			w = sequencefile.NewWriter(f)
		}
		for len(stream) > 0 {
			n, err := points.FrameLen(stream)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: splitting frame stream: %w", cfg.Name, err)
			}
			if err := w.Append(nil, stream[:n]); err != nil {
				f.Close()
				return nil, fmt.Errorf("mapreduce: %s: writing frame spill: %w", cfg.Name, err)
			}
			stream = stream[n:]
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("mapreduce: %s: flushing frame spill: %w", cfg.Name, err)
		}
		if info, err := f.Stat(); err == nil {
			counters.Add(CounterSpillBytes, info.Size())
			spilled += info.Size()
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("mapreduce: %s: closing frame spill: %w", cfg.Name, err)
		}
		files[r] = name
	}
	if spilled > 0 {
		cfg.emitEvent(Event{Kind: "spill", Phase: "map", Task: task, Bytes: spilled})
	}
	return files, nil
}

// ErrSpillTruncated is returned (wrapped) when a spill file ends
// mid-record or fails a record checksum — a torn write or on-disk
// corruption. Callers distinguish it from plain I/O errors so a damaged
// spill is reported as data loss, not silently short-read.
var ErrSpillTruncated = errors.New("mapreduce: truncated or corrupt spill file")

// frameSpillReader streams frames out of one spill file one record at a
// time. Memory is bounded by the largest single frame (sequencefile's
// capped read-buffer growth bounds even that against forged lengths) —
// never by the file size, which is the point: reducers fold spill runs
// far larger than RAM through it.
type frameSpillReader struct {
	name string
	f    *os.File
	r    *sequencefile.Reader
}

// openFrameSpill opens one frame spill file for streaming reads.
func openFrameSpill(name string) (*frameSpillReader, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return &frameSpillReader{name: name, f: f, r: sequencefile.NewReader(f)}, nil
}

// Next returns the next spilled frame, io.EOF after the last one, or an
// error wrapping ErrSpillTruncated if the file ends mid-record or a
// record fails its checksum. The returned bytes are freshly allocated
// and owned by the caller.
func (r *frameSpillReader) Next() ([]byte, error) {
	rec, err := r.r.Next()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		if errors.Is(err, sequencefile.ErrCorrupt) {
			return nil, fmt.Errorf("%w: %s: %v", ErrSpillTruncated, r.name, err)
		}
		return nil, fmt.Errorf("mapreduce: reading frame spill %s: %w", r.name, err)
	}
	return rec.Value, nil
}

func (r *frameSpillReader) Close() error { return r.f.Close() }

// readFrameSpill loads one frame spill file back as the frames it was
// written from, in order. Retained for the gather-everything reduce
// path; the budgeted path streams through frameSpillReader instead.
func readFrameSpill(name string) ([][]byte, error) {
	r, err := openFrameSpill(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var frames [][]byte
	for {
		frame, err := r.Next()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return nil, err
		}
		frames = append(frames, frame)
	}
}

// readSpill loads one spill file back into pairs, streaming records off
// disk instead of loading the whole file.
func readSpill(name string) ([]Pair, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sr := sequencefile.NewReader(f)
	var pairs []Pair
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return pairs, nil
		}
		if err != nil {
			if errors.Is(err, sequencefile.ErrCorrupt) {
				return nil, fmt.Errorf("%w: %s: %v", ErrSpillTruncated, name, err)
			}
			return nil, fmt.Errorf("mapreduce: reading spill %s: %w", name, err)
		}
		pairs = append(pairs, Pair{Key: string(rec.Key), Value: rec.Value})
	}
}
