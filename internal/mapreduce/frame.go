package mapreduce

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// Block-framed shuffle: an alternative engine path that moves packed
// point frames (points.AppendFrame's partition + count + contiguous
// coordinates) between phases instead of per-point Pairs. Mappers emit
// (integer partition, coords) into pooled per-reducer frame builders —
// no string keys, no per-point Pair or value allocation — combiners run
// directly on the assembled blocks before a frame is sealed, and
// reducers ingest whole frames into contiguous blocks with zero
// per-point allocation. The classic Pair path in mapreduce.go stays as
// the reference implementation and escape hatch.

// EmitPoint is the frame-path emit callback: it appends one point to the
// partition's building block, copying coords immediately, so callers may
// reuse the slice. Valid only for the duration of the Map/Reduce call.
type EmitPoint func(partition int, coords []float64)

// FrameMapper transforms one input record into zero or more
// (partition, point) emissions. Must be safe for concurrent use.
type FrameMapper interface {
	MapFrame(record []byte, emit EmitPoint) error
}

// FrameMapperFunc adapts a function to the FrameMapper interface.
type FrameMapperFunc func(record []byte, emit EmitPoint) error

// MapFrame implements FrameMapper.
func (f FrameMapperFunc) MapFrame(record []byte, emit EmitPoint) error { return f(record, emit) }

// FrameCombiner folds one partition's assembled block map-side, before
// the frame is sealed — the paper's local-skyline combiner running
// directly on contiguous memory. It may return its argument (mutated or
// not) or a fresh block; the engine treats the input block as consumed.
// Must be safe for concurrent use.
type FrameCombiner func(partition int, block *points.Block) (*points.Block, error)

// FrameReducer folds one partition's fully assembled block into zero or
// more output points. Must be safe for concurrent use.
type FrameReducer interface {
	ReduceFrame(partition int, block *points.Block, emit EmitPoint) error
}

// FrameReducerFunc adapts a function to the FrameReducer interface.
type FrameReducerFunc func(partition int, block *points.Block, emit EmitPoint) error

// ReduceFrame implements FrameReducer.
func (f FrameReducerFunc) ReduceFrame(partition int, block *points.Block, emit EmitPoint) error {
	return f(partition, block, emit)
}

// PartStat tallies one partition's shuffle contribution: Records is the
// map-output point count routed to the partition (pre-combine — the
// partition's true load), Bytes the sealed frame payload it shipped
// (post-combine). The flight recorder turns these into the per-partition
// skew picture.
type PartStat struct {
	Records int64
	Bytes   int64
}

// FrameStats tallies one frame-path task, in the same units as the
// framework counters: record counts are points, byte counts are frame
// payload bytes (header + coordinates — never the transport envelope).
type FrameStats struct {
	MapOut       int64
	CombineIn    int64
	CombineOut   int64
	CombineNanos int64
	ShuffleRecs  int64
	ShuffleBytes int64
	Groups       int64
	ReduceIn     int64
	ReduceOut    int64
	// PeakBytes is the task's streaming-reduce working-set high-water
	// mark (folds + decode scratch); 0 on the assemble-everything path.
	// Aggregation takes the max, not the sum — it is a per-task peak.
	PeakBytes int64
	// Passes counts multi-pass fold resolutions (max across folds); 1
	// means everything fit the window.
	Passes int
	// Partitions breaks the shuffle volume down by data-space partition
	// id (map tasks only; nil on the reduce side).
	Partitions map[int]PartStat
}

// add accumulates o into s.
func (s *FrameStats) add(o FrameStats) {
	s.MapOut += o.MapOut
	s.CombineIn += o.CombineIn
	s.CombineOut += o.CombineOut
	s.CombineNanos += o.CombineNanos
	s.ShuffleRecs += o.ShuffleRecs
	s.ShuffleBytes += o.ShuffleBytes
	s.Groups += o.Groups
	s.ReduceIn += o.ReduceIn
	s.ReduceOut += o.ReduceOut
	if o.PeakBytes > s.PeakBytes {
		s.PeakBytes = o.PeakBytes
	}
	if o.Passes > s.Passes {
		s.Passes = o.Passes
	}
	if len(o.Partitions) > 0 {
		if s.Partitions == nil {
			s.Partitions = make(map[int]PartStat, len(o.Partitions))
		}
		for id, ps := range o.Partitions {
			acc := s.Partitions[id]
			acc.Records += ps.Records
			acc.Bytes += ps.Bytes
			s.Partitions[id] = acc
		}
	}
}

// FrameResult is the outcome of a successful frame job.
type FrameResult struct {
	// Blocks maps partition id → that partition's reduce output. Contents
	// are deterministic: frames are assembled in reduce-task (and within a
	// task, map-task) order.
	Blocks   map[int]*points.Block
	Counters *Counters
	Timing   Timing
	// Partitions breaks the map-side shuffle volume down by data-space
	// partition id, for the flight recorder's skew picture.
	Partitions map[int]PartStat
	// ReducerPeakBytes is the largest streaming-reduce working set any
	// reduce task reached (0 on the assemble-everything path) — the
	// number the ReducerBudgetBytes budget is judged against.
	ReducerPeakBytes int64
	// MergePasses is the largest fold pass count any reduce task needed
	// (1 = single pass; >1 means a local skyline overflowed its window).
	MergePasses int
}

// ---------------------------------------------------------------------------
// Frame builders (map side)

// frameBuilder accumulates one map task's emissions as per-partition
// blocks. Builders and their blocks are pooled: a task borrows one,
// seals it into immutable frame streams, and returns it, so steady-state
// mapping allocates nothing per point.
type frameBuilder struct {
	blocks  []*points.Block // indexed by partition id; nil until touched
	touched []int           // partition ids with at least one emission
	err     error           // sticky emit-side error (negative partition)
}

var frameBuilderPool = sync.Pool{New: func() any { return new(frameBuilder) }}

func (fb *frameBuilder) add(partition int, coords []float64) {
	if partition < 0 {
		if fb.err == nil {
			fb.err = fmt.Errorf("mapreduce: negative partition id %d emitted", partition)
		}
		return
	}
	for partition >= len(fb.blocks) {
		fb.blocks = append(fb.blocks, nil)
	}
	blk := fb.blocks[partition]
	if blk == nil {
		blk = points.NewBlock(0, 0)
		fb.blocks[partition] = blk
	}
	if blk.Len() == 0 {
		fb.touched = append(fb.touched, partition)
	}
	blk.AppendRow(coords)
}

// reset clears touched blocks (keeping their capacity) for pooling.
func (fb *frameBuilder) reset() {
	for _, p := range fb.touched {
		if fb.blocks[p] != nil {
			fb.blocks[p].Clear()
		}
	}
	fb.touched = fb.touched[:0]
	fb.err = nil
}

// seal encodes every touched partition's block into per-reducer frame
// streams (partition p goes to reducer p mod reducers), in ascending
// partition order for determinism. When parts is non-nil the payload
// bytes are also booked per partition. codec selects the frame wire
// codec (FrameDefault → v1, the historical bytes).
func (fb *frameBuilder) seal(reducers int, parts map[int]PartStat, codec points.FrameCodec) (streams [][]byte, recs, bytes int64) {
	streams = make([][]byte, reducers)
	sort.Ints(fb.touched)
	for _, p := range fb.touched {
		blk := fb.blocks[p]
		if blk == nil || blk.Len() == 0 {
			continue
		}
		r := p % reducers
		before := len(streams[r])
		streams[r] = points.AppendFrameCodec(streams[r], p, blk, codec)
		recs += int64(blk.Len())
		frameBytes := int64(len(streams[r]) - before)
		bytes += frameBytes
		if parts != nil {
			ps := parts[p]
			ps.Bytes += frameBytes
			parts[p] = ps
		}
	}
	return streams, recs, bytes
}

// BuildFrames runs the frame mapper (and optional combiner) over one map
// task's records, returning one sealed frame stream per reducer plus the
// task's tallies. It is the map-side half of the frame shuffle, shared
// by the in-process engine and the rpcmr workers so both move identical
// bytes. codec picks the sealed frames' wire codec.
func BuildFrames(records [][]byte, reducers int, mapper FrameMapper, combiner FrameCombiner, codec points.FrameCodec) ([][]byte, FrameStats, error) {
	if reducers < 1 {
		reducers = 1
	}
	fb := frameBuilderPool.Get().(*frameBuilder)
	defer func() {
		fb.reset()
		frameBuilderPool.Put(fb)
	}()
	var st FrameStats
	// Hoist the method value: evaluating fb.add in the loop would allocate
	// one funcval per record.
	add := fb.add
	for _, rec := range records {
		if err := mapper.MapFrame(rec, add); err != nil {
			return nil, st, err
		}
	}
	if fb.err != nil {
		return nil, st, fb.err
	}
	st.Partitions = make(map[int]PartStat, len(fb.touched))
	for _, p := range fb.touched {
		n := int64(fb.blocks[p].Len())
		st.MapOut += n
		st.Partitions[p] = PartStat{Records: n}
	}
	if combiner != nil {
		cs := time.Now()
		for _, p := range fb.touched {
			blk := fb.blocks[p]
			if blk.Len() == 0 {
				continue
			}
			st.CombineIn += int64(blk.Len())
			out, err := combiner(p, blk)
			if err != nil {
				return nil, st, fmt.Errorf("frame combiner: %w", err)
			}
			fb.blocks[p] = out
			st.CombineOut += int64(out.Len())
		}
		st.CombineNanos = time.Since(cs).Nanoseconds()
	}
	streams, recs, bytes := fb.seal(reducers, st.Partitions, codec)
	st.ShuffleRecs, st.ShuffleBytes = recs, bytes
	return streams, st, nil
}

// AssembleFrames decodes frame streams into per-partition blocks,
// appending in stream order — zero allocation per point, one block per
// distinct partition. Exported so frame consumers outside the engine
// (the rpcmr master, pipeline drivers) decode output streams the same
// way reduce tasks do.
func AssembleFrames(streams [][]byte) (map[int]*points.Block, error) {
	parts := make(map[int]*points.Block)
	for _, stream := range streams {
		for len(stream) > 0 {
			// Peek the owning partition, then decode straight into its block.
			p, _, err := points.FrameCount(stream)
			if err != nil {
				return nil, fmt.Errorf("mapreduce: bad frame: %w", err)
			}
			blk := parts[p]
			if blk == nil {
				blk = points.NewBlock(0, 0)
				parts[p] = blk
			}
			if _, rest, err := points.DecodeFrame(blk, stream); err != nil {
				return nil, fmt.Errorf("mapreduce: bad frame: %w", err)
			} else {
				stream = rest
			}
		}
	}
	return parts, nil
}

// sortedPartitions returns the map's keys ascending.
func sortedPartitions(parts map[int]*points.Block) []int {
	ids := make([]int, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ReduceFrames assembles per-partition blocks from the given frame
// streams, runs the reducer on each partition in ascending id order, and
// seals the emitted points back into one output frame stream. Shared by
// the in-process engine's reduce tasks and the rpcmr workers. codec
// picks the output frames' wire codec.
func ReduceFrames(streams [][]byte, reducer FrameReducer, codec points.FrameCodec) ([]byte, FrameStats, error) {
	var st FrameStats
	parts, err := AssembleFrames(streams)
	if err != nil {
		return nil, st, err
	}
	fb := frameBuilderPool.Get().(*frameBuilder)
	defer func() {
		fb.reset()
		frameBuilderPool.Put(fb)
	}()
	for _, p := range sortedPartitions(parts) {
		blk := parts[p]
		st.Groups++
		st.ReduceIn += int64(blk.Len())
		if err := reducer.ReduceFrame(p, blk, fb.add); err != nil {
			return nil, st, err
		}
	}
	if fb.err != nil {
		return nil, st, fb.err
	}
	// Seal with a single "reducer" so every output partition lands in one
	// stream, ascending by partition id.
	out, recs, _ := fb.seal(1, nil, codec)
	st.ReduceOut = recs
	return out[0], st, nil
}

// ---------------------------------------------------------------------------
// In-process frame job execution

// frameTaskOutput is one map task's sealed output.
type frameTaskOutput struct {
	streams [][]byte // per reducer; nil when spilled
	files   []string // spill file per reducer; nil when in memory
	recs    int64    // points entering the shuffle
	bytes   int64    // frame payload bytes entering the shuffle
	parts   map[int]PartStat
	// combineNanos rides along so the map phase can sum combiner time
	// without another channel.
	combineNanos int64
}

// RunFrames executes a frame-shuffle MapReduce job: the same
// split → map → (combine) → shuffle → reduce pipeline as Run, with the
// intermediate data moving as packed frames instead of Pairs. Phase
// timing, counters, events and metrics bridging match Run's semantics;
// the shuffle-byte counter reports frame payload bytes (header +
// coordinates). Config.Combiner is ignored on this path — pass the
// frame combiner explicitly.
func RunFrames(ctx context.Context, cfg Config, input [][]byte, mapper FrameMapper, combiner FrameCombiner, reducer FrameReducer) (*FrameResult, error) {
	if reducer == nil {
		return nil, fmt.Errorf("mapreduce: %s: reducer must be non-nil", cfg.Name)
	}
	return runFramesEngine(ctx, cfg, input, mapper, combiner, reducer, nil)
}

// RunFramesFold executes a frame-shuffle job whose reduce side streams:
// instead of assembling each partition's full block, every reduce task
// feeds its frames — from memory or spill, one frame at a time — into
// per-partition folds created by folder, and the folds' finished output
// becomes the result. Reduce-side memory is bounded by the folds'
// budgets plus one frame of decode scratch, never by partition size;
// FrameResult.ReducerPeakBytes reports the observed peak.
func RunFramesFold(ctx context.Context, cfg Config, input [][]byte, mapper FrameMapper, combiner FrameCombiner, folder FrameFolder) (*FrameResult, error) {
	if folder == nil {
		return nil, fmt.Errorf("mapreduce: %s: folder must be non-nil", cfg.Name)
	}
	return runFramesEngine(ctx, cfg, input, mapper, combiner, nil, folder)
}

func runFramesEngine(ctx context.Context, cfg Config, input [][]byte, mapper FrameMapper, combiner FrameCombiner, reducer FrameReducer, folder FrameFolder) (*FrameResult, error) {
	if mapper == nil {
		return nil, fmt.Errorf("mapreduce: %s: mapper must be non-nil", cfg.Name)
	}
	cfg = cfg.withDefaults(len(input))
	counters := NewCounters()
	start := time.Now()
	cfg.emit("job-start", "", -1, "")
	ctx, jobSpan := telemetry.StartSpan(ctx, "mr-job:"+cfg.Name,
		telemetry.A("job", cfg.Name), telemetry.A("workers", cfg.Workers),
		telemetry.A("reducers", cfg.Reducers), telemetry.A("records", len(input)),
		telemetry.A("shuffle", "frames"))
	fail := func(err error) (*FrameResult, error) {
		cfg.emit("job-end", "", -1, err.Error())
		jobSpan.SetAttr("error", err.Error())
		jobSpan.End()
		return nil, err
	}

	// --- Split ---------------------------------------------------------
	var splits [][][]byte
	for off := 0; off < len(input); off += cfg.SplitSize {
		end := off + cfg.SplitSize
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[off:end])
	}

	// --- Map (+ combine) -----------------------------------------------
	cfg.emit("phase-start", "map", -1, "")
	mapCtx, mapSpan := telemetry.StartSpan(ctx, "map", telemetry.A("tasks", len(splits)))
	mapStart := time.Now()
	outputs, combineDur, err := runFrameMapPhase(mapCtx, cfg, splits, mapper, combiner, counters)
	mapSpan.End()
	// Spill files must not outlive the job, whatever happens after this
	// point.
	defer removeFrameSpills(outputs)
	if err != nil {
		return fail(err)
	}
	mapDur := time.Since(mapStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "map", Task: -1,
		Duration: mapDur, Records: counters.Get(CounterMapOut)})

	// --- Shuffle ---------------------------------------------------------
	// Frames are already partitioned per reducer when map tasks seal them,
	// so the in-memory shuffle is zero-copy: this phase only books the
	// counters. (Spilled frames are read back inside the reduce tasks,
	// landing in Reduce time like the classic external shuffle.)
	cfg.emit("phase-start", "shuffle", -1, "")
	_, shuffleSpan := telemetry.StartSpan(ctx, "shuffle")
	shuffleStart := time.Now()
	var shufRecs, shufBytes int64
	partStats := make(map[int]PartStat)
	for _, out := range outputs {
		shufRecs += out.recs
		shufBytes += out.bytes
		for id, ps := range out.parts {
			acc := partStats[id]
			acc.Records += ps.Records
			acc.Bytes += ps.Bytes
			partStats[id] = acc
		}
	}
	counters.Add(CounterShuffle, shufRecs)
	counters.Add(CounterShuffleBytes, shufBytes)
	shuffleSpan.End()
	shuffleDur := time.Since(shuffleStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "shuffle", Task: -1,
		Duration: shuffleDur, Records: shufRecs})

	// --- Reduce ----------------------------------------------------------
	cfg.emit("phase-start", "reduce", -1, "")
	redCtx, reduceSpan := telemetry.StartSpan(ctx, "reduce", telemetry.A("tasks", cfg.Reducers))
	reduceStart := time.Now()
	blocks, redStats, err := runFrameReducePhase(redCtx, cfg, outputs, reducer, folder, counters)
	reduceSpan.End()
	if err != nil {
		return fail(err)
	}
	reduceDur := time.Since(reduceStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "reduce", Task: -1,
		Duration: reduceDur, Records: counters.Get(CounterReduceOut)})
	cfg.emit("job-end", "", -1, "")
	jobSpan.End()

	res := &FrameResult{
		Blocks:           blocks,
		Counters:         counters,
		Partitions:       partStats,
		ReducerPeakBytes: redStats.PeakBytes,
		MergePasses:      redStats.Passes,
		Timing: Timing{
			Map:     mapDur,
			Combine: combineDur,
			Shuffle: shuffleDur,
			Reduce:  reduceDur,
			Total:   time.Since(start),
		},
	}
	bridgeCounters(cfg, counters, res.Timing)
	return res, nil
}

func runFrameMapPhase(ctx context.Context, cfg Config, splits [][][]byte, mapper FrameMapper, combiner FrameCombiner, counters *Counters) ([]frameTaskOutput, time.Duration, error) {
	outputs := make([]frameTaskOutput, len(splits))
	var combineNanos int64
	var combineMu sync.Mutex

	err := runTasks(ctx, cfg.Workers, len(splits), func(worker, task int) error {
		var lastErr error
		cfg.emit("task-start", "map", task, "")
		_, span := telemetry.StartSpan(ctx, "map-task", telemetry.A("task", task),
			telemetry.A("records", len(splits[task])))
		span.SetTrack(worker + 1)
		taskStart := time.Now()
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				counters.Add(CounterMapRetries, 1)
				cfg.emit("task-retry", "map", task, lastErr.Error())
			}
			out, err := runFrameMapTask(cfg, task, splits[task], mapper, combiner, counters)
			if err == nil {
				outputs[task] = out
				combineMu.Lock()
				combineNanos += out.combineNanos
				combineMu.Unlock()
				span.End()
				cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task,
					Worker: worker + 1, Duration: time.Since(taskStart),
					Records: int64(len(splits[task]))})
				return nil
			}
			lastErr = err
		}
		span.SetAttr("error", lastErr.Error())
		span.End()
		cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task, Err: lastErr.Error(),
			Worker: worker + 1, Duration: time.Since(taskStart)})
		return fmt.Errorf("mapreduce: %s: map task %d failed after %d attempt(s): %w",
			cfg.Name, task, cfg.MaxAttempts, lastErr)
	})
	if err != nil {
		return outputs, 0, err
	}
	return outputs, time.Duration(combineNanos), nil
}

func runFrameMapTask(cfg Config, task int, records [][]byte, mapper FrameMapper, combiner FrameCombiner, counters *Counters) (frameTaskOutput, error) {
	counters.Add(CounterMapIn, int64(len(records)))
	streams, st, err := BuildFrames(records, cfg.Reducers, mapper, combiner, cfg.Codec)
	if err != nil {
		return frameTaskOutput{}, err
	}
	counters.Add(CounterMapOut, st.MapOut)
	if st.CombineIn > 0 {
		counters.Add(CounterCombineIn, st.CombineIn)
		counters.Add(CounterCombineOut, st.CombineOut)
	}
	out := frameTaskOutput{recs: st.ShuffleRecs, bytes: st.ShuffleBytes,
		parts: st.Partitions, combineNanos: st.CombineNanos}
	if cfg.SpillDir == "" {
		out.streams = streams
		return out, nil
	}
	files, err := spillFrameStreams(cfg, task, streams, counters)
	if err != nil {
		return frameTaskOutput{}, err
	}
	out.files = files
	return out, nil
}

func runFrameReducePhase(ctx context.Context, cfg Config, outputs []frameTaskOutput, reducer FrameReducer, folder FrameFolder, counters *Counters) (map[int]*points.Block, FrameStats, error) {
	outStreams := make([][]byte, cfg.Reducers)
	var aggMu sync.Mutex
	var agg FrameStats
	err := runTasks(ctx, cfg.Workers, cfg.Reducers, func(worker, r int) error {
		var lastErr error
		cfg.emit("task-start", "reduce", r, "")
		_, span := telemetry.StartSpan(ctx, "reduce-task", telemetry.A("task", r))
		span.SetTrack(worker + 1)
		taskStart := time.Now()
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				counters.Add(CounterRedRetries, 1)
				cfg.emit("task-retry", "reduce", r, lastErr.Error())
			}
			var out []byte
			var st FrameStats
			var err error
			if folder != nil {
				out, st, err = runFrameReduceTaskStream(cfg, r, outputs, folder)
			} else {
				out, st, err = runFrameReduceTask(cfg, r, outputs, reducer)
			}
			if err == nil {
				outStreams[r] = out
				counters.Add(CounterGroups, st.Groups)
				counters.Add(CounterReduceIn, st.ReduceIn)
				counters.Add(CounterReduceOut, st.ReduceOut)
				aggMu.Lock()
				agg.add(st)
				aggMu.Unlock()
				span.SetAttr("records", int(st.ReduceOut))
				span.End()
				cfg.emitEvent(Event{Kind: "task-end", Phase: "reduce", Task: r,
					Worker: worker + 1, Duration: time.Since(taskStart),
					Records: st.ReduceOut})
				return nil
			}
			lastErr = err
		}
		span.SetAttr("error", lastErr.Error())
		span.End()
		cfg.emitEvent(Event{Kind: "task-end", Phase: "reduce", Task: r, Err: lastErr.Error(),
			Worker: worker + 1, Duration: time.Since(taskStart)})
		return fmt.Errorf("mapreduce: %s: reduce task %d failed after %d attempt(s): %w",
			cfg.Name, r, cfg.MaxAttempts, lastErr)
	})
	if err != nil {
		return nil, agg, err
	}
	// Decode the per-task output streams into the result blocks, in
	// reduce-task order for determinism.
	blocks, err := AssembleFrames(outStreams)
	if err != nil {
		return nil, agg, fmt.Errorf("mapreduce: %s: assembling reduce output: %w", cfg.Name, err)
	}
	return blocks, agg, nil
}

// runFrameReduceTask gathers reducer r's frame streams (memory or spill)
// in map-task order and folds them.
func runFrameReduceTask(cfg Config, r int, outputs []frameTaskOutput, reducer FrameReducer) ([]byte, FrameStats, error) {
	var streams [][]byte
	for _, out := range outputs {
		if out.files != nil {
			if r < len(out.files) && out.files[r] != "" {
				frames, err := readFrameSpill(out.files[r])
				if err != nil {
					return nil, FrameStats{}, fmt.Errorf("mapreduce: %s: reading frame spill: %w", cfg.Name, err)
				}
				streams = append(streams, frames...)
			}
			continue
		}
		if r < len(out.streams) && len(out.streams[r]) > 0 {
			streams = append(streams, out.streams[r])
		}
	}
	return ReduceFrames(streams, reducer, cfg.Codec)
}

// removeFrameSpills deletes every spill file of a finished frame job.
func removeFrameSpills(outputs []frameTaskOutput) {
	for _, out := range outputs {
		for _, f := range out.files {
			if f != "" {
				_ = os.Remove(f)
			}
		}
	}
}
