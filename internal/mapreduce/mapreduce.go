// Package mapreduce is a from-scratch, in-process MapReduce engine — the
// stand-in for Hadoop in this reproduction. It executes a job as the
// classic phase pipeline
//
//	split → map → (combine) → shuffle → reduce
//
// over a pool of worker goroutines ("slave servers"), with per-phase
// wall-clock timing (the paper's Figure 6 breakdown), user and framework
// counters, task retry with configurable attempts, optional spill of
// intermediate data to disk in the sequencefile format, and context
// cancellation.
//
// Records, keys and values are opaque byte strings, as in Hadoop streaming;
// the skyline layer (package driver) provides the point codecs.
package mapreduce

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// Pair is one key-value record flowing between phases.
type Pair struct {
	Key   string
	Value []byte
}

// Emit is the callback mappers, combiners and reducers use to produce
// output pairs. An Emit passed to user code is only valid for the duration
// of that call and must not be retained.
type Emit func(key string, value []byte)

// Mapper transforms one input record into zero or more key-value pairs.
// A Mapper must be safe for concurrent use by multiple map tasks.
type Mapper interface {
	Map(record []byte, emit Emit) error
}

// MapperFunc adapts a function to the Mapper interface.
type MapperFunc func(record []byte, emit Emit) error

// Map implements Mapper.
func (f MapperFunc) Map(record []byte, emit Emit) error { return f(record, emit) }

// Reducer folds all values of one key into zero or more output pairs.
// A Reducer must be safe for concurrent use by multiple reduce tasks. The
// same interface is used for combiners, which run after each map task on
// that task's local output (the paper's "local skyline computation" step
// runs as a combiner).
type Reducer interface {
	Reduce(key string, values [][]byte, emit Emit) error
}

// ReducerFunc adapts a function to the Reducer interface.
type ReducerFunc func(key string, values [][]byte, emit Emit) error

// Reduce implements Reducer.
func (f ReducerFunc) Reduce(key string, values [][]byte, emit Emit) error {
	return f(key, values, emit)
}

// Config controls job execution.
type Config struct {
	// Name labels the job in errors and spill file names.
	Name string
	// Workers is the number of concurrent map (and reduce) worker
	// goroutines — the cluster size of the simulated deployment.
	// Defaults to GOMAXPROCS.
	Workers int
	// Reducers is the number of reduce partitions. Defaults to Workers.
	Reducers int
	// SplitSize is the number of input records per map task. Defaults to
	// ceil(len(input)/ (4*Workers)) so each worker sees a few tasks.
	SplitSize int
	// Combiner, when non-nil, runs on each map task's output per key
	// before the shuffle, cutting shuffle volume — the paper's middle
	// "local skyline computation" process.
	Combiner Reducer
	// MaxAttempts is how many times a failed map or reduce task is retried
	// before the job fails. Defaults to 1 (no retry).
	MaxAttempts int
	// SpillDir, when non-empty, makes map tasks write their partitioned
	// output to sequence files under this directory instead of keeping it
	// on the heap; the reduce phase streams a k-way merge over the sorted
	// runs. The directory must exist.
	SpillDir string
	// CompressSpill DEFLATE-compresses spill runs (sequencefile v2) —
	// cheaper I/O for cold spills at some CPU cost. Only meaningful with
	// SpillDir.
	CompressSpill bool
	// Codec selects the frame wire codec for sealed shuffle and spill
	// frames on the frame path (RunFrames and friends). The zero value is
	// the raw v1 codec; points.FrameAuto enables the bit-packed v2
	// encoding wherever it is smaller. Pair-path jobs ignore it.
	Codec points.FrameCodec
	// ReducerBudgetBytes is the working-memory target for one streaming
	// reduce task (RunFramesFold / RunFramesChunked): the budget handed to
	// the task's frame folds, and the reference the reported peak is
	// judged against. 0 means unbudgeted. The engine records the peak —
	// FrameResult.ReducerPeakBytes — rather than killing tasks, so an
	// over-budget fold is visible, not fatal.
	ReducerBudgetBytes int64
	// Trace, when non-nil, receives job/phase/task lifecycle events.
	Trace EventSink
	// Metrics, when non-nil, receives the job's framework counters and
	// per-phase latency histograms under the mr_* namespace after each
	// run. Nil (the default) costs nothing on the hot path.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults(inputLen int) Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = c.Workers
	}
	if c.SplitSize <= 0 {
		c.SplitSize = (inputLen + 4*c.Workers - 1) / (4 * c.Workers)
		if c.SplitSize < 1 {
			c.SplitSize = 1
		}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.Name == "" {
		c.Name = "job"
	}
	return c
}

// Timing is the per-phase wall-clock breakdown of one job.
type Timing struct {
	Map     time.Duration // map + combine (the paper's "Map time")
	Combine time.Duration // portion of Map spent in the combiner
	Shuffle time.Duration
	Reduce  time.Duration
	Total   time.Duration
}

// Add accumulates another job's timing (for multi-job pipelines).
func (t *Timing) Add(o Timing) {
	t.Map += o.Map
	t.Combine += o.Combine
	t.Shuffle += o.Shuffle
	t.Reduce += o.Reduce
	t.Total += o.Total
}

// Result is the outcome of a successful job.
type Result struct {
	// Pairs is the reduce output. Order is deterministic: reduce
	// partitions in index order, keys sorted within each partition,
	// emission order within a key preserved.
	Pairs    []Pair
	Counters *Counters
	Timing   Timing
}

// Counters is a set of named int64 counters, safe for concurrent use.
// The framework maintains "mr.*" counters; user code may add its own via
// the Counters handle threaded through context (see WithCounters) or by
// closing over the struct.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments counter name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the value of counter name (0 if never set).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of all counters.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Framework counter names.
const (
	CounterMapIn      = "mr.map.records.in"
	CounterMapOut     = "mr.map.records.out"
	CounterCombineIn  = "mr.combine.records.in"
	CounterCombineOut = "mr.combine.records.out"
	CounterShuffle    = "mr.shuffle.records"
	// CounterShuffleBytes counts the payload bytes crossing the shuffle —
	// key + value bytes on the classic Pair path, frame bytes (header +
	// coordinates) on the frame path — never the transport envelope (gob
	// framing, RPC headers), so in-process and rpcmr runs, and the
	// paper's Fig. 6 shuffle volumes, compare like-for-like.
	CounterShuffleBytes = "mr.shuffle.bytes"
	CounterReduceIn     = "mr.reduce.records.in"
	CounterReduceOut    = "mr.reduce.records.out"
	CounterGroups       = "mr.reduce.groups"
	CounterMapRetries   = "mr.map.task.retries"
	CounterRedRetries   = "mr.reduce.task.retries"
	CounterSpillBytes   = "mr.spill.bytes"
)

// Run executes a MapReduce job over the input records and returns its
// result. Run blocks until the job completes, fails, or ctx is cancelled.
func Run(ctx context.Context, cfg Config, input [][]byte, mapper Mapper, reducer Reducer) (*Result, error) {
	if mapper == nil || reducer == nil {
		return nil, fmt.Errorf("mapreduce: %s: mapper and reducer must be non-nil", cfg.Name)
	}
	cfg = cfg.withDefaults(len(input))
	counters := NewCounters()
	start := time.Now()
	cfg.emit("job-start", "", -1, "")
	ctx, jobSpan := telemetry.StartSpan(ctx, "mr-job:"+cfg.Name,
		telemetry.A("job", cfg.Name), telemetry.A("workers", cfg.Workers),
		telemetry.A("reducers", cfg.Reducers), telemetry.A("records", len(input)))
	fail := func(err error) (*Result, error) {
		cfg.emit("job-end", "", -1, err.Error())
		jobSpan.SetAttr("error", err.Error())
		jobSpan.End()
		return nil, err
	}

	// --- Split ---------------------------------------------------------
	var splits [][][]byte
	for off := 0; off < len(input); off += cfg.SplitSize {
		end := off + cfg.SplitSize
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[off:end])
	}

	// --- Map (+ combine) ------------------------------------------------
	cfg.emit("phase-start", "map", -1, "")
	mapCtx, mapSpan := telemetry.StartSpan(ctx, "map", telemetry.A("tasks", len(splits)))
	mapStart := time.Now()
	taskOut, combineDur, err := runMapPhase(mapCtx, cfg, splits, mapper, counters)
	mapSpan.End()
	if err != nil {
		return fail(err)
	}
	mapDur := time.Since(mapStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "map", Task: -1,
		Duration: mapDur, Records: counters.Get(CounterMapOut)})

	// --- Shuffle ---------------------------------------------------------
	// In-memory jobs group eagerly here; spilled jobs only set up the
	// merge streams, and the actual k-way merge happens lazily inside the
	// reduce tasks (its cost lands in the Reduce timing, as it would on a
	// real cluster where reducers pull map outputs).
	cfg.emit("phase-start", "shuffle", -1, "")
	_, shuffleSpan := telemetry.StartSpan(ctx, "shuffle")
	shuffleStart := time.Now()
	sources, err := buildGroupSources(cfg, taskOut, counters)
	shuffleSpan.End()
	if err != nil {
		return fail(err)
	}
	shuffleDur := time.Since(shuffleStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "shuffle", Task: -1,
		Duration: shuffleDur, Records: counters.Get(CounterShuffle)})

	// --- Reduce ----------------------------------------------------------
	cfg.emit("phase-start", "reduce", -1, "")
	redCtx, reduceSpan := telemetry.StartSpan(ctx, "reduce", telemetry.A("tasks", cfg.Reducers))
	reduceStart := time.Now()
	pairs, err := runReducePhase(redCtx, cfg, sources, reducer, counters)
	reduceSpan.End()
	if err != nil {
		return fail(err)
	}
	reduceDur := time.Since(reduceStart)
	cfg.emitEvent(Event{Kind: "phase-end", Phase: "reduce", Task: -1,
		Duration: reduceDur, Records: counters.Get(CounterReduceOut)})
	cfg.emit("job-end", "", -1, "")
	jobSpan.End()

	res := &Result{
		Pairs:    pairs,
		Counters: counters,
		Timing: Timing{
			Map:     mapDur,
			Combine: combineDur,
			Shuffle: shuffleDur,
			Reduce:  reduceDur,
			Total:   time.Since(start),
		},
	}
	bridgeMetrics(cfg, res)
	return res, nil
}

// bridgeMetrics folds one finished job's counters and phase timings
// into the telemetry registry: counter names translate 1:1 from the
// dotted framework names ("mr.map.records.in" →
// "mr_map_records_in_total"), phase wall times land in the
// mr_phase_seconds histogram, and every series carries a job label.
func bridgeMetrics(cfg Config, res *Result) {
	bridgeCounters(cfg, res.Counters, res.Timing)
}

// bridgeCounters is the engine-path-agnostic body of bridgeMetrics,
// shared with the frame-shuffle path.
func bridgeCounters(cfg Config, counters *Counters, timing Timing) {
	reg := cfg.Metrics
	if reg == nil {
		return
	}
	job := telemetry.L("job", cfg.Name)
	for name, v := range counters.Snapshot() {
		reg.Counter(strings.ReplaceAll(name, ".", "_")+"_total", job).Add(v)
	}
	buckets := telemetry.DurationBuckets()
	for _, p := range []struct {
		phase string
		d     time.Duration
	}{
		{"map", timing.Map},
		{"combine", timing.Combine},
		{"shuffle", timing.Shuffle},
		{"reduce", timing.Reduce},
		{"total", timing.Total},
	} {
		reg.Histogram("mr_phase_seconds", buckets, job, telemetry.L("phase", p.phase)).Observe(p.d.Seconds())
	}
	reg.Counter("mr_jobs_total", job).Inc()
}

// taskOutput is one map task's output, partitioned by reducer.
type taskOutput struct {
	inMem [][]Pair // indexed by reducer partition; nil when spilled
	files []string // spill file per reducer partition; nil when in memory
}

func runMapPhase(ctx context.Context, cfg Config, splits [][][]byte, mapper Mapper, counters *Counters) ([]taskOutput, time.Duration, error) {
	outputs := make([]taskOutput, len(splits))
	var combineNanos int64
	var combineMu sync.Mutex

	err := runTasks(ctx, cfg.Workers, len(splits), func(worker, task int) error {
		var lastErr error
		cfg.emit("task-start", "map", task, "")
		_, span := telemetry.StartSpan(ctx, "map-task", telemetry.A("task", task),
			telemetry.A("records", len(splits[task])))
		span.SetTrack(worker + 1)
		taskStart := time.Now()
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				counters.Add(CounterMapRetries, 1)
				cfg.emit("task-retry", "map", task, lastErr.Error())
			}
			out, cd, err := runMapTask(cfg, task, splits[task], mapper, counters)
			if err == nil {
				outputs[task] = out
				combineMu.Lock()
				combineNanos += int64(cd)
				combineMu.Unlock()
				span.End()
				cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task,
					Worker: worker + 1, Duration: time.Since(taskStart),
					Records: int64(len(splits[task]))})
				return nil
			}
			lastErr = err
		}
		span.SetAttr("error", lastErr.Error())
		span.End()
		cfg.emitEvent(Event{Kind: "task-end", Phase: "map", Task: task, Err: lastErr.Error(),
			Worker: worker + 1, Duration: time.Since(taskStart)})
		return fmt.Errorf("mapreduce: %s: map task %d failed after %d attempt(s): %w",
			cfg.Name, task, cfg.MaxAttempts, lastErr)
	})
	if err != nil {
		return nil, 0, err
	}
	return outputs, time.Duration(combineNanos), nil
}

func runMapTask(cfg Config, task int, records [][]byte, mapper Mapper, counters *Counters) (taskOutput, time.Duration, error) {
	parts := make([][]Pair, cfg.Reducers)
	// Pre-size each bucket for the common one-emit-per-record mapper;
	// selective mappers just leave slack.
	for r := range parts {
		parts[r] = make([]Pair, 0, len(records)/cfg.Reducers+1)
	}
	emit := func(key string, value []byte) {
		r := partitionOf(key, cfg.Reducers)
		parts[r] = append(parts[r], Pair{Key: key, Value: value})
	}
	// One counter update per task, not per record — the mutex-protected
	// map add is measurable at millions of records.
	counters.Add(CounterMapIn, int64(len(records)))
	for _, rec := range records {
		if err := mapper.Map(rec, emit); err != nil {
			return taskOutput{}, 0, err
		}
	}
	emitted := 0
	for _, p := range parts {
		emitted += len(p)
	}
	counters.Add(CounterMapOut, int64(emitted))

	var combineDur time.Duration
	if cfg.Combiner != nil {
		cs := time.Now()
		for r := range parts {
			combined, err := combinePartition(cfg.Combiner, parts[r], counters)
			if err != nil {
				return taskOutput{}, 0, fmt.Errorf("combiner: %w", err)
			}
			parts[r] = combined
		}
		combineDur = time.Since(cs)
	}

	if cfg.SpillDir == "" {
		return taskOutput{inMem: parts}, combineDur, nil
	}
	// Spill files are sorted runs so the reduce phase can stream a k-way
	// merge instead of materializing hash groups.
	for r := range parts {
		sortPairsByKey(parts[r])
	}
	files, err := spillTask(cfg, task, parts, counters)
	if err != nil {
		return taskOutput{}, 0, err
	}
	return taskOutput{files: files}, combineDur, nil
}

// combinePartition groups one partition's pairs by key and runs the
// combiner per group, preserving first-seen key order.
func combinePartition(combiner Reducer, pairs []Pair, counters *Counters) ([]Pair, error) {
	if len(pairs) == 0 {
		return pairs, nil
	}
	counters.Add(CounterCombineIn, int64(len(pairs)))
	order := make([]string, 0, 8)
	groups := make(map[string][][]byte, 8)
	for _, p := range pairs {
		if _, ok := groups[p.Key]; !ok {
			order = append(order, p.Key)
		}
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	out := make([]Pair, 0, len(order))
	emit := func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	}
	for _, k := range order {
		if err := combiner.Reduce(k, groups[k], emit); err != nil {
			return nil, err
		}
	}
	counters.Add(CounterCombineOut, int64(len(out)))
	return out, nil
}

// group is one reduce key group.
type group struct {
	key    string
	values [][]byte
}

// shuffle merges map outputs into per-reducer key groups, reading spill
// files back when present. Iterating tasks in index order makes value
// order deterministic regardless of map scheduling.
func shuffle(cfg Config, tasks []taskOutput, counters *Counters) ([][]group, error) {
	perReducer := make([]map[string][][]byte, cfg.Reducers)
	orders := make([][]string, cfg.Reducers)
	for r := range perReducer {
		perReducer[r] = make(map[string][][]byte)
	}
	var shufRecs, shufBytes int64
	add := func(r int, p Pair) {
		if _, ok := perReducer[r][p.Key]; !ok {
			orders[r] = append(orders[r], p.Key)
		}
		perReducer[r][p.Key] = append(perReducer[r][p.Key], p.Value)
		shufRecs++
		shufBytes += int64(len(p.Key) + len(p.Value))
	}
	for _, t := range tasks {
		if t.files != nil {
			for r, f := range t.files {
				if f == "" {
					continue
				}
				pairs, err := readSpill(f)
				if err != nil {
					return nil, fmt.Errorf("mapreduce: %s: reading spill %s: %w", cfg.Name, f, err)
				}
				for _, p := range pairs {
					add(r, p)
				}
				if err := os.Remove(f); err != nil {
					return nil, fmt.Errorf("mapreduce: %s: removing spill: %w", cfg.Name, err)
				}
			}
			continue
		}
		for r, pairs := range t.inMem {
			for _, p := range pairs {
				add(r, p)
			}
		}
	}
	counters.Add(CounterShuffle, shufRecs)
	counters.Add(CounterShuffleBytes, shufBytes)
	out := make([][]group, cfg.Reducers)
	for r := range out {
		sort.Strings(orders[r])
		gs := make([]group, 0, len(orders[r]))
		for _, k := range orders[r] {
			gs = append(gs, group{key: k, values: perReducer[r][k]})
		}
		out[r] = gs
	}
	return out, nil
}

func runReducePhase(ctx context.Context, cfg Config, sources []groupSource, reducer Reducer, counters *Counters) ([]Pair, error) {
	outs := make([][]Pair, cfg.Reducers)
	err := runTasks(ctx, cfg.Workers, cfg.Reducers, func(worker, r int) error {
		src := sources[r]
		defer src.close()
		var lastErr error
		cfg.emit("task-start", "reduce", r, "")
		_, span := telemetry.StartSpan(ctx, "reduce-task", telemetry.A("task", r))
		span.SetTrack(worker + 1)
		taskStart := time.Now()
		for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				counters.Add(CounterRedRetries, 1)
				cfg.emit("task-retry", "reduce", r, lastErr.Error())
				if err := src.reset(); err != nil {
					lastErr = err
					break
				}
			}
			out, err := runReduceTask(reducer, src, counters)
			if err == nil {
				outs[r] = out
				span.SetAttr("records", len(out))
				span.End()
				cfg.emitEvent(Event{Kind: "task-end", Phase: "reduce", Task: r,
					Worker: worker + 1, Duration: time.Since(taskStart),
					Records: int64(len(out))})
				return nil
			}
			lastErr = err
		}
		span.SetAttr("error", lastErr.Error())
		span.End()
		cfg.emitEvent(Event{Kind: "task-end", Phase: "reduce", Task: r, Err: lastErr.Error(),
			Worker: worker + 1, Duration: time.Since(taskStart)})
		return fmt.Errorf("mapreduce: %s: reduce task %d failed after %d attempt(s): %w",
			cfg.Name, r, cfg.MaxAttempts, lastErr)
	})
	if err != nil {
		// Release any sources the failed run never reached.
		for _, src := range sources {
			_ = src.close()
		}
		return nil, err
	}
	var pairs []Pair
	for _, out := range outs {
		pairs = append(pairs, out...)
	}
	return pairs, nil
}

func runReduceTask(reducer Reducer, src groupSource, counters *Counters) ([]Pair, error) {
	var out []Pair
	emit := func(key string, value []byte) {
		out = append(out, Pair{Key: key, Value: value})
	}
	for {
		g, ok, err := src.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		counters.Add(CounterGroups, 1)
		counters.Add(CounterReduceIn, int64(len(g.values)))
		if err := reducer.Reduce(g.key, g.values, emit); err != nil {
			return nil, err
		}
	}
	counters.Add(CounterReduceOut, int64(len(out)))
	return out, nil
}

// runTasks executes fn(worker, 0..n-1) on a pool of `workers`
// goroutines, stopping at the first error or context cancellation. The
// worker index identifies the executing pool slot, so callers can
// build per-worker timelines.
func runTasks(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	tasks := make(chan int)
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range tasks {
				if err := fn(worker, i); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	var firstErr error
feed:
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case err := <-errc:
			firstErr = err
			break feed
		case <-ctx.Done():
			firstErr = ctx.Err()
			break feed
		}
	}
	close(tasks)
	wg.Wait()
	if firstErr == nil {
		select {
		case err := <-errc:
			firstErr = err
		default:
		}
	}
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// partitionOf maps a key to a reducer partition by FNV-1a hash.
func partitionOf(key string, reducers int) int {
	if reducers == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}

func spillFileName(cfg Config, task, reducer int) string {
	return filepath.Join(cfg.SpillDir, fmt.Sprintf("%s-m%05d-r%03d.seq", cfg.Name, task, reducer))
}
