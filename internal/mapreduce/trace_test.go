package mapreduce

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func traceMapper() Mapper {
	return MapperFunc(func(rec []byte, emit Emit) error {
		for _, w := range strings.Fields(string(rec)) {
			emit(w, []byte("1"))
		}
		return nil
	})
}

func traceReducer() Reducer {
	return ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		emit(key, nil)
		return nil
	})
}

func TestTraceLifecycle(t *testing.T) {
	sink := &MemorySink{}
	cfg := Config{Name: "traced", Workers: 2, Reducers: 2, SplitSize: 1, Trace: sink}
	input := [][]byte{[]byte("a b"), []byte("c")}
	if _, err := Run(context.Background(), cfg, input, traceMapper(), traceReducer()); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Job != "traced" {
			t.Errorf("event for job %q", e.Job)
		}
	}
	if kinds["job-start"] != 1 || kinds["job-end"] != 1 {
		t.Errorf("job events = %v", kinds)
	}
	if kinds["phase-start"] != 3 {
		t.Errorf("phase-start = %d, want 3 (map, shuffle, reduce)", kinds["phase-start"])
	}
	if kinds["phase-end"] != 3 {
		t.Errorf("phase-end = %d, want 3 (map, shuffle, reduce)", kinds["phase-end"])
	}
	if kinds["task-start"] != 4 || kinds["task-end"] != 4 { // 2 map + 2 reduce
		t.Errorf("task events = %v", kinds)
	}
	// Every phase must close with a duration; shuffle is symmetric with
	// map and reduce now.
	endPhases := map[string]bool{}
	for _, e := range events {
		if e.Kind == "phase-end" {
			endPhases[e.Phase] = true
			if e.Duration <= 0 {
				t.Errorf("phase-end %s has no duration", e.Phase)
			}
		}
		if e.Kind == "task-end" {
			if e.Worker <= 0 {
				t.Errorf("task-end %s/%d has no worker slot", e.Phase, e.Task)
			}
			if e.Duration <= 0 {
				t.Errorf("task-end %s/%d has no duration", e.Phase, e.Task)
			}
			if e.Phase == "map" && e.Records != 1 { // SplitSize: 1
				t.Errorf("map task-end records = %d, want 1", e.Records)
			}
		}
	}
	for _, phase := range []string{"map", "shuffle", "reduce"} {
		if !endPhases[phase] {
			t.Errorf("no phase-end for %s", phase)
		}
	}
	// First event is job-start, last is job-end.
	if events[0].Kind != "job-start" || events[len(events)-1].Kind != "job-end" {
		t.Errorf("ordering: first %q last %q", events[0].Kind, events[len(events)-1].Kind)
	}
}

func TestTraceRetries(t *testing.T) {
	sink := &MemorySink{}
	var calls int32
	flaky := MapperFunc(func(rec []byte, emit Emit) error {
		if atomic.AddInt32(&calls, 1) == 1 {
			return errors.New("transient")
		}
		emit("k", rec)
		return nil
	})
	cfg := Config{Workers: 1, MaxAttempts: 2, Trace: sink}
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("x")}, flaky, traceReducer()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range sink.Events() {
		if e.Kind == "task-retry" && e.Err == "transient" {
			found = true
		}
	}
	if !found {
		t.Error("no task-retry event with the failure message")
	}
}

func TestTraceFailureEndsJob(t *testing.T) {
	sink := &MemorySink{}
	bad := MapperFunc(func(rec []byte, emit Emit) error { return errors.New("fatal") })
	cfg := Config{Trace: sink}
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("x")}, bad, traceReducer()); err == nil {
		t.Fatal("job should fail")
	}
	events := sink.Events()
	last := events[len(events)-1]
	if last.Kind != "job-end" || last.Err == "" {
		t.Errorf("last event = %+v, want failing job-end", last)
	}
}

func TestJSONSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONSink(&buf)
	cfg := Config{Name: "jsonjob", Workers: 1, Trace: sink}
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("a")}, traceMapper(), traceReducer()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 5 {
		t.Fatalf("only %d JSON lines", len(lines))
	}
	for _, l := range lines {
		var e Event
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad JSON line %q: %v", l, err)
		}
		if e.Job != "jsonjob" {
			t.Errorf("line for job %q", e.Job)
		}
	}
}

func TestNoTraceNoPanic(t *testing.T) {
	cfg := Config{} // Trace nil
	if _, err := Run(context.Background(), cfg, [][]byte{[]byte("a")}, traceMapper(), traceReducer()); err != nil {
		t.Fatal(err)
	}
}
