package mapreduce

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sort"
	"strconv"
	"testing"

	"repro/internal/points"
)

// frameTestData builds a deterministic point set with duplicates.
func frameTestData(n, d int, seed int64) points.Set {
	rng := rand.New(rand.NewSource(seed))
	set := make(points.Set, 0, n)
	for i := 0; i < n; i++ {
		p := make(points.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(50)) // coarse grid → duplicates
		}
		set = append(set, p)
	}
	// Exact duplicates of the first few points.
	for i := 0; i < n/10 && i < len(set); i++ {
		dup := make(points.Point, d)
		copy(dup, set[i])
		set = append(set, dup)
	}
	return set
}

// identityFrameJob routes each point to partition coords[0] mod parts and
// re-emits it unchanged in the reducer — shuffle machinery only.
func identityFrameJob(parts int) (FrameMapper, FrameReducer) {
	mapper := FrameMapperFunc(func(rec []byte, emit EmitPoint) error {
		p, err := points.Decode(rec)
		if err != nil {
			return err
		}
		emit(int(p[0])%parts, p)
		return nil
	})
	reducer := FrameReducerFunc(func(partition int, blk *points.Block, emit EmitPoint) error {
		for i := 0; i < blk.Len(); i++ {
			emit(partition, blk.Row(i))
		}
		return nil
	})
	return mapper, reducer
}

// classicEquivalent runs the same routing through the Pair path.
func classicEquivalent(t *testing.T, data points.Set, parts, reducers int, spill string) map[int]points.Set {
	t.Helper()
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	mapper := MapperFunc(func(rec []byte, emit Emit) error {
		p, err := points.Decode(rec)
		if err != nil {
			return err
		}
		emit(strconv.Itoa(int(p[0])%parts), rec)
		return nil
	})
	reducer := ReducerFunc(func(key string, values [][]byte, emit Emit) error {
		for _, v := range values {
			emit(key, v)
		}
		return nil
	})
	res, err := Run(context.Background(), Config{Name: "classic", Workers: 4, Reducers: reducers, SpillDir: spill}, input, mapper, reducer)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int]points.Set)
	for _, pair := range res.Pairs {
		id, err := strconv.Atoi(pair.Key)
		if err != nil {
			t.Fatal(err)
		}
		p, err := points.Decode(pair.Value)
		if err != nil {
			t.Fatal(err)
		}
		out[id] = append(out[id], p)
	}
	return out
}

func sortSet(s points.Set) {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func requireSameSets(t *testing.T, want, got map[int]points.Set) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("partition count: want %d, got %d", len(want), len(got))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("partition %d missing", id)
		}
		if len(w) != len(g) {
			t.Fatalf("partition %d: want %d points, got %d", id, len(w), len(g))
		}
		sortSet(w)
		sortSet(g)
		for i := range w {
			for k := range w[i] {
				if w[i][k] != g[i][k] {
					t.Fatalf("partition %d point %d differs: %v vs %v", id, i, w[i], g[i])
				}
			}
		}
	}
}

// TestRunFramesMatchesClassic shuffles the same dataset (duplicates
// included) through both paths and requires identical per-partition
// multisets, in memory and in spill mode.
func TestRunFramesMatchesClassic(t *testing.T) {
	data := frameTestData(2000, 4, 1)
	const parts, reducers = 7, 3
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	mapper, reducer := identityFrameJob(parts)

	for _, spill := range []bool{false, true} {
		name := map[bool]string{false: "memory", true: "spill"}[spill]
		t.Run(name, func(t *testing.T) {
			dir := ""
			if spill {
				dir = t.TempDir()
			}
			res, err := RunFrames(context.Background(),
				Config{Name: "frames", Workers: 4, Reducers: reducers, SpillDir: dir},
				input, mapper, nil, reducer)
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int]points.Set)
			for id, blk := range res.Blocks {
				got[id] = blk.ToSet()
			}
			classicDir := ""
			if spill {
				classicDir = t.TempDir()
			}
			want := classicEquivalent(t, data, parts, reducers, classicDir)
			requireSameSets(t, want, got)

			if res.Counters.Get(CounterShuffle) != int64(len(data)) {
				t.Errorf("shuffle records = %d, want %d", res.Counters.Get(CounterShuffle), len(data))
			}
			// Frame payload bytes: strictly more than raw coords (headers),
			// far less than 2× coords.
			coords := int64(len(data) * 4 * 8)
			if b := res.Counters.Get(CounterShuffleBytes); b <= coords || b > coords*2 {
				t.Errorf("shuffle bytes = %d, want in (%d, %d]", b, coords, coords*2)
			}
		})
	}
}

// TestRunFramesCombiner checks the combiner runs on assembled blocks
// map-side and shrinks what crosses the shuffle.
func TestRunFramesCombiner(t *testing.T) {
	data := frameTestData(1000, 3, 2)
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	mapper, reducer := identityFrameJob(4)
	// Combiner keeps only the first point of each block.
	combiner := func(partition int, blk *points.Block) (*points.Block, error) {
		if blk.Len() > 1 {
			blk.Truncate(1)
		}
		return blk, nil
	}
	res, err := RunFrames(context.Background(),
		Config{Name: "comb", Workers: 2, Reducers: 2, SplitSize: 100},
		input, mapper, combiner, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(CounterCombineIn) != int64(len(data)) {
		t.Errorf("combine in = %d, want %d", res.Counters.Get(CounterCombineIn), len(data))
	}
	shuffled := res.Counters.Get(CounterShuffle)
	if shuffled >= int64(len(data)) || shuffled == 0 {
		t.Errorf("combiner did not shrink shuffle: %d of %d", shuffled, len(data))
	}
	if res.Counters.Get(CounterCombineOut) != shuffled {
		t.Errorf("combine out %d != shuffle records %d", res.Counters.Get(CounterCombineOut), shuffled)
	}
}

// TestFrameSpillByteIdentical seals streams, spills them, and requires
// read-back to reproduce the exact frame bytes.
func TestFrameSpillByteIdentical(t *testing.T) {
	for _, compress := range []bool{false, true} {
		cfg := Config{Name: "spillrt", SpillDir: t.TempDir(), CompressSpill: compress, Reducers: 3}
		blk1 := points.NewBlock(0, 0)
		blk1.AppendRow([]float64{1, 2})
		blk1.AppendRow([]float64{3, 4})
		blk2 := points.NewBlock(0, 0)
		blk2.AppendRow([]float64{5, 6})
		var stream []byte
		stream = points.AppendFrame(stream, 0, blk1)
		stream = points.AppendFrame(stream, 3, blk2)
		streams := [][]byte{stream, nil, nil}

		counters := NewCounters()
		files, err := spillFrameStreams(cfg, 0, streams, counters)
		if err != nil {
			t.Fatal(err)
		}
		if files[1] != "" || files[2] != "" {
			t.Fatal("empty streams produced files")
		}
		frames, err := readFrameSpill(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if len(frames) != 2 {
			t.Fatalf("read %d frames, want 2", len(frames))
		}
		if !bytes.Equal(bytes.Join(frames, nil), stream) {
			t.Fatalf("compress=%v: spill round trip not byte-identical", compress)
		}
		if counters.Get(CounterSpillBytes) == 0 {
			t.Error("no spill bytes counted")
		}
	}
}

// TestRunFramesErrors covers mapper, combiner and reducer failures plus
// the negative-partition guard: errors, never panics.
func TestRunFramesErrors(t *testing.T) {
	input := [][]byte{points.Encode(points.Point{1, 2})}
	okMapper, okReducer := identityFrameJob(2)
	boom := errors.New("boom")

	cases := []struct {
		name     string
		mapper   FrameMapper
		combiner FrameCombiner
		reducer  FrameReducer
	}{
		{"mapper", FrameMapperFunc(func(rec []byte, emit EmitPoint) error { return boom }), nil, okReducer},
		{"combiner", okMapper, func(int, *points.Block) (*points.Block, error) { return nil, boom }, okReducer},
		{"reducer", okMapper, nil, FrameReducerFunc(func(int, *points.Block, EmitPoint) error { return boom })},
		{"negative-partition", FrameMapperFunc(func(rec []byte, emit EmitPoint) error {
			emit(-1, []float64{1, 2})
			return nil
		}), nil, okReducer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunFrames(context.Background(), Config{Name: tc.name},
				input, tc.mapper, tc.combiner, tc.reducer)
			if err == nil {
				t.Fatal("no error")
			}
		})
	}
}

// TestRunFramesRetry: a mapper that fails once per task succeeds under
// MaxAttempts=2 and books the retry counter.
func TestRunFramesRetry(t *testing.T) {
	data := frameTestData(100, 2, 3)
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	var failed Counters
	failed.m = map[string]int64{}
	mapper := FrameMapperFunc(func(rec []byte, emit EmitPoint) error {
		p, err := points.Decode(rec)
		if err != nil {
			return err
		}
		// Fail the first time any mapper sees the zero-index sentinel.
		failed.mu.Lock()
		first := failed.m["n"] == 0
		failed.m["n"]++
		failed.mu.Unlock()
		if first {
			return errors.New("transient")
		}
		emit(int(p[0])%3, p)
		return nil
	})
	_, reducer := identityFrameJob(3)
	res, err := RunFrames(context.Background(),
		Config{Name: "retry", MaxAttempts: 3, SplitSize: 50}, input, mapper, nil, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Get(CounterMapRetries) == 0 {
		t.Error("no retry counted")
	}
	total := 0
	for _, blk := range res.Blocks {
		total += blk.Len()
	}
	// The failed record was re-mapped on retry; every input survives exactly once.
	if total != len(data) {
		t.Errorf("output %d points, want %d", total, len(data))
	}
}

// TestRunFramesEmptyInput degenerates gracefully.
func TestRunFramesEmptyInput(t *testing.T) {
	mapper, reducer := identityFrameJob(2)
	res, err := RunFrames(context.Background(), Config{Name: "empty"}, nil, mapper, nil, reducer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 0 {
		t.Fatalf("blocks = %d, want 0", len(res.Blocks))
	}
}
