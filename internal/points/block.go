package points

import "fmt"

// Block stores n points of one shared dimension d as a single contiguous
// []float64 of length n×d (structure-of-arrays by row). It is the flat-
// memory representation used by the skyline kernels: identity is the row
// index, dominance tests touch one cache line per small-d point, and
// eviction is a swap-delete instead of a slice rebuild. A Block is
// append-and-truncate mutable; unlike Point values handed to the classic
// kernels, rows returned by Row are views that move when the block is
// mutated, so callers must not hold Row slices across SwapDelete/Truncate.
type Block struct {
	dim    int
	coords []float64
}

// NewBlock returns an empty block of dimension dim with capacity for
// capPoints points. dim may be 0, in which case the first AppendRow (or
// AppendDecode) fixes the dimension.
func NewBlock(dim, capPoints int) *Block {
	if capPoints < 0 {
		capPoints = 0
	}
	return &Block{dim: dim, coords: make([]float64, 0, dim*capPoints)}
}

// BlockOf copies a point set into a fresh block. ok is false when the set
// mixes dimensionalities (the classic Set kernels tolerate that; a block
// cannot represent it).
func BlockOf(s Set) (b *Block, ok bool) {
	d := s.Dim()
	b = &Block{dim: d, coords: make([]float64, 0, d*len(s))}
	for _, p := range s {
		if len(p) != d {
			return nil, false
		}
		b.coords = append(b.coords, p...)
	}
	return b, true
}

// Dim returns the per-point dimension (0 until the first append on a
// dimension-inferring block).
func (b *Block) Dim() int { return b.dim }

// Len returns the number of points stored.
func (b *Block) Len() int {
	if b.dim == 0 {
		return 0
	}
	return len(b.coords) / b.dim
}

// Row returns the i-th point's coordinates as a view into the block's
// backing array. The full-slice expression caps the view so an append
// through it cannot clobber the next row.
func (b *Block) Row(i int) []float64 {
	lo := i * b.dim
	return b.coords[lo : lo+b.dim : lo+b.dim]
}

// AppendRow copies one point onto the end of the block. On a block built
// with dim 0 the first append fixes the dimension; afterwards a mismatched
// row panics, which indicates programmer error.
func (b *Block) AppendRow(row []float64) {
	if b.dim == 0 && len(b.coords) == 0 {
		b.dim = len(row)
	}
	if len(row) != b.dim || b.dim == 0 {
		panic(fmt.Sprintf("points: appending %d-dim row to %d-dim block", len(row), b.dim))
	}
	b.coords = append(b.coords, row...)
}

// AppendBlock copies every row of o onto the end of the block. The usual
// AppendRow rules apply: an empty dimension-inferring block adopts o's
// dimension, and a mismatch panics.
func (b *Block) AppendBlock(o *Block) {
	if o.Len() == 0 {
		return
	}
	if b.dim == 0 && len(b.coords) == 0 {
		b.dim = o.dim
	}
	if o.dim != b.dim {
		panic(fmt.Sprintf("points: appending %d-dim block to %d-dim block", o.dim, b.dim))
	}
	b.coords = append(b.coords, o.coords...)
}

// SwapDelete removes row i by moving the last row into its place and
// truncating — O(d) regardless of position, at the cost of row order.
func (b *Block) SwapDelete(i int) {
	n := b.Len()
	if i != n-1 {
		copy(b.Row(i), b.Row(n-1))
	}
	b.coords = b.coords[:(n-1)*b.dim]
}

// Truncate shortens the block to n points.
func (b *Block) Truncate(n int) { b.coords = b.coords[:n*b.dim] }

// Reset empties the block, keeping capacity and dimension for reuse.
func (b *Block) Reset() { b.coords = b.coords[:0] }

// Clear empties the block and forgets its dimension, keeping capacity —
// the pooled-builder reset, where the next use may carry a different
// dimensionality.
func (b *Block) Clear() {
	b.coords = b.coords[:0]
	b.dim = 0
}

// Slice returns a read-only view of rows [lo, hi) sharing the backing
// array — the chunking primitive of the parallel kernels. Mutating the
// view or the parent afterwards is undefined.
func (b *Block) Slice(lo, hi int) *Block {
	return &Block{dim: b.dim, coords: b.coords[lo*b.dim : hi*b.dim : hi*b.dim]}
}

// Clone deep-copies the block.
func (b *Block) Clone() *Block {
	out := &Block{dim: b.dim, coords: make([]float64, len(b.coords))}
	copy(out.coords, b.coords)
	return out
}

// ToSet converts the block back to a point set. The points share one
// freshly allocated backing array (two allocations total, not n), so the
// result is safe against later mutation of the block.
func (b *Block) ToSet() Set {
	n := b.Len()
	out := make(Set, n)
	if n == 0 {
		return out
	}
	backing := make([]float64, len(b.coords))
	copy(backing, b.coords)
	for i := 0; i < n; i++ {
		out[i] = Point(backing[i*b.dim : (i+1)*b.dim : (i+1)*b.dim])
	}
	return out
}
