package points

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the set as CSV rows of float columns. If header is
// non-nil it is written first; its length must match the set dimension.
func WriteCSV(w io.Writer, s Set, header []string) error {
	cw := csv.NewWriter(w)
	if header != nil {
		if len(s) > 0 && len(header) != s.Dim() {
			return fmt.Errorf("points: header has %d columns, data has %d", len(header), s.Dim())
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	row := make([]string, 0, s.Dim())
	for _, p := range s {
		row = row[:0]
		for _, v := range p {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream into a Set. If hasHeader is true the first
// row is skipped and returned as the header. Blank lines are ignored by the
// underlying csv reader. Every data row must parse as floats and all rows
// must share one column count.
func ReadCSV(r io.Reader, hasHeader bool) (Set, []string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	var header []string
	var set Set
	dim := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("points: csv read: %w", err)
		}
		line++
		if line == 1 && hasHeader {
			header = rec
			continue
		}
		if dim == -1 {
			dim = len(rec)
		} else if len(rec) != dim {
			return nil, nil, fmt.Errorf("points: row %d has %d columns, want %d", line, len(rec), dim)
		}
		p := make(Point, len(rec))
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("points: row %d column %d: %w", line, i+1, err)
			}
			p[i] = v
		}
		set = append(set, p)
	}
	return set, header, nil
}
