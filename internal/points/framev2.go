package points

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
)

// Frame wire format (version 2) — the compressed frame codec. The header
// mirrors v1 (version, partition, count, dim), then replaces the raw
// little-endian coordinate payload with per-column XOR-delta bit-packed
// float64 columns in the Gorilla style (Pelkonen et al., VLDB 2015):
//
//	version   byte     2
//	partition uvarint  owning partition id
//	count     uvarint  number of points
//	dim       uvarint  coordinates per point (0 only when count is 0)
//	packed    uvarint  byte length of the packed payload
//	crc       uint32   little-endian CRC-32 (IEEE) of the packed payload
//	payload   [packed]byte
//
// The payload is one continuous MSB-first bitstream holding the dim
// columns back to back. Within a column, the first value is written as
// its raw 64 IEEE-754 bits; each later value is XORed with its
// predecessor in the same column and the difference is encoded as:
//
//	0                                  — identical to the predecessor
//	10 <meaningful bits>               — non-zero bits fit the previous
//	                                     (leading, length) window; only
//	                                     the window bits are written
//	11 <6b lead> <6b sig-1> <sig bits> — new window: leading-zero count,
//	                                     significant-bit length minus 1,
//	                                     then the significant bits
//
// Neighbouring values of one column share exponent and high mantissa
// bits on the correlated and clustered workloads, so their XOR is mostly
// zeros and the stream packs far below 64 bits per value; on adversarial
// input the per-value worst case is 78 bits, which is why AppendFrameCodec
// with FrameAuto falls back to v1 whenever v2 would be larger. The
// trailing CRC makes a corrupted bitstream a detected error rather than
// silently wrong coordinates — the raw v1 payload can at worst produce a
// wrong float, a bit-packed one would desynchronize the whole column.
const FrameVersion2 = 2

// FrameCodec selects the frame wire codec used when sealing blocks.
type FrameCodec int

const (
	// FrameDefault is the zero value: the v1 raw codec, preserving the
	// byte-exact behaviour of callers that predate v2.
	FrameDefault FrameCodec = iota
	// FrameV1 forces the raw little-endian payload of FrameVersion 1.
	FrameV1
	// FrameV2 forces the XOR-delta bit-packed payload of FrameVersion2.
	FrameV2
	// FrameAuto encodes v2 and keeps it only when strictly smaller than
	// the v1 encoding would be — the no-regression default for spill and
	// out-of-core paths.
	FrameAuto
)

// String names the codec for logs and bench reports.
func (c FrameCodec) String() string {
	switch c {
	case FrameV1:
		return "v1"
	case FrameV2:
		return "v2"
	case FrameAuto:
		return "auto"
	default:
		return "default"
	}
}

// AppendFrameCodec appends one frame encoding of blk under the chosen
// codec. FrameAuto compares the v2 encoding against the v1 size and keeps
// the smaller; empty blocks always encode as the 4-byte v1 empty frame.
func AppendFrameCodec(dst []byte, partition int, blk *Block, codec FrameCodec) []byte {
	switch codec {
	case FrameV2:
		if blk.Len() == 0 {
			return AppendFrame(dst, partition, blk)
		}
		return appendFrameV2(dst, partition, blk)
	case FrameAuto:
		if blk.Len() == 0 {
			return AppendFrame(dst, partition, blk)
		}
		mark := len(dst)
		dst = appendFrameV2(dst, partition, blk)
		if v1Len := frameV1Len(partition, blk); len(dst)-mark >= v1Len {
			return AppendFrame(dst[:mark], partition, blk)
		}
		return dst
	default:
		return AppendFrame(dst, partition, blk)
	}
}

// frameV1Len computes the exact v1 encoding length without encoding.
func frameV1Len(partition int, blk *Block) int {
	n := blk.Len()
	l := 1 + uvarintLen(uint64(partition)) + uvarintLen(uint64(n))
	if n == 0 {
		return l + 1
	}
	return l + uvarintLen(uint64(blk.dim)) + len(blk.coords)*8
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ---------------------------------------------------------------------------
// Bit stream primitives (MSB-first)

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf   []byte
	dirty byte // partial byte under construction
	n     uint // bits already placed in dirty (always < 8 between calls)
}

func (w *bitWriter) writeBits(v uint64, nbits uint) {
	// Fast path: emit whole bytes as they fill.
	for nbits > 0 {
		take := 8 - w.n
		if take > nbits {
			take = nbits
		}
		w.dirty |= byte(v>>(nbits-take)) << (8 - w.n - take) & (0xFF >> w.n)
		w.n += take
		nbits -= take
		v &= (1 << nbits) - 1
		if w.n == 8 {
			w.buf = append(w.buf, w.dirty)
			w.dirty, w.n = 0, 0
		}
	}
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// finish flushes any partial byte (zero-padded) and returns the stream.
func (w *bitWriter) finish() []byte {
	if w.n > 0 {
		w.buf = append(w.buf, w.dirty)
		w.dirty, w.n = 0, 0
	}
	return w.buf
}

// bitReader consumes an MSB-first bitstream with overrun detection.
type bitReader struct {
	buf []byte
	pos int  // next byte index
	acc byte // current byte being consumed
	n   uint // bits remaining in acc
	err error
}

func (r *bitReader) readBits(nbits uint) uint64 {
	var v uint64
	for nbits > 0 {
		if r.n == 0 {
			if r.pos >= len(r.buf) {
				if r.err == nil {
					r.err = fmt.Errorf("points: frame v2 bitstream overrun")
				}
				return 0
			}
			r.acc = r.buf[r.pos]
			r.pos++
			r.n = 8
		}
		take := r.n
		if take > nbits {
			take = nbits
		}
		v = v<<take | uint64(r.acc>>(r.n-take))&((1<<take)-1)
		r.n -= take
		nbits -= take
	}
	return v
}

func (r *bitReader) readBit() uint64 { return r.readBits(1) }

// ---------------------------------------------------------------------------
// Encode

// appendFrameV2 appends the v2 encoding of a non-empty block.
func appendFrameV2(dst []byte, partition int, blk *Block) []byte {
	if partition < 0 {
		panic(fmt.Sprintf("points: negative partition id %d in frame", partition))
	}
	n, d := blk.Len(), blk.dim
	w := bitWriter{buf: make([]byte, 0, len(blk.coords)*8/2)}
	for j := 0; j < d; j++ {
		prev := math.Float64bits(blk.coords[j])
		w.writeBits(prev, 64)
		// Invalid window: sig 0 forces the first non-zero XOR onto the
		// '11' full-window branch.
		var lead, trail, sig uint = 0, 0, 0
		for i := 1; i < n; i++ {
			cur := math.Float64bits(blk.coords[i*d+j])
			xor := cur ^ prev
			prev = cur
			if xor == 0 {
				w.writeBit(0)
				continue
			}
			l := uint(bits.LeadingZeros64(xor))
			if l > 63 {
				l = 63
			}
			t := uint(bits.TrailingZeros64(xor))
			if sig > 0 && l >= lead && t >= trail {
				w.writeBits(2, 2) // '10'
				w.writeBits(xor>>trail, sig)
				continue
			}
			lead, trail = l, t
			sig = 64 - lead - trail
			w.writeBits(3, 2) // '11'
			w.writeBits(uint64(lead), 6)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(xor>>trail, sig)
		}
	}
	payload := w.finish()
	dst = append(dst, FrameVersion2)
	dst = binary.AppendUvarint(dst, uint64(partition))
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(d))
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	dst = append(dst, crc[:]...)
	return append(dst, payload...)
}

// ---------------------------------------------------------------------------
// Decode

// frameHeaderV2 parses and validates a v2 frame header, returning the
// packed payload length and total header length (up to but excluding the
// payload). The bit-budget check bounds the later coordinate allocation:
// count×dim values need at least dim×64 + (count−1)×dim payload bits, so
// a lying count can never over-allocate relative to the input length.
func frameHeaderV2(b []byte) (partition int, count, dim uint64, packed, hdrLen int, err error) {
	if len(b) == 0 || b[0] != FrameVersion2 {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: not a v2 frame")
	}
	off := 1
	part, n := binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(part, n) {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: bad frame partition")
	}
	off += n
	const maxPartition = 1 << 31
	if part > maxPartition {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: implausible frame partition %d", part)
	}
	count, n = binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(count, n) {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: bad frame count")
	}
	off += n
	dim, n = binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(dim, n) {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: bad frame dimension")
	}
	off += n
	if dim > maxFrameDim {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: implausible frame dimension %d", dim)
	}
	plen, n := binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(plen, n) {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: bad frame payload length")
	}
	off += n
	if len(b)-off < 4 {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: truncated v2 frame checksum")
	}
	off += 4
	if plen > uint64(len(b)-off) {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: truncated v2 frame: %d payload bytes exceed %d remaining",
			plen, len(b)-off)
	}
	if count > 0 {
		if dim == 0 {
			return 0, 0, 0, 0, 0, fmt.Errorf("points: frame with %d points but dimension 0", count)
		}
		minBits := dim*64 + (count-1)*dim
		if count > (1<<40) || dim > (1<<20) || minBits/dim != 64+(count-1) || plen*8 < minBits {
			return 0, 0, 0, 0, 0, fmt.Errorf("points: truncated v2 frame: %d×%d values exceed %d payload bytes",
				count, dim, plen)
		}
	} else if plen != 0 {
		return 0, 0, 0, 0, 0, fmt.Errorf("points: v2 frame with 0 points but %d payload bytes", plen)
	}
	return int(part), count, dim, int(plen), off, nil
}

// decodeFrameV2 consumes one v2 frame from the front of b, appending its
// points onto blk, and returns the owning partition and the unconsumed
// remainder. Checksum mismatches, bitstream overruns and header faults
// are errors, never panics or silent misreads.
func decodeFrameV2(blk *Block, b []byte) (partition int, rest []byte, err error) {
	part, count, dim, packed, hdr, err := frameHeaderV2(b)
	if err != nil {
		return 0, nil, err
	}
	payload := b[hdr : hdr+packed]
	rest = b[hdr+packed:]
	if count == 0 {
		return part, rest, nil
	}
	wantCRC := binary.LittleEndian.Uint32(b[hdr-4 : hdr])
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return 0, nil, fmt.Errorf("points: v2 frame checksum mismatch (got %08x, want %08x)", got, wantCRC)
	}
	if blk.dim == 0 && len(blk.coords) == 0 {
		blk.dim = int(dim)
	}
	if int(dim) != blk.dim {
		return 0, nil, fmt.Errorf("points: decoding %d-dim frame into %d-dim block", dim, blk.dim)
	}
	d := int(dim)
	total := int(count) * d
	lo := len(blk.coords)
	need := lo + total
	if cap(blk.coords) >= need {
		blk.coords = blk.coords[:need]
	} else {
		grown := make([]float64, need, need+need/2)
		copy(grown, blk.coords)
		blk.coords = grown
	}
	rows := blk.coords[lo:need]
	r := bitReader{buf: payload}
	for j := 0; j < d; j++ {
		prev := r.readBits(64)
		rows[j] = math.Float64frombits(prev)
		var lead, sig uint = 0, 0
		for i := 1; i < int(count); i++ {
			var xor uint64
			if r.readBit() != 0 {
				if r.readBit() == 0 { // '10': previous window
					if sig == 0 {
						blk.coords = blk.coords[:lo]
						return 0, nil, fmt.Errorf("points: v2 frame reuses window before one is set")
					}
				} else { // '11': new window
					lead = uint(r.readBits(6))
					sig = uint(r.readBits(6)) + 1
					if lead+sig > 64 {
						blk.coords = blk.coords[:lo]
						return 0, nil, fmt.Errorf("points: v2 frame window %d+%d exceeds 64 bits", lead, sig)
					}
				}
				xor = r.readBits(sig) << (64 - lead - sig)
			}
			prev ^= xor
			rows[i*d+j] = math.Float64frombits(prev)
		}
	}
	if r.err != nil {
		blk.coords = blk.coords[:lo]
		return 0, nil, r.err
	}
	return part, rest, nil
}
