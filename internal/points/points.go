// Package points defines the fundamental Point type used throughout the
// skyline library, together with dominance tests and point-set utilities.
//
// All code in this repository follows the paper's minimization convention:
// in every attribute dimension a lower value is better. Datasets whose raw
// attributes are "higher is better" (availability, throughput, ...) must be
// re-oriented before entering the library; see package qws.
package points

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a position in a d-dimensional QoS data space. Index i holds the
// value of the i-th performance attribute. Points are treated as immutable
// by every algorithm in this repository; callers that mutate a Point after
// handing it to the library get undefined results.
type Point []float64

// Dim returns the number of attribute dimensions.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(v1, v2, ...)" with compact formatting.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(strconv.FormatFloat(v, 'g', 6, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Dominates reports whether p dominates q under minimization: p is less
// than or equal to q in every dimension and strictly less in at least one.
// Points of mismatched dimensionality never dominate each other.
func Dominates(p, q Point) bool {
	if len(p) != len(q) || len(p) == 0 {
		return false
	}
	strict := false
	for i := range p {
		switch {
		case p[i] > q[i]:
			return false
		case p[i] < q[i]:
			strict = true
		}
	}
	return strict
}

// DominatesOrEqual reports whether p is less than or equal to q in every
// dimension (weak dominance). Every point weakly dominates itself.
func DominatesOrEqual(p, q Point) bool {
	if len(p) != len(q) || len(p) == 0 {
		return false
	}
	for i := range p {
		if p[i] > q[i] {
			return false
		}
	}
	return true
}

// Incomparable reports whether neither point dominates the other and the
// points are not coordinate-wise equal.
func Incomparable(p, q Point) bool {
	return !p.Equal(q) && !Dominates(p, q) && !Dominates(q, p)
}

// Sum returns the sum of the coordinates, a monotone scoring function used
// by sort-based skyline algorithms (SFS).
func (p Point) Sum() float64 {
	s := 0.0
	for _, v := range p {
		s += v
	}
	return s
}

// Norm returns the Euclidean norm, i.e. the radial hyperspherical
// coordinate r of the paper's Eq. (1).
func (p Point) Norm() float64 {
	s := 0.0
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// MinWith lowers each coordinate of p to the minimum of p and q in place.
// Both points must have the same dimension.
func (p Point) MinWith(q Point) {
	for i := range p {
		if q[i] < p[i] {
			p[i] = q[i]
		}
	}
}

// MaxWith raises each coordinate of p to the maximum of p and q in place.
// Both points must have the same dimension.
func (p Point) MaxWith(q Point) {
	for i := range p {
		if q[i] > p[i] {
			p[i] = q[i]
		}
	}
}

// Validate returns an error if the point contains NaN or infinite values or
// has zero dimensions. Negative values are allowed in general point sets;
// partitioners that require non-negative data perform their own checks.
func (p Point) Validate() error {
	if len(p) == 0 {
		return errors.New("points: zero-dimensional point")
	}
	for i, v := range p {
		if math.IsNaN(v) {
			return fmt.Errorf("points: NaN at dimension %d", i)
		}
		if math.IsInf(v, 0) {
			return fmt.Errorf("points: infinity at dimension %d", i)
		}
	}
	return nil
}

// Set is an ordered collection of points with shared dimensionality
// helpers. A Set does not enforce uniform dimension on construction; use
// Validate to check.
type Set []Point

// Dim returns the dimension of the first point, or 0 for an empty set.
func (s Set) Dim() int {
	if len(s) == 0 {
		return 0
	}
	return s[0].Dim()
}

// Clone deep-copies the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for i, p := range s {
		out[i] = p.Clone()
	}
	return out
}

// Validate checks that the set is non-empty, every point is finite, and all
// points share one dimensionality.
func (s Set) Validate() error {
	if len(s) == 0 {
		return errors.New("points: empty set")
	}
	d := s[0].Dim()
	for i, p := range s {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
		if p.Dim() != d {
			return fmt.Errorf("points: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}
	return nil
}

// Bounds returns the coordinate-wise minimum and maximum corners of the
// set's bounding box. It panics on an empty set.
func (s Set) Bounds() (min, max Point) {
	if len(s) == 0 {
		panic("points: Bounds of empty set")
	}
	min = s[0].Clone()
	max = s[0].Clone()
	for _, p := range s[1:] {
		min.MinWith(p)
		max.MaxWith(p)
	}
	return min, max
}

// Project returns a new set keeping only the first d dimensions of every
// point. It panics if any point has fewer than d dimensions.
func (s Set) Project(d int) Set {
	out := make(Set, len(s))
	for i, p := range s {
		if p.Dim() < d {
			panic(fmt.Sprintf("points: cannot project %d-dim point to %d dims", p.Dim(), d))
		}
		out[i] = p[:d].Clone()
	}
	return out
}

// Contains reports whether the set holds a point coordinate-equal to p.
func (s Set) Contains(p Point) bool {
	for _, q := range s {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

// Key returns a canonical string key for a point, usable as a map key when
// deduplicating. Two points are coordinate-equal iff their keys match.
func Key(p Point) string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatFloat(v, 'b', -1, 64))
	}
	return b.String()
}

// Dedup returns the set with coordinate-duplicates removed, preserving the
// first occurrence order.
func (s Set) Dedup() Set {
	seen := make(map[string]struct{}, len(s))
	out := make(Set, 0, len(s))
	for _, p := range s {
		k := Key(p)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, p)
	}
	return out
}
