package points

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encode serializes a point as little-endian float64s prefixed by a uvarint
// dimension count. The format is the wire/value encoding used by the
// MapReduce jobs and the RPC engine.
func Encode(p Point) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+8*len(p))
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	for _, v := range p {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// Decode parses a point produced by Encode. It rejects trailing garbage,
// truncated input, and non-canonical varint framing (every valid encoding
// round-trips byte-for-byte).
func Decode(b []byte) (Point, error) {
	d, n := binary.Uvarint(b)
	if n <= 0 || !canonicalUvarint(d, n) {
		return nil, fmt.Errorf("points: bad dimension header")
	}
	const maxDim = 1 << 20
	if d > maxDim {
		return nil, fmt.Errorf("points: implausible dimension %d", d)
	}
	rest := b[n:]
	if len(rest) != int(d)*8 {
		return nil, fmt.Errorf("points: encoded point has %d payload bytes, want %d", len(rest), d*8)
	}
	p := make(Point, d)
	for i := range p {
		p[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return p, nil
}

// DecodeInto decodes like Decode but reuses dst's backing array when its
// capacity suffices, allocating only on growth. The returned slice aliases
// dst; callers that retain the point across calls must copy it. This is
// the mapper hot path, where the decoded point only lives for one Assign.
func DecodeInto(dst Point, b []byte) (Point, error) {
	d, n := binary.Uvarint(b)
	if n <= 0 || !canonicalUvarint(d, n) {
		return nil, fmt.Errorf("points: bad dimension header")
	}
	const maxDim = 1 << 20
	if d > maxDim {
		return nil, fmt.Errorf("points: implausible dimension %d", d)
	}
	rest := b[n:]
	if len(rest) != int(d)*8 {
		return nil, fmt.Errorf("points: encoded point has %d payload bytes, want %d", len(rest), d*8)
	}
	if uint64(cap(dst)) < d {
		dst = make(Point, d)
	} else {
		dst = dst[:d]
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return dst, nil
}

// AppendDecode decodes an encoded point directly into blk, skipping the
// intermediate Point allocation — the bulk-ingest path of the flat-memory
// reducers. On a dimension-inferring block the first append fixes the
// dimension; later mismatches (and all framing faults Decode rejects) are
// errors.
func AppendDecode(blk *Block, b []byte) error {
	d, n := binary.Uvarint(b)
	if n <= 0 || !canonicalUvarint(d, n) {
		return fmt.Errorf("points: bad dimension header")
	}
	const maxDim = 1 << 20
	if d == 0 || d > maxDim {
		return fmt.Errorf("points: implausible dimension %d", d)
	}
	rest := b[n:]
	if len(rest) != int(d)*8 {
		return fmt.Errorf("points: encoded point has %d payload bytes, want %d", len(rest), d*8)
	}
	if blk.dim == 0 && len(blk.coords) == 0 {
		blk.dim = int(d)
	}
	if int(d) != blk.dim {
		return fmt.Errorf("points: decoding %d-dim point into %d-dim block", d, blk.dim)
	}
	// Grow once and decode with indexed stores: one capacity check per
	// point instead of one per coordinate.
	lo := len(blk.coords)
	need := lo + int(d)
	if cap(blk.coords) >= need {
		blk.coords = blk.coords[:need]
	} else {
		grown := make([]float64, need, 2*need)
		copy(grown, blk.coords)
		blk.coords = grown
	}
	row := blk.coords[lo:need]
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return nil
}

// EncodeSet serializes a whole set, each point length-prefixed, for bulk
// transfer over RPC.
func EncodeSet(s Set) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, p := range s {
		e := Encode(p)
		buf = binary.AppendUvarint(buf, uint64(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// DecodeSet parses the output of EncodeSet.
func DecodeSet(b []byte) (Set, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 || !canonicalUvarint(count, n) {
		return nil, fmt.Errorf("points: bad set header")
	}
	b = b[n:]
	// Every entry occupies at least two bytes (length prefix + dimension
	// header), so an honest count can never exceed half the payload —
	// reject before allocating attacker-controlled capacity.
	if count > uint64(len(b)/2) {
		return nil, fmt.Errorf("points: set count %d exceeds payload", count)
	}
	s := make(Set, 0, count)
	for i := uint64(0); i < count; i++ {
		l, n := binary.Uvarint(b)
		if n <= 0 || !canonicalUvarint(l, n) {
			return nil, fmt.Errorf("points: bad length prefix at point %d", i)
		}
		b = b[n:]
		if uint64(len(b)) < l {
			return nil, fmt.Errorf("points: truncated set at point %d", i)
		}
		p, err := Decode(b[:l])
		if err != nil {
			return nil, fmt.Errorf("points: point %d: %w", i, err)
		}
		s = append(s, p)
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("points: %d trailing bytes after set", len(b))
	}
	return s, nil
}

// canonicalUvarint reports whether value v would re-encode to exactly n
// bytes — rejecting padded (non-minimal) varints so the wire format
// round-trips byte-for-byte. The scratch array stays on the stack; this
// runs once per decoded point on the shuffle hot path.
func canonicalUvarint(v uint64, n int) bool {
	var tmp [binary.MaxVarintLen64]byte
	return binary.PutUvarint(tmp[:], v) == n
}
