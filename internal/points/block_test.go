package points

import (
	"math"
	"math/rand"
	"testing"
)

func TestBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(9)
		n := rng.Intn(200)
		s := make(Set, n)
		for i := range s {
			p := make(Point, d)
			for j := range p {
				p[j] = rng.NormFloat64()
			}
			s[i] = p
		}
		b, ok := BlockOf(s)
		if !ok {
			t.Fatalf("trial %d: uniform set rejected", trial)
		}
		if b.Len() != n || (n > 0 && b.Dim() != d) {
			t.Fatalf("trial %d: block %d×%d, want %d×%d", trial, b.Len(), b.Dim(), n, d)
		}
		back := b.ToSet()
		if len(back) != n {
			t.Fatalf("trial %d: round trip length %d, want %d", trial, len(back), n)
		}
		for i := range s {
			if !back[i].Equal(s[i]) {
				t.Fatalf("trial %d: point %d differs: %v vs %v", trial, i, back[i], s[i])
			}
		}
	}
}

func TestBlockOfMixedDims(t *testing.T) {
	if _, ok := BlockOf(Set{{1, 2}, {3}}); ok {
		t.Fatal("mixed-dimension set accepted")
	}
	if b, ok := BlockOf(nil); !ok || b.Len() != 0 {
		t.Fatal("empty set should yield an empty block")
	}
}

func TestBlockSwapDelete(t *testing.T) {
	b := NewBlock(2, 4)
	b.AppendRow([]float64{1, 1})
	b.AppendRow([]float64{2, 2})
	b.AppendRow([]float64{3, 3})
	b.SwapDelete(0) // last row moves into slot 0
	if b.Len() != 2 {
		t.Fatalf("len %d after delete, want 2", b.Len())
	}
	if b.Row(0)[0] != 3 || b.Row(1)[0] != 2 {
		t.Fatalf("rows after swap-delete: %v %v", b.Row(0), b.Row(1))
	}
	b.SwapDelete(1) // deleting the last row is a plain truncate
	if b.Len() != 1 || b.Row(0)[0] != 3 {
		t.Fatalf("rows after tail delete: len=%d row0=%v", b.Len(), b.Row(0))
	}
}

func TestBlockDimInference(t *testing.T) {
	b := NewBlock(0, 8)
	b.AppendRow([]float64{1, 2, 3})
	if b.Dim() != 3 || b.Len() != 1 {
		t.Fatalf("inferred %d×%d, want 1×3", b.Len(), b.Dim())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row append did not panic")
		}
	}()
	b.AppendRow([]float64{1})
}

func TestBlockSliceAndClone(t *testing.T) {
	b := NewBlock(2, 4)
	for i := 0; i < 4; i++ {
		b.AppendRow([]float64{float64(i), float64(-i)})
	}
	v := b.Slice(1, 3)
	if v.Len() != 2 || v.Row(0)[0] != 1 || v.Row(1)[0] != 2 {
		t.Fatalf("slice view wrong: len=%d", v.Len())
	}
	c := b.Clone()
	b.Row(0)[0] = 99
	if c.Row(0)[0] == 99 {
		t.Fatal("clone shares storage with original")
	}
	// ToSet must copy out: mutating the block afterwards must not change
	// the returned points.
	s := c.ToSet()
	c.Row(0)[0] = -5
	if s[0][0] == -5 {
		t.Fatal("ToSet shares storage with block")
	}
}

func TestAppendDecode(t *testing.T) {
	b := NewBlock(0, 4)
	for _, p := range []Point{{1, 2, 3}, {4, 5, 6}} {
		if err := AppendDecode(b, Encode(p)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 2 || b.Dim() != 3 || b.Row(1)[2] != 6 {
		t.Fatalf("decoded block %d×%d, row1=%v", b.Len(), b.Dim(), b.Row(1))
	}
	if err := AppendDecode(b, Encode(Point{7, 8})); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if err := AppendDecode(b, Encode(Point{})); err == nil {
		t.Fatal("zero-dim point not rejected")
	}
	if err := AppendDecode(b, []byte{0xff, 0xff}); err == nil {
		t.Fatal("garbage framing not rejected")
	}
	if b.Len() != 2 {
		t.Fatalf("failed appends mutated length to %d", b.Len())
	}
}

// FuzzAppendDecode: any input Decode accepts must AppendDecode into a
// fresh block with identical coordinates, and vice versa for rejects of
// non-zero dimension.
func FuzzAppendDecode(f *testing.F) {
	f.Add(Encode(Point{1, 2, 3}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		blk := NewBlock(0, 1)
		berr := AppendDecode(blk, data)
		if err != nil {
			if berr == nil {
				t.Fatalf("Decode rejected %x, AppendDecode accepted", data)
			}
			return
		}
		if len(p) == 0 {
			// Blocks cannot represent zero-dim points; AppendDecode
			// rejects what Decode tolerates.
			if berr == nil {
				t.Fatal("zero-dim accepted by AppendDecode")
			}
			return
		}
		if berr != nil {
			t.Fatalf("Decode accepted %x, AppendDecode rejected: %v", data, berr)
		}
		for i, v := range blk.Row(0) {
			// Bit comparison: NaN payloads survive decoding and must still
			// match exactly.
			if math.Float64bits(v) != math.Float64bits(p[i]) {
				t.Fatalf("AppendDecode row %v, Decode %v", blk.Row(0), p)
			}
		}
	})
}
