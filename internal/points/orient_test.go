package points

import (
	"math/rand"
	"testing"
)

func TestOrient(t *testing.T) {
	// Column 0 lower-better, column 1 higher-better (max 10).
	s := Set{{1, 10}, {2, 4}, {3, 7}}
	got, err := Orient(s, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	want := Set{{1, 0}, {2, 6}, {3, 3}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("oriented[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Input untouched.
	if !s[0].Equal(Point{1, 10}) {
		t.Error("Orient mutated input")
	}
}

func TestOrientErrors(t *testing.T) {
	if _, err := Orient(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := Orient(Set{{1, 2}}, []bool{true}); err == nil {
		t.Error("flag count mismatch accepted")
	}
}

func TestOrientFlipsDominance(t *testing.T) {
	// Service A beats B on a higher-better metric; after orientation A
	// must dominate B.
	s := Set{{100, 99.9}, {100, 90.0}} // col 1: availability-like
	got, err := Orient(s, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if !Dominates(got[0], got[1]) {
		t.Errorf("orientation lost dominance: %v vs %v", got[0], got[1])
	}
}

func TestNormalize(t *testing.T) {
	s := Set{{0, 50, 7}, {10, 100, 7}}
	got, err := Normalize(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Equal(Point{0, 0, 0}) || !got[1].Equal(Point{1, 1, 0}) {
		t.Errorf("normalized = %v", got)
	}
	if _, err := Normalize(nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestNormalizePreservesDominance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := make(Set, 200)
	for i := range s {
		s[i] = Point{rng.Float64() * 1000, rng.Float64() * 0.01, rng.Float64()}
	}
	n, err := Normalize(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		for j := range s {
			if Dominates(s[i], s[j]) != Dominates(n[i], n[j]) {
				t.Fatalf("dominance changed for pair %d,%d", i, j)
			}
		}
	}
}
