package points

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Point{
		{},
		{0},
		{1.5, -2.25, 1e300},
		{math.SmallestNonzeroFloat64, math.MaxFloat64},
	}
	for _, p := range cases {
		got, err := Decode(Encode(p))
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", p, err)
		}
		if len(got) != len(p) {
			t.Fatalf("round trip changed length: %v -> %v", p, got)
		}
		for i := range p {
			if got[i] != p[i] {
				t.Errorf("round trip mismatch at %d: %v vs %v", i, got[i], p[i])
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Decode([]byte{2, 0, 0}); err == nil {
		t.Error("truncated accepted")
	}
	e := Encode(Point{1, 2})
	if _, err := Decode(append(e, 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Implausible dimension header.
	if _, err := Decode([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x7F}); err == nil {
		t.Error("huge dimension accepted")
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(vals []float64) bool {
		p := Point(vals)
		got, err := Decode(Encode(p))
		if err != nil || len(got) != len(p) {
			return false
		}
		for i := range p {
			if got[i] != p[i] && !(math.IsNaN(got[i]) && math.IsNaN(p[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetRoundTrip(t *testing.T) {
	s := Set{{1, 2}, {3, 4, 5}, {}}
	got, err := DecodeSet(EncodeSet(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("set length %d, want %d", len(got), len(s))
	}
	for i := range s {
		if len(got[i]) != len(s[i]) {
			t.Fatalf("point %d length mismatch", i)
		}
		for j := range s[i] {
			if got[i][j] != s[i][j] {
				t.Errorf("set[%d][%d] = %v, want %v", i, j, got[i][j], s[i][j])
			}
		}
	}
}

func TestSetEmptyRoundTrip(t *testing.T) {
	got, err := DecodeSet(EncodeSet(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestDecodeSetRejectsGarbage(t *testing.T) {
	if _, err := DecodeSet(nil); err == nil {
		t.Error("nil accepted")
	}
	e := EncodeSet(Set{{1}})
	if _, err := DecodeSet(e[:len(e)-2]); err == nil {
		t.Error("truncated set accepted")
	}
	if _, err := DecodeSet(append(e, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
