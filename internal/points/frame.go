package points

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Frame wire format (version 1) — the unit of the block-framed shuffle.
// A frame packs every point of one partition that one map task produced
// into a single record with a 4-field header and a contiguous coordinate
// payload in the Block's SoA layout:
//
//	version   byte     1
//	partition uvarint  owning partition id
//	count     uvarint  number of points
//	dim       uvarint  coordinates per point (0 only when count is 0)
//	coords    [count*dim*8]byte  little-endian float64, row-major
//
// Frames are self-delimiting, so a shuffle "stream" is just frames
// back-to-back; DecodeFrame consumes one frame and returns the rest.
// The leading version byte gates format evolution: readers reject
// unknown versions instead of misparsing them.
const FrameVersion = 1

// maxFrameDim mirrors the per-point codec's plausibility bound.
const maxFrameDim = 1 << 20

// AppendFrame appends the encoding of one frame — every row of blk, owned
// by partition id — onto dst and returns the extended slice. An empty
// block encodes as a valid zero-count frame.
func AppendFrame(dst []byte, partition int, blk *Block) []byte {
	if partition < 0 {
		panic(fmt.Sprintf("points: negative partition id %d in frame", partition))
	}
	n := blk.Len()
	dst = append(dst, FrameVersion)
	dst = binary.AppendUvarint(dst, uint64(partition))
	dst = binary.AppendUvarint(dst, uint64(n))
	if n == 0 {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(blk.dim))
	// Grow once for the whole payload, then store with indexed writes —
	// one capacity check per frame instead of one per coordinate.
	lo := len(dst)
	need := lo + len(blk.coords)*8
	if cap(dst) < need {
		grown := make([]byte, lo, need+need/2)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:need]
	for i, v := range blk.coords {
		binary.LittleEndian.PutUint64(dst[lo+i*8:], math.Float64bits(v))
	}
	return dst
}

// frameHeader parses and validates a frame header, returning the owning
// partition, point count, dimension and the header's encoded length.
// Validation rejects unknown versions, non-canonical varints, implausible
// dimensions, and counts that could not fit in the remaining bytes — the
// last check bounds every later allocation by the input length, so a
// lying header can never cause over-allocation.
func frameHeader(b []byte) (partition int, count, dim uint64, hdrLen int, err error) {
	if len(b) == 0 {
		return 0, 0, 0, 0, fmt.Errorf("points: empty frame")
	}
	if b[0] != FrameVersion {
		return 0, 0, 0, 0, fmt.Errorf("points: unsupported frame version %d", b[0])
	}
	off := 1
	part, n := binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(part, n) {
		return 0, 0, 0, 0, fmt.Errorf("points: bad frame partition")
	}
	off += n
	const maxPartition = 1 << 31
	if part > maxPartition {
		return 0, 0, 0, 0, fmt.Errorf("points: implausible frame partition %d", part)
	}
	count, n = binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(count, n) {
		return 0, 0, 0, 0, fmt.Errorf("points: bad frame count")
	}
	off += n
	dim, n = binary.Uvarint(b[off:])
	if n <= 0 || !canonicalUvarint(dim, n) {
		return 0, 0, 0, 0, fmt.Errorf("points: bad frame dimension")
	}
	off += n
	if dim > maxFrameDim {
		return 0, 0, 0, 0, fmt.Errorf("points: implausible frame dimension %d", dim)
	}
	if count > 0 {
		if dim == 0 {
			return 0, 0, 0, 0, fmt.Errorf("points: frame with %d points but dimension 0", count)
		}
		// Bounds count by what the payload can actually hold before any
		// allocation, and doubles as the uint64 overflow guard.
		if count > uint64(len(b)-off)/(dim*8) {
			return 0, 0, 0, 0, fmt.Errorf("points: truncated frame: %d×%d points exceed %d payload bytes",
				count, dim, len(b)-off)
		}
	}
	return int(part), count, dim, off, nil
}

// FrameLen returns the total encoded length of the first frame in b
// without decoding its coordinates — the spill writer uses it to split a
// sealed stream back into length-prefixed records.
func FrameLen(b []byte) (int, error) {
	if len(b) > 0 && b[0] == FrameVersion2 {
		_, _, _, packed, hdr, err := frameHeaderV2(b)
		if err != nil {
			return 0, err
		}
		return hdr + packed, nil
	}
	_, count, dim, hdr, err := frameHeader(b)
	if err != nil {
		return 0, err
	}
	return hdr + int(count*dim)*8, nil
}

// FrameCount returns the owning partition and point count of the first
// frame in b — header-only, for counters.
func FrameCount(b []byte) (partition, count int, err error) {
	if len(b) > 0 && b[0] == FrameVersion2 {
		p, c, _, _, _, err := frameHeaderV2(b)
		if err != nil {
			return 0, 0, err
		}
		return p, int(c), nil
	}
	p, c, _, _, err := frameHeader(b)
	if err != nil {
		return 0, 0, err
	}
	return p, int(c), nil
}

// DecodeFrame consumes one frame from the front of b, appending its
// points onto blk with no per-point allocation, and returns the owning
// partition id and the unconsumed remainder of b. On a dimension-
// inferring block the first non-empty frame fixes the dimension; later
// mismatches are errors. Framing faults (truncation, bad varints, version
// or dimension nonsense) are errors, never panics.
func DecodeFrame(blk *Block, b []byte) (partition int, rest []byte, err error) {
	if len(b) > 0 && b[0] == FrameVersion2 {
		return decodeFrameV2(blk, b)
	}
	part, count, dim, hdr, err := frameHeader(b)
	if err != nil {
		return 0, nil, err
	}
	payload := b[hdr:]
	total := int(count * dim)
	if count == 0 {
		return part, payload, nil
	}
	if blk.dim == 0 && len(blk.coords) == 0 {
		blk.dim = int(dim)
	}
	if int(dim) != blk.dim {
		return 0, nil, fmt.Errorf("points: decoding %d-dim frame into %d-dim block", dim, blk.dim)
	}
	// Grow once for the whole frame, then decode with indexed stores.
	lo := len(blk.coords)
	need := lo + total
	if cap(blk.coords) >= need {
		blk.coords = blk.coords[:need]
	} else {
		grown := make([]float64, need, need+need/2)
		copy(grown, blk.coords)
		blk.coords = grown
	}
	row := blk.coords[lo:need]
	for i := range row {
		row[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return part, payload[total*8:], nil
}
