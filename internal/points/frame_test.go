package points

import (
	"bytes"
	"math"
	"testing"
)

func buildBlock(t *testing.T, rows [][]float64) *Block {
	t.Helper()
	b := NewBlock(0, len(rows))
	for _, r := range rows {
		b.AppendRow(r)
	}
	return b
}

func TestFrameRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4.5, -6, math.Inf(1)}, {0, 0, 0}, {1, 2, 3}}
	src := buildBlock(t, rows)
	stream := AppendFrame(nil, 7, src)

	if n, err := FrameLen(stream); err != nil || n != len(stream) {
		t.Fatalf("FrameLen = %d, %v; want %d", n, err, len(stream))
	}
	if p, c, err := FrameCount(stream); err != nil || p != 7 || c != len(rows) {
		t.Fatalf("FrameCount = %d, %d, %v", p, c, err)
	}

	dst := NewBlock(0, 0)
	part, rest, err := DecodeFrame(dst, stream)
	if err != nil {
		t.Fatal(err)
	}
	if part != 7 || len(rest) != 0 {
		t.Fatalf("partition=%d rest=%d", part, len(rest))
	}
	if dst.Len() != len(rows) || dst.Dim() != 3 {
		t.Fatalf("decoded %d×%d", dst.Len(), dst.Dim())
	}
	for i, r := range rows {
		for j, v := range r {
			if got := dst.Row(i)[j]; got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				t.Fatalf("row %d coord %d: %v != %v", i, j, got, v)
			}
		}
	}
}

func TestFrameStream(t *testing.T) {
	// Several frames back-to-back, including an empty one, decode in order.
	var stream []byte
	stream = AppendFrame(stream, 0, buildBlock(t, [][]float64{{1, 1}}))
	stream = AppendFrame(stream, 3, NewBlock(0, 0)) // empty frame
	stream = AppendFrame(stream, 12, buildBlock(t, [][]float64{{2, 2}, {3, 3}}))

	var parts []int
	dst := NewBlock(0, 0)
	for len(stream) > 0 {
		p, rest, err := DecodeFrame(dst, stream)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
		stream = rest
	}
	if len(parts) != 3 || parts[0] != 0 || parts[1] != 3 || parts[2] != 12 {
		t.Fatalf("partitions = %v", parts)
	}
	if dst.Len() != 3 {
		t.Fatalf("decoded %d rows, want 3", dst.Len())
	}
}

func TestFrameRejects(t *testing.T) {
	good := AppendFrame(nil, 1, buildBlock(t, [][]float64{{1, 2}}))
	cases := map[string][]byte{
		"empty":           {},
		"bad version":     append([]byte{9}, good[1:]...),
		"truncated":       good[:len(good)-5],
		"header only":     good[:3],
		"dim zero":        {FrameVersion, 1, 2, 0}, // 2 points, dim 0
		"oversized count": {FrameVersion, 1, 0xff, 0xff, 0xff, 0xff, 0x0f, 2},
		"padded varint":   {FrameVersion, 0x81, 0x00, 0, 0},
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(NewBlock(0, 0), b); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
		if _, err := FrameLen(b); err == nil {
			t.Errorf("%s: FrameLen accepted", name)
		}
	}
	// Dimension mismatch against a committed block.
	blk := buildBlock(t, [][]float64{{1, 2, 3}})
	if _, _, err := DecodeFrame(blk, good); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestFrameByteStable(t *testing.T) {
	// Same block → same bytes, and decode → re-encode is identity.
	blk := buildBlock(t, [][]float64{{1, 2}, {3, 4}})
	a := AppendFrame(nil, 5, blk)
	b := AppendFrame(nil, 5, blk)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding not deterministic")
	}
	dst := NewBlock(0, 0)
	if _, _, err := DecodeFrame(dst, a); err != nil {
		t.Fatal(err)
	}
	if c := AppendFrame(nil, 5, dst); !bytes.Equal(a, c) {
		t.Fatal("decode → encode not byte-identical")
	}
}

func TestBlockClear(t *testing.T) {
	blk := buildBlock(t, [][]float64{{1, 2}})
	blk.Clear()
	if blk.Len() != 0 || blk.Dim() != 0 {
		t.Fatalf("after Clear: %d×%d", blk.Len(), blk.Dim())
	}
	blk.AppendRow([]float64{1, 2, 3}) // new dimension adopted
	if blk.Dim() != 3 {
		t.Fatalf("dim after re-adoption = %d", blk.Dim())
	}
}

// FuzzDecodeFrame feeds arbitrary bytes: must never panic, and every
// accepted frame must re-encode to exactly the consumed bytes.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 3, &Block{dim: 2, coords: []float64{1, 2, 3, 4}}))
	f.Add([]byte{FrameVersion, 0, 0, 0})
	f.Add([]byte{FrameVersion, 1, 0xff, 0xff, 0x03, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk := NewBlock(0, 0)
		part, rest, err := DecodeFrame(blk, data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		re := AppendFrame(nil, part, blk)
		if blk.Len() > 0 && !bytes.Equal(re, consumed) {
			// NaN payloads re-encode bit-identically since we move raw
			// uint64 bits, so any mismatch is a real framing bug.
			t.Fatalf("re-encode mismatch: %x vs %x", re, consumed)
		}
	})
}
