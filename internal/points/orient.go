package points

import "fmt"

// Orient converts a raw dataset to the library's minimization convention:
// for every dimension where higherBetter[j] is true, values are flipped as
// (max_j − v), so 0 becomes the best observed value; lower-is-better
// columns pass through. It returns a new set; the input is untouched.
//
// This is the generic version of what package qws does with its published
// attribute ranges — use it when loading arbitrary QoS data where some
// columns are benefit metrics (throughput, availability) and some are cost
// metrics (latency, price).
func Orient(s Set, higherBetter []bool) (Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(higherBetter) != s.Dim() {
		return nil, fmt.Errorf("points: %d orientation flags for %d dimensions", len(higherBetter), s.Dim())
	}
	_, max := s.Bounds()
	out := make(Set, len(s))
	for i, p := range s {
		q := make(Point, len(p))
		for j, v := range p {
			if higherBetter[j] {
				q[j] = max[j] - v
			} else {
				q[j] = v
			}
		}
		out[i] = q
	}
	return out, nil
}

// Normalize rescales every dimension to [0, 1] by its observed min/max
// (constant dimensions map to 0). Dominance relations are preserved —
// normalization is strictly monotone per dimension — so the skyline of the
// normalized set corresponds 1:1 to the original's. Useful before
// distance-based post-processing (representative selection) when
// attributes have wildly different units.
func Normalize(s Set) (Set, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	min, max := s.Bounds()
	out := make(Set, len(s))
	for i, p := range s {
		q := make(Point, len(p))
		for j, v := range p {
			span := max[j] - min[j]
			if span > 0 {
				q[j] = (v - min[j]) / span
			}
		}
		out[i] = q
	}
	return out, nil
}
