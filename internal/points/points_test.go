package points

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDominatesBasic(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want bool
	}{
		{"strictly better all dims", Point{1, 1}, Point{2, 2}, true},
		{"equal one dim better other", Point{1, 1}, Point{1, 2}, true},
		{"equal points", Point{1, 2}, Point{1, 2}, false},
		{"worse one dim", Point{1, 3}, Point{2, 2}, false},
		{"reverse", Point{2, 2}, Point{1, 1}, false},
		{"mismatched dims", Point{1}, Point{1, 2}, false},
		{"empty", Point{}, Point{}, false},
		{"single dim better", Point{1}, Point{2}, true},
		{"single dim equal", Point{1}, Point{1}, false},
		{"negative coords", Point{-3, -3}, Point{-1, -1}, true},
		{"high dim dominate", Point{1, 1, 1, 1, 1}, Point{1, 1, 1, 1, 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dominates(tt.p, tt.q); got != tt.want {
				t.Errorf("Dominates(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDominatesOrEqual(t *testing.T) {
	if !DominatesOrEqual(Point{1, 2}, Point{1, 2}) {
		t.Error("point should weakly dominate itself")
	}
	if !DominatesOrEqual(Point{1, 1}, Point{1, 2}) {
		t.Error("weakly better point should weakly dominate")
	}
	if DominatesOrEqual(Point{1, 3}, Point{1, 2}) {
		t.Error("worse point must not weakly dominate")
	}
	if DominatesOrEqual(Point{1}, Point{1, 2}) {
		t.Error("mismatched dims must not weakly dominate")
	}
}

func TestIncomparable(t *testing.T) {
	if !Incomparable(Point{1, 3}, Point{3, 1}) {
		t.Error("crossing points should be incomparable")
	}
	if Incomparable(Point{1, 1}, Point{2, 2}) {
		t.Error("dominated pair is comparable")
	}
	if Incomparable(Point{1, 1}, Point{1, 1}) {
		t.Error("equal points are not incomparable by definition")
	}
}

// Property: dominance is irreflexive and asymmetric.
func TestDominanceAsymmetryProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		p, q := Point(a[:]), Point(b[:])
		if Dominates(p, p) {
			return false
		}
		if Dominates(p, q) && Dominates(q, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: dominance is transitive.
func TestDominanceTransitivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5000; trial++ {
		d := 1 + rng.Intn(5)
		a, b, c := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		// Force some dominance chains to exist: make b >= a, c >= b.
		for i := range b {
			b[i] = a[i] + rng.Float64()
			c[i] = b[i] + rng.Float64()
		}
		if Dominates(a, b) && Dominates(b, c) && !Dominates(a, c) {
			t.Fatalf("transitivity violated: a=%v b=%v c=%v", a, b, c)
		}
	}
}

func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64() * 10
	}
	return p
}

func TestMinMaxWith(t *testing.T) {
	p := Point{1, 5}
	p.MinWith(Point{3, 2})
	if !p.Equal(Point{1, 2}) {
		t.Errorf("MinWith = %v, want (1, 2)", p)
	}
	p = Point{1, 5}
	p.MaxWith(Point{3, 2})
	if !p.Equal(Point{3, 5}) {
		t.Errorf("MaxWith = %v, want (3, 5)", p)
	}
}

func TestNormAndSum(t *testing.T) {
	p := Point{3, 4}
	if got := p.Norm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := p.Sum(); got != 7 {
		t.Errorf("Sum = %g, want 7", got)
	}
	if got := (Point{}).Norm(); got != 0 {
		t.Errorf("empty Norm = %g, want 0", got)
	}
}

func TestValidate(t *testing.T) {
	if err := (Point{1, 2}).Validate(); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := (Point{}).Validate(); err == nil {
		t.Error("empty point accepted")
	}
	if err := (Point{math.NaN()}).Validate(); err == nil {
		t.Error("NaN accepted")
	}
	if err := (Point{math.Inf(1)}).Validate(); err == nil {
		t.Error("+Inf accepted")
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{{1, 2}, {3, 4}}).Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set accepted")
	}
	if err := (Set{{1, 2}, {3}}).Validate(); err == nil {
		t.Error("ragged set accepted")
	}
	if err := (Set{{1, 2}, {math.NaN(), 1}}).Validate(); err == nil {
		t.Error("NaN set accepted")
	}
}

func TestBounds(t *testing.T) {
	s := Set{{1, 8}, {4, 2}, {3, 3}}
	min, max := s.Bounds()
	if !min.Equal(Point{1, 2}) || !max.Equal(Point{4, 8}) {
		t.Errorf("Bounds = %v, %v", min, max)
	}
	// Bounds must not alias the input.
	min[0] = -99
	if s[0][0] == -99 {
		t.Error("Bounds aliases input point")
	}
}

func TestBoundsPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bounds on empty set did not panic")
		}
	}()
	(Set{}).Bounds()
}

func TestProject(t *testing.T) {
	s := Set{{1, 2, 3}, {4, 5, 6}}
	got := s.Project(2)
	if got.Dim() != 2 || !got[1].Equal(Point{4, 5}) {
		t.Errorf("Project = %v", got)
	}
	// Projection must not alias.
	got[0][0] = -1
	if s[0][0] == -1 {
		t.Error("Project aliases input")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := Set{{1, 2}}
	c := s.Clone()
	c[0][0] = 42
	if s[0][0] == 42 {
		t.Error("Clone aliases input")
	}
}

func TestKeyAndDedup(t *testing.T) {
	a, b := Point{1.5, 2.25}, Point{1.5, 2.25}
	if Key(a) != Key(b) {
		t.Error("equal points have different keys")
	}
	if Key(Point{1, 2}) == Key(Point{2, 1}) {
		t.Error("distinct points share a key")
	}
	s := Set{{1, 2}, {1, 2}, {3, 4}, {1, 2}}
	d := s.Dedup()
	if len(d) != 2 || !d[0].Equal(Point{1, 2}) || !d[1].Equal(Point{3, 4}) {
		t.Errorf("Dedup = %v", d)
	}
}

func TestKeyDistinguishesNegativeZero(t *testing.T) {
	// -0.0 and +0.0 compare equal with ==; Equal treats them equal, so Key
	// must too for Dedup to match Contains semantics. Document the actual
	// behaviour: FormatFloat 'b' distinguishes them, so normalize here if
	// this ever matters. For now assert Contains/Dedup consistency on
	// regular values.
	s := Set{{0}, {0}}
	if len(s.Dedup()) != 1 {
		t.Error("zeros not deduplicated")
	}
}

func TestContains(t *testing.T) {
	s := Set{{1, 2}, {3, 4}}
	if !s.Contains(Point{3, 4}) {
		t.Error("Contains missed member")
	}
	if s.Contains(Point{3, 5}) {
		t.Error("Contains false positive")
	}
}

func TestString(t *testing.T) {
	got := Point{1, 2.5}.String()
	if got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := Set{{1.5, 2}, {3, 4.25}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, []string{"rt", "cost"}); err != nil {
		t.Fatal(err)
	}
	got, header, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "rt" {
		t.Errorf("header = %v", header)
	}
	if len(got) != 2 || !got[0].Equal(s[0]) || !got[1].Equal(s[1]) {
		t.Errorf("round trip = %v, want %v", got, s)
	}
}

func TestCSVNoHeader(t *testing.T) {
	in := "1,2\n3,4\n"
	got, header, err := ReadCSV(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if header != nil {
		t.Errorf("header = %v, want nil", header)
	}
	if len(got) != 2 || !got[1].Equal(Point{3, 4}) {
		t.Errorf("got %v", got)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, _, err := ReadCSV(strings.NewReader("1,x\n"), false); err == nil {
		t.Error("non-numeric CSV accepted")
	}
	if err := WriteCSV(&bytes.Buffer{}, Set{{1, 2}}, []string{"only-one"}); err == nil {
		t.Error("mismatched header accepted")
	}
}

func TestCSVEmptyInput(t *testing.T) {
	got, _, err := ReadCSV(strings.NewReader(""), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v from empty input", got)
	}
}
