package points

import (
	"math"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the point decoder: it must never
// panic, and any successful decode must re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Point{1, 2, 3}))
	f.Add(Encode(Point{}))
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		back := Encode(p)
		if len(back) != len(data) {
			t.Fatalf("re-encode length %d, original %d", len(back), len(data))
		}
		for i := range back {
			if back[i] != data[i] {
				// NaN payloads survive bit-exactly through Float64bits,
				// so any mismatch is a real bug.
				t.Fatalf("re-encode differs at byte %d", i)
			}
		}
	})
}

// FuzzDecodeSet does the same for set framing.
func FuzzDecodeSet(f *testing.F) {
	f.Add(EncodeSet(Set{{1, 2}, {3}}))
	f.Add(EncodeSet(nil))
	f.Add([]byte{0xff})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSet(data)
		if err != nil {
			return
		}
		back := EncodeSet(s)
		if len(back) != len(data) {
			t.Fatalf("re-encode length %d, original %d", len(back), len(data))
		}
	})
}

// FuzzDominates checks the dominance axioms on arbitrary coordinates.
func FuzzDominates(f *testing.F) {
	f.Add(1.0, 2.0, 2.0, 1.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(math.Inf(1), 1.0, 1.0, math.Inf(-1))

	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		p, q := Point{a, b}, Point{c, d}
		if Dominates(p, p) {
			t.Fatal("reflexive dominance")
		}
		if Dominates(p, q) && Dominates(q, p) {
			t.Fatal("symmetric dominance")
		}
		if Dominates(p, q) && !DominatesOrEqual(p, q) {
			t.Fatal("strict without weak dominance")
		}
	})
}
