package points

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func randomBlock(rng *rand.Rand, n, d int, correlated bool) *Block {
	blk := NewBlock(d, n)
	row := make([]float64, d)
	base := make([]float64, d)
	for j := range base {
		base[j] = rng.Float64()
	}
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			if correlated {
				row[j] = base[j] + rng.NormFloat64()*1e-3
			} else {
				row[j] = rng.Float64()
			}
		}
		blk.AppendRow(row)
	}
	return blk
}

func blocksEqual(a, b *Block) bool {
	if a.Len() != b.Len() || a.Dim() != b.Dim() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			// Bit-level equality: NaN payloads must survive the codec.
			if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
				return false
			}
		}
	}
	return true
}

func TestFrameV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, tc := range []struct {
		name       string
		n, d       int
		correlated bool
	}{
		{"single", 1, 3, false},
		{"small", 7, 2, false},
		{"correlated", 200, 6, true},
		{"uniform", 150, 4, false},
		{"wide", 40, 12, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			blk := randomBlock(rng, tc.n, tc.d, tc.correlated)
			enc := AppendFrameCodec(nil, 5, blk, FrameV2)
			if enc[0] != FrameVersion2 {
				t.Fatalf("version byte = %d, want %d", enc[0], FrameVersion2)
			}
			if l, err := FrameLen(enc); err != nil || l != len(enc) {
				t.Fatalf("FrameLen = %d, %v; want %d", l, err, len(enc))
			}
			if p, c, err := FrameCount(enc); err != nil || p != 5 || c != tc.n {
				t.Fatalf("FrameCount = %d, %d, %v; want 5, %d", p, c, err, tc.n)
			}
			got := NewBlock(0, 0)
			part, rest, err := DecodeFrame(got, enc)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if part != 5 || len(rest) != 0 {
				t.Fatalf("part=%d rest=%d", part, len(rest))
			}
			if !blocksEqual(blk, got) {
				t.Fatalf("round-trip mismatch at n=%d d=%d", tc.n, tc.d)
			}
		})
	}
}

func TestFrameV2SpecialValues(t *testing.T) {
	blk := NewBlock(3, 0)
	rows := [][]float64{
		{0, math.Copysign(0, -1), 1},
		{math.Inf(1), math.Inf(-1), math.NaN()},
		{math.Float64frombits(0x7ff8000000000001), math.MaxFloat64, math.SmallestNonzeroFloat64},
		{1, 1, 1},
		{1, 1, 1},
	}
	for _, r := range rows {
		blk.AppendRow(r)
	}
	enc := AppendFrameCodec(nil, 0, blk, FrameV2)
	got := NewBlock(3, 0)
	if _, _, err := DecodeFrame(got, enc); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !blocksEqual(blk, got) {
		t.Fatal("special values did not survive the v2 codec bit-exactly")
	}
}

func TestFrameV2MixedStream(t *testing.T) {
	// v1 and v2 frames interleaved in one stream must decode in order
	// through the same DecodeFrame loop.
	rng := rand.New(rand.NewSource(7))
	a := randomBlock(rng, 20, 4, true)
	b := randomBlock(rng, 30, 4, false)
	c := randomBlock(rng, 10, 4, true)
	var stream []byte
	stream = AppendFrameCodec(stream, 1, a, FrameV1)
	stream = AppendFrameCodec(stream, 2, b, FrameV2)
	stream = AppendFrame(stream, 3, NewBlock(0, 0)) // v1 empty frame
	stream = AppendFrameCodec(stream, 4, c, FrameAuto)

	want := []*Block{a, b, NewBlock(0, 0), c}
	wantPart := []int{1, 2, 3, 4}
	rest := stream
	for i := range want {
		got := NewBlock(0, 0)
		part, r, err := DecodeFrame(got, rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if part != wantPart[i] {
			t.Fatalf("frame %d: partition %d, want %d", i, part, wantPart[i])
		}
		if want[i].Len() > 0 && !blocksEqual(want[i], got) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
		rest = r
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestFrameAutoPicksSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Correlated columns compress: auto must emit v2 and beat v1.
	corr := randomBlock(rng, 500, 6, true)
	enc := AppendFrameCodec(nil, 0, corr, FrameAuto)
	v1 := AppendFrame(nil, 0, corr)
	if enc[0] != FrameVersion2 {
		t.Fatalf("auto picked v%d on correlated input", enc[0])
	}
	if len(enc) >= len(v1) {
		t.Fatalf("auto v2 %dB not smaller than v1 %dB", len(enc), len(v1))
	}

	// Adversarial input: every IEEE bit random, v2 would expand — auto
	// must fall back to the raw v1 encoding.
	adv := NewBlock(2, 0)
	row := make([]float64, 2)
	for i := 0; i < 100; i++ {
		row[0] = math.Float64frombits(rng.Uint64())
		row[1] = math.Float64frombits(rng.Uint64())
		adv.AppendRow(row)
	}
	enc = AppendFrameCodec(nil, 0, adv, FrameAuto)
	if enc[0] != FrameVersion {
		t.Fatalf("auto picked v%d on incompressible input", enc[0])
	}
	if !bytes.Equal(enc, AppendFrame(nil, 0, adv)) {
		t.Fatal("auto fallback is not the byte-exact v1 encoding")
	}
}

func TestFrameV2CorruptionRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blk := randomBlock(rng, 50, 4, true)
	enc := AppendFrameCodec(nil, 9, blk, FrameV2)

	// Flip every payload byte in turn: the CRC must catch each one.
	hdr := len(enc) - payloadLen(t, enc)
	for i := hdr; i < len(enc); i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, _, err := DecodeFrame(NewBlock(0, 0), bad); err == nil {
			t.Fatalf("corrupted payload byte %d decoded silently", i)
		}
	}
	// Truncations anywhere must error, never panic or short-read.
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeFrame(NewBlock(0, 0), enc[:i]); err == nil {
			t.Fatalf("truncation at %d decoded silently", i)
		}
	}
}

func payloadLen(t *testing.T, enc []byte) int {
	t.Helper()
	_, _, _, packed, _, err := frameHeaderV2(enc)
	if err != nil {
		t.Fatalf("frameHeaderV2: %v", err)
	}
	return packed
}

func TestFrameV2DimMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blk := randomBlock(rng, 5, 3, false)
	enc := AppendFrameCodec(nil, 0, blk, FrameV2)
	into := NewBlock(4, 0)
	if _, _, err := DecodeFrame(into, enc); err == nil {
		t.Fatal("3-dim v2 frame decoded into 4-dim block")
	}
	if into.Len() != 0 {
		t.Fatal("failed decode left rows behind")
	}
}

func FuzzDecodeFrameV2(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	f.Add(AppendFrameCodec(nil, 3, randomBlock(rng, 12, 4, true), FrameV2))
	f.Add(AppendFrameCodec(nil, 0, randomBlock(rng, 1, 1, false), FrameV2))
	f.Add(AppendFrame(nil, 2, randomBlock(rng, 8, 3, false)))
	f.Add([]byte{FrameVersion2})
	f.Fuzz(func(t *testing.T, data []byte) {
		blk := NewBlock(0, 0)
		part, rest, err := DecodeFrame(blk, data)
		if err != nil {
			return
		}
		if part < 0 {
			t.Fatalf("negative partition %d", part)
		}
		if len(rest) > len(data) {
			t.Fatal("rest longer than input")
		}
		// Whatever decoded must re-encode and decode to the same rows
		// under both codecs.
		if blk.Len() == 0 {
			return
		}
		for _, codec := range []FrameCodec{FrameV1, FrameV2, FrameAuto} {
			enc := AppendFrameCodec(nil, part, blk, codec)
			back := NewBlock(0, 0)
			p2, r2, err := DecodeFrame(back, enc)
			if err != nil {
				t.Fatalf("re-encode %v failed: %v", codec, err)
			}
			if p2 != part || len(r2) != 0 || !blocksEqual(blk, back) {
				t.Fatalf("re-encode %v round-trip mismatch", codec)
			}
		}
	})
}
