package driver

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/points"
)

// ComputeSkyband runs the MapReduce k-skyband — the QoS-tolerant
// generalization of the skyline (points dominated by fewer than k others)
// that the paper's conclusion suggests as an extension. The two-job
// structure mirrors Algorithm 1:
//
//	Job 1: map points to partitions; reduce keeps each partition's local
//	       k-skyband (sound: a point with ≥ k dominators in its own
//	       partition has ≥ k dominators globally).
//
//	Job 2: count, for every surviving candidate, its dominators among all
//	       survivors and keep those with < k.
//
// Correctness of counting only among survivors: all dominators of a
// candidate p that were dropped in Job 1 had ≥ k dominators of their own,
// and by transitivity those dominate p too; in any finite dominance order
// with ≥ k elements above p, at least k of them have < k dominators
// themselves (the first k of any linear extension), so they survive Job 1
// and p's survivor-count reaches k whenever its global count does.
func ComputeSkyband(ctx context.Context, data points.Set, k int, opts Options) (points.Set, *Stats, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("driver: skyband k = %d, need >= 1", k)
	}
	if err := data.Validate(); err != nil {
		return nil, nil, fmt.Errorf("driver: %w", err)
	}
	opts = opts.withDefaults()
	part, err := partition.New(opts.Scheme, data, opts.Partitions)
	if err != nil {
		return nil, nil, err
	}
	stats := &Stats{
		Scheme:        opts.Scheme,
		Partitions:    part.Partitions(),
		LocalSkylines: make(map[int]points.Set),
	}

	// ---- Job 1: local k-skybands --------------------------------------
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		p, err := points.Decode(rec)
		if err != nil {
			return err
		}
		id, err := part.Assign(p)
		if err != nil {
			return err
		}
		emit(strconv.Itoa(id), rec)
		return nil
	})
	localBand := mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		set := make(points.Set, 0, len(values))
		for _, v := range values {
			p, err := points.Decode(v)
			if err != nil {
				return err
			}
			set = append(set, p)
		}
		band, err := kSkyband(set, k)
		if err != nil {
			return err
		}
		for _, p := range band {
			emit(key, points.Encode(p))
		}
		return nil
	})
	cfg1 := mapreduce.Config{
		Name:     fmt.Sprintf("%s-skyband%d-partitioning", opts.Scheme, k),
		Workers:  opts.Workers,
		Reducers: opts.Workers,
		SpillDir: opts.SpillDir,
		Trace:    traceSink(ctx),
	}
	// No combiner here: the local k-skyband must see the whole partition
	// at once (a per-map-task band could keep too few dominator
	// witnesses, which is still sound, but running the band twice at
	// different granularities buys little; keep the reducer-only shape).
	res1, err := mapreduce.Run(ctx, cfg1, input, mapper, localBand)
	if err != nil {
		return nil, nil, err
	}
	for _, pair := range res1.Pairs {
		id, err := strconv.Atoi(pair.Key)
		if err != nil || id < 0 || id >= part.Partitions() {
			return nil, nil, fmt.Errorf("driver: bad partition key %q", pair.Key)
		}
		p, err := points.Decode(pair.Value)
		if err != nil {
			return nil, nil, err
		}
		stats.LocalSkylines[id] = append(stats.LocalSkylines[id], p)
	}

	// ---- Job 2: global dominator counting ------------------------------
	// Candidates are few (local bands); broadcast-join them: every map
	// task emits each candidate under one key, the reducer counts
	// dominators within the union. For simplicity and determinism the
	// counting happens in one reducer over the full candidate set.
	mergeInput := make([][]byte, len(res1.Pairs))
	for i, pair := range res1.Pairs {
		mergeInput[i] = pair.Value
	}
	identity := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		emit("band", rec)
		return nil
	})
	countReducer := mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		set := make(points.Set, 0, len(values))
		for _, v := range values {
			p, err := points.Decode(v)
			if err != nil {
				return err
			}
			set = append(set, p)
		}
		band, err := kSkyband(set, k)
		if err != nil {
			return err
		}
		for _, p := range band {
			emit(key, points.Encode(p))
		}
		return nil
	})
	cfg2 := mapreduce.Config{
		Name:     fmt.Sprintf("%s-skyband%d-merging", opts.Scheme, k),
		Workers:  opts.Workers,
		Reducers: 1,
		SpillDir: opts.SpillDir,
		Trace:    traceSink(ctx),
	}
	res2, err := mapreduce.Run(ctx, cfg2, mergeInput, identity, countReducer)
	if err != nil {
		return nil, nil, err
	}
	out := make(points.Set, 0, len(res2.Pairs))
	for _, pair := range res2.Pairs {
		p, err := points.Decode(pair.Value)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, p)
	}
	stats.PartitionJob = res1.Timing
	stats.MergeJob = res2.Timing
	stats.Timing = res1.Timing
	stats.Timing.Add(res2.Timing)
	stats.Counters = res1.Counters.Snapshot()
	for k2, v := range res2.Counters.Snapshot() {
		stats.Counters[k2] += v
	}
	return out, stats, nil
}

// kSkyband keeps points with fewer than k dominators within set.
func kSkyband(set points.Set, k int) (points.Set, error) {
	out := make(points.Set, 0, len(set))
	for i, p := range set {
		dominators := 0
		for j, q := range set {
			if i == j {
				continue
			}
			if points.DominatesOrEqual(q, p) && !q.Equal(p) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			out = append(out, p)
		}
	}
	return out, nil
}
