package driver

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

func TestSnapshotRoundTrip(t *testing.T) {
	data := uniformSet(81, 600, 3)
	ix, err := BuildIndex(context.Background(), data, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndex(context.Background(), bytes.NewReader(blob), Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(restored.Global(), ix.Global()) {
		t.Error("restored global skyline differs")
	}
	if restored.Size() != ix.Size() {
		t.Errorf("restored size %d, want %d", restored.Size(), ix.Size())
	}
}

func TestSnapshotRestoreSupportsAdds(t *testing.T) {
	data := uniformSet(82, 400, 2)
	ix, err := BuildIndex(context.Background(), data, Options{Scheme: partition.Grid})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ix.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndex(context.Background(), bytes.NewReader(blob), Options{Scheme: partition.Grid})
	if err != nil {
		t.Fatal(err)
	}
	// Adds after restore stay correct versus a batch recompute over the
	// retained working set plus the new points.
	adds := uniformSet(83, 100, 2)
	for _, p := range adds {
		if _, _, err := restored.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	var working points.Set
	working = append(working, data...)
	working = append(working, adds...)
	want := skyline.Naive(working)
	if !sameMultiset(restored.Global(), want) {
		t.Errorf("post-restore adds diverged: %d vs %d points", len(restored.Global()), len(want))
	}
}

func TestSnapshotErrors(t *testing.T) {
	if _, err := LoadIndex(context.Background(), strings.NewReader(""), Options{}); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := LoadIndex(context.Background(), strings.NewReader("not a snapshot at all"), Options{}); err == nil {
		t.Error("garbage snapshot accepted")
	}
	// Valid container, wrong first record.
	var buf bytes.Buffer
	ixData := uniformSet(84, 50, 2)
	ix, err := BuildIndex(context.Background(), ixData, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Corrupt a byte in the middle: the checksummed container must reject.
	corrupted := append([]byte(nil), blob...)
	corrupted[len(corrupted)/2] ^= 0xFF
	if _, err := LoadIndex(context.Background(), bytes.NewReader(corrupted), Options{}); err == nil {
		t.Error("corrupted snapshot accepted")
	}
}
