// Package driver composes the MapReduce engine, the partitioners and the
// sequential skyline kernels into the paper's three algorithms — MR-Dim,
// MR-Grid and MR-Angle (Algorithm 1) — as the two-job pipeline:
//
//	Job 1 (Partitioning Job): map each point to its partition key; a
//	combiner and the reducer run the BNL kernel per partition, producing
//	local skylines.
//
//	Job 2 (Merging Job): map every local skyline point to one shared key;
//	a single reduce merges them with BNL into the global skyline.
//
// The driver also implements MR-Grid's cell-level dominance pruning and
// collects the per-partition local skylines needed by the paper's local
// skyline optimality metric (Eq. 5).
package driver

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// Options configures one MapReduce skyline computation.
type Options struct {
	// Scheme selects the partitioning method (MR-Dim / MR-Grid /
	// MR-Angle / MR-Random).
	Scheme partition.Scheme
	// Nodes is the number of cluster nodes being modelled. Following the
	// paper, the partition count defaults to 2 × Nodes. Defaults to 4.
	Nodes int
	// Partitions overrides the 2×Nodes default when > 0.
	Partitions int
	// Workers is the engine's worker-goroutine count; defaults to Nodes.
	Workers int
	// Kernel is the sequential skyline algorithm used for local and global
	// skylines. Defaults to BNL, the paper's choice.
	Kernel skyline.Algorithm
	// KernelOverride, when non-nil, replaces Kernel with an arbitrary
	// skyline function (e.g. the R-tree BBS from package rtree, which has
	// no Algorithm enum value because it carries index state).
	KernelOverride skyline.Func
	// ClassicKernel forces the classic points.Set kernels instead of the
	// default flat-memory block kernels (contiguous coordinates,
	// dimension-specialized dominance, parallel merge tree). The two paths
	// produce identical skylines; this is the escape hatch for comparison
	// runs and for exotic inputs. Ignored when KernelOverride is set (an
	// override is always classic-path).
	ClassicKernel bool
	// ClassicShuffle forces the classic per-Pair shuffle (string keys, one
	// Pair per point) instead of the default block-framed shuffle, which
	// moves packed point frames between phases. Implied by ClassicKernel
	// or KernelOverride — frames only exist on the flat block path. Both
	// shuffles produce identical skylines; this is the escape hatch
	// mirroring ClassicKernel.
	ClassicShuffle bool
	// PartitionerOverride, when non-nil, replaces the Scheme-fitted
	// partitioner with a pre-built one (experimental partitioners such as
	// the angular+radial hybrid). Scheme is then only a label.
	PartitionerOverride partition.Partitioner
	// DisableCombiner turns off the in-map local-skyline combiner (the
	// paper's "middle process"), shipping raw partition contents to the
	// reducers — the ablation quantifying the paper's §II-B claim.
	DisableCombiner bool
	// DisableGridPruning turns off MR-Grid's dominated-cell pruning.
	DisableGridPruning bool
	// SpillDir, when set, spills intermediate data to sequence files.
	SpillDir string
	// Codec selects the wire codec for the framed shuffle: the zero value
	// keeps raw v1 frames, points.FrameAuto enables the bit-packed v2
	// encoding wherever it is smaller. Ignored on the classic paths.
	Codec points.FrameCodec
	// ReducerBudgetBytes, when > 0, switches the framed reducers to the
	// memory-budgeted streaming fold: frames are folded one at a time into
	// a bounded skyline window that spills and multi-passes when the local
	// skyline outgrows it, so reduce memory stays near the budget instead
	// of scaling with partition size. 0 keeps the assemble-everything
	// reducers.
	ReducerBudgetBytes int64
	// HierarchicalMerge enables the paper's §II iterative extension: the
	// merge proceeds in rounds of MergeFanIn-way partial merges instead of
	// a single global reduce — the Twister-style iterative MapReduce path
	// for registries whose local skylines are too large for one reducer.
	HierarchicalMerge bool
	// MergeFanIn is the per-round fan-in of the hierarchical merge
	// (default 8, minimum 2).
	MergeFanIn int
	// Metrics, when non-nil, receives skyline-level series (per-partition
	// local skyline sizes, pruned-cell counts) and is passed through to
	// both engine jobs for the mr_* bridge. Nil (the default) records
	// nothing.
	Metrics *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 4
	}
	if o.Partitions <= 0 {
		o.Partitions = 2 * o.Nodes // the paper's empirical setting
	}
	if o.Workers <= 0 {
		o.Workers = o.Nodes
	}
	return o
}

// flatPath reports whether the options select the flat block kernels.
func (o Options) flatPath() bool {
	return !o.ClassicKernel && o.KernelOverride == nil
}

// kernelFunc resolves the sequential Set-typed kernel: the override when
// given, otherwise the flat or classic implementation of o.Kernel.
func (o Options) kernelFunc() skyline.Func {
	if o.KernelOverride != nil {
		return o.KernelOverride
	}
	if o.ClassicKernel {
		return skyline.ByAlgorithm(o.Kernel)
	}
	return skyline.ByAlgorithmFlat(o.Kernel)
}

// Stats reports what happened inside one computation.
type Stats struct {
	// Scheme echoes the partitioning method used.
	Scheme partition.Scheme
	// Partitions is the actual partition count after planning.
	Partitions int
	// PartitionCounts is the number of input points per partition.
	PartitionCounts []int
	// PrunedPartitions counts grid cells skipped by dominance pruning.
	PrunedPartitions int
	// LocalSkylines maps partition id → local skyline (Job 1 output).
	LocalSkylines map[int]points.Set
	// PartitionJob and MergeJob are the per-job phase timings; Timing is
	// their sum.
	PartitionJob, MergeJob, Timing mapreduce.Timing
	// Counters merges both jobs' framework counters.
	Counters map[string]int64
	// ReducerPeakBytes is the largest reducer-resident working set any
	// reduce task or merge fold reached (0 when the budgeted streaming
	// path was off).
	ReducerPeakBytes int64
	// MergePasses is the largest BudgetedFold pass count any fold needed
	// (>1 means a skyline overflowed its window and multi-passed).
	MergePasses int
	// MergeRounds counts the rounds of ComputeStream's multi-round merge
	// schedule; MergeRoundBytes[i] is the candidate volume entering round
	// i. Zero/nil when the merge ran as a single job.
	MergeRounds     int
	MergeRoundBytes []int64
}

// LocalSkylineTotal returns the number of points across all local
// skylines — the volume entering the merge job.
func (s *Stats) LocalSkylineTotal() int {
	n := 0
	for _, ls := range s.LocalSkylines {
		n += len(ls)
	}
	return n
}

// Compute runs the selected MapReduce skyline algorithm over data and
// returns the global skyline plus execution statistics. The input set must
// be non-empty, uniform-dimensional and finite.
func Compute(ctx context.Context, data points.Set, opts Options) (points.Set, *Stats, error) {
	if err := data.Validate(); err != nil {
		return nil, nil, fmt.Errorf("driver: %w", err)
	}
	opts = opts.withDefaults()
	ctx, rootSpan := telemetry.StartSpan(ctx, fmt.Sprintf("skyline:%s", opts.Scheme),
		telemetry.A("scheme", fmt.Sprint(opts.Scheme)),
		telemetry.A("points", len(data)))
	defer rootSpan.End()

	part := opts.PartitionerOverride
	if part == nil {
		var err error
		part, err = partition.New(opts.Scheme, data, opts.Partitions)
		if err != nil {
			return nil, nil, err
		}
	}

	stats := &Stats{
		Scheme:        opts.Scheme,
		Partitions:    part.Partitions(),
		LocalSkylines: make(map[int]points.Set),
	}

	// MR-Grid dominance pruning needs cell occupancy, which is known after
	// assignment; we take a pre-pass over the data (the same O(n) assigns
	// the map phase performs) and hand the mapper a pruned-cell mask so
	// dominated cells are dropped at the source, sparing both the local
	// skyline computation and the shuffle — the paper's §III-B gain.
	var pruned []bool
	if pruner, ok := part.(partition.Pruner); ok && !opts.DisableGridPruning {
		counts, err := partition.Histogram(part, data)
		if err != nil {
			return nil, nil, err
		}
		occupied := make([]bool, len(counts))
		for id, c := range counts {
			occupied[id] = c > 0
		}
		pruned = pruner.Prunable(occupied)
		for _, p := range pruned {
			if p {
				stats.PrunedPartitions++
			}
		}
	}

	// Kernel selection: the flat block path is the default; ClassicKernel
	// (or a KernelOverride, which is inherently Set-typed) restores the
	// classic kernels. The dominance-test delta of the whole computation is
	// bridged into the registry on every exit path.
	flat := opts.flatPath()
	kernel := opts.kernelFunc()
	if reg := opts.Metrics; reg != nil {
		domBefore := skyline.DominanceTests()
		defer func() {
			reg.Counter("skyline_dominance_tests_total").Add(skyline.DominanceTests() - domBefore)
		}()
	}

	// Frame shuffle is the default on the flat path: intermediate data
	// moves as packed point frames instead of per-point Pairs.
	// ClassicShuffle restores the Pair path below as the escape hatch.
	if flat && !opts.ClassicShuffle {
		return computeFramed(ctx, data, opts, part, pruned, stats)
	}

	// ---- Job 1: Partitioning Job ------------------------------------
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}

	// Occupancy is counted here in the mapper (atomically — map tasks run
	// concurrently) rather than by a second full Assign pass after the
	// job: the angular transform per point is the pipeline's single
	// largest cost, and the histogram re-ran all of it just for
	// diagnostics.
	occCounts := make([]int64, part.Partitions())
	// The mapper runs once per input point from several goroutines; the
	// pooled scratch removes the per-record Decode allocation (the decoded
	// point lives only for one Assign) and the precomputed key table the
	// per-record strconv.Itoa one.
	keys := make([]string, part.Partitions())
	for id := range keys {
		keys[id] = strconv.Itoa(id)
	}
	scratch := sync.Pool{New: func() any {
		p := make(points.Point, 0, data.Dim())
		return &p
	}}
	mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		buf := scratch.Get().(*points.Point)
		p, err := points.DecodeInto(*buf, rec)
		if err != nil {
			return err
		}
		id, err := part.Assign(p)
		*buf = p[:0]
		scratch.Put(buf)
		if err != nil {
			return err
		}
		atomic.AddInt64(&occCounts[id], 1)
		if pruned != nil && pruned[id] {
			return nil // cell provably dominated: drop at the source
		}
		emit(keys[id], rec)
		return nil
	})
	var flatKernel skyline.BlockFunc
	if flat {
		flatKernel = skyline.BlockByAlgorithm(opts.Kernel)
	}
	localSkyline := skylineReducer(kernel, flatKernel)
	cfg1 := mapreduce.Config{
		Name:     fmt.Sprintf("%s-partitioning", opts.Scheme),
		Workers:  opts.Workers,
		Reducers: opts.Workers,
		SpillDir: opts.SpillDir,
		Metrics:  opts.Metrics,
		Trace:    traceSink(ctx),
	}
	if !opts.DisableCombiner {
		cfg1.Combiner = localSkyline
	}
	res1, err := mapreduce.Run(ctx, cfg1, input, mapper, localSkyline)
	if err != nil {
		return nil, nil, err
	}

	// Collect local skylines and partition occupancy for the stats/metrics.
	for _, pair := range res1.Pairs {
		id, err := strconv.Atoi(pair.Key)
		if err != nil || id < 0 || id >= part.Partitions() {
			return nil, nil, fmt.Errorf("driver: bad partition key %q", pair.Key)
		}
		p, err := points.Decode(pair.Value)
		if err != nil {
			return nil, nil, err
		}
		stats.LocalSkylines[id] = append(stats.LocalSkylines[id], p)
	}
	// Occupancy histogram, accumulated by the mapper during the job.
	counts := make([]int, len(occCounts))
	for id := range occCounts {
		counts[id] = int(atomic.LoadInt64(&occCounts[id]))
	}
	stats.PartitionCounts = counts
	publishPartitionGauges(opts.Metrics, stats)

	// ---- Job 2: Merging Job -----------------------------------------
	if opts.HierarchicalMerge {
		stats.PartitionJob = res1.Timing
		stats.Timing = res1.Timing
		var mergeTiming mapreduce.Timing
		global, err := hierarchicalMerge(ctx, opts, res1.Pairs, localSkyline, &mergeTiming)
		if err != nil {
			return nil, nil, err
		}
		stats.MergeJob = mergeTiming
		stats.Timing.Add(mergeTiming)
		stats.Counters = res1.Counters.Snapshot()
		feedRecorder(ctx, opts, stats, global, nil)
		return global, stats, nil
	}

	mergeInput := make([][]byte, len(res1.Pairs))
	for i, pair := range res1.Pairs {
		mergeInput[i] = pair.Value
	}
	const globalKey = "global"
	identity := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
		emit(globalKey, rec) // paper line 13: output(null, si)
		return nil
	})
	cfg2 := mapreduce.Config{
		Name:     fmt.Sprintf("%s-merging", opts.Scheme),
		Workers:  opts.Workers,
		Reducers: 1, // all local skylines share one key (paper line 12-15)
		SpillDir: opts.SpillDir,
		Metrics:  opts.Metrics,
		Trace:    traceSink(ctx),
	}
	if !opts.DisableCombiner {
		// Pre-merge each map task's share before the single reducer sees
		// it, trimming the serial merge input.
		cfg2.Combiner = localSkyline
	}
	// The single global reduce is the pipeline's serial bottleneck; on the
	// flat path it runs the parallel merge tree (chunked block BNL, then
	// pairwise cross-filter merges across goroutines) instead of one
	// sequential BNL over the whole candidate union.
	mergeReduce := localSkyline
	if flat {
		mergeReduce = mergeTreeReducer(ctx, opts.Workers)
	}
	res2, err := mapreduce.Run(ctx, cfg2, mergeInput, identity, mergeReduce)
	if err != nil {
		return nil, nil, err
	}

	global := make(points.Set, 0, len(res2.Pairs))
	for _, pair := range res2.Pairs {
		p, err := points.Decode(pair.Value)
		if err != nil {
			return nil, nil, err
		}
		global = append(global, p)
	}

	stats.PartitionJob = res1.Timing
	stats.MergeJob = res2.Timing
	stats.Timing = res1.Timing
	stats.Timing.Add(res2.Timing)
	stats.Counters = res1.Counters.Snapshot()
	for k, v := range res2.Counters.Snapshot() {
		stats.Counters[k] += v
	}
	if reg := opts.Metrics; reg != nil {
		reg.Gauge("skyline_global_size").Set(float64(len(global)))
	}
	feedRecorder(ctx, opts, stats, global, nil)
	return global, stats, nil
}

// feedRecorder hands one finished computation's per-partition evidence to
// the context's flight recorder (no-op when recording is off): partition
// occupancy as input load, local skyline sizes, the Eq. (5) survivor
// counts — computed here where local and global skylines are both in
// hand — and, on the framed path, per-partition shuffle bytes. The
// rollups are then bridged into the run's metrics registry.
func feedRecorder(ctx context.Context, opts Options, stats *Stats, global points.Set, shuffle map[int]mapreduce.PartStat) {
	rec := telemetry.RecorderFrom(ctx)
	if rec == nil {
		return
	}
	rec.EnsurePartitions(stats.Partitions)
	for id, n := range stats.PartitionCounts {
		rec.SetPartitionInput(id, int64(n))
	}
	for id, ps := range shuffle {
		rec.AddPartitionShuffle(id, 0, ps.Bytes) // occupancy already carries the records
	}
	for id, ls := range stats.LocalSkylines {
		rec.SetLocalSkyline(id, len(ls))
	}
	for id, hits := range metrics.GlobalSurvivors(stats.LocalSkylines, global) {
		rec.SetGlobalSurvivors(id, hits)
	}
	rec.SetGlobalSkyline(len(global))
	rec.SetReducerPeak(stats.ReducerPeakBytes)
	rec.Publish(opts.Metrics)
}

// skylineReducer builds the local-skyline reducer shared by both jobs and
// the hierarchical merge rounds: decode the group's points, run the
// kernel, emit survivors under the same key. With a flat kernel the
// values decode straight into one contiguous block — no per-point
// allocation — and the block kernel's survivors are re-encoded from rows.
func skylineReducer(classic skyline.Func, flat skyline.BlockFunc) mapreduce.Reducer {
	if flat != nil {
		return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
			blk := points.NewBlock(0, len(values))
			for _, v := range values {
				if err := points.AppendDecode(blk, v); err != nil {
					return err
				}
			}
			sky := flat(blk)
			for i := 0; i < sky.Len(); i++ {
				emit(key, points.Encode(points.Point(sky.Row(i))))
			}
			return nil
		})
	}
	return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		set := make(points.Set, 0, len(values))
		for _, v := range values {
			p, err := points.Decode(v)
			if err != nil {
				return err
			}
			set = append(set, p)
		}
		for _, p := range classic(set) {
			emit(key, points.Encode(p))
		}
		return nil
	})
}

// mergeTreeReducer is the flat path's global reducer: all candidates land
// under one key, get chunk-skylined concurrently and folded by the
// parallel merge tree. ctx carries the run's tracer so each merge level
// records a span.
// traceSink bridges the context's event log (telemetry.WithEventLog)
// into the engine's event stream, so in-process jobs narrate job/phase/
// retry/spill transitions to /debug/events. Nil when no log is bound.
func traceSink(ctx context.Context) mapreduce.EventSink {
	if log := telemetry.EventLogFrom(ctx); log != nil {
		return mapreduce.NewLogSink(log)
	}
	return nil
}

func mergeTreeReducer(ctx context.Context, workers int) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		blk := points.NewBlock(0, len(values))
		for _, v := range values {
			if err := points.AppendDecode(blk, v); err != nil {
				return err
			}
		}
		sky := skyline.ParallelBlock(ctx, blk, workers)
		for i := 0; i < sky.Len(); i++ {
			emit(key, points.Encode(points.Point(sky.Row(i))))
		}
		return nil
	})
}

// publishPartitionGauges exports the partition-level shape of a run:
// per-partition local skyline sizes and point counts (the paper's load
// balance picture), plus the pruned-cell total for MR-Grid.
func publishPartitionGauges(reg *telemetry.Registry, stats *Stats) {
	if reg == nil {
		return
	}
	for id, ls := range stats.LocalSkylines {
		reg.Gauge("skyline_partition_local_size",
			telemetry.L("partition", strconv.Itoa(id))).Set(float64(len(ls)))
	}
	for id, n := range stats.PartitionCounts {
		reg.Gauge("skyline_partition_points",
			telemetry.L("partition", strconv.Itoa(id))).Set(float64(n))
	}
	reg.Gauge("skyline_pruned_partitions").Set(float64(stats.PrunedPartitions))
}
