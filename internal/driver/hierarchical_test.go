package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/skyline"
)

func TestHierarchicalMergeMatchesFlat(t *testing.T) {
	data := uniformSet(21, 1500, 4)
	want := skyline.Naive(data)
	for _, fanIn := range []int{2, 3, 8} {
		got, stats, err := Compute(context.Background(), data, Options{
			Scheme:            partition.Angular,
			Nodes:             8, // 16 partitions → multiple merge rounds at fanIn 2-3
			HierarchicalMerge: true,
			MergeFanIn:        fanIn,
		})
		if err != nil {
			t.Fatalf("fanIn %d: %v", fanIn, err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("fanIn %d: %d points, oracle %d", fanIn, len(got), len(want))
		}
		if stats.MergeJob.Total <= 0 {
			t.Errorf("fanIn %d: no merge timing recorded", fanIn)
		}
	}
}

func TestHierarchicalMergeAllSchemes(t *testing.T) {
	data := uniformSet(22, 800, 3)
	want := skyline.Naive(data)
	for _, scheme := range allSchemes() {
		got, _, err := Compute(context.Background(), data, Options{
			Scheme:            scheme,
			Nodes:             4,
			HierarchicalMerge: true,
			MergeFanIn:        2,
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("%v: hierarchical merge wrong", scheme)
		}
	}
}

func TestHierarchicalMergeDefaultFanIn(t *testing.T) {
	data := uniformSet(23, 400, 2)
	got, _, err := Compute(context.Background(), data, Options{
		Scheme:            partition.Grid,
		HierarchicalMerge: true, // MergeFanIn unset → default 8
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, skyline.Naive(data)) {
		t.Error("default fan-in merge wrong")
	}
}

func TestHierarchicalMergeSinglePartition(t *testing.T) {
	// Degenerate: one partition → one round, trivially correct.
	data := uniformSet(24, 200, 2)
	got, _, err := Compute(context.Background(), data, Options{
		Scheme:            partition.Random,
		Partitions:        1,
		HierarchicalMerge: true,
		MergeFanIn:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, skyline.Naive(data)) {
		t.Error("single-partition hierarchical merge wrong")
	}
}

func TestSplitGroupRecord(t *testing.T) {
	gid, body, err := splitGroupRecord(joinGroupRecord(42, []byte{0x01, 0x02}))
	if err != nil || gid != 42 || len(body) != 2 || body[0] != 0x01 {
		t.Errorf("round trip: gid=%d body=%v err=%v", gid, body, err)
	}
	if _, _, err := splitGroupRecord([]byte("nonsense")); err == nil {
		t.Error("malformed record accepted")
	}
	if _, _, err := splitGroupRecord([]byte{}); err == nil {
		t.Error("empty record accepted")
	}
	// A body containing ':' must survive (only the first prefix colon
	// separates).
	gid, body, err = splitGroupRecord(joinGroupRecord(7, []byte("a:b")))
	if err != nil || gid != 7 || string(body) != "a:b" {
		t.Errorf("colon body: gid=%d body=%q err=%v", gid, body, err)
	}
}
