package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rtree"
	"repro/internal/skyline"
)

// pointsSet keeps the kernel-override test readable.
type pointsSet = points.Set

// Combination coverage: option interactions that individual tests miss.

func TestPartitionerOverride(t *testing.T) {
	data := uniformSet(101, 1000, 3)
	want := skyline.Naive(data)
	hybrid, err := partition.FitAngularRadial(data, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Compute(context.Background(), data, Options{
		Scheme:              partition.Angular,
		PartitionerOverride: hybrid,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Error("hybrid partitioner changed the skyline")
	}
	if stats.Partitions != hybrid.Partitions() {
		t.Errorf("stats report %d partitions, hybrid has %d", stats.Partitions, hybrid.Partitions())
	}
}

func TestSpillPlusHierarchicalMerge(t *testing.T) {
	data := uniformSet(102, 900, 3)
	want := skyline.Naive(data)
	got, _, err := Compute(context.Background(), data, Options{
		Scheme:            partition.Angular,
		Nodes:             8,
		SpillDir:          t.TempDir(),
		HierarchicalMerge: true,
		MergeFanIn:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Error("spill + hierarchical merge changed the skyline")
	}
}

func TestKernelOverrideBBS(t *testing.T) {
	data := uniformSet(103, 700, 4)
	want := skyline.Naive(data)
	bbsKernel := func(s pointsSet) pointsSet {
		if len(s) == 0 {
			return nil
		}
		tr, err := rtree.New(s, rtree.DefaultFanout)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Skyline(nil)
	}
	got, _, err := Compute(context.Background(), data, Options{
		Scheme:         partition.Grid,
		KernelOverride: bbsKernel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Error("BBS kernel override changed the skyline")
	}
}
