package driver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// Index supports the paper's incremental scenario (§II): when a new
// service is registered, only its partition's local skyline is updated and
// the global skyline is re-merged from local skylines — no full recompute
// over the whole service registry.
//
// An Index is safe for concurrent use.
type Index struct {
	mu     sync.RWMutex
	scheme partition.Scheme
	part   partition.Partitioner
	kernel skyline.Func
	local  map[int]points.Set // partition id → local skyline
	global points.Set
}

// BuildIndex computes an initial index with the given options. The
// partitioner is fitted once on the initial data; later additions outside
// the fitted bounds are clamped into boundary partitions (see package
// partition), which keeps results correct, merely less balanced.
func BuildIndex(ctx context.Context, data points.Set, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	global, stats, err := Compute(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	part, err := partition.New(opts.Scheme, data, opts.Partitions)
	if err != nil {
		return nil, err
	}
	local := make(map[int]points.Set, len(stats.LocalSkylines))
	for id, ls := range stats.LocalSkylines {
		local[id] = ls.Clone()
	}
	return &Index{
		scheme: opts.Scheme,
		part:   part,
		kernel: opts.kernelFunc(),
		local:  local,
		global: global.Clone(),
	}, nil
}

// Global returns the current global skyline (a copy). The read costs no
// dominance work — the global is maintained incrementally on Add — so a
// context query record, when present, is annotated with the cached path.
func (ix *Index) Global() points.Set {
	return ix.GlobalContext(context.Background())
}

// GlobalContext is Global with per-query attribution: a query record in
// ctx (telemetry.WithQueryStats) is annotated with the cached path and
// the result cardinality.
func (ix *Index) GlobalContext(ctx context.Context) points.Set {
	qs := telemetry.QueryStatsFrom(ctx)
	start := time.Now()
	ix.mu.RLock()
	sky := ix.global.Clone()
	ix.mu.RUnlock()
	qs.SetPath("cached")
	qs.AddCost(0, int64(len(sky)), 0)
	qs.AddStage("snapshot", time.Since(start))
	return sky
}

// Explain bypasses the cached global skyline: it re-merges the local
// skylines with the instrumented merge, returning both the skyline and
// the per-partition plan breakdown (candidates, dominance tests,
// survivors, stage timings). A query record in ctx is annotated with the
// merge path and the plan's totals. The result is identical to Global()
// — the pinned equivalence every explained query re-proves.
func (ix *Index) Explain(ctx context.Context) (points.Set, *Explain) {
	qs := telemetry.QueryStatsFrom(ctx)

	start := time.Now()
	ix.mu.RLock()
	// Snapshot the local skylines (slice headers only — the merge reads,
	// never mutates) so the merge runs without holding the index lock.
	local := make(map[int]points.Set, len(ix.local))
	for id, ls := range ix.local {
		local[id] = ls
	}
	scheme := ix.scheme.String()
	ix.mu.RUnlock()
	snapshot := time.Since(start)

	start = time.Now()
	sky, ex := ExplainMerge(scheme, local)
	merge := time.Since(start)

	ex.Stages = []telemetry.StageTiming{
		{Stage: "snapshot", Seconds: snapshot.Seconds()},
		{Stage: "merge", Seconds: merge.Seconds()},
	}
	qs.SetPath("merge")
	qs.AddCost(ex.PartitionsProbed, ex.Candidates, ex.DominanceTests)
	qs.AddStage("snapshot", snapshot)
	qs.AddStage("merge", merge)
	return sky.Clone(), ex
}

// LocalSkyline returns a copy of one partition's local skyline.
func (ix *Index) LocalSkyline(id int) points.Set {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.local[id].Clone()
}

// Add registers a new service point: it is placed into its partition, the
// local skyline of only that partition is updated, and the global skyline
// is re-merged from the (small) union of local skylines. It returns the
// partition the point was assigned to and whether the point survived into
// the new global skyline.
func (ix *Index) Add(p points.Point) (partitionID int, inGlobal bool, err error) {
	return ix.AddContext(context.Background(), p)
}

// AddContext is Add with per-query attribution: a query record in ctx is
// annotated with the candidates scanned (the touched partition's local
// skyline plus the merge union) and the kernel's dominance-test delta.
// The delta is read from the flat kernels' process counter under the
// index's exclusive lock, so it is exact whenever this index is the only
// kernel user in the process (the registry server's situation); classic
// or override kernels do not feed that counter and report 0.
func (ix *Index) AddContext(ctx context.Context, p points.Point) (partitionID int, inGlobal bool, err error) {
	qs := telemetry.QueryStatsFrom(ctx)
	start := time.Now()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, err := ix.part.Assign(p)
	if err != nil {
		return 0, false, fmt.Errorf("driver: incremental add: %w", err)
	}
	testsBefore := skyline.DominanceTests()
	updated := append(ix.local[id].Clone(), p.Clone())
	local := int64(len(updated))
	ix.local[id] = ix.kernel(updated)

	var union points.Set
	for _, ls := range ix.local {
		union = append(union, ls...)
	}
	ix.global = ix.kernel(union)
	qs.SetPath("update")
	qs.AddCost(len(ix.local), local+int64(len(union)), skyline.DominanceTests()-testsBefore)
	qs.AddStage("update", time.Since(start))
	return id, ix.global.Contains(p), nil
}

// Size returns the total number of points retained across local skylines —
// the working-set size of the incremental index.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, ls := range ix.local {
		n += len(ls)
	}
	return n
}

// Partitions returns the index's planned partition count.
func (ix *Index) Partitions() int {
	return ix.part.Partitions()
}
