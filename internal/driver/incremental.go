package driver

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// Index supports the paper's incremental scenario (§II): when a new
// service is registered, only its partition's local skyline is updated and
// the global skyline is folded incrementally — no full recompute over the
// whole service registry.
//
// Concurrency model (the serving core): the entire queryable state lives
// in an immutable epochState behind one atomic pointer. Readers — Global,
// View, Explain, LocalSkyline, Size, Save — do a single atomic load and
// then work on frozen data; they never block, never take a lock, and can
// never observe a half-installed update, because an epoch is built in
// full before the pointer swings. Writers serialize on ix.mu, fold a
// batch of publishes copy-on-write (touched shards and the global are
// replaced, untouched shards are shared with the previous epoch), and
// install exactly one new epoch per batch.
//
// An Index is safe for concurrent use.
type Index struct {
	scheme partition.Scheme
	part   partition.Partitioner
	dim    int

	state atomic.Pointer[epochState]

	// mu is the write domain: it serializes batch folds (and pipeline
	// reconfiguration) but is never taken by readers.
	mu       sync.Mutex
	onCommit func(Commit)
	pipe     atomic.Pointer[pipeline]
}

// epochState is one immutable version of the index. Nothing reachable
// from an installed epochState is ever mutated.
type epochState struct {
	epoch  uint64
	shards []*shard // indexed by partition id
	global points.Set
}

// Commit describes one installed epoch to the onCommit observer.
type Commit struct {
	// Epoch is the just-installed version number.
	Epoch uint64
	// Entered holds the batch points that entered the global skyline —
	// the only publishes that can change any query result, which makes
	// this the exact invalidation signal for result caches (a dominated
	// publish changes nothing a reader can see).
	Entered points.Set
}

// View is a consistent, immutable snapshot of the index at one epoch.
// Everything reachable from a View is frozen: callers may read the
// returned sets freely but must not mutate them. Acquiring a View costs
// one atomic load.
type View struct {
	st *epochState
}

// Epoch returns the snapshot's version number.
func (v View) Epoch() uint64 { return v.st.epoch }

// Global returns the snapshot's global skyline without copying. The set
// is immutable; callers needing to mutate must Clone.
func (v View) Global() points.Set { return v.st.global }

// Local returns one partition's local skyline without copying (nil for
// an unknown or empty partition). Immutable; Clone before mutating.
func (v View) Local(id int) points.Set {
	if id < 0 || id >= len(v.st.shards) {
		return nil
	}
	return v.st.shards[id].local
}

// Partitions returns the number of shard slots in the snapshot.
func (v View) Partitions() int { return len(v.st.shards) }

// Size returns the total points retained across local skylines — the
// working-set size of the incremental index at this epoch.
func (v View) Size() int {
	n := 0
	for _, sh := range v.st.shards {
		n += len(sh.local)
	}
	return n
}

// locals returns the non-empty local skylines as a partition-id map —
// the shape ExplainMerge and the snapshot writer consume.
func (v View) locals() map[int]points.Set {
	out := make(map[int]points.Set, len(v.st.shards))
	for id, sh := range v.st.shards {
		if len(sh.local) > 0 {
			out[id] = sh.local
		}
	}
	return out
}

// BuildIndex computes an initial index with the given options. The
// partitioner is fitted once on the initial data; later additions outside
// the fitted bounds are clamped into boundary partitions (see package
// partition), which keeps results correct, merely less balanced.
func BuildIndex(ctx context.Context, data points.Set, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	global, stats, err := Compute(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	part, err := partition.New(opts.Scheme, data, opts.Partitions)
	if err != nil {
		return nil, err
	}
	local := make(map[int]points.Set, len(stats.LocalSkylines))
	for id, ls := range stats.LocalSkylines {
		local[id] = ls.Clone()
	}
	ix := &Index{
		scheme: opts.Scheme,
		part:   part,
		dim:    data.Dim(),
	}
	ix.install(1, local, global.Clone())
	return ix, nil
}

// install builds and publishes an epochState from a partition-id → local
// skyline map. Used at construction and restore time only; live updates
// go through foldBatch.
func (ix *Index) install(epoch uint64, local map[int]points.Set, global points.Set) {
	n := ix.part.Partitions()
	for id := range local {
		if id >= n {
			n = id + 1
		}
	}
	shards := make([]*shard, n)
	for id := range shards {
		shards[id] = newShard(local[id])
	}
	ix.state.Store(&epochState{epoch: epoch, shards: shards, global: global})
}

// View returns the current epoch snapshot: one atomic load, no locks, no
// copying. This is the high-QPS read path.
func (ix *Index) View() View {
	return View{st: ix.state.Load()}
}

// Epoch returns the current epoch number.
func (ix *Index) Epoch() uint64 { return ix.state.Load().epoch }

// SetOnCommit installs an observer invoked once per installed epoch,
// under the write lock (callbacks arrive in epoch order) and before any
// publish of that batch is acknowledged — so by the time an Add returns,
// the observer has seen its commit. Used by the registry's query cache
// for dominance-aware invalidation. Call before serving traffic.
func (ix *Index) SetOnCommit(fn func(Commit)) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.onCommit = fn
}

// Global returns the current global skyline (a copy). The read costs no
// dominance work — the global is maintained incrementally on Add — so a
// context query record, when present, is annotated with the cached path.
// Lock-free callers that can honor the no-mutation contract should
// prefer View().Global().
func (ix *Index) Global() points.Set {
	return ix.GlobalContext(context.Background())
}

// GlobalContext is Global with per-query attribution: a query record in
// ctx (telemetry.WithQueryStats) is annotated with the cached path and
// the result cardinality.
func (ix *Index) GlobalContext(ctx context.Context) points.Set {
	qs := telemetry.QueryStatsFrom(ctx)
	start := time.Now()
	sky := ix.state.Load().global.Clone()
	qs.SetPath("cached")
	qs.AddCost(0, int64(len(sky)), 0)
	qs.AddStage("snapshot", time.Since(start))
	return sky
}

// Explain bypasses the maintained global skyline: it re-merges the local
// skylines with the instrumented merge, returning both the skyline and
// the per-partition plan breakdown (candidates, dominance tests,
// survivors, stage timings). A query record in ctx is annotated with the
// merge path and the plan's totals. The result is identical to Global()
// — the pinned equivalence every explained query re-proves. The merge
// runs entirely on an epoch snapshot, so it blocks no publisher.
func (ix *Index) Explain(ctx context.Context) (points.Set, *Explain) {
	qs := telemetry.QueryStatsFrom(ctx)

	start := time.Now()
	v := ix.View()
	local := v.locals()
	snapshot := time.Since(start)

	start = time.Now()
	sky, ex := ExplainMerge(ix.scheme.String(), local)
	merge := time.Since(start)

	ex.Stages = []telemetry.StageTiming{
		{Stage: "snapshot", Seconds: snapshot.Seconds()},
		{Stage: "merge", Seconds: merge.Seconds()},
	}
	qs.SetPath("merge")
	qs.AddCost(ex.PartitionsProbed, ex.Candidates, ex.DominanceTests)
	qs.AddStage("snapshot", snapshot)
	qs.AddStage("merge", merge)
	return sky.Clone(), ex
}

// LocalSkyline returns a copy of one partition's local skyline.
func (ix *Index) LocalSkyline(id int) points.Set {
	return ix.View().Local(id).Clone()
}

// Add registers a new service point: it is placed into its partition, the
// local skyline of only that partition is updated, and the point is
// folded into the global skyline. It returns the partition the point was
// assigned to and whether the point survived into the new global skyline.
// When a pipeline is running (StartPipeline), the point rides a coalesced
// batch and Add returns once that batch's epoch is installed — group
// commit: the acknowledgement still implies visibility.
func (ix *Index) Add(p points.Point) (partitionID int, inGlobal bool, err error) {
	return ix.AddContext(context.Background(), p)
}

// AddContext is Add with per-query attribution: a query record in ctx is
// annotated with the one partition touched, the candidates scanned (the
// shard's local skyline plus — for shard survivors — the global), and
// the exact dominance tests the fold spent on this point.
func (ix *Index) AddContext(ctx context.Context, p points.Point) (partitionID int, inGlobal bool, err error) {
	qs := telemetry.QueryStatsFrom(ctx)
	start := time.Now()
	res := ix.submit(p)
	if res.err != nil {
		return 0, false, res.err
	}
	qs.SetPath("update")
	qs.AddCost(1, res.candidates, res.tests)
	qs.AddStage("update", time.Since(start))
	return res.partition, res.inGlobal, nil
}

// submit routes one point to the batching pipeline when running, else
// folds it synchronously as a batch of one.
func (ix *Index) submit(p points.Point) addResult {
	if pipe := ix.pipe.Load(); pipe != nil {
		if res, ok := pipe.submit(p); ok {
			return res
		}
		// Pipeline closed while we held the point: fall through to the
		// synchronous path so late publishes are never lost.
	}
	pd := &pending{p: p, done: make(chan addResult, 1)}
	ix.foldBatch([]*pending{pd})
	return <-pd.done
}

// pending is one queued publish: the point plus the channel its result
// is delivered on after the batch's epoch commits.
type pending struct {
	p    points.Point
	done chan addResult
}

type addResult struct {
	partition  int
	inGlobal   bool
	err        error
	tests      int64
	candidates int64
}

// foldBatch is the single write path: it folds a batch of publishes into
// the current epoch copy-on-write and installs exactly one new epoch.
// Each point updates only its own shard (batch-local follow-ups to an
// already-touched shard scan the working set linearly; the shard's
// R-tree, when present, prunes the first touch) and then folds into the
// global skyline with a one-pass incremental update — checking the old
// global suffices, because any dominator of p outside it would itself be
// dominated by a global member. Results are delivered after the epoch is
// installed and the commit observer has run, so an acknowledged publish
// is visible to every subsequent View and its cache entries are already
// invalidated.
func (ix *Index) foldBatch(batch []*pending) {
	results := make([]addResult, len(batch))

	ix.mu.Lock()
	cur := ix.state.Load()
	shards := cur.shards
	global := cur.global
	working := make(map[int]points.Set) // shard id → batch-local skyline
	var entered points.Set

	for i, pd := range batch {
		id, err := ix.part.Assign(pd.p)
		if err != nil {
			results[i] = addResult{err: fmt.Errorf("driver: incremental add: %w", err)}
			continue
		}
		if id >= len(shards) {
			grown := make([]*shard, id+1)
			copy(grown, shards)
			for j := len(shards); j <= id; j++ {
				grown[j] = newShard(nil)
			}
			shards = grown
		}
		p := pd.p.Clone()
		var newLocal points.Set
		var ok bool
		var tests int64
		var candidates int64
		if wl, touched := working[id]; touched {
			tmp := shard{local: wl}
			candidates = int64(len(wl))
			newLocal, ok, tests = tmp.addLinear(p)
		} else {
			candidates = int64(len(shards[id].local))
			newLocal, ok, tests = shards[id].add(p)
		}
		res := addResult{partition: id, tests: tests, candidates: candidates}
		if ok {
			working[id] = newLocal
			g2, in, gtests := globalAdd(global, p)
			res.tests += gtests
			res.candidates += int64(len(global))
			global = g2
			res.inGlobal = in
			if in {
				entered = append(entered, p)
			}
		}
		results[i] = res
	}

	if len(working) > 0 || len(shards) != len(cur.shards) {
		if len(shards) == len(cur.shards) {
			grown := make([]*shard, len(shards))
			copy(grown, shards)
			shards = grown
		}
		for id, wl := range working {
			shards[id] = newShard(wl)
		}
	}
	next := &epochState{epoch: cur.epoch + 1, shards: shards, global: global}
	ix.state.Store(next)
	if ix.onCommit != nil {
		ix.onCommit(Commit{Epoch: next.epoch, Entered: entered})
	}
	ix.mu.Unlock()

	for i, pd := range batch {
		pd.done <- results[i]
	}
}

// Size returns the total number of points retained across local skylines —
// the working-set size of the incremental index.
func (ix *Index) Size() int {
	return ix.View().Size()
}

// Partitions returns the index's planned partition count.
func (ix *Index) Partitions() int {
	return ix.part.Partitions()
}

// Dim returns the index's attribute dimensionality.
func (ix *Index) Dim() int { return ix.dim }
