package driver

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

// Index supports the paper's incremental scenario (§II): when a new
// service is registered, only its partition's local skyline is updated and
// the global skyline is re-merged from local skylines — no full recompute
// over the whole service registry.
//
// An Index is safe for concurrent use.
type Index struct {
	mu     sync.RWMutex
	part   partition.Partitioner
	kernel skyline.Func
	local  map[int]points.Set // partition id → local skyline
	global points.Set
}

// BuildIndex computes an initial index with the given options. The
// partitioner is fitted once on the initial data; later additions outside
// the fitted bounds are clamped into boundary partitions (see package
// partition), which keeps results correct, merely less balanced.
func BuildIndex(ctx context.Context, data points.Set, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	global, stats, err := Compute(ctx, data, opts)
	if err != nil {
		return nil, err
	}
	part, err := partition.New(opts.Scheme, data, opts.Partitions)
	if err != nil {
		return nil, err
	}
	local := make(map[int]points.Set, len(stats.LocalSkylines))
	for id, ls := range stats.LocalSkylines {
		local[id] = ls.Clone()
	}
	return &Index{
		part:   part,
		kernel: opts.kernelFunc(),
		local:  local,
		global: global.Clone(),
	}, nil
}

// Global returns the current global skyline (a copy).
func (ix *Index) Global() points.Set {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.global.Clone()
}

// LocalSkyline returns a copy of one partition's local skyline.
func (ix *Index) LocalSkyline(id int) points.Set {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.local[id].Clone()
}

// Add registers a new service point: it is placed into its partition, the
// local skyline of only that partition is updated, and the global skyline
// is re-merged from the (small) union of local skylines. It returns the
// partition the point was assigned to and whether the point survived into
// the new global skyline.
func (ix *Index) Add(p points.Point) (partitionID int, inGlobal bool, err error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	id, err := ix.part.Assign(p)
	if err != nil {
		return 0, false, fmt.Errorf("driver: incremental add: %w", err)
	}
	updated := append(ix.local[id].Clone(), p.Clone())
	ix.local[id] = ix.kernel(updated)

	var union points.Set
	for _, ls := range ix.local {
		union = append(union, ls...)
	}
	ix.global = ix.kernel(union)
	return id, ix.global.Contains(p), nil
}

// Size returns the total number of points retained across local skylines —
// the working-set size of the incremental index.
func (ix *Index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := 0
	for _, ls := range ix.local {
		n += len(ls)
	}
	return n
}
