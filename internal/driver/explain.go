package driver

import (
	"sort"

	"repro/internal/points"
	"repro/internal/telemetry"
)

// EXPLAIN is the read path's answer to "why was this query slow": instead
// of serving the cached global skyline, the query re-merges the local
// skylines with an instrumented BNL that attributes every dominance test
// to the partition whose candidate incurred it — the per-partition cost
// breakdown Ciaccia & Martinenghi's read-path analysis reads off-line,
// produced live per query. Totals are exact: the sum over partitions
// equals the merge's whole dominance-test count, so the plan reconciles
// against the global counters.

// PartitionExplain is one partition's share of an explained query.
type PartitionExplain struct {
	Partition int `json:"partition"`
	// Candidates is the partition's local skyline size — the rows it
	// contributed to the merge.
	Candidates int `json:"candidates"`
	// DominanceTests counts tests incurred while scanning this
	// partition's candidates against the merge window.
	DominanceTests int64 `json:"dominance_tests"`
	// Survivors counts this partition's candidates that made the global
	// skyline — the numerator of the paper's Eq. (5) ratio, per query.
	Survivors int `json:"survivors"`
}

// Explain is the plan breakdown of one explained skyline query.
type Explain struct {
	// Scheme names the partitioning scheme the index was built with.
	Scheme string `json:"scheme"`
	// PartitionsProbed is the number of partitions visited (all of them —
	// an explained query bypasses the cache).
	PartitionsProbed int `json:"partitions_probed"`
	// Candidates is the total candidate rows entering the merge.
	Candidates int64 `json:"candidates"`
	// DominanceTests is the merge's total test count (= Σ partitions).
	DominanceTests int64 `json:"dominance_tests"`
	// ResultSize is the merged global skyline size.
	ResultSize int `json:"result_size"`
	// Stages is the wall-time breakdown (snapshot, merge).
	Stages []telemetry.StageTiming `json:"stages"`
	// Partitions is the per-partition breakdown, ascending id.
	Partitions []PartitionExplain `json:"partitions"`
}

// ExplainMerge merges per-partition local skylines into the global
// skyline with a BNL whose dominance tests are attributed to the
// partition of the incoming candidate. scheme is echoed into the plan.
// The returned set shares point storage with the input.
func ExplainMerge(scheme string, local map[int]points.Set) (points.Set, *Explain) {
	ids := make([]int, 0, len(local))
	for id := range local {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	ex := &Explain{
		Scheme:           scheme,
		PartitionsProbed: len(ids),
		Partitions:       make([]PartitionExplain, 0, len(ids)),
	}
	byID := make(map[int]*PartitionExplain, len(ids))
	for _, id := range ids {
		ex.Partitions = append(ex.Partitions, PartitionExplain{
			Partition:  id,
			Candidates: len(local[id]),
		})
		byID[id] = &ex.Partitions[len(ex.Partitions)-1]
		ex.Candidates += int64(len(local[id]))
	}

	var window points.Set
	var owners []int // owners[j] is the partition of window[j]
	for _, id := range ids {
		pe := byID[id]
		for _, p := range local[id] {
			dominated := false
			for j := 0; j < len(window); {
				pe.DominanceTests++
				q := window[j]
				if points.DominatesOrEqual(q, p) && !q.Equal(p) {
					// Window rows are mutually non-dominated, so p cannot
					// have evicted anyone before dying — stop without
					// repair (the classic BNL argument).
					dominated = true
					break
				}
				if points.Dominates(p, q) {
					last := len(window) - 1
					window[j], owners[j] = window[last], owners[last]
					window, owners = window[:last], owners[:last]
					continue
				}
				j++
			}
			if !dominated {
				window = append(window, p)
				owners = append(owners, id)
			}
		}
	}
	for _, id := range owners {
		byID[id].Survivors++
	}
	for i := range ex.Partitions {
		ex.DominanceTests += ex.Partitions[i].DominanceTests
	}
	ex.ResultSize = len(window)
	return window, ex
}
