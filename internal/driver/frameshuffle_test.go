package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

// dupSet builds a uniform set and re-appends a slice of exact
// duplicates, so multiset semantics of the two shuffle paths are
// exercised, not just set semantics.
func dupSet(seed int64, n, d int) points.Set {
	s := uniformSet(seed, n, d)
	for i := 0; i < n/10; i++ {
		s = append(s, s[i].Clone())
	}
	return s
}

// TestFrameShuffleMatchesClassicShuffle is the in-process equivalence
// property: for every scheme and a spread of dimensions, the framed
// pipeline and the ClassicShuffle escape hatch produce the same global
// skyline, which also matches the oracle.
func TestFrameShuffleMatchesClassicShuffle(t *testing.T) {
	for _, d := range []int{2, 4, 6} {
		data := dupSet(int64(100+d), 700, d)
		want := skyline.Naive(data)
		for _, scheme := range allSchemes() {
			framed, fstats, err := Compute(context.Background(), data, Options{Scheme: scheme, Nodes: 4})
			if err != nil {
				t.Fatalf("%v d=%d framed: %v", scheme, d, err)
			}
			classic, cstats, err := Compute(context.Background(), data,
				Options{Scheme: scheme, Nodes: 4, ClassicShuffle: true})
			if err != nil {
				t.Fatalf("%v d=%d classic shuffle: %v", scheme, d, err)
			}
			if !sameMultiset(framed, classic) {
				t.Errorf("%v d=%d: framed skyline (%d pts) != classic shuffle (%d pts)",
					scheme, d, len(framed), len(classic))
			}
			if !sameMultiset(framed, want) {
				t.Errorf("%v d=%d: framed skyline (%d pts) != oracle (%d pts)",
					scheme, d, len(framed), len(want))
			}
			// Local skylines must agree partition by partition.
			if len(fstats.LocalSkylines) != len(cstats.LocalSkylines) {
				t.Fatalf("%v d=%d: local skyline partitions %d vs %d",
					scheme, d, len(fstats.LocalSkylines), len(cstats.LocalSkylines))
			}
			for id, fls := range fstats.LocalSkylines {
				if !sameMultiset(fls, cstats.LocalSkylines[id]) {
					t.Errorf("%v d=%d: partition %d local skylines differ", scheme, d, id)
				}
			}
		}
	}
}

// TestFrameShuffleSpillMatches runs both shuffle paths in spill mode:
// frames must survive the disk round trip with results identical to the
// in-memory run.
func TestFrameShuffleSpillMatches(t *testing.T) {
	data := dupSet(7, 900, 4)
	want := skyline.Naive(data)
	for _, compress := range []bool{false} {
		_ = compress
		framedSpill, _, err := Compute(context.Background(), data,
			Options{Scheme: partition.Angular, Nodes: 4, SpillDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		framedMem, _, err := Compute(context.Background(), data,
			Options{Scheme: partition.Angular, Nodes: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(framedSpill, framedMem) {
			t.Error("spill-mode framed skyline differs from in-memory framed skyline")
		}
		if !sameMultiset(framedSpill, want) {
			t.Error("spill-mode framed skyline differs from oracle")
		}
	}
}

// TestFrameShuffleHierarchicalMerge checks the framed partitioning job
// feeds the iterative merge rounds correctly.
func TestFrameShuffleHierarchicalMerge(t *testing.T) {
	data := dupSet(9, 800, 3)
	want := skyline.Naive(data)
	got, stats, err := Compute(context.Background(), data,
		Options{Scheme: partition.Grid, Nodes: 4, HierarchicalMerge: true, MergeFanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Errorf("hierarchical framed skyline %d pts, oracle %d", len(got), len(want))
	}
	if stats.MergeJob.Total <= 0 {
		t.Error("merge rounds recorded no time")
	}
}

// TestFrameShuffleAblations: combiner off and pruning off still agree
// with the classic path under the same ablation.
func TestFrameShuffleAblations(t *testing.T) {
	data := dupSet(13, 600, 3)
	for _, opt := range []Options{
		{Scheme: partition.Grid, Nodes: 4, DisableCombiner: true},
		{Scheme: partition.Grid, Nodes: 4, DisableGridPruning: true},
	} {
		framed, _, err := Compute(context.Background(), data, opt)
		if err != nil {
			t.Fatal(err)
		}
		copt := opt
		copt.ClassicShuffle = true
		classic, _, err := Compute(context.Background(), data, copt)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(framed, classic) {
			t.Errorf("ablation %+v: framed and classic shuffles disagree", opt)
		}
	}
}

// TestFrameShuffleCounters: the framed run books shuffle counters with
// frame payload semantics (headers + coords, no gob envelope).
func TestFrameShuffleCounters(t *testing.T) {
	data := uniformSet(21, 1000, 4)
	_, stats, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := stats.Counters["mr.shuffle.records"]
	if recs <= 0 || recs > int64(2*len(data)) {
		t.Errorf("shuffle records = %d, implausible for %d inputs", recs, len(data))
	}
	bytes := stats.Counters["mr.shuffle.bytes"]
	// Combined local skylines can only shrink data; payload bytes must be
	// below raw coordinate volume plus generous header slack.
	max := int64(len(data)*4*8) * 2
	if bytes <= 0 || bytes > max {
		t.Errorf("shuffle bytes = %d, want in (0, %d]", bytes, max)
	}
}
