package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// TestExplainMatchesGlobal: the explained merge returns exactly the
// cached global skyline, and the plan's totals are internally consistent
// (per-partition sums equal the totals, survivors sum to the result).
func TestExplainMatchesGlobal(t *testing.T) {
	data := qws.Dataset(7, 2000, 4)
	ix, err := BuildIndex(context.Background(), data, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	// A few incremental adds so the index has drifted from its boot state.
	for _, p := range qws.Dataset(8, 50, 4) {
		if _, _, err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
	}

	qs := telemetry.BeginQuery("skyline")
	ctx := telemetry.WithQueryStats(context.Background(), qs)
	sky, ex := ix.Explain(ctx)

	want := ix.Global()
	if len(sky) != len(want) {
		t.Fatalf("explain skyline size %d != global %d", len(sky), len(want))
	}
	keys := make(map[string]int, len(want))
	for _, p := range want {
		keys[points.Key(p)]++
	}
	for _, p := range sky {
		if keys[points.Key(p)] == 0 {
			t.Fatalf("explain skyline has %v not in global", p)
		}
		keys[points.Key(p)]--
	}

	// Plan totals reconcile with their per-partition breakdown.
	var tests, survivors int64
	var candidates int64
	for _, pe := range ex.Partitions {
		tests += pe.DominanceTests
		survivors += int64(pe.Survivors)
		candidates += int64(pe.Candidates)
		if pe.Survivors > pe.Candidates {
			t.Errorf("partition %d: %d survivors of %d candidates", pe.Partition, pe.Survivors, pe.Candidates)
		}
	}
	if tests != ex.DominanceTests || tests == 0 {
		t.Errorf("dominance tests: partitions sum %d, total %d", tests, ex.DominanceTests)
	}
	if candidates != ex.Candidates || int(candidates) != ix.Size() {
		t.Errorf("candidates: sum %d, total %d, index size %d", candidates, ex.Candidates, ix.Size())
	}
	if int(survivors) != ex.ResultSize || ex.ResultSize != len(sky) {
		t.Errorf("survivors %d, result size %d, skyline %d", survivors, ex.ResultSize, len(sky))
	}
	if ex.PartitionsProbed != len(ex.Partitions) {
		t.Errorf("partitions probed %d != breakdown rows %d", ex.PartitionsProbed, len(ex.Partitions))
	}
	if ex.Scheme != "MR-Angle" && ex.Scheme != partition.Angular.String() {
		t.Errorf("scheme = %q", ex.Scheme)
	}
	if len(ex.Stages) != 2 {
		t.Errorf("stages = %v, want snapshot+merge", ex.Stages)
	}

	// The context query record carries the same totals.
	if qs.DominanceTests != ex.DominanceTests || qs.CandidatesScanned != ex.Candidates ||
		qs.PartitionsProbed != ex.PartitionsProbed || qs.Path != "merge" {
		t.Errorf("query record diverges from plan: %+v vs %+v", qs, ex)
	}
}

// TestExplainMergeOracle: the counting merge agrees with the sequential
// BNL oracle over the union, duplicates included.
func TestExplainMergeOracle(t *testing.T) {
	local := map[int]points.Set{
		0: {points.Point{1, 5}, points.Point{2, 4}},
		2: {points.Point{5, 1}, points.Point{1, 5}}, // duplicate of a partition-0 point
		5: {points.Point{3, 3}, points.Point{6, 6}}, // {6,6} dominated
	}
	var union points.Set
	for _, ls := range local {
		union = append(union, ls...)
	}
	want := skyline.BNL(union)
	got, ex := ExplainMerge("test", local)
	if len(got) != len(want) {
		t.Fatalf("merge size %d, oracle %d", len(got), len(want))
	}
	if ex.Candidates != 6 || ex.PartitionsProbed != 3 {
		t.Errorf("plan candidates %d partitions %d, want 6/3", ex.Candidates, ex.PartitionsProbed)
	}
	// Both copies of the duplicate survive (registry semantics: equal QoS
	// services all appear).
	dup := 0
	for _, p := range got {
		if p.Equal(points.Point{1, 5}) {
			dup++
		}
	}
	if dup != 2 {
		t.Errorf("duplicate survivors = %d, want 2", dup)
	}
}

// TestAddContextAttribution: AddContext annotates the context record with
// the update path and a positive dominance-test delta on the flat-kernel
// path.
func TestAddContextAttribution(t *testing.T) {
	data := qws.Dataset(9, 500, 3)
	ix, err := BuildIndex(context.Background(), data, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	qs := telemetry.BeginQuery("publish")
	ctx := telemetry.WithQueryStats(context.Background(), qs)
	if _, _, err := ix.AddContext(ctx, points.Point{0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if qs.Path != "update" || qs.DominanceTests <= 0 || qs.CandidatesScanned <= 0 {
		t.Errorf("publish attribution missing: %+v", qs)
	}
	// The sharded write domain touches exactly one partition per publish —
	// the point's own shard — plus the incremental global fold.
	if qs.PartitionsProbed != 1 {
		t.Errorf("partitions probed %d, want 1 (one shard per publish)", qs.PartitionsProbed)
	}
}
