package driver

import (
	"context"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/telemetry"
)

// TestComputeTelemetry: the in-process pipeline with a registry and
// tracer attached must publish per-partition gauges and record a root
// span with the two engine jobs nested under it.
func TestComputeTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	data := uniformSet(11, 500, 2)
	opts := Options{Scheme: partition.Grid, Nodes: 2, Metrics: reg}
	sky, stats, err := Compute(ctx, data, opts)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	sizeGauges := 0
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "skyline_partition_local_size{") {
			sizeGauges++
		}
	}
	if sizeGauges != len(stats.LocalSkylines) {
		t.Errorf("local-size gauges = %d, want %d", sizeGauges, len(stats.LocalSkylines))
	}
	if got := snap.Gauges["skyline_global_size"]; got != float64(len(sky)) {
		t.Errorf("skyline_global_size = %v, want %d", got, len(sky))
	}
	if got := snap.Gauges["skyline_pruned_partitions"]; got != float64(stats.PrunedPartitions) {
		t.Errorf("skyline_pruned_partitions = %v, want %d", got, stats.PrunedPartitions)
	}
	// Both engine jobs bridged their counters under their job label.
	if snap.Counters[`mr_jobs_total{job="MR-Grid-partitioning"}`] != 1 ||
		snap.Counters[`mr_jobs_total{job="MR-Grid-merging"}`] != 1 {
		t.Errorf("engine jobs not bridged: %v", snap.Counters)
	}

	byName := map[string]telemetry.SpanData{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	root, ok := byName["skyline:MR-Grid"]
	if !ok {
		t.Fatal("no root skyline span")
	}
	for _, job := range []string{"mr-job:MR-Grid-partitioning", "mr-job:MR-Grid-merging"} {
		s, ok := byName[job]
		if !ok {
			t.Fatalf("no %s span", job)
		}
		if s.Parent != root.ID {
			t.Errorf("%s not nested under the skyline span", job)
		}
	}
}
