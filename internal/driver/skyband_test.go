package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

func naiveSkyband(t *testing.T, s points.Set, k int) points.Set {
	t.Helper()
	band, err := skyline.Skyband(s, k)
	if err != nil {
		t.Fatal(err)
	}
	return band
}

func TestComputeSkybandMatchesOracle(t *testing.T) {
	data := uniformSet(61, 600, 3)
	for _, k := range []int{1, 2, 3, 5} {
		want := naiveSkyband(t, data, k)
		for _, scheme := range allSchemes() {
			got, stats, err := ComputeSkyband(context.Background(), data, k, Options{Scheme: scheme, Nodes: 4})
			if err != nil {
				t.Fatalf("%v k=%d: %v", scheme, k, err)
			}
			if !sameMultiset(got, want) {
				t.Errorf("%v k=%d: %d points, oracle %d", scheme, k, len(got), len(want))
			}
			if stats.Timing.Total <= 0 {
				t.Errorf("%v k=%d: no timing", scheme, k)
			}
		}
	}
}

func TestComputeSkyband1IsSkyline(t *testing.T) {
	data := uniformSet(62, 500, 4)
	got, _, err := ComputeSkyband(context.Background(), data, 1, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, skyline.Naive(data)) {
		t.Error("1-skyband differs from skyline")
	}
}

func TestComputeSkybandChainAcrossPartitions(t *testing.T) {
	// A dominance chain deliberately spread across partitions: local
	// counting alone would undercount dominators; the merge must fix it.
	var data points.Set
	for i := 0; i < 64; i++ {
		data = append(data, points.Point{float64(i), float64(i)})
	}
	for _, k := range []int{1, 2, 4} {
		want := naiveSkyband(t, data, k)
		got, _, err := ComputeSkyband(context.Background(), data, k, Options{
			Scheme: partition.Random, Partitions: 8, // scatter the chain
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("k=%d: %d points, oracle %d", k, len(got), len(want))
		}
	}
}

func TestComputeSkybandValidation(t *testing.T) {
	data := uniformSet(63, 50, 2)
	if _, _, err := ComputeSkyband(context.Background(), data, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ComputeSkyband(context.Background(), nil, 2, Options{}); err == nil {
		t.Error("empty data accepted")
	}
}

func TestComputeSkybandSupersetOfSkyline(t *testing.T) {
	data := uniformSet(64, 800, 3)
	sky := skyline.Naive(data)
	band, _, err := ComputeSkyband(context.Background(), data, 3, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if len(band) < len(sky) {
		t.Fatalf("3-skyband (%d) smaller than skyline (%d)", len(band), len(sky))
	}
	for _, p := range sky {
		if !band.Contains(p) {
			t.Errorf("skyline point %v missing from 3-skyband", p)
		}
	}
}
