package driver

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/qws"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// TestFlatMatchesClassic runs the full pipeline twice — default flat path
// and the ClassicKernel escape hatch — across schemes and kernels and
// requires identical skylines.
func TestFlatMatchesClassic(t *testing.T) {
	data := qws.Dataset(7, 1500, 5)
	for _, scheme := range []partition.Scheme{partition.Dimensional, partition.Grid, partition.Angular} {
		for _, kernel := range []skyline.Algorithm{skyline.BNLAlgorithm, skyline.SFSAlgorithm} {
			flatSky, _, err := Compute(context.Background(), data,
				Options{Scheme: scheme, Nodes: 4, Kernel: kernel})
			if err != nil {
				t.Fatalf("%v/%v flat: %v", scheme, kernel, err)
			}
			classicSky, _, err := Compute(context.Background(), data,
				Options{Scheme: scheme, Nodes: 4, Kernel: kernel, ClassicKernel: true})
			if err != nil {
				t.Fatalf("%v/%v classic: %v", scheme, kernel, err)
			}
			if len(flatSky) != len(classicSky) {
				t.Fatalf("%v/%v: flat %d points, classic %d", scheme, kernel, len(flatSky), len(classicSky))
			}
			for _, p := range flatSky {
				if !classicSky.Contains(p) {
					t.Fatalf("%v/%v: flat point %v missing from classic skyline", scheme, kernel, p)
				}
			}
		}
	}
}

// TestFlatHierarchicalMerge covers the flat reducers inside the iterative
// merge rounds.
func TestFlatHierarchicalMerge(t *testing.T) {
	data := qws.Dataset(8, 1200, 4)
	want, _, err := Compute(context.Background(), data,
		Options{Scheme: partition.Angular, Nodes: 4, ClassicKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Compute(context.Background(), data,
		Options{Scheme: partition.Angular, Nodes: 4, HierarchicalMerge: true, MergeFanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("hierarchical flat merge: %d points, want %d", len(got), len(want))
	}
	for _, p := range got {
		if !want.Contains(p) {
			t.Fatalf("hierarchical flat merge produced stray point %v", p)
		}
	}
}

// TestDominanceCounterBridged: a run with a registry must surface the
// flat kernels' dominance-test delta as skyline_dominance_tests_total.
func TestDominanceCounterBridged(t *testing.T) {
	data := qws.Dataset(9, 800, 4)
	reg := telemetry.NewRegistry()
	_, _, err := Compute(context.Background(), data,
		Options{Scheme: partition.Angular, Nodes: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("skyline_dominance_tests_total").Value(); v <= 0 {
		t.Fatalf("skyline_dominance_tests_total = %d, want > 0", v)
	}
}
