package driver

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

func uniformSet(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		s[i] = p
	}
	return s
}

func allSchemes() []partition.Scheme {
	return []partition.Scheme{partition.Dimensional, partition.Grid, partition.Angular, partition.Random}
}

func TestAllSchemesMatchOracle(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		data := uniformSet(int64(d), 800, d)
		want := skyline.Naive(data)
		for _, scheme := range allSchemes() {
			got, stats, err := Compute(context.Background(), data, Options{Scheme: scheme, Nodes: 4})
			if err != nil {
				t.Fatalf("%v d=%d: %v", scheme, d, err)
			}
			if !sameMultiset(got, want) {
				t.Errorf("%v d=%d: global skyline has %d points, oracle %d", scheme, d, len(got), len(want))
			}
			if stats.Partitions < 8 && scheme != partition.Dimensional {
				t.Errorf("%v: %d partitions, want >= 8 (2 × 4 nodes)", scheme, stats.Partitions)
			}
		}
	}
}

func sameMultiset(a, b points.Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestAllKernelsMatch(t *testing.T) {
	data := uniformSet(5, 500, 3)
	want := skyline.Naive(data)
	for _, k := range []skyline.Algorithm{skyline.BNLAlgorithm, skyline.SFSAlgorithm, skyline.DCAlgorithm} {
		got, _, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, Kernel: k})
		if err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("kernel %v disagrees with oracle", k)
		}
	}
}

func TestCombinerAblationSameResult(t *testing.T) {
	data := uniformSet(6, 1000, 4)
	withC, sw, err := Compute(context.Background(), data, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	without, so, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, DisableCombiner: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(withC, without) {
		t.Error("combiner changed the result")
	}
	// The combiner must cut the shuffle volume of the partitioning job.
	if sw.Counters["mr.shuffle.records"] >= so.Counters["mr.shuffle.records"] {
		t.Errorf("combiner did not reduce shuffle: %d vs %d",
			sw.Counters["mr.shuffle.records"], so.Counters["mr.shuffle.records"])
	}
}

func TestGridPruningSameResultAndPrunes(t *testing.T) {
	data := uniformSet(7, 2000, 2)
	pruned, sp, err := Compute(context.Background(), data, Options{Scheme: partition.Grid, Nodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, su, err := Compute(context.Background(), data, Options{Scheme: partition.Grid, Nodes: 8, DisableGridPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(pruned, unpruned) {
		t.Error("grid pruning changed the result")
	}
	if sp.PrunedPartitions == 0 {
		t.Error("no cells pruned on dense uniform 2-D data")
	}
	if su.PrunedPartitions != 0 {
		t.Error("pruning reported while disabled")
	}
	if sp.LocalSkylineTotal() > su.LocalSkylineTotal() {
		t.Errorf("pruning increased local skyline volume: %d vs %d",
			sp.LocalSkylineTotal(), su.LocalSkylineTotal())
	}
}

func TestLocalSkylinesAreLocalSkylines(t *testing.T) {
	data := uniformSet(8, 1200, 3)
	_, stats, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild partition membership and verify each reported local skyline
	// is exactly the skyline of its partition's points.
	part, err := partition.New(partition.Angular, data, 8)
	if err != nil {
		t.Fatal(err)
	}
	byPart := map[int]points.Set{}
	for _, p := range data {
		id, err := part.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		byPart[id] = append(byPart[id], p)
	}
	for id, members := range byPart {
		want := skyline.Naive(members)
		got := stats.LocalSkylines[id]
		if !sameMultiset(got, want) {
			t.Errorf("partition %d: local skyline %d points, want %d", id, len(got), len(want))
		}
	}
	// Partition counts must cover the whole input.
	total := 0
	for _, c := range stats.PartitionCounts {
		total += c
	}
	if total != len(data) {
		t.Errorf("partition counts sum to %d, want %d", total, len(data))
	}
}

func TestStatsTimingAggregation(t *testing.T) {
	data := uniformSet(9, 300, 2)
	_, stats, err := Compute(context.Background(), data, Options{Scheme: partition.Dimensional})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Timing.Total != stats.PartitionJob.Total+stats.MergeJob.Total {
		t.Errorf("timing total %v != %v + %v", stats.Timing.Total, stats.PartitionJob.Total, stats.MergeJob.Total)
	}
	if stats.Timing.Total <= 0 {
		t.Error("no timing recorded")
	}
}

func TestSpillModeSameResult(t *testing.T) {
	data := uniformSet(10, 600, 3)
	want := skyline.Naive(data)
	got, _, err := Compute(context.Background(), data, Options{Scheme: partition.Grid, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Error("spill mode changed the result")
	}
}

func TestRejectsInvalidInput(t *testing.T) {
	if _, _, err := Compute(context.Background(), nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := Compute(context.Background(), points.Set{{1, 2}, {3}}, Options{}); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := uniformSet(11, 10000, 6)
	if _, _, err := Compute(ctx, data, Options{Scheme: partition.Angular}); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	data := uniformSet(12, 200, 2)
	want := skyline.Naive(data)
	got, stats, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Error("single-node result wrong")
	}
	if stats.Partitions < 2 {
		t.Errorf("partitions = %d, want >= 2 (2 × 1 node)", stats.Partitions)
	}
}

func TestExplicitPartitionOverride(t *testing.T) {
	data := uniformSet(13, 400, 2)
	_, stats, err := Compute(context.Background(), data, Options{Scheme: partition.Angular, Partitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 16 {
		t.Errorf("partitions = %d, want 16", stats.Partitions)
	}
}

func TestDuplicatePointsSurviveTogether(t *testing.T) {
	data := points.Set{{1, 1}, {1, 1}, {5, 5}, {2, 9}, {9, 2}}
	got, _, err := Compute(context.Background(), data, Options{Scheme: partition.Grid})
	if err != nil {
		t.Fatal(err)
	}
	dups := 0
	for _, p := range got {
		if p.Equal(points.Point{1, 1}) {
			dups++
		}
	}
	if dups != 2 {
		t.Errorf("kept %d copies of duplicate skyline point, want 2", dups)
	}
}

func TestAnticorrelatedHeavySkyline(t *testing.T) {
	// Anti-correlated data has a huge skyline — the stress case.
	rng := rand.New(rand.NewSource(14))
	data := make(points.Set, 500)
	for i := range data {
		x := rng.Float64()
		data[i] = points.Point{x, 1 - x + 0.01*rng.Float64()}
	}
	want := skyline.Naive(data)
	for _, scheme := range allSchemes() {
		got, _, err := Compute(context.Background(), data, Options{Scheme: scheme})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("%v: %d points, oracle %d", scheme, len(got), len(want))
		}
	}
}

func TestIncrementalIndex(t *testing.T) {
	data := uniformSet(15, 500, 2)
	ix, err := BuildIndex(context.Background(), data, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(ix.Global(), skyline.Naive(data)) {
		t.Fatal("initial index global skyline wrong")
	}

	// Add a dominating point: it must enter the global skyline.
	winner := points.Point{0.001, 0.001}
	_, inGlobal, err := ix.Add(winner)
	if err != nil {
		t.Fatal(err)
	}
	if !inGlobal {
		t.Error("strictly dominating point not in global skyline")
	}
	want := skyline.Naive(append(data.Clone(), winner))
	if !sameMultiset(ix.Global(), want) {
		t.Error("incremental global skyline diverges from batch recompute after dominating add")
	}

	// Add a clearly dominated point: global skyline must not change.
	loser := points.Point{99.9, 99.9}
	_, inGlobal, err = ix.Add(loser)
	if err != nil {
		t.Fatal(err)
	}
	if inGlobal {
		t.Error("dominated point reported in global skyline")
	}
	if !sameMultiset(ix.Global(), want) {
		t.Error("dominated add changed the global skyline")
	}
}

func TestIncrementalMatchesBatchOverStream(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	initial := uniformSet(17, 300, 3)
	ix, err := BuildIndex(context.Background(), initial, Options{Scheme: partition.Grid})
	if err != nil {
		t.Fatal(err)
	}
	all := initial.Clone()
	for i := 0; i < 100; i++ {
		p := points.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		all = append(all, p)
		if _, _, err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if !sameMultiset(ix.Global(), skyline.Naive(all)) {
		t.Error("incremental index diverged from batch skyline after 100 adds")
	}
	if ix.Size() >= len(all) {
		t.Errorf("index retains %d points for %d services — no compression", ix.Size(), len(all))
	}
}

func TestIncrementalAddRejectsBadPoint(t *testing.T) {
	ix, err := BuildIndex(context.Background(), uniformSet(18, 50, 2), Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Add(points.Point{1}); err == nil {
		t.Error("wrong-dimension add accepted")
	}
}
