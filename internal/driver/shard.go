package driver

import (
	"math"

	"repro/internal/points"
	"repro/internal/rtree"
)

// A shard owns one angular partition's local skyline inside the serving
// index. Shards are immutable: a publish that changes a shard's local
// skyline produces a *new* shard value, so epoch snapshots can share
// untouched shards across versions without copying and readers never see
// a shard mid-update.
//
// Candidate pruning on the write path runs two ways: small shards take a
// single linear BNL-style pass over the local skyline; shards at or above
// shardTreeCrossover carry an STR-packed R-tree over their members, and a
// publish resolves its dominators (box [-inf, p]) and its victims (box
// [p, +inf]) with two bounded box searches instead of a full scan. The
// crossover is justified by BenchmarkShardAdd in shard_test.go: local
// skylines are mutually non-dominated (anti-correlated shape), and on
// that shape the tree is ahead from roughly 128 points for both
// skyline-entering and dominated probes — 256 is the conservative pick,
// because correlated publish streams with abundant dominators let the
// linear scan early-exit in a handful of tests.
const shardTreeCrossover = 256

type shard struct {
	local points.Set  // this partition's local skyline; treat as immutable
	tree  *rtree.Tree // non-nil iff len(local) >= shardTreeCrossover
}

// newShard wraps a local skyline, building the R-tree accelerator when
// the shard is large enough to repay it. The set is adopted, not copied.
func newShard(local points.Set) *shard {
	s := &shard{local: local}
	if len(local) >= shardTreeCrossover {
		if t, err := rtree.New(local, rtree.DefaultFanout); err == nil {
			s.tree = t
		}
	}
	return s
}

// dominatesStrict is the repo-wide skyline convention: q kills p when q
// is at least as good everywhere and not coordinate-equal (coordinate
// duplicates all survive — registry semantics).
func dominatesStrict(q, p points.Point) bool {
	return points.DominatesOrEqual(q, p) && !q.Equal(p)
}

// add attempts to insert p into the shard's local skyline. It returns
// the replacement local skyline (nil when p is dominated and the shard
// is unchanged), whether p survived, and the number of dominance tests
// spent deciding — the per-query attribution currency.
func (s *shard) add(p points.Point) (newLocal points.Set, ok bool, tests int64) {
	if s.tree != nil {
		return s.addTree(p)
	}
	return s.addLinear(p)
}

// addLinear is the small-shard path: one pass, testing both directions
// per incumbent. The classic BNL argument applies — incumbents are
// mutually non-dominated, so once p evicts someone nothing later can
// dominate p, and once p dies it cannot have evicted anyone.
func (s *shard) addLinear(p points.Point) (points.Set, bool, int64) {
	var tests int64
	evict := -1 // index of first eviction, -1 while none
	for i, q := range s.local {
		tests++
		if evict < 0 && dominatesStrict(q, p) {
			return nil, false, tests
		}
		if dominatesStrict(p, q) && evict < 0 {
			evict = i
		}
	}
	if evict < 0 {
		out := make(points.Set, 0, len(s.local)+1)
		out = append(out, s.local...)
		return append(out, p), true, tests
	}
	out := make(points.Set, 0, len(s.local))
	out = append(out, s.local[:evict]...)
	for _, q := range s.local[evict+1:] {
		if !dominatesStrict(p, q) {
			out = append(out, q)
		}
	}
	return append(out, p), true, tests
}

// addTree is the large-shard path: two corner-box searches against the
// R-tree. Dominators of p live in [-inf, p]; victims of p live in
// [p, +inf]. Leaf-entry box checks are counted as dominance tests — each
// is exactly one "is q ≤ p componentwise" comparison.
func (s *shard) addTree(p points.Point) (points.Set, bool, int64) {
	d := p.Dim()
	lo := make(points.Point, d)
	hi := make(points.Point, d)
	for j := 0; j < d; j++ {
		lo[j] = math.Inf(-1)
		hi[j] = math.Inf(1)
	}
	dominators, tests := s.tree.SearchCounted(lo, p)
	for _, q := range dominators {
		if !q.Equal(p) {
			return nil, false, tests
		}
	}
	victims, t2 := s.tree.SearchCounted(p, hi)
	tests += t2
	evict := make(map[string]struct{}, len(victims))
	for _, q := range victims {
		if !q.Equal(p) {
			evict[points.Key(q)] = struct{}{}
		}
	}
	out := make(points.Set, 0, len(s.local)+1-len(evict))
	if len(evict) == 0 {
		out = append(out, s.local...)
	} else {
		for _, q := range s.local {
			if _, dead := evict[points.Key(q)]; !dead {
				out = append(out, q)
			}
		}
	}
	return append(out, p), true, tests
}

// globalAdd folds one shard-surviving point into the global skyline with
// the same one-pass logic as addLinear, copy-on-write: the input set is
// never mutated, and it is returned unchanged when p is dominated.
func globalAdd(global points.Set, p points.Point) (out points.Set, entered bool, tests int64) {
	evict := -1
	for i, q := range global {
		tests++
		if evict < 0 && dominatesStrict(q, p) {
			return global, false, tests
		}
		if dominatesStrict(p, q) && evict < 0 {
			evict = i
		}
	}
	if evict < 0 {
		out = make(points.Set, 0, len(global)+1)
		out = append(out, global...)
		return append(out, p), true, tests
	}
	out = make(points.Set, 0, len(global))
	out = append(out, global[:evict]...)
	for _, q := range global[evict+1:] {
		if !dominatesStrict(p, q) {
			out = append(out, q)
		}
	}
	return append(out, p), true, tests
}
