package driver

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/rtree"
	"repro/internal/skyline"
)

// TestShardAddPathsAgree: the linear and R-tree add paths are
// interchangeable — same survivors, same rejections, duplicates kept —
// against the BNL oracle over the accumulated stream.
func TestShardAddPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var stream points.Set
	for i := 0; i < 400; i++ {
		stream = append(stream, points.Point{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	// Inject duplicates: every 20th point repeats an earlier one.
	for i := 19; i < len(stream); i += 20 {
		stream[i] = stream[i/2].Clone()
	}

	linear := &shard{local: nil}
	var accepted points.Set
	for _, p := range stream {
		// Force-tree variant: rebuild a tree over the current local each
		// step so addTree is exercised at every size (fanout pressure at
		// small n is the edge case), regardless of the crossover.
		tree := &shard{local: accepted}
		if len(accepted) > 0 {
			tr, err := rtree.New(accepted, rtree.DefaultFanout)
			if err != nil {
				t.Fatal(err)
			}
			tree.tree = tr
		}

		nl1, ok1, _ := linear.addLinear(p)
		var nl2 points.Set
		var ok2 bool
		if tree.tree != nil {
			nl2, ok2, _ = tree.addTree(p)
		} else {
			nl2, ok2, _ = tree.addLinear(p)
		}
		if ok1 != ok2 {
			t.Fatalf("paths disagree on %v: linear=%v tree=%v", p, ok1, ok2)
		}
		if ok1 {
			if !sameMultiset(nl1, nl2) {
				t.Fatalf("paths produced different locals (%d vs %d)", len(nl1), len(nl2))
			}
			accepted = nl1
			linear = &shard{local: accepted}
		}
	}
	if !sameMultiset(accepted, skyline.BNL(stream)) {
		t.Error("shard stream result diverges from BNL oracle")
	}
}

// TestGlobalAddOracle: folding a stream point-by-point through globalAdd
// equals the batch BNL, duplicates preserved, and the input set is never
// mutated (copy-on-write).
func TestGlobalAddOracle(t *testing.T) {
	stream := qws.Dataset(52, 500, 4)
	stream = append(stream, stream[10].Clone(), stream[20].Clone())
	var global points.Set
	for _, p := range stream {
		prev := global
		prevLen := len(prev)
		var snapshot points.Set
		if prevLen > 0 {
			snapshot = prev.Clone()
		}
		next, entered, tests := globalAdd(global, p)
		// One pass: at most one test per incumbent, exactly one each when
		// the point survives (no early exit on the accept path).
		if tests > int64(prevLen) || (entered && tests != int64(prevLen)) {
			t.Fatalf("globalAdd spent %d tests over %d incumbents (entered=%v)", tests, prevLen, entered)
		}
		if prevLen > 0 && !sameMultiset(prev[:prevLen], snapshot) {
			t.Fatal("globalAdd mutated its input set")
		}
		global = next
	}
	if !sameMultiset(global, skyline.BNL(stream)) {
		t.Error("incremental global diverges from BNL oracle")
	}
}

// simplexSet generates mutually non-dominated points (normalized onto
// the unit simplex: q ≤ p componentwise with equal coordinate sums
// forces q == p) — the anti-correlated shape every shard's local skyline
// converges to, which makes it the representative base for the
// crossover measurement.
func simplexSet(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	out := make(points.Set, n)
	for i := range out {
		p := make(points.Point, d)
		s := 0.0
		for j := range p {
			p[j] = rng.ExpFloat64()
			s += p[j]
		}
		for j := range p {
			p[j] /= s
		}
		out[i] = p
	}
	return out
}

// BenchmarkShardAdd justifies shardTreeCrossover: for each shard size it
// measures a publish against the linear path and the R-tree path, for
// both probe classes — "enter" (a fresh simplex point, which joins the
// skyline and forces the linear path to scan everything) and "dom" (the
// same point scaled up 5%, dominated but only discoverably so via a
// near-corner incumbent). Run with
//
//	go test -bench ShardAdd -benchtime 1000x ./internal/driver
//
// On the dev container the tree is ahead for every class from n≈128
// (e.g. n=512: ~10µs linear vs ~6µs tree; n=4096: ~82µs vs ~50µs), so
// the 256 crossover is conservative: heavily dominated correlated
// streams (many dominators → linear early-exits in a handful of tests)
// are the one regime where linear stays ahead, and small shards stay
// linear anyway.
func BenchmarkShardAdd(b *testing.B) {
	const d = 5
	for _, n := range []int{64, 128, 256, 512, 1024, 4096} {
		base := simplexSet(60, n, d)
		enter := simplexSet(61, 512, d)
		dominated := make(points.Set, len(enter))
		for i, p := range enter {
			q := p.Clone()
			for j := range q {
				q[j] *= 1.05
			}
			dominated[i] = q
		}
		linear := &shard{local: base}
		tr, err := rtree.New(base, rtree.DefaultFanout)
		if err != nil {
			b.Fatal(err)
		}
		withTree := &shard{local: base, tree: tr}
		for _, class := range []struct {
			name   string
			probes points.Set
		}{{"enter", enter}, {"dom", dominated}} {
			b.Run(fmt.Sprintf("linear/%s/n=%d", class.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					linear.addLinear(class.probes[i%len(class.probes)])
				}
			})
			b.Run(fmt.Sprintf("rtree/%s/n=%d", class.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					withTree.addTree(class.probes[i%len(class.probes)])
				}
			})
		}
	}
}
