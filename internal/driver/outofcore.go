package driver

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// This file is the out-of-core entry point: datasets that never fit in
// memory enter as chunk recipes (mapreduce.ChunkSource), the partitioning
// job streams one chunk at a time through the framed engine, reducers
// fold frames under a byte budget, and the merge runs as a multi-round
// schedule in the MRC mold (Goodrich et al., "Sorting, Searching, and
// Simulation in the MapReduce Framework"): each round's reducers touch at
// most the memory budget, and rounds repeat until one group holds the
// global skyline. Round count and per-round candidate bytes land in the
// flight recorder, matching the model's round-complexity accounting.

// budgetedFrameFold adapts skyline.BudgetedFold to the engine's FrameFold
// interface, surfacing its peak/pass stats through FoldPeaker.
type budgetedFrameFold struct {
	partition int
	fold      *skyline.BudgetedFold
}

func (b *budgetedFrameFold) Absorb(blk *points.Block) error { return b.fold.Absorb(blk) }

func (b *budgetedFrameFold) Finish(emit mapreduce.EmitPoint) error {
	out, err := b.fold.Finish()
	if err != nil {
		return err
	}
	for i := 0; i < out.Len(); i++ {
		emit(b.partition, out.Row(i))
	}
	return nil
}

func (b *budgetedFrameFold) PeakBytes() int64 { return b.fold.Stats().PeakBytes }
func (b *budgetedFrameFold) Passes() int      { return b.fold.Stats().Passes }

// BudgetedFolder returns a FrameFolder whose folds compute each
// partition's skyline in roughly budgetBytes of window memory, spilling
// overflow frames to spillDir (the process temp dir when empty) and
// multi-passing when a local skyline outgrows the window.
func BudgetedFolder(dim int, budgetBytes int64, spillDir string, codec points.FrameCodec) mapreduce.FrameFolder {
	return func(partition int) mapreduce.FrameFold {
		return &budgetedFrameFold{partition: partition,
			fold: skyline.NewBudgetedFold(dim, budgetBytes, spillDir, codec)}
	}
}

// defaultReducerBudget caps reducer memory at 1 GiB when the caller gave
// no budget — the paper-scale "commodity reducer" setting.
const defaultReducerBudget = 1 << 30

// ComputeStream runs the MapReduce skyline pipeline over a dataset that
// exists only as a chunk recipe: src is read one chunk per map task (and
// re-read on retry — ReadChunk must be pure), so a 10⁸-point input is
// never materialized. Reducers fold shuffle frames under
// opts.ReducerBudgetBytes (default 1 GiB) and the merge runs as the
// multi-round budgeted schedule instead of one global reduce.
//
// When opts.PartitionerOverride is nil the partitioner is fitted to the
// first chunk — a sample fit: partition quality (not correctness) depends
// on the chunk being representative, which holds for the synthetic
// generators whose chunks are i.i.d.
func ComputeStream(ctx context.Context, src mapreduce.ChunkSource, opts Options) (points.Set, *Stats, error) {
	opts = opts.withDefaults()
	budget := opts.ReducerBudgetBytes
	if budget <= 0 {
		budget = defaultReducerBudget
	}
	if src.Chunks() == 0 {
		return nil, nil, fmt.Errorf("driver: empty chunk source")
	}
	sample := points.NewBlock(0, 0)
	if err := src.ReadChunk(0, sample); err != nil {
		return nil, nil, fmt.Errorf("driver: sampling chunk 0: %w", err)
	}
	if sample.Len() == 0 {
		return nil, nil, fmt.Errorf("driver: chunk 0 is empty")
	}
	dim := sample.Dim()

	ctx, rootSpan := telemetry.StartSpan(ctx, fmt.Sprintf("skyline-stream:%s", opts.Scheme),
		telemetry.A("scheme", fmt.Sprint(opts.Scheme)),
		telemetry.A("chunks", src.Chunks()),
		telemetry.A("budget_bytes", budget))
	defer rootSpan.End()

	part := opts.PartitionerOverride
	if part == nil {
		var err error
		part, err = partition.New(opts.Scheme, sample.ToSet(), opts.Partitions)
		if err != nil {
			return nil, nil, err
		}
	}
	sample = nil

	stats := &Stats{
		Scheme:        opts.Scheme,
		Partitions:    part.Partitions(),
		LocalSkylines: make(map[int]points.Set),
	}
	blockKernel := skyline.BlockByAlgorithm(opts.Kernel)
	if reg := opts.Metrics; reg != nil {
		domBefore := skyline.DominanceTests()
		defer func() {
			reg.Counter("skyline_dominance_tests_total").Add(skyline.DominanceTests() - domBefore)
		}()
	}

	// ---- Job 1: Partitioning Job (chunked) ---------------------------
	occCounts := make([]int64, part.Partitions())
	mapper := mapreduce.BlockMapperFunc(func(blk *points.Block, emit mapreduce.EmitPoint) error {
		for i := 0; i < blk.Len(); i++ {
			row := blk.Row(i)
			id, err := part.Assign(points.Point(row))
			if err != nil {
				return err
			}
			atomic.AddInt64(&occCounts[id], 1)
			emit(id, row)
		}
		return nil
	})
	var combiner mapreduce.FrameCombiner
	if !opts.DisableCombiner {
		combiner = func(partition int, blk *points.Block) (*points.Block, error) {
			return blockKernel(blk), nil
		}
	}
	cfg := mapreduce.Config{
		Name:               fmt.Sprintf("%s-partitioning-stream", opts.Scheme),
		Workers:            opts.Workers,
		Reducers:           opts.Workers,
		SpillDir:           opts.SpillDir,
		Metrics:            opts.Metrics,
		Trace:              traceSink(ctx),
		Codec:              opts.Codec,
		ReducerBudgetBytes: budget,
	}
	res, err := mapreduce.RunFramesChunked(ctx, cfg, src, mapper, combiner,
		BudgetedFolder(dim, budget, opts.SpillDir, opts.Codec))
	if err != nil {
		return nil, nil, err
	}
	for id, blk := range res.Blocks {
		if id < 0 || id >= part.Partitions() {
			return nil, nil, fmt.Errorf("driver: bad partition id %d in frame output", id)
		}
		stats.LocalSkylines[id] = blk.ToSet()
	}
	counts := make([]int, len(occCounts))
	for id := range occCounts {
		counts[id] = int(atomic.LoadInt64(&occCounts[id]))
	}
	stats.PartitionCounts = counts
	stats.ReducerPeakBytes = res.ReducerPeakBytes
	stats.MergePasses = res.MergePasses
	publishPartitionGauges(opts.Metrics, stats)

	// ---- Job 2: multi-round budgeted merge schedule ------------------
	candidates := make([]*points.Block, 0, len(res.Blocks))
	for _, id := range sortedBlockIDs(res.Blocks) {
		candidates = append(candidates, res.Blocks[id])
	}
	mergeCtx, mergeSpan := telemetry.StartSpan(ctx, "merge-schedule")
	globalBlk, err := mergeSchedule(mergeCtx, candidates, dim, budget, opts, stats)
	mergeSpan.End()
	if err != nil {
		return nil, nil, err
	}
	var global points.Set
	if globalBlk != nil {
		global = globalBlk.ToSet()
	}

	stats.PartitionJob = res.Timing
	stats.Timing = res.Timing
	stats.Counters = res.Counters.Snapshot()
	if reg := opts.Metrics; reg != nil {
		reg.Gauge("skyline_global_size").Set(float64(len(global)))
	}
	feedRecorder(ctx, opts, stats, global, res.Partitions)
	return global, stats, nil
}

// mergeSchedule folds the local skyline blocks to the global skyline in
// rounds: each round greedily packs consecutive candidate blocks into
// groups of at most the byte budget and reduces every group to its
// skyline through a BudgetedFold, so no round holds more than ~budget
// bytes resident per group — the MRC memory constraint. Rounds repeat
// until one group remains. When every candidate alone exceeds the budget
// the greedy packing makes no progress, so the round falls back to
// pairwise grouping; the folds then multi-pass internally, and the group
// count still halves — termination is unconditional.
func mergeSchedule(ctx context.Context, candidates []*points.Block, dim int, budget int64, opts Options, stats *Stats) (*points.Block, error) {
	if len(candidates) == 0 {
		return nil, nil
	}
	rec := telemetry.RecorderFrom(ctx)
	for round := 1; len(candidates) > 1 || round == 1; round++ {
		var groups [][]*points.Block
		var cur []*points.Block
		var curBytes int64
		for _, blk := range candidates {
			b := int64(blk.Len()) * int64(dim) * 8
			if len(cur) > 0 && curBytes+b > budget {
				groups = append(groups, cur)
				cur, curBytes = nil, 0
			}
			cur = append(cur, blk)
			curBytes += b
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
		if len(groups) >= len(candidates) && len(candidates) > 1 {
			groups = groups[:0]
			for i := 0; i < len(candidates); i += 2 {
				hi := min(i+2, len(candidates))
				groups = append(groups, candidates[i:hi])
			}
		}
		var roundBytes int64
		next := make([]*points.Block, 0, len(groups))
		for _, g := range groups {
			fold := skyline.NewBudgetedFold(dim, budget, opts.SpillDir, opts.Codec)
			for _, blk := range g {
				roundBytes += int64(blk.Len()) * int64(dim) * 8
				if err := fold.Absorb(blk); err != nil {
					return nil, err
				}
			}
			out, err := fold.Finish()
			if err != nil {
				return nil, err
			}
			fs := fold.Stats()
			if fs.PeakBytes > stats.ReducerPeakBytes {
				stats.ReducerPeakBytes = fs.PeakBytes
			}
			if fs.Passes > stats.MergePasses {
				stats.MergePasses = fs.Passes
			}
			next = append(next, out)
		}
		stats.MergeRounds++
		stats.MergeRoundBytes = append(stats.MergeRoundBytes, roundBytes)
		rec.AddMergeRound(roundBytes)
		candidates = next
	}
	return candidates[0], nil
}
