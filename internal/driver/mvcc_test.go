package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/qws"
	"repro/internal/sequencefile"
	"repro/internal/skyline"
)

// isSkyline reports whether the set is mutually non-dominated under the
// index's duplicate-preserving convention.
func isSkyline(s points.Set) bool {
	for i, p := range s {
		for j, q := range s {
			if i != j && dominatesStrict(q, p) {
				return false
			}
		}
	}
	return true
}

// TestFoldBatchOneEpoch: a batch of K publishes installs exactly one new
// epoch, and every pending is answered after that epoch is visible.
func TestFoldBatchOneEpoch(t *testing.T) {
	ix, err := BuildIndex(context.Background(), qws.Dataset(31, 500, 4), Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Epoch()
	adds := qws.Dataset(32, 64, 4)
	batch := make([]*pending, len(adds))
	for i, p := range adds {
		batch[i] = &pending{p: p, done: make(chan addResult, 1)}
	}
	ix.foldBatch(batch)
	for i, pd := range batch {
		res := <-pd.done
		if res.err != nil {
			t.Fatalf("pending %d: %v", i, res.err)
		}
		if res.tests <= 0 || res.candidates <= 0 {
			t.Errorf("pending %d: no attributed cost: %+v", i, res)
		}
	}
	if got := ix.Epoch(); got != before+1 {
		t.Errorf("epoch %d after one batch, want %d", got, before+1)
	}
	var all points.Set
	all = append(all, qws.Dataset(31, 500, 4)...)
	all = append(all, adds...)
	if !sameMultiset(ix.Global(), skyline.BNL(all)) {
		t.Error("batched fold diverged from BNL oracle")
	}
}

// TestPipelineGroupCommit: with the pipeline running, an acknowledged
// Add is immediately visible in the next View, and the final state
// matches the BNL oracle. Also exercises Barrier and Close draining.
func TestPipelineGroupCommit(t *testing.T) {
	seed := qws.Dataset(33, 300, 3)
	ix, err := BuildIndex(context.Background(), seed, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.StartPipeline(64, 16); err != nil {
		t.Fatal(err)
	}
	if err := ix.StartPipeline(64, 16); err == nil {
		t.Error("second StartPipeline accepted")
	}
	defer ix.Close()

	// Group commit: the hero point strictly dominates everything, so once
	// its Add returns it must be the entire global skyline in any
	// subsequent view — no "acknowledged but not yet folded" window.
	var wg sync.WaitGroup
	adds := qws.Dataset(34, 200, 3)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(adds); i += 4 {
				if _, _, err := ix.Add(adds[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hero := points.Point{-1, -1, -1}
	_, in, err := ix.Add(hero)
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Fatal("hero not in skyline")
	}
	v := ix.View()
	if len(v.Global()) != 1 || !v.Global()[0].Equal(hero) {
		t.Errorf("after acked hero publish, global = %d points", len(v.Global()))
	}

	// Async adds are flushed by Barrier.
	late := points.Point{-2, -2, -2}
	ix.AddAsync(late)
	ix.Barrier()
	if g := ix.View().Global(); len(g) != 1 || !g[0].Equal(late) {
		t.Errorf("after AddAsync+Barrier, global = %v", g)
	}

	ix.Close()
	ix.Close() // idempotent
	// Post-close adds fall back to the synchronous path.
	later := points.Point{-3, -3, -3}
	if _, in, err := ix.Add(later); err != nil || !in {
		t.Fatalf("post-close add: in=%v err=%v", in, err)
	}
	if g := ix.View().Global(); len(g) != 1 || !g[0].Equal(later) {
		t.Errorf("post-close global = %v", g)
	}
}

// TestMVCCSoak is the -race soak: concurrent batched publishes, snapshot
// reads and explain queries. Readers assert that epochs only move
// forward and that no view is ever half-installed — every observed
// global is mutually non-dominated AND exactly the merge of the same
// view's local skylines (a torn install would break one of the two).
// After the dust settles, the index must equal the BNL oracle over
// everything published.
func TestMVCCSoak(t *testing.T) {
	const (
		writers   = 4
		readers   = 3
		perWriter = 150
	)
	seed := qws.Dataset(35, 400, 3)
	ix, err := BuildIndex(context.Background(), seed, Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.StartPipeline(128, 32); err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	// Writers: a mix of synchronous group-committed Adds and async ones.
	published := make([]points.Set, writers)
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			pts := qws.Dataset(int64(36+w), perWriter, 3)
			published[w] = pts
			for i, p := range pts {
				if i%3 == 0 {
					ix.AddAsync(p)
				} else if _, _, err := ix.Add(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Readers: spin views, checking monotonicity and self-consistency.
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			var lastEpoch uint64
			for i := 0; !stop.Load(); i++ {
				v := ix.View()
				if e := v.Epoch(); e < lastEpoch {
					t.Errorf("reader %d: epoch went backwards %d → %d", r, lastEpoch, e)
					return
				} else {
					lastEpoch = e
				}
				switch rng.Intn(10) {
				case 0:
					// Full consistency audit of this view: the global is a
					// skyline and equals the merge of the view's own locals.
					if !isSkyline(v.Global()) {
						t.Errorf("reader %d: view global not mutually non-dominated", r)
						return
					}
					merged, _ := ExplainMerge("soak", viewLocals(v))
					if !sameMultiset(merged, v.Global()) {
						t.Errorf("reader %d: view global != merge of view locals (torn install?)", r)
						return
					}
				case 1:
					sky, ex := ix.Explain(context.Background())
					if ex.ResultSize != len(sky) || !isSkyline(sky) {
						t.Errorf("reader %d: explain inconsistent", r)
						return
					}
				default:
					if len(v.Global()) == 0 {
						t.Errorf("reader %d: empty global", r)
						return
					}
				}
			}
		}(r)
	}

	writerWG.Wait()
	ix.Barrier() // flush the async tail before the oracle comparison
	stop.Store(true)
	readerWG.Wait()

	var all points.Set
	all = append(all, seed...)
	for _, pts := range published {
		all = append(all, pts...)
	}
	if !sameMultiset(ix.Global(), skyline.BNL(all)) {
		t.Error("soak end state diverged from BNL oracle")
	}
}

func viewLocals(v View) map[int]points.Set {
	out := make(map[int]points.Set)
	for id := 0; id < v.Partitions(); id++ {
		if ls := v.Local(id); len(ls) > 0 {
			out[id] = ls
		}
	}
	return out
}

// TestSnapshotV2CarriesEpoch: a saved index resumes at its saved epoch
// with its exact shard layout, and the v2 header is well-formed.
func TestSnapshotV2CarriesEpoch(t *testing.T) {
	ix, err := BuildIndex(context.Background(), qws.Dataset(40, 800, 4), Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range qws.Dataset(41, 60, 4) {
		if _, _, err := ix.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := ix.SnapshotBytes()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sequencefile.ReadAll(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	var meta snapshotMeta
	if err := json.Unmarshal(recs[0].Value, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Version != 2 || meta.Epoch != ix.Epoch() || meta.Scheme == "" || len(meta.Shards) == 0 {
		t.Fatalf("v2 header incomplete: %+v (index epoch %d)", meta, ix.Epoch())
	}
	restored, err := LoadIndex(context.Background(), bytes.NewReader(blob), Options{Scheme: partition.Angular})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != ix.Epoch() {
		t.Errorf("restored epoch %d, want %d", restored.Epoch(), ix.Epoch())
	}
	if !sameMultiset(restored.Global(), ix.Global()) || restored.Size() != ix.Size() {
		t.Error("restored state differs from saved state")
	}
	for id := 0; id < ix.Partitions(); id++ {
		if !sameMultiset(restored.LocalSkyline(id), ix.LocalSkyline(id)) {
			t.Errorf("shard %d differs after restore", id)
		}
	}

	// A tampered shard manifest must be rejected.
	meta.Shards["0"]++
	hdr, _ := json.Marshal(meta)
	var buf bytes.Buffer
	sw := sequencefile.NewWriter(&buf)
	if err := sw.Append([]byte("meta"), hdr); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[1:] {
		if err := sw.Append(rec.Key, rec.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(context.Background(), bytes.NewReader(buf.Bytes()), Options{Scheme: partition.Angular}); err == nil {
		t.Error("tampered shard manifest accepted")
	}
}

// TestSnapshotV1Restore: the restore path still accepts version-1 files
// (no epoch, no shard manifest) and restarts the epoch clock.
func TestSnapshotV1Restore(t *testing.T) {
	// Hand-write a v1 snapshot: {version:1} header, then tagged points.
	local := map[int]points.Set{
		0: {points.Point{1, 5}, points.Point{2, 4}},
		3: {points.Point{5, 1}, points.Point{3, 3}},
	}
	hdr, err := json.Marshal(snapshotMeta{Version: 1, Dim: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sw := sequencefile.NewWriter(&buf)
	if err := sw.Append([]byte("meta"), hdr); err != nil {
		t.Fatal(err)
	}
	for id, ls := range local {
		for _, p := range ls {
			if err := sw.Append([]byte(fmt.Sprint(id)), points.Encode(p)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}

	ix, err := LoadIndex(context.Background(), bytes.NewReader(buf.Bytes()), Options{Scheme: partition.Angular, Partitions: 4})
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if ix.Epoch() != 1 {
		t.Errorf("v1 restore epoch %d, want 1", ix.Epoch())
	}
	var union points.Set
	for _, ls := range local {
		union = append(union, ls...)
	}
	if !sameMultiset(ix.Global(), skyline.BNL(union)) {
		t.Error("v1 restored global diverges from oracle")
	}
	for id, ls := range local {
		if !sameMultiset(ix.LocalSkyline(id), ls) {
			t.Errorf("v1 restore: shard %d lost its partition tag", id)
		}
	}
	// Future versions stay rejected.
	hdr, _ = json.Marshal(snapshotMeta{Version: 3, Dim: 2, Partitions: 4})
	buf.Reset()
	sw = sequencefile.NewWriter(&buf)
	_ = sw.Append([]byte("meta"), hdr)
	_ = sw.Append([]byte("0"), points.Encode(points.Point{1, 2}))
	_ = sw.Flush()
	if _, err := LoadIndex(context.Background(), bytes.NewReader(buf.Bytes()), Options{}); err == nil {
		t.Error("future snapshot version accepted")
	}
}
