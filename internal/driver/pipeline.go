package driver

import (
	"fmt"
	"sync"

	"repro/internal/points"
)

// The publish pipeline batches concurrent Adds into group commits: a
// bounded queue feeds one coalescing worker that drains whatever is
// waiting (up to maxBatch), folds the whole batch copy-on-write, and
// installs a single new epoch. Under concurrent publish load this
// amortizes the global re-merge and the shard/tree rebuild across the
// batch — one epoch per batch instead of one per point — while keeping
// Add's synchronous contract: each caller blocks on its own result
// channel until its batch's epoch is installed, so an acknowledged
// publish is always visible (group commit, exactly as in a WAL'd
// database). AddAsync is the fire-and-forget variant; Barrier flushes.

// DefaultPublishQueue and DefaultPublishBatch size the pipeline when the
// caller passes non-positive values to StartPipeline.
const (
	DefaultPublishQueue = 1024
	DefaultPublishBatch = 256
)

type pipeline struct {
	ix       *Index
	ch       chan *pending
	maxBatch int

	// closing guards the channel against send-after-close: submitters
	// hold the read side around their send, Close takes the write side
	// before closing the channel. A closed pipeline turns submit into a
	// no-op (callers fall back to the synchronous fold).
	closing sync.RWMutex
	closed  bool
	done    chan struct{}
}

// StartPipeline switches the index into batched publish mode with the
// given queue depth and maximum batch size (non-positive values select
// the defaults). It is an error to start a second pipeline without
// closing the first. The worker goroutine exits on Close.
func (ix *Index) StartPipeline(queue, maxBatch int) error {
	if queue <= 0 {
		queue = DefaultPublishQueue
	}
	if maxBatch <= 0 {
		maxBatch = DefaultPublishBatch
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.pipe.Load() != nil {
		return fmt.Errorf("driver: publish pipeline already running")
	}
	p := &pipeline{
		ix:       ix,
		ch:       make(chan *pending, queue),
		maxBatch: maxBatch,
		done:     make(chan struct{}),
	}
	ix.pipe.Store(p)
	go p.run()
	return nil
}

// Close drains and stops the publish pipeline (a no-op when none is
// running). Every publish accepted before Close returns is folded and
// acknowledged; later Adds fall back to the synchronous path.
func (ix *Index) Close() {
	p := ix.pipe.Load()
	if p == nil {
		return
	}
	p.closing.Lock()
	if p.closed {
		p.closing.Unlock()
		return
	}
	p.closed = true
	close(p.ch)
	p.closing.Unlock()
	<-p.done
	ix.pipe.Store(nil)
}

// submit enqueues one point and waits for its batch to commit. ok is
// false when the pipeline is closed (the caller should fold directly).
func (p *pipeline) submit(pt points.Point) (addResult, bool) {
	pd := &pending{p: pt, done: make(chan addResult, 1)}
	p.closing.RLock()
	if p.closed {
		p.closing.RUnlock()
		return addResult{}, false
	}
	p.ch <- pd
	p.closing.RUnlock()
	return <-pd.done, true
}

// AddAsync enqueues a publish without waiting for its commit; the result
// is discarded (the done channel is buffered, so the fold never blocks
// on an absent receiver). Callers needing a visibility point use
// Barrier. Without a running pipeline it degrades to a synchronous Add.
func (ix *Index) AddAsync(p points.Point) {
	pd := &pending{p: p, done: make(chan addResult, 1)}
	if pipe := ix.pipe.Load(); pipe != nil {
		pipe.closing.RLock()
		if !pipe.closed {
			pipe.ch <- pd
			pipe.closing.RUnlock()
			return
		}
		pipe.closing.RUnlock()
	}
	ix.foldBatch([]*pending{pd})
	<-pd.done
}

// Barrier blocks until every publish enqueued before the call has
// committed — the flush-on-query-barrier hook that keeps tests
// deterministic with async publishers. Implemented as a group-committed
// no-op ride-along: a zero-point pending joins the queue and its ack
// implies all earlier queue entries committed first (single worker,
// FIFO drain).
func (ix *Index) Barrier() {
	pipe := ix.pipe.Load()
	if pipe == nil {
		return
	}
	pd := &pending{done: make(chan addResult, 1)}
	pipe.closing.RLock()
	if pipe.closed {
		pipe.closing.RUnlock()
		return
	}
	pipe.ch <- pd
	pipe.closing.RUnlock()
	<-pd.done
}

// run is the coalescing worker: block for one pending, drain whatever
// else is already queued (up to maxBatch), fold the batch as one epoch.
// Barrier pendings (nil point) are separated out before the fold and
// acknowledged after it — everything queued before a barrier commits
// first (single worker, FIFO drain).
func (p *pipeline) run() {
	defer close(p.done)
	batch := make([]*pending, 0, p.maxBatch)
	barriers := make([]*pending, 0, 4)
	flush := func() {
		if len(batch) > 0 {
			p.ix.foldBatch(batch)
		}
		for _, b := range barriers {
			b.done <- addResult{}
		}
		batch, barriers = batch[:0], barriers[:0]
	}
	take := func(pd *pending) {
		if pd.p == nil {
			barriers = append(barriers, pd)
		} else {
			batch = append(batch, pd)
		}
	}
	for pd := range p.ch {
		take(pd)
	drain:
		for len(batch) < p.maxBatch {
			select {
			case more, open := <-p.ch:
				if !open {
					flush()
					return
				}
				take(more)
			default:
				break drain
			}
		}
		flush()
	}
	flush()
}
