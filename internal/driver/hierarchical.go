package driver

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/mapreduce"
	"repro/internal/points"
)

// The paper notes (§II) that when the number of services is too large for
// a single merge, "the MapReduce solution can even be applied iteratively
// using the Twister [iterative MapReduce] support". hierarchicalMerge
// implements that extension: instead of one reducer folding every local
// skyline point, merging proceeds in rounds — round r groups the current
// candidate partitions into batches of fanIn and reduces each batch to its
// skyline in parallel — until a single group remains. The final round is
// exactly the paper's merging job; earlier rounds only shrink its input.

// hierarchicalMerge runs iterative merge rounds over the local skyline
// pairs (partition key → encoded point) and returns the global skyline.
// Each round is one MapReduce job; timings accumulate into total. reducer
// is the per-group skyline reducer built by skylineReducer — flat or
// classic, matching the partitioning job's kernel path.
func hierarchicalMerge(ctx context.Context, opts Options, pairs []mapreduce.Pair, reducer mapreduce.Reducer, total *mapreduce.Timing) (points.Set, error) {
	fanIn := opts.MergeFanIn
	if fanIn < 2 {
		fanIn = 8
	}
	// Current grouping: map original partition keys to dense group ids.
	groupOf := make(map[string]int)
	for _, p := range pairs {
		if _, ok := groupOf[p.Key]; !ok {
			groupOf[p.Key] = len(groupOf)
		}
	}
	groups := len(groupOf)
	if groups == 0 {
		return nil, nil
	}

	round := 0
	for {
		round++
		nextGroups := (groups + fanIn - 1) / fanIn
		mapper := mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			// Records are prefixed with their current group id.
			gid, body, err := splitGroupRecord(rec)
			if err != nil {
				return err
			}
			emit(strconv.Itoa(gid/fanIn), body)
			return nil
		})

		input := make([][]byte, 0, len(pairs))
		for _, p := range pairs {
			gid, ok := groupOf[p.Key]
			if !ok {
				return nil, fmt.Errorf("driver: hierarchical merge lost key %q", p.Key)
			}
			input = append(input, joinGroupRecord(gid, p.Value))
		}
		cfg := mapreduce.Config{
			Name:     fmt.Sprintf("%s-merge-round%d", opts.Scheme, round),
			Workers:  opts.Workers,
			Reducers: minInt(opts.Workers, nextGroups),
			SpillDir: opts.SpillDir,
			Metrics:  opts.Metrics,
			Trace:    traceSink(ctx),
		}
		res, err := mapreduce.Run(ctx, cfg, input, mapper, reducer)
		if err != nil {
			return nil, err
		}
		total.Add(res.Timing)

		if nextGroups <= 1 {
			out := make(points.Set, 0, len(res.Pairs))
			for _, p := range res.Pairs {
				pt, err := points.Decode(p.Value)
				if err != nil {
					return nil, err
				}
				out = append(out, pt)
			}
			return out, nil
		}
		// Prepare next round: the reducer emitted new group keys.
		pairs = res.Pairs
		groupOf = make(map[string]int)
		for _, p := range pairs {
			gid, err := strconv.Atoi(p.Key)
			if err != nil {
				return nil, fmt.Errorf("driver: bad merge group key %q", p.Key)
			}
			groupOf[p.Key] = gid
		}
		groups = nextGroups
	}
}

// joinGroupRecord prefixes an encoded point with its group id.
func joinGroupRecord(gid int, body []byte) []byte {
	s := strconv.Itoa(gid)
	out := make([]byte, 0, len(s)+1+len(body))
	out = append(out, s...)
	out = append(out, ':')
	out = append(out, body...)
	return out
}

// splitGroupRecord parses a record produced by joinGroupRecord.
func splitGroupRecord(rec []byte) (int, []byte, error) {
	for i, b := range rec {
		if b == ':' {
			gid, err := strconv.Atoi(string(rec[:i]))
			if err != nil {
				return 0, nil, fmt.Errorf("driver: bad group prefix %q", rec[:i])
			}
			return gid, rec[i+1:], nil
		}
		if b < '0' || b > '9' {
			break
		}
	}
	return 0, nil, fmt.Errorf("driver: malformed group record")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
