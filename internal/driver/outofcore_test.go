package driver

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// canonicalSet renders a point set as sorted hex rows for multiset
// comparison.
func canonicalSet(s points.Set) []string {
	rows := make([]string, len(s))
	for i, p := range s {
		rows[i] = fmt.Sprintf("%x", []float64(p))
	}
	sort.Strings(rows)
	return rows
}

// TestComputeStreamOracle: the out-of-core pipeline over a chunk source
// must produce exactly the in-memory pipeline's skyline over the
// materialized equivalent, under both a generous and a tiny reducer
// budget (the latter forcing multi-pass folds and multi-round merges).
func TestComputeStreamOracle(t *testing.T) {
	const n, d = 6000, 4
	for _, kind := range []dataset.Kind{dataset.KindAnticorrelated, dataset.KindCorrelated} {
		src, err := dataset.NewSource(kind, 11, n, d, 500)
		if err != nil {
			t.Fatal(err)
		}
		// Materialize the same rows for the oracle.
		var data points.Set
		if err := src.Stream(func(blk *points.Block) error {
			data = append(data, blk.ToSet()...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		oracle, _, err := Compute(context.Background(), data,
			Options{Scheme: partition.Angular, Nodes: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := canonicalSet(oracle)

		for _, tc := range []struct {
			name   string
			budget int64
		}{
			{"ample", 1 << 24},
			{"tiny", d * 8 * 16}, // 16-row windows force spill passes
		} {
			t.Run(fmt.Sprintf("%s-%s", kind, tc.name), func(t *testing.T) {
				rec := telemetry.NewRecorder("stream-test")
				ctx := telemetry.WithRecorder(context.Background(), rec)
				got, stats, err := ComputeStream(ctx, src, Options{
					Scheme: partition.Angular, Nodes: 2,
					SpillDir:           t.TempDir(),
					Codec:              points.FrameAuto,
					ReducerBudgetBytes: tc.budget,
				})
				if err != nil {
					t.Fatalf("ComputeStream: %v", err)
				}
				gotRows := canonicalSet(got)
				if len(gotRows) != len(want) {
					t.Fatalf("skyline size %d, want %d", len(gotRows), len(want))
				}
				for i := range want {
					if gotRows[i] != want[i] {
						t.Fatalf("skyline row %d differs", i)
					}
				}
				if stats.ReducerPeakBytes <= 0 {
					t.Fatal("ReducerPeakBytes not recorded")
				}
				if stats.MergeRounds < 1 {
					t.Fatalf("MergeRounds = %d, want >= 1", stats.MergeRounds)
				}
				if len(stats.MergeRoundBytes) != stats.MergeRounds {
					t.Fatalf("MergeRoundBytes len %d != rounds %d",
						len(stats.MergeRoundBytes), stats.MergeRounds)
				}
				total := 0
				for _, c := range stats.PartitionCounts {
					total += c
				}
				if total != n {
					t.Fatalf("partition counts sum %d, want %d", total, n)
				}
				rep := rec.Report()
				if rep.MergeRounds != stats.MergeRounds {
					t.Fatalf("recorder rounds %d, stats %d", rep.MergeRounds, stats.MergeRounds)
				}
				if rep.ReducerPeakBytes != stats.ReducerPeakBytes {
					t.Fatalf("recorder peak %d, stats %d", rep.ReducerPeakBytes, stats.ReducerPeakBytes)
				}
				if kind == dataset.KindAnticorrelated && tc.budget < 1<<12 && stats.MergePasses < 2 {
					t.Fatalf("tiny budget on anticorrelated resolved in %d pass(es)", stats.MergePasses)
				}
			})
		}
	}
}

// TestComputeBudgetedOracle: Compute with a reducer budget must match
// unbudgeted Compute exactly.
func TestComputeBudgetedOracle(t *testing.T) {
	data := dataset.Anticorrelated(5, 3000, 4)
	want, _, err := Compute(context.Background(), data,
		Options{Scheme: partition.Angular, Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1 << 24, 4 * 8 * 16} {
		got, stats, err := Compute(context.Background(), data, Options{
			Scheme: partition.Angular, Nodes: 2,
			SpillDir:           t.TempDir(),
			Codec:              points.FrameAuto,
			ReducerBudgetBytes: budget,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		w, g := canonicalSet(want), canonicalSet(got)
		if len(w) != len(g) {
			t.Fatalf("budget %d: skyline size %d, want %d", budget, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("budget %d: row %d differs", budget, i)
			}
		}
		if stats.ReducerPeakBytes <= 0 {
			t.Fatalf("budget %d: peak not recorded", budget)
		}
	}
}

// TestMergeScheduleRounds: a budget smaller than the candidate volume
// must force more than one merge round, and the round-bytes trail must
// shrink monotonically toward the final round.
func TestMergeScheduleRounds(t *testing.T) {
	const d = 3
	// 16 candidate "local skylines" of 32 rows each; budget fits ~2 blocks.
	candidates := make([]*points.Block, 16)
	for i := range candidates {
		blk := points.NewBlock(d, 32)
		for r := 0; r < 32; r++ {
			// Rows on a shifted anti-diagonal: most survive merging.
			v := float64(r)/32 + float64(i)*1e-4
			blk.AppendRow([]float64{v, 1 - v, float64(i) / 16})
		}
		candidates[i] = blk
	}
	stats := &Stats{}
	budget := int64(2*32*d*8 + 1)
	out, err := mergeSchedule(context.Background(), candidates, d, budget,
		Options{SpillDir: t.TempDir(), Codec: points.FrameAuto}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || out.Len() == 0 {
		t.Fatal("empty merge output")
	}
	if stats.MergeRounds < 2 {
		t.Fatalf("MergeRounds = %d, want >= 2 under tight budget", stats.MergeRounds)
	}
	for i := 1; i < len(stats.MergeRoundBytes); i++ {
		if stats.MergeRoundBytes[i] > stats.MergeRoundBytes[i-1] {
			t.Fatalf("round bytes grew: %v", stats.MergeRoundBytes)
		}
	}
	// Single empty-candidate edge.
	if blk, err := mergeSchedule(context.Background(), nil, d, budget, Options{}, &Stats{}); err != nil || blk != nil {
		t.Fatalf("nil candidates: blk=%v err=%v", blk, err)
	}
}
