package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/sequencefile"
)

// Index snapshots let a long-running registry restart without recomputing
// its skyline from the full service catalogue: the persisted state is the
// partitioner-defining options plus every partition's local skyline —
// exactly the working set the incremental index keeps in memory.
//
// Format: a sequencefile whose first record is ("meta", JSON header) and
// whose remaining records are (partition-id, encoded point), one per local
// skyline member.
//
// Version history:
//
//	v1 — {version, dim, partitions}; restore recomputes everything.
//	v2 — adds the serving core's epoch and the partitioning scheme, plus
//	     the per-shard record counts, so a restored index resumes at the
//	     epoch it was saved at and the restore path can sanity-check the
//	     shard layout without re-running a MapReduce job.
//
// LoadIndex accepts both: the record stream is identical, v1 files simply
// restart the epoch clock at 1.

// snapshotMeta is the JSON header of a snapshot.
type snapshotMeta struct {
	Version    int    `json:"version"`
	Dim        int    `json:"dim"`
	Partitions int    `json:"partitions"`
	Epoch      uint64 `json:"epoch,omitempty"`  // v2
	Scheme     string `json:"scheme,omitempty"` // v2
	// Shards records each persisted shard's size (partition id → point
	// count), letting restore verify it reassembled exactly the saved
	// layout. v2 only.
	Shards map[string]int `json:"shards,omitempty"`
}

const snapshotVersion = 2

// Save writes the index's state: options header plus all local skyline
// points tagged with their partition. The write runs entirely on an
// epoch snapshot (one atomic load), so it never blocks publishes — a
// live registry can checkpoint under full write load.
//
// Restoring builds a partitioner from the *restored* union of local
// skylines. Because every retained point keeps its partition tag, restore
// does not depend on the rebuilt partitioner agreeing with the original
// for old points; only *future* Add calls use it, and any consistent
// partitioning keeps the index correct (local skylines merely stop being
// aligned with the original sector boundaries, costing balance, not
// correctness).
func (ix *Index) Save(w io.Writer) error {
	v := ix.View()
	local := v.locals()

	dim := 0
	for _, ls := range local {
		if len(ls) > 0 {
			dim = ls[0].Dim()
			break
		}
	}
	if dim == 0 {
		return fmt.Errorf("driver: cannot snapshot an empty index")
	}
	ids := make([]int, 0, len(local))
	shardSizes := make(map[string]int, len(local))
	for id := range local {
		ids = append(ids, id)
		shardSizes[strconv.Itoa(id)] = len(local[id])
	}
	sort.Ints(ids)

	meta := snapshotMeta{
		Version:    snapshotVersion,
		Dim:        dim,
		Partitions: ix.part.Partitions(),
		Epoch:      v.Epoch(),
		Scheme:     ix.scheme.String(),
		Shards:     shardSizes,
	}
	hdr, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	sw := sequencefile.NewWriter(w)
	if err := sw.Append([]byte("meta"), hdr); err != nil {
		return err
	}
	// Deterministic order: partitions ascending, points in stored order.
	for _, id := range ids {
		key := []byte(strconv.Itoa(id))
		for _, p := range local[id] {
			if err := sw.Append(key, points.Encode(p)); err != nil {
				return err
			}
		}
	}
	return sw.Flush()
}

// LoadIndex restores an index from a snapshot (v1 or v2). opts selects
// the partitioner for future additions (typically the same options the
// index was built with); the snapshot's partition tags are preserved for
// the restored points. A v2 snapshot resumes at its saved epoch; a v1
// snapshot restarts the epoch clock.
func LoadIndex(ctx context.Context, r io.Reader, opts Options) (*Index, error) {
	recs, err := sequencefile.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("driver: reading snapshot: %w", err)
	}
	if len(recs) == 0 || string(recs[0].Key) != "meta" {
		return nil, fmt.Errorf("driver: snapshot missing meta header")
	}
	var meta snapshotMeta
	if err := json.Unmarshal(recs[0].Value, &meta); err != nil {
		return nil, fmt.Errorf("driver: snapshot meta: %w", err)
	}
	if meta.Version < 1 || meta.Version > snapshotVersion {
		return nil, fmt.Errorf("driver: snapshot version %d, want 1..%d", meta.Version, snapshotVersion)
	}
	local := make(map[int]points.Set)
	var union points.Set
	for _, rec := range recs[1:] {
		id, err := strconv.Atoi(string(rec.Key))
		if err != nil {
			return nil, fmt.Errorf("driver: snapshot partition key %q", rec.Key)
		}
		p, err := points.Decode(rec.Value)
		if err != nil {
			return nil, err
		}
		if p.Dim() != meta.Dim {
			return nil, fmt.Errorf("driver: snapshot point dim %d, want %d", p.Dim(), meta.Dim)
		}
		local[id] = append(local[id], p)
		union = append(union, p)
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("driver: snapshot holds no points")
	}
	if meta.Version >= 2 {
		for key, want := range meta.Shards {
			id, err := strconv.Atoi(key)
			if err != nil {
				return nil, fmt.Errorf("driver: snapshot shard key %q", key)
			}
			if got := len(local[id]); got != want {
				return nil, fmt.Errorf("driver: snapshot shard %d holds %d points, header says %d", id, got, want)
			}
		}
		if len(local) != len(meta.Shards) {
			return nil, fmt.Errorf("driver: snapshot holds %d shards, header says %d", len(local), len(meta.Shards))
		}
	}

	// Rebuild the serving state directly — no MapReduce job needed: the
	// persisted locals ARE the working set, and the global skyline is one
	// kernel pass over their (small) union.
	opts = opts.withDefaults()
	part, err := partition.New(opts.Scheme, union, opts.Partitions)
	if err != nil {
		return nil, err
	}
	epoch := meta.Epoch
	if epoch == 0 {
		epoch = 1
	}
	ix := &Index{
		scheme: opts.Scheme,
		part:   part,
		dim:    meta.Dim,
	}
	ix.install(epoch, local, opts.kernelFunc()(union))
	return ix, nil
}

// SnapshotBytes is a convenience wrapper returning the serialized index.
func (ix *Index) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
