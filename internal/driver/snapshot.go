package driver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/points"
	"repro/internal/sequencefile"
)

// Index snapshots let a long-running registry restart without recomputing
// its skyline from the full service catalogue: the persisted state is the
// partitioner-defining options plus every partition's local skyline —
// exactly the working set the incremental index keeps in memory.
//
// Format: a sequencefile whose first record is ("meta", JSON header) and
// whose remaining records are (partition-id, encoded point), one per local
// skyline member.

// snapshotMeta is the JSON header of a snapshot.
type snapshotMeta struct {
	Version    int `json:"version"`
	Dim        int `json:"dim"`
	Partitions int `json:"partitions"`
}

const snapshotVersion = 1

// Save writes the index's state: options header plus all local skyline
// points tagged with their partition.
//
// Restoring builds a partitioner from the *restored* union of local
// skylines. Because every retained point keeps its partition tag, restore
// does not depend on the rebuilt partitioner agreeing with the original
// for old points; only *future* Add calls use it, and any consistent
// partitioning keeps the index correct (local skylines merely stop being
// aligned with the original sector boundaries, costing balance, not
// correctness).
func (ix *Index) Save(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	dim := 0
	for _, ls := range ix.local {
		if len(ls) > 0 {
			dim = ls[0].Dim()
			break
		}
	}
	if dim == 0 {
		return fmt.Errorf("driver: cannot snapshot an empty index")
	}
	meta := snapshotMeta{
		Version:    snapshotVersion,
		Dim:        dim,
		Partitions: ix.part.Partitions(),
	}
	hdr, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	sw := sequencefile.NewWriter(w)
	if err := sw.Append([]byte("meta"), hdr); err != nil {
		return err
	}
	// Deterministic order: partitions ascending, points in stored order.
	ids := make([]int, 0, len(ix.local))
	for id := range ix.local {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		key := []byte(strconv.Itoa(id))
		for _, p := range ix.local[id] {
			if err := sw.Append(key, points.Encode(p)); err != nil {
				return err
			}
		}
	}
	return sw.Flush()
}

// LoadIndex restores an index from a snapshot. opts selects the
// partitioner for future additions (typically the same options the index
// was built with); the snapshot's partition tags are preserved for the
// restored points.
func LoadIndex(ctx context.Context, r io.Reader, opts Options) (*Index, error) {
	recs, err := sequencefile.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("driver: reading snapshot: %w", err)
	}
	if len(recs) == 0 || string(recs[0].Key) != "meta" {
		return nil, fmt.Errorf("driver: snapshot missing meta header")
	}
	var meta snapshotMeta
	if err := json.Unmarshal(recs[0].Value, &meta); err != nil {
		return nil, fmt.Errorf("driver: snapshot meta: %w", err)
	}
	if meta.Version != snapshotVersion {
		return nil, fmt.Errorf("driver: snapshot version %d, want %d", meta.Version, snapshotVersion)
	}
	local := make(map[int]points.Set)
	var union points.Set
	for _, rec := range recs[1:] {
		id, err := strconv.Atoi(string(rec.Key))
		if err != nil {
			return nil, fmt.Errorf("driver: snapshot partition key %q", rec.Key)
		}
		p, err := points.Decode(rec.Value)
		if err != nil {
			return nil, err
		}
		if p.Dim() != meta.Dim {
			return nil, fmt.Errorf("driver: snapshot point dim %d, want %d", p.Dim(), meta.Dim)
		}
		local[id] = append(local[id], p)
		union = append(union, p)
	}
	if len(union) == 0 {
		return nil, fmt.Errorf("driver: snapshot holds no points")
	}
	opts = opts.withDefaults()
	ix, err := BuildIndex(ctx, union, opts)
	if err != nil {
		return nil, err
	}
	// Replace the rebuilt local map with the persisted partition tags so
	// the restored index is exactly the saved one.
	ix.mu.Lock()
	ix.local = local
	ix.global = opts.kernelFunc()(union)
	ix.mu.Unlock()
	return ix, nil
}

// SnapshotBytes is a convenience wrapper returning the serialized index.
func (ix *Index) SnapshotBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
