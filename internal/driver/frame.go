package driver

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

// computeFramed is Compute's default flat-path body: the same two-job
// pipeline routed through the block-framed shuffle. Points travel as
// packed frames keyed by integer partition id — no string keys, no
// per-point Pair allocation — the local-skyline combiner runs directly
// on each assembled block before its frame is sealed, and reducers
// ingest whole frames into contiguous blocks. Occupancy counting, grid
// pruning, spilling and the hierarchical merge all behave exactly as on
// the classic path.
func computeFramed(ctx context.Context, data points.Set, opts Options, part partition.Partitioner, pruned []bool, stats *Stats) (points.Set, *Stats, error) {
	blockKernel := skyline.BlockByAlgorithm(opts.Kernel)

	// ---- Job 1: Partitioning Job ------------------------------------
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}

	occCounts := make([]int64, part.Partitions())
	scratch := sync.Pool{New: func() any {
		p := make(points.Point, 0, data.Dim())
		return &p
	}}
	mapper := mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
		buf := scratch.Get().(*points.Point)
		p, err := points.DecodeInto(*buf, rec)
		if err != nil {
			return err
		}
		id, assignErr := part.Assign(p)
		if assignErr == nil {
			atomic.AddInt64(&occCounts[id], 1)
			if pruned == nil || !pruned[id] {
				// emit copies the coordinates into the partition's block
				// immediately, so the scratch point can be recycled.
				emit(id, p)
			}
		}
		*buf = p[:0]
		scratch.Put(buf)
		return assignErr
	})
	localSkyline := mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
		sky := blockKernel(blk)
		for i := 0; i < sky.Len(); i++ {
			emit(partition, sky.Row(i))
		}
		return nil
	})
	var combiner mapreduce.FrameCombiner
	if !opts.DisableCombiner {
		combiner = func(partition int, blk *points.Block) (*points.Block, error) {
			return blockKernel(blk), nil
		}
	}
	cfg1 := mapreduce.Config{
		Name:               fmt.Sprintf("%s-partitioning", opts.Scheme),
		Workers:            opts.Workers,
		Reducers:           opts.Workers,
		SpillDir:           opts.SpillDir,
		Metrics:            opts.Metrics,
		Trace:              traceSink(ctx),
		Codec:              opts.Codec,
		ReducerBudgetBytes: opts.ReducerBudgetBytes,
	}
	var res1 *mapreduce.FrameResult
	var err error
	if opts.ReducerBudgetBytes > 0 {
		// Budgeted path: reducers fold frames one at a time into a bounded
		// skyline window instead of assembling whole partitions.
		res1, err = mapreduce.RunFramesFold(ctx, cfg1, input, mapper, combiner,
			BudgetedFolder(data.Dim(), opts.ReducerBudgetBytes, opts.SpillDir, opts.Codec))
	} else {
		res1, err = mapreduce.RunFrames(ctx, cfg1, input, mapper, combiner, localSkyline)
	}
	if err != nil {
		return nil, nil, err
	}
	stats.ReducerPeakBytes = res1.ReducerPeakBytes
	stats.MergePasses = res1.MergePasses

	for id, blk := range res1.Blocks {
		if id < 0 || id >= part.Partitions() {
			return nil, nil, fmt.Errorf("driver: bad partition id %d in frame output", id)
		}
		stats.LocalSkylines[id] = blk.ToSet()
	}
	counts := make([]int, len(occCounts))
	for id := range occCounts {
		counts[id] = int(atomic.LoadInt64(&occCounts[id]))
	}
	stats.PartitionCounts = counts
	publishPartitionGauges(opts.Metrics, stats)

	// ---- Job 2: Merging Job -----------------------------------------
	if opts.HierarchicalMerge {
		// The iterative merge rounds run on the classic Pair plumbing
		// (group-prefixed records); feed them the frame job's local
		// skylines in ascending partition order for determinism.
		stats.PartitionJob = res1.Timing
		stats.Timing = res1.Timing
		var pairs []mapreduce.Pair
		for _, id := range sortedBlockIDs(res1.Blocks) {
			key := strconv.Itoa(id)
			blk := res1.Blocks[id]
			for i := 0; i < blk.Len(); i++ {
				pairs = append(pairs, mapreduce.Pair{
					Key: key, Value: points.Encode(points.Point(blk.Row(i)))})
			}
		}
		reducer := skylineReducer(opts.kernelFunc(), blockKernel)
		var mergeTiming mapreduce.Timing
		global, err := hierarchicalMerge(ctx, opts, pairs, reducer, &mergeTiming)
		if err != nil {
			return nil, nil, err
		}
		stats.MergeJob = mergeTiming
		stats.Timing.Add(mergeTiming)
		stats.Counters = res1.Counters.Snapshot()
		feedRecorder(ctx, opts, stats, global, res1.Partitions)
		return global, stats, nil
	}

	var mergeInput [][]byte
	for _, id := range sortedBlockIDs(res1.Blocks) {
		blk := res1.Blocks[id]
		for i := 0; i < blk.Len(); i++ {
			mergeInput = append(mergeInput, points.Encode(points.Point(blk.Row(i))))
		}
	}
	identity := mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
		buf := scratch.Get().(*points.Point)
		p, err := points.DecodeInto(*buf, rec)
		if err != nil {
			return err
		}
		emit(0, p) // paper line 13: output(null, si) — one global partition
		*buf = p[:0]
		scratch.Put(buf)
		return nil
	})
	cfg2 := mapreduce.Config{
		Name:               fmt.Sprintf("%s-merging", opts.Scheme),
		Workers:            opts.Workers,
		Reducers:           1, // all local skylines share one partition (paper line 12-15)
		SpillDir:           opts.SpillDir,
		Metrics:            opts.Metrics,
		Trace:              traceSink(ctx),
		Codec:              opts.Codec,
		ReducerBudgetBytes: opts.ReducerBudgetBytes,
	}
	var mergeCombiner mapreduce.FrameCombiner
	if !opts.DisableCombiner {
		mergeCombiner = func(partition int, blk *points.Block) (*points.Block, error) {
			return blockKernel(blk), nil
		}
	}
	// The single global reduce runs the parallel merge tree on the
	// assembled candidate block.
	mergeReduce := mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
		sky := skyline.ParallelBlock(ctx, blk, opts.Workers)
		for i := 0; i < sky.Len(); i++ {
			emit(partition, sky.Row(i))
		}
		return nil
	})
	var res2 *mapreduce.FrameResult
	if opts.ReducerBudgetBytes > 0 {
		res2, err = mapreduce.RunFramesFold(ctx, cfg2, mergeInput, identity, mergeCombiner,
			BudgetedFolder(data.Dim(), opts.ReducerBudgetBytes, opts.SpillDir, opts.Codec))
	} else {
		res2, err = mapreduce.RunFrames(ctx, cfg2, mergeInput, identity, mergeCombiner, mergeReduce)
	}
	if err != nil {
		return nil, nil, err
	}
	if res2.ReducerPeakBytes > stats.ReducerPeakBytes {
		stats.ReducerPeakBytes = res2.ReducerPeakBytes
	}
	if res2.MergePasses > stats.MergePasses {
		stats.MergePasses = res2.MergePasses
	}

	var global points.Set
	if blk := res2.Blocks[0]; blk != nil {
		global = blk.ToSet()
	}

	stats.PartitionJob = res1.Timing
	stats.MergeJob = res2.Timing
	stats.Timing = res1.Timing
	stats.Timing.Add(res2.Timing)
	stats.Counters = res1.Counters.Snapshot()
	for k, v := range res2.Counters.Snapshot() {
		stats.Counters[k] += v
	}
	if reg := opts.Metrics; reg != nil {
		reg.Gauge("skyline_global_size").Set(float64(len(global)))
	}
	feedRecorder(ctx, opts, stats, global, res1.Partitions)
	return global, stats, nil
}

// sortedBlockIDs returns a frame result's partition ids ascending.
func sortedBlockIDs(blocks map[int]*points.Block) []int {
	ids := make([]int, 0, len(blocks))
	for id := range blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
