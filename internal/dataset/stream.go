package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/points"
)

// clusteredCentresK is the centre count the streaming clustered source
// uses, matching Generate's dispatch.
const clusteredCentresK = 5

// chunkSeedMix derives per-chunk RNG seeds (golden-ratio multiplier, the
// usual splitmix-style stream splitter).
const chunkSeedMix = 0x9E3779B97F4A7C15

// Source generates a synthetic dataset chunk by chunk without ever
// materializing it: a 10⁸-point anti-correlated input exists only as a
// recipe (kind, seed, n, d) until a chunk is asked for. Each chunk is
// produced by an independent RNG derived from the base seed and the
// chunk index, so chunks can be read in any order, re-read on task
// retry, and generated concurrently — the properties the out-of-core
// engine's ChunkSource contract needs. Source structurally satisfies
// mapreduce.ChunkSource.
//
// Because each chunk owns its own RNG stream, a Source's dataset is a
// deterministic function of (kind, seed, n, d, chunkSize) but is NOT
// the same point sequence Generate(kind, seed, n, d) yields: the
// streaming family splits the seed per chunk where Generate draws one
// sequential stream. Experiments pin one family or the other; golden
// values never mix them.
type Source struct {
	kind      Kind
	seed      int64
	n, d      int
	chunkSize int
	// centres is the shared prefix of the clustered distribution: drawn
	// once from the base seed so every chunk samples the same k centres.
	centres points.Set
}

// NewSource builds a streaming dataset recipe. chunkSize <= 0 defaults
// to 1<<16 points per chunk.
func NewSource(kind Kind, seed int64, n, d, chunkSize int) (*Source, error) {
	if n < 0 || d < 1 {
		return nil, fmt.Errorf("dataset: invalid shape n=%d d=%d", n, d)
	}
	if chunkSize <= 0 {
		chunkSize = 1 << 16
	}
	s := &Source{kind: kind, seed: seed, n: n, d: d, chunkSize: chunkSize}
	if kind == KindClustered {
		rng := rand.New(rand.NewSource(seed))
		s.centres = clusterCentres(rng, d, clusteredCentresK)
	}
	return s, nil
}

// N returns the total number of points the source describes.
func (s *Source) N() int { return s.n }

// Dim returns the dimensionality.
func (s *Source) Dim() int { return s.d }

// Kind returns the distribution.
func (s *Source) Kind() Kind { return s.kind }

// Chunks returns how many chunks cover the dataset.
func (s *Source) Chunks() int {
	if s.n == 0 {
		return 0
	}
	return (s.n + s.chunkSize - 1) / s.chunkSize
}

// chunkLen returns the number of points in chunk i.
func (s *Source) chunkLen(i int) int {
	lo := i * s.chunkSize
	hi := lo + s.chunkSize
	if hi > s.n {
		hi = s.n
	}
	return hi - lo
}

// ReadChunk appends chunk i's points to blk. It is pure in (s, i): any
// number of calls, in any order, from any goroutine (each call builds
// its own RNG), append the same rows.
func (s *Source) ReadChunk(i int, blk *points.Block) error {
	if i < 0 || i >= s.Chunks() {
		return fmt.Errorf("dataset: chunk %d out of range [0,%d)", i, s.Chunks())
	}
	rng := rand.New(rand.NewSource(s.seed ^ int64(uint64(i+1)*chunkSeedMix)))
	count := s.chunkLen(i)
	row := make([]float64, s.d)
	for p := 0; p < count; p++ {
		switch s.kind {
		case KindCorrelated:
			fillCorrelated(rng, row)
		case KindAnticorrelated:
			fillAnticorrelated(rng, row)
		case KindClustered:
			fillClustered(rng, s.centres, row)
		default:
			fillIndependent(rng, row)
		}
		blk.AppendRow(row)
	}
	return nil
}

// Stream generates the dataset in chunk order, invoking fn once per
// chunk with a reused block — the zero-allocation path for sequential
// consumers (writers, samplers). fn must not retain the block.
func (s *Source) Stream(fn func(*points.Block) error) error {
	blk := points.NewBlock(s.d, s.chunkSize)
	for i := 0; i < s.Chunks(); i++ {
		blk.Reset()
		if err := s.ReadChunk(i, blk); err != nil {
			return err
		}
		if err := fn(blk); err != nil {
			return err
		}
	}
	return nil
}
