package dataset

import (
	"math"
	"testing"

	"repro/internal/points"
	"repro/internal/skyline"
)

func TestDeterminism(t *testing.T) {
	for _, kind := range []Kind{KindIndependent, KindCorrelated, KindAnticorrelated, KindClustered} {
		a := Generate(kind, 42, 100, 4)
		b := Generate(kind, 42, 100, 4)
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Errorf("%v: generation not deterministic at point %d", kind, i)
			}
		}
		c := Generate(kind, 43, 100, 4)
		same := true
		for i := range a {
			if !a[i].Equal(c[i]) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical data", kind)
		}
	}
}

func TestShapeAndRange(t *testing.T) {
	for _, kind := range []Kind{KindIndependent, KindCorrelated, KindAnticorrelated, KindClustered} {
		s := Generate(kind, 7, 500, 6)
		if len(s) != 500 || s.Dim() != 6 {
			t.Fatalf("%v: shape %dx%d", kind, len(s), s.Dim())
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		min, max := s.Bounds()
		for j := 0; j < 6; j++ {
			if min[j] < 0 || max[j] > 1 {
				t.Errorf("%v: dim %d out of [0,1]: [%g, %g]", kind, j, min[j], max[j])
			}
		}
	}
}

func TestSkylineSizeOrdering(t *testing.T) {
	// The defining property of the three benchmark distributions:
	// |skyline(correlated)| < |skyline(independent)| < |skyline(anticorrelated)|.
	n, d := 2000, 4
	corr := len(skyline.BNL(Correlated(1, n, d)))
	ind := len(skyline.BNL(Independent(1, n, d)))
	anti := len(skyline.BNL(Anticorrelated(1, n, d)))
	if !(corr < ind && ind < anti) {
		t.Errorf("skyline sizes corr=%d ind=%d anti=%d violate ordering", corr, ind, anti)
	}
}

func TestCorrelationSigns(t *testing.T) {
	n := 5000
	corr := pearson(Correlated(2, n, 2))
	anti := pearson(Anticorrelated(2, n, 2))
	ind := pearson(Independent(2, n, 2))
	if corr < 0.8 {
		t.Errorf("correlated r = %g, want strongly positive", corr)
	}
	if anti > -0.3 {
		t.Errorf("anticorrelated r = %g, want clearly negative", anti)
	}
	if math.Abs(ind) > 0.1 {
		t.Errorf("independent r = %g, want near zero", ind)
	}
}

func pearson(s points.Set) float64 {
	n := float64(len(s))
	var sx, sy, sxx, syy, sxy float64
	for _, p := range s {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		syy += p[1] * p[1]
		sxy += p[0] * p[1]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestClusteredDegenerateK(t *testing.T) {
	s := Clustered(3, 100, 3, 0) // k < 1 coerced to 1
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindIndependent.String() != "independent" || KindAnticorrelated.String() != "anticorrelated" {
		t.Error("unexpected kind names")
	}
	if Kind(99).String() != "unknown" {
		t.Error("unknown kind name")
	}
}
