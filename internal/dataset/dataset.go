// Package dataset provides the standard synthetic skyline benchmark
// distributions (Börzsönyi et al., ICDE 2001): independent, correlated and
// anti-correlated, plus a clustered variant. All generators are
// deterministic in their seed. Values lie in [0, 1] per dimension and
// follow the minimization convention.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/points"
)

// The per-point fill functions are the single source of truth for each
// distribution's RNG call sequence: the materializing generators below
// and the streaming Source both go through them, so "one point" consumes
// an identical number of draws everywhere. Changing a fill changes every
// golden value downstream — don't.

// fillIndependent draws every coordinate i.i.d. uniform in [0, 1).
func fillIndependent(rng *rand.Rand, p []float64) {
	for j := range p {
		p[j] = rng.Float64()
	}
}

// fillCorrelated draws one point near the main diagonal.
func fillCorrelated(rng *rand.Rand, p []float64) {
	base := rng.Float64()
	for j := range p {
		p[j] = clamp01(base + rng.NormFloat64()*0.05)
	}
}

// fillAnticorrelated starts uniform, then projects toward the plane
// sum = d/2 with a small normal offset — the standard construction.
func fillAnticorrelated(rng *rand.Rand, p []float64) {
	d := len(p)
	sum := 0.0
	for j := range p {
		p[j] = rng.Float64()
		sum += p[j]
	}
	target := float64(d)/2 + rng.NormFloat64()*0.08*float64(d)
	shift := (target - sum) / float64(d)
	for j := range p {
		p[j] = clamp01(p[j] + shift)
	}
}

// fillClustered draws one point around a randomly chosen centre.
func fillClustered(rng *rand.Rand, centres points.Set, p []float64) {
	c := centres[rng.Intn(len(centres))]
	for j := range p {
		p[j] = clamp01(c[j] + rng.NormFloat64()*0.08)
	}
}

// clusterCentres draws the k cluster centres — the prefix of the
// clustered distribution's RNG stream.
func clusterCentres(rng *rand.Rand, d, k int) points.Set {
	centres := make(points.Set, k)
	for i := range centres {
		c := make(points.Point, d)
		for j := range c {
			c[j] = rng.Float64()
		}
		centres[i] = c
	}
	return centres
}

// Independent draws every coordinate i.i.d. uniform in [0, 1).
func Independent(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		fillIndependent(rng, p)
		s[i] = p
	}
	return s
}

// Correlated draws points near the main diagonal: a service that is good
// in one dimension tends to be good in all. Skylines are tiny.
func Correlated(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		fillCorrelated(rng, p)
		s[i] = p
	}
	return s
}

// Anticorrelated draws points near the anti-diagonal hyperplane
// sum ≈ d/2: being good in one dimension implies being bad in others.
// Skylines are huge — the stress case for skyline processing.
func Anticorrelated(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		fillAnticorrelated(rng, p)
		s[i] = p
	}
	return s
}

// Clustered draws points around k cluster centres with Gaussian spread —
// a rough model of market segments of providers.
func Clustered(seed int64, n, d, k int) points.Set {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	centres := clusterCentres(rng, d, k)
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		fillClustered(rng, centres, p)
		s[i] = p
	}
	return s
}

// Kind names a generator for table-driven experiment configs.
type Kind int

const (
	KindIndependent Kind = iota
	KindCorrelated
	KindAnticorrelated
	KindClustered
)

// String returns the conventional name of the distribution.
func (k Kind) String() string {
	switch k {
	case KindIndependent:
		return "independent"
	case KindCorrelated:
		return "correlated"
	case KindAnticorrelated:
		return "anticorrelated"
	case KindClustered:
		return "clustered"
	default:
		return "unknown"
	}
}

// Generate dispatches on Kind (clustered uses 5 centres).
func Generate(kind Kind, seed int64, n, d int) points.Set {
	switch kind {
	case KindCorrelated:
		return Correlated(seed, n, d)
	case KindAnticorrelated:
		return Anticorrelated(seed, n, d)
	case KindClustered:
		return Clustered(seed, n, d, 5)
	default:
		return Independent(seed, n, d)
	}
}

func clamp01(v float64) float64 {
	return math.Min(1, math.Max(0, v))
}
