package dataset

import (
	"fmt"
	"testing"

	"repro/internal/points"
)

// TestSourceChunkDeterminism: re-reading a chunk, in any order, yields
// identical rows — the retry-safety contract.
func TestSourceChunkDeterminism(t *testing.T) {
	for _, kind := range []Kind{KindIndependent, KindCorrelated, KindAnticorrelated, KindClustered} {
		t.Run(kind.String(), func(t *testing.T) {
			src, err := NewSource(kind, 42, 1000, 4, 128)
			if err != nil {
				t.Fatal(err)
			}
			if src.Chunks() != 8 {
				t.Fatalf("Chunks() = %d, want 8", src.Chunks())
			}
			// Read chunks 3 then 1 then 3 again.
			a := points.NewBlock(4, 0)
			if err := src.ReadChunk(3, a); err != nil {
				t.Fatal(err)
			}
			mid := points.NewBlock(4, 0)
			if err := src.ReadChunk(1, mid); err != nil {
				t.Fatal(err)
			}
			b := points.NewBlock(4, 0)
			if err := src.ReadChunk(3, b); err != nil {
				t.Fatal(err)
			}
			if a.Len() != b.Len() || a.Len() != 128 {
				t.Fatalf("chunk lens %d vs %d, want 128", a.Len(), b.Len())
			}
			for i := 0; i < a.Len(); i++ {
				ra, rb := a.Row(i), b.Row(i)
				for j := range ra {
					if ra[j] != rb[j] {
						t.Fatalf("chunk 3 row %d dim %d: %v vs %v", i, j, ra[j], rb[j])
					}
				}
			}
			// Distinct chunks must not repeat the same stream.
			same := true
			for j := 0; j < 4; j++ {
				if a.Row(0)[j] != mid.Row(0)[j] {
					same = false
				}
			}
			if same {
				t.Fatal("chunks 1 and 3 start with identical rows — seeds not split")
			}
		})
	}
}

// TestSourceTotals: chunk lengths sum to n, last chunk ragged, values in
// range.
func TestSourceTotals(t *testing.T) {
	src, err := NewSource(KindAnticorrelated, 7, 1010, 3, 256)
	if err != nil {
		t.Fatal(err)
	}
	if src.Chunks() != 4 {
		t.Fatalf("Chunks() = %d, want 4", src.Chunks())
	}
	total := 0
	for i := 0; i < src.Chunks(); i++ {
		blk := points.NewBlock(3, 0)
		if err := src.ReadChunk(i, blk); err != nil {
			t.Fatal(err)
		}
		total += blk.Len()
		for r := 0; r < blk.Len(); r++ {
			for _, v := range blk.Row(r) {
				if v < 0 || v > 1 {
					t.Fatalf("chunk %d row %d value %v out of [0,1]", i, r, v)
				}
			}
		}
	}
	if total != 1010 {
		t.Fatalf("total %d, want 1010", total)
	}
	if err := src.ReadChunk(4, points.NewBlock(3, 0)); err == nil {
		t.Fatal("out-of-range chunk read succeeded")
	}
}

// TestSourceStreamMatchesReadChunk: Stream must visit exactly the
// concatenation of ReadChunk(0..Chunks-1).
func TestSourceStreamMatchesReadChunk(t *testing.T) {
	src, err := NewSource(KindClustered, 99, 777, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < src.Chunks(); i++ {
		blk := points.NewBlock(5, 0)
		if err := src.ReadChunk(i, blk); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < blk.Len(); r++ {
			want = append(want, fmt.Sprintf("%x", blk.Row(r)))
		}
	}
	var got []string
	if err := src.Stream(func(blk *points.Block) error {
		for r := 0; r < blk.Len(); r++ {
			got = append(got, fmt.Sprintf("%x", blk.Row(r)))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 777 {
		t.Fatalf("stream %d rows, chunks %d rows, want 777", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d differs between Stream and ReadChunk", i)
		}
	}
}

// TestSourceEmptyAndDefaults: n=0 sources and default chunk size.
func TestSourceEmptyAndDefaults(t *testing.T) {
	src, err := NewSource(KindIndependent, 1, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if src.Chunks() != 0 {
		t.Fatalf("empty source has %d chunks", src.Chunks())
	}
	if err := src.Stream(func(*points.Block) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSource(KindIndependent, 1, 10, 0, 0); err == nil {
		t.Fatal("d=0 accepted")
	}
}
