package latency

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPercentiles(t *testing.T) {
	var tr Tracker
	for i := 1; i <= 100; i++ {
		tr.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := tr.Percentile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := tr.Percentile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	p50 := tr.Percentile(0.5)
	if p50 < 49*time.Millisecond || p50 > 51*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	// Out-of-range p is clamped.
	if got := tr.Percentile(-1); got != time.Millisecond {
		t.Errorf("p(-1) = %v", got)
	}
	if got := tr.Percentile(2); got != 100*time.Millisecond {
		t.Errorf("p(2) = %v", got)
	}
}

func TestSummary(t *testing.T) {
	var tr Tracker
	if s := tr.Summary(); s.Count != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	for _, ms := range []int{10, 20, 30, 40} {
		tr.Observe(time.Duration(ms) * time.Millisecond)
	}
	s := tr.Summary()
	if s.Count != 4 || s.Min != 10*time.Millisecond || s.Max != 40*time.Millisecond {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 25*time.Millisecond {
		t.Errorf("mean = %v", s.Mean)
	}
	var buf bytes.Buffer
	s.Write(&buf, "publish")
	if !strings.Contains(buf.String(), "publish") || !strings.Contains(buf.String(), "p99=") {
		t.Errorf("rendered: %s", buf.String())
	}
}

func TestConcurrentObserve(t *testing.T) {
	var tr Tracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if tr.Count() != 8000 {
		t.Errorf("count = %d", tr.Count())
	}
}

func TestObserveAfterSummary(t *testing.T) {
	var tr Tracker
	tr.Observe(5 * time.Millisecond)
	_ = tr.Summary()
	tr.Observe(time.Millisecond)
	if got := tr.Percentile(0); got != time.Millisecond {
		t.Errorf("new minimum not reflected: %v", got)
	}
}
