package latency

import (
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestMerge(t *testing.T) {
	var a, b Tracker
	for i := 1; i <= 5; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 6; i <= 10; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 10 {
		t.Fatalf("merged count = %d, want 10", a.Count())
	}
	if got := a.Percentile(1); got != 10*time.Millisecond {
		t.Errorf("max after merge = %v, want 10ms", got)
	}
	if b.Count() != 5 {
		t.Errorf("source tracker mutated: count = %d, want 5", b.Count())
	}
	a.Merge(nil) // must not panic
	a.Merge(&a)  // self-merge must not double
	if a.Count() != 10 {
		t.Errorf("count after nil/self merge = %d, want 10", a.Count())
	}
}

func TestMergeConcurrent(t *testing.T) {
	var total Tracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local Tracker
			for i := 0; i < 100; i++ {
				local.Observe(time.Millisecond)
			}
			total.Merge(&local)
		}()
	}
	wg.Wait()
	if total.Count() != 800 {
		t.Errorf("count = %d, want 800", total.Count())
	}
}

func TestHistogram(t *testing.T) {
	var tr Tracker
	for _, ms := range []int{1, 2, 2, 5, 50} {
		tr.Observe(time.Duration(ms) * time.Millisecond)
	}
	bounds := []time.Duration{2 * time.Millisecond, 10 * time.Millisecond}
	got := tr.Histogram(bounds)
	want := []int64{3, 1, 1} // ≤2ms: 1,2,2 — ≤10ms: 5 — over: 50
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestHistogramFeedsTelemetry: the bucket layout must slot into a
// telemetry histogram via ObserveN without losing samples.
func TestHistogramFeedsTelemetry(t *testing.T) {
	var tr Tracker
	for i := 1; i <= 20; i++ {
		tr.Observe(time.Duration(i) * time.Millisecond)
	}
	bounds := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 15 * time.Millisecond}
	counts := tr.Histogram(bounds)

	reg := telemetry.NewRegistry()
	fb := make([]float64, len(bounds))
	for i, b := range bounds {
		fb[i] = b.Seconds()
	}
	h := reg.Histogram("load_seconds", fb)
	for i, n := range counts {
		if n == 0 {
			continue
		}
		v := fb[len(fb)-1] * 2 // overflow representative
		if i < len(fb) {
			v = fb[i]
		}
		h.ObserveN(v, n)
	}
	snap := h.Snapshot()
	if snap.Count != int64(tr.Count()) {
		t.Errorf("telemetry count = %d, tracker count = %d", snap.Count, tr.Count())
	}
	for i, n := range counts {
		if snap.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], n)
		}
	}
}
