// Package latency collects duration samples and reports order statistics
// — the measurement half of the registry load tool (cmd/skyload).
package latency

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracker accumulates samples. Safe for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Observe records one sample.
func (t *Tracker) Observe(d time.Duration) {
	t.mu.Lock()
	t.samples = append(t.samples, d)
	t.sorted = false
	t.mu.Unlock()
}

// Merge folds another tracker's samples into t, so per-worker trackers
// can be combined into one report without sharing a lock on the hot
// path. The other tracker is left unchanged.
func (t *Tracker) Merge(other *Tracker) {
	if other == nil || other == t {
		return
	}
	other.mu.Lock()
	samples := append([]time.Duration(nil), other.samples...)
	other.mu.Unlock()
	t.mu.Lock()
	t.samples = append(t.samples, samples...)
	t.sorted = false
	t.mu.Unlock()
}

// Histogram buckets the samples by the given upper bounds (which must be
// ascending). The result has len(bounds)+1 entries; the last counts
// samples above every bound. The layout matches what
// telemetry.Histogram.ObserveN expects, so a load tool can feed a
// tracker into a metrics registry bucket-by-bucket.
func (t *Tracker) Histogram(bounds []time.Duration) []int64 {
	counts := make([]int64, len(bounds)+1)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sortLocked()
	i := 0
	for _, d := range t.samples {
		for i < len(bounds) && d > bounds[i] {
			i++
		}
		counts[i]++
	}
	return counts
}

// Count returns the number of samples.
func (t *Tracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.samples)
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) by nearest rank; zero
// with no samples.
func (t *Tracker) Percentile(p float64) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	t.sortLocked()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(p * float64(len(t.samples)-1))
	return t.samples[idx]
}

func (t *Tracker) sortLocked() {
	if !t.sorted {
		sort.Slice(t.samples, func(i, j int) bool { return t.samples[i] < t.samples[j] })
		t.sorted = true
	}
}

// Summary is the standard latency report.
type Summary struct {
	Count              int
	Min, Max, Mean     time.Duration
	P50, P90, P95, P99 time.Duration
}

// Summary computes the report; zero-valued with no samples.
func (t *Tracker) Summary() Summary {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Summary{Count: len(t.samples)}
	if s.Count == 0 {
		return s
	}
	t.sortLocked()
	s.Min = t.samples[0]
	s.Max = t.samples[len(t.samples)-1]
	var total time.Duration
	for _, d := range t.samples {
		total += d
	}
	s.Mean = total / time.Duration(len(t.samples))
	q := func(p float64) time.Duration {
		return t.samples[int(p*float64(len(t.samples)-1))]
	}
	s.P50, s.P90, s.P95, s.P99 = q(0.50), q(0.90), q(0.95), q(0.99)
	return s
}

// Write renders the summary as one labelled line.
func (s Summary) Write(w io.Writer, label string) {
	fmt.Fprintf(w, "%-10s n=%-7d min=%-10s p50=%-10s p90=%-10s p95=%-10s p99=%-10s max=%-10s mean=%s\n",
		label, s.Count,
		s.Min.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P90.Round(time.Microsecond), s.P95.Round(time.Microsecond),
		s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond),
		s.Mean.Round(time.Microsecond))
}
