package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/points"
)

func TestLocalSkylineOptimality(t *testing.T) {
	global := points.Set{{1, 1}, {2, 0}, {0, 2}}
	local := map[int]points.Set{
		0: {{1, 1}, {5, 5}}, // 1 of 2 global
		1: {{2, 0}},         // 1 of 1
		2: {{9, 9}, {8, 8}}, // 0 of 2
		3: {},               // empty: ignored
	}
	got := LocalSkylineOptimality(local, global)
	want := (0.5 + 1.0 + 0.0) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("optimality = %g, want %g", got, want)
	}
}

func TestLocalSkylineOptimalityEdge(t *testing.T) {
	if got := LocalSkylineOptimality(nil, nil); got != 0 {
		t.Errorf("empty = %g", got)
	}
	if got := LocalSkylineOptimality(map[int]points.Set{0: {}}, points.Set{{1}}); got != 0 {
		t.Errorf("all-empty partitions = %g", got)
	}
	// Perfect case: every local skyline point is global.
	local := map[int]points.Set{0: {{1, 2}}, 1: {{2, 1}}}
	global := points.Set{{1, 2}, {2, 1}}
	if got := LocalSkylineOptimality(local, global); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect = %g, want 1", got)
	}
}

func TestPerPartitionOptimality(t *testing.T) {
	global := points.Set{{1, 1}}
	local := map[int]points.Set{
		0: {{1, 1}, {3, 3}},
		1: {{2, 2}},
		2: {},
	}
	got := PerPartitionOptimality(local, global)
	if math.Abs(got[0]-0.5) > 1e-12 || got[1] != 0 {
		t.Errorf("per-partition = %v", got)
	}
	if _, ok := got[2]; ok {
		t.Error("empty partition reported")
	}
}

func TestTheorem1ClosedFormVsMonteCarlo(t *testing.T) {
	// For several services in the bottom sector (y ≤ x/2), the analytic
	// dominance ability must match the Monte-Carlo estimate.
	const l = 1.0
	cases := []struct{ x, y float64 }{
		{0.2, 0.05},
		{0.5, 0.2},
		{1.0, 0.3},
		{1.5, 0.6},
	}
	for _, c := range cases {
		analytic := DominanceAbilityAngle(c.x, c.y, l)
		mc := MonteCarloDominance(c.x, c.y, l, true, 400000, 1)
		if math.Abs(analytic-mc) > 0.01 {
			t.Errorf("(%g,%g): analytic %g vs MC %g", c.x, c.y, analytic, mc)
		}
	}
}

func TestGridClosedFormVsMonteCarlo(t *testing.T) {
	const l = 1.0
	cases := []struct{ x, y float64 }{
		{0.2, 0.05},
		{0.5, 0.2},
		{0.9, 0.4},
	}
	for _, c := range cases {
		analytic := DominanceAbilityGrid(c.x, c.y, l)
		mc := MonteCarloDominance(c.x, c.y, l, false, 400000, 2)
		if math.Abs(analytic-mc) > 0.01 {
			t.Errorf("(%g,%g): analytic %g vs MC %g", c.x, c.y, analytic, mc)
		}
	}
}

func TestTheorem2Inequality(t *testing.T) {
	// ΔD = D_angle − D_grid ≥ x/(2L²)(L − x/2) for all x in [0, 2L],
	// y ≤ min(x/2, L) (the service must sit in both bottom-sector and
	// bottom-left-cell for the comparison).
	const l = 1.0
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20000; trial++ {
		x := rng.Float64() * 2 * l
		yMax := math.Min(x/2, l)
		y := rng.Float64() * yMax
		delta := DominanceAbilityAngle(x, y, l) - DominanceAbilityGrid(x, y, l)
		bound := DominanceGapLowerBound(x, l)
		if delta < bound-1e-9 {
			t.Fatalf("x=%g y=%g: ΔD=%g below bound %g", x, y, delta, bound)
		}
	}
}

func TestTheorem2BoundNonNegative(t *testing.T) {
	// The bound x/(2L²)(L−x/2) is ≥ 0 on [0, 2L], so Theorem 2 indeed
	// implies MR-Angle dominance ability never loses to MR-Grid there.
	const l = 1.0
	for x := 0.0; x <= 2*l; x += 0.01 {
		if DominanceGapLowerBound(x, l) < 0 {
			t.Fatalf("bound negative at x=%g", x)
		}
	}
}

func TestEmpiricalDominanceAbility(t *testing.T) {
	all := points.Set{{1, 1}, {2, 2}, {3, 3}, {0, 5}}
	got := EmpiricalDominanceAbility(points.Point{1, 1}, all)
	// (1,1) dominates (2,2) and (3,3) out of 4 points.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("empirical = %g, want 0.5", got)
	}
	if EmpiricalDominanceAbility(points.Point{1, 1}, nil) != 0 {
		t.Error("empty set should give 0")
	}
}

func TestSquarePartitionSectorsEqualArea(t *testing.T) {
	// The theorem's sector geometry: all four sectors of the square carry
	// the same area (L² each of the 4L² square).
	rng := rand.New(rand.NewSource(4))
	const l, n = 1.0, 400000
	counts := [4]int{}
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*2*l, rng.Float64()*2*l
		counts[squarePartition(x, y, l, true)]++
	}
	for s, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.01 {
			t.Errorf("sector %d holds %.3f of the area, want 0.25", s, frac)
		}
	}
}
