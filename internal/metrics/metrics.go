// Package metrics implements the paper's evaluation metrics: the local
// skyline optimality of Eq. (5) (Section VI) and the dominance-ability
// analysis of Theorems 1 and 2 (Section IV), both in closed form and as
// Monte-Carlo estimates over point sets.
package metrics

import (
	"math/rand"

	"repro/internal/points"
)

// LocalSkylineOptimality computes Eq. (5): the average, over partitions
// with a non-empty local skyline, of the fraction of local skyline
// services that are also global skyline services,
//
//	(1/N) Σ_i |sky_i ∩ sky_global| / |sky_i|
//
// A higher value means local decisions more often coincide with the global
// optimum — the QoS-assurance property the paper claims for MR-Angle.
// Partitions with empty local skylines do not contribute. Returns 0 when
// no partition has a local skyline.
func LocalSkylineOptimality(local map[int]points.Set, global points.Set) float64 {
	globalKeys := make(map[string]struct{}, len(global))
	for _, p := range global {
		globalKeys[points.Key(p)] = struct{}{}
	}
	sum, n := 0.0, 0
	for _, sky := range local {
		if len(sky) == 0 {
			continue
		}
		hits := 0
		for _, p := range sky {
			if _, ok := globalKeys[points.Key(p)]; ok {
				hits++
			}
		}
		sum += float64(hits) / float64(len(sky))
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// GlobalSurvivors counts, per partition, the local skyline points that
// also appear in the global skyline — the numerator of the Eq. (5)
// ratio, exposed separately so the flight recorder can report raw counts
// alongside the ratios. Partitions with empty local skylines get 0.
func GlobalSurvivors(local map[int]points.Set, global points.Set) map[int]int {
	globalKeys := make(map[string]struct{}, len(global))
	for _, p := range global {
		globalKeys[points.Key(p)] = struct{}{}
	}
	out := make(map[int]int, len(local))
	for id, sky := range local {
		hits := 0
		for _, p := range sky {
			if _, ok := globalKeys[points.Key(p)]; ok {
				hits++
			}
		}
		out[id] = hits
	}
	return out
}

// PerPartitionOptimality returns each partition's |sky_i ∩ sky_global| /
// |sky_i| fraction, for distribution plots and diagnostics.
func PerPartitionOptimality(local map[int]points.Set, global points.Set) map[int]float64 {
	globalKeys := make(map[string]struct{}, len(global))
	for _, p := range global {
		globalKeys[points.Key(p)] = struct{}{}
	}
	out := make(map[int]float64, len(local))
	for id, sky := range local {
		if len(sky) == 0 {
			continue
		}
		hits := 0
		for _, p := range sky {
			if _, ok := globalKeys[points.Key(p)]; ok {
				hits++
			}
		}
		out[id] = float64(hits) / float64(len(sky))
	}
	return out
}

// ---------------------------------------------------------------------------
// Dominance ability (Section IV)
//
// The paper analyses a 2-D square data space of side 2L divided into 4
// partitions, and a skyline service at (x, y) with y ≤ x/2 sitting in the
// partition nearest the x-axis. Theorem 1 gives the area-based dominance
// ability of that service under angular partitioning; Theorem 2 lower
// bounds the advantage over grid partitioning.

// DominanceAbilityAngle computes Theorem 1's closed form
//
//	D_angle = (L² − x²/4 − (2L−x)·y) / L²
//
// for a service at (x, y) in a square of half-side L.
func DominanceAbilityAngle(x, y, l float64) float64 {
	return (l*l - x*x/4 - (2*l-x)*y) / (l * l)
}

// DominanceAbilityGrid computes the grid counterpart used in Theorem 2's
// proof,
//
//	D_grid = (L−x)(L−y) / L²
func DominanceAbilityGrid(x, y, l float64) float64 {
	return (l - x) * (l - y) / (l * l)
}

// DominanceGapLowerBound computes Theorem 2's lower bound
//
//	ΔD ≥ x/(2L²) · (L − x/2)
func DominanceGapLowerBound(x, l float64) float64 {
	return x / (2 * l * l) * (l - x/2)
}

// MonteCarloDominance estimates, by sampling `samples` uniform points in
// the square [0,2L]², the fraction of the service's partition area that a
// service at (x, y) dominates, under either the angular 4-sector or the
// grid 2×2 partitioning of the square. It is the empirical check of the
// paper's area arguments.
//
// Note the sector geometry: Theorem 1's setup ("y ≤ x/2", sector area L²)
// implies the four sectors are bounded by the lines of slope 1/2, 1 and 2
// — equal-AREA sectors of the square — not equal angle intervals. The
// Monte-Carlo check therefore uses those tangent boundaries.
func MonteCarloDominance(x, y, l float64, angular bool, samples int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	svc := points.Point{x, y}
	svcPart := squarePartition(x, y, l, angular)
	inPart, dominated := 0, 0
	for i := 0; i < samples; i++ {
		px, py := rng.Float64()*2*l, rng.Float64()*2*l
		if squarePartition(px, py, l, angular) != svcPart {
			continue
		}
		inPart++
		if points.Dominates(svc, points.Point{px, py}) {
			dominated++
		}
	}
	if inPart == 0 {
		return 0
	}
	return float64(dominated) / float64(inPart)
}

// squarePartition assigns a point of the [0,2L]² square to one of 4
// partitions: equal-area angular sectors with tangent boundaries
// {1/2, 1, 2} (Theorem 1's geometry) or grid quadrants.
func squarePartition(x, y, l float64, angular bool) int {
	if angular {
		switch {
		case y <= x/2:
			return 0
		case y <= x:
			return 1
		case y <= 2*x:
			return 2
		default:
			return 3
		}
	}
	id := 0
	if x >= l {
		id |= 1
	}
	if y >= l {
		id |= 2
	}
	return id
}

// ---------------------------------------------------------------------------
// Dominance ability over real point sets

// EmpiricalDominanceAbility computes the paper's point-count definition
// D_si = Num_si / Num_all for a service against a concrete dataset: the
// fraction of all other services it dominates.
func EmpiricalDominanceAbility(s points.Point, all points.Set) float64 {
	if len(all) == 0 {
		return 0
	}
	n := 0
	for _, q := range all {
		if points.Dominates(s, q) {
			n++
		}
	}
	return float64(n) / float64(len(all))
}
