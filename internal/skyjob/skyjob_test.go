package skyjob

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rpcmr"
	"repro/internal/skyline"
)

func uniformSet(seed int64, n, d int) points.Set {
	rng := rand.New(rand.NewSource(seed))
	s := make(points.Set, n)
	for i := range s {
		p := make(points.Point, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		s[i] = p
	}
	return s
}

func startCluster(t *testing.T, workers int) *rpcmr.Master {
	t.Helper()
	master, err := rpcmr.NewMaster(rpcmr.MasterConfig{SplitSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	for i := 0; i < workers; i++ {
		w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{
			MasterAddr:   master.Addr(),
			ID:           "sw" + strconv.Itoa(i),
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		go func() { _ = w.Run(context.Background()) }()
	}
	return master
}

func sameMultiset(a, b points.Set) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int, len(a))
	for _, p := range a {
		count[points.Key(p)]++
	}
	for _, p := range b {
		count[points.Key(p)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestDistributedSkylineMatchesOracle(t *testing.T) {
	master := startCluster(t, 3)
	data := uniformSet(1, 1500, 3)
	want := skyline.Naive(data)
	for _, scheme := range []partition.Scheme{partition.Dimensional, partition.Grid, partition.Angular} {
		res, err := Compute(context.Background(), master, data, scheme, 8, 3)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if !sameMultiset(res.Skyline, want) {
			t.Errorf("%v: skyline %d points, oracle %d", scheme, len(res.Skyline), len(want))
		}
		if len(res.LocalSkylines) == 0 {
			t.Errorf("%v: no local skylines reported", scheme)
		}
	}
}

func TestDistributedLocalSkylinesConsistent(t *testing.T) {
	master := startCluster(t, 2)
	data := uniformSet(2, 800, 2)
	res, err := Compute(context.Background(), master, data, partition.Angular, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := SpecFor(data, partition.Angular, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	byPart := map[int]points.Set{}
	for _, p := range data {
		id, err := part.Assign(p)
		if err != nil {
			t.Fatal(err)
		}
		byPart[id] = append(byPart[id], p)
	}
	for id, members := range byPart {
		want := skyline.Naive(members)
		if !sameMultiset(res.LocalSkylines[id], want) {
			t.Errorf("partition %d: local skyline %d, want %d", id, len(res.LocalSkylines[id]), len(want))
		}
	}
}

func TestSpecBuildAllSchemes(t *testing.T) {
	data := uniformSet(3, 50, 4)
	for _, scheme := range []partition.Scheme{partition.Dimensional, partition.Grid, partition.Angular, partition.Random} {
		spec, err := SpecFor(data, scheme, 8)
		if err != nil {
			t.Fatal(err)
		}
		part, err := spec.Build()
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if _, err := part.Assign(data[0]); err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
	if _, err := SpecFor(nil, partition.Grid, 4); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := (Spec{Scheme: partition.Scheme(99), Dim: 2, Min: []float64{0, 0}, Max: []float64{1, 1}}).Build(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := (Spec{Scheme: partition.Grid, Dim: 3, Min: []float64{0, 0}, Max: []float64{1, 1}}).Build(); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestWorkersAgreeOnPartitioner(t *testing.T) {
	// The same spec must produce identical assignments in different
	// "processes" (here: separate Build calls), or the distributed local
	// skylines would be wrong.
	data := uniformSet(4, 300, 5)
	spec, err := SpecFor(data, partition.Angular, 16)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range data {
		a, err := p1.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p2.Assign(pt)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("assignment mismatch for %v: %d vs %d", pt, a, b)
		}
	}
}

func TestConcurrentComputesSerialize(t *testing.T) {
	// The master rejects overlapping jobs; Compute callers must see either
	// success or a clear error, never corruption.
	master := startCluster(t, 2)
	data := uniformSet(5, 400, 2)
	want := skyline.Naive(data)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	results := make([]*Result, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Compute(context.Background(), master, data, partition.Grid, 4, 2)
		}(i)
	}
	wg.Wait()
	okCount := 0
	for i := range errs {
		if errs[i] == nil {
			okCount++
			if !sameMultiset(results[i].Skyline, want) {
				t.Errorf("run %d: wrong skyline", i)
			}
		}
	}
	if okCount == 0 {
		t.Error("both concurrent computes failed")
	}
}

func TestResultOptimality(t *testing.T) {
	master := startCluster(t, 2)
	data := uniformSet(21, 600, 3)
	res, err := Compute(context.Background(), master, data, partition.Angular, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := res.Optimality()
	if o <= 0 || o > 1 {
		t.Errorf("optimality = %g", o)
	}
}
