package skyjob

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/skyline"
)

// TestClusterFrameMatchesClassicShuffle runs the two-job pipeline twice
// on a 3-worker cluster — framed (the default) and with the
// ClassicShuffle escape hatch — over a duplicate-heavy dataset, and
// requires identical global and local skylines, both matching the
// oracle.
func TestClusterFrameMatchesClassicShuffle(t *testing.T) {
	master := startCluster(t, 3)
	data := uniformSet(42, 1200, 4)
	for i := 0; i < 120; i++ {
		data = append(data, data[i].Clone())
	}
	want := skyline.Naive(data)

	for _, scheme := range []partition.Scheme{partition.Angular, partition.Grid} {
		spec, err := SpecFor(data, scheme, 8)
		if err != nil {
			t.Fatal(err)
		}
		framed, err := ComputeSpec(context.Background(), master, data, spec, 3)
		if err != nil {
			t.Fatalf("%v framed: %v", scheme, err)
		}
		spec.ClassicShuffle = true
		classic, err := ComputeSpec(context.Background(), master, data, spec, 3)
		if err != nil {
			t.Fatalf("%v classic: %v", scheme, err)
		}
		if !sameMultiset(framed.Skyline, classic.Skyline) {
			t.Errorf("%v: framed skyline (%d pts) != classic shuffle (%d pts)",
				scheme, len(framed.Skyline), len(classic.Skyline))
		}
		if !sameMultiset(framed.Skyline, want) {
			t.Errorf("%v: framed skyline (%d pts) != oracle (%d pts)",
				scheme, len(framed.Skyline), len(want))
		}
		if len(framed.LocalSkylines) != len(classic.LocalSkylines) {
			t.Fatalf("%v: local skyline partitions %d vs %d",
				scheme, len(framed.LocalSkylines), len(classic.LocalSkylines))
		}
		for id, fls := range framed.LocalSkylines {
			if !sameMultiset(fls, classic.LocalSkylines[id]) {
				t.Errorf("%v: partition %d local skylines differ", scheme, id)
			}
		}
		if framed.Optimality() <= 0 {
			t.Errorf("%v: optimality = %v, want > 0", scheme, framed.Optimality())
		}
	}
}

// TestSpecClassicShuffleTravels: the flag must round-trip through the
// JSON params so every worker flips consistently.
func TestSpecClassicShuffleTravels(t *testing.T) {
	data := uniformSet(3, 50, 3)
	spec, err := SpecFor(data, partition.Grid, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.framed() {
		t.Error("default spec must select the framed shuffle")
	}
	spec.ClassicShuffle = true
	if spec.framed() {
		t.Error("ClassicShuffle did not disable frames")
	}
	spec.ClassicShuffle = false
	spec.ClassicKernel = true
	if spec.framed() {
		t.Error("ClassicKernel must imply the classic shuffle")
	}
}
