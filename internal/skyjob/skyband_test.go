package skyjob

import (
	"context"
	"testing"

	"repro/internal/partition"
	"repro/internal/skyline"
)

func TestDistributedSkybandMatchesOracle(t *testing.T) {
	master := startCluster(t, 3)
	data := uniformSet(11, 800, 3)
	for _, k := range []int{1, 2, 4} {
		want, err := skyline.Skyband(data, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ComputeSkyband(context.Background(), master, data, partition.Angular, k, 8, 2)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !sameMultiset(got, want) {
			t.Errorf("k=%d: %d points, oracle %d", k, len(got), len(want))
		}
	}
}

func TestDistributedSkybandChainScattered(t *testing.T) {
	master := startCluster(t, 2)
	var data = uniformSet(12, 0, 2) // empty; build a chain instead
	for i := 0; i < 48; i++ {
		data = append(data, []float64{float64(i), float64(i)})
	}
	want, err := skyline.Skyband(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ComputeSkyband(context.Background(), master, data, partition.Random, 3, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(got, want) {
		t.Errorf("chain 3-skyband: %d points, oracle %d (%v)", len(got), len(want), got)
	}
}

func TestDistributedSkybandValidation(t *testing.T) {
	master := startCluster(t, 1)
	data := uniformSet(13, 40, 2)
	if _, err := ComputeSkyband(context.Background(), master, data, partition.Grid, 0, 4, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ComputeSkyband(context.Background(), master, nil, partition.Grid, 2, 4, 1); err == nil {
		t.Error("empty data accepted")
	}
}
