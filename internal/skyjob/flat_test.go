package skyjob

import (
	"encoding/json"
	"sort"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/points"
	"repro/internal/skyline"
)

// collectReducer runs a reducer over encoded values and decodes what it
// emits.
func collectReducer(t *testing.T, r mapreduce.Reducer, s points.Set) points.Set {
	t.Helper()
	values := make([][]byte, len(s))
	for i, p := range s {
		values[i] = points.Encode(p)
	}
	var out points.Set
	err := r.Reduce("global", values, func(key string, value []byte) {
		p, err := points.Decode(value)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFlatAndClassicReducersAgree: the worker-side reducers of both
// kernel paths must emit the same skyline multiset for local groups and
// for the global merge.
func TestFlatAndClassicReducersAgree(t *testing.T) {
	s := points.Set{{3, 1}, {1, 3}, {2, 2}, {1, 3}, {4, 4}, {0, 5}}
	want := skyline.Naive(s)
	flatSpec := Spec{Kernel: skyline.BNLAlgorithm}
	classicSpec := Spec{Kernel: skyline.BNLAlgorithm, ClassicKernel: true}
	for name, r := range map[string]mapreduce.Reducer{
		"flat-local":    flatSpec.localReducer(),
		"classic-local": classicSpec.localReducer(),
		"flat-merge":    flatSpec.mergeReducer(),
		"classic-merge": classicSpec.mergeReducer(),
	} {
		got := collectReducer(t, r, s)
		if len(got) != len(want) {
			t.Fatalf("%s emitted %d points, oracle %d", name, len(got), len(want))
		}
		sortSet(got)
		sortSet(want)
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s diverged at %d: %v vs %v", name, i, got[i], want[i])
			}
		}
	}
}

func sortSet(s points.Set) {
	sort.Slice(s, func(i, j int) bool {
		for k := range s[i] {
			if s[i][k] != s[j][k] {
				return s[i][k] < s[j][k]
			}
		}
		return false
	})
}

// TestSpecClassicKernelTravels: the escape hatch must survive the JSON
// trip to workers.
func TestSpecClassicKernelTravels(t *testing.T) {
	in := Spec{Kernel: skyline.SFSAlgorithm, ClassicKernel: true, Dim: 3}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !out.ClassicKernel || out.Kernel != skyline.SFSAlgorithm {
		t.Fatalf("spec did not round-trip: %+v", out)
	}
	// Default specs must omit the field entirely (wire compatibility with
	// pre-flat workers, which ignore unknown fields anyway).
	def, _ := json.Marshal(Spec{})
	var m map[string]interface{}
	if err := json.Unmarshal(def, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["classic_kernel"]; ok {
		t.Fatal("zero spec serialized classic_kernel")
	}
}
