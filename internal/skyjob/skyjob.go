// Package skyjob defines the distributed skyline MapReduce jobs for the
// rpcmr engine: the partitioning job (assign → local skyline) and the
// merging job (single key → global skyline), mirroring the in-process
// pipeline of package driver. Any process that links this package (master
// or worker) has both jobs registered and can participate in a cluster.
package skyjob

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rpcmr"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

// Job names in the rpcmr registry.
const (
	PartitionJobName = "skyline/partition"
	MergeJobName     = "skyline/merge"
)

// Spec parameterizes the partitioning job; it travels to workers as JSON
// so every worker reconstructs an identical partitioner.
type Spec struct {
	Scheme     partition.Scheme `json:"scheme"`
	Dim        int              `json:"dim"`
	Min        []float64        `json:"min"`
	Max        []float64        `json:"max"`
	Partitions int              `json:"partitions"`
	// Kernel selects the sequential skyline algorithm (default BNL).
	Kernel skyline.Algorithm `json:"kernel"`
	// ClassicKernel forces the classic points.Set kernels on every worker
	// instead of the default flat block path (contiguous coordinates,
	// dimension-specialized dominance, merge-tree global reduce). Both
	// paths produce identical skylines.
	ClassicKernel bool `json:"classic_kernel,omitempty"`
	// ClassicShuffle forces the per-WirePair gob transport instead of the
	// default block-framed shuffle (batched point frames, integer
	// partition routing). Implied by ClassicKernel — frames only exist on
	// the flat path. The spec travels to every worker, so one flag flips
	// the whole cluster consistently.
	ClassicShuffle bool `json:"classic_shuffle,omitempty"`
	// AngularSplits and AngularCuts ship a fitted (equi-depth) angular
	// partitioner to workers; empty for other schemes.
	AngularSplits []int         `json:"angular_splits,omitempty"`
	AngularCuts   [][][]float64 `json:"angular_cuts,omitempty"`
	// Codec selects the frame wire codec on every worker: 0 keeps raw v1
	// frames, points.FrameAuto enables the bit-packed v2 encoding wherever
	// it is smaller. Framed path only.
	Codec points.FrameCodec `json:"codec,omitempty"`
	// ReducerBudgetBytes, when > 0, switches framed reduce tasks to the
	// memory-budgeted streaming fold on every worker: frames fold one at a
	// time into a bounded skyline window that spills and multi-passes when
	// a local skyline outgrows it, so worker reduce memory stays near the
	// budget instead of scaling with partition size.
	ReducerBudgetBytes int64 `json:"reducer_budget_bytes,omitempty"`
}

// SpecFor fits a Spec to a dataset, following the paper's partition-count
// rule (2 × nodes) when partitions is given directly by the caller.
func SpecFor(data points.Set, scheme partition.Scheme, partitions int) (Spec, error) {
	if err := data.Validate(); err != nil {
		return Spec{}, fmt.Errorf("skyjob: %w", err)
	}
	min, max := data.Bounds()
	spec := Spec{
		Scheme:     scheme,
		Dim:        data.Dim(),
		Min:        min,
		Max:        max,
		Partitions: partitions,
	}
	if scheme == partition.Angular {
		ap, err := partition.FitAngular(data, partitions)
		if err != nil {
			return Spec{}, err
		}
		spec.AngularSplits = ap.Splits()
		spec.AngularCuts = ap.Cuts()
	}
	return spec, nil
}

// Build reconstructs the partitioner described by the spec.
func (s Spec) Build() (partition.Partitioner, error) {
	min, max := points.Point(s.Min), points.Point(s.Max)
	if len(min) != s.Dim || len(max) != s.Dim {
		return nil, fmt.Errorf("skyjob: spec bounds dimension mismatch")
	}
	switch s.Scheme {
	case partition.Dimensional:
		return partition.NewDimensional(0, min[0], max[0], s.Partitions, s.Dim)
	case partition.Grid:
		return partition.NewGrid(min, max, s.Partitions)
	case partition.Angular:
		if s.AngularSplits != nil {
			return partition.NewAngularWithCuts(min, s.AngularSplits, s.AngularCuts)
		}
		return partition.NewAngular(min, s.Dim, s.Partitions)
	case partition.Random:
		return partition.NewRandom(s.Dim, s.Partitions)
	default:
		return nil, fmt.Errorf("skyjob: unknown scheme %d", int(s.Scheme))
	}
}

func init() {
	rpcmr.RegisterJob(PartitionJobName, newPartitionJob)
	rpcmr.RegisterJob(MergeJobName, newMergeJob)
}

// localReducer builds the local-skyline reducer of the spec's kernel
// path. On the default flat path the group's values decode straight into
// one contiguous block (no per-point allocation) and the block kernel's
// survivors are re-encoded from rows; ClassicKernel restores the original
// Set-typed decode-kernel-encode loop.
func (s Spec) localReducer() mapreduce.Reducer {
	if s.ClassicKernel {
		kernel := skyline.ByAlgorithm(s.Kernel)
		return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
			set := make(points.Set, 0, len(values))
			for _, v := range values {
				p, err := points.Decode(v)
				if err != nil {
					return err
				}
				set = append(set, p)
			}
			for _, p := range kernel(set) {
				emit(key, points.Encode(p))
			}
			return nil
		})
	}
	kernel := skyline.BlockByAlgorithm(s.Kernel)
	return blockReducer(func(blk *points.Block) *points.Block { return kernel(blk) })
}

// mergeReducer is the merging job's final reducer: on the flat path the
// single "global" group runs the parallel merge tree (chunked block
// skylines folded pairwise across goroutines) instead of one sequential
// kernel pass; the classic path keeps the paper's single-reducer kernel.
func (s Spec) mergeReducer() mapreduce.Reducer {
	if s.ClassicKernel {
		return s.localReducer()
	}
	return blockReducer(func(blk *points.Block) *points.Block {
		return skyline.ParallelBlock(context.Background(), blk, 0)
	})
}

// blockReducer wraps a block kernel into the decode-into-block reducer
// shape shared by the flat-path jobs.
func blockReducer(kernel func(*points.Block) *points.Block) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		blk := points.NewBlock(0, len(values))
		for _, v := range values {
			if err := points.AppendDecode(blk, v); err != nil {
				return err
			}
		}
		sky := kernel(blk)
		for i := 0; i < sky.Len(); i++ {
			emit(key, points.Encode(points.Point(sky.Row(i))))
		}
		return nil
	})
}

// budgetedFold adapts skyline.BudgetedFold to the engine's FrameFold
// interface for worker-side streaming reduce (mirrors the driver's
// adapter; duplicated to keep skyjob free of the in-process driver).
type budgetedFold struct {
	partition int
	fold      *skyline.BudgetedFold
}

func (b *budgetedFold) Absorb(blk *points.Block) error { return b.fold.Absorb(blk) }

func (b *budgetedFold) Finish(emit mapreduce.EmitPoint) error {
	out, err := b.fold.Finish()
	if err != nil {
		return err
	}
	for i := 0; i < out.Len(); i++ {
		emit(b.partition, out.Row(i))
	}
	return nil
}

func (b *budgetedFold) PeakBytes() int64 { return b.fold.Stats().PeakBytes }
func (b *budgetedFold) Passes() int      { return b.fold.Stats().Passes }

// folder returns the spec's streaming FrameFolder, or nil when the spec
// is unbudgeted (keeping the assemble-everything reducers).
func (s Spec) folder() mapreduce.FrameFolder {
	if s.ReducerBudgetBytes <= 0 {
		return nil
	}
	dim, budget, codec := s.Dim, s.ReducerBudgetBytes, s.Codec
	return func(partition int) mapreduce.FrameFold {
		return &budgetedFold{partition: partition,
			fold: skyline.NewBudgetedFold(dim, budget, "", codec)}
	}
}

// framed reports whether the spec selects the block-framed shuffle:
// frames pack flat blocks, so the classic kernel path implies the
// classic shuffle too.
func (s Spec) framed() bool { return !s.ClassicKernel && !s.ClassicShuffle }

func newPartitionJob(params []byte) (rpcmr.Job, error) {
	var spec Spec
	if err := json.Unmarshal(params, &spec); err != nil {
		return rpcmr.Job{}, fmt.Errorf("skyjob: bad params: %w", err)
	}
	part, err := spec.Build()
	if err != nil {
		return rpcmr.Job{}, err
	}
	if spec.framed() {
		kernel := skyline.BlockByAlgorithm(spec.Kernel)
		return rpcmr.Job{
			FrameMapper: mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
				p, err := points.Decode(rec)
				if err != nil {
					return err
				}
				id, err := part.Assign(p)
				if err != nil {
					return err
				}
				emit(id, p)
				return nil
			}),
			// The local-skyline combiner runs directly on the assembled
			// block before its frame is sealed for the wire.
			FrameCombiner: func(partition int, blk *points.Block) (*points.Block, error) {
				return kernel(blk), nil
			},
			FrameReducer: mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
				sky := kernel(blk)
				for i := 0; i < sky.Len(); i++ {
					emit(partition, sky.Row(i))
				}
				return nil
			}),
			FrameFolder: spec.folder(),
			Codec:       spec.Codec,
		}, nil
	}
	reducer := spec.localReducer()
	return rpcmr.Job{
		Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			p, err := points.Decode(rec)
			if err != nil {
				return err
			}
			id, err := part.Assign(p)
			if err != nil {
				return err
			}
			emit(strconv.Itoa(id), rec)
			return nil
		}),
		Combiner: reducer,
		Reducer:  reducer,
	}, nil
}

func newMergeJob(params []byte) (rpcmr.Job, error) {
	var spec Spec
	if err := json.Unmarshal(params, &spec); err != nil {
		return rpcmr.Job{}, fmt.Errorf("skyjob: bad params: %w", err)
	}
	if spec.framed() {
		kernel := skyline.BlockByAlgorithm(spec.Kernel)
		return rpcmr.Job{
			FrameMapper: mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
				p, err := points.Decode(rec)
				if err != nil {
					return err
				}
				emit(0, p) // paper line 13: output(null, si) — one global partition
				return nil
			}),
			FrameCombiner: func(partition int, blk *points.Block) (*points.Block, error) {
				return kernel(blk), nil
			},
			FrameReducer: mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
				sky := skyline.ParallelBlock(context.Background(), blk, 0)
				for i := 0; i < sky.Len(); i++ {
					emit(partition, sky.Row(i))
				}
				return nil
			}),
			FrameFolder: spec.folder(),
			Codec:       spec.Codec,
		}, nil
	}
	return rpcmr.Job{
		Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			emit("global", rec)
			return nil
		}),
		Combiner: spec.localReducer(),
		Reducer:  spec.mergeReducer(),
	}, nil
}

// Result is the outcome of a distributed skyline computation.
type Result struct {
	Skyline points.Set
	// LocalSkylines maps partition id → local skyline (partition job
	// output).
	LocalSkylines map[int]points.Set
	// MapTime / ReduceTime aggregate the two jobs' phases in the paper's
	// Figure 6 sense: MapTime covers both jobs' map sides, ReduceTime
	// both jobs' reduce sides.
	MapTime, ReduceTime JobResultTiming
}

// JobResultTiming mirrors the rpcmr per-job split.
type JobResultTiming struct {
	PartitionJob, MergeJob float64 // seconds
}

// Optimality computes the paper's Eq. (5) local skyline optimality of the
// distributed run.
func (r *Result) Optimality() float64 {
	return metrics.LocalSkylineOptimality(r.LocalSkylines, r.Skyline)
}

// Compute runs the two-job skyline pipeline on a live rpcmr cluster.
// With a tracer in ctx it records a root span with Partitioning/Merging
// children; with a registry on the master it publishes per-partition
// local skyline sizes alongside the cluster's own series. The default
// spec routes both jobs through the block-framed shuffle; use
// ComputeSpec with Spec.ClassicShuffle (or ClassicKernel) to force the
// per-WirePair transport.
func Compute(ctx context.Context, master *rpcmr.Master, data points.Set, scheme partition.Scheme, partitions, reducers int) (*Result, error) {
	spec, err := SpecFor(data, scheme, partitions)
	if err != nil {
		return nil, err
	}
	return ComputeSpec(ctx, master, data, spec, reducers)
}

// ComputeSpec runs the pipeline with a caller-built Spec — the entry
// point for escape hatches (ClassicKernel, ClassicShuffle) and custom
// kernels.
func ComputeSpec(ctx context.Context, master *rpcmr.Master, data points.Set, spec Spec, reducers int) (*Result, error) {
	params, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	ctx, rootSpan := telemetry.StartSpan(ctx, fmt.Sprintf("skyline:%s", spec.Scheme),
		telemetry.A("scheme", fmt.Sprint(spec.Scheme)),
		telemetry.A("points", len(data)),
		telemetry.A("partitions", spec.Partitions))
	defer rootSpan.End()
	rec := telemetry.RecorderFrom(ctx)
	// Pipeline narration goes to the master's event log (/debug/events);
	// every EventLog method is nil-safe, so no telemetry means no cost.
	ev := master.Events()
	if ev == nil {
		ev = telemetry.EventLogFrom(ctx)
	}
	ev.Info("pipeline start", telemetry.A("scheme", fmt.Sprint(spec.Scheme)),
		telemetry.A("points", len(data)), telemetry.A("partitions", spec.Partitions))
	// The partitioners may round the requested count up to a regular
	// shape (e.g. angular split products), so cover the count the built
	// partitioner actually uses — every planned partition appears in the
	// flight record even when it receives no data.
	if rec != nil {
		if p, err := spec.Build(); err == nil {
			rec.EnsurePartitions(p.Partitions())
		} else {
			rec.EnsurePartitions(spec.Partitions)
		}
	}
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	partCtx, partSpan := telemetry.StartSpan(ctx, "partitioning-job")
	res1, err := master.Run(partCtx, rpcmr.JobSpec{Name: PartitionJobName, Params: params, Reducers: reducers}, input)
	partSpan.End()
	if err != nil {
		return nil, fmt.Errorf("skyjob: partitioning job: %w", err)
	}
	local := make(map[int]points.Set)
	var mergeInput [][]byte
	if res1.Blocks != nil {
		// Frame path: local skylines arrive as per-partition blocks; feed
		// the merge job their rows in ascending partition order.
		ids := make([]int, 0, len(res1.Blocks))
		for id := range res1.Blocks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			blk := res1.Blocks[id]
			local[id] = blk.ToSet()
			for i := 0; i < blk.Len(); i++ {
				mergeInput = append(mergeInput, points.Encode(points.Point(blk.Row(i))))
			}
		}
	} else {
		mergeInput = make([][]byte, 0, len(res1.Pairs))
		for _, pair := range res1.Pairs {
			id, err := strconv.Atoi(pair.Key)
			if err != nil {
				return nil, fmt.Errorf("skyjob: bad partition key %q", pair.Key)
			}
			p, err := points.Decode(pair.Value)
			if err != nil {
				return nil, err
			}
			local[id] = append(local[id], p)
			mergeInput = append(mergeInput, pair.Value)
		}
	}
	if reg := master.Metrics(); reg != nil {
		for id, ls := range local {
			reg.Gauge("skyline_partition_local_size",
				telemetry.L("partition", strconv.Itoa(id))).Set(float64(len(ls)))
		}
	}
	// Partition job evidence: shuffle volume per partition (frame path
	// reports it; the classic transport has no per-partition volume) and
	// local skyline sizes.
	for id, ps := range res1.Partitions {
		rec.AddPartitionShuffle(id, ps.Records, ps.Bytes)
	}
	for id, ls := range local {
		rec.SetLocalSkyline(id, len(ls))
	}
	ev.Info("partitioning job done",
		telemetry.A("local_skyline_points", len(mergeInput)),
		telemetry.A("partitions_hit", len(local)))
	mergeCtx, mergeSpan := telemetry.StartSpan(ctx, "merging-job")
	res2, err := master.Run(mergeCtx, rpcmr.JobSpec{Name: MergeJobName, Params: params, Reducers: 1}, mergeInput)
	mergeSpan.End()
	if err != nil {
		return nil, fmt.Errorf("skyjob: merging job: %w", err)
	}
	var sky points.Set
	if res2.Blocks != nil {
		if blk := res2.Blocks[0]; blk != nil {
			sky = blk.ToSet()
		}
	} else {
		sky = make(points.Set, 0, len(res2.Pairs))
		for _, pair := range res2.Pairs {
			p, err := points.Decode(pair.Value)
			if err != nil {
				return nil, err
			}
			sky = append(sky, p)
		}
	}
	if reg := master.Metrics(); reg != nil {
		reg.Gauge("skyline_global_size").Set(float64(len(sky)))
	}
	// Merge evidence: per-partition survivors (the Eq. (5) numerator) are
	// computed here, where local skylines and the global skyline are both
	// in hand, then the rollups are bridged into the master's registry.
	if rec != nil {
		for id, hits := range metrics.GlobalSurvivors(local, sky) {
			rec.SetGlobalSurvivors(id, hits)
		}
		rec.SetGlobalSkyline(len(sky))
		st := master.Status()
		rec.SetRetryCounts(st.TaskRetries, st.WorkerFailures)
		rec.Publish(master.Metrics())
	}
	ev.Info("pipeline end", telemetry.A("skyline_size", len(sky)))
	return &Result{
		Skyline:       sky,
		LocalSkylines: local,
		MapTime: JobResultTiming{
			PartitionJob: res1.MapTime.Seconds(),
			MergeJob:     res2.MapTime.Seconds(),
		},
		ReduceTime: JobResultTiming{
			PartitionJob: res1.ReduceTime.Seconds(),
			MergeJob:     res2.ReduceTime.Seconds(),
		},
	}, nil
}
