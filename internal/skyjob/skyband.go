package skyjob

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/mapreduce"
	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/rpcmr"
)

// Distributed k-skyband job names.
const (
	SkybandPartitionJobName = "skyline/skyband-partition"
	SkybandMergeJobName     = "skyline/skyband-merge"
)

// skybandSpec extends Spec with the band width K.
type skybandSpec struct {
	Spec
	K int `json:"k"`
}

func init() {
	rpcmr.RegisterJob(SkybandPartitionJobName, newSkybandPartitionJob)
	rpcmr.RegisterJob(SkybandMergeJobName, newSkybandMergeJob)
}

// kSkybandReducer keeps points of each group with fewer than k dominators
// within the group.
func kSkybandReducer(k int) mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		set := make(points.Set, 0, len(values))
		for _, v := range values {
			p, err := points.Decode(v)
			if err != nil {
				return err
			}
			set = append(set, p)
		}
		for i, p := range set {
			dominators := 0
			for j, q := range set {
				if i == j {
					continue
				}
				if points.DominatesOrEqual(q, p) && !q.Equal(p) {
					dominators++
					if dominators >= k {
						break
					}
				}
			}
			if dominators < k {
				emit(key, points.Encode(p))
			}
		}
		return nil
	})
}

func newSkybandPartitionJob(params []byte) (rpcmr.Job, error) {
	var spec skybandSpec
	if err := json.Unmarshal(params, &spec); err != nil {
		return rpcmr.Job{}, fmt.Errorf("skyjob: bad skyband params: %w", err)
	}
	if spec.K < 1 {
		return rpcmr.Job{}, fmt.Errorf("skyjob: skyband k = %d, need >= 1", spec.K)
	}
	part, err := spec.Build()
	if err != nil {
		return rpcmr.Job{}, err
	}
	return rpcmr.Job{
		Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			p, err := points.Decode(rec)
			if err != nil {
				return err
			}
			id, err := part.Assign(p)
			if err != nil {
				return err
			}
			emit(strconv.Itoa(id), rec)
			return nil
		}),
		// No combiner: the local band must see the whole partition; a
		// per-map-task band would be sound but redundant (see the
		// in-process driver's skyband for the argument).
		Reducer: kSkybandReducer(spec.K),
	}, nil
}

func newSkybandMergeJob(params []byte) (rpcmr.Job, error) {
	var spec skybandSpec
	if err := json.Unmarshal(params, &spec); err != nil {
		return rpcmr.Job{}, fmt.Errorf("skyjob: bad skyband params: %w", err)
	}
	if spec.K < 1 {
		return rpcmr.Job{}, fmt.Errorf("skyjob: skyband k = %d, need >= 1", spec.K)
	}
	return rpcmr.Job{
		Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
			emit("band", rec)
			return nil
		}),
		Reducer: kSkybandReducer(spec.K),
	}, nil
}

// ComputeSkyband runs the distributed two-job k-skyband on a live cluster.
func ComputeSkyband(ctx context.Context, master *rpcmr.Master, data points.Set, scheme partition.Scheme, k, partitions, reducers int) (points.Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("skyjob: skyband k = %d, need >= 1", k)
	}
	base, err := SpecFor(data, scheme, partitions)
	if err != nil {
		return nil, err
	}
	params, err := json.Marshal(skybandSpec{Spec: base, K: k})
	if err != nil {
		return nil, err
	}
	input := make([][]byte, len(data))
	for i, p := range data {
		input[i] = points.Encode(p)
	}
	res1, err := master.Run(ctx, rpcmr.JobSpec{Name: SkybandPartitionJobName, Params: params, Reducers: reducers}, input)
	if err != nil {
		return nil, fmt.Errorf("skyjob: skyband partitioning job: %w", err)
	}
	mergeInput := make([][]byte, len(res1.Pairs))
	for i, pair := range res1.Pairs {
		mergeInput[i] = pair.Value
	}
	res2, err := master.Run(ctx, rpcmr.JobSpec{Name: SkybandMergeJobName, Params: params, Reducers: 1}, mergeInput)
	if err != nil {
		return nil, fmt.Errorf("skyjob: skyband merging job: %w", err)
	}
	band := make(points.Set, 0, len(res2.Pairs))
	for _, pair := range res2.Pairs {
		p, err := points.Decode(pair.Value)
		if err != nil {
			return nil, err
		}
		band = append(band, p)
	}
	return band, nil
}
