package skyjob

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/partition"
	"repro/internal/points"
	"repro/internal/skyline"
)

// TestClusterBudgetedMatchesUnbudgeted: a spec with a reducer budget and
// the v2 codec must produce exactly the default spec's skylines on a
// live cluster — including a budget tiny enough to force multi-pass
// folds on every worker.
func TestClusterBudgetedMatchesUnbudgeted(t *testing.T) {
	master := startCluster(t, 3)
	data := uniformSet(7, 1500, 4)
	want := skyline.Naive(data)

	spec, err := SpecFor(data, partition.Angular, 8)
	if err != nil {
		t.Fatal(err)
	}
	base, err := ComputeSpec(context.Background(), master, data, spec, 3)
	if err != nil {
		t.Fatalf("unbudgeted: %v", err)
	}

	for _, budget := range []int64{1 << 24, 4 * 8 * 16} {
		spec.ReducerBudgetBytes = budget
		spec.Codec = points.FrameAuto
		got, err := ComputeSpec(context.Background(), master, data, spec, 3)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !sameMultiset(got.Skyline, base.Skyline) || !sameMultiset(got.Skyline, want) {
			t.Fatalf("budget %d: skyline %d pts, unbudgeted %d, oracle %d",
				budget, len(got.Skyline), len(base.Skyline), len(want))
		}
		for id, ls := range base.LocalSkylines {
			if !sameMultiset(ls, got.LocalSkylines[id]) {
				t.Fatalf("budget %d: partition %d local skylines differ", budget, id)
			}
		}
	}
}

// TestSpecBudgetTravels: budget and codec must survive the JSON trip to
// workers and materialize as a streaming folder.
func TestSpecBudgetTravels(t *testing.T) {
	spec := Spec{Scheme: partition.Grid, Dim: 3, Min: []float64{0, 0, 0},
		Max: []float64{1, 1, 1}, Partitions: 4,
		Codec: points.FrameAuto, ReducerBudgetBytes: 1 << 20}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.ReducerBudgetBytes != spec.ReducerBudgetBytes || back.Codec != spec.Codec {
		t.Fatalf("spec round-trip lost budget/codec: %+v", back)
	}
	if back.folder() == nil {
		t.Fatal("budgeted spec produced no folder")
	}
	back.ReducerBudgetBytes = 0
	if back.folder() != nil {
		t.Fatal("unbudgeted spec produced a folder")
	}
}
