package skyjob

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/partition"
	"repro/internal/telemetry"
)

// TestClusterFlightRecord: a recorded cluster run must produce a flight
// report that covers every planned partition, reproduces the pipeline's
// own Eq. (5) optimality, carries per-task records, and publishes the
// skew rollups into the master's /metrics exposition.
func TestClusterFlightRecord(t *testing.T) {
	reg := telemetry.NewRegistry()
	master := startMeteredCluster(t, 3, reg)
	rec := telemetry.NewRecorder("skyline:MR-Angle")
	ctx := telemetry.WithRecorder(context.Background(), rec)
	data := uniformSet(11, 900, 3)
	res, err := Compute(ctx, master, data, partition.Angular, 6, 2)
	if err != nil {
		t.Fatal(err)
	}

	// The angular partitioner may round the requested 6 up to a regular
	// split product; the report must cover the count actually planned.
	spec, err := SpecFor(data, partition.Angular, 6)
	if err != nil {
		t.Fatal(err)
	}
	part, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	partitions := part.Partitions()

	rep := rec.Report()
	if len(rep.Partitions) != partitions {
		t.Fatalf("report covers %d partitions, want %d", len(rep.Partitions), partitions)
	}
	if math.Abs(rep.Optimality-res.Optimality()) > 1e-9 {
		t.Errorf("recorder optimality %.12f != pipeline optimality %.12f",
			rep.Optimality, res.Optimality())
	}
	if rep.GlobalSkyline != len(res.Skyline) {
		t.Errorf("global skyline = %d, want %d", rep.GlobalSkyline, len(res.Skyline))
	}
	for _, p := range rep.Partitions {
		if got := len(res.LocalSkylines[p.Partition]); got != p.LocalSkyline {
			t.Errorf("p%d local skyline = %d, result says %d", p.Partition, p.LocalSkyline, got)
		}
		if p.GlobalSurvivors > p.LocalSkyline {
			t.Errorf("p%d survivors %d > local skyline %d", p.Partition, p.GlobalSurvivors, p.LocalSkyline)
		}
	}
	// Both jobs' task completions are recorded (at least one map and one
	// reduce task each).
	kinds := map[string]int{}
	for _, task := range rep.Tasks {
		kinds[task.Kind]++
	}
	if kinds["map"] == 0 || kinds["reduce"] == 0 {
		t.Errorf("task records by kind = %v, want both map and reduce", kinds)
	}
	// A clean run surfaces zero retries/failures — the fields exist and
	// mirror rpcmr.Status rather than being dropped.
	st := master.Status()
	if rep.TaskRetries != st.TaskRetries || rep.WorkerFailures != st.WorkerFailures {
		t.Errorf("report retries/failures = %d/%d, status says %d/%d",
			rep.TaskRetries, rep.WorkerFailures, st.TaskRetries, st.WorkerFailures)
	}

	// The Publish bridge landed the rollups in the Prometheus exposition.
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParsePrometheus(string(body))
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v", err)
	}
	for _, name := range []string{
		"skyline_load_max", "skyline_load_mean", "skyline_load_imbalance",
		"skyline_load_gini", "skyline_local_optimality", "skyline_stragglers",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if math.Abs(samples["skyline_local_optimality"]-rep.Optimality) > 1e-9 {
		t.Errorf("exposed optimality %v != report %v",
			samples["skyline_local_optimality"], rep.Optimality)
	}

	// And the flight JSON round-trips through the /debug handler.
	mux2 := http.NewServeMux()
	telemetry.MountFlightRecorder(mux2, func() *telemetry.Recorder { return rec })
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + telemetry.FlightRecorderPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var decoded telemetry.Report
	if err := json.NewDecoder(resp2.Body).Decode(&decoded); err != nil {
		t.Fatalf("flight JSON does not decode: %v", err)
	}
	if len(decoded.Partitions) != partitions {
		t.Errorf("served report covers %d partitions, want %d", len(decoded.Partitions), partitions)
	}
}
