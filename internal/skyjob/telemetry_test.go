package skyjob

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/partition"
	"repro/internal/rpcmr"
	"repro/internal/telemetry"
)

func startMeteredCluster(t *testing.T, workers int, reg *telemetry.Registry) *rpcmr.Master {
	t.Helper()
	master, err := rpcmr.NewMaster(rpcmr.MasterConfig{SplitSize: 200, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	for i := 0; i < workers; i++ {
		w, err := rpcmr.NewWorker(rpcmr.WorkerConfig{
			MasterAddr:   master.Addr(),
			ID:           "mw" + strconv.Itoa(i),
			PollInterval: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		go func() { _ = w.Run(context.Background()) }()
	}
	return master
}

// TestComputeTrace: a traced two-job run must yield the nested span tree
// the paper's Figure 6 breakdown is read from — a root skyline span with
// Partitioning and Merging children, each wrapping an rpcmr job span
// that itself has map/shuffle/reduce children — and the tree must export
// as valid Chrome trace_event JSON.
func TestComputeTrace(t *testing.T) {
	reg := telemetry.NewRegistry()
	master := startMeteredCluster(t, 2, reg)
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	data := uniformSet(7, 600, 2)
	res, err := Compute(ctx, master, data, partition.Angular, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Skyline) == 0 {
		t.Fatal("empty skyline")
	}

	byName := map[string]telemetry.SpanData{}
	parents := map[uint64]telemetry.SpanData{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
		parents[s.ID] = s
	}
	root, ok := byName["skyline:MR-Angle"]
	if !ok {
		t.Fatalf("no root span; got %v", names(tr))
	}
	for jobSpanName, wrapped := range map[string]string{
		"partitioning-job": "rpcmr-job:" + PartitionJobName,
		"merging-job":      "rpcmr-job:" + MergeJobName,
	} {
		js, ok := byName[jobSpanName]
		if !ok {
			t.Fatalf("no %s span; got %v", jobSpanName, names(tr))
		}
		if js.Parent != root.ID {
			t.Errorf("%s is not a child of the root span", jobSpanName)
		}
		ws, ok := byName[wrapped]
		if !ok {
			t.Fatalf("no %s span; got %v", wrapped, names(tr))
		}
		if ws.Parent != js.ID {
			t.Errorf("%s is not a child of %s", wrapped, jobSpanName)
		}
	}
	// Phase spans exist per job; each one's ancestry must reach the root.
	phases := 0
	for _, s := range tr.Spans() {
		switch s.Name {
		case "map", "shuffle", "reduce":
			phases++
			cur := s
			for cur.Parent != 0 {
				cur = parents[cur.Parent]
			}
			if cur.ID != root.ID {
				t.Errorf("%s span not rooted at the skyline span", s.Name)
			}
		}
	}
	if phases != 6 { // 3 phases × 2 jobs
		t.Errorf("phase spans = %d, want 6", phases)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(tr.Spans()) {
		t.Errorf("trace events = %d, spans = %d", len(doc.TraceEvents), len(tr.Spans()))
	}

	// Per-partition gauges landed on the master's registry.
	snap := reg.Snapshot()
	sizes := 0
	for name := range snap.Gauges {
		if strings.HasPrefix(name, "skyline_partition_local_size{") {
			sizes++
		}
	}
	if sizes != len(res.LocalSkylines) {
		t.Errorf("local-size gauges = %d, partitions with output = %d", sizes, len(res.LocalSkylines))
	}
	if snap.Gauges["skyline_global_size"] != float64(len(res.Skyline)) {
		t.Errorf("skyline_global_size = %v, want %d", snap.Gauges["skyline_global_size"], len(res.Skyline))
	}
}

func names(tr *telemetry.Tracer) []string {
	var out []string
	for _, s := range tr.Spans() {
		out = append(out, s.Name)
	}
	return out
}
