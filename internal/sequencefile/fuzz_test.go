package sequencefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the reader: it must never panic and
// must either produce records or a wrapped ErrCorrupt/EOF.
func FuzzReader(f *testing.F) {
	// Seed with a valid file, a truncation, and garbage.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("key"), []byte("value"))
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("SKSF\x01garbage"))
	f.Add([]byte{})
	f.Add([]byte("SKSF\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	// A frame-sized record (multi-KB value, like one shuffle frame per
	// record in .fseq spills) truncated mid-value.
	var frameBuf bytes.Buffer
	fw := NewWriter(&frameBuf)
	_ = fw.Append(nil, bytes.Repeat([]byte{0x3f}, 4096))
	_ = fw.Flush()
	f.Add(frameBuf.Bytes()[:frameBuf.Len()/2])

	// An oversized record: the length header declares half a gigabyte
	// but only a few bytes follow. The reader must error, not allocate
	// the declared size or panic.
	over := []byte("SKSF\x01\x00") // header, keyLen=0
	var hdr [10]byte
	n := binary.PutUvarint(hdr[:], 1<<29)
	over = append(over, hdr[:n]...)
	over = append(over, bytes.Repeat([]byte{0xAB}, 64)...)
	f.Add(over)

	// Same shapes through the DEFLATE (version 2) layer.
	var cbuf bytes.Buffer
	cw := NewCompressedWriter(&cbuf)
	_ = cw.Append([]byte("k"), bytes.Repeat([]byte{9}, 2048))
	_ = cw.Flush()
	f.Add(cbuf.Bytes())
	f.Add(cbuf.Bytes()[:cbuf.Len()-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
		}
	})
}

// FuzzRoundTrip checks that whatever we write, we read back verbatim.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xff, 0x00}, bytes.Repeat([]byte{7}, 300))

	f.Fuzz(func(t *testing.T, key, value []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Append(key, value); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !bytes.Equal(recs[0].Key, key) || !bytes.Equal(recs[0].Value, value) {
			t.Fatalf("round trip mismatch")
		}
	})
}
