package sequencefile

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the reader: it must never panic and
// must either produce records or a wrapped ErrCorrupt/EOF.
func FuzzReader(f *testing.F) {
	// Seed with a valid file, a truncation, and garbage.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Append([]byte("key"), []byte("value"))
	_ = w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add([]byte("SKSF\x01garbage"))
	f.Add([]byte{})
	f.Add([]byte("SKSF\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unexpected error type: %v", err)
				}
				return
			}
		}
	})
}

// FuzzRoundTrip checks that whatever we write, we read back verbatim.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("key"), []byte("value"))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xff, 0x00}, bytes.Repeat([]byte{7}, 300))

	f.Fuzz(func(t *testing.T, key, value []byte) {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Append(key, value); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		recs, err := ReadAll(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || !bytes.Equal(recs[0].Key, key) || !bytes.Equal(recs[0].Value, value) {
			t.Fatalf("round trip mismatch")
		}
	})
}
