package sequencefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{[]byte("k1"), []byte("v1")},
		{[]byte(""), []byte("empty key")},
		{[]byte("empty value"), []byte("")},
		{[]byte("big"), bytes.Repeat([]byte{0xAB}, 100000)},
	}
	for _, rec := range recs {
		if err := w.Append(rec.Key, rec.Value); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(recs) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i].Key, recs[i].Key) || !bytes.Equal(got[i].Value, recs[i].Value) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("read %d records from empty file", len(got))
	}
}

func TestMissingHeader(t *testing.T) {
	_, err := ReadAll(bytes.NewReader(nil))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := ReadAll(bytes.NewReader([]byte("NOPE\x01")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestBadVersion(t *testing.T) {
	_, err := ReadAll(bytes.NewReader([]byte("SKSF\x07")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestBitFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("key"), []byte("value-to-corrupt")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit inside the value region (past header + varints + key).
	data[len(data)-6] ^= 0x01
	_, err := ReadAll(bytes.NewReader(data))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupted record read back without error: %v", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("key"), bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) - 10, 6} {
		_, err := ReadAll(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d undetected: %v", cut, err)
		}
	}
}

func TestNextAfterEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("first post-end Next = %v, want EOF", err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("second post-end Next = %v, want EOF", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range pairs {
			if err := w.Append(p[0], p[1]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(pairs) {
			return false
		}
		for i, p := range pairs {
			if !bytes.Equal(got[i].Key, p[0]) || !bytes.Equal(got[i].Value, p[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReturnedSlicesAreOwned(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("k2"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	first, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if string(first.Key) != "k1" || string(first.Value) != "v1" {
		t.Error("earlier record mutated by later read")
	}
}

func BenchmarkWriteRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	key := make([]byte, 16)
	val := make([]byte, 128)
	rng.Read(key)
	rng.Read(val)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for j := 0; j < 100; j++ {
			if err := w.Append(key, val); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadAll(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	recs := []Record{
		{[]byte("k1"), bytes.Repeat([]byte("abc"), 1000)},
		{[]byte(""), []byte("empty key")},
		{[]byte("k3"), []byte{}},
	}
	for _, rec := range recs {
		if err := w.Append(rec.Key, rec.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i].Key, recs[i].Key) || !bytes.Equal(got[i].Value, recs[i].Value) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestCompressedActuallyCompresses(t *testing.T) {
	payload := bytes.Repeat([]byte("repetitive payload "), 500)
	var raw, comp bytes.Buffer
	wr := NewWriter(&raw)
	wc := NewCompressedWriter(&comp)
	for i := 0; i < 20; i++ {
		if err := wr.Append([]byte("k"), payload); err != nil {
			t.Fatal(err)
		}
		if err := wc.Append([]byte("k"), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := wc.Flush(); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= raw.Len()/5 {
		t.Errorf("compressed %d bytes vs raw %d — poor ratio on repetitive data", comp.Len(), raw.Len())
	}
}

func TestCompressedEmpty(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("records from empty compressed file: %d", len(got))
	}
}

func TestCompressedCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewCompressedWriter(&buf)
	if err := w.Append([]byte("key"), bytes.Repeat([]byte("v"), 5000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadAll(bytes.NewReader(data)); err == nil {
		t.Error("corrupted compressed stream read without error")
	}
}

// TestOversizedHeaderDoesNotOverAllocate: a corrupt length header
// declaring far more data than the stream holds must fail fast without
// allocating anywhere near the declared size. Frame spills put one
// multi-KB frame per record, so a flipped length byte can easily claim
// hundreds of megabytes.
func TestOversizedHeaderDoesNotOverAllocate(t *testing.T) {
	const declared = 1 << 29 // 512 MiB, inside the maxLen sanity bound
	stream := []byte("SKSF\x01\x00")
	var hdr [10]byte
	n := binary.PutUvarint(hdr[:], declared)
	stream = append(stream, hdr[:n]...)
	stream = append(stream, bytes.Repeat([]byte{0xCD}, 1024)...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := NewReader(bytes.NewReader(stream)).Next()
	runtime.ReadMemStats(&after)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized record error = %v, want ErrCorrupt", err)
	}
	// Only ~1 KiB was actually present; allocation must stay bounded by
	// the chunked growth policy, not the 512 MiB the header lied about.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 8<<20 {
		t.Errorf("reading truncated oversized record allocated %d bytes", grew)
	}
}

// TestReadCappedLargeRecord: genuinely large records (above the 1 MiB
// pre-size cap) still round-trip intact through the chunked reader.
func TestReadCappedLargeRecord(t *testing.T) {
	val := make([]byte, readChunk*3+12345)
	rnd := rand.New(rand.NewSource(77))
	rnd.Read(val)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !bytes.Equal(recs[0].Value, val) {
		t.Fatal("large record did not round-trip")
	}
}
