// Package sequencefile implements a minimal binary key-value record format
// in the spirit of Hadoop's SequenceFile, used by the MapReduce engine to
// spill intermediate (key, value) pairs to disk between phases.
//
// File layout:
//
//	magic   [4]byte  "SKSF"
//	version uint8    1 (raw) or 2 (record stream DEFLATE-compressed)
//	records:
//	  keyLen   uvarint
//	  valueLen uvarint
//	  key      [keyLen]byte
//	  value    [valueLen]byte
//	  crc      uint32 (little-endian) — CRC-32 (IEEE) of key||value
//
// The format is self-delimiting and detects torn or corrupted records via
// the per-record checksum. In version 2 everything after the header is one
// flate stream holding the same record layout — the storage trade-off of
// Hadoop's block-compressed SequenceFiles.
package sequencefile

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

var magic = [4]byte{'S', 'K', 'S', 'F'}

const (
	versionRaw        = 1
	versionCompressed = 2
)

// ErrCorrupt is returned (wrapped) when a record fails its checksum or the
// header is malformed.
var ErrCorrupt = errors.New("sequencefile: corrupt data")

// Record is one key-value pair.
type Record struct {
	Key   []byte
	Value []byte
}

// Writer appends records to an underlying stream.
type Writer struct {
	base    *bufio.Writer // the raw underlying stream
	out     io.Writer     // where records go: base, or the flate layer
	fw      *flate.Writer // non-nil in compressed mode
	version byte
	started bool
	n       int
}

// NewWriter creates a raw (version 1) Writer. The header is written
// lazily on the first Append so that creating a writer is infallible.
func NewWriter(w io.Writer) *Writer {
	b := bufio.NewWriterSize(w, 1<<16)
	return &Writer{base: b, out: b, version: versionRaw}
}

// NewCompressedWriter creates a version-2 Writer whose record stream is
// DEFLATE-compressed. Use for cold spill files where I/O volume matters
// more than CPU.
func NewCompressedWriter(w io.Writer) *Writer {
	b := bufio.NewWriterSize(w, 1<<16)
	fw, _ := flate.NewWriter(b, flate.DefaultCompression) // level is valid; err impossible
	return &Writer{base: b, out: fw, fw: fw, version: versionCompressed}
}

func (w *Writer) writeHeader() error {
	if w.started {
		return nil
	}
	if _, err := w.base.Write(magic[:]); err != nil {
		return err
	}
	if err := w.base.WriteByte(w.version); err != nil {
		return err
	}
	w.started = true
	return nil
}

// Append writes one record.
func (w *Writer) Append(key, value []byte) error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	var hdr [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(value)))
	if _, err := w.out.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.out.Write(key); err != nil {
		return err
	}
	if _, err := w.out.Write(value); err != nil {
		return err
	}
	crc := crc32.ChecksumIEEE(key)
	crc = crc32.Update(crc, crc32.IEEETable, value)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc)
	if _, err := w.out.Write(crcBuf[:]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records appended so far.
func (w *Writer) Count() int { return w.n }

// Flush finalizes and writes buffered data to the underlying stream. An
// empty file (no Append calls) still gets a valid header so readers
// accept it. For compressed writers, Flush closes the flate stream —
// further Appends are invalid after Flush.
func (w *Writer) Flush() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if w.fw != nil {
		if err := w.fw.Close(); err != nil {
			return err
		}
	}
	return w.base.Flush()
}

// Reader iterates over records of a stream produced by Writer.
type Reader struct {
	r      *bufio.Reader
	header bool
}

// NewReader creates a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (r *Reader) readHeader() error {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: missing or truncated header", ErrCorrupt)
		}
		return err
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	switch hdr[4] {
	case versionRaw:
	case versionCompressed:
		// Everything after the header is one flate stream of records.
		r.r = bufio.NewReaderSize(flate.NewReader(r.r), 1<<16)
	default:
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[4])
	}
	r.header = true
	return nil
}

// Next returns the next record, or io.EOF after the last one. The returned
// slices are freshly allocated and owned by the caller.
func (r *Reader) Next() (Record, error) {
	if !r.header {
		if err := r.readHeader(); err != nil {
			return Record{}, err
		}
	}
	keyLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: key length: %v", ErrCorrupt, err)
	}
	valLen, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("%w: value length: %v", ErrCorrupt, err)
	}
	const maxLen = 1 << 30
	if keyLen > maxLen || valLen > maxLen {
		return Record{}, fmt.Errorf("%w: implausible record size %d/%d", ErrCorrupt, keyLen, valLen)
	}
	var rec Record
	if rec.Key, err = readCapped(r.r, keyLen); err != nil {
		return Record{}, fmt.Errorf("%w: truncated key: %v", ErrCorrupt, err)
	}
	if rec.Value, err = readCapped(r.r, valLen); err != nil {
		return Record{}, fmt.Errorf("%w: truncated value: %v", ErrCorrupt, err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.r, crcBuf[:]); err != nil {
		return Record{}, fmt.Errorf("%w: truncated checksum: %v", ErrCorrupt, err)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	got := crc32.ChecksumIEEE(rec.Key)
	got = crc32.Update(got, crc32.IEEETable, rec.Value)
	if got != want {
		return Record{}, fmt.Errorf("%w: checksum mismatch (got %08x, want %08x)", ErrCorrupt, got, want)
	}
	return rec, nil
}

// readChunk bounds how far ahead of delivered data the reader will
// allocate. Buffers are pre-sized from the record-length header up to
// this cap, then grow geometrically (still capped by n) only as
// io.ReadFull actually delivers bytes — so a forged multi-gigabyte
// length in a corrupt or truncated stream costs at most one chunk
// before the read errors, instead of the full declared size.
const readChunk = 1 << 20

// readCapped reads exactly n bytes from r with allocation capped as
// described on readChunk. On truncation it returns io.ErrUnexpectedEOF
// (or the underlying read error) and the caller discards the partial
// buffer.
func readCapped(r io.Reader, n uint64) ([]byte, error) {
	pre := n
	if pre > readChunk {
		pre = readChunk
	}
	buf := make([]byte, 0, pre)
	for uint64(len(buf)) < n {
		if len(buf) == cap(buf) {
			// All delivered bytes accounted for; trust the header a
			// little further. Doubling keeps total copying linear while
			// never allocating more than 2x what the stream has proven.
			grow := uint64(cap(buf)) * 2
			if grow > n {
				grow = n
			}
			next := make([]byte, len(buf), grow)
			copy(next, buf)
			buf = next
		}
		step := uint64(cap(buf)) - uint64(len(buf))
		if rem := n - uint64(len(buf)); step > rem {
			step = rem
		}
		start := len(buf)
		buf = buf[:start+int(step)]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return buf, nil
}

// ReadAll drains the reader into a slice. It is a convenience for tests
// and small files.
func ReadAll(r io.Reader) ([]Record, error) {
	sr := NewReader(r)
	var out []Record
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
