package rpcmr

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/points"
	"repro/internal/skyline"
	"repro/internal/telemetry"
)

const frameParts = 5

// ensureFrameJobs registers the framed skyline job and its classic
// WirePair twin. Separate Once from ensureJobs, which it calls first:
// ensureJobs owns resetRegistryForTest, so ordering matters.
var frameJobsOnce sync.Once

func ensureFrameJobs() {
	ensureJobs()
	frameJobsOnce.Do(func() {
		// skyline-frame: route by first coordinate, local skyline as the
		// combiner on the assembled block, per-partition skyline in reduce.
		RegisterJob("skyline-frame", func(params []byte) (Job, error) {
			return Job{
				FrameMapper: mapreduce.FrameMapperFunc(func(rec []byte, emit mapreduce.EmitPoint) error {
					p, err := points.Decode(rec)
					if err != nil {
						return err
					}
					emit(int(p[0])%frameParts, p)
					return nil
				}),
				FrameCombiner: func(partition int, blk *points.Block) (*points.Block, error) {
					return skyline.BlockBNL(blk), nil
				},
				FrameReducer: mapreduce.FrameReducerFunc(func(partition int, blk *points.Block, emit mapreduce.EmitPoint) error {
					sky := skyline.BlockBNL(blk)
					for i := 0; i < sky.Len(); i++ {
						emit(partition, sky.Row(i))
					}
					return nil
				}),
			}, nil
		})
		// skyline-classic: the same job through the WirePair path.
		sky := mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
			set := make(points.Set, 0, len(values))
			for _, v := range values {
				p, err := points.Decode(v)
				if err != nil {
					return err
				}
				set = append(set, p)
			}
			for _, p := range skyline.BNL(set) {
				emit(key, points.Encode(p))
			}
			return nil
		})
		RegisterJob("skyline-classic", func(params []byte) (Job, error) {
			return Job{
				Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
					p, err := points.Decode(rec)
					if err != nil {
						return err
					}
					emit(strconv.Itoa(int(p[0])%frameParts), rec)
					return nil
				}),
				Combiner: sky,
				Reducer:  sky,
			}, nil
		})
	})
}

// frameClusterInput builds a duplicate-heavy dataset.
func frameClusterInput(n, d int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	input := make([][]byte, 0, n+n/5)
	for i := 0; i < n; i++ {
		p := make(points.Point, d)
		for j := range p {
			p[j] = float64(rng.Intn(30))
		}
		input = append(input, points.Encode(p))
	}
	for i := 0; i < n/5; i++ {
		input = append(input, append([]byte(nil), input[i]...))
	}
	return input
}

// distinctSorted reduces a multiset to its sorted distinct points.
func distinctSorted(s points.Set) points.Set {
	out := s.Dedup()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestFramedJobMatchesClassic runs the same skyline job through the
// frame transport and the WirePair transport on a 3-worker cluster and
// requires identical per-partition skylines.
func TestFramedJobMatchesClassic(t *testing.T) {
	ensureFrameJobs()
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 100}, 3, WorkerConfig{})
	input := frameClusterInput(1500, 4, 11)

	framed, err := master.Run(context.Background(),
		JobSpec{Name: "skyline-frame", Reducers: 3}, input)
	if err != nil {
		t.Fatal(err)
	}
	if framed.Blocks == nil || framed.Pairs != nil {
		t.Fatal("framed job must return Blocks, not Pairs")
	}
	classic, err := master.Run(context.Background(),
		JobSpec{Name: "skyline-classic", Reducers: 3}, input)
	if err != nil {
		t.Fatal(err)
	}

	want := map[int]points.Set{}
	for _, p := range classic.Pairs {
		id, err := strconv.Atoi(p.Key)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := points.Decode(p.Value)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = append(want[id], pt)
	}
	if len(framed.Blocks) != len(want) {
		t.Fatalf("partitions: framed %d, classic %d", len(framed.Blocks), len(want))
	}
	for id, w := range want {
		blk := framed.Blocks[id]
		if blk == nil {
			t.Fatalf("partition %d missing from framed result", id)
		}
		ws, gs := distinctSorted(w), distinctSorted(blk.ToSet())
		if len(ws) != len(gs) {
			t.Fatalf("partition %d: skyline sizes %d vs %d", id, len(gs), len(ws))
		}
		for i := range ws {
			if !ws[i].Equal(gs[i]) {
				t.Fatalf("partition %d point %d: %v vs %v", id, i, gs[i], ws[i])
			}
		}
	}
}

// TestFramedShuffleMetrics checks the per-worker frame-byte series land
// in the master's registry with payload semantics.
func TestFramedShuffleMetrics(t *testing.T) {
	ensureFrameJobs()
	reg := telemetry.NewRegistry()
	master, workers, _ := newCluster(t, MasterConfig{SplitSize: 200, Metrics: reg}, 2, WorkerConfig{})
	input := frameClusterInput(800, 3, 7)
	if _, err := master.Run(context.Background(),
		JobSpec{Name: "skyline-frame", Reducers: 2}, input); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, w := range workers {
		total += reg.Counter("rpcmr_shuffle_bytes_total", telemetry.L("worker", w.cfg.ID)).Value()
	}
	if total == 0 {
		t.Fatal("rpcmr_shuffle_bytes_total never incremented")
	}
	// Payload semantics: combiner output is at most the input, so bytes
	// must stay below the raw coordinate volume plus headers — far below
	// any gob-envelope figure for the same traffic.
	rawCoords := int64(len(input) * 3 * 8)
	if total > rawCoords+rawCoords/2 {
		t.Fatalf("shuffle bytes %d exceed plausible payload bound %d", total, rawCoords+rawCoords/2)
	}
}

// TestFramedWorkerCrashRecovery: the frame path inherits lease-expiry
// reassignment — a worker vanishing mid-job must not lose frames.
func TestFramedWorkerCrashRecovery(t *testing.T) {
	ensureFrameJobs()
	mcfg := MasterConfig{SplitSize: 100, TaskLease: 200 * time.Millisecond}
	master, _, _ := newCluster(t, mcfg, 1, WorkerConfig{VanishAfterTasks: 2})

	healthy, err := NewWorker(WorkerConfig{MasterAddr: master.Addr(), ID: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthy.Close() })
	go func() { _ = healthy.Run(context.Background()) }()

	input := frameClusterInput(1000, 3, 3)
	res, err := master.Run(context.Background(),
		JobSpec{Name: "skyline-frame", Reducers: 2}, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) == 0 {
		t.Fatal("no output blocks after crash recovery")
	}
	total := 0
	for _, blk := range res.Blocks {
		total += blk.Len()
	}
	if total == 0 {
		t.Fatal("empty skyline after crash recovery")
	}
}
