// Package rpcmr is a distributed MapReduce engine over net/rpc: a Master
// that owns job state and Workers that connect over TCP, pull tasks,
// execute registered job code, and report results — the multi-machine
// counterpart of the in-process engine in package mapreduce, standing in
// for a real Hadoop deployment.
//
// Because functions cannot cross the wire, jobs are code-addressed: both
// master and worker processes link the same binary (or at least the same
// job registry) and refer to jobs by registered name; per-job parameters
// travel as an opaque byte blob.
//
// Fault tolerance: every assigned task carries a lease. If a worker dies
// or stalls past the lease, the master re-queues the task for another
// worker; duplicate completions are resolved first-writer-wins, which is
// safe because tasks are deterministic and side-effect free.
package rpcmr

import (
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/mapreduce"
	"repro/internal/points"
	"repro/internal/telemetry"
)

func init() {
	// SpanData attrs cross the wire as interface values; register the
	// concrete types spans actually carry so gob can encode them.
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(uint64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// Job bundles the user code of one MapReduce job. A job is either
// classic (Mapper + Reducer, per-pair gob traffic) or framed
// (FrameMapper + FrameReducer, batched point-frame payloads); the frame
// fields take precedence when both sets are present, leaving the classic
// pair as the registered escape hatch.
type Job struct {
	Mapper mapreduce.Mapper
	// Combiner optionally folds each map task's local output per key
	// before it is shipped to the master.
	Combiner mapreduce.Reducer
	Reducer  mapreduce.Reducer

	// FrameMapper/FrameReducer switch the job to the block-framed
	// shuffle: map output crosses the wire as sealed point frames
	// (partition + count + contiguous coordinates) instead of one
	// WirePair per point, and reduce input arrives as whole frame
	// streams. FrameCombiner optionally runs on each assembled block
	// worker-side before sealing.
	FrameMapper   mapreduce.FrameMapper
	FrameCombiner mapreduce.FrameCombiner
	FrameReducer  mapreduce.FrameReducer

	// FrameFolder, when non-nil, switches framed reduce tasks to the
	// streaming fold path: the worker feeds frames into per-partition
	// folds one at a time instead of assembling full blocks, bounding
	// reduce memory by the folds' budget. Takes precedence over
	// FrameReducer on the reduce side.
	FrameFolder mapreduce.FrameFolder

	// Codec selects the wire codec for frames the worker seals (map
	// output and reduce output): the zero value keeps the raw v1 frames,
	// points.FrameAuto enables the bit-packed v2 encoding wherever it is
	// smaller.
	Codec points.FrameCodec
}

// framed reports whether the job uses the block-framed shuffle.
func (j Job) framed() bool { return j.FrameMapper != nil && j.FrameReducer != nil }

// JobFactory instantiates a job from its parameter blob.
type JobFactory func(params []byte) (Job, error)

var (
	registryMu sync.RWMutex
	registry   = make(map[string]JobFactory)
)

// RegisterJob installs a named job factory. Both the master and every
// worker must register the same names (typically from an init function in
// a shared package). Registering a duplicate name panics, as that is a
// deployment bug.
func RegisterJob(name string, factory JobFactory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("rpcmr: duplicate job registration: " + name)
	}
	if factory == nil {
		panic("rpcmr: nil factory for job " + name)
	}
	registry[name] = factory
}

// lookupJob instantiates a registered job.
func lookupJob(name string, params []byte) (Job, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Job{}, fmt.Errorf("rpcmr: unknown job %q", name)
	}
	job, err := factory(params)
	if err != nil {
		return Job{}, fmt.Errorf("rpcmr: instantiating job %q: %w", name, err)
	}
	if !job.framed() && (job.Mapper == nil || job.Reducer == nil) {
		return Job{}, fmt.Errorf("rpcmr: job %q must provide mapper and reducer (classic or frame)", name)
	}
	return job, nil
}

// resetRegistryForTest clears the registry (tests only).
func resetRegistryForTest() {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry = make(map[string]JobFactory)
}

// ---------------------------------------------------------------------------
// Wire types

// TaskKind discriminates what a worker has been handed.
type TaskKind int

const (
	// TaskWait tells the worker to back off briefly and poll again.
	TaskWait TaskKind = iota
	// TaskMap carries input records to map (and combine).
	TaskMap
	// TaskReduce carries key groups to reduce.
	TaskReduce
	// TaskShutdown tells the worker its master has no more work ever.
	TaskShutdown
)

// Group is one reduce key group on the wire.
type Group struct {
	Key    string
	Values [][]byte
}

// WirePair mirrors mapreduce.Pair for gob transport.
type WirePair struct {
	Key   string
	Value []byte
}

// RegisterArgs announces a worker.
type RegisterArgs struct {
	WorkerID string
	// DebugAddr is the host:port of the worker's debug HTTP server
	// (/metrics, /debug/pprof, ...), empty when the worker runs without
	// one. The master scrapes it into the federated cluster view.
	DebugAddr string
}

// RegisterReply acknowledges registration.
type RegisterReply struct {
	OK bool
}

// TaskArgs requests work.
type TaskArgs struct {
	WorkerID string
}

// TaskReply carries an assignment.
type TaskReply struct {
	Kind     TaskKind
	TaskID   int
	Attempt  int
	JobName  string
	Params   []byte
	Reducers int
	// Framed marks a block-framed job: map tasks report FrameParts
	// instead of Partitions, reduce tasks receive FrameStreams instead
	// of Groups.
	Framed bool
	// Map payload
	Records [][]byte
	// Reduce payload (classic path)
	Groups []Group
	// Reduce payload (frame path): sealed frame streams for this
	// reducer, one per contributing map task, in map-task order.
	FrameStreams [][]byte
	// TraceID, ParentSpan and Track propagate the master's trace to the
	// worker: a non-zero TraceID asks the worker to record its task span
	// tree (rooted under ParentSpan, pinned to Chrome-trace row Track) and
	// ship it back on the result report, stitching one cross-process
	// timeline. Zero means tracing is off.
	TraceID    uint64
	ParentSpan uint64
	Track      int
}

// MapResultArgs reports a finished map task: output pairs partitioned by
// reducer index.
type MapResultArgs struct {
	WorkerID string
	TaskID   int
	Attempt  int
	// Partitions[r] holds the pairs destined for reducer r (classic path).
	Partitions [][]WirePair
	// FrameParts[r] holds the sealed frame stream destined for reducer r
	// (frame path): one batched payload per reducer instead of one
	// WirePair per point.
	FrameParts [][]byte
	// Final tells the master not to piggyback another assignment: this
	// worker is about to stop.
	Final bool
	// Err is a non-empty string if the task failed on the worker.
	Err string
	// Spans is the worker-side span tree of this task (worker-local IDs;
	// the master remaps them on import). Only successful reports carry
	// spans, so a retried task contributes exactly one span tree to the
	// stitched trace. TraceID echoes TaskReply.TraceID so stale reports
	// from a previous job cannot pollute the current trace.
	Spans   []telemetry.SpanData
	TraceID uint64
	// PartStats breaks the task's map output down by data-space partition
	// (frame path only), feeding the flight recorder's skew picture.
	PartStats map[int]mapreduce.PartStat
}

// ReduceResultArgs reports a finished reduce task.
type ReduceResultArgs struct {
	WorkerID string
	TaskID   int
	Attempt  int
	Pairs    []WirePair
	// Frames is the reduce output as one sealed frame stream (frame path).
	Frames []byte
	// Final tells the master not to piggyback another assignment.
	Final bool
	Err   string
	// Spans/TraceID: worker-side task spans, as on MapResultArgs.
	Spans   []telemetry.SpanData
	TraceID uint64
}

// ResultReply acknowledges a result report.
type ResultReply struct {
	// Accepted is false when the report was stale (task already completed
	// by another attempt) — informational only.
	Accepted bool
	// Next piggybacks the worker's next assignment on the report reply,
	// saving one RequestTask round-trip per completed task. The zero
	// value (Kind == TaskWait) tells the worker to fall back to polling,
	// so masters that never fill it remain compatible.
	Next TaskReply
}
