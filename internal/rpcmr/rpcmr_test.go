package rpcmr

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// registerTestJobs installs the word-count and failing jobs used across
// tests. Call once per test via ensureJobs.
var jobsOnce sync.Once

func ensureJobs() {
	jobsOnce.Do(func() {
		resetRegistryForTest()
		RegisterJob("wordcount", func(params []byte) (Job, error) {
			sum := mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
				total := 0
				for _, v := range values {
					n, err := strconv.Atoi(string(v))
					if err != nil {
						return err
					}
					total += n
				}
				emit(key, []byte(strconv.Itoa(total)))
				return nil
			})
			return Job{
				Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
					for _, w := range strings.Fields(string(rec)) {
						emit(w, []byte("1"))
					}
					return nil
				}),
				Combiner: sum,
				Reducer:  sum,
			}, nil
		})
		RegisterJob("always-fails", func(params []byte) (Job, error) {
			return Job{
				Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
					return errors.New("deterministic task failure")
				}),
				Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
					return nil
				}),
			}, nil
		})
		RegisterJob("bad-factory", func(params []byte) (Job, error) {
			return Job{}, errors.New("cannot instantiate")
		})
	})
}

// cluster spins up a master and n workers; cleanup stops everything.
func newCluster(t *testing.T, mcfg MasterConfig, n int, wcfg WorkerConfig) (*Master, []*Worker, *sync.WaitGroup) {
	t.Helper()
	ensureJobs()
	master, err := NewMaster(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	var wg sync.WaitGroup
	workers := make([]*Worker, n)
	for i := range workers {
		cfg := wcfg
		cfg.MasterAddr = master.Addr()
		cfg.ID = "w" + strconv.Itoa(i)
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(context.Background())
		}()
		t.Cleanup(func() { w.Close() })
	}
	return master, workers, &wg
}

var wcInput = [][]byte{
	[]byte("the quick brown fox"),
	[]byte("the lazy dog"),
	[]byte("the quick dog jumps"),
	[]byte("fox and dog and fox"),
}

var wcWant = map[string]string{
	"the": "3", "quick": "2", "brown": "1", "fox": "3", "lazy": "1",
	"dog": "3", "jumps": "1", "and": "2",
}

func checkWordCount(t *testing.T, res *JobResult) {
	t.Helper()
	got := map[string]string{}
	for _, p := range res.Pairs {
		got[p.Key] = string(p.Value)
	}
	if len(got) != len(wcWant) {
		t.Fatalf("got %v, want %v", got, wcWant)
	}
	for k, v := range wcWant {
		if got[k] != v {
			t.Errorf("count[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestDistributedWordCount(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1}, 3, WorkerConfig{})
	res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	if res.MapTime <= 0 {
		t.Error("map time not recorded")
	}
	if master.WorkerCount() != 3 {
		t.Errorf("worker count = %d, want 3", master.WorkerCount())
	}
}

func TestSingleWorker(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 2}, 1, WorkerConfig{})
	res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 3}, wcInput)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
}

func TestSequentialJobs(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1}, 2, WorkerConfig{})
	for i := 0; i < 3; i++ {
		res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		checkWordCount(t, res)
	}
}

func TestEmptyInput(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{}, 1, WorkerConfig{})
	res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Errorf("pairs = %v", res.Pairs)
	}
}

func TestUnknownJobRejectedFast(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{}, 1, WorkerConfig{})
	if _, err := master.Run(context.Background(), JobSpec{Name: "no-such-job"}, wcInput); err == nil {
		t.Error("unknown job accepted")
	}
	if _, err := master.Run(context.Background(), JobSpec{Name: "bad-factory"}, wcInput); err == nil {
		t.Error("bad factory accepted")
	}
}

func TestDeterministicTaskFailureFailsJob(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{MaxTaskAttempts: 2, SplitSize: 1}, 2, WorkerConfig{})
	_, err := master.Run(context.Background(), JobSpec{Name: "always-fails", Reducers: 1}, wcInput)
	var wte *WorkerTaskError
	if !errors.As(err, &wte) {
		t.Fatalf("err = %v, want WorkerTaskError", err)
	}
	if !strings.Contains(wte.Error(), "deterministic task failure") {
		t.Errorf("error lacks cause: %v", wte)
	}
}

func TestWorkerCrashRecovery(t *testing.T) {
	// One worker vanishes while holding a task; the lease expires and the
	// survivor finishes the job.
	mcfg := MasterConfig{SplitSize: 1, TaskLease: 200 * time.Millisecond}
	master, workers, _ := newCluster(t, mcfg, 1, WorkerConfig{VanishAfterTasks: 1})
	_ = workers

	// A healthy second worker joins (slightly later so the flaky one gets
	// the first tasks).
	healthy, err := NewWorker(WorkerConfig{MasterAddr: master.Addr(), ID: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthy.Close() })
	go func() { _ = healthy.Run(context.Background()) }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := master.Run(ctx, JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
	if healthy.Completed() == 0 {
		t.Error("healthy worker did no work despite crash")
	}
}

func TestRunContextCancel(t *testing.T) {
	// No workers at all: the job can never finish; cancellation must
	// unblock Run.
	ensureJobs()
	master, err := NewMaster(MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = master.Run(ctx, JobSpec{Name: "wordcount", Reducers: 1}, wcInput)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestConcurrentRunRejected(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{}, 1, WorkerConfig{PollInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{})
	go func() {
		close(started)
		_, _ = master.Run(ctx, JobSpec{Name: "wordcount", Reducers: 1}, wcInput)
	}()
	<-started
	time.Sleep(20 * time.Millisecond)
	if _, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 1}, wcInput); err == nil {
		// The first job may have already finished on a fast machine; only
		// fail when it is provably still running.
		t.Log("second Run succeeded; first likely finished already")
	}
}

func TestMasterCloseFailsJob(t *testing.T) {
	ensureJobs()
	master, err := NewMaster(MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 1}, wcInput)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	master.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Run returned nil after master close")
		}
	case <-time.After(5 * time.Second):
		t.Error("Run did not return after master close")
	}
}

func TestWorkerShutdownOnMasterShutdown(t *testing.T) {
	ensureJobs()
	master, err := NewMaster(MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorker(WorkerConfig{MasterAddr: master.Addr(), PollInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	time.Sleep(30 * time.Millisecond)
	// Mark shutdown but keep serving RPCs briefly so the worker sees it.
	master.mu.Lock()
	master.shutdown = true
	master.mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("worker exit = %v, want nil on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("worker did not exit on master shutdown")
	}
	master.Close()
}

func TestRegisterJobPanics(t *testing.T) {
	ensureJobs()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate", func() {
		RegisterJob("wordcount", func([]byte) (Job, error) { return Job{}, nil })
	})
	mustPanic("nil factory", func() { RegisterJob("brand-new", nil) })
}
