package rpcmr

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestLivenessWindowConfigurable: with a tiny window, a worker that has
// not polled recently must drop out of LiveWorkers while still being
// counted as registered.
func TestLivenessWindowConfigurable(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{LivenessWindow: time.Nanosecond},
		1, WorkerConfig{PollInterval: time.Hour})
	// The worker registered and then went idle for an hour; with a 1ns
	// window it must read as registered-but-not-live almost immediately.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := master.Status()
		if st.Workers == 1 && st.LiveWorkers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("status never showed a stale worker: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStatusCountsRetries: a deterministically failing job must leave a
// cumulative TaskRetries trail in Status, with WorkerFailures flat
// (the worker kept reporting in — flaky job, not a dead worker).
func TestStatusCountsRetries(t *testing.T) {
	reg := telemetry.NewRegistry()
	master, _, _ := newCluster(t, MasterConfig{MaxTaskAttempts: 2, Metrics: reg},
		1, WorkerConfig{PollInterval: time.Millisecond})
	if _, err := master.Run(context.Background(), JobSpec{Name: "always-fails", Reducers: 1}, wcInput); err == nil {
		t.Fatal("always-fails should fail the job")
	}
	st := master.Status()
	if st.TaskRetries == 0 {
		t.Error("TaskRetries = 0 after a failing job")
	}
	if st.WorkerFailures != 0 {
		t.Errorf("WorkerFailures = %d, want 0 (worker reported errors, never vanished)", st.WorkerFailures)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `rpcmr_task_retries_total{cause="report",worker="w0"}`) {
		t.Errorf("no retry counter in exposition:\n%s", sb.String())
	}
}

// TestMasterTelemetry: a successful run with metrics + tracing on must
// produce per-worker task latency histograms and a job span with
// map/shuffle/reduce children.
func TestMasterTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1, Metrics: reg},
		2, WorkerConfig{PollInterval: time.Millisecond})
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	if _, err := master.Run(ctx, JobSpec{Name: "wordcount", Reducers: 2}, wcInput); err != nil {
		t.Fatal(err)
	}

	samples, err := telemetry.ParsePrometheus(promText(t, reg))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if samples[`rpcmr_jobs_total{job="wordcount",result="ok"}`] != 1 {
		t.Errorf("rpcmr_jobs_total missing: %v", samples)
	}
	taskObs := 0.0
	for name, v := range samples {
		if strings.HasPrefix(name, "rpcmr_task_seconds_count{") {
			taskObs += v
		}
	}
	if int(taskObs) != len(wcInput)+2 { // map tasks (SplitSize 1) + 2 reduce tasks
		t.Errorf("task latency observations = %v, want %d", taskObs, len(wcInput)+2)
	}

	byName := map[string]telemetry.SpanData{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	job, ok := byName["rpcmr-job:wordcount"]
	if !ok {
		t.Fatalf("no job span; spans = %v", byName)
	}
	for _, phase := range []string{"map", "shuffle", "reduce"} {
		s, ok := byName[phase]
		if !ok {
			t.Fatalf("no %s span", phase)
		}
		if s.Parent != job.ID {
			t.Errorf("%s span not a child of the job span", phase)
		}
	}
}

func promText(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
