package rpcmr

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestStressManyTasksWithChaos runs a 200-task job over 6 workers, two of
// which crash while holding tasks partway through; lease reassignment must
// carry the job to a correct result.
func TestStressManyTasksWithChaos(t *testing.T) {
	ensureJobs()
	master, err := NewMaster(MasterConfig{
		SplitSize: 1,
		TaskLease: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	for i := 0; i < 6; i++ {
		cfg := WorkerConfig{
			MasterAddr:   master.Addr(),
			ID:           fmt.Sprintf("chaos-%d", i),
			PollInterval: 2 * time.Millisecond,
		}
		if i < 2 {
			cfg.VanishAfterTasks = 5 // the first two die early, holding a task
		}
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		go func() { _ = w.Run(context.Background()) }()
	}

	input := make([][]byte, 200)
	for i := range input {
		input[i] = []byte(fmt.Sprintf("word%d common", i%13))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := master.Run(ctx, JobSpec{Name: "wordcount", Reducers: 4}, input)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, p := range res.Pairs {
		got[p.Key] = string(p.Value)
	}
	if got["common"] != "200" {
		t.Errorf("common = %s, want 200", got["common"])
	}
	for i := 0; i < 13; i++ {
		key := "word" + strconv.Itoa(i)
		n, err := strconv.Atoi(got[key])
		if err != nil || n < 15 || n > 16 {
			t.Errorf("%s = %q, want 15..16", key, got[key])
		}
	}
}

// TestStressSequentialJobsAfterChaos verifies the master stays usable for
// later jobs after a chaotic one.
func TestStressSequentialJobsAfterChaos(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 2, TaskLease: 300 * time.Millisecond}, 3,
		WorkerConfig{PollInterval: 2 * time.Millisecond})
	healthyInput := [][]byte{[]byte("x y"), []byte("y z"), []byte("z x")}
	for round := 0; round < 5; round++ {
		res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, healthyInput)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		joined := ""
		for _, p := range res.Pairs {
			joined += p.Key + "=" + string(p.Value) + " "
		}
		for _, want := range []string{"x=2", "y=2", "z=2"} {
			if !strings.Contains(joined, want) {
				t.Fatalf("round %d: missing %s in %s", round, want, joined)
			}
		}
	}
}
