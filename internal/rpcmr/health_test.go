package rpcmr

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWorkerHealthStateMachine kills one worker of three and asserts it
// walks healthy → suspect → dead with exactly one transition event per
// edge, while the surviving workers stay healthy.
func TestWorkerHealthStateMachine(t *testing.T) {
	events := telemetry.NewEventLog(512)
	reg := telemetry.NewRegistry()
	master, workers, _ := newCluster(t, MasterConfig{
		// Tight windows so the walk to dead fits a unit test: suspect
		// after 80ms of silence, dead after 240ms, swept every 10ms.
		LivenessWindow: 80 * time.Millisecond,
		HealthInterval: 10 * time.Millisecond,
		Events:         events,
		Metrics:        reg,
	}, 3, WorkerConfig{PollInterval: 5 * time.Millisecond})

	// All three workers register and idle-poll, so they read healthy.
	waitFor(t, 2*time.Second, func() bool {
		h := master.Health()
		return h.Healthy == 3 && h.Suspect == 0 && h.Dead == 0
	}, "3 healthy workers")

	// Kill w2: its polls stop, so its heartbeats age out.
	if err := workers[2].Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		h := master.Health()
		return h.Dead == 1 && h.Healthy == 2
	}, "killed worker to be declared dead")

	h := master.Health()
	for _, w := range h.Workers {
		want := "healthy"
		if w.ID == "w2" {
			want = "dead"
		}
		if w.State != want {
			t.Errorf("worker %s state = %s, want %s", w.ID, w.State, want)
		}
	}

	// Exactly one transition event per edge, and only for the dead worker.
	var suspects, deads int
	for _, ev := range events.Events(0, slog.LevelDebug) {
		switch ev.Msg {
		case "worker suspect":
			if ev.Attrs["worker"] != "w2" {
				t.Errorf("live worker went suspect: %v", ev.Attrs)
			}
			suspects++
			if ev.Level != "warn" {
				t.Errorf("suspect event level = %s, want warn", ev.Level)
			}
		case "worker dead":
			if ev.Attrs["worker"] != "w2" {
				t.Errorf("live worker died: %v", ev.Attrs)
			}
			deads++
			if ev.Level != "error" {
				t.Errorf("dead event level = %s, want error", ev.Level)
			}
		case "worker recovered":
			t.Errorf("unexpected recovery event: %v", ev.Attrs)
		}
	}
	if suspects != 1 || deads != 1 {
		t.Fatalf("transition events: %d suspect, %d dead; want exactly 1 each", suspects, deads)
	}

	// The state gauge mirrors the machine: w2 pinned at 2 (dead).
	snap := reg.Snapshot()
	if got := snap.Gauges[`rpcmr_worker_state{worker="w2"}`]; got != 2 {
		t.Errorf("rpcmr_worker_state{worker=w2} = %v, want 2", got)
	}
	if got := snap.Gauges[`rpcmr_worker_state{worker="w0"}`]; got != 0 {
		t.Errorf("rpcmr_worker_state{worker=w0} = %v, want 0", got)
	}
	if got := snap.Counters[`rpcmr_worker_transitions_total{to="dead",worker="w2"}`]; got != 1 {
		t.Errorf("dead transition counter = %d, want 1", got)
	}

	// A registration event per worker.
	var registered int
	for _, ev := range events.Events(0, slog.LevelDebug) {
		if ev.Msg == "worker registered" {
			registered++
		}
	}
	if registered != 3 {
		t.Errorf("%d registration events, want 3", registered)
	}
}

// TestHealthRecovery brings a suspect worker back with a heartbeat and
// expects a single recovery transition.
func TestHealthRecovery(t *testing.T) {
	events := telemetry.NewEventLog(128)
	master, err := NewMaster(MasterConfig{
		LivenessWindow: 30 * time.Millisecond,
		HealthInterval: 5 * time.Millisecond,
		Events:         events,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	svc := &MasterService{m: master}
	var rr RegisterReply
	if err := svc.Register(RegisterArgs{WorkerID: "wx"}, &rr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return master.Health().Suspect == 1 }, "worker to go suspect")

	// Heartbeat: a task request recovers it.
	var tr TaskReply
	if err := svc.RequestTask(TaskArgs{WorkerID: "wx"}, &tr); err != nil {
		t.Fatal(err)
	}
	h := master.Health()
	if h.Healthy != 1 || h.Suspect != 0 {
		t.Fatalf("after heartbeat: %+v", h)
	}
	var recoveries int
	for _, ev := range events.Events(0, slog.LevelDebug) {
		if ev.Msg == "worker recovered" {
			recoveries++
			if ev.Attrs["from"] != "suspect" || ev.Attrs["to"] != "healthy" {
				t.Errorf("recovery edge = %v", ev.Attrs)
			}
		}
	}
	if recoveries != 1 {
		t.Fatalf("%d recovery events, want 1", recoveries)
	}
}

// TestDebugHealthEndpoint serves Master.Health through
// telemetry.MountHealth and checks the JSON shape end to end.
func TestDebugHealthEndpoint(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{
		LivenessWindow: time.Second,
	}, 2, WorkerConfig{PollInterval: 5 * time.Millisecond})
	waitFor(t, 2*time.Second, func() bool { return master.Health().Healthy == 2 }, "2 healthy workers")

	mux := http.NewServeMux()
	telemetry.MountHealth(mux, func() any { return master.Health() })
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, telemetry.HealthPath, nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var h Health
	if err := json.Unmarshal(rr.Body.Bytes(), &h); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if h.Healthy != 2 || len(h.Workers) != 2 {
		t.Fatalf("health = %+v", h)
	}
	if h.Workers[0].ID != "w0" || h.Workers[1].ID != "w1" {
		t.Fatalf("workers not sorted by id: %+v", h.Workers)
	}
	if h.JobRunning {
		t.Fatalf("idle cluster reports a running job: %+v", h)
	}
}
