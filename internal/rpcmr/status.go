package rpcmr

import "time"

// Status is a snapshot of the master's state, served both locally
// (Master.Status) and over RPC (Master.Status service method) so
// operators and tests can watch job progress.
type Status struct {
	// Workers is the number of distinct registered workers.
	Workers int
	// LiveWorkers counts workers seen within the liveness window.
	LiveWorkers int
	// JobRunning reports whether a job is in flight.
	JobRunning bool
	// JobName is the running job's registered name.
	JobName string
	// Phase is TaskMap or TaskReduce while running.
	Phase TaskKind
	// TasksTotal and TasksDone count the current phase's tasks.
	TasksTotal, TasksDone int
	// Pending is the current phase's queue length (excludes running).
	Pending int
}

// livenessWindow is how recently a worker must have called in to count as
// live.
const livenessWindow = 10 * time.Second

// Status returns a snapshot of master state.
func (m *Master) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{Workers: len(m.workers)}
	now := time.Now()
	for _, seen := range m.workers {
		if now.Sub(seen) <= livenessWindow {
			st.LiveWorkers++
		}
	}
	if js := m.job; js != nil && !isClosed(js.finished) {
		st.JobRunning = true
		st.JobName = js.spec.Name
		st.Phase = js.phase
		st.TasksTotal = len(js.tasks)
		st.TasksDone = js.done
		st.Pending = len(js.pending)
	}
	return st
}

// StatusArgs is the (empty) RPC request.
type StatusArgs struct{}

// Status implements the RPC surface for Master.Status.
func (s *MasterService) Status(args StatusArgs, reply *Status) error {
	*reply = s.m.Status()
	return nil
}
