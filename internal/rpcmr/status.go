package rpcmr

import "time"

// Status is a snapshot of the master's state, served both locally
// (Master.Status) and over RPC (Master.Status service method) so
// operators and tests can watch job progress.
type Status struct {
	// Workers is the number of distinct registered workers.
	Workers int
	// LiveWorkers counts workers seen within the liveness window
	// (MasterConfig.LivenessWindow, 10s by default).
	LiveWorkers int
	// JobRunning reports whether a job is in flight.
	JobRunning bool
	// JobName is the running job's registered name.
	JobName string
	// Phase is TaskMap or TaskReduce while running.
	Phase TaskKind
	// TasksTotal and TasksDone count the current phase's tasks.
	TasksTotal, TasksDone int
	// Pending is the current phase's queue length (excludes running).
	Pending int
	// TaskRetries is the cumulative count of task re-executions across
	// all jobs, whatever the cause (worker error reports and lease
	// expiries alike).
	TaskRetries int64
	// WorkerFailures is the cumulative count of lease expiries — tasks
	// whose worker went silent while holding them. A climbing
	// TaskRetries with flat WorkerFailures means a flaky job or worker
	// that still reports in; both climbing together means workers are
	// dying or stalling.
	WorkerFailures int64
}

// Status returns a snapshot of master state.
func (m *Master) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Workers:        len(m.workers),
		TaskRetries:    m.taskRetries,
		WorkerFailures: m.workerFailures,
	}
	now := time.Now()
	for _, w := range m.workers {
		if now.Sub(w.lastSeen) <= m.cfg.LivenessWindow {
			st.LiveWorkers++
		}
	}
	if js := m.job; js != nil && !isClosed(js.finished) {
		st.JobRunning = true
		st.JobName = js.spec.Name
		st.Phase = js.phase
		st.TasksTotal = len(js.tasks)
		st.TasksDone = js.done
		st.Pending = len(js.pending)
	}
	return st
}

// StatusArgs is the (empty) RPC request.
type StatusArgs struct{}

// Status implements the RPC surface for Master.Status.
func (s *MasterService) Status(args StatusArgs, reply *Status) error {
	*reply = s.m.Status()
	return nil
}
