package rpcmr

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestDebugAddrPropagation: a worker registering with a debug address
// must surface it in the master's health summary and in the federation
// target list, and a dead worker's target must turn stale.
func TestDebugAddrPropagation(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{},
		1, WorkerConfig{DebugAddr: "127.0.0.1:7777", PollInterval: time.Millisecond})

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := master.Health()
		if len(h.Workers) == 1 && h.Workers[0].DebugAddr == "127.0.0.1:7777" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug addr never reached Health: %+v", h.Workers)
		}
		time.Sleep(time.Millisecond)
	}

	targets := master.DebugTargets()
	if len(targets) != 1 {
		t.Fatalf("targets = %+v, want one", targets)
	}
	if targets[0].ID != "w0" || targets[0].Addr != "127.0.0.1:7777" || targets[0].Stale {
		t.Fatalf("target = %+v, want live w0 at 127.0.0.1:7777", targets[0])
	}

	// Force the health machine through suspect → dead (two sequential
	// sweeps, as the background loop would): the federation target must
	// flip stale while keeping the address.
	future := time.Now().Add(1000 * time.Hour)
	master.sweepWorkerStates(future)
	master.sweepWorkerStates(future)
	targets = master.DebugTargets()
	if len(targets) != 1 || !targets[0].Stale {
		t.Fatalf("dead worker target = %+v, want stale", targets)
	}
	if targets[0].Addr != "127.0.0.1:7777" {
		t.Errorf("stale target lost its address: %+v", targets[0])
	}
}

// TestWorkerWithoutDebugAddr: registration without a debug server is
// legal; the target appears with an empty Addr so the federator lists
// the member without scraping it.
func TestWorkerWithoutDebugAddr(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{}, 1, WorkerConfig{PollInterval: time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for master.WorkerCount() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never registered")
		}
		time.Sleep(time.Millisecond)
	}
	targets := master.DebugTargets()
	if len(targets) != 1 || targets[0].Addr != "" {
		t.Fatalf("targets = %+v, want one with empty addr", targets)
	}
}

// TestWorkerSideTaskMetrics: a worker given its own registry must count
// and time the tasks it executes, labeled by kind.
func TestWorkerSideTaskMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1},
		1, WorkerConfig{Metrics: reg, PollInterval: time.Millisecond})
	res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)

	maps := reg.Counter("rpcmr_worker_tasks_total",
		telemetry.L("kind", "map"), telemetry.L("result", "ok")).Value()
	if maps != int64(len(wcInput)) {
		t.Errorf("map task counter = %d, want %d", maps, len(wcInput))
	}
	reduces := reg.Counter("rpcmr_worker_tasks_total",
		telemetry.L("kind", "reduce"), telemetry.L("result", "ok")).Value()
	if reduces != 2 {
		t.Errorf("reduce task counter = %d, want 2", reduces)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rpcmr_worker_task_seconds_count{kind="map"} 4`,
		`rpcmr_worker_task_seconds_count{kind="reduce"} 2`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

// TestMasterClusterGauges: with a metrics registry, the master's scrape
// hook publishes queue and per-worker gauges plus the cluster-wide task
// counter consumed by the stall rule and skytop.
func TestMasterClusterGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1, Metrics: reg},
		2, WorkerConfig{PollInterval: time.Millisecond})
	if _, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	// The job is over: running gauge reads 0 but the per-worker ledgers
	// persist, and done counts across both workers sum to all tasks.
	for _, want := range []string{
		"rpcmr_job_running 0",
		"rpcmr_queue_depth 0",
		`rpcmr_worker_tasks_done{worker="w0"}`,
		`rpcmr_worker_tasks_done{worker="w1"}`,
		"rpcmr_tasks_done_total 6",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWorkerRegistrationEvent: a worker with an event log narrates its
// registration, carrying the master address.
func TestWorkerRegistrationEvent(t *testing.T) {
	events := telemetry.NewEventLog(16)
	master, _, _ := newCluster(t, MasterConfig{},
		1, WorkerConfig{Events: events, PollInterval: time.Millisecond})
	_ = master
	found := false
	for _, ev := range events.Events(0, 0) {
		if ev.Msg == "registered with master" {
			found = true
		}
	}
	if !found {
		t.Errorf("no registration event in %+v", events.Events(0, 0))
	}
}
