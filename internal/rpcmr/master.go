package rpcmr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/points"
	"repro/internal/telemetry"
)

// MasterConfig tunes master behaviour.
type MasterConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// TaskLease is how long a worker may hold a task before it is
	// re-queued for another worker. Defaults to 30s.
	TaskLease time.Duration
	// SplitSize is records per map task. Defaults to 1000.
	SplitSize int
	// MaxTaskAttempts bounds re-executions of one task before the job is
	// failed. Defaults to 5.
	MaxTaskAttempts int
	// LivenessWindow is how recently a worker must have called in to
	// count as live in Status and healthy in Health. Defaults to 10s;
	// tune it to the cluster's poll interval so a slow-but-healthy worker
	// is not reported dead. A worker silent for longer becomes suspect.
	LivenessWindow time.Duration
	// DeadWindow is how long a worker may stay silent before the health
	// state machine declares it dead. Defaults to 3 × LivenessWindow.
	DeadWindow time.Duration
	// HealthInterval is how often the background sweep ages workers
	// through the health state machine. Defaults to LivenessWindow / 4.
	HealthInterval time.Duration
	// Metrics, when non-nil, receives master-side series: per-worker
	// task latency histograms (rpcmr_task_seconds), retry/liveness
	// counters, and job counts. Nil (the default) records nothing.
	Metrics *telemetry.Registry
	// StragglerFactor flags a completed task as a straggler when its
	// duration exceeds this multiple of the running median of completed
	// task durations in the current phase (with at least minStragglerSamples
	// medians in hand). Defaults to 2.0.
	StragglerFactor float64
	// Events, when non-nil, receives structured operational events:
	// job/phase boundaries, dispatches, retries, lease expiries,
	// stragglers, and worker health transitions. Nil records nothing
	// (every EventLog method is nil-safe).
	Events *telemetry.EventLog
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.TaskLease <= 0 {
		c.TaskLease = 30 * time.Second
	}
	if c.SplitSize <= 0 {
		c.SplitSize = 1000
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 5
	}
	if c.LivenessWindow <= 0 {
		c.LivenessWindow = 10 * time.Second
	}
	if c.DeadWindow <= 0 {
		c.DeadWindow = 3 * c.LivenessWindow
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = c.LivenessWindow / 4
		if c.HealthInterval < time.Millisecond {
			c.HealthInterval = time.Millisecond
		}
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 2.0
	}
	return c
}

// Master owns job state and serves the task protocol over net/rpc.
type Master struct {
	cfg      MasterConfig
	listener net.Listener
	server   *rpc.Server

	// stopc ends the health sweep goroutine; closed once by Close.
	stopc    chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	workers  map[string]*workerInfo // health state machine per worker
	job      *jobState              // nil when idle
	shutdown bool
	// Cumulative counters across all jobs (mu held): task re-executions
	// from failure reports, and lease expiries (a worker presumed dead
	// or stalled while holding a task). lastJobErr remembers the most
	// recent job-level failure for /debug/health.
	taskRetries    int64
	workerFailures int64
	lastJobErr     string
}

// jobState tracks one running job.
type jobState struct {
	spec      JobSpec
	framed    bool     // block-framed shuffle: frame payloads, not WirePairs
	phase     TaskKind // TaskMap or TaskReduce
	splitData [][][]byte
	tasks     []*taskState
	pending   []int // indexes of queued tasks of the current phase
	done      int   // completed tasks of the current phase
	mapOut    [][][]WirePair
	groups    [][]Group
	out       []WirePair
	// Frame-path state: frameOut[task][r] is map task's sealed stream for
	// reducer r; frameStreams[r] gathers reducer r's streams in map-task
	// order; outFrames[r] is reduce task r's output stream.
	frameOut     [][][]byte
	frameStreams [][][]byte
	outFrames    [][]byte
	mapStart     time.Time
	mapDur       time.Duration
	shuffleDur   time.Duration // master-side grouping in startReducePhase
	redStart     time.Time
	finished     chan struct{}
	err          error
	// Flight-recorder / stitched-trace state. tracer and recorder come
	// from the Run context (nil when off); traceID doubles as the wire
	// trace id and the parent span for imported worker spans.
	tracer     *telemetry.Tracer
	recorder   *telemetry.Recorder
	traceID    uint64
	parentSpan uint64
	tracks     map[string]int // worker id → Chrome-trace row
	nextTrack  int
	durs       []float64 // completed task durations, current phase
	partStats  map[int]mapreduce.PartStat
}

// taskState tracks one task of the current phase.
type taskState struct {
	id       int
	attempt  int
	running  bool
	deadline time.Time
	complete bool
	failures int
	// startedAt and worker describe the current assignment, for task
	// latency measurement.
	startedAt time.Time
	worker    string
}

// JobSpec identifies the job to run.
type JobSpec struct {
	Name     string
	Params   []byte
	Reducers int
}

// JobResult is what a distributed run returns. Classic jobs fill Pairs;
// framed jobs fill Blocks (partition id → reduce output block, assembled
// from the workers' output frames in reduce-task order).
type JobResult struct {
	Pairs      []mapreduce.Pair
	Blocks     map[int]*points.Block
	MapTime    time.Duration
	ReduceTime time.Duration
	// Partitions breaks the map-side shuffle volume down by data-space
	// partition id (frame jobs only), aggregated from worker reports.
	Partitions map[int]mapreduce.PartStat
}

// NewMaster starts a master listening on cfg.Addr.
func NewMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: master listen: %w", err)
	}
	m := &Master{
		cfg:      cfg,
		listener: ln,
		server:   rpc.NewServer(),
		workers:  make(map[string]*workerInfo),
		stopc:    make(chan struct{}),
	}
	svc := &MasterService{m: m}
	if err := m.server.RegisterName("Master", svc); err != nil {
		ln.Close()
		return nil, fmt.Errorf("rpcmr: register service: %w", err)
	}
	cfg.Events.Info("master listening", telemetry.A("addr", ln.Addr().String()))
	m.registerClusterGauges()
	go m.acceptLoop()
	go m.healthLoop()
	return m, nil
}

// registerClusterGauges installs the scrape hook that refreshes the
// master's cluster-shape gauges on every exposition or sample: whether
// a job is running, the current phase's queue depth, and per worker the
// in-flight task count and cumulative completions. The per-worker pair
// (rpcmr_worker_inflight / rpcmr_worker_tasks_done) is what the anomaly
// watchdog's stall rule reads: a worker holding work whose completions
// stand still is stalled.
func (m *Master) registerClusterGauges() {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	reg.OnScrape(func(reg *telemetry.Registry) {
		m.mu.Lock()
		defer m.mu.Unlock()
		running, queue := 0.0, 0.0
		inFlight := make(map[string]int)
		if js := m.job; js != nil && !isClosed(js.finished) {
			running = 1
			queue = float64(len(js.pending))
			for _, t := range js.tasks {
				if t.running && !t.complete {
					inFlight[t.worker]++
				}
			}
		}
		reg.Gauge("rpcmr_job_running").Set(running)
		reg.Gauge("rpcmr_queue_depth").Set(queue)
		for id, w := range m.workers {
			reg.Gauge("rpcmr_worker_inflight", telemetry.L("worker", id)).
				Set(float64(inFlight[id]))
			reg.Gauge("rpcmr_worker_tasks_done", telemetry.L("worker", id)).
				Set(float64(w.tasksDone))
		}
	})
}

// DebugTargets enumerates the registered workers as federation scrape
// targets: workers without a debug server contribute an empty Addr
// (present in the snapshot, never scraped) and dead workers are marked
// stale so the federator keeps their last-good series instead of
// hammering a gone endpoint — the same "remembered, not erased"
// semantics as the health state machine.
func (m *Master) DebugTargets() []telemetry.FederationTarget {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]telemetry.FederationTarget, 0, len(m.workers))
	for id, w := range m.workers {
		out = append(out, telemetry.FederationTarget{
			ID:    id,
			Addr:  w.debugAddr,
			Stale: w.state == WorkerDead,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Addr returns the listen address (with the resolved port).
func (m *Master) Addr() string { return m.listener.Addr().String() }

// Close stops the master. In-flight jobs fail.
func (m *Master) Close() error {
	m.mu.Lock()
	m.shutdown = true
	if m.job != nil && m.job.err == nil && !isClosed(m.job.finished) {
		m.job.err = errors.New("rpcmr: master closed")
		close(m.job.finished)
	}
	m.mu.Unlock()
	m.stopOnce.Do(func() {
		close(m.stopc)
		m.cfg.Events.Info("master closed")
	})
	return m.listener.Close()
}

// Drain tells workers to shut down: from now on every task request (and
// piggybacked assignment) answers TaskShutdown, while the listener stays
// up so in-flight result reports and final polls still land. Call before
// Close for a graceful cluster teardown.
func (m *Master) Drain() {
	m.mu.Lock()
	already := m.shutdown
	m.shutdown = true
	m.mu.Unlock()
	if !already {
		m.cfg.Events.Info("master draining", telemetry.A("addr", m.Addr()))
	}
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go m.server.ServeConn(conn)
	}
}

// WorkerCount reports how many distinct workers have registered.
func (m *Master) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Run executes one job across the connected workers and blocks until it
// completes, fails, or ctx is cancelled. Only one job runs at a time;
// concurrent Run calls return an error.
func (m *Master) Run(ctx context.Context, spec JobSpec, input [][]byte) (*JobResult, error) {
	if spec.Reducers <= 0 {
		spec.Reducers = 1
	}
	// Validate the job is instantiable on the master side too, so typos
	// fail fast rather than on a worker — and learn whether it runs the
	// block-framed shuffle.
	job, err := lookupJob(spec.Name, spec.Params)
	if err != nil {
		return nil, err
	}
	ctx, jobSpan := telemetry.StartSpan(ctx, "rpcmr-job:"+spec.Name,
		telemetry.A("job", spec.Name), telemetry.A("reducers", spec.Reducers),
		telemetry.A("records", len(input)))
	jobStart := time.Now()
	endJob := func(result string, err error) {
		if err != nil {
			jobSpan.SetAttr("error", err.Error())
			m.cfg.Events.Error("job failed", telemetry.A("job", spec.Name),
				telemetry.A("result", result), telemetry.A("err", err.Error()))
		} else {
			m.cfg.Events.Info("job end", telemetry.A("job", spec.Name),
				telemetry.A("seconds", time.Since(jobStart).Seconds()))
		}
		jobSpan.End()
		if reg := m.cfg.Metrics; reg != nil {
			reg.Counter("rpcmr_jobs_total", telemetry.L("job", spec.Name), telemetry.L("result", result)).Inc()
			reg.Histogram("rpcmr_job_seconds", telemetry.DurationBuckets(),
				telemetry.L("job", spec.Name)).Observe(time.Since(jobStart).Seconds())
		}
	}

	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		err := errors.New("rpcmr: master is shut down")
		endJob("rejected", err)
		return nil, err
	}
	if m.job != nil {
		m.mu.Unlock()
		err := errors.New("rpcmr: a job is already running")
		endJob("rejected", err)
		return nil, err
	}
	js := &jobState{
		spec:     spec,
		framed:   job.framed(),
		phase:    TaskMap,
		finished: make(chan struct{}),
		mapStart: time.Now(),
		// Stitched-trace wiring: worker task spans attach under the job
		// span; the job span's id doubles as the wire trace id so stale
		// reports from another job are rejected on import.
		tracer:     telemetry.TracerFrom(ctx),
		recorder:   telemetry.RecorderFrom(ctx),
		traceID:    jobSpan.ID(),
		parentSpan: jobSpan.ID(),
		tracks:     make(map[string]int),
		nextTrack:  1, // track 0 is the master's own timeline row
		partStats:  make(map[int]mapreduce.PartStat),
	}
	// Build map tasks.
	var splits [][][]byte
	for off := 0; off < len(input); off += m.cfg.SplitSize {
		end := off + m.cfg.SplitSize
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[off:end])
	}
	if js.framed {
		js.frameOut = make([][][]byte, len(splits))
	} else {
		js.mapOut = make([][][]WirePair, len(splits))
	}
	for i := range splits {
		js.tasks = append(js.tasks, &taskState{id: i})
		js.pending = append(js.pending, i)
	}
	js.splitData = splits
	m.job = js
	m.mu.Unlock()
	m.cfg.Events.Info("job start", telemetry.A("job", spec.Name),
		telemetry.A("records", len(input)), telemetry.A("reducers", spec.Reducers),
		telemetry.A("trace", js.traceID))
	m.cfg.Events.Info("phase start", telemetry.A("job", spec.Name),
		telemetry.A("phase", "map"), telemetry.A("tasks", len(splits)))

	if len(splits) == 0 {
		// Degenerate empty input: go straight to reduce with no groups.
		m.mu.Lock()
		m.startReducePhase(js)
		m.mu.Unlock()
	}

	select {
	case <-ctx.Done():
		m.mu.Lock()
		if m.job == js && !isClosed(js.finished) {
			js.err = ctx.Err()
			close(js.finished)
		}
		m.job = nil
		m.mu.Unlock()
		endJob("cancelled", ctx.Err())
		return nil, ctx.Err()
	case <-js.finished:
	}

	m.mu.Lock()
	m.job = nil
	m.mu.Unlock()
	if js.err != nil {
		endJob("error", js.err)
		return nil, js.err
	}
	// Scheduling spans: the map/shuffle/reduce boundaries are observed
	// inside RPC handlers, so record them after the fact as children of
	// the job span.
	redDur := time.Since(js.redStart)
	telemetry.RecordSpan(ctx, "map", js.mapStart, js.mapDur,
		telemetry.A("tasks", len(js.splitData)))
	telemetry.RecordSpan(ctx, "shuffle", js.mapStart.Add(js.mapDur), js.shuffleDur)
	telemetry.RecordSpan(ctx, "reduce", js.redStart, redDur,
		telemetry.A("tasks", spec.Reducers))
	endJob("ok", nil)
	if js.framed {
		// Assemble reduce-output frames in reduce-task order — the per-task
		// slots make completion order irrelevant, so output is deterministic.
		blocks, err := mapreduce.AssembleFrames(js.outFrames)
		if err != nil {
			return nil, fmt.Errorf("rpcmr: assembling reduce output frames: %w", err)
		}
		return &JobResult{Blocks: blocks, MapTime: js.mapDur, ReduceTime: redDur,
			Partitions: js.partStats}, nil
	}
	pairs := make([]mapreduce.Pair, len(js.out))
	for i, p := range js.out {
		pairs[i] = mapreduce.Pair{Key: p.Key, Value: p.Value}
	}
	// Reduce tasks complete in arbitrary order; sort by key (stable, so
	// per-task emission order within a key survives) for deterministic
	// output across runs.
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return &JobResult{Pairs: pairs, MapTime: js.mapDur, ReduceTime: redDur}, nil
}

// startReducePhase (mu held) transitions from map to reduce: group map
// outputs by reducer partition and key, then queue reduce tasks.
func (m *Master) startReducePhase(js *jobState) {
	js.mapDur = time.Since(js.mapStart)
	js.phase = TaskReduce
	m.cfg.Events.Info("phase end", telemetry.A("job", js.spec.Name),
		telemetry.A("phase", "map"), telemetry.A("seconds", js.mapDur.Seconds()))
	shuffleStart := time.Now()
	if js.framed {
		// Frame shuffle: map tasks already sealed per-reducer streams, so
		// the master only gathers slices in map-task order — no per-key
		// grouping, no string sort, no per-point copying.
		js.frameStreams = make([][][]byte, js.spec.Reducers)
		for r := 0; r < js.spec.Reducers; r++ {
			for _, taskParts := range js.frameOut {
				if r < len(taskParts) && len(taskParts[r]) > 0 {
					js.frameStreams[r] = append(js.frameStreams[r], taskParts[r])
				}
			}
		}
		js.frameOut = nil
		js.outFrames = make([][]byte, js.spec.Reducers)
	} else {
		js.groups = make([][]Group, js.spec.Reducers)
		for r := 0; r < js.spec.Reducers; r++ {
			order := []string{}
			byKey := map[string][][]byte{}
			for _, taskParts := range js.mapOut {
				if r >= len(taskParts) {
					continue
				}
				for _, p := range taskParts[r] {
					if _, ok := byKey[p.Key]; !ok {
						order = append(order, p.Key)
					}
					byKey[p.Key] = append(byKey[p.Key], p.Value)
				}
			}
			sort.Strings(order)
			gs := make([]Group, 0, len(order))
			for _, k := range order {
				gs = append(gs, Group{Key: k, Values: byKey[k]})
			}
			js.groups[r] = gs
		}
		js.mapOut = nil
	}
	js.shuffleDur = time.Since(shuffleStart)
	js.redStart = time.Now()
	js.tasks = js.tasks[:0]
	js.pending = js.pending[:0]
	js.done = 0
	js.durs = js.durs[:0] // straggler baseline is per phase
	for r := 0; r < js.spec.Reducers; r++ {
		js.tasks = append(js.tasks, &taskState{id: r})
		js.pending = append(js.pending, r)
	}
	m.cfg.Events.Info("phase start", telemetry.A("job", js.spec.Name),
		telemetry.A("phase", "reduce"), telemetry.A("tasks", js.spec.Reducers),
		telemetry.A("shuffle_seconds", js.shuffleDur.Seconds()))
}

// finish (mu held) completes the job.
func (m *Master) finish(js *jobState, err error) {
	if isClosed(js.finished) {
		return
	}
	js.err = err
	if err != nil {
		m.lastJobErr = err.Error()
	}
	if js.phase == TaskReduce {
		m.cfg.Events.Info("phase end", telemetry.A("job", js.spec.Name),
			telemetry.A("phase", "reduce"),
			telemetry.A("seconds", time.Since(js.redStart).Seconds()))
	}
	close(js.finished)
}

// requeueExpired (mu held) returns lease-expired running tasks to the
// pending queue. A lease expiry is counted both as a task retry and as
// a worker failure: the holder is presumed dead or stalled.
func (m *Master) requeueExpired(js *jobState) {
	now := time.Now()
	for _, t := range js.tasks {
		if t.running && !t.complete && now.After(t.deadline) {
			t.running = false
			t.attempt++
			t.failures++
			m.countRetry(t.worker, "lease-expiry")
			m.workerFailures++
			if reg := m.cfg.Metrics; reg != nil {
				reg.Counter("rpcmr_worker_failures_total", telemetry.L("worker", t.worker)).Inc()
			}
			m.cfg.Events.Warn("task lease expired", telemetry.A("job", js.spec.Name),
				telemetry.A("phase", phaseName(js.phase)), telemetry.A("task", t.id),
				telemetry.A("worker", t.worker), telemetry.A("attempt", t.attempt))
			if w := m.workers[t.worker]; w != nil {
				w.lastError = fmt.Sprintf("lease expired on %s task %d", phaseName(js.phase), t.id)
			}
			if t.failures >= m.cfg.MaxTaskAttempts {
				m.finish(js, fmt.Errorf("rpcmr: task %d exceeded %d attempts (lease expiry)",
					t.id, m.cfg.MaxTaskAttempts))
				return
			}
			js.pending = append(js.pending, t.id)
		}
	}
}

// Metrics returns the registry configured on the master (nil when
// telemetry is off) so pipelines built on the cluster — e.g.
// skyjob.Compute — can publish into the same exposition surface.
func (m *Master) Metrics() *telemetry.Registry { return m.cfg.Metrics }

// Events returns the event log configured on the master (nil when event
// logging is off) so pipelines and servers can log into the same stream
// that /debug/events exposes.
func (m *Master) Events() *telemetry.EventLog { return m.cfg.Events }
