package rpcmr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"repro/internal/mapreduce"
)

// MasterConfig tunes master behaviour.
type MasterConfig struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:0".
	Addr string
	// TaskLease is how long a worker may hold a task before it is
	// re-queued for another worker. Defaults to 30s.
	TaskLease time.Duration
	// SplitSize is records per map task. Defaults to 1000.
	SplitSize int
	// MaxTaskAttempts bounds re-executions of one task before the job is
	// failed. Defaults to 5.
	MaxTaskAttempts int
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.TaskLease <= 0 {
		c.TaskLease = 30 * time.Second
	}
	if c.SplitSize <= 0 {
		c.SplitSize = 1000
	}
	if c.MaxTaskAttempts <= 0 {
		c.MaxTaskAttempts = 5
	}
	return c
}

// Master owns job state and serves the task protocol over net/rpc.
type Master struct {
	cfg      MasterConfig
	listener net.Listener
	server   *rpc.Server

	mu       sync.Mutex
	workers  map[string]time.Time // last-seen times
	job      *jobState            // nil when idle
	shutdown bool
}

// jobState tracks one running job.
type jobState struct {
	spec      JobSpec
	phase     TaskKind // TaskMap or TaskReduce
	splitData [][][]byte
	tasks     []*taskState
	pending   []int // indexes of queued tasks of the current phase
	done      int   // completed tasks of the current phase
	mapOut    [][][]WirePair
	groups    [][]Group
	out       []WirePair
	mapStart  time.Time
	mapDur    time.Duration
	redStart  time.Time
	finished  chan struct{}
	err       error
}

// taskState tracks one task of the current phase.
type taskState struct {
	id       int
	attempt  int
	running  bool
	deadline time.Time
	complete bool
	failures int
}

// JobSpec identifies the job to run.
type JobSpec struct {
	Name     string
	Params   []byte
	Reducers int
}

// JobResult is what a distributed run returns.
type JobResult struct {
	Pairs      []mapreduce.Pair
	MapTime    time.Duration
	ReduceTime time.Duration
}

// NewMaster starts a master listening on cfg.Addr.
func NewMaster(cfg MasterConfig) (*Master, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: master listen: %w", err)
	}
	m := &Master{
		cfg:      cfg,
		listener: ln,
		server:   rpc.NewServer(),
		workers:  make(map[string]time.Time),
	}
	svc := &MasterService{m: m}
	if err := m.server.RegisterName("Master", svc); err != nil {
		ln.Close()
		return nil, fmt.Errorf("rpcmr: register service: %w", err)
	}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listen address (with the resolved port).
func (m *Master) Addr() string { return m.listener.Addr().String() }

// Close stops the master. In-flight jobs fail.
func (m *Master) Close() error {
	m.mu.Lock()
	m.shutdown = true
	if m.job != nil && m.job.err == nil && !isClosed(m.job.finished) {
		m.job.err = errors.New("rpcmr: master closed")
		close(m.job.finished)
	}
	m.mu.Unlock()
	return m.listener.Close()
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func (m *Master) acceptLoop() {
	for {
		conn, err := m.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go m.server.ServeConn(conn)
	}
}

// WorkerCount reports how many distinct workers have registered.
func (m *Master) WorkerCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// Run executes one job across the connected workers and blocks until it
// completes, fails, or ctx is cancelled. Only one job runs at a time;
// concurrent Run calls return an error.
func (m *Master) Run(ctx context.Context, spec JobSpec, input [][]byte) (*JobResult, error) {
	if spec.Reducers <= 0 {
		spec.Reducers = 1
	}
	// Validate the job is instantiable on the master side too, so typos
	// fail fast rather than on a worker.
	if _, err := lookupJob(spec.Name, spec.Params); err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.shutdown {
		m.mu.Unlock()
		return nil, errors.New("rpcmr: master is shut down")
	}
	if m.job != nil {
		m.mu.Unlock()
		return nil, errors.New("rpcmr: a job is already running")
	}
	js := &jobState{
		spec:     spec,
		phase:    TaskMap,
		finished: make(chan struct{}),
		mapStart: time.Now(),
	}
	// Build map tasks.
	var splits [][][]byte
	for off := 0; off < len(input); off += m.cfg.SplitSize {
		end := off + m.cfg.SplitSize
		if end > len(input) {
			end = len(input)
		}
		splits = append(splits, input[off:end])
	}
	js.mapOut = make([][][]WirePair, len(splits))
	for i := range splits {
		js.tasks = append(js.tasks, &taskState{id: i})
		js.pending = append(js.pending, i)
	}
	js.splitData = splits
	m.job = js
	m.mu.Unlock()

	if len(splits) == 0 {
		// Degenerate empty input: go straight to reduce with no groups.
		m.mu.Lock()
		m.startReducePhase(js)
		m.mu.Unlock()
	}

	select {
	case <-ctx.Done():
		m.mu.Lock()
		if m.job == js && !isClosed(js.finished) {
			js.err = ctx.Err()
			close(js.finished)
		}
		m.job = nil
		m.mu.Unlock()
		return nil, ctx.Err()
	case <-js.finished:
	}

	m.mu.Lock()
	m.job = nil
	m.mu.Unlock()
	if js.err != nil {
		return nil, js.err
	}
	pairs := make([]mapreduce.Pair, len(js.out))
	for i, p := range js.out {
		pairs[i] = mapreduce.Pair{Key: p.Key, Value: p.Value}
	}
	// Reduce tasks complete in arbitrary order; sort by key (stable, so
	// per-task emission order within a key survives) for deterministic
	// output across runs.
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
	return &JobResult{Pairs: pairs, MapTime: js.mapDur, ReduceTime: time.Since(js.redStart)}, nil
}

// startReducePhase (mu held) transitions from map to reduce: group map
// outputs by reducer partition and key, then queue reduce tasks.
func (m *Master) startReducePhase(js *jobState) {
	js.mapDur = time.Since(js.mapStart)
	js.phase = TaskReduce
	js.redStart = time.Now()
	js.groups = make([][]Group, js.spec.Reducers)
	for r := 0; r < js.spec.Reducers; r++ {
		order := []string{}
		byKey := map[string][][]byte{}
		for _, taskParts := range js.mapOut {
			if r >= len(taskParts) {
				continue
			}
			for _, p := range taskParts[r] {
				if _, ok := byKey[p.Key]; !ok {
					order = append(order, p.Key)
				}
				byKey[p.Key] = append(byKey[p.Key], p.Value)
			}
		}
		sort.Strings(order)
		gs := make([]Group, 0, len(order))
		for _, k := range order {
			gs = append(gs, Group{Key: k, Values: byKey[k]})
		}
		js.groups[r] = gs
	}
	js.mapOut = nil
	js.tasks = js.tasks[:0]
	js.pending = js.pending[:0]
	js.done = 0
	for r := 0; r < js.spec.Reducers; r++ {
		js.tasks = append(js.tasks, &taskState{id: r})
		js.pending = append(js.pending, r)
	}
}

// finish (mu held) completes the job.
func (m *Master) finish(js *jobState, err error) {
	if isClosed(js.finished) {
		return
	}
	js.err = err
	close(js.finished)
}

// requeueExpired (mu held) returns lease-expired running tasks to the
// pending queue.
func (m *Master) requeueExpired(js *jobState) {
	now := time.Now()
	for _, t := range js.tasks {
		if t.running && !t.complete && now.After(t.deadline) {
			t.running = false
			t.attempt++
			t.failures++
			if t.failures >= m.cfg.MaxTaskAttempts {
				m.finish(js, fmt.Errorf("rpcmr: task %d exceeded %d attempts (lease expiry)",
					t.id, m.cfg.MaxTaskAttempts))
				return
			}
			js.pending = append(js.pending, t.id)
		}
	}
}
