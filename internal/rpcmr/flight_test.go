package rpcmr

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/telemetry"
)

// ensureFlightJobs adds the slow-tail job used by the straggler test.
// Separate Once from ensureJobs, which it calls first (ensureJobs owns
// resetRegistryForTest, so ordering matters).
var flightJobsOnce sync.Once

func ensureFlightJobs() {
	ensureJobs()
	flightJobsOnce.Do(func() {
		// slowtail: each record is a sleep duration in milliseconds, so the
		// input controls the task-duration distribution exactly.
		RegisterJob("slowtail", func(params []byte) (Job, error) {
			return Job{
				Mapper: mapreduce.MapperFunc(func(rec []byte, emit mapreduce.Emit) error {
					ms, err := strconv.Atoi(string(rec))
					if err != nil {
						return err
					}
					time.Sleep(time.Duration(ms) * time.Millisecond)
					emit("slept", []byte(strconv.Itoa(ms)))
					return nil
				}),
				Reducer: mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
					emit(key, []byte(strconv.Itoa(len(values))))
					return nil
				}),
			}, nil
		})
	})
}

// spanIndex groups a tracer's spans for assertions: name → spans, plus
// an id → span lookup.
type spanIndex struct {
	byName map[string][]telemetry.SpanData
	byID   map[uint64]telemetry.SpanData
}

func indexSpans(tr *telemetry.Tracer) spanIndex {
	idx := spanIndex{
		byName: map[string][]telemetry.SpanData{},
		byID:   map[uint64]telemetry.SpanData{},
	}
	for _, s := range tr.Spans() {
		idx.byName[s.Name] = append(idx.byName[s.Name], s)
		idx.byID[s.ID] = s
	}
	return idx
}

func attrOf(s telemetry.SpanData, key string) (interface{}, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// TestStitchedTraceThreeWorkers: a 3-worker job with tracing on must
// yield ONE trace holding the master's job span AND every worker's task
// spans, each attached under the job span, with per-worker track rows.
// The slowtail job (30 ms per map task) keeps all three workers busy so
// the trace provably spans several processes.
func TestStitchedTraceThreeWorkers(t *testing.T) {
	ensureFlightJobs()
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1}, 3,
		WorkerConfig{PollInterval: time.Millisecond})
	tr := telemetry.NewTracer()
	rec := telemetry.NewRecorder("stitch")
	ctx := telemetry.WithRecorder(telemetry.WithTracer(context.Background(), tr), rec)
	input := [][]byte{
		[]byte("30"), []byte("30"), []byte("30"),
		[]byte("30"), []byte("30"), []byte("30"),
	}
	if _, err := master.Run(ctx, JobSpec{Name: "slowtail", Reducers: 2}, input); err != nil {
		t.Fatal(err)
	}

	idx := indexSpans(tr)
	jobs := idx.byName["rpcmr-job:slowtail"]
	if len(jobs) != 1 {
		t.Fatalf("job spans = %d, want 1", len(jobs))
	}
	job := jobs[0]
	if got := len(idx.byName["map-task"]); got != len(input) {
		t.Errorf("map-task spans = %d, want %d", got, len(input))
	}
	if got := len(idx.byName["reduce-task"]); got != 2 {
		t.Errorf("reduce-task spans = %d, want 2", got)
	}
	workers := map[interface{}]bool{}
	for _, name := range []string{"map-task", "reduce-task"} {
		for _, s := range idx.byName[name] {
			if s.Parent != job.ID {
				t.Errorf("%s (task %v) parent = %d, want job span %d",
					name, s.Attrs, s.Parent, job.ID)
			}
			if s.Track < 1 {
				t.Errorf("%s on track %d, want a per-worker row >= 1", name, s.Track)
			}
			if w, ok := attrOf(s, "worker"); ok {
				workers[w] = true
			}
		}
	}
	if len(workers) < 2 {
		t.Errorf("task spans from %d worker(s), want >= 2 of the 3", len(workers))
	}
	// Every task completion also reached the flight recorder.
	rep := rec.Report()
	if len(rep.Tasks) != 6+2 {
		t.Errorf("recorder tasks = %d, want %d", len(rep.Tasks), 6+2)
	}
}

// TestRetriedTaskSpansOnce: when a worker vanishes holding a task and the
// task is re-run elsewhere, the stitched trace must contain exactly one
// span per task — the retried task must not appear twice. Map tasks
// sleep 40 ms so the flaky worker reliably receives (and dies holding) a
// second task while others are still pending.
func TestRetriedTaskSpansOnce(t *testing.T) {
	ensureFlightJobs()
	mcfg := MasterConfig{SplitSize: 1, TaskLease: 200 * time.Millisecond}
	master, _, _ := newCluster(t, mcfg, 1,
		WorkerConfig{VanishAfterTasks: 1, PollInterval: time.Millisecond})

	healthy, err := NewWorker(WorkerConfig{
		MasterAddr:   master.Addr(),
		ID:           "healthy",
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { healthy.Close() })
	go func() { _ = healthy.Run(context.Background()) }()

	tr := telemetry.NewTracer()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	input := [][]byte{
		[]byte("40"), []byte("40"), []byte("40"),
		[]byte("40"), []byte("40"), []byte("40"),
	}
	if _, err := master.Run(telemetry.WithTracer(ctx, tr),
		JobSpec{Name: "slowtail", Reducers: 2}, input); err != nil {
		t.Fatal(err)
	}
	if master.Status().TaskRetries == 0 {
		t.Fatal("no retry happened; the regression scenario did not trigger")
	}

	idx := indexSpans(tr)
	for _, kind := range []string{"map-task", "reduce-task"} {
		perTask := map[interface{}]int{}
		for _, s := range idx.byName[kind] {
			id, ok := attrOf(s, "task")
			if !ok {
				t.Fatalf("%s span without task attr: %v", kind, s.Attrs)
			}
			perTask[id]++
		}
		for id, n := range perTask {
			if n != 1 {
				t.Errorf("%s %v appears %d times in the stitched trace, want exactly 1", kind, id, n)
			}
		}
	}
	if got := len(idx.byName["map-task"]); got != 6 {
		t.Errorf("map-task spans = %d, want 6 (one per task, retries deduplicated)", got)
	}
}

// TestStragglerDetection: with three ~5 ms tasks establishing the phase
// median, a 400 ms tail task must be flagged — counter, task record, and
// span attribute.
func TestStragglerDetection(t *testing.T) {
	ensureFlightJobs()
	reg := telemetry.NewRegistry()
	master, err := NewMaster(MasterConfig{SplitSize: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	w, err := NewWorker(WorkerConfig{
		MasterAddr:   master.Addr(),
		ID:           "w0",
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	go func() { _ = w.Run(context.Background()) }()

	tr := telemetry.NewTracer()
	rec := telemetry.NewRecorder("slowtail")
	ctx := telemetry.WithRecorder(telemetry.WithTracer(context.Background(), tr), rec)
	input := [][]byte{[]byte("5"), []byte("5"), []byte("5"), []byte("400")}
	if _, err := master.Run(ctx, JobSpec{Name: "slowtail", Reducers: 1}, input); err != nil {
		t.Fatal(err)
	}

	rep := rec.Report()
	if rep.Stragglers != 1 {
		t.Fatalf("stragglers = %d, want exactly 1 (the 400ms tail); tasks = %+v",
			rep.Stragglers, rep.Tasks)
	}
	found := false
	for _, task := range rep.Tasks {
		if task.Straggler {
			found = true
			if task.Kind != "map" || task.Seconds < 0.35 {
				t.Errorf("straggler record = %+v, want the slow map task", task)
			}
		}
	}
	if !found {
		t.Error("no task record flagged as straggler")
	}

	samples, err := telemetry.ParsePrometheus(promText(t, reg))
	if err != nil {
		t.Fatal(err)
	}
	if samples[`rpcmr_stragglers_total{worker="w0"}`] != 1 {
		t.Errorf("rpcmr_stragglers_total = %v, want 1", samples[`rpcmr_stragglers_total{worker="w0"}`])
	}

	marked := 0
	for _, s := range tr.Spans() {
		if s.Name != "map-task" {
			continue
		}
		if v, ok := attrOf(s, "straggler"); ok && v == true {
			marked++
		}
	}
	if marked != 1 {
		t.Errorf("straggler-marked task spans = %d, want 1", marked)
	}
}

// TestUntracedRunShipsNoSpans: with no tracer in the Run context the
// workers must not fabricate spans (TraceID 0 disables the worker path).
func TestUntracedRunShipsNoSpans(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{SplitSize: 1}, 2,
		WorkerConfig{PollInterval: time.Millisecond})
	res, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, res)
}
