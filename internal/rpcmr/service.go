package rpcmr

import (
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// MasterService is the net/rpc surface of a Master. All methods follow the
// rpc contract: exported, two args, error return.
type MasterService struct {
	m *Master
}

// Register announces a worker to the master.
func (s *MasterService) Register(args RegisterArgs, reply *RegisterReply) error {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	s.m.workers[args.WorkerID] = time.Now()
	reply.OK = true
	return nil
}

// RequestTask hands the calling worker a task, a wait directive, or a
// shutdown notice.
func (s *MasterService) RequestTask(args TaskArgs, reply *TaskReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers[args.WorkerID] = time.Now()
	m.assignTask(args.WorkerID, reply)
	return nil
}

// assignTask (mu held) fills reply with the next assignment for worker:
// a task, a wait directive, or a shutdown notice. Shared by RequestTask
// and the piggybacked ResultReply.Next so both hand out identical
// leases.
func (m *Master) assignTask(worker string, reply *TaskReply) {
	if m.shutdown {
		reply.Kind = TaskShutdown
		return
	}
	js := m.job
	if js == nil || isClosed(js.finished) {
		reply.Kind = TaskWait
		return
	}
	if len(js.pending) == 0 {
		m.requeueExpired(js)
	}
	if len(js.pending) == 0 {
		reply.Kind = TaskWait
		return
	}
	id := js.pending[0]
	js.pending = js.pending[1:]
	t := js.tasks[id]
	t.running = true
	t.deadline = time.Now().Add(m.cfg.TaskLease)
	t.startedAt = time.Now()
	t.worker = worker

	reply.Kind = js.phase
	reply.TaskID = id
	reply.Attempt = t.attempt
	reply.JobName = js.spec.Name
	reply.Params = js.spec.Params
	reply.Reducers = js.spec.Reducers
	reply.Framed = js.framed
	switch js.phase {
	case TaskMap:
		reply.Records = js.splitData[id]
	case TaskReduce:
		if js.framed {
			reply.FrameStreams = js.frameStreams[id]
		} else {
			reply.Groups = js.groups[id]
		}
	}
}

// ReportMap receives a map task result.
func (s *MasterService) ReportMap(args MapResultArgs, reply *ResultReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers[args.WorkerID] = time.Now()
	// Piggyback the worker's next assignment on every outcome — stale
	// reports included. Runs after the body (LIFO, mu still held) so a
	// phase transition triggered by this report is visible to the
	// assignment.
	defer func() {
		if !args.Final {
			m.assignTask(args.WorkerID, &reply.Next)
		}
	}()

	js := m.job
	if js == nil || js.phase != TaskMap || isClosed(js.finished) {
		return nil // stale report for a past job or phase
	}
	if args.TaskID < 0 || args.TaskID >= len(js.tasks) {
		return nil
	}
	t := js.tasks[args.TaskID]
	if t.complete {
		return nil // first writer won already
	}
	if args.Err != "" {
		t.running = false
		t.attempt++
		t.failures++
		m.countRetry(args.WorkerID, "report")
		if t.failures >= m.cfg.MaxTaskAttempts {
			m.finish(js, &WorkerTaskError{Task: args.TaskID, Msg: args.Err})
			return nil
		}
		js.pending = append(js.pending, args.TaskID)
		return nil
	}
	t.complete = true
	t.running = false
	m.observeTask(t, "map", args.WorkerID)
	if js.framed {
		js.frameOut[args.TaskID] = args.FrameParts
		m.observeFrameBytes(args.WorkerID, args.FrameParts)
	} else {
		js.mapOut[args.TaskID] = args.Partitions
	}
	js.done++
	reply.Accepted = true
	if js.done == len(js.tasks) {
		m.startReducePhase(js)
		if len(js.tasks) == 0 {
			m.finish(js, nil)
		}
	}
	return nil
}

// ReportReduce receives a reduce task result.
func (s *MasterService) ReportReduce(args ReduceResultArgs, reply *ResultReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.workers[args.WorkerID] = time.Now()
	defer func() {
		if !args.Final {
			m.assignTask(args.WorkerID, &reply.Next)
		}
	}()

	js := m.job
	if js == nil || js.phase != TaskReduce || isClosed(js.finished) {
		return nil
	}
	if args.TaskID < 0 || args.TaskID >= len(js.tasks) {
		return nil
	}
	t := js.tasks[args.TaskID]
	if t.complete {
		return nil
	}
	if args.Err != "" {
		t.running = false
		t.attempt++
		t.failures++
		m.countRetry(args.WorkerID, "report")
		if t.failures >= m.cfg.MaxTaskAttempts {
			m.finish(js, &WorkerTaskError{Task: args.TaskID, Msg: args.Err})
			return nil
		}
		js.pending = append(js.pending, args.TaskID)
		return nil
	}
	t.complete = true
	t.running = false
	m.observeTask(t, "reduce", args.WorkerID)
	if js.framed {
		js.outFrames[args.TaskID] = args.Frames
	} else {
		js.out = append(js.out, args.Pairs...)
	}
	js.done++
	reply.Accepted = true
	if js.done == len(js.tasks) {
		m.finish(js, nil)
	}
	return nil
}

// countRetry (mu held) books one task re-execution. cause is "report"
// (the worker returned an error) or "lease-expiry" (the worker went
// silent holding the task).
func (m *Master) countRetry(worker, cause string) {
	m.taskRetries++
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter("rpcmr_task_retries_total",
			telemetry.L("cause", cause), telemetry.L("worker", worker)).Inc()
	}
}

// observeTask (mu held) records one successfully finished task's
// latency into the per-worker histogram.
func (m *Master) observeTask(t *taskState, kind, worker string) {
	reg := m.cfg.Metrics
	if reg == nil || t.startedAt.IsZero() {
		return
	}
	reg.Histogram("rpcmr_task_seconds", telemetry.DurationBuckets(),
		telemetry.L("kind", kind), telemetry.L("worker", worker)).
		Observe(time.Since(t.startedAt).Seconds())
}

// observeFrameBytes (mu held) books one map task's frame payload into the
// per-worker shuffle series: rpcmr_shuffle_bytes_total counts payload
// bytes (frame header + coordinates — never the gob envelope, matching
// the engine's mr.shuffle.bytes semantics) and rpcmr_shuffle_frame_bytes
// tracks the per-task payload size distribution, so a worker producing
// outsized frames stands out.
func (m *Master) observeFrameBytes(worker string, parts [][]byte) {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	var total int64
	for _, stream := range parts {
		total += int64(len(stream))
	}
	reg.Counter("rpcmr_shuffle_bytes_total", telemetry.L("worker", worker)).Add(total)
	// 1 KiB … ~16 GiB in ×4 steps: frame payloads are batched, so the
	// interesting range starts well above a single point.
	reg.Histogram("rpcmr_shuffle_frame_bytes", telemetry.ExpBuckets(1024, 4, 12),
		telemetry.L("worker", worker)).Observe(float64(total))
}

// WorkerTaskError reports a task that failed deterministically on workers.
type WorkerTaskError struct {
	Task int
	Msg  string
}

// Error implements error.
func (e *WorkerTaskError) Error() string {
	return "rpcmr: task " + strconv.Itoa(e.Task) + " failed on workers: " + e.Msg
}
