package rpcmr

import (
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// minStragglerSamples is how many completed task durations the current
// phase must have before the straggler detector trusts its median.
const minStragglerSamples = 3

// MasterService is the net/rpc surface of a Master. All methods follow the
// rpc contract: exported, two args, error return.
type MasterService struct {
	m *Master
}

// Register announces a worker to the master.
func (s *MasterService) Register(args RegisterArgs, reply *RegisterReply) error {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	w := s.m.touchWorker(args.WorkerID)
	if args.DebugAddr != "" {
		w.debugAddr = args.DebugAddr
	}
	reply.OK = true
	return nil
}

// RequestTask hands the calling worker a task, a wait directive, or a
// shutdown notice.
func (s *MasterService) RequestTask(args TaskArgs, reply *TaskReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	m.touchWorker(args.WorkerID)
	m.assignTask(args.WorkerID, reply)
	return nil
}

// assignTask (mu held) fills reply with the next assignment for worker:
// a task, a wait directive, or a shutdown notice. Shared by RequestTask
// and the piggybacked ResultReply.Next so both hand out identical
// leases.
func (m *Master) assignTask(worker string, reply *TaskReply) {
	if m.shutdown {
		reply.Kind = TaskShutdown
		return
	}
	js := m.job
	if js == nil || isClosed(js.finished) {
		reply.Kind = TaskWait
		return
	}
	if len(js.pending) == 0 {
		m.requeueExpired(js)
	}
	if len(js.pending) == 0 {
		reply.Kind = TaskWait
		return
	}
	id := js.pending[0]
	js.pending = js.pending[1:]
	t := js.tasks[id]
	t.running = true
	t.deadline = time.Now().Add(m.cfg.TaskLease)
	t.startedAt = time.Now()
	t.worker = worker

	if m.cfg.Events.Enabled(slog.LevelDebug) {
		m.cfg.Events.Debug("task dispatch", telemetry.A("job", js.spec.Name),
			telemetry.A("phase", phaseName(js.phase)), telemetry.A("task", id),
			telemetry.A("worker", worker), telemetry.A("attempt", t.attempt))
	}

	reply.Kind = js.phase
	reply.TaskID = id
	reply.Attempt = t.attempt
	reply.JobName = js.spec.Name
	reply.Params = js.spec.Params
	reply.Reducers = js.spec.Reducers
	reply.Framed = js.framed
	if js.tracer != nil {
		// Each worker gets its own Chrome-trace row so the stitched trace
		// reads like the cluster's real timeline.
		track, ok := js.tracks[worker]
		if !ok {
			track = js.nextTrack
			js.nextTrack++
			js.tracks[worker] = track
		}
		reply.TraceID = js.traceID
		reply.ParentSpan = js.parentSpan
		reply.Track = track
	}
	switch js.phase {
	case TaskMap:
		reply.Records = js.splitData[id]
	case TaskReduce:
		if js.framed {
			reply.FrameStreams = js.frameStreams[id]
		} else {
			reply.Groups = js.groups[id]
		}
	}
}

// ReportMap receives a map task result.
func (s *MasterService) ReportMap(args MapResultArgs, reply *ResultReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touchWorker(args.WorkerID)
	// Piggyback the worker's next assignment on every outcome — stale
	// reports included. Runs after the body (LIFO, mu still held) so a
	// phase transition triggered by this report is visible to the
	// assignment.
	defer func() {
		if !args.Final {
			m.assignTask(args.WorkerID, &reply.Next)
		}
	}()

	js := m.job
	if js == nil || js.phase != TaskMap || isClosed(js.finished) {
		return nil // stale report for a past job or phase
	}
	if args.TaskID < 0 || args.TaskID >= len(js.tasks) {
		return nil
	}
	t := js.tasks[args.TaskID]
	if t.complete {
		return nil // first writer won already
	}
	if args.Err != "" {
		t.running = false
		t.attempt++
		t.failures++
		m.countRetry(args.WorkerID, "report")
		m.reportTaskFailure(js, w, "map", args.TaskID, t.failures, args.Err)
		if t.failures >= m.cfg.MaxTaskAttempts {
			m.finish(js, &WorkerTaskError{Task: args.TaskID, Msg: args.Err})
			return nil
		}
		js.pending = append(js.pending, args.TaskID)
		return nil
	}
	t.complete = true
	t.running = false
	w.tasksDone++
	m.observeTask(t, "map", args.WorkerID)
	m.recordCompletion(js, t, "map", args.WorkerID, args.Spans, args.TraceID)
	if js.framed {
		js.frameOut[args.TaskID] = args.FrameParts
		m.observeFrameBytes(args.WorkerID, args.FrameParts)
		for id, ps := range args.PartStats {
			acc := js.partStats[id]
			acc.Records += ps.Records
			acc.Bytes += ps.Bytes
			js.partStats[id] = acc
		}
	} else {
		js.mapOut[args.TaskID] = args.Partitions
	}
	js.done++
	reply.Accepted = true
	if js.done == len(js.tasks) {
		m.startReducePhase(js)
		if len(js.tasks) == 0 {
			m.finish(js, nil)
		}
	}
	return nil
}

// ReportReduce receives a reduce task result.
func (s *MasterService) ReportReduce(args ReduceResultArgs, reply *ResultReply) error {
	m := s.m
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.touchWorker(args.WorkerID)
	defer func() {
		if !args.Final {
			m.assignTask(args.WorkerID, &reply.Next)
		}
	}()

	js := m.job
	if js == nil || js.phase != TaskReduce || isClosed(js.finished) {
		return nil
	}
	if args.TaskID < 0 || args.TaskID >= len(js.tasks) {
		return nil
	}
	t := js.tasks[args.TaskID]
	if t.complete {
		return nil
	}
	if args.Err != "" {
		t.running = false
		t.attempt++
		t.failures++
		m.countRetry(args.WorkerID, "report")
		m.reportTaskFailure(js, w, "reduce", args.TaskID, t.failures, args.Err)
		if t.failures >= m.cfg.MaxTaskAttempts {
			m.finish(js, &WorkerTaskError{Task: args.TaskID, Msg: args.Err})
			return nil
		}
		js.pending = append(js.pending, args.TaskID)
		return nil
	}
	t.complete = true
	t.running = false
	w.tasksDone++
	m.observeTask(t, "reduce", args.WorkerID)
	m.recordCompletion(js, t, "reduce", args.WorkerID, args.Spans, args.TraceID)
	if js.framed {
		js.outFrames[args.TaskID] = args.Frames
	} else {
		js.out = append(js.out, args.Pairs...)
	}
	js.done++
	reply.Accepted = true
	if js.done == len(js.tasks) {
		m.finish(js, nil)
	}
	return nil
}

// recordCompletion (mu held) runs the flight-recorder side of one
// *accepted* task completion: straggler detection against the running
// phase median, the TaskRecord, and the import of the worker's span tree
// into the master's tracer. Because only the first accepted report of a
// task reaches here (first-writer-wins) and error reports carry no
// spans, a retried task contributes exactly one span tree to the
// stitched trace.
func (m *Master) recordCompletion(js *jobState, t *taskState, kind, worker string, spans []telemetry.SpanData, traceID uint64) {
	dur := time.Since(t.startedAt).Seconds()
	straggler := false
	if len(js.durs) >= minStragglerSamples {
		med := median(js.durs)
		if med > 0 && dur > m.cfg.StragglerFactor*med {
			straggler = true
			if reg := m.cfg.Metrics; reg != nil {
				reg.Counter("rpcmr_stragglers_total", telemetry.L("worker", worker)).Inc()
			}
			m.cfg.Events.Warn("straggler flagged", telemetry.A("job", js.spec.Name),
				telemetry.A("phase", kind), telemetry.A("task", t.id),
				telemetry.A("worker", worker), telemetry.A("seconds", dur),
				telemetry.A("phase_median_seconds", med))
		}
	}
	js.durs = append(js.durs, dur)

	js.recorder.RecordTask(telemetry.TaskRecord{
		Job:       js.spec.Name,
		Kind:      kind,
		Task:      t.id,
		Attempt:   t.attempt,
		Worker:    worker,
		Seconds:   dur,
		Straggler: straggler,
	})

	if js.tracer != nil && traceID == js.traceID && len(spans) > 0 {
		if straggler {
			// Mark the batch roots (the task spans) before import, so the
			// flag survives into the stitched trace.
			inBatch := make(map[uint64]bool, len(spans))
			for _, s := range spans {
				inBatch[s.ID] = true
			}
			for i := range spans {
				if !inBatch[spans[i].Parent] {
					spans[i].Attrs = append(spans[i].Attrs, telemetry.A("straggler", true))
				}
			}
		}
		js.tracer.Import(js.parentSpan, spans)
	}
}

// median returns the middle value of xs (mean of the two middles for
// even lengths) without mutating it.
func median(xs []float64) float64 {
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// reportTaskFailure (mu held) books the event-log and per-worker side of
// a worker-reported task error; failures is the task's updated count.
func (m *Master) reportTaskFailure(js *jobState, w *workerInfo, kind string, task, failures int, msg string) {
	w.lastError = fmt.Sprintf("%s task %d: %s", kind, task, msg)
	m.cfg.Events.Warn("task failed", telemetry.A("job", js.spec.Name),
		telemetry.A("phase", kind), telemetry.A("task", task),
		telemetry.A("worker", w.id), telemetry.A("failures", failures),
		telemetry.A("err", msg))
}

// countRetry (mu held) books one task re-execution. cause is "report"
// (the worker returned an error) or "lease-expiry" (the worker went
// silent holding the task).
func (m *Master) countRetry(worker, cause string) {
	m.taskRetries++
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter("rpcmr_task_retries_total",
			telemetry.L("cause", cause), telemetry.L("worker", worker)).Inc()
	}
}

// observeTask (mu held) records one successfully finished task's
// latency into the per-worker histogram, plus the cluster-wide
// completion counter the time-series sampler turns into a throughput
// curve (rpcmr_tasks_done_total — the anomaly watchdog's stall rule and
// skytop's sparkline both read its rate).
func (m *Master) observeTask(t *taskState, kind, worker string) {
	reg := m.cfg.Metrics
	if reg == nil || t.startedAt.IsZero() {
		return
	}
	reg.Counter("rpcmr_tasks_done_total").Inc()
	reg.Histogram("rpcmr_task_seconds", telemetry.DurationBuckets(),
		telemetry.L("kind", kind), telemetry.L("worker", worker)).
		Observe(time.Since(t.startedAt).Seconds())
}

// observeFrameBytes (mu held) books one map task's frame payload into the
// per-worker shuffle series: rpcmr_shuffle_bytes_total counts payload
// bytes (frame header + coordinates — never the gob envelope, matching
// the engine's mr.shuffle.bytes semantics) and rpcmr_shuffle_frame_bytes
// tracks the per-task payload size distribution, so a worker producing
// outsized frames stands out.
func (m *Master) observeFrameBytes(worker string, parts [][]byte) {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	var total int64
	for _, stream := range parts {
		total += int64(len(stream))
	}
	reg.Counter("rpcmr_shuffle_bytes_total", telemetry.L("worker", worker)).Add(total)
	// 1 KiB … ~16 GiB in ×4 steps: frame payloads are batched, so the
	// interesting range starts well above a single point.
	reg.Histogram("rpcmr_shuffle_frame_bytes", telemetry.ExpBuckets(1024, 4, 12),
		telemetry.L("worker", worker)).Observe(float64(total))
}

// WorkerTaskError reports a task that failed deterministically on workers.
type WorkerTaskError struct {
	Task int
	Msg  string
}

// Error implements error.
func (e *WorkerTaskError) Error() string {
	return "rpcmr: task " + strconv.Itoa(e.Task) + " failed on workers: " + e.Msg
}
