package rpcmr

import (
	"context"
	"fmt"
	"hash/fnv"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/telemetry"
)

// WorkerConfig tunes worker behaviour.
type WorkerConfig struct {
	// MasterAddr is the master's TCP address.
	MasterAddr string
	// ID labels this worker; defaults to a generated name.
	ID string
	// PollInterval is how long to sleep after a TaskWait. Defaults to
	// 50ms.
	PollInterval time.Duration
	// FailAfterTasks, when > 0, makes the worker exit with an error after
	// completing that many tasks — fault-injection support for tests and
	// chaos drills. 0 disables.
	FailAfterTasks int
	// VanishAfterTasks, when > 0, makes the worker crash while *holding*
	// its next assigned task after completing that many: the task is
	// accepted but never executed or reported, exercising the master's
	// lease-expiry reassignment. 0 disables.
	VanishAfterTasks int
	// TaskStall, when > 0, sleeps that long before executing every task —
	// a controllable straggler for tests and the critical-path benchgate
	// suite (the stall lands inside the task span, so the profiler sees
	// it as task time on this worker). 0 disables.
	TaskStall time.Duration
	// DebugAddr is the worker's debug HTTP server address (host:port),
	// reported to the master at registration so it can federate this
	// worker's /metrics into the cluster view. Empty when the worker
	// serves no debug endpoints.
	DebugAddr string
	// Metrics, when non-nil, receives worker-side series: per-kind task
	// counts (rpcmr_worker_tasks_total) and execution latency
	// (rpcmr_worker_task_seconds). Nil records nothing.
	Metrics *telemetry.Registry
	// Events, when non-nil, receives worker-side operational events.
	// Nil records nothing.
	Events *telemetry.EventLog
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 50 * time.Millisecond
	}
	if c.ID == "" {
		c.ID = fmt.Sprintf("worker-%d", time.Now().UnixNano())
	}
	return c
}

// Worker pulls and executes tasks from a master until shut down.
type Worker struct {
	cfg    WorkerConfig
	client *rpc.Client

	mu        sync.Mutex
	completed int
}

// NewWorker connects to the master.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	client, err := rpc.Dial("tcp", cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("rpcmr: dialing master %s: %w", cfg.MasterAddr, err)
	}
	w := &Worker{cfg: cfg, client: client}
	var reply RegisterReply
	args := RegisterArgs{WorkerID: cfg.ID, DebugAddr: cfg.DebugAddr}
	if err := client.Call("Master.Register", args, &reply); err != nil {
		client.Close()
		return nil, fmt.Errorf("rpcmr: registering: %w", err)
	}
	cfg.Events.Info("registered with master",
		telemetry.A("master", cfg.MasterAddr), telemetry.A("debug_addr", cfg.DebugAddr))
	return w, nil
}

// Completed reports how many tasks this worker has finished.
func (w *Worker) Completed() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.completed
}

// Close drops the master connection.
func (w *Worker) Close() error { return w.client.Close() }

// Run is the worker main loop: poll for tasks and execute them until the
// master shuts down, the connection drops, or ctx is cancelled. A clean
// master shutdown returns nil.
//
// The loop rides the persistent net/rpc connection, so the gob codec —
// and its one-time type descriptors — is set up once per worker, not per
// call; result reports piggyback the next assignment (ResultReply.Next),
// so a busy worker makes one round-trip per task instead of two.
func (w *Worker) Run(ctx context.Context) error {
	var task TaskReply
	haveTask := false
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !haveTask {
			task = TaskReply{}
			if err := w.client.Call("Master.RequestTask", TaskArgs{WorkerID: w.cfg.ID}, &task); err != nil {
				return fmt.Errorf("rpcmr: worker %s: request task: %w", w.cfg.ID, err)
			}
		}
		haveTask = false
		switch task.Kind {
		case TaskShutdown:
			return nil
		case TaskWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.cfg.PollInterval):
			}
		case TaskMap:
			if w.shouldVanish() {
				return fmt.Errorf("rpcmr: worker %s: injected crash holding map task %d", w.cfg.ID, task.TaskID)
			}
			next, err := w.runMap(task)
			if err != nil {
				return err
			}
			task, haveTask = next, true
		case TaskReduce:
			if w.shouldVanish() {
				return fmt.Errorf("rpcmr: worker %s: injected crash holding reduce task %d", w.cfg.ID, task.TaskID)
			}
			next, err := w.runReduce(task)
			if err != nil {
				return err
			}
			task, haveTask = next, true
		default:
			return fmt.Errorf("rpcmr: worker %s: unknown task kind %d", w.cfg.ID, task.Kind)
		}
	}
}

// observeTask books one executed task into the worker-side registry:
// rpcmr_worker_tasks_total{kind,result} and the execution-latency
// histogram (stall injection included — a stalled worker's own metrics
// show the slowdown the master's federated view attributes to it).
func (w *Worker) observeTask(kind string, start time.Time, err error) {
	reg := w.cfg.Metrics
	if reg == nil {
		return
	}
	result := "ok"
	if err != nil {
		result = "error"
	}
	reg.Counter("rpcmr_worker_tasks_total",
		telemetry.L("kind", kind), telemetry.L("result", result)).Inc()
	reg.Histogram("rpcmr_worker_task_seconds", telemetry.DurationBuckets(),
		telemetry.L("kind", kind)).Observe(time.Since(start).Seconds())
}

// stall applies the TaskStall straggler injection.
func (w *Worker) stall() {
	if w.cfg.TaskStall > 0 {
		time.Sleep(w.cfg.TaskStall)
	}
}

// shouldVanish reports whether the crash-while-holding-a-task injection
// fires now.
func (w *Worker) shouldVanish() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg.VanishAfterTasks > 0 && w.completed >= w.cfg.VanishAfterTasks
}

// bumpCompleted counts a finished task and applies fault injection.
func (w *Worker) bumpCompleted() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.completed++
	if w.cfg.FailAfterTasks > 0 && w.completed >= w.cfg.FailAfterTasks {
		return fmt.Errorf("rpcmr: worker %s: injected failure after %d tasks", w.cfg.ID, w.completed)
	}
	return nil
}

// willStop reports whether this worker will exit (fail injection) right
// after its next completed task, so the report can decline the
// piggybacked assignment instead of taking a task to the grave.
func (w *Worker) willStop() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cfg.FailAfterTasks > 0 && w.completed+1 >= w.cfg.FailAfterTasks
}

// taskSpan starts a worker-local span tree for one task when the master
// asked for tracing (task.TraceID != 0). The returned finish callback
// ends the span and hands back the recorded SpanData batch (nil when
// tracing is off or the task failed — error reports must not ship spans,
// or a retried task would appear twice in the stitched trace).
func (w *Worker) taskSpan(task TaskReply, name string, records int) (span *telemetry.Span, finish func(failed bool) []telemetry.SpanData) {
	if task.TraceID == 0 {
		return nil, func(bool) []telemetry.SpanData { return nil }
	}
	tracer := telemetry.NewTracer()
	_, span = telemetry.StartSpan(telemetry.WithTracer(context.Background(), tracer), name,
		telemetry.A("task", task.TaskID), telemetry.A("attempt", task.Attempt),
		telemetry.A("worker", w.cfg.ID), telemetry.A("records", records))
	span.SetTrack(task.Track)
	return span, func(failed bool) []telemetry.SpanData {
		span.End()
		if failed {
			return nil
		}
		return tracer.Spans()
	}
}

func (w *Worker) runMap(task TaskReply) (TaskReply, error) {
	args := MapResultArgs{
		WorkerID: w.cfg.ID,
		TaskID:   task.TaskID,
		Attempt:  task.Attempt,
		Final:    w.willStop(),
		TraceID:  task.TraceID,
	}
	span, finish := w.taskSpan(task, "map-task", len(task.Records))
	start := time.Now()
	w.stall()
	var err error
	if task.Framed {
		args.FrameParts, args.PartStats, err = executeMapFramed(task)
	} else {
		args.Partitions, err = executeMap(task)
	}
	if err != nil {
		args.Err = err.Error()
		args.Partitions, args.FrameParts, args.PartStats = nil, nil, nil
		span.SetAttr("error", err.Error())
	}
	args.Spans = finish(err != nil)
	w.observeTask("map", start, err)
	var reply ResultReply
	if err := w.client.Call("Master.ReportMap", args, &reply); err != nil {
		return TaskReply{}, fmt.Errorf("rpcmr: worker %s: report map: %w", w.cfg.ID, err)
	}
	return reply.Next, w.bumpCompleted()
}

func (w *Worker) runReduce(task TaskReply) (TaskReply, error) {
	args := ReduceResultArgs{
		WorkerID: w.cfg.ID,
		TaskID:   task.TaskID,
		Attempt:  task.Attempt,
		Final:    w.willStop(),
		TraceID:  task.TraceID,
	}
	span, finish := w.taskSpan(task, "reduce-task", len(task.Groups))
	start := time.Now()
	w.stall()
	var err error
	if task.Framed {
		args.Frames, err = executeReduceFramed(task)
	} else {
		args.Pairs, err = executeReduce(task)
	}
	if err != nil {
		args.Err = err.Error()
		args.Pairs, args.Frames = nil, nil
		span.SetAttr("error", err.Error())
	}
	args.Spans = finish(err != nil)
	w.observeTask("reduce", start, err)
	var reply ResultReply
	if err := w.client.Call("Master.ReportReduce", args, &reply); err != nil {
		return TaskReply{}, fmt.Errorf("rpcmr: worker %s: report reduce: %w", w.cfg.ID, err)
	}
	return reply.Next, w.bumpCompleted()
}

// executeMap runs the mapper (and combiner) of one map task, returning
// output pairs partitioned by reducer.
func executeMap(task TaskReply) ([][]WirePair, error) {
	job, err := lookupJob(task.JobName, task.Params)
	if err != nil {
		return nil, err
	}
	reducers := task.Reducers
	if reducers < 1 {
		reducers = 1
	}
	parts := make([][]WirePair, reducers)
	emit := func(key string, value []byte) {
		r := wirePartition(key, reducers)
		parts[r] = append(parts[r], WirePair{Key: key, Value: value})
	}
	for _, rec := range task.Records {
		if err := job.Mapper.Map(rec, emit); err != nil {
			return nil, err
		}
	}
	if job.Combiner != nil {
		for r := range parts {
			combined, err := combineWire(job.Combiner, parts[r])
			if err != nil {
				return nil, err
			}
			parts[r] = combined
		}
	}
	return parts, nil
}

// combineWire groups one partition's pairs by key (first-seen order) and
// applies the combiner.
func combineWire(combiner mapreduce.Reducer, pairs []WirePair) ([]WirePair, error) {
	if len(pairs) == 0 {
		return pairs, nil
	}
	order := make([]string, 0, 8)
	groups := make(map[string][][]byte, 8)
	for _, p := range pairs {
		if _, ok := groups[p.Key]; !ok {
			order = append(order, p.Key)
		}
		groups[p.Key] = append(groups[p.Key], p.Value)
	}
	var out []WirePair
	emit := func(key string, value []byte) {
		out = append(out, WirePair{Key: key, Value: value})
	}
	for _, k := range order {
		if err := combiner.Reduce(k, groups[k], emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// executeMapFramed runs one framed map task: the shared frame builder
// (mapreduce.BuildFrames, pooled scratch blocks) maps and combines the
// records, and the sealed per-reducer streams ship as single batched
// payloads — one gob slice per reducer instead of one WirePair per
// point, byte-identical to what the in-process engine would shuffle.
func executeMapFramed(task TaskReply) ([][]byte, map[int]mapreduce.PartStat, error) {
	job, err := lookupJob(task.JobName, task.Params)
	if err != nil {
		return nil, nil, err
	}
	if !job.framed() {
		return nil, nil, fmt.Errorf("rpcmr: job %q: framed task for unframed job", task.JobName)
	}
	streams, st, err := mapreduce.BuildFrames(task.Records, task.Reducers, job.FrameMapper, job.FrameCombiner, job.Codec)
	if err != nil {
		return nil, nil, err
	}
	return streams, st.Partitions, nil
}

// executeReduceFramed folds one reducer's frame streams into a single
// output stream via the shared mapreduce.ReduceFrames — or, when the job
// carries a FrameFolder, via the streaming mapreduce.ReduceFramesStream,
// which never assembles a partition's full block.
func executeReduceFramed(task TaskReply) ([]byte, error) {
	job, err := lookupJob(task.JobName, task.Params)
	if err != nil {
		return nil, err
	}
	if !job.framed() {
		return nil, fmt.Errorf("rpcmr: job %q: framed task for unframed job", task.JobName)
	}
	if job.FrameFolder != nil {
		srcs := make([]mapreduce.FrameSource, 0, len(task.FrameStreams))
		for _, stream := range task.FrameStreams {
			srcs = append(srcs, mapreduce.StreamFrameSource(stream))
		}
		out, _, err := mapreduce.ReduceFramesStream(srcs, job.FrameFolder, job.Codec)
		return out, err
	}
	out, _, err := mapreduce.ReduceFrames(task.FrameStreams, job.FrameReducer, job.Codec)
	return out, err
}

// executeReduce runs the reducer over one task's key groups.
func executeReduce(task TaskReply) ([]WirePair, error) {
	job, err := lookupJob(task.JobName, task.Params)
	if err != nil {
		return nil, err
	}
	var out []WirePair
	emit := func(key string, value []byte) {
		out = append(out, WirePair{Key: key, Value: value})
	}
	for _, g := range task.Groups {
		if err := job.Reducer.Reduce(g.Key, g.Values, emit); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// wirePartition must agree between all workers: FNV-1a over the key.
func wirePartition(key string, reducers int) int {
	if reducers == 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(reducers))
}
