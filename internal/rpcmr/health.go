package rpcmr

import (
	"log/slog"
	"sort"
	"time"

	"repro/internal/telemetry"
)

// Worker health model: every worker moves through a three-state machine
// driven by heartbeat age (any RPC from the worker is a heartbeat).
//
//	healthy ──(silent > LivenessWindow)──▶ suspect
//	suspect ──(silent > DeadWindow)──────▶ dead
//	suspect/dead ──(any heartbeat)───────▶ healthy
//
// Transitions are detected by a background sweep (HealthInterval) so a
// dying worker is noticed even when nobody polls Status, and each
// transition fires exactly one event into the master's event log plus a
// rpcmr_worker_state gauge update. The aggregate picture is served at
// /debug/health by binaries that mount telemetry.MountHealth around
// Master.Health.

// WorkerState is one worker's position in the health state machine.
type WorkerState int

const (
	// WorkerHealthy: heartbeat within LivenessWindow.
	WorkerHealthy WorkerState = iota
	// WorkerSuspect: silent for more than LivenessWindow — tasks it holds
	// will be re-queued when their lease expires.
	WorkerSuspect
	// WorkerDead: silent for more than DeadWindow (3 × LivenessWindow by
	// default) — presumed gone until it calls in again.
	WorkerDead
)

// String returns the state's wire name.
func (s WorkerState) String() string {
	switch s {
	case WorkerHealthy:
		return "healthy"
	case WorkerSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// workerInfo is the master's per-worker book-keeping (mu held).
type workerInfo struct {
	id        string
	debugAddr string // worker's debug HTTP server, "" when it has none
	lastSeen  time.Time
	state     WorkerState
	tasksDone int64
	lastError string
}

// WorkerHealth is one worker's entry in the health summary.
type WorkerHealth struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// DebugAddr is the worker's debug HTTP server (scraped into
	// /debug/cluster), empty when the worker runs without one.
	DebugAddr string `json:"debug_addr,omitempty"`
	// LastSeenAgeSeconds is how long ago the worker last called in.
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds"`
	// TasksDone counts this worker's accepted task completions across all
	// jobs.
	TasksDone int64 `json:"tasks_done"`
	// InFlight counts tasks of the current phase assigned to this worker
	// and not yet complete.
	InFlight int `json:"in_flight"`
	// LastError is the worker's most recent task error or lease expiry,
	// empty when it has never failed.
	LastError string `json:"last_error,omitempty"`
}

// Health is the master's aggregated live-operations summary — what
// /debug/health serves and what skytop renders.
type Health struct {
	Time time.Time `json:"time"`
	// Healthy/Suspect/Dead count workers per state.
	Healthy int `json:"healthy"`
	Suspect int `json:"suspect"`
	Dead    int `json:"dead"`
	// Workers lists every registered worker, sorted by id.
	Workers []WorkerHealth `json:"workers"`
	// JobRunning/Job/Phase describe the in-flight job ("" when idle).
	JobRunning bool   `json:"job_running"`
	Job        string `json:"job,omitempty"`
	Phase      string `json:"phase,omitempty"`
	// TasksTotal/TasksDone/QueueDepth/InFlight break the current phase
	// down: done + queued + in-flight = total.
	TasksTotal int `json:"tasks_total"`
	TasksDone  int `json:"tasks_done"`
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	// TaskRetries/WorkerFailures mirror Status.
	TaskRetries    int64 `json:"task_retries"`
	WorkerFailures int64 `json:"worker_failures"`
	// LastJobError is the most recent job-level failure, empty when every
	// job has succeeded.
	LastJobError string `json:"last_job_error,omitempty"`
}

// Health assembles the current health summary. Safe to call at any time;
// the /debug/health handler calls it per request.
func (m *Master) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	h := Health{
		Time:           now,
		Workers:        make([]WorkerHealth, 0, len(m.workers)),
		TaskRetries:    m.taskRetries,
		WorkerFailures: m.workerFailures,
		LastJobError:   m.lastJobErr,
	}
	inFlight := make(map[string]int)
	if js := m.job; js != nil && !isClosed(js.finished) {
		h.JobRunning = true
		h.Job = js.spec.Name
		h.Phase = phaseName(js.phase)
		h.TasksTotal = len(js.tasks)
		h.TasksDone = js.done
		h.QueueDepth = len(js.pending)
		for _, t := range js.tasks {
			if t.running && !t.complete {
				inFlight[t.worker]++
				h.InFlight++
			}
		}
	}
	for _, w := range m.workers {
		switch w.state {
		case WorkerHealthy:
			h.Healthy++
		case WorkerSuspect:
			h.Suspect++
		default:
			h.Dead++
		}
		h.Workers = append(h.Workers, WorkerHealth{
			ID:                 w.id,
			State:              w.state.String(),
			DebugAddr:          w.debugAddr,
			LastSeenAgeSeconds: now.Sub(w.lastSeen).Seconds(),
			TasksDone:          w.tasksDone,
			InFlight:           inFlight[w.id],
			LastError:          w.lastError,
		})
	}
	sort.Slice(h.Workers, func(i, j int) bool { return h.Workers[i].ID < h.Workers[j].ID })
	return h
}

// phaseName renders a TaskKind for humans and JSON.
func phaseName(k TaskKind) string {
	switch k {
	case TaskMap:
		return "map"
	case TaskReduce:
		return "reduce"
	default:
		return ""
	}
}

// touchWorker (mu held) books a heartbeat from worker id, creating its
// record on first contact. A heartbeat from a suspect or dead worker is
// a recovery transition.
func (m *Master) touchWorker(id string) *workerInfo {
	w := m.workers[id]
	if w == nil {
		w = &workerInfo{id: id, state: WorkerHealthy}
		m.workers[id] = w
		m.cfg.Events.Info("worker registered", telemetry.A("worker", id))
		m.setStateGauge(id, WorkerHealthy)
	}
	w.lastSeen = time.Now()
	if w.state != WorkerHealthy {
		m.transitionWorker(w, WorkerHealthy, 0)
	}
	return w
}

// transitionWorker (mu held) applies one state-machine edge: record,
// gauge, and exactly one leveled transition event.
func (m *Master) transitionWorker(w *workerInfo, to WorkerState, age time.Duration) {
	if w.state == to {
		return
	}
	from := w.state
	w.state = to
	m.setStateGauge(w.id, to)
	if reg := m.cfg.Metrics; reg != nil {
		reg.Counter("rpcmr_worker_transitions_total",
			telemetry.L("worker", w.id), telemetry.L("to", to.String())).Inc()
	}
	level := slog.LevelInfo
	msg := "worker recovered"
	switch to {
	case WorkerSuspect:
		level, msg = slog.LevelWarn, "worker suspect"
	case WorkerDead:
		level, msg = slog.LevelError, "worker dead"
	}
	attrs := []telemetry.Attr{
		telemetry.A("worker", w.id),
		telemetry.A("from", from.String()),
		telemetry.A("to", to.String()),
	}
	if age > 0 {
		attrs = append(attrs, telemetry.A("silent_seconds", age.Seconds()))
	}
	m.cfg.Events.Log(level, msg, attrs...)
}

// setStateGauge (mu held) publishes the coded worker state
// (0 healthy, 1 suspect, 2 dead) as rpcmr_worker_state{worker}.
func (m *Master) setStateGauge(id string, s WorkerState) {
	if reg := m.cfg.Metrics; reg != nil {
		reg.Gauge("rpcmr_worker_state", telemetry.L("worker", id)).Set(float64(s))
	}
}

// healthLoop is the background sweep: every HealthInterval it ages the
// workers through the state machine until the master closes.
func (m *Master) healthLoop() {
	ticker := time.NewTicker(m.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopc:
			return
		case now := <-ticker.C:
			m.sweepWorkerStates(now)
		}
	}
}

// sweepWorkerStates applies heartbeat-age transitions. The two steps are
// sequential on purpose: a worker that out-silences both windows between
// sweeps still passes through suspect before dead, so consumers always
// see the full healthy → suspect → dead sequence, one event per edge.
func (m *Master) sweepWorkerStates(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		age := now.Sub(w.lastSeen)
		if w.state == WorkerHealthy && age > m.cfg.LivenessWindow {
			m.transitionWorker(w, WorkerSuspect, age)
		}
		if w.state == WorkerSuspect && age > m.cfg.DeadWindow {
			m.transitionWorker(w, WorkerDead, age)
		}
	}
}
