package rpcmr

import (
	"context"
	"net/rpc"
	"testing"
	"time"
)

func TestStatusIdle(t *testing.T) {
	ensureJobs()
	master, err := NewMaster(MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()
	st := master.Status()
	if st.JobRunning || st.Workers != 0 {
		t.Errorf("idle status = %+v", st)
	}
}

func TestStatusDuringAndAfterJob(t *testing.T) {
	master, workers, _ := newCluster(t, MasterConfig{SplitSize: 1}, 2, WorkerConfig{PollInterval: 5 * time.Millisecond})
	_ = workers

	done := make(chan error, 1)
	go func() {
		_, err := master.Run(context.Background(), JobSpec{Name: "wordcount", Reducers: 2}, wcInput)
		done <- err
	}()

	// Poll until the job registers as running or finishes.
	sawRunning := false
	deadline := time.After(10 * time.Second)
	for !sawRunning {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			// Finished before we sampled — acceptable on a fast machine.
			st := master.Status()
			if st.JobRunning {
				t.Errorf("finished job still running in status: %+v", st)
			}
			if st.Workers != 2 {
				t.Errorf("workers = %d", st.Workers)
			}
			return
		case <-deadline:
			t.Fatal("job never completed")
		default:
			st := master.Status()
			if st.JobRunning {
				sawRunning = true
				if st.JobName != "wordcount" {
					t.Errorf("job name = %q", st.JobName)
				}
				if st.TasksTotal == 0 {
					t.Errorf("no tasks in running status: %+v", st)
				}
			}
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := master.Status()
	if st.JobRunning {
		t.Errorf("status still running after completion: %+v", st)
	}
	if st.LiveWorkers != 2 {
		t.Errorf("live workers = %d, want 2", st.LiveWorkers)
	}
}

func TestStatusOverRPC(t *testing.T) {
	master, _, _ := newCluster(t, MasterConfig{}, 1, WorkerConfig{})
	client, err := rpc.Dial("tcp", master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var st Status
	if err := client.Call("Master.Status", StatusArgs{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 1 {
		t.Errorf("RPC status workers = %d, want 1", st.Workers)
	}
}
