package telemetry

import (
	"testing"
	"time"
)

// A worker whose wall clock runs an hour behind the master ships task
// spans whose raw Start predates the master's job span. ImportAt must
// re-anchor the batch to the report-receipt time so the stitched trace
// never shows a child starting before its parent.
func TestImportAnchorsSkewedWorkerClock(t *testing.T) {
	tr := NewTracer()
	ctx, parent := StartSpan(WithTracer(t.Context(), tr), "job")

	// The report lands a second after the job span opened; the task ran
	// for 200ms of that second.
	receipt := time.Now().Add(time.Second)
	skew := -time.Hour // worker clock an hour behind
	workerSpans := []SpanData{
		{ID: 1, Name: "map-task", Start: receipt.Add(skew - 300*time.Millisecond), Duration: 200 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "decode", Start: receipt.Add(skew - 280*time.Millisecond), Duration: 50 * time.Millisecond},
	}
	tr.ImportAt(parent.ID(), receipt, workerSpans)
	parent.End()
	_ = ctx

	spans := tr.Spans()
	var job, task, sub *SpanData
	for i := range spans {
		switch spans[i].Name {
		case "job":
			job = &spans[i]
		case "map-task":
			task = &spans[i]
		case "decode":
			sub = &spans[i]
		}
	}
	if job == nil || task == nil || sub == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if task.Start.Before(job.Start) {
		t.Fatalf("anchored task starts %v before its parent %v", task.Start, job.Start)
	}
	// The latest batch end is pinned exactly to the receipt time.
	if end := task.Start.Add(task.Duration); !end.Equal(receipt) {
		t.Fatalf("batch end %v, want receipt %v", end, receipt)
	}
	// Intra-batch offsets survive the shift: the sub-span still starts
	// 20ms into its task.
	if off := sub.Start.Sub(task.Start); off != 20*time.Millisecond {
		t.Fatalf("intra-batch offset %v, want 20ms", off)
	}
	if sub.Parent != task.ID {
		t.Fatalf("intra-batch parent link broken: %d != %d", sub.Parent, task.ID)
	}
}

// A clock running *ahead* would put worker spans in the master's
// future; anchoring pulls them back too.
func TestImportAnchorsFastWorkerClock(t *testing.T) {
	tr := NewTracer()
	receipt := time.Now()
	tr.ImportAt(0, receipt, []SpanData{
		{ID: 1, Name: "map-task", Start: receipt.Add(time.Hour), Duration: 100 * time.Millisecond},
	})
	got := tr.Spans()[0]
	if end := got.Start.Add(got.Duration); !end.Equal(receipt) {
		t.Fatalf("batch end %v, want receipt %v", end, receipt)
	}
}

// Import (the production path) anchors to time.Now: after stitching, no
// span may end meaningfully in the future even with a skewed source.
func TestImportAnchorsToNow(t *testing.T) {
	tr := NewTracer()
	tr.Import(0, []SpanData{
		{ID: 1, Name: "map-task", Start: time.Now().Add(-2 * time.Hour), Duration: time.Second},
	})
	got := tr.Spans()[0]
	end := got.Start.Add(got.Duration)
	if d := time.Since(end); d < 0 || d > time.Minute {
		t.Fatalf("anchored end %v not at ~now (delta %v)", end, d)
	}
}
