package telemetry

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Query-level observability: where the flight recorder explains one batch
// job, the query log explains the serving path — every registry read and
// publish leaves a QueryStats record saying which partitions were probed,
// how many candidates were scanned, how many dominance tests ran, and
// where the time went by stage. Records land in a bounded recent-queries
// ring plus a slow-query log (top-K by duration, with a threshold marking
// outright violations), both served under /debug. Like the rest of the
// package the plumbing is nil-safe: a nil *QueryStats drops every
// annotation and a nil *QueryLog drops every record, so the serve path
// carries no branches when attribution is off.

// StageTiming is one named stage of a query's execution.
type StageTiming struct {
	Stage   string  `json:"stage"`
	Seconds float64 `json:"seconds"`
}

// QueryStats is the per-query cost record. One query is one goroutine:
// the record is built single-threaded between Begin and QueryLog.Record,
// so its mutators take no lock.
type QueryStats struct {
	// ID is assigned by the QueryLog on Record (its running sequence).
	ID uint64 `json:"id"`
	// Op names the operation ("skyline", "publish", ...).
	Op    string    `json:"op"`
	Start time.Time `json:"start"`
	// DurationSeconds is stamped by QueryLog.Record.
	DurationSeconds float64 `json:"duration_seconds"`
	// Stages is the per-stage wall-time breakdown, in execution order.
	Stages []StageTiming `json:"stages,omitempty"`
	// PartitionsProbed counts partitions whose local skylines the query
	// actually visited (0 on the cached path).
	PartitionsProbed int `json:"partitions_probed"`
	// CandidatesScanned counts candidate points the query examined.
	CandidatesScanned int64 `json:"candidates_scanned"`
	// DominanceTests counts pairwise dominance tests the query executed.
	DominanceTests int64 `json:"dominance_tests"`
	// ResultSize is the number of rows returned.
	ResultSize int `json:"result_size"`
	// Path names the execution path taken ("cached", "merge", ...).
	Path string `json:"path,omitempty"`
	// Status is the HTTP status code of the response (0 outside HTTP).
	Status int `json:"status,omitempty"`
	// Slow marks records whose duration exceeded the log's threshold.
	Slow bool `json:"slow,omitempty"`
}

// BeginQuery starts a record for op. Safe to call with results fed into a
// nil QueryLog — the record is then simply discarded.
func BeginQuery(op string) *QueryStats {
	return &QueryStats{Op: op, Start: time.Now()}
}

// AddStage appends one stage timing. Nil-safe.
func (q *QueryStats) AddStage(stage string, d time.Duration) {
	if q == nil {
		return
	}
	q.Stages = append(q.Stages, StageTiming{Stage: stage, Seconds: d.Seconds()})
}

// AddCost accumulates probe work: partitions visited, candidate points
// scanned and dominance tests executed. Nil-safe.
func (q *QueryStats) AddCost(partitions int, candidates, tests int64) {
	if q == nil {
		return
	}
	q.PartitionsProbed += partitions
	q.CandidatesScanned += candidates
	q.DominanceTests += tests
}

// SetPath records the execution path taken. Nil-safe.
func (q *QueryStats) SetPath(path string) {
	if q == nil {
		return
	}
	q.Path = path
}

// SetResult records the result cardinality. Nil-safe.
func (q *QueryStats) SetResult(n int) {
	if q == nil {
		return
	}
	q.ResultSize = n
}

// SetStatus records the HTTP status of the response. Nil-safe.
func (q *QueryStats) SetStatus(code int) {
	if q == nil {
		return
	}
	q.Status = code
}

type queryStatsKey struct{}

// WithQueryStats installs q as the context's per-query record, so the
// index and kernels below the handler can attribute their work to it.
func WithQueryStats(ctx context.Context, q *QueryStats) context.Context {
	if q == nil {
		return ctx
	}
	return context.WithValue(ctx, queryStatsKey{}, q)
}

// QueryStatsFrom returns the context's per-query record; nil when query
// attribution is off (and a nil *QueryStats is safe to annotate).
func QueryStatsFrom(ctx context.Context) *QueryStats {
	q, _ := ctx.Value(queryStatsKey{}).(*QueryStats)
	return q
}

// QueryTotals are the cumulative sums over every recorded query — the
// reconciliation surface tests pin against the global metric counters
// (records evicted from the ring stay counted here).
type QueryTotals struct {
	Queries           int64 `json:"queries"`
	SlowQueries       int64 `json:"slow_queries"`
	CandidatesScanned int64 `json:"candidates_scanned"`
	DominanceTests    int64 `json:"dominance_tests"`
}

// QueryLog retains the most recent queries in a ring and the slowest in a
// bounded top-K log. Safe for concurrent use; nil-safe throughout.
type QueryLog struct {
	mu        sync.Mutex
	ring      []QueryStats // recent queries, ring[next] is the oldest slot
	next      int
	filled    bool
	seq       uint64
	slow      []QueryStats // slowest queries, descending duration, ≤ slowK
	slowK     int
	threshold float64 // seconds; records above it are flagged Slow
	totals    QueryTotals
}

// NewQueryLog returns a log retaining the most recent capacity queries
// (minimum 16) and the slowK slowest (minimum 1). Queries slower than
// threshold are flagged Slow and counted in the totals; a zero threshold
// flags nothing — the top-K tail is still kept.
func NewQueryLog(capacity, slowK int, threshold time.Duration) *QueryLog {
	if capacity < 16 {
		capacity = 16
	}
	if slowK < 1 {
		slowK = 1
	}
	return &QueryLog{
		ring:      make([]QueryStats, capacity),
		slowK:     slowK,
		threshold: threshold.Seconds(),
	}
}

// Record stamps the query's duration and files it into the recent ring
// and, when slow enough, the slow log. Nil logs and nil records are
// dropped.
func (l *QueryLog) Record(q *QueryStats) {
	if l == nil || q == nil {
		return
	}
	q.DurationSeconds = time.Since(q.Start).Seconds()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	q.ID = l.seq
	q.Slow = l.threshold > 0 && q.DurationSeconds >= l.threshold
	l.totals.Queries++
	l.totals.CandidatesScanned += q.CandidatesScanned
	l.totals.DominanceTests += q.DominanceTests
	if q.Slow {
		l.totals.SlowQueries++
	}
	l.ring[l.next] = *q
	l.next++
	if l.next == len(l.ring) {
		l.next, l.filled = 0, true
	}
	// Slow log: keep the K slowest seen so far, descending. Insertion
	// sort over ≤ K entries — K is small (tens).
	if len(l.slow) < l.slowK || q.DurationSeconds > l.slow[len(l.slow)-1].DurationSeconds {
		i := sort.Search(len(l.slow), func(i int) bool {
			return l.slow[i].DurationSeconds < q.DurationSeconds
		})
		l.slow = append(l.slow, QueryStats{})
		copy(l.slow[i+1:], l.slow[i:])
		l.slow[i] = *q
		if len(l.slow) > l.slowK {
			l.slow = l.slow[:l.slowK]
		}
	}
}

// Recent returns up to limit of the most recent queries, newest first
// (limit <= 0 returns all retained).
func (l *QueryLog) Recent(limit int) []QueryStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.filled {
		n = len(l.ring)
	}
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]QueryStats, 0, limit)
	for i := 1; i <= limit; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Slow returns the retained slowest queries, slowest first.
func (l *QueryLog) Slow() []QueryStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]QueryStats(nil), l.slow...)
}

// Totals returns the cumulative sums over every query ever recorded.
func (l *QueryLog) Totals() QueryTotals {
	if l == nil {
		return QueryTotals{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals
}

// ThresholdSeconds returns the slow-query threshold (0 when unset).
func (l *QueryLog) ThresholdSeconds() float64 {
	if l == nil {
		return 0
	}
	return l.threshold
}

// QueriesPath and SlowLogPath are where MountQueryLog serves the log.
const (
	QueriesPath = "/debug/queries"
	SlowLogPath = "/debug/slowlog"
)

// queryLogDoc is the JSON shape of both query-log endpoints.
type queryLogDoc struct {
	Totals           QueryTotals  `json:"totals"`
	ThresholdSeconds float64      `json:"threshold_seconds,omitempty"`
	Queries          []QueryStats `json:"queries"`
}

// MountQueryLog serves the recent-queries ring at /debug/queries
// (?limit=N caps the count) and the slow-query log at /debug/slowlog,
// both as JSON with the cumulative totals alongside. The source is
// called per request and may return nil (attribution off → 404).
func MountQueryLog(mux *http.ServeMux, source func() *QueryLog) {
	serve := func(slow bool) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodGet && req.Method != http.MethodHead {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			l := source()
			if l == nil {
				http.Error(w, "query log off", http.StatusNotFound)
				return
			}
			limit := 0
			if s := req.URL.Query().Get("limit"); s != "" {
				var err error
				limit, err = strconv.Atoi(s)
				if err != nil || limit < 0 {
					http.Error(w, "bad limit", http.StatusBadRequest)
					return
				}
			}
			doc := queryLogDoc{Totals: l.Totals(), ThresholdSeconds: l.ThresholdSeconds()}
			if slow {
				doc.Queries = l.Slow()
				if limit > 0 && len(doc.Queries) > limit {
					doc.Queries = doc.Queries[:limit]
				}
			} else {
				doc.Queries = l.Recent(limit)
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
		}
	}
	mux.HandleFunc(QueriesPath, serve(false))
	mux.HandleFunc(SlowLogPath, serve(true))
}
